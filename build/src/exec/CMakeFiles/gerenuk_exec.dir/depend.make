# Empty dependencies file for gerenuk_exec.
# This may be replaced when dependencies are built.
