file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_exec.dir/interpreter.cc.o"
  "CMakeFiles/gerenuk_exec.dir/interpreter.cc.o.d"
  "CMakeFiles/gerenuk_exec.dir/ser_executor.cc.o"
  "CMakeFiles/gerenuk_exec.dir/ser_executor.cc.o.d"
  "libgerenuk_exec.a"
  "libgerenuk_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
