file(REMOVE_RECURSE
  "libgerenuk_exec.a"
)
