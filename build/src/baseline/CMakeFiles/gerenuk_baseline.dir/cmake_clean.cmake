file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_baseline.dir/tungsten.cc.o"
  "CMakeFiles/gerenuk_baseline.dir/tungsten.cc.o.d"
  "libgerenuk_baseline.a"
  "libgerenuk_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
