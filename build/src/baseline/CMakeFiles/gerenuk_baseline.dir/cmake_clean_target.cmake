file(REMOVE_RECURSE
  "libgerenuk_baseline.a"
)
