# Empty dependencies file for gerenuk_baseline.
# This may be replaced when dependencies are built.
