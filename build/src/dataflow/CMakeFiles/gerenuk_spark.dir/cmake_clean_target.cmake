file(REMOVE_RECURSE
  "libgerenuk_spark.a"
)
