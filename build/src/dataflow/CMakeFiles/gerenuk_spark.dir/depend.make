# Empty dependencies file for gerenuk_spark.
# This may be replaced when dependencies are built.
