file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_spark.dir/dataset.cc.o"
  "CMakeFiles/gerenuk_spark.dir/dataset.cc.o.d"
  "CMakeFiles/gerenuk_spark.dir/spark.cc.o"
  "CMakeFiles/gerenuk_spark.dir/spark.cc.o.d"
  "CMakeFiles/gerenuk_spark.dir/stage_compiler.cc.o"
  "CMakeFiles/gerenuk_spark.dir/stage_compiler.cc.o.d"
  "libgerenuk_spark.a"
  "libgerenuk_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
