file(REMOVE_RECURSE
  "libgerenuk_support.a"
)
