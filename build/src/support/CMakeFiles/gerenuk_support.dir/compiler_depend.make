# Empty compiler generated dependencies file for gerenuk_support.
# This may be replaced when dependencies are built.
