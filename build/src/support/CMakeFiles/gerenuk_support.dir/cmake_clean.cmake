file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_support.dir/logging.cc.o"
  "CMakeFiles/gerenuk_support.dir/logging.cc.o.d"
  "CMakeFiles/gerenuk_support.dir/metrics.cc.o"
  "CMakeFiles/gerenuk_support.dir/metrics.cc.o.d"
  "libgerenuk_support.a"
  "libgerenuk_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
