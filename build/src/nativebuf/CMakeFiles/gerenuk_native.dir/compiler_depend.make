# Empty compiler generated dependencies file for gerenuk_native.
# This may be replaced when dependencies are built.
