file(REMOVE_RECURSE
  "libgerenuk_native.a"
)
