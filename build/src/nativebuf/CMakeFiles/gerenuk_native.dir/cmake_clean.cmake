file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_native.dir/native_buffer.cc.o"
  "CMakeFiles/gerenuk_native.dir/native_buffer.cc.o.d"
  "CMakeFiles/gerenuk_native.dir/record_builder.cc.o"
  "CMakeFiles/gerenuk_native.dir/record_builder.cc.o.d"
  "libgerenuk_native.a"
  "libgerenuk_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
