# Empty dependencies file for gerenuk_workloads.
# This may be replaced when dependencies are built.
