file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_workloads.dir/datagen.cc.o"
  "CMakeFiles/gerenuk_workloads.dir/datagen.cc.o.d"
  "CMakeFiles/gerenuk_workloads.dir/hadoop_workloads.cc.o"
  "CMakeFiles/gerenuk_workloads.dir/hadoop_workloads.cc.o.d"
  "CMakeFiles/gerenuk_workloads.dir/spark_workloads.cc.o"
  "CMakeFiles/gerenuk_workloads.dir/spark_workloads.cc.o.d"
  "libgerenuk_workloads.a"
  "libgerenuk_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
