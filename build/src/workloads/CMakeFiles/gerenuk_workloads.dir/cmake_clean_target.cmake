file(REMOVE_RECURSE
  "libgerenuk_workloads.a"
)
