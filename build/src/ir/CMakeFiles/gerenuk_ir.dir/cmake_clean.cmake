file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_ir.dir/builder.cc.o"
  "CMakeFiles/gerenuk_ir.dir/builder.cc.o.d"
  "CMakeFiles/gerenuk_ir.dir/ir.cc.o"
  "CMakeFiles/gerenuk_ir.dir/ir.cc.o.d"
  "libgerenuk_ir.a"
  "libgerenuk_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
