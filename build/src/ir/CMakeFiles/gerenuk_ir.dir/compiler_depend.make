# Empty compiler generated dependencies file for gerenuk_ir.
# This may be replaced when dependencies are built.
