file(REMOVE_RECURSE
  "libgerenuk_ir.a"
)
