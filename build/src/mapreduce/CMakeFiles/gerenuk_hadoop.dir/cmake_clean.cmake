file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_hadoop.dir/hadoop.cc.o"
  "CMakeFiles/gerenuk_hadoop.dir/hadoop.cc.o.d"
  "libgerenuk_hadoop.a"
  "libgerenuk_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
