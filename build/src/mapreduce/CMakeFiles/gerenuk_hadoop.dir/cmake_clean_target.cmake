file(REMOVE_RECURSE
  "libgerenuk_hadoop.a"
)
