# Empty compiler generated dependencies file for gerenuk_hadoop.
# This may be replaced when dependencies are built.
