# Empty compiler generated dependencies file for gerenuk_mrt.
# This may be replaced when dependencies are built.
