file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_mrt.dir/heap.cc.o"
  "CMakeFiles/gerenuk_mrt.dir/heap.cc.o.d"
  "CMakeFiles/gerenuk_mrt.dir/klass.cc.o"
  "CMakeFiles/gerenuk_mrt.dir/klass.cc.o.d"
  "libgerenuk_mrt.a"
  "libgerenuk_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
