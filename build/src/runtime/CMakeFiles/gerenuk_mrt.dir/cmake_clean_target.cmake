file(REMOVE_RECURSE
  "libgerenuk_mrt.a"
)
