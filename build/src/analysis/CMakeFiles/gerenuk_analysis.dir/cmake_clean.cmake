file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_analysis.dir/layout.cc.o"
  "CMakeFiles/gerenuk_analysis.dir/layout.cc.o.d"
  "CMakeFiles/gerenuk_analysis.dir/ser_analyzer.cc.o"
  "CMakeFiles/gerenuk_analysis.dir/ser_analyzer.cc.o.d"
  "libgerenuk_analysis.a"
  "libgerenuk_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
