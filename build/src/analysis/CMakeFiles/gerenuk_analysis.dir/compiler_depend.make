# Empty compiler generated dependencies file for gerenuk_analysis.
# This may be replaced when dependencies are built.
