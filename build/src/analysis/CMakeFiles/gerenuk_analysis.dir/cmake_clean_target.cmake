file(REMOVE_RECURSE
  "libgerenuk_analysis.a"
)
