file(REMOVE_RECURSE
  "libgerenuk_transform.a"
)
