file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_transform.dir/transformer.cc.o"
  "CMakeFiles/gerenuk_transform.dir/transformer.cc.o.d"
  "libgerenuk_transform.a"
  "libgerenuk_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
