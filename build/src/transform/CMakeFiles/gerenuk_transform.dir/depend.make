# Empty dependencies file for gerenuk_transform.
# This may be replaced when dependencies are built.
