file(REMOVE_RECURSE
  "libgerenuk_serde.a"
)
