file(REMOVE_RECURSE
  "CMakeFiles/gerenuk_serde.dir/heap_serializer.cc.o"
  "CMakeFiles/gerenuk_serde.dir/heap_serializer.cc.o.d"
  "CMakeFiles/gerenuk_serde.dir/inline_serializer.cc.o"
  "CMakeFiles/gerenuk_serde.dir/inline_serializer.cc.o.d"
  "CMakeFiles/gerenuk_serde.dir/wellknown.cc.o"
  "CMakeFiles/gerenuk_serde.dir/wellknown.cc.o.d"
  "libgerenuk_serde.a"
  "libgerenuk_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerenuk_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
