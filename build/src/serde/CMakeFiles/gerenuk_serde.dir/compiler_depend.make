# Empty compiler generated dependencies file for gerenuk_serde.
# This may be replaced when dependencies are built.
