file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_yak.dir/bench_fig9_yak.cc.o"
  "CMakeFiles/bench_fig9_yak.dir/bench_fig9_yak.cc.o.d"
  "bench_fig9_yak"
  "bench_fig9_yak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_yak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
