# Empty compiler generated dependencies file for bench_compiler_stats.
# This may be replaced when dependencies are built.
