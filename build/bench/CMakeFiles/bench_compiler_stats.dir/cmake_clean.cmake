file(REMOVE_RECURSE
  "CMakeFiles/bench_compiler_stats.dir/bench_compiler_stats.cc.o"
  "CMakeFiles/bench_compiler_stats.dir/bench_compiler_stats.cc.o.d"
  "bench_compiler_stats"
  "bench_compiler_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiler_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
