file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_spark.dir/bench_fig6a_spark.cc.o"
  "CMakeFiles/bench_fig6a_spark.dir/bench_fig6a_spark.cc.o.d"
  "bench_fig6a_spark"
  "bench_fig6a_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
