# Empty dependencies file for bench_fig6a_spark.
# This may be replaced when dependencies are built.
