file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tungsten.dir/bench_fig8_tungsten.cc.o"
  "CMakeFiles/bench_fig8_tungsten.dir/bench_fig8_tungsten.cc.o.d"
  "bench_fig8_tungsten"
  "bench_fig8_tungsten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tungsten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
