file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_hadoop.dir/bench_fig6b_hadoop.cc.o"
  "CMakeFiles/bench_fig6b_hadoop.dir/bench_fig6b_hadoop.cc.o.d"
  "bench_fig6b_hadoop"
  "bench_fig6b_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
