# Empty compiler generated dependencies file for bench_fig6b_hadoop.
# This may be replaced when dependencies are built.
