file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_aborts.dir/bench_fig10_aborts.cc.o"
  "CMakeFiles/bench_fig10_aborts.dir/bench_fig10_aborts.cc.o.d"
  "bench_fig10_aborts"
  "bench_fig10_aborts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
