# Empty dependencies file for bench_fig5_ratio.
# This may be replaced when dependencies are built.
