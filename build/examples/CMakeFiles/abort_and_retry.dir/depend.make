# Empty dependencies file for abort_and_retry.
# This may be replaced when dependencies are built.
