file(REMOVE_RECURSE
  "CMakeFiles/abort_and_retry.dir/abort_and_retry.cpp.o"
  "CMakeFiles/abort_and_retry.dir/abort_and_retry.cpp.o.d"
  "abort_and_retry"
  "abort_and_retry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abort_and_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
