file(REMOVE_RECURSE
  "CMakeFiles/hadoop_inmap_combiner.dir/hadoop_inmap_combiner.cpp.o"
  "CMakeFiles/hadoop_inmap_combiner.dir/hadoop_inmap_combiner.cpp.o.d"
  "hadoop_inmap_combiner"
  "hadoop_inmap_combiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_inmap_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
