# Empty dependencies file for hadoop_inmap_combiner.
# This may be replaced when dependencies are built.
