file(REMOVE_RECURSE
  "CMakeFiles/spark_logistic_regression.dir/spark_logistic_regression.cpp.o"
  "CMakeFiles/spark_logistic_regression.dir/spark_logistic_regression.cpp.o.d"
  "spark_logistic_regression"
  "spark_logistic_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_logistic_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
