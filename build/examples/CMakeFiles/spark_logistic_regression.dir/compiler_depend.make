# Empty compiler generated dependencies file for spark_logistic_regression.
# This may be replaced when dependencies are built.
