# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/spark_test[1]_include.cmake")
include("/root/repo/build/tests/hadoop_test[1]_include.cmake")
include("/root/repo/build/tests/region_gc_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_and_native_test[1]_include.cmake")
