# Empty dependencies file for baseline_and_native_test.
# This may be replaced when dependencies are built.
