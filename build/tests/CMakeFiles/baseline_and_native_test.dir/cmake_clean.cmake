file(REMOVE_RECURSE
  "CMakeFiles/baseline_and_native_test.dir/baseline_and_native_test.cc.o"
  "CMakeFiles/baseline_and_native_test.dir/baseline_and_native_test.cc.o.d"
  "baseline_and_native_test"
  "baseline_and_native_test.pdb"
  "baseline_and_native_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_and_native_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
