
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_and_native_test.cc" "tests/CMakeFiles/baseline_and_native_test.dir/baseline_and_native_test.cc.o" "gcc" "tests/CMakeFiles/baseline_and_native_test.dir/baseline_and_native_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/gerenuk_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gerenuk_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/nativebuf/CMakeFiles/gerenuk_native.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gerenuk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gerenuk_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/gerenuk_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gerenuk_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gerenuk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
