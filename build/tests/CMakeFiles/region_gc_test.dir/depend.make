# Empty dependencies file for region_gc_test.
# This may be replaced when dependencies are built.
