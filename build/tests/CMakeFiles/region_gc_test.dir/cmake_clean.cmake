file(REMOVE_RECURSE
  "CMakeFiles/region_gc_test.dir/region_gc_test.cc.o"
  "CMakeFiles/region_gc_test.dir/region_gc_test.cc.o.d"
  "region_gc_test"
  "region_gc_test.pdb"
  "region_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
