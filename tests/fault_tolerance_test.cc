// Fault-tolerance tests: every injected fault kind must be recovered (or
// deliberately quarantined) without failing the job, with byte-identical
// output and identical EngineStats for every worker count — retries,
// relaunches, and the governor flip are deterministic, never schedule-
// dependent. Also covers the NativePartition integrity seal the corrupt-
// input path relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "src/exec/fault.h"
#include "src/exec/task_scheduler.h"
#include "src/nativebuf/native_buffer.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

// ---------------------------------------------------------------------------
// NativePartition integrity seal
// ---------------------------------------------------------------------------

NativePartition PartitionWithRecords(int n) {
  NativePartition part;
  std::vector<uint8_t> body(16);
  for (int r = 0; r < n; ++r) {
    for (size_t i = 0; i < body.size(); ++i) {
      body[i] = static_cast<uint8_t>(r * 31 + i);
    }
    part.AppendRecord(body.data(), static_cast<uint32_t>(body.size()));
  }
  return part;
}

TEST(NativePartitionIntegrityTest, SealAndVerifyDetectBitRot) {
  NativePartition part = PartitionWithRecords(4);
  EXPECT_FALSE(part.sealed());
  EXPECT_TRUE(part.VerifyChecksum());  // unsealed: nothing to verify against
  part.Seal();
  EXPECT_TRUE(part.sealed());
  EXPECT_TRUE(part.VerifyChecksum());
  uint8_t* body = reinterpret_cast<uint8_t*>(part.record_addr(2));
  body[3] ^= 0x01;  // a single flipped bit anywhere must be caught
  EXPECT_FALSE(part.VerifyChecksum());
  body[3] ^= 0x01;
  EXPECT_TRUE(part.VerifyChecksum());
}

TEST(NativePartitionIntegrityTest, AppendingUnseals) {
  NativePartition part = PartitionWithRecords(2);
  part.Seal();
  ASSERT_TRUE(part.sealed());
  uint8_t extra[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  part.AppendRecord(extra, sizeof(extra));
  EXPECT_FALSE(part.sealed());
  part.Seal();
  EXPECT_TRUE(part.VerifyChecksum());
}

TEST(NativePartitionIntegrityTest, WireFormatCarriesTheSeal) {
  NativePartition part = PartitionWithRecords(3);
  part.Seal();
  ByteBuffer wire;
  part.SerializeTo(wire);
  ByteReader reader(wire.data(), wire.size());
  NativePartition parsed = NativePartition::Parse(reader);
  EXPECT_TRUE(parsed.sealed());
  EXPECT_EQ(parsed.checksum(), part.checksum());
  EXPECT_TRUE(parsed.VerifyChecksum());
  reinterpret_cast<uint8_t*>(parsed.record_addr(0))[0] ^= 0x5a;
  EXPECT_FALSE(parsed.VerifyChecksum());
}

TEST(NativePartitionIntegrityTest, UnsealedPartitionChecksumsOnTheWire) {
  // Writers that never sealed still emit a valid trailing checksum, so the
  // receiving side always gets a verifiable partition.
  NativePartition part = PartitionWithRecords(3);
  ByteBuffer wire;
  part.SerializeTo(wire);
  ByteReader reader(wire.data(), wire.size());
  NativePartition parsed = NativePartition::Parse(reader);
  EXPECT_TRUE(parsed.sealed());
  EXPECT_TRUE(parsed.VerifyChecksum());
}

// ---------------------------------------------------------------------------
// Scheduler-level retry / relaunch / quarantine (no engine)
// ---------------------------------------------------------------------------

TEST(FaultToleranceSchedulerTest, TransientFailureRetriedWithBoundedAttempts) {
  for (int workers : kWorkerCounts) {
    MemoryTracker tracker;
    TaskScheduler sched(workers, HeapConfig{8u << 20}, nullptr, &tracker);
    RetryPolicy policy;
    policy.max_attempts = 3;
    sched.set_retry_policy(policy);
    EngineStats stats;
    std::atomic<int> runs{0};
    sched.RunStage(
        8,
        [&](WorkerContext& ctx, int t) {
          runs.fetch_add(1);
          if (t == 5 && ctx.attempt() < 3) {
            throw TaskError(TaskErrorKind::kException, t, ctx.attempt(), 0, "transient");
          }
        },
        &stats);
    EXPECT_EQ(stats.retries, 2) << "workers=" << workers;
    EXPECT_EQ(stats.straggler_relaunches, 0) << "workers=" << workers;
    EXPECT_EQ(runs.load(), 10) << "workers=" << workers;  // 8 tasks + 2 retries
  }
}

TEST(FaultToleranceSchedulerTest, PlainExceptionsAreRetryable) {
  for (int workers : kWorkerCounts) {
    MemoryTracker tracker;
    TaskScheduler sched(workers, HeapConfig{8u << 20}, nullptr, &tracker);
    RetryPolicy policy;
    policy.max_attempts = 2;
    sched.set_retry_policy(policy);
    EngineStats stats;
    sched.RunStage(
        4,
        [&](WorkerContext& ctx, int t) {
          if (t == 2 && ctx.attempt() == 1) {
            throw std::runtime_error("flaky");
          }
        },
        &stats);
    EXPECT_EQ(stats.retries, 1) << "workers=" << workers;
  }
}

TEST(FaultToleranceSchedulerTest, ExhaustedRetriesRethrowFirstByTaskIndex) {
  for (int workers : kWorkerCounts) {
    MemoryTracker tracker;
    TaskScheduler sched(workers, HeapConfig{8u << 20}, nullptr, &tracker);
    RetryPolicy policy;
    policy.max_attempts = 2;
    sched.set_retry_policy(policy);
    EngineStats stats;
    try {
      sched.RunStage(
          6,
          [&](WorkerContext& ctx, int t) {
            if (t == 1 || t == 4) {
              throw TaskError(TaskErrorKind::kException, t, ctx.attempt(), 0, "permanent");
            }
          },
          &stats);
      FAIL() << "expected an exception (workers=" << workers << ")";
    } catch (const TaskError& e) {
      EXPECT_EQ(e.task_ordinal(), 1);
      EXPECT_EQ(e.attempt(), 2);  // the terminal attempt's error is kept
    }
    EXPECT_EQ(stats.retries, 2) << "workers=" << workers;  // one per failing task
    // The pool survives the failed stage.
    std::atomic<int> ran{0};
    sched.RunStage(4, [&](WorkerContext&, int) { ran.fetch_add(1); }, &stats);
    EXPECT_EQ(ran.load(), 4) << "workers=" << workers;
  }
}

TEST(FaultToleranceSchedulerTest, CorruptInputIsNeverRetriedAndFailsFastByDefault) {
  for (int workers : kWorkerCounts) {
    MemoryTracker tracker;
    TaskScheduler sched(workers, HeapConfig{8u << 20}, nullptr, &tracker);
    RetryPolicy policy;
    policy.max_attempts = 3;  // a retry budget must not apply: bytes stay rotten
    sched.set_retry_policy(policy);
    EngineStats stats;
    try {
      sched.RunStage(
          4,
          [&](WorkerContext& ctx, int t) {
            if (t == 3) {
              throw TaskError(TaskErrorKind::kCorruptInput, t, ctx.attempt(), 99, "bad bytes");
            }
          },
          &stats);
      FAIL() << "expected corrupt input to fail the stage (workers=" << workers << ")";
    } catch (const TaskError& e) {
      EXPECT_EQ(e.kind(), TaskErrorKind::kCorruptInput);
      EXPECT_EQ(e.attempt(), 1);
    }
    EXPECT_EQ(stats.retries, 0) << "workers=" << workers;
    EXPECT_EQ(stats.quarantined_tasks, 0) << "workers=" << workers;
  }
}

TEST(FaultToleranceSchedulerTest, QuarantineSkipRecordsLossInsteadOfFailing) {
  for (int workers : kWorkerCounts) {
    MemoryTracker tracker;
    TaskScheduler sched(workers, HeapConfig{8u << 20}, nullptr, &tracker);
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.quarantine = QuarantinePolicy::kSkip;
    sched.set_retry_policy(policy);
    EngineStats stats;
    std::atomic<int> completed{0};
    sched.RunStage(
        8,
        [&](WorkerContext& ctx, int t) {
          if (t == 3) {
            throw TaskError(TaskErrorKind::kCorruptInput, t, ctx.attempt(), 42, "bad bytes");
          }
          completed.fetch_add(1);
        },
        &stats);
    EXPECT_EQ(stats.quarantined_tasks, 1) << "workers=" << workers;
    EXPECT_EQ(stats.quarantined_records, 42) << "workers=" << workers;
    EXPECT_EQ(stats.retries, 0) << "workers=" << workers;
    EXPECT_EQ(completed.load(), 7) << "workers=" << workers;
  }
}

TEST(FaultToleranceSchedulerTest, StragglerRelaunchAvoidsTheSlowWorker) {
  for (int workers : kWorkerCounts) {
    MemoryTracker tracker;
    TaskScheduler sched(workers, HeapConfig{8u << 20}, nullptr, &tracker);
    RetryPolicy policy;
    policy.max_attempts = 2;
    sched.set_retry_policy(policy);
    EngineStats stats;
    std::mutex mu;
    std::vector<int> attempt_workers;
    sched.RunStage(
        4,
        [&](WorkerContext& ctx, int t) {
          if (t == 2) {
            std::lock_guard<std::mutex> lock(mu);
            attempt_workers.push_back(ctx.worker_id());
          }
          if (t == 2 && ctx.attempt() == 1) {
            throw TaskError(TaskErrorKind::kStraggler, t, 1, 0, "deadline exceeded");
          }
        },
        &stats);
    EXPECT_EQ(stats.straggler_relaunches, 1) << "workers=" << workers;
    EXPECT_EQ(stats.retries, 0) << "workers=" << workers;
    ASSERT_EQ(attempt_workers.size(), 2u) << "workers=" << workers;
    if (workers > 1) {
      // The relaunch must land on a different worker than the slow one.
      EXPECT_NE(attempt_workers[0], attempt_workers[1]);
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level recovery: Spark
// ---------------------------------------------------------------------------

std::vector<uint8_t> CleanMapBytes() {
  SparkJob job(SparkWith(1));
  DatasetPtr out = job.engine.RunStage(job.MakeInput(600), job.udfs,
                                       {NarrowOp::Map(job.double_value, job.pair)});
  return DatasetBytes(out);
}

TEST(FaultToleranceSparkTest, EntryExceptionRetriedAndRecovered) {
  const std::vector<uint8_t> clean = CleanMapBytes();
  for (int workers : kWorkerCounts) {
    EngineConfig config = SparkWith(workers);
    config.fault.max_task_attempts = 2;
    SparkJob job(config);
    DatasetPtr in = job.MakeInput(600);
    job.engine.fault_plan().InjectException(job.engine.next_task_ordinal() + 1);
    DatasetPtr out = job.engine.RunStage(in, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(stats.retries, 1) << "workers=" << workers;
    EXPECT_EQ(stats.tasks_run, 5) << "workers=" << workers;  // 4 tasks + 1 retry
    EXPECT_EQ(stats.fast_path_commits, 4) << "workers=" << workers;
    EXPECT_EQ(stats.aborts, 0) << "workers=" << workers;
    EXPECT_EQ(DatasetBytes(out), clean) << "workers=" << workers;
  }
}

TEST(FaultToleranceSparkTest, SlowPathOomRetriedOnFreshContext) {
  const std::vector<uint8_t> clean = CleanMapBytes();
  for (int workers : kWorkerCounts) {
    EngineConfig config = SparkWith(workers);
    config.fault.max_task_attempts = 2;
    SparkJob job(config);
    DatasetPtr in = job.MakeInput(600);
    const int64_t base = job.engine.next_task_ordinal();
    // Attempt 1: the fast path aborts, then the slow-path re-execution hits a
    // simulated OOM. Attempt 2 (fresh context): aborts again, slow path runs
    // through. The abort of the failed attempt is lost with its outcome, so
    // exactly one abort is counted.
    job.engine.fault_plan().AbortTask(base + 2);
    job.engine.fault_plan().InjectSlowPathOom(base + 2);
    DatasetPtr out = job.engine.RunStage(in, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(stats.retries, 1) << "workers=" << workers;
    EXPECT_EQ(stats.aborts, 1) << "workers=" << workers;
    EXPECT_EQ(stats.fast_path_commits, 3) << "workers=" << workers;
    EXPECT_EQ(stats.tasks_run, 5) << "workers=" << workers;
    EXPECT_EQ(DatasetBytes(out), clean) << "workers=" << workers;
  }
}

TEST(FaultToleranceSparkTest, StragglerRelaunchedPastDeadline) {
  const std::vector<uint8_t> clean = CleanMapBytes();
  for (int workers : kWorkerCounts) {
    EngineConfig config = SparkWith(workers);
    config.fault.max_task_attempts = 2;
    config.fault.task_deadline_ms = 50;
    SparkJob job(config);
    DatasetPtr in = job.MakeInput(600);
    // The injected delay (far beyond the deadline) cooperatively observes the
    // cancellation probe and throws kStraggler; attempt 2 runs undelayed.
    job.engine.fault_plan().InjectDelay(job.engine.next_task_ordinal() + 0, 10000);
    DatasetPtr out = job.engine.RunStage(in, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(stats.straggler_relaunches, 1) << "workers=" << workers;
    EXPECT_EQ(stats.retries, 0) << "workers=" << workers;
    EXPECT_EQ(stats.tasks_run, 5) << "workers=" << workers;
    EXPECT_EQ(stats.fast_path_commits, 4) << "workers=" << workers;
    EXPECT_EQ(DatasetBytes(out), clean) << "workers=" << workers;
  }
}

TEST(FaultToleranceSparkTest, CorruptInputQuarantinedWhenPolicyAllows) {
  std::vector<uint8_t> reference;
  for (int workers : kWorkerCounts) {
    EngineConfig config = SparkWith(workers);
    config.fault.max_task_attempts = 3;  // must not be consumed: corruption is permanent
    config.fault.quarantine = QuarantinePolicy::kSkip;
    SparkJob job(config);
    DatasetPtr in = job.MakeInput(600);
    job.engine.fault_plan().InjectCorruption(job.engine.next_task_ordinal() + 1);
    DatasetPtr out = job.engine.RunStage(in, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(out->TotalRecords(), 450);  // 600 minus the poisoned partition
    EXPECT_EQ(stats.quarantined_tasks, 1) << "workers=" << workers;
    EXPECT_EQ(stats.quarantined_records, 150) << "workers=" << workers;
    EXPECT_EQ(stats.retries, 0) << "workers=" << workers;
    EXPECT_EQ(stats.fast_path_commits, 3) << "workers=" << workers;
    std::vector<uint8_t> bytes = DatasetBytes(out);
    if (workers == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
    }
  }
}

TEST(FaultToleranceSparkTest, CorruptInputFailsTheStageByDefault) {
  for (int workers : kWorkerCounts) {
    SparkJob job(SparkWith(workers));
    DatasetPtr in = job.MakeInput(600);
    job.engine.fault_plan().InjectCorruption(job.engine.next_task_ordinal() + 0);
    try {
      job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
      FAIL() << "expected corrupt input to fail the stage (workers=" << workers << ")";
    } catch (const TaskError& e) {
      EXPECT_EQ(e.kind(), TaskErrorKind::kCorruptInput);
    }
    // The engine survives: a clean stage over fresh input still runs.
    job.engine.fault_plan().Clear();
    DatasetPtr in2 = job.MakeInput(200);
    DatasetPtr out2 = job.engine.RunStage(in2, job.udfs,
                                          {NarrowOp::Map(job.double_value, job.pair)});
    EXPECT_EQ(out2->TotalRecords(), 200) << "workers=" << workers;
  }
}

TEST(FaultToleranceSparkTest, ReduceByKeyWithRetryIdenticalAcrossWorkerCounts) {
  std::vector<uint8_t> reference;
  int64_t reference_shuffle = 0;
  for (int workers : kWorkerCounts) {
    EngineConfig config = SparkWith(workers);
    config.fault.max_task_attempts = 2;
    SparkJob job(config);
    DatasetPtr in = job.MakeInput(1000);
    // Fail the first shuffle-write task's first attempt at entry.
    job.engine.fault_plan().InjectException(job.engine.next_task_ordinal() + 0);
    DatasetPtr out = job.engine.ReduceByKey(in, job.udfs, {}, KeySpec{job.get_key, false},
                                            job.sum_values);
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(out->TotalRecords(), 10);
    EXPECT_EQ(stats.retries, 1) << "workers=" << workers;
    std::vector<uint8_t> bytes = DatasetBytes(out);
    if (workers == 1) {
      reference = bytes;
      reference_shuffle = stats.shuffle_bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
      EXPECT_EQ(stats.shuffle_bytes, reference_shuffle) << "workers=" << workers;
    }
  }
}

// ---------------------------------------------------------------------------
// Adaptive speculation governor
// ---------------------------------------------------------------------------

TEST(SpeculationGovernorTest, DisabledByDefault) {
  SparkJob job(SparkWith(1));
  EXPECT_FALSE(job.engine.governor().enabled());
  EXPECT_TRUE(job.engine.governor().ShouldSpeculate());
}

TEST(SpeculationGovernorTest, FlipsOnceAtThresholdAndRoutesToSlowPath) {
  // Clean reference: two chained map stages, no faults, no governor.
  std::vector<uint8_t> clean;
  {
    SparkJob job(SparkWith(1));
    DatasetPtr mid = job.engine.RunStage(job.MakeInput(600), job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    DatasetPtr out = job.engine.RunStage(mid, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    clean = DatasetBytes(out);
  }
  for (int workers : kWorkerCounts) {
    EngineConfig config = SparkWith(workers);
    config.fault.governor_abort_threshold = 0.5;
    config.fault.governor_min_tasks = 4;
    SparkJob job(config);
    ASSERT_TRUE(job.engine.governor().enabled());
    DatasetPtr in = job.MakeInput(600);
    // Stage 1: every task aborts — abort rate 1.0 >= 0.5, so the governor
    // flips at the barrier and stage 2 skips speculation entirely.
    job.engine.ForceAborts(4);
    DatasetPtr mid = job.engine.RunStage(in, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    EXPECT_EQ(job.engine.stats().aborts, 4) << "workers=" << workers;
    EXPECT_EQ(job.engine.stats().governor_flips, 1) << "workers=" << workers;
    EXPECT_FALSE(job.engine.governor().ShouldSpeculate());
    DatasetPtr out = job.engine.RunStage(mid, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(stats.slow_path_direct, 4) << "workers=" << workers;
    EXPECT_EQ(stats.governor_flips, 1) << "workers=" << workers;  // exactly one flip
    EXPECT_EQ(stats.aborts, 4) << "workers=" << workers;  // no new aborts accrue
    EXPECT_EQ(DatasetBytes(out), clean) << "workers=" << workers;
  }
}

TEST(SpeculationGovernorTest, BelowThresholdKeepsSpeculating) {
  for (int workers : kWorkerCounts) {
    EngineConfig config = SparkWith(workers);
    config.fault.governor_abort_threshold = 0.75;
    config.fault.governor_min_tasks = 4;
    SparkJob job(config);
    DatasetPtr in = job.MakeInput(600);
    job.engine.ForceAborts(2);  // rate 0.5 < 0.75
    DatasetPtr mid = job.engine.RunStage(in, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    EXPECT_TRUE(job.engine.governor().ShouldSpeculate());
    DatasetPtr out = job.engine.RunStage(mid, job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(stats.governor_flips, 0) << "workers=" << workers;
    EXPECT_EQ(stats.slow_path_direct, 0) << "workers=" << workers;
    EXPECT_EQ(stats.fast_path_commits, 6) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Engine-level recovery: Hadoop
// ---------------------------------------------------------------------------

TEST(FaultToleranceHadoopTest, MapFaultsRecoveredIdenticallyAcrossWorkerCounts) {
  std::vector<uint8_t> reference;
  EngineStats reference_stats;
  for (int workers : kWorkerCounts) {
    HadoopConfig config = HadoopWith(workers);
    config.engine.fault.max_task_attempts = 2;
    HadoopJob job(config);
    DatasetPtr in = job.MakeInput(800);
    const int64_t base = job.engine.next_task_ordinal();
    job.engine.fault_plan().InjectException(base + 1);  // map task 1, attempt 1 only
    job.engine.fault_plan().AbortTask(base + 2);        // map task 2, every attempt
    DatasetPtr out = job.engine.RunJob(in, job.udfs, job.explode, job.pair,
                                       KeySpec{job.get_key, false}, job.sum_values,
                                       job.sum_values);
    EXPECT_EQ(out->TotalRecords(), 20);
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(stats.retries, 1) << "workers=" << workers;
    EXPECT_EQ(stats.aborts, 1) << "workers=" << workers;
    std::vector<uint8_t> bytes = DatasetBytes(out);
    if (workers == 1) {
      reference = bytes;
      reference_stats = stats;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
      EXPECT_EQ(stats.tasks_run, reference_stats.tasks_run);
      EXPECT_EQ(stats.map_tasks, reference_stats.map_tasks);
      EXPECT_EQ(stats.reduce_tasks, reference_stats.reduce_tasks);
      EXPECT_EQ(stats.spills, reference_stats.spills);
      EXPECT_EQ(stats.fast_path_commits, reference_stats.fast_path_commits);
      EXPECT_EQ(stats.shuffle_bytes, reference_stats.shuffle_bytes);
      EXPECT_EQ(stats.combine_calls, reference_stats.combine_calls);
    }
  }
}

TEST(FaultToleranceHadoopTest, GovernorRoutesReducePhaseToSlowPath) {
  std::vector<uint8_t> reference;
  for (int workers : kWorkerCounts) {
    HadoopConfig config = HadoopWith(workers);
    config.engine.fault.governor_abort_threshold = 0.5;
    config.engine.fault.governor_min_tasks = 4;
    HadoopJob job(config);
    DatasetPtr in = job.MakeInput(800);
    const int64_t base = job.engine.next_task_ordinal();
    for (int t = 0; t < 4; ++t) {
      job.engine.fault_plan().AbortTask(base + t);  // every map task aborts
    }
    DatasetPtr out = job.engine.RunJob(in, job.udfs, job.explode, job.pair,
                                       KeySpec{job.get_key, false}, job.sum_values,
                                       job.sum_values);
    EXPECT_EQ(out->TotalRecords(), 20);
    const EngineStats& stats = job.engine.stats();
    EXPECT_EQ(stats.aborts, 4) << "workers=" << workers;
    EXPECT_EQ(stats.governor_flips, 1) << "workers=" << workers;
    // The reduce phase ran degraded: one direct-slow-path count per reducer.
    EXPECT_EQ(stats.slow_path_direct, 3) << "workers=" << workers;
    EXPECT_FALSE(job.engine.governor().ShouldSpeculate());
    std::vector<uint8_t> bytes = DatasetBytes(out);
    if (workers == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace gerenuk
