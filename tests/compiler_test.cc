// Tests for the Gerenuk compiler stack: offset/size expressions (§3.3), the
// SER taint analyzer and its four violation conditions (§3.2, §3.4), and the
// Algorithm 1 transformer (§3.5).
#include <gtest/gtest.h>

#include <map>

#include "src/analysis/layout.h"
#include "src/analysis/ser_analyzer.h"
#include "src/ir/builder.h"
#include "src/ir/ir.h"
#include "src/runtime/klass.h"
#include "src/transform/transformer.h"

namespace gerenuk {
namespace {

// --------------------------------------------------------------------------
// Data structure analyzer
// --------------------------------------------------------------------------

TEST(ExprPoolTest, ConstantEval) {
  ExprPool pool;
  int id = pool.AddConstant(42);
  EXPECT_EQ(pool.Eval(id, [](int64_t) { return 0; }), 42);
  EXPECT_TRUE(pool.Get(id).IsConstant());
}

TEST(ExprPoolTest, SymbolicEvalReadsLengths) {
  // offset = 8 + 4 * len@(0): with len 10 stored at relative offset 0, the
  // result is 48.
  ExprPool pool;
  int len_at = pool.AddConstant(0);
  SizeExpr expr;
  expr.constant = 8;
  expr.terms.push_back({4, len_at});
  int id = pool.Add(expr);
  EXPECT_EQ(pool.Eval(id, [](int64_t off) { return off == 0 ? 10 : -1; }), 48);
}

TEST(DataStructAnalyzerTest, PaperClassCExample) {
  // §3.3: class C { int a; long[] b; double c; }
  //   offset(a) = 0, offset(b) = 4,
  //   offset(c) = 4 + 4 + 8 * readNative(BASE_C, 4, 4),
  //   size(C)   = 16 + 8 * readNative(BASE_C, 4, 4).
  KlassRegistry reg;
  const Klass* long_array = reg.DefineArray(FieldKind::kI64);
  const Klass* c_klass = reg.DefineClass("C", {
                                                  {"a", FieldKind::kI32, nullptr, 0},
                                                  {"b", FieldKind::kRef, long_array, 0},
                                                  {"c", FieldKind::kF64, nullptr, 0},
                                              });
  ExprPool pool;
  DataStructAnalyzer analyzer(pool);
  std::string error;
  ASSERT_TRUE(analyzer.AnalyzeTopLevel(c_klass, &error)) << error;

  const ClassLayout* layout = analyzer.LayoutOf(c_klass);
  ASSERT_NE(layout, nullptr);
  EXPECT_TRUE(layout->fields[0].is_constant);
  EXPECT_EQ(layout->fields[0].const_offset, 0);
  EXPECT_TRUE(layout->fields[1].is_constant);
  EXPECT_EQ(layout->fields[1].const_offset, 4);
  EXPECT_FALSE(layout->fields[2].is_constant);
  EXPECT_FALSE(layout->fixed_size);

  // Evaluate against a simulated record whose array length (stored at
  // relative offset 4) is 5: offset(c) = 8 + 8*5 = 48; size = 16 + 8*5 = 56.
  auto read = [](int64_t off) -> int32_t {
    EXPECT_EQ(off, 4);
    return 5;
  };
  EXPECT_EQ(pool.Eval(layout->fields[2].offset_expr, read), 48);
  EXPECT_EQ(pool.Eval(layout->size_expr, read), 56);
}

TEST(DataStructAnalyzerTest, FixedSizeClassIsFullyConstant) {
  KlassRegistry reg;
  const Klass* point = reg.DefineClass("Point", {
                                                    {"x", FieldKind::kF64, nullptr, 0},
                                                    {"y", FieldKind::kF64, nullptr, 0},
                                                });
  const Klass* pair = reg.DefineClass("Pair", {
                                                  {"first", FieldKind::kRef, point, 0},
                                                  {"second", FieldKind::kRef, point, 0},
                                                  {"tag", FieldKind::kI32, nullptr, 0},
                                              });
  ExprPool pool;
  DataStructAnalyzer analyzer(pool);
  std::string error;
  ASSERT_TRUE(analyzer.AnalyzeTopLevel(pair, &error)) << error;

  const ClassLayout* layout = analyzer.LayoutOf(pair);
  EXPECT_TRUE(layout->fixed_size);
  EXPECT_EQ(layout->const_size, 16 + 16 + 4);
  EXPECT_EQ(layout->fields[0].const_offset, 0);
  EXPECT_EQ(layout->fields[1].const_offset, 16);  // after the inlined Point
  EXPECT_EQ(layout->fields[2].const_offset, 32);
  // The nested class got its own layout.
  EXPECT_NE(analyzer.LayoutOf(point), nullptr);
  EXPECT_TRUE(analyzer.Contains(point));
}

TEST(DataStructAnalyzerTest, NestedVariableSizeShiftsSymbolicOffsets) {
  // Outer { i64 id; Inner in; f64 tail; } with Inner { i32[] xs; }.
  // offset(tail) = 8 + (4 + 4*len) where len is at offset 8 of Outer.
  KlassRegistry reg;
  const Klass* int_array = reg.DefineArray(FieldKind::kI32);
  const Klass* inner = reg.DefineClass("Inner", {{"xs", FieldKind::kRef, int_array, 0}});
  const Klass* outer = reg.DefineClass("Outer", {
                                                    {"id", FieldKind::kI64, nullptr, 0},
                                                    {"in", FieldKind::kRef, inner, 0},
                                                    {"tail", FieldKind::kF64, nullptr, 0},
                                                });
  ExprPool pool;
  DataStructAnalyzer analyzer(pool);
  std::string error;
  ASSERT_TRUE(analyzer.AnalyzeTopLevel(outer, &error)) << error;

  const ClassLayout* layout = analyzer.LayoutOf(outer);
  std::map<int64_t, int32_t> record = {{8, 3}};  // xs.length == 3 at offset 8
  auto read = [&record](int64_t off) { return record.at(off); };
  EXPECT_EQ(pool.Eval(layout->fields[2].offset_expr, read), 8 + 4 + 4 * 3);
  EXPECT_EQ(pool.Eval(layout->size_expr, read), 8 + 4 + 12 + 8);
}

TEST(DataStructAnalyzerTest, RejectsRecursiveShape) {
  KlassRegistry reg;
  // Mutually-recursive pair of classes; KlassRegistry needs two passes, so
  // build the cycle via a forward-declared self reference.
  std::vector<FieldInfo> fields = {{"next", FieldKind::kRef, nullptr, 0}};
  const Klass* node = reg.DefineClass("ListNode", std::move(fields));
  // Patch the self-reference (the registry API takes targets at definition
  // time; a self loop needs this two-step setup).
  const_cast<FieldInfo&>(node->fields()[0]).target = node;

  ExprPool pool;
  DataStructAnalyzer analyzer(pool);
  std::string error;
  EXPECT_FALSE(analyzer.AnalyzeTopLevel(node, &error));
  EXPECT_NE(error.find("not a tree"), std::string::npos);
}

TEST(DataStructAnalyzerTest, VariableRecordArrayOnlyInTailPosition) {
  KlassRegistry reg;
  const Klass* byte_array = reg.DefineArray(FieldKind::kI8);
  const Klass* post = reg.DefineClass("Post", {{"text", FieldKind::kRef, byte_array, 0}});
  const Klass* post_array = reg.DefineArray(FieldKind::kRef, post);

  const Klass* account_ok = reg.DefineClass("AccountOk", {
                                                             {"id", FieldKind::kI64, nullptr, 0},
                                                             {"posts", FieldKind::kRef, post_array, 0},
                                                         });
  const Klass* account_bad =
      reg.DefineClass("AccountBad", {
                                        {"posts", FieldKind::kRef, post_array, 0},
                                        {"id", FieldKind::kI64, nullptr, 0},  // follows open array
                                    });
  ExprPool pool;
  DataStructAnalyzer analyzer(pool);
  std::string error;
  EXPECT_TRUE(analyzer.AnalyzeTopLevel(account_ok, &error)) << error;
  EXPECT_FALSE(analyzer.LayoutOf(account_ok)->fixed_size);
  EXPECT_EQ(analyzer.LayoutOf(account_ok)->size_expr, -1);  // open-ended

  DataStructAnalyzer analyzer2(pool);
  EXPECT_FALSE(analyzer2.AnalyzeTopLevel(account_bad, &error));
  EXPECT_NE(error.find("tail position"), std::string::npos);
}

TEST(DataStructAnalyzerTest, SchemaDumpMentionsEveryField) {
  KlassRegistry reg;
  const Klass* double_array = reg.DefineArray(FieldKind::kF64);
  const Klass* vec = reg.DefineClass("Vec", {{"values", FieldKind::kRef, double_array, 0}});
  const Klass* lp = reg.DefineClass("LP", {
                                              {"label", FieldKind::kF64, nullptr, 0},
                                              {"features", FieldKind::kRef, vec, 0},
                                          });
  ExprPool pool;
  DataStructAnalyzer analyzer(pool);
  std::string error;
  ASSERT_TRUE(analyzer.AnalyzeTopLevel(lp, &error));
  std::string schema = analyzer.SchemaToString(lp);
  EXPECT_NE(schema.find("class LP"), std::string::npos);
  EXPECT_NE(schema.find("label"), std::string::npos);
  EXPECT_NE(schema.find("class Vec"), std::string::npos);
  EXPECT_NE(schema.find("values"), std::string::npos);
}

// --------------------------------------------------------------------------
// SER analyzer + transformer, on a realistic map-style program
// --------------------------------------------------------------------------

struct TestProgram {
  KlassRegistry reg;
  const Klass* double_array;
  const Klass* dense_vector;
  const Klass* labeled_point;
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  SerProgram program;

  TestProgram() {
    double_array = reg.DefineArray(FieldKind::kF64);
    dense_vector = reg.DefineClass("DenseVector", {
                                                      {"numActives", FieldKind::kI32, nullptr, 0},
                                                      {"values", FieldKind::kRef, double_array, 0},
                                                  });
    labeled_point =
        reg.DefineClass("LabeledPoint", {
                                            {"label", FieldKind::kF64, nullptr, 0},
                                            {"features", FieldKind::kRef, dense_vector, 0},
                                        });
    std::string error;
    GERENUK_CHECK(layouts.AnalyzeTopLevel(labeled_point, &error)) << error;
  }

  // scale(lp): returns a new LabeledPoint with label*2 and copied features.
  Function* BuildScaleUdf() {
    Function* func = program.AddFunction("scale");
    FunctionBuilder b(func);
    int lp = b.Param("lp", IrType::Ref(labeled_point));
    func->return_type = IrType::Ref(labeled_point);
    int label = b.FieldLoad(lp, labeled_point, "label");
    int vec = b.FieldLoad(lp, labeled_point, "features");
    int values = b.FieldLoad(vec, dense_vector, "values");
    int len = b.ArrayLength(values);
    int new_values = b.NewArray(double_array, len);
    b.For(len, [&](int i) {
      int v = b.ArrayLoad(values, i, IrType::F64());
      b.ArrayStore(new_values, i, v);
    });
    int new_vec = b.NewObject(dense_vector);
    int num = b.FieldLoad(vec, dense_vector, "numActives");
    b.FieldStore(new_vec, dense_vector, "numActives", num);
    b.FieldStore(new_vec, dense_vector, "values", new_values);
    int new_lp = b.NewObject(labeled_point);
    int two = b.ConstF(2.0);
    int doubled = b.BinOp(BinOpKind::kMul, label, two);
    b.FieldStore(new_lp, labeled_point, "label", doubled);
    b.FieldStore(new_lp, labeled_point, "features", new_vec);
    b.Return(new_lp);
    b.Done();
    return func;
  }

  void BuildBody(Function* udf) {
    Function* body = program.AddFunction("task_body");
    FunctionBuilder b(body);
    int rec = b.Deserialize(labeled_point);
    int out = b.Call(udf, {rec});
    b.Serialize(out);
    b.Return();
    b.Done();
    program.body = body;
  }
};

TEST(SerAnalyzerTest, CleanMapProgramHasNoViolations) {
  TestProgram tp;
  tp.BuildBody(tp.BuildScaleUdf());
  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();

  EXPECT_TRUE(analysis.violations.empty());
  EXPECT_GT(analysis.data_statements.size(), 10u);
  EXPECT_GT(analysis.tainted_variables, 5);
  // The deserialized record is kTop; loaded sub-objects are kLower.
  const Function* body = tp.program.body;
  EXPECT_EQ(analysis.TaintOf(body->id, body->body[0].dst), Taint::kTop);
}

TEST(SerAnalyzerTest, FreshnessDistinguishesConstructionFromInput) {
  TestProgram tp;
  Function* udf = tp.BuildScaleUdf();
  tp.BuildBody(udf);
  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();

  // Parameter lp comes from input: not fresh. The new LabeledPoint is fresh.
  EXPECT_FALSE(analysis.IsFresh(udf->id, 0));
  for (const Statement& s : udf->body) {
    if (s.op == Op::kNewObject && s.klass->name() == "LabeledPoint") {
      EXPECT_TRUE(analysis.IsFresh(udf->id, s.dst));
    }
  }
}

TEST(SerAnalyzerTest, Violation1LoadAndEscape) {
  // v = lp.features; holder.slot = v;  — a lower-level data object escapes
  // into a plain heap object (§3.4 violation 1).
  TestProgram tp;
  const Klass* holder =
      tp.reg.DefineClass("Holder", {{"slot", FieldKind::kRef, tp.dense_vector, 0}});
  Function* func = tp.program.AddFunction("escape");
  FunctionBuilder b(func);
  int lp = b.Param("lp", IrType::Ref(tp.labeled_point));
  int vec = b.FieldLoad(lp, tp.labeled_point, "features");
  int h = b.NewObject(holder);
  b.FieldStore(h, holder, "slot", vec);
  b.Return();
  b.Done();

  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  ASSERT_EQ(analysis.violations.size(), 1u);
  EXPECT_EQ(analysis.violations[0].reason, AbortReason::kLoadAndEscape);
}

TEST(SerAnalyzerTest, Violation2HeapRefIntoDataObject) {
  // lp.features = someHeapObject — disrupt-the-native-space.
  TestProgram tp;
  Function* func = tp.program.AddFunction("disrupt");
  FunctionBuilder b(func);
  int lp = b.Param("lp", IrType::Ref(tp.labeled_point));
  // A DenseVector NOT in the data flow (e.g. from a cache): modeled as an
  // untainted param of a non-hierarchy holder... simplest: an untyped local
  // that never gets data taint.
  int heap_vec = b.Local("cached", IrType::Ref(tp.dense_vector));
  b.FieldStore(lp, tp.labeled_point, "features", heap_vec);
  b.Return();
  b.Done();

  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  ASSERT_EQ(analysis.violations.size(), 1u);
  EXPECT_EQ(analysis.violations[0].reason, AbortReason::kDisruptNativeSpace);
}

TEST(SerAnalyzerTest, Violation2VectorResizePattern) {
  // The §4.4 StackOverflow-analytics pattern: replacing the internal array
  // of a *deserialized* record is a reference mutation of non-fresh data.
  TestProgram tp;
  Function* func = tp.program.AddFunction("resize");
  FunctionBuilder b(func);
  int lp = b.Param("lp", IrType::Ref(tp.labeled_point));
  int vec = b.FieldLoad(lp, tp.labeled_point, "features");
  int n = b.ConstI(16);
  int bigger = b.NewArray(tp.double_array, n);
  b.FieldStore(vec, tp.dense_vector, "values", bigger);
  b.Return();
  b.Done();

  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  ASSERT_EQ(analysis.violations.size(), 1u);
  EXPECT_EQ(analysis.violations[0].reason, AbortReason::kDisruptNativeSpace);
  EXPECT_NE(analysis.violations[0].detail.find("non-fresh"), std::string::npos);
}

TEST(SerAnalyzerTest, Violation3NativeMethod) {
  TestProgram tp;
  Function* func = tp.program.AddFunction("native_call");
  FunctionBuilder b(func);
  int lp = b.Param("lp", IrType::Ref(tp.labeled_point));
  b.CallNative("writeToSocket", {lp}, IrType::Void());
  b.Return();
  b.Done();

  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  ASSERT_EQ(analysis.violations.size(), 1u);
  EXPECT_EQ(analysis.violations[0].reason, AbortReason::kInvokeNativeMethod);
}

TEST(SerAnalyzerTest, IntrinsicNativeMethodIsAllowed) {
  TestProgram tp;
  Function* func = tp.program.AddFunction("hash");
  FunctionBuilder b(func);
  int lp = b.Param("lp", IrType::Ref(tp.labeled_point));
  b.CallNative("hashCode", {lp}, IrType::I64());
  b.Return();
  b.Done();

  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  EXPECT_TRUE(analysis.violations.empty());
}

TEST(SerAnalyzerTest, Violation4Monitor) {
  TestProgram tp;
  Function* func = tp.program.AddFunction("lock");
  FunctionBuilder b(func);
  int lp = b.Param("lp", IrType::Ref(tp.labeled_point));
  int vec = b.FieldLoad(lp, tp.labeled_point, "features");
  b.MonitorEnter(vec);
  b.MonitorExit(vec);
  b.Return();
  b.Done();

  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  ASSERT_EQ(analysis.violations.size(), 2u);  // enter + exit
  EXPECT_EQ(analysis.violations[0].reason, AbortReason::kUseObjectMetainfo);
}

TEST(SerAnalyzerTest, ControlPathIsUntouched) {
  // A statement manipulating only non-data objects must not be selected.
  TestProgram tp;
  const Klass* counter = tp.reg.DefineClass("Counter", {{"n", FieldKind::kI64, nullptr, 0}});
  Function* func = tp.program.AddFunction("mixed");
  FunctionBuilder b(func);
  int lp = b.Param("lp", IrType::Ref(tp.labeled_point));
  int label = b.FieldLoad(lp, tp.labeled_point, "label");  // data path
  int ctr = b.NewObject(counter);                          // control path
  int one = b.ConstI(1);
  b.FieldStore(ctr, counter, "n", one);                    // control path
  b.Serialize(lp);
  (void)label;
  b.Return();
  b.Done();

  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  EXPECT_TRUE(analysis.violations.empty());
  // The counter statements are not data statements.
  for (const StmtRef& ref : analysis.data_statements) {
    const Statement& s = tp.program.function(ref.func)->body[ref.index];
    if (s.op == Op::kNewObject || s.op == Op::kFieldStore) {
      EXPECT_NE(s.klass, counter);
    }
  }
}

TEST(TransformerTest, MapProgramTransformsToNativeOps) {
  TestProgram tp;
  Function* udf = tp.BuildScaleUdf();
  tp.BuildBody(udf);
  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  Transformer transformer(tp.program, analysis, tp.layouts);
  TransformResult result = transformer.Run();

  EXPECT_EQ(result.stats.aborts_inserted, 0);
  EXPECT_GT(result.stats.statements_transformed, 10);
  EXPECT_EQ(result.stats.functions_transformed, 2);

  // Case 1 & 8: the body's source/sink got rewritten.
  const Function* body = result.transformed->body;
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->body[0].op, Op::kGetAddress);
  bool saw_gwrite = false;
  for (const Statement& s : body->body) {
    saw_gwrite |= s.op == Op::kGWriteObject;
    EXPECT_NE(s.op, Op::kDeserialize);
    EXPECT_NE(s.op, Op::kSerialize);
  }
  EXPECT_TRUE(saw_gwrite);

  // Case 4/5/6: no heap-object data ops survive in the transformed UDF.
  const Function* scaled = result.transformed->function(udf->id);
  bool saw_read_native = false;
  bool saw_append = false;
  bool saw_attach = false;
  for (const Statement& s : scaled->body) {
    EXPECT_NE(s.op, Op::kFieldLoad);
    EXPECT_NE(s.op, Op::kFieldStore);
    EXPECT_NE(s.op, Op::kNewObject);
    EXPECT_NE(s.op, Op::kNewArray);
    saw_read_native |= s.op == Op::kReadNative;
    saw_append |= s.op == Op::kAppendRecord || s.op == Op::kAppendArray;
    saw_attach |= s.op == Op::kAttachField;
  }
  EXPECT_TRUE(saw_read_native);
  EXPECT_TRUE(saw_append);
  EXPECT_TRUE(saw_attach);

  // The original program is untouched (slow path preserved).
  EXPECT_EQ(tp.program.body->body[0].op, Op::kDeserialize);
}

TEST(TransformerTest, ViolationGetsAbortFence) {
  TestProgram tp;
  Function* func = tp.program.AddFunction("resize");
  FunctionBuilder b(func);
  int lp = b.Param("lp", IrType::Ref(tp.labeled_point));
  int vec = b.FieldLoad(lp, tp.labeled_point, "features");
  int n = b.ConstI(16);
  int bigger = b.NewArray(tp.double_array, n);
  b.FieldStore(vec, tp.dense_vector, "values", bigger);
  b.Return();
  b.Done();

  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  Transformer transformer(tp.program, analysis, tp.layouts);
  TransformResult result = transformer.Run();

  EXPECT_EQ(result.stats.aborts_inserted, 1);
  const Function* out = result.transformed->function(func->id);
  // The abort precedes the (kept, unreached) violating statement.
  bool found = false;
  for (size_t i = 0; i + 1 < out->body.size(); ++i) {
    if (out->body[i].op == Op::kAbort) {
      EXPECT_EQ(out->body[i].abort_reason, AbortReason::kDisruptNativeSpace);
      EXPECT_EQ(out->body[i + 1].op, Op::kFieldStore);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TransformerTest, OffsetExprsAttachedToNativeOps) {
  TestProgram tp;
  Function* udf = tp.BuildScaleUdf();
  tp.BuildBody(udf);
  SerAnalyzer analyzer(tp.program, tp.layouts);
  SerAnalysis analysis = analyzer.Run();
  Transformer transformer(tp.program, analysis, tp.layouts);
  TransformResult result = transformer.Run();

  const Function* scaled = result.transformed->function(udf->id);
  for (const Statement& s : scaled->body) {
    if (s.op == Op::kReadNative || s.op == Op::kWriteNative || s.op == Op::kAddrOfField) {
      EXPECT_GE(s.expr_id, 0) << PrintFunction(*scaled);
    }
  }
  // label is the first declared field of LabeledPoint: constant offset 0.
  for (const Statement& s : scaled->body) {
    if (s.op == Op::kReadNative && s.klass == tp.labeled_point) {
      const SizeExpr& expr = tp.pool.Get(s.expr_id);
      EXPECT_TRUE(expr.IsConstant());
      EXPECT_EQ(expr.constant, 0);
    }
  }
}

TEST(IrPrinterTest, ListsAllStatements) {
  TestProgram tp;
  Function* udf = tp.BuildScaleUdf();
  std::string text = PrintFunction(*udf);
  EXPECT_NE(text.find("func scale"), std::string::npos);
  EXPECT_NE(text.find("new DenseVector"), std::string::npos);
  EXPECT_NE(text.find("return"), std::string::npos);
}

}  // namespace
}  // namespace gerenuk
