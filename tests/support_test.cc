// Unit tests for the support library: byte buffers/readers, varints, RNG
// determinism, samplers, and metrics accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/support/bytes.h"
#include "src/support/metrics.h"
#include "src/support/rng.h"

namespace gerenuk {
namespace {

TEST(ByteBufferTest, PrimitivesRoundTrip) {
  ByteBuffer buf;
  buf.WriteU8(0xab);
  buf.WriteBool(true);
  buf.WriteU16(0x1234);
  buf.WriteU32(0xdeadbeef);
  buf.WriteU64(0x0123456789abcdefULL);
  buf.WriteI32(-42);
  buf.WriteI64(-1234567890123LL);
  buf.WriteF32(1.5f);
  buf.WriteF64(-2.25);

  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadU8(), 0xab);
  EXPECT_TRUE(reader.ReadBool());
  EXPECT_EQ(reader.ReadU16(), 0x1234);
  EXPECT_EQ(reader.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.ReadI32(), -42);
  EXPECT_EQ(reader.ReadI64(), -1234567890123LL);
  EXPECT_EQ(reader.ReadF32(), 1.5f);
  EXPECT_EQ(reader.ReadF64(), -2.25);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteBufferTest, VarintRoundTrip) {
  ByteBuffer buf;
  const uint32_t u32_values[] = {0, 1, 127, 128, 300, 0x7fffffff, 0xffffffff};
  const int32_t i32_values[] = {0, -1, 1, -64, 64, INT32_MIN, INT32_MAX};
  const uint64_t u64_values[] = {0, 1, 0xffffffffULL, 0xffffffffffffffffULL};
  const int64_t i64_values[] = {0, -1, INT64_MIN, INT64_MAX, 123456789};
  for (uint32_t v : u32_values) {
    buf.WriteVarU32(v);
  }
  for (int32_t v : i32_values) {
    buf.WriteVarI32(v);
  }
  for (uint64_t v : u64_values) {
    buf.WriteVarU64(v);
  }
  for (int64_t v : i64_values) {
    buf.WriteVarI64(v);
  }

  ByteReader reader(buf.bytes());
  for (uint32_t v : u32_values) {
    EXPECT_EQ(reader.ReadVarU32(), v);
  }
  for (int32_t v : i32_values) {
    EXPECT_EQ(reader.ReadVarI32(), v);
  }
  for (uint64_t v : u64_values) {
    EXPECT_EQ(reader.ReadVarU64(), v);
  }
  for (int64_t v : i64_values) {
    EXPECT_EQ(reader.ReadVarI64(), v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteBufferTest, VarintSmallValuesAreOneByte) {
  ByteBuffer buf;
  buf.WriteVarU32(127);
  EXPECT_EQ(buf.size(), 1u);
  buf.WriteVarU32(128);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(ByteBufferTest, StringRoundTrip) {
  ByteBuffer buf;
  buf.WriteString("hello");
  buf.WriteString("");
  buf.WriteString(std::string(1000, 'x'));
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadString(), "hello");
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_EQ(reader.ReadString(), std::string(1000, 'x'));
}

TEST(ByteBufferTest, PatchU32) {
  ByteBuffer buf;
  size_t pos = buf.size();
  buf.WriteU32(0);
  buf.WriteU8(7);
  buf.PatchU32(pos, 42);
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadU32(), 42u);
  EXPECT_EQ(reader.ReadU8(), 7);
}

TEST(ByteReaderTest, SeekAndPosition) {
  ByteBuffer buf;
  buf.WriteU32(1);
  buf.WriteU32(2);
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadU32(), 1u);
  EXPECT_EQ(reader.position(), 4u);
  reader.Seek(0);
  EXPECT_EQ(reader.ReadU32(), 1u);
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(RngTest, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(ZipfSamplerTest, RanksInRangeAndSkewed) {
  Rng rng(13);
  ZipfSampler zipf(1000, 1.1);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t rank = zipf.Sample(rng);
    ASSERT_LT(rank, 1000u);
    counts[rank]++;
  }
  // Rank 0 must dominate rank 99 heavily under a Zipfian law.
  EXPECT_GT(counts[0], 10 * std::max(counts[99], 1));
}

TEST(MetricsTest, PhaseTimesAccumulate) {
  PhaseTimes times;
  times.Add(Phase::kCompute, 100);
  times.Add(Phase::kGc, 50);
  times.Add(Phase::kCompute, 25);
  EXPECT_EQ(times.Get(Phase::kCompute), 125);
  EXPECT_EQ(times.Get(Phase::kGc), 50);
  EXPECT_EQ(times.TotalNanos(), 175);

  PhaseTimes other;
  other.Add(Phase::kSerialize, 10);
  times += other;
  EXPECT_EQ(times.TotalNanos(), 185);
}

TEST(MetricsTest, ScopedPhaseChargesPhase) {
  PhaseTimes times;
  {
    ScopedPhase scope(times, Phase::kDeserialize);
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 100000; ++i) {
      sink = sink + i;
    }
  }
  EXPECT_GT(times.Get(Phase::kDeserialize), 0);
  EXPECT_EQ(times.Get(Phase::kCompute), 0);
}

TEST(MetricsTest, MemoryTrackerPeak) {
  MemoryTracker tracker;
  tracker.Allocated(100);
  tracker.Allocated(200);
  tracker.Freed(150);
  tracker.Allocated(50);
  EXPECT_EQ(tracker.live_bytes(), 200);
  EXPECT_EQ(tracker.peak_bytes(), 300);
}

TEST(MetricsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.00 MB");
}

TEST(MetricsTest, FormatBytesNegativeAndHuge) {
  EXPECT_EQ(FormatBytes(-512), "-512 B");
  EXPECT_EQ(FormatBytes(-2048), "-2.00 KB");
  EXPECT_EQ(FormatBytes(int64_t{2} << 40), "2.00 TB");
  EXPECT_EQ(FormatBytes(int64_t{3} << 50), "3.00 PB");
  EXPECT_EQ(FormatBytes(int64_t{5} << 60), "5.00 EB");
  EXPECT_EQ(FormatBytes(INT64_MAX), "8.00 EB");
  EXPECT_EQ(FormatBytes(INT64_MIN), "-8.00 EB");
}

TEST(MetricsTest, FormatNanosNegativeAndHuge) {
  EXPECT_EQ(FormatNanos(500), "500 ns");
  EXPECT_EQ(FormatNanos(-500), "-500 ns");
  EXPECT_EQ(FormatNanos(-1500), "-1.50 us");
  EXPECT_EQ(FormatNanos(-2000000), "-2.00 ms");
  EXPECT_EQ(FormatNanos(int64_t{90} * 1000 * 1000 * 1000), "90.00 s");
}

TEST(MetricsTest, StopwatchAccumulatesAcrossRuns) {
  Stopwatch watch;
  watch.Start();
  watch.Stop();
  int64_t first = watch.ElapsedNanos();
  EXPECT_GE(first, 0);
  watch.Start();
  watch.Stop();
  EXPECT_GE(watch.ElapsedNanos(), first);
  watch.Reset();
  EXPECT_EQ(watch.ElapsedNanos(), 0);
}

TEST(MetricsTest, StopwatchUnmatchedStopIsRejected) {
  // Stop() without a prior Start() must not charge phantom time: debug
  // builds assert, release builds drop the unmatched Stop.
#ifdef NDEBUG
  Stopwatch watch;
  watch.Stop();
  EXPECT_EQ(watch.ElapsedNanos(), 0);
  watch.Start();
  watch.Stop();
  watch.Stop();  // second Stop is unmatched: accumulates nothing further
  int64_t elapsed = watch.ElapsedNanos();
  watch.Stop();
  EXPECT_EQ(watch.ElapsedNanos(), elapsed);
#else
  EXPECT_DEATH(
      {
        Stopwatch watch;
        watch.Stop();
      },
      "Stopwatch");
#endif
}

TEST(MetricsTest, HistogramHandlesNegativeAndHugeValues) {
  Histogram hist(MetricUnit::kBytes);
  EXPECT_EQ(hist.Render(), "count=0");
  hist.Record(-4096);
  hist.Record(0);
  hist.Record(1);
  hist.Record(int64_t{3} << 41);  // ~6 TB
  hist.Record(INT64_MAX);
  EXPECT_EQ(hist.count(), 5);
  EXPECT_EQ(hist.min(), -4096);
  EXPECT_EQ(hist.max(), INT64_MAX);
  EXPECT_EQ(hist.sum(), INT64_MAX);  // saturates instead of overflowing
  // The p0 sample falls in the underflow bucket (upper bound 0); the clamp
  // keeps the answer within the observed [min, max] range.
  EXPECT_EQ(hist.PercentileApprox(0.0), 0);
  EXPECT_EQ(hist.PercentileApprox(1.0), INT64_MAX);
  std::string rendered = hist.Render();
  EXPECT_NE(rendered.find("count=5"), std::string::npos);
  EXPECT_NE(rendered.find("min=-4.00 KB"), std::string::npos);
  EXPECT_NE(rendered.find("max=8.00 EB"), std::string::npos);
}

TEST(MetricsTest, HistogramMergePreservesExtremes) {
  Histogram a(MetricUnit::kNanos);
  a.Record(100);
  a.Record(200);
  Histogram b(MetricUnit::kNanos);
  b.Record(-50);
  b.Record(int64_t{1} << 50);
  a += b;
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.min(), -50);
  EXPECT_EQ(a.max(), int64_t{1} << 50);
  Histogram empty;
  a += empty;  // merging an empty histogram must not disturb min/max
  EXPECT_EQ(a.min(), -50);
  EXPECT_EQ(a.max(), int64_t{1} << 50);
}

TEST(MetricsTest, RegistryMergeAddsCountersAndHistograms) {
  MetricsRegistry a;
  a.Counter("tasks") = 3;
  a.Hist("latency_ns").Record(100);
  MetricsRegistry b;
  b.Counter("tasks") = 2;
  b.Counter("only_in_b") = 7;
  b.Hist("latency_ns").Record(300);
  b.Hist("bytes", MetricUnit::kBytes).Record(1 << 20);
  a.Merge(b);
  EXPECT_EQ(a.Counter("tasks"), 5);
  EXPECT_EQ(a.Counter("only_in_b"), 7);
  EXPECT_EQ(a.Hist("latency_ns").count(), 2);
  EXPECT_EQ(a.Hist("bytes").count(), 1);
  std::string rendered = a.Render();
  EXPECT_NE(rendered.find("tasks"), std::string::npos);
  EXPECT_NE(rendered.find("latency_ns"), std::string::npos);
}

TEST(MetricsTest, EngineStatsExportToRegistry) {
  EngineStats stats;
  stats.tasks_run = 4;
  stats.aborts = 1;
  stats.plan_ops.dispatches[0] = 10;
  stats.plan_ops.samples = 2;
  MetricsRegistry registry;
  stats.ExportTo(&registry);
  EXPECT_EQ(registry.Counter("tasks_run"), 4);
  EXPECT_EQ(registry.Counter("aborts"), 1);
  EXPECT_EQ(registry.Counter("plan_op_dispatches"), 10);
  EXPECT_EQ(registry.Counter("plan_op_samples"), 2);
}

TEST(MetricsTest, OpProfileMergeAndRender) {
  OpProfile a;
  a.dispatches[1] = 5;
  a.sampled_nanos[1] = 1000;
  a.samples = 1;
  OpProfile b;
  b.dispatches[1] = 3;
  b.dispatches[2] = 9;
  b.samples = 2;
  a += b;
  EXPECT_EQ(a.total_dispatches(), 17);
  EXPECT_EQ(a.samples, 3);
  EXPECT_FALSE(a.empty());
  auto name = [](int op) -> const char* { return op == 1 ? "op_one" : "op_other"; };
  std::string rendered = a.Render(name, /*top_n=*/2);
  EXPECT_NE(rendered.find("op_other"), std::string::npos);  // highest dispatch count
  EXPECT_NE(rendered.find("op_one"), std::string::npos);
}

}  // namespace
}  // namespace gerenuk
