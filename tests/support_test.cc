// Unit tests for the support library: byte buffers/readers, varints, RNG
// determinism, samplers, and metrics accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/support/bytes.h"
#include "src/support/metrics.h"
#include "src/support/rng.h"

namespace gerenuk {
namespace {

TEST(ByteBufferTest, PrimitivesRoundTrip) {
  ByteBuffer buf;
  buf.WriteU8(0xab);
  buf.WriteBool(true);
  buf.WriteU16(0x1234);
  buf.WriteU32(0xdeadbeef);
  buf.WriteU64(0x0123456789abcdefULL);
  buf.WriteI32(-42);
  buf.WriteI64(-1234567890123LL);
  buf.WriteF32(1.5f);
  buf.WriteF64(-2.25);

  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadU8(), 0xab);
  EXPECT_TRUE(reader.ReadBool());
  EXPECT_EQ(reader.ReadU16(), 0x1234);
  EXPECT_EQ(reader.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.ReadI32(), -42);
  EXPECT_EQ(reader.ReadI64(), -1234567890123LL);
  EXPECT_EQ(reader.ReadF32(), 1.5f);
  EXPECT_EQ(reader.ReadF64(), -2.25);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteBufferTest, VarintRoundTrip) {
  ByteBuffer buf;
  const uint32_t u32_values[] = {0, 1, 127, 128, 300, 0x7fffffff, 0xffffffff};
  const int32_t i32_values[] = {0, -1, 1, -64, 64, INT32_MIN, INT32_MAX};
  const uint64_t u64_values[] = {0, 1, 0xffffffffULL, 0xffffffffffffffffULL};
  const int64_t i64_values[] = {0, -1, INT64_MIN, INT64_MAX, 123456789};
  for (uint32_t v : u32_values) {
    buf.WriteVarU32(v);
  }
  for (int32_t v : i32_values) {
    buf.WriteVarI32(v);
  }
  for (uint64_t v : u64_values) {
    buf.WriteVarU64(v);
  }
  for (int64_t v : i64_values) {
    buf.WriteVarI64(v);
  }

  ByteReader reader(buf.bytes());
  for (uint32_t v : u32_values) {
    EXPECT_EQ(reader.ReadVarU32(), v);
  }
  for (int32_t v : i32_values) {
    EXPECT_EQ(reader.ReadVarI32(), v);
  }
  for (uint64_t v : u64_values) {
    EXPECT_EQ(reader.ReadVarU64(), v);
  }
  for (int64_t v : i64_values) {
    EXPECT_EQ(reader.ReadVarI64(), v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteBufferTest, VarintSmallValuesAreOneByte) {
  ByteBuffer buf;
  buf.WriteVarU32(127);
  EXPECT_EQ(buf.size(), 1u);
  buf.WriteVarU32(128);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(ByteBufferTest, StringRoundTrip) {
  ByteBuffer buf;
  buf.WriteString("hello");
  buf.WriteString("");
  buf.WriteString(std::string(1000, 'x'));
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadString(), "hello");
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_EQ(reader.ReadString(), std::string(1000, 'x'));
}

TEST(ByteBufferTest, PatchU32) {
  ByteBuffer buf;
  size_t pos = buf.size();
  buf.WriteU32(0);
  buf.WriteU8(7);
  buf.PatchU32(pos, 42);
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadU32(), 42u);
  EXPECT_EQ(reader.ReadU8(), 7);
}

TEST(ByteReaderTest, SeekAndPosition) {
  ByteBuffer buf;
  buf.WriteU32(1);
  buf.WriteU32(2);
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadU32(), 1u);
  EXPECT_EQ(reader.position(), 4u);
  reader.Seek(0);
  EXPECT_EQ(reader.ReadU32(), 1u);
  EXPECT_EQ(reader.remaining(), 4u);
}

TEST(RngTest, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(ZipfSamplerTest, RanksInRangeAndSkewed) {
  Rng rng(13);
  ZipfSampler zipf(1000, 1.1);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t rank = zipf.Sample(rng);
    ASSERT_LT(rank, 1000u);
    counts[rank]++;
  }
  // Rank 0 must dominate rank 99 heavily under a Zipfian law.
  EXPECT_GT(counts[0], 10 * std::max(counts[99], 1));
}

TEST(MetricsTest, PhaseTimesAccumulate) {
  PhaseTimes times;
  times.Add(Phase::kCompute, 100);
  times.Add(Phase::kGc, 50);
  times.Add(Phase::kCompute, 25);
  EXPECT_EQ(times.Get(Phase::kCompute), 125);
  EXPECT_EQ(times.Get(Phase::kGc), 50);
  EXPECT_EQ(times.TotalNanos(), 175);

  PhaseTimes other;
  other.Add(Phase::kSerialize, 10);
  times += other;
  EXPECT_EQ(times.TotalNanos(), 185);
}

TEST(MetricsTest, ScopedPhaseChargesPhase) {
  PhaseTimes times;
  {
    ScopedPhase scope(times, Phase::kDeserialize);
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 100000; ++i) {
      sink = sink + i;
    }
  }
  EXPECT_GT(times.Get(Phase::kDeserialize), 0);
  EXPECT_EQ(times.Get(Phase::kCompute), 0);
}

TEST(MetricsTest, MemoryTrackerPeak) {
  MemoryTracker tracker;
  tracker.Allocated(100);
  tracker.Allocated(200);
  tracker.Freed(150);
  tracker.Allocated(50);
  EXPECT_EQ(tracker.live_bytes(), 200);
  EXPECT_EQ(tracker.peak_bytes(), 300);
}

TEST(MetricsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.00 MB");
}

}  // namespace
}  // namespace gerenuk
