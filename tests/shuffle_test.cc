// Shuffle-service tests: block compression round-trips and fails closed on
// damage, spill files append/read under the unlink-on-create discipline,
// a spilling ShuffleRun replays byte-identical to the resident path with
// its spill/fetch counters visible, corruption of stored bytes surfaces as
// TaskError{kCorruptInput}, the credit gate bounds concurrent fetches, and
// — the wire-robustness suite — NativePartition::Parse never crashes on
// truncated streams, flipped bytes, or oversized length prefixes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/fault.h"
#include "src/nativebuf/native_buffer.h"
#include "src/shuffle/compress.h"
#include "src/shuffle/spill_file.h"
#include "src/shuffle/shuffle_service.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

// ---------------------------------------------------------------------------
// Block compression
// ---------------------------------------------------------------------------

std::vector<uint8_t> Roundtrip(const std::vector<uint8_t>& raw, size_t* stored_size) {
  ByteBuffer encoded;
  CompressBlock(raw.data(), raw.size(), &encoded);
  if (stored_size != nullptr) {
    *stored_size = encoded.size();
  }
  std::vector<uint8_t> decoded;
  EXPECT_TRUE(DecompressBlock(encoded.data(), encoded.size(), raw.size(), &decoded));
  return decoded;
}

TEST(CompressTest, CompressibleDataRoundTripsSmaller) {
  std::vector<uint8_t> raw;
  for (int i = 0; i < 4096; ++i) {
    raw.push_back(static_cast<uint8_t>("abcdabcdabcd"[i % 12]));
  }
  size_t stored = 0;
  EXPECT_EQ(Roundtrip(raw, &stored), raw);
  EXPECT_LT(stored, raw.size());
}

TEST(CompressTest, IncompressibleDataFallsBackToStored) {
  std::mt19937 rng(7);
  std::vector<uint8_t> raw(4096);
  for (uint8_t& b : raw) {
    b = static_cast<uint8_t>(rng());
  }
  size_t stored = 0;
  EXPECT_EQ(Roundtrip(raw, &stored), raw);
  // The stored fallback costs exactly the codec byte.
  EXPECT_LE(stored, raw.size() + 1);
}

TEST(CompressTest, EmptyAndTinyBlocksRoundTrip) {
  EXPECT_EQ(Roundtrip({}, nullptr), std::vector<uint8_t>{});
  EXPECT_EQ(Roundtrip({42}, nullptr), std::vector<uint8_t>{42});
}

TEST(CompressTest, DamagedStreamsFailClosed) {
  std::vector<uint8_t> raw;
  for (int i = 0; i < 1024; ++i) {
    raw.push_back(static_cast<uint8_t>(i % 16));
  }
  ByteBuffer encoded;
  CompressBlock(raw.data(), raw.size(), &encoded);
  std::vector<uint8_t> decoded;
  // Truncation anywhere must return false, never read out of bounds.
  for (size_t cut : {size_t{0}, size_t{1}, encoded.size() / 2, encoded.size() - 1}) {
    EXPECT_FALSE(DecompressBlock(encoded.data(), cut, raw.size(), &decoded))
        << "cut at " << cut;
  }
  // Unknown codec byte.
  std::vector<uint8_t> bogus(encoded.data(), encoded.data() + encoded.size());
  bogus[0] = 0x7f;
  EXPECT_FALSE(DecompressBlock(bogus.data(), bogus.size(), raw.size(), &decoded));
  // Wrong raw size claim.
  EXPECT_FALSE(DecompressBlock(encoded.data(), encoded.size(), raw.size() + 1, &decoded));
}

// ---------------------------------------------------------------------------
// Spill file
// ---------------------------------------------------------------------------

TEST(SpillFileTest, AppendsAndReadsAtOffsets) {
  SpillFile file;
  EXPECT_FALSE(file.created());  // lazily created on first Append
  std::vector<uint8_t> a(100, 0xaa);
  std::vector<uint8_t> b(57, 0xbb);
  int64_t off_a = file.Append(a.data(), a.size());
  int64_t off_b = file.Append(b.data(), b.size());
  EXPECT_TRUE(file.created());
  EXPECT_EQ(off_a, 0);
  EXPECT_EQ(off_b, static_cast<int64_t>(a.size()));
  EXPECT_EQ(file.size(), static_cast<int64_t>(a.size() + b.size()));
  std::vector<uint8_t> back(b.size());
  file.ReadAt(off_b, back.data(), back.size());
  EXPECT_EQ(back, b);
  back.resize(a.size());
  file.ReadAt(off_a, back.data(), back.size());
  EXPECT_EQ(back, a);
}

// ---------------------------------------------------------------------------
// ShuffleRun: resident vs spilled determinism, corruption, backpressure
// ---------------------------------------------------------------------------

NativePartition PartitionWithPattern(int producer, int bucket, int records) {
  NativePartition part;
  std::vector<uint8_t> body(48);
  for (int r = 0; r < records; ++r) {
    for (size_t i = 0; i < body.size(); ++i) {
      body[i] = static_cast<uint8_t>(producer * 97 + bucket * 31 + r * 7 + i);
    }
    part.AppendRecord(body.data(), static_cast<uint32_t>(body.size()));
  }
  part.Seal();
  return part;
}

std::vector<uint8_t> DrainBucket(const ShuffleRun& run, int bucket, EngineStats* stats) {
  std::vector<uint8_t> bytes;
  run.ForEachRecordInBucket(bucket, stats, nullptr,
                            [&bytes](int64_t addr, uint32_t size) {
                              const uint8_t* p = reinterpret_cast<const uint8_t*>(addr);
                              bytes.insert(bytes.end(), p, p + size);
                            });
  return bytes;
}

ShuffleConfig SpillEverything(bool compress) {
  ShuffleConfig config;
  config.spill_threshold_bytes = 1;  // every block past the first byte spills
  config.compress = compress;
  return config;
}

TEST(ShuffleRunTest, SpilledBucketsReplayByteIdenticalToResident) {
  constexpr int kProducers = 3;
  constexpr int kBuckets = 2;
  for (bool compress : {true, false}) {
    ShuffleRun resident(kProducers, kBuckets, ShuffleConfig{});
    ShuffleRun spilled(kProducers, kBuckets, SpillEverything(compress));
    EngineStats resident_stats;
    EngineStats spilled_stats;
    for (int p = 0; p < kProducers; ++p) {
      for (int b = 0; b < kBuckets; ++b) {
        resident.Add(p, b, PartitionWithPattern(p, b, 5 + p), &resident_stats);
        spilled.Add(p, b, PartitionWithPattern(p, b, 5 + p), &spilled_stats);
      }
    }
    EXPECT_EQ(resident.spilled_blocks(), 0);
    EXPECT_GT(spilled.spilled_blocks(), 0);
    EXPECT_GT(spilled_stats.spill_blocks, 0);
    EXPECT_GT(spilled_stats.spill_bytes_raw, 0);
    EXPECT_GT(spilled_stats.spill_bytes_stored, 0);
    for (int b = 0; b < kBuckets; ++b) {
      EXPECT_EQ(DrainBucket(spilled, b, &spilled_stats),
                DrainBucket(resident, b, &resident_stats))
          << "bucket " << b << " compress=" << compress;
    }
    // Reading a bucket with >= 2 spilled runs is an external merge.
    EXPECT_GT(spilled_stats.shuffle_fetches, 0);
    EXPECT_GT(spilled_stats.spill_merges, 0);
    EXPECT_EQ(resident_stats.shuffle_fetches, 0);
  }
}

TEST(ShuffleRunTest, CorruptStoredBlockFailsClosedAsCorruptInput) {
  ShuffleRun run(2, 1, SpillEverything(true));
  EngineStats stats;
  run.Add(0, 0, PartitionWithPattern(0, 0, 8), &stats);
  run.Add(1, 0, PartitionWithPattern(1, 0, 8), &stats);
  ASSERT_GT(run.spilled_blocks(), 0);
  run.CorruptStoredByteForTest(0);
  try {
    DrainBucket(run, 0, &stats);
    FAIL() << "corrupted spill block must not read back";
  } catch (const TaskError& e) {
    EXPECT_EQ(e.kind(), TaskErrorKind::kCorruptInput);
    EXPECT_NE(e.detail().find("bucket"), std::string::npos) << e.detail();
  }
}

TEST(ShuffleRunTest, CreditGateBoundsConcurrentFetches) {
  // Two spilled buckets, each far over the 1-byte fetch budget: the first
  // open is admitted (idle gate), the second must wait for the first
  // reader's credit (or the grace timeout) — either way a counted wait.
  ShuffleConfig config = SpillEverything(false);
  config.fetch_budget_bytes = 1;
  config.backpressure_grace_ms = 2000;  // long: the release must unblock it
  ShuffleRun run(1, 2, config);
  EngineStats add_stats;
  run.Add(0, 0, PartitionWithPattern(0, 0, 64), &add_stats);
  run.Add(0, 1, PartitionWithPattern(0, 1, 64), &add_stats);
  ASSERT_EQ(run.spilled_blocks(), 2);

  EngineStats first_stats;
  EngineStats second_stats;
  std::atomic<bool> second_opened{false};
  auto first = std::make_unique<BucketReader>(run.OpenBucket(0, &first_stats));
  std::thread consumer([&] {
    BucketReader second = run.OpenBucket(1, &second_stats);
    second_opened.store(true);
    size_t records = 0;
    second.ForEachRecord([&records](int64_t, uint32_t) { records += 1; });
    EXPECT_EQ(records, 64u);
  });
  // Give the consumer time to hit the gate, then release the first reader's
  // credit; the consumer must then proceed (well before the grace timeout).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  first.reset();
  consumer.join();
  EXPECT_TRUE(second_opened.load());
  EXPECT_GT(second_stats.fetch_backpressure_waits, 0);
  EXPECT_EQ(first_stats.fetch_backpressure_waits, 0);  // idle gate: no wait
}

TEST(CreditGateTest, GraceTimeoutAdmitsOverBudget) {
  CreditGate gate(/*budget_bytes=*/10, /*grace_ms=*/20);
  EXPECT_FALSE(gate.Acquire(8));  // fits, no wait
  // Over budget with credit outstanding: blocks until the grace elapses,
  // then admits (hold-and-wait liveness for joins), reporting the wait.
  EXPECT_TRUE(gate.Acquire(8));
  EXPECT_EQ(gate.inflight(), 16);
  gate.Release(8);
  gate.Release(8);
  EXPECT_EQ(gate.inflight(), 0);
}

// ---------------------------------------------------------------------------
// NativePartition wire robustness (the executor exchange rides on this)
// ---------------------------------------------------------------------------

std::vector<uint8_t> WireBytesOf(int records) {
  NativePartition part = PartitionWithPattern(1, 2, records);
  ByteBuffer wire;
  part.SerializeTo(wire);
  return std::vector<uint8_t>(wire.data(), wire.data() + wire.size());
}

TEST(WireRobustnessTest, TruncatedStreamsThrowWireFormatError) {
  std::vector<uint8_t> wire = WireBytesOf(6);
  // Every proper prefix must fail closed with the classified error — never
  // crash, never return a partition (asan/ubsan presets police the "never
  // crash" half).
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    ByteReader reader(wire.data(), cut);
    EXPECT_THROW(NativePartition::Parse(reader), WireFormatError) << "cut at " << cut;
  }
}

TEST(WireRobustnessTest, OversizedLengthPrefixesThrowWireFormatError) {
  std::vector<uint8_t> wire = WireBytesOf(4);
  {
    // Record count far beyond what the stream could hold.
    std::vector<uint8_t> bad = wire;
    bad[0] = 0xff;
    bad[1] = 0xff;
    bad[2] = 0xff;
    bad[3] = 0x7f;
    ByteReader reader(bad.data(), bad.size());
    EXPECT_THROW(NativePartition::Parse(reader), WireFormatError);
  }
  {
    // First record's size prefix larger than the remaining stream.
    std::vector<uint8_t> bad = wire;
    bad[4] = 0xff;
    bad[5] = 0xff;
    bad[6] = 0xff;
    bad[7] = 0x7f;
    ByteReader reader(bad.data(), bad.size());
    EXPECT_THROW(NativePartition::Parse(reader), WireFormatError);
  }
}

TEST(WireRobustnessTest, FlippedBodyByteFailsTheSeal) {
  std::vector<uint8_t> wire = WireBytesOf(4);
  // Flip one byte inside a record body: structurally valid, so Parse
  // succeeds — and the seal (carried on the wire) catches the damage.
  std::vector<uint8_t> bad = wire;
  bad[10] ^= 0x5a;
  ByteReader reader(bad.data(), bad.size());
  NativePartition parsed = NativePartition::Parse(reader);
  EXPECT_TRUE(parsed.sealed());
  EXPECT_FALSE(parsed.VerifyChecksum());
}

TEST(WireRobustnessTest, ConcatenatedPartitionsParseInSequence) {
  // The executor protocol concatenates partitions on one frame (shuffle-map
  // replies); each partition's trailer must delimit it exactly.
  std::vector<uint8_t> first = WireBytesOf(3);
  std::vector<uint8_t> second = WireBytesOf(5);
  std::vector<uint8_t> both = first;
  both.insert(both.end(), second.begin(), second.end());
  ByteReader reader(both.data(), both.size());
  NativePartition a = NativePartition::Parse(reader);
  NativePartition b = NativePartition::Parse(reader);
  EXPECT_EQ(a.record_count(), 3u);
  EXPECT_EQ(b.record_count(), 5u);
  EXPECT_TRUE(a.VerifyChecksum());
  EXPECT_TRUE(b.VerifyChecksum());
  EXPECT_EQ(reader.remaining(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration: a spilling shuffle keeps the determinism invariant
// ---------------------------------------------------------------------------

std::vector<uint8_t> RunReduceJob(EngineConfig config) {
  SparkJob job(config);
  DatasetPtr in = job.MakeInput(600);
  job.engine.ResetMetrics();
  DatasetPtr out = job.engine.ReduceByKey(in, job.udfs, {}, KeySpec{job.get_key, false},
                                          job.sum_values);
  return DatasetBytes(out);
}

TEST(ShuffleEngineTest, SpillingReduceMatchesResidentAcrossWorkerCounts) {
  const std::vector<uint8_t> reference = RunReduceJob(SparkWith(1));
  ASSERT_FALSE(reference.empty());
  for (int workers : kWorkerCounts) {
    for (bool compress : {true, false}) {
      EngineConfig config = SparkWith(workers);
      config.shuffle.shuffle_spill_threshold_bytes = 1;  // spill every block
      config.shuffle.shuffle_compress = compress;
      SparkJob job(config);
      DatasetPtr in = job.MakeInput(600);
      job.engine.ResetMetrics();
      DatasetPtr out = job.engine.ReduceByKey(in, job.udfs, {}, KeySpec{job.get_key, false},
                                              job.sum_values);
      EXPECT_EQ(DatasetBytes(out), reference)
          << "workers=" << workers << " compress=" << compress;
      EXPECT_GT(job.engine.stats().spill_blocks, 0);
      EXPECT_GT(job.engine.stats().shuffle_fetches, 0);
    }
  }
}

TEST(ShuffleEngineTest, SpillingJoinMatchesResident) {
  auto run_join = [](EngineConfig config) {
    SparkJob job(config);
    DatasetPtr left = job.MakeInput(200);
    DatasetPtr right = job.MakeInput(140);
    job.engine.ResetMetrics();
    DatasetPtr out = job.engine.JoinByKey(left, KeySpec{job.get_key, false}, right,
                                          KeySpec{job.get_key, false}, job.udfs,
                                          job.sum_values, job.pair);
    return DatasetBytes(out);
  };
  const std::vector<uint8_t> reference = run_join(SparkWith(2));
  ASSERT_FALSE(reference.empty());
  EngineConfig config = SparkWith(2);
  config.shuffle.shuffle_spill_threshold_bytes = 1;
  // A tight fetch budget forces the join's build side to hold credit while
  // the probe side fetches — the hold-and-wait pattern the grace timeout
  // converts into bounded over-admission.
  config.shuffle.shuffle_fetch_budget_bytes = 256;
  EXPECT_EQ(run_join(config), reference);
}

}  // namespace
}  // namespace gerenuk
