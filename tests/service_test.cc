// Multi-tenant service mode: config validation, the Session/JobHandle
// lifecycle, DRR fair-share dispatch, bounded-queue rejection, per-tenant
// metrics scoping, the per-tenant-per-SER speculation oracle, and the
// acceptance storm — 16 tenants x 64 heterogeneous jobs whose outputs are
// byte-identical to sequential single-engine runs with a >90% plan-cache
// hit rate.
#include "src/service/engine_service.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/admission.h"
#include "src/service/job.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

// ---------------------------------------------------------------------------
// Config validation (the one-call Validate() satellite)
// ---------------------------------------------------------------------------

TEST(EngineConfigValidateTest, AcceptsDefaults) {
  EXPECT_EQ(EngineConfig{}.Validate(), "");
  EXPECT_EQ(HadoopConfig{}.Validate(), "");
  EXPECT_EQ(ServiceConfig{}.Validate(), "");
}

TEST(EngineConfigValidateTest, NamesTheOffendingField) {
  EngineConfig config;
  config.execution.num_partitions = 0;
  EXPECT_NE(config.Validate().find("num_partitions"), std::string::npos);

  config = EngineConfig{};
  config.execution.heap_bytes = 0;
  EXPECT_NE(config.Validate().find("heap_bytes"), std::string::npos);

  config = EngineConfig{};
  config.execution.executor_heartbeat_timeout_ms = 1;  // < heartbeat period
  EXPECT_NE(config.Validate().find("heartbeat"), std::string::npos);

  config = EngineConfig{};
  config.fault.max_task_attempts = 0;
  EXPECT_NE(config.Validate().find("max_task_attempts"), std::string::npos);

  config = EngineConfig{};
  config.fault.governor_abort_threshold = 1.5;
  EXPECT_NE(config.Validate().find("governor_abort_threshold"), std::string::npos);

  config = EngineConfig{};
  config.observability.trace = true;
  config.observability.trace_buffer_events = 0;
  EXPECT_NE(config.Validate().find("trace_buffer_events"), std::string::npos);
}

TEST(EngineConfigValidateTest, HadoopConfigComposesEngineValidation) {
  HadoopConfig config;
  config.num_reducers = 0;
  EXPECT_NE(config.Validate().find("num_reducers"), std::string::npos);

  config = HadoopConfig{};
  config.sort_buffer_bytes = 0;
  EXPECT_NE(config.Validate().find("sort_buffer_bytes"), std::string::npos);

  config = HadoopConfig{};
  config.engine.execution.num_workers = 0;  // engine error surfaces through
  EXPECT_NE(config.Validate().find("num_workers"), std::string::npos);
}

TEST(ServiceConfigValidateTest, RejectsProcessExecutorsAndBadBounds) {
  ServiceConfig config;
  config.engine.execution.process_executors = true;
  EXPECT_NE(config.Validate().find("process_executors"), std::string::npos);

  config = ServiceConfig{};
  config.num_engines = 0;
  EXPECT_NE(config.Validate().find("num_engines"), std::string::npos);

  config = ServiceConfig{};
  config.max_queue_depth_per_tenant = config.max_queue_depth + 1;
  EXPECT_NE(config.Validate().find("max_queue_depth_per_tenant"), std::string::npos);

  config = ServiceConfig{};
  config.drr_quantum = 0;
  EXPECT_NE(config.Validate().find("drr_quantum"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DRR admission control (deterministic, controller in isolation)
// ---------------------------------------------------------------------------

QueuedJob Queued(const std::string& tenant, int64_t cost) {
  QueuedJob job;
  job.tenant = tenant;
  job.spec.cost = cost;
  job.state = std::make_shared<internal::JobState>();
  return job;
}

TEST(AdmissionControllerTest, EqualCostsRoundRobinAcrossTenants) {
  AdmissionController admission(64, 32, /*drr_quantum=*/1);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(admission.Submit(Queued("a", 1)));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(admission.Submit(Queued("b", 1)));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(admission.Submit(Queued("c", 1)));
  std::vector<std::string> order;
  QueuedJob job;
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(admission.Next(&job));
    order.push_back(job.tenant);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c", "a", "b", "c", "a", "b", "c"}));
  EXPECT_EQ(admission.depth(), 0);
}

TEST(AdmissionControllerTest, CostWeightedSharing) {
  // Tenant "cheap" submits cost-1 jobs, "pricey" cost-4: with quantum 4,
  // every round serves four cheap jobs and one pricey job.
  AdmissionController admission(64, 32, /*drr_quantum=*/4);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(admission.Submit(Queued("cheap", 1)));
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(admission.Submit(Queued("pricey", 4)));
  std::vector<std::string> order;
  QueuedJob job;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(admission.Next(&job));
    order.push_back(job.tenant);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"cheap", "cheap", "cheap", "cheap", "pricey",
                                             "cheap", "cheap", "cheap", "cheap", "pricey"}));
}

TEST(AdmissionControllerTest, BoundsAndShutdownDrain) {
  AdmissionController admission(/*max_queue_depth=*/4, /*max_queue_depth_per_tenant=*/2, 1);
  EXPECT_TRUE(admission.Submit(Queued("a", 1)));
  EXPECT_TRUE(admission.Submit(Queued("a", 1)));
  EXPECT_FALSE(admission.Submit(Queued("a", 1))) << "per-tenant depth bound";
  EXPECT_TRUE(admission.Submit(Queued("b", 1)));
  EXPECT_TRUE(admission.Submit(Queued("c", 1)));
  EXPECT_FALSE(admission.Submit(Queued("d", 1))) << "global depth bound";
  admission.Shutdown();
  EXPECT_FALSE(admission.Submit(Queued("e", 1))) << "no admission after shutdown";
  QueuedJob job;
  int drained = 0;
  while (admission.Next(&job)) {
    drained += 1;
  }
  EXPECT_EQ(drained, 4) << "queued jobs drain through shutdown";
  EXPECT_EQ(admission.stats().rejected, 3);
  EXPECT_EQ(admission.stats().dispatched, 4);
}

// ---------------------------------------------------------------------------
// Service fixtures: the Pair workload on pooled engines
// ---------------------------------------------------------------------------

// Per-slot setup payload: the Pair klasses + UDFs, built once per engine.
struct PairServiceSetup {
  PairUdfs spark;
  PairUdfs hadoop;
};

EngineSetup PairSetupFn() {
  return [](EngineContext& ctx) -> std::shared_ptr<void> {
    auto setup = std::make_shared<PairServiceSetup>();
    BuildPairUdfs(*ctx.spark, &setup->spark);
    BuildPairUdfs(*ctx.hadoop, &setup->hadoop);
    return setup;
  };
}

std::string BytesString(const std::vector<uint8_t>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

// The heterogeneous job kinds of the acceptance storm. Deterministic per
// (kind): fixed input sizes, fixed programs.
constexpr int kJobKinds = 4;
constexpr int64_t kKindCounts[kJobKinds] = {60, 48, 80, 36};

std::string RunKindOnSpark(int kind, SparkEngine& engine, const PairUdfs& u) {
  const int64_t count = kKindCounts[kind];
  DatasetPtr in = MakePairInput(engine, u, count);
  switch (kind) {
    case 0:
      return BytesString(
          DatasetBytes(engine.RunStage(in, u.udfs, {NarrowOp::Map(u.double_value, u.pair)})));
    case 1:
      return BytesString(
          DatasetBytes(engine.RunStage(in, u.udfs, {NarrowOp::FlatMap(u.explode, u.pair)})));
    case 2:
      return BytesString(DatasetBytes(
          engine.ReduceByKey(in, u.udfs, {}, KeySpec{u.get_key, false}, u.sum_values)));
    default:
      return "";
  }
}

std::string RunKindOnHadoop(HadoopEngine& engine, const PairUdfs& u) {
  DatasetPtr in = MakePairInput(engine, u, kKindCounts[3]);
  return BytesString(DatasetBytes(engine.RunJob(in, u.udfs, u.explode, u.pair,
                                                KeySpec{u.get_key, false}, u.sum_values,
                                                u.sum_values)));
}

JobSpec KindJob(int kind) {
  JobSpec spec;
  spec.name = "kind" + std::to_string(kind);
  spec.run = [kind](EngineContext& ctx) -> std::string {
    auto* setup = static_cast<PairServiceSetup*>(ctx.setup.get());
    if (kind == 3) {
      return RunKindOnHadoop(*ctx.hadoop, setup->hadoop);
    }
    return RunKindOnSpark(kind, *ctx.spark, setup->spark);
  };
  return spec;
}

EngineConfig ServiceEngineConfig() {
  EngineConfig config;
  config.execution.mode = EngineMode::kGerenuk;
  config.execution.heap_bytes = 32u << 20;
  config.execution.num_partitions = 4;
  config.execution.num_workers = 2;
  return config;
}

ServiceConfig SmallService(int num_engines) {
  ServiceConfig config;
  config.engine = ServiceEngineConfig();
  config.num_engines = num_engines;
  config.setup = PairSetupFn();
  return config;
}

// Sequential reference outputs: each kind run once on standalone engines
// with the same configuration the pooled engines use.
std::vector<std::string> SequentialExpected() {
  std::vector<std::string> expected(kJobKinds);
  SparkEngine spark(ServiceEngineConfig());
  PairUdfs spark_udfs;
  BuildPairUdfs(spark, &spark_udfs);
  for (int kind = 0; kind < 3; ++kind) {
    expected[kind] = RunKindOnSpark(kind, spark, spark_udfs);
  }
  HadoopConfig hadoop_config;
  hadoop_config.engine = ServiceEngineConfig();
  HadoopEngine hadoop(hadoop_config);
  PairUdfs hadoop_udfs;
  BuildPairUdfs(hadoop, &hadoop_udfs);
  expected[3] = RunKindOnHadoop(hadoop, hadoop_udfs);
  return expected;
}

// ---------------------------------------------------------------------------
// Session / JobHandle lifecycle
// ---------------------------------------------------------------------------

TEST(ServiceTest, SubmitWaitSucceedsWithPerJobStats) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  JobHandle handle = session.Submit(KindJob(0));
  ASSERT_TRUE(handle.valid());
  const JobResult& result = handle.wait();
  EXPECT_EQ(result.status, JobStatus::kSucceeded);
  EXPECT_EQ(handle.poll(), JobStatus::kSucceeded) << "poll observes the terminal status";
  EXPECT_EQ(result.output, SequentialExpected()[0]);
  EXPECT_GT(result.stats.tasks_run, 0) << "per-job stats delta, not engine lifetime";
  EXPECT_GT(result.exec_ns, 0);
  EXPECT_GE(result.queue_wait_ns, 0);
}

TEST(ServiceTest, FailedJobCarriesTheError) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  JobSpec bad;
  bad.name = "throws";
  bad.run = [](EngineContext&) -> std::string { throw std::runtime_error("boom"); };
  const JobResult& result = session.Submit(std::move(bad)).wait();
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error, "boom");
  // The slot survives: the next job on the same engine still succeeds.
  const JobResult& next = session.Submit(KindJob(0)).wait();
  EXPECT_EQ(next.status, JobStatus::kSucceeded);
}

TEST(ServiceTest, OverflowingSubmitsAreRejected) {
  ServiceConfig config = SmallService(1);
  config.max_queue_depth = 3;
  config.max_queue_depth_per_tenant = 3;
  EngineService service(config);
  Session session = service.CreateSession("alice");

  // A gate job parks the only dispatcher so the queue can fill.
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
    std::atomic<bool> running{false};
  };
  auto gate = std::make_shared<Gate>();
  JobSpec blocker;
  blocker.name = "gate";
  blocker.run = [gate](EngineContext&) -> std::string {
    gate->running.store(true);
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->open; });
    return "";
  };
  JobHandle blocked = session.Submit(std::move(blocker));
  while (!gate->running.load()) {
    std::this_thread::yield();
  }

  std::vector<JobHandle> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(session.Submit(KindJob(0)));
  }
  JobHandle rejected = session.Submit(KindJob(0));
  EXPECT_EQ(rejected.poll(), JobStatus::kRejected) << "rejection is synchronous";
  const JobResult& rejection = rejected.wait();
  EXPECT_EQ(rejection.status, JobStatus::kRejected);
  EXPECT_FALSE(rejection.error.empty());

  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->open = true;
  }
  gate->cv.notify_all();
  EXPECT_EQ(blocked.wait().status, JobStatus::kSucceeded);
  for (JobHandle& handle : queued) {
    EXPECT_EQ(handle.wait().status, JobStatus::kSucceeded);
  }
  EXPECT_EQ(service.admission_stats().rejected, 1);
}

TEST(ServiceTest, DrrDispatchOrderIsFairUnderSaturation) {
  ServiceConfig config = SmallService(1);
  config.max_queue_depth = 64;
  config.max_queue_depth_per_tenant = 16;
  config.drr_quantum = 1;
  EngineService service(config);

  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
    std::atomic<bool> running{false};
  };
  auto gate = std::make_shared<Gate>();
  JobSpec blocker;
  blocker.run = [gate](EngineContext&) -> std::string {
    gate->running.store(true);
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->open; });
    return "";
  };
  Session warmup = service.CreateSession("warmup");
  JobHandle blocked = warmup.Submit(std::move(blocker));
  while (!gate->running.load()) {
    std::this_thread::yield();
  }

  // With the dispatcher parked, enqueue 4 tenants x 8 jobs; the dispatch
  // order over the static queue is pure DRR — strict round-robin at
  // quantum 1 and equal costs.
  auto order = std::make_shared<std::vector<std::string>>();
  auto order_mu = std::make_shared<std::mutex>();
  const std::vector<std::string> tenants = {"a", "b", "c", "d"};
  std::vector<JobHandle> handles;
  for (const std::string& tenant : tenants) {
    Session session = service.CreateSession(tenant);
    for (int i = 0; i < 8; ++i) {
      JobSpec spec;
      spec.run = [tenant, order, order_mu](EngineContext&) -> std::string {
        std::lock_guard<std::mutex> lock(*order_mu);
        order->push_back(tenant);
        return "";
      };
      handles.push_back(session.Submit(std::move(spec)));
    }
  }
  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->open = true;
  }
  gate->cv.notify_all();
  blocked.wait();
  for (JobHandle& handle : handles) {
    EXPECT_EQ(handle.wait().status, JobStatus::kSucceeded);
  }

  ASSERT_EQ(order->size(), 32u);
  for (size_t i = 0; i < order->size(); ++i) {
    EXPECT_EQ((*order)[i], tenants[i % 4]) << "strict round-robin at index " << i;
  }
  // Completed-job spread at every prefix is within one round (trivially
  // within the 2x acceptance bound).
  for (const std::string& tenant : tenants) {
    EXPECT_EQ(service.TenantJobsCompleted(tenant), 8);
  }
}

// ---------------------------------------------------------------------------
// Per-tenant metrics scoping + speculation oracle
// ---------------------------------------------------------------------------

TEST(ServiceTest, MetricsAreScopedPerTenant) {
  EngineService service(SmallService(1));
  Session alice = service.CreateSession("alice");
  Session bob = service.CreateSession("bob");
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(alice.Submit(KindJob(0)).wait().status, JobStatus::kSucceeded);
  }
  ASSERT_EQ(bob.Submit(KindJob(2)).wait().status, JobStatus::kSucceeded);

  MetricsRegistry alice_metrics = alice.metrics();
  EXPECT_EQ(alice_metrics.Counter("jobs_succeeded"), 3);
  EXPECT_EQ(alice_metrics.Counter("jobs_completed"), 3);
  EXPECT_EQ(alice_metrics.Hist("job_exec").count(), 3);
  MetricsRegistry bob_metrics = bob.metrics();
  EXPECT_EQ(bob_metrics.Counter("jobs_succeeded"), 1);

  MetricsRegistry combined = service.metrics();
  EXPECT_EQ(combined.Counter("tenant.alice.jobs_succeeded"), 3);
  EXPECT_EQ(combined.Counter("tenant.bob.jobs_succeeded"), 1);
  EXPECT_EQ(combined.Counter("service.jobs_dispatched"), 4);
  EXPECT_GT(combined.Counter("service.plan_cache.hits"), 0) << "repeat kinds hit the cache";
  // Per-tenant task counts stay separated: alice ran 3x the kind-0 stage.
  EXPECT_EQ(combined.Counter("tenant.alice.tasks_run"),
            3 * alice.Submit(KindJob(0)).wait().stats.tasks_run);
}

TEST(ServiceTest, SpeculationOracleIsPerTenantAndPerSer) {
  ServiceConfig config = SmallService(1);
  config.engine.fault.governor_abort_threshold = 0.5;
  config.engine.fault.governor_min_tasks = 4;
  EngineService service(config);
  Session alice = service.CreateSession("alice");
  Session bob = service.CreateSession("bob");

  // Alice poisons her SER: every task of the stage aborts once.
  JobSpec poison = KindJob(0);
  auto run = poison.run;
  poison.run = [run](EngineContext& ctx) -> std::string {
    ctx.spark->ForceAborts(4);
    return run(ctx);
  };
  const JobResult& poisoned = alice.Submit(std::move(poison)).wait();
  ASSERT_EQ(poisoned.status, JobStatus::kSucceeded);
  EXPECT_EQ(poisoned.stats.aborts, 4);

  // Alice's abort rate (1.0 >= 0.5 over >= 4 tasks) turns her SER's
  // speculation off; the job still succeeds via the direct slow path.
  const JobResult& alice_after = alice.Submit(KindJob(0)).wait();
  ASSERT_EQ(alice_after.status, JobStatus::kSucceeded);
  EXPECT_EQ(alice_after.stats.slow_path_direct, 4);
  EXPECT_EQ(alice_after.stats.fast_path_commits, 0);

  // Bob runs the same SER untouched — the history is keyed per tenant.
  const JobResult& bob_same_ser = bob.Submit(KindJob(0)).wait();
  ASSERT_EQ(bob_same_ser.status, JobStatus::kSucceeded);
  EXPECT_EQ(bob_same_ser.stats.slow_path_direct, 0);
  EXPECT_GT(bob_same_ser.stats.fast_path_commits, 0);

  // A different SER of alice's still speculates — the history is keyed
  // per signature, not per tenant alone.
  const JobResult& alice_other_ser = alice.Submit(KindJob(1)).wait();
  ASSERT_EQ(alice_other_ser.status, JobStatus::kSucceeded);
  EXPECT_EQ(alice_other_ser.stats.slow_path_direct, 0);
  EXPECT_GT(alice_other_ser.stats.fast_path_commits, 0);

  // Every path produced the same bytes.
  const std::string expected = SequentialExpected()[0];
  EXPECT_EQ(poisoned.output, expected);
  EXPECT_EQ(alice_after.output, expected);
  EXPECT_EQ(bob_same_ser.output, expected);
}

// ---------------------------------------------------------------------------
// The acceptance storm: 16 tenants x 64 heterogeneous jobs, concurrent
// submitters, outputs byte-identical to sequential runs, hit rate > 90%.
// ---------------------------------------------------------------------------

TEST(ServiceTest, SixteenTenantStormIsByteIdenticalWithHotCache) {
  const std::vector<std::string> expected = SequentialExpected();

  ServiceConfig config = SmallService(4);
  config.max_queue_depth = 2048;
  config.max_queue_depth_per_tenant = 64;
  EngineService service(config);

  constexpr int kTenants = 16;
  constexpr int kJobsPerTenant = 64;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      Session session = service.CreateSession("tenant" + std::to_string(t));
      std::vector<JobHandle> handles;
      std::vector<int> kinds;
      handles.reserve(kJobsPerTenant);
      for (int j = 0; j < kJobsPerTenant; ++j) {
        const int kind = (t + j) % kJobKinds;
        kinds.push_back(kind);
        handles.push_back(session.Submit(KindJob(kind)));
      }
      for (int j = 0; j < kJobsPerTenant; ++j) {
        const JobResult& result = handles[j].wait();
        if (result.status != JobStatus::kSucceeded) {
          failures.fetch_add(1);
        } else if (result.output != expected[kinds[j]]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0) << "service outputs must be byte-identical to sequential runs";

  const PlanCache::Stats cache = service.plan_cache_stats();
  const double lookups = static_cast<double>(cache.hits + cache.misses);
  ASSERT_GT(lookups, 0.0);
  EXPECT_GT(static_cast<double>(cache.hits) / lookups, 0.9)
      << "hits=" << cache.hits << " misses=" << cache.misses;
  EXPECT_EQ(cache.evictions, 0) << "the storm's working set fits the default budget";

  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(service.TenantJobsCompleted("tenant" + std::to_string(t)), kJobsPerTenant);
  }
  const AdmissionController::Stats admission = service.admission_stats();
  EXPECT_EQ(admission.submitted, kTenants * kJobsPerTenant);
  EXPECT_EQ(admission.dispatched, kTenants * kJobsPerTenant);
  EXPECT_EQ(admission.rejected, 0);
}

TEST(ServiceTest, ShutdownDrainsQueuedJobs) {
  auto service = std::make_unique<EngineService>(SmallService(2));
  Session session = service->CreateSession("alice");
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(session.Submit(KindJob(i % kJobKinds)));
  }
  service->Shutdown();  // drains, then joins
  for (JobHandle& handle : handles) {
    EXPECT_EQ(handle.wait().status, JobStatus::kSucceeded) << "queued jobs drain on shutdown";
  }
  JobHandle late = session.Submit(KindJob(0));
  EXPECT_EQ(late.poll(), JobStatus::kRejected);
  service.reset();
}

}  // namespace
}  // namespace gerenuk
