// Multi-tenant service mode: config validation, the Session/JobHandle
// lifecycle, DRR fair-share dispatch, bounded-queue and byte-quota
// rejection, job deadlines and cancellation, per-slot circuit breakers,
// per-tenant metrics scoping, the per-tenant-per-SER speculation oracle,
// and the acceptance storm — 16 tenants x 64 heterogeneous jobs whose
// outputs are byte-identical to sequential single-engine runs with a >90%
// plan-cache hit rate.
#include "src/service/engine_service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/admission.h"
#include "src/service/job.h"
#include "tests/pair_service.h"

namespace gerenuk {
namespace {

// Bounded wait for tests: no test should ever block forever on a handle. A
// job that misses the budget fails the test instead of hanging the suite.
JobResult WaitDone(const JobHandle& handle,
                   std::chrono::milliseconds timeout = std::chrono::minutes(2)) {
  std::optional<JobResult> result = handle.wait_for(timeout);
  EXPECT_TRUE(result.has_value()) << "job " << handle.id()
                                  << " did not reach a terminal status in time";
  return result.has_value() ? *result : JobResult{};
}

// A gate job parks a dispatcher so the queue can fill deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> running{false};
};

JobSpec GateJob(const std::shared_ptr<Gate>& gate) {
  JobSpec spec;
  spec.name = "gate";
  spec.run = [gate](EngineContext&) -> std::string {
    gate->running.store(true);
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->open; });
    return "";
  };
  return spec;
}

void OpenGate(const std::shared_ptr<Gate>& gate) {
  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->open = true;
  }
  gate->cv.notify_all();
}

void AwaitGateRunning(const std::shared_ptr<Gate>& gate) {
  while (!gate->running.load()) {
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// Config validation (the one-call Validate() satellite)
// ---------------------------------------------------------------------------

TEST(EngineConfigValidateTest, AcceptsDefaults) {
  EXPECT_EQ(EngineConfig{}.Validate(), "");
  EXPECT_EQ(HadoopConfig{}.Validate(), "");
  EXPECT_EQ(ServiceConfig{}.Validate(), "");
}

TEST(EngineConfigValidateTest, NamesTheOffendingField) {
  EngineConfig config;
  config.execution.num_partitions = 0;
  EXPECT_NE(config.Validate().find("num_partitions"), std::string::npos);

  config = EngineConfig{};
  config.execution.heap_bytes = 0;
  EXPECT_NE(config.Validate().find("heap_bytes"), std::string::npos);

  config = EngineConfig{};
  config.execution.executor_heartbeat_timeout_ms = 1;  // < heartbeat period
  EXPECT_NE(config.Validate().find("heartbeat"), std::string::npos);

  config = EngineConfig{};
  config.fault.max_task_attempts = 0;
  EXPECT_NE(config.Validate().find("max_task_attempts"), std::string::npos);

  config = EngineConfig{};
  config.fault.governor_abort_threshold = 1.5;
  EXPECT_NE(config.Validate().find("governor_abort_threshold"), std::string::npos);

  config = EngineConfig{};
  config.observability.trace = true;
  config.observability.trace_buffer_events = 0;
  EXPECT_NE(config.Validate().find("trace_buffer_events"), std::string::npos);
}

TEST(EngineConfigValidateTest, HadoopConfigComposesEngineValidation) {
  HadoopConfig config;
  config.num_reducers = 0;
  EXPECT_NE(config.Validate().find("num_reducers"), std::string::npos);

  config = HadoopConfig{};
  config.sort_buffer_bytes = 0;
  EXPECT_NE(config.Validate().find("sort_buffer_bytes"), std::string::npos);

  config = HadoopConfig{};
  config.engine.execution.num_workers = 0;  // engine error surfaces through
  EXPECT_NE(config.Validate().find("num_workers"), std::string::npos);
}

TEST(ServiceConfigValidateTest, RejectsProcessExecutorsAndBadBounds) {
  ServiceConfig config;
  config.engine.execution.process_executors = true;
  EXPECT_NE(config.Validate().find("process_executors"), std::string::npos);

  config = ServiceConfig{};
  config.num_engines = 0;
  EXPECT_NE(config.Validate().find("num_engines"), std::string::npos);

  config = ServiceConfig{};
  config.max_queue_depth_per_tenant = config.max_queue_depth + 1;
  EXPECT_NE(config.Validate().find("max_queue_depth_per_tenant"), std::string::npos);

  config = ServiceConfig{};
  config.drr_quantum = 0;
  EXPECT_NE(config.Validate().find("drr_quantum"), std::string::npos);
}

TEST(ServiceConfigValidateTest, NamesResilienceFields) {
  ServiceConfig config;
  config.default_deadline_ms = -1;
  EXPECT_NE(config.Validate().find("default_deadline_ms"), std::string::npos);

  config = ServiceConfig{};
  config.max_inflight_bytes = 0;  // zero byte budget: would reject everything
  EXPECT_NE(config.Validate().find("max_inflight_bytes"), std::string::npos);

  config = ServiceConfig{};
  config.max_inflight_bytes_per_tenant = 0;
  EXPECT_NE(config.Validate().find("max_inflight_bytes_per_tenant"), std::string::npos);

  config = ServiceConfig{};
  config.max_inflight_bytes = 1024;
  config.max_inflight_bytes_per_tenant = 2048;  // per-tenant above global
  EXPECT_NE(config.Validate().find("max_inflight_bytes_per_tenant"), std::string::npos);

  config = ServiceConfig{};
  config.breaker_failure_threshold = 0;
  EXPECT_NE(config.Validate().find("breaker_failure_threshold"), std::string::npos);

  config = ServiceConfig{};
  config.breaker_probe_jobs = 0;
  EXPECT_NE(config.Validate().find("breaker_probe_jobs"), std::string::npos);

  config = ServiceConfig{};
  config.breaker_open_ms = -5;
  EXPECT_NE(config.Validate().find("breaker_open_ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// DRR admission control (deterministic, controller in isolation)
// ---------------------------------------------------------------------------

QueuedJob Queued(const std::string& tenant, int64_t cost, int priority = 0,
                 int64_t input_bytes = 0) {
  QueuedJob job;
  job.tenant = tenant;
  job.spec.cost = cost;
  job.spec.priority = priority;
  job.spec.input_bytes = input_bytes;
  job.state = std::make_shared<internal::JobState>();
  job.state->tenant = tenant;
  return job;
}

TEST(AdmissionControllerTest, EqualCostsRoundRobinAcrossTenants) {
  AdmissionController admission(64, 32, /*drr_quantum=*/1);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(admission.Submit(Queued("a", 1)), AdmitResult::kAdmitted);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(admission.Submit(Queued("b", 1)), AdmitResult::kAdmitted);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(admission.Submit(Queued("c", 1)), AdmitResult::kAdmitted);
  std::vector<std::string> order;
  QueuedJob job;
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(admission.Next(&job));
    order.push_back(job.tenant);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c", "a", "b", "c", "a", "b", "c"}));
  EXPECT_EQ(admission.depth(), 0);
}

TEST(AdmissionControllerTest, CostWeightedSharing) {
  // Tenant "cheap" submits cost-1 jobs, "pricey" cost-4: with quantum 4,
  // every round serves four cheap jobs and one pricey job.
  AdmissionController admission(64, 32, /*drr_quantum=*/4);
  for (int i = 0; i < 8; ++i)
    ASSERT_EQ(admission.Submit(Queued("cheap", 1)), AdmitResult::kAdmitted);
  for (int i = 0; i < 2; ++i)
    ASSERT_EQ(admission.Submit(Queued("pricey", 4)), AdmitResult::kAdmitted);
  std::vector<std::string> order;
  QueuedJob job;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(admission.Next(&job));
    order.push_back(job.tenant);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"cheap", "cheap", "cheap", "cheap", "pricey",
                                             "cheap", "cheap", "cheap", "cheap", "pricey"}));
}

TEST(AdmissionControllerTest, BoundsAndShutdownDrainWithTypedRejections) {
  AdmissionController admission(/*max_queue_depth=*/4, /*max_queue_depth_per_tenant=*/2, 1);
  EXPECT_EQ(admission.Submit(Queued("a", 1)), AdmitResult::kAdmitted);
  EXPECT_EQ(admission.Submit(Queued("a", 1)), AdmitResult::kAdmitted);
  EXPECT_EQ(admission.Submit(Queued("a", 1)), AdmitResult::kRejectedTenantDepth);
  EXPECT_EQ(admission.Submit(Queued("b", 1)), AdmitResult::kAdmitted);
  EXPECT_EQ(admission.Submit(Queued("c", 1)), AdmitResult::kAdmitted);
  EXPECT_EQ(admission.Submit(Queued("d", 1)), AdmitResult::kRejectedGlobalDepth);
  admission.Shutdown();
  EXPECT_EQ(admission.Submit(Queued("e", 1)), AdmitResult::kRejectedShutdown);
  QueuedJob job;
  int drained = 0;
  while (admission.Next(&job)) {
    drained += 1;
  }
  EXPECT_EQ(drained, 4) << "queued jobs drain through shutdown";
  const AdmissionController::Stats stats = admission.stats();
  EXPECT_EQ(stats.rejected, 3);
  EXPECT_EQ(stats.rejected_tenant_depth, 1);
  EXPECT_EQ(stats.rejected_global_depth, 1);
  EXPECT_EQ(stats.rejected_shutdown, 1);
  EXPECT_EQ(stats.dispatched, 4);
}

TEST(AdmissionControllerTest, PriorityOrdersWithinOneTenantOnly) {
  AdmissionController admission(64, 32, /*drr_quantum=*/1);
  // Tenant "a": priorities 0, 5, 1, 5 — dispatch order 5, 5 (FIFO among
  // equals), 1, 0. Tenant "b" keeps its DRR turn regardless of "a"'s
  // priorities.
  ASSERT_EQ(admission.Submit(Queued("a", 1, /*priority=*/0)), AdmitResult::kAdmitted);
  ASSERT_EQ(admission.Submit(Queued("b", 1, /*priority=*/0)), AdmitResult::kAdmitted);
  ASSERT_EQ(admission.Submit(Queued("a", 1, /*priority=*/5)), AdmitResult::kAdmitted);
  ASSERT_EQ(admission.Submit(Queued("a", 1, /*priority=*/1)), AdmitResult::kAdmitted);
  ASSERT_EQ(admission.Submit(Queued("a", 1, /*priority=*/5)), AdmitResult::kAdmitted);
  std::vector<std::pair<std::string, int>> order;
  QueuedJob job;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(admission.Next(&job));
    order.emplace_back(job.tenant, job.spec.priority);
  }
  EXPECT_EQ(order, (std::vector<std::pair<std::string, int>>{
                       {"a", 5}, {"b", 0}, {"a", 5}, {"a", 1}, {"a", 0}}));
}

TEST(AdmissionControllerTest, ByteQuotaRejectsChargesAndReleases) {
  AdmissionController admission(64, 32, 1, /*max_inflight_bytes=*/1000,
                                /*max_inflight_bytes_per_tenant=*/600);
  ASSERT_EQ(admission.Submit(Queued("a", 1, 0, /*input_bytes=*/500)), AdmitResult::kAdmitted);
  EXPECT_EQ(admission.stats().inflight_bytes, 500);
  EXPECT_EQ(admission.Submit(Queued("a", 1, 0, 500)), AdmitResult::kRejectedBytes)
      << "per-tenant byte budget";
  ASSERT_EQ(admission.Submit(Queued("b", 1, 0, 400)), AdmitResult::kAdmitted);
  EXPECT_EQ(admission.Submit(Queued("c", 1, 0, 200)), AdmitResult::kRejectedBytes)
      << "global byte budget";
  ASSERT_EQ(admission.Submit(Queued("c", 1, 0, /*input_bytes=*/0)), AdmitResult::kAdmitted)
      << "jobs of unknown size bypass byte accounting";
  EXPECT_EQ(admission.stats().rejected_bytes, 2);
  EXPECT_EQ(admission.stats().inflight_bytes, 900);

  // Dispatch + release returns the budget.
  QueuedJob job;
  int64_t released = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(admission.Next(&job));
    released += job.byte_charge;
    admission.Release(job.tenant, job.byte_charge);
  }
  EXPECT_EQ(released, 900);
  EXPECT_EQ(admission.stats().inflight_bytes, 0);
}

TEST(AdmissionControllerTest, ObservedOutputsCorrectFutureCharges) {
  AdmissionController admission(64, 32, 1, /*max_inflight_bytes=*/10000, -1);
  // The tenant's jobs double their input: after observations, a 100-byte
  // job is charged more than its raw estimate.
  for (int i = 0; i < 20; ++i) {
    admission.ObserveCompletion("a", /*input_bytes=*/100, /*output_bytes=*/100);
  }
  ASSERT_EQ(admission.Submit(Queued("a", 1, 0, /*input_bytes=*/100)), AdmitResult::kAdmitted);
  QueuedJob job;
  ASSERT_TRUE(admission.Next(&job));
  EXPECT_GT(job.byte_charge, 150) << "EWMA correction lifted the charge toward 2x";
  EXPECT_LE(job.byte_charge, 200);
  admission.Release(job.tenant, job.byte_charge);
  EXPECT_EQ(admission.stats().inflight_bytes, 0);
}

TEST(AdmissionControllerTest, CancelRemovesQueuedJobAndReleasesBytes) {
  AdmissionController admission(64, 32, 1, /*max_inflight_bytes=*/1000, -1);
  QueuedJob queued = Queued("a", 1, 0, /*input_bytes=*/400);
  const internal::JobState* state = queued.state.get();
  ASSERT_EQ(admission.Submit(std::move(queued)), AdmitResult::kAdmitted);
  ASSERT_EQ(admission.Submit(Queued("a", 1)), AdmitResult::kAdmitted);

  QueuedJob removed;
  EXPECT_TRUE(admission.Cancel(state, &removed));
  EXPECT_EQ(removed.state.get(), state);
  EXPECT_EQ(admission.depth(), 1);
  EXPECT_EQ(admission.stats().cancelled_queued, 1);
  EXPECT_EQ(admission.stats().inflight_bytes, 0) << "the cancel released its byte charge";
  EXPECT_FALSE(admission.Cancel(state, &removed)) << "double cancel finds nothing";

  QueuedJob job;
  ASSERT_TRUE(admission.Next(&job));
  EXPECT_NE(job.state.get(), state) << "the cancelled job never dispatches";
}

// ---------------------------------------------------------------------------
// Session / JobHandle lifecycle
// ---------------------------------------------------------------------------

TEST(ServiceTest, SubmitWaitSucceedsWithPerJobStats) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  JobHandle handle = session.Submit(KindJob(0));
  ASSERT_TRUE(handle.valid());
  const JobResult result = WaitDone(handle);
  EXPECT_EQ(result.status, JobStatus::kSucceeded);
  EXPECT_EQ(handle.poll(), JobStatus::kSucceeded) << "poll observes the terminal status";
  EXPECT_EQ(result.output, SequentialExpected()[0]);
  EXPECT_GT(result.stats.tasks_run, 0) << "per-job stats delta, not engine lifetime";
  EXPECT_GT(result.exec_ns, 0);
  EXPECT_GE(result.queue_wait_ns, 0);
}

TEST(ServiceTest, FailedJobCarriesTheError) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  JobSpec bad;
  bad.name = "throws";
  bad.run = [](EngineContext&) -> std::string { throw std::runtime_error("boom"); };
  const JobResult result = WaitDone(session.Submit(std::move(bad)));
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error, "boom");
  // The slot survives: the next job on the same engine still succeeds.
  const JobResult next = WaitDone(session.Submit(KindJob(0)));
  EXPECT_EQ(next.status, JobStatus::kSucceeded);
}

TEST(ServiceTest, WaitForTimesOutWhileRunningThenObservesCompletion) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  auto gate = std::make_shared<Gate>();
  JobHandle handle = session.Submit(GateJob(gate));
  AwaitGateRunning(gate);
  EXPECT_FALSE(handle.wait_for(std::chrono::milliseconds(30)).has_value())
      << "bounded wait returns nullopt while the job runs";
  OpenGate(gate);
  EXPECT_EQ(WaitDone(handle).status, JobStatus::kSucceeded);
}

TEST(ServiceTest, OverflowingSubmitsAreRejected) {
  ServiceConfig config = SmallService(1);
  config.max_queue_depth = 3;
  config.max_queue_depth_per_tenant = 3;
  EngineService service(config);
  Session session = service.CreateSession("alice");

  auto gate = std::make_shared<Gate>();
  JobHandle blocked = session.Submit(GateJob(gate));
  AwaitGateRunning(gate);

  std::vector<JobHandle> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(session.Submit(KindJob(0)));
  }
  JobHandle rejected = session.Submit(KindJob(0));
  EXPECT_EQ(rejected.poll(), JobStatus::kRejected) << "rejection is synchronous";
  const JobResult rejection = WaitDone(rejected);
  EXPECT_EQ(rejection.status, JobStatus::kRejected);
  EXPECT_NE(rejection.error.find("max_queue_depth"), std::string::npos)
      << "the error names the bound that fired: " << rejection.error;

  OpenGate(gate);
  EXPECT_EQ(WaitDone(blocked).status, JobStatus::kSucceeded);
  for (JobHandle& handle : queued) {
    EXPECT_EQ(WaitDone(handle).status, JobStatus::kSucceeded);
  }
  EXPECT_EQ(service.admission_stats().rejected, 1);
  EXPECT_EQ(service.admission_stats().rejected_global_depth, 1)
      << "global and per-tenant bounds are equal here; global is checked first";
  EXPECT_EQ(service.metrics().Counter("service.rejected_global_depth"), 1);
}

TEST(ServiceTest, PerTenantDepthRejectionIsTyped) {
  ServiceConfig config = SmallService(1);
  config.max_queue_depth = 16;
  config.max_queue_depth_per_tenant = 1;
  config.engine.observability.trace = true;  // capture the rejection instant
  EngineService service(config);
  Session session = service.CreateSession("alice");

  auto gate = std::make_shared<Gate>();
  JobHandle blocked = session.Submit(GateJob(gate));
  AwaitGateRunning(gate);
  JobHandle queued = session.Submit(KindJob(0));
  JobHandle rejected = session.Submit(KindJob(0));
  const JobResult rejection = WaitDone(rejected);
  EXPECT_EQ(rejection.status, JobStatus::kRejected);
  EXPECT_NE(rejection.error.find("max_queue_depth_per_tenant"), std::string::npos)
      << rejection.error;
  EXPECT_EQ(service.admission_stats().rejected_tenant_depth, 1);
  EXPECT_EQ(service.metrics().Counter("service.rejected_tenant_depth"), 1);

  ASSERT_NE(service.service_trace(), nullptr);
  int reject_instants = 0;
  for (const TraceEvent& ev : service.service_trace()->events()) {
    if (ev.type == TraceEventType::kAdmissionReject &&
        std::string(ev.name) == "rejected_tenant_depth") {
      reject_instants += 1;
    }
  }
  EXPECT_EQ(reject_instants, 1) << "each rejection emits a typed trace instant";

  OpenGate(gate);
  EXPECT_EQ(WaitDone(blocked).status, JobStatus::kSucceeded);
  EXPECT_EQ(WaitDone(queued).status, JobStatus::kSucceeded);
}

TEST(ServiceTest, ByteQuotaRejectionIsTypedAndCounted) {
  ServiceConfig config = SmallService(1);
  config.max_inflight_bytes = 1000;
  config.engine.observability.trace = true;
  EngineService service(config);
  Session session = service.CreateSession("alice");

  auto gate = std::make_shared<Gate>();
  JobHandle blocked = session.Submit(GateJob(gate));
  AwaitGateRunning(gate);

  JobSpec big = KindJob(0);
  big.input_bytes = 800;
  JobHandle queued = session.Submit(std::move(big));
  JobSpec over = KindJob(0);
  over.input_bytes = 800;
  JobHandle rejected = session.Submit(std::move(over));
  const JobResult rejection = WaitDone(rejected);
  EXPECT_EQ(rejection.status, JobStatus::kRejected);
  EXPECT_NE(rejection.error.find("max_inflight_bytes"), std::string::npos) << rejection.error;
  EXPECT_EQ(service.admission_stats().rejected_bytes, 1);
  EXPECT_EQ(service.metrics().Counter("service.rejected_bytes"), 1);
  ASSERT_NE(service.service_trace(), nullptr);
  int byte_rejects = 0;
  for (const TraceEvent& ev : service.service_trace()->events()) {
    if (ev.type == TraceEventType::kAdmissionReject &&
        std::string(ev.name) == "rejected_bytes") {
      byte_rejects += 1;
    }
  }
  EXPECT_EQ(byte_rejects, 1);

  OpenGate(gate);
  EXPECT_EQ(WaitDone(blocked).status, JobStatus::kSucceeded);
  EXPECT_EQ(WaitDone(queued).status, JobStatus::kSucceeded);
  EXPECT_EQ(service.admission_stats().inflight_bytes, 0)
      << "charges are released at terminal states";
}

// ---------------------------------------------------------------------------
// Deadlines & cancellation
// ---------------------------------------------------------------------------

TEST(ServiceTest, NegativeDeadlineIsRejectedNamingTheField) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  JobSpec spec = KindJob(0);
  spec.deadline_ms = -7;
  JobHandle handle = session.Submit(std::move(spec));
  EXPECT_EQ(handle.poll(), JobStatus::kRejected) << "spec validation is synchronous";
  const JobResult result = WaitDone(handle);
  EXPECT_NE(result.error.find("deadline_ms"), std::string::npos) << result.error;
}

TEST(ServiceTest, CancelQueuedJobResolvesSynchronously) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  auto gate = std::make_shared<Gate>();
  JobHandle blocked = session.Submit(GateJob(gate));
  AwaitGateRunning(gate);

  JobHandle queued = session.Submit(KindJob(0));
  EXPECT_EQ(queued.poll(), JobStatus::kQueued);
  EXPECT_TRUE(queued.cancel());
  EXPECT_EQ(queued.poll(), JobStatus::kCancelled) << "queued cancel is synchronous";
  const JobResult result = WaitDone(queued);
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_NE(result.error.find("before dispatch"), std::string::npos) << result.error;
  EXPECT_EQ(result.stats.tasks_run, 0) << "the job never touched an engine";
  EXPECT_FALSE(queued.cancel()) << "cancelling a terminal job reports no effect";
  EXPECT_EQ(service.admission_stats().cancelled_queued, 1);

  OpenGate(gate);
  EXPECT_EQ(WaitDone(blocked).status, JobStatus::kSucceeded);
  // The cancelled job must not have been dispatched.
  EXPECT_EQ(service.admission_stats().dispatched, 1);
}

TEST(ServiceTest, CancelRunningJobUnwindsAtATaskBoundaryWithPartialStats) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");

  // An endless body: loops stages until cancelled. Without cooperative
  // cancellation this job would never finish.
  auto started = std::make_shared<std::atomic<bool>>(false);
  JobSpec endless;
  endless.name = "endless";
  endless.run = [started](EngineContext& ctx) -> std::string {
    auto* setup = static_cast<PairServiceSetup*>(ctx.setup.get());
    for (;;) {
      RunKindOnSpark(0, *ctx.spark, setup->spark);
      started->store(true);
    }
  };
  JobHandle handle = session.Submit(std::move(endless));
  while (!started->load()) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(handle.cancel());
  const JobResult result = WaitDone(handle, std::chrono::seconds(30));
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_NE(result.error.find("cancel"), std::string::npos) << result.error;
  EXPECT_GT(result.stats.tasks_run, 0) << "partial progress is visible in the stats delta";
  EXPECT_EQ(service.metrics().Counter("service.jobs_cancelled"), 1);
  EXPECT_EQ(service.metrics().Counter("tenant.alice.jobs_cancelled"), 1);

  // The slot survives a cancelled job like it survives a failed one.
  EXPECT_EQ(WaitDone(session.Submit(KindJob(0))).status, JobStatus::kSucceeded);
}

TEST(ServiceTest, DeadlineExpiresMidRunAtATaskBoundary) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  JobSpec slow;
  slow.name = "slow";
  slow.deadline_ms = 40;
  slow.run = [](EngineContext& ctx) -> std::string {
    // Uncooperative prefix outlives the deadline; the next task boundary
    // observes the expiry.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    auto* setup = static_cast<PairServiceSetup*>(ctx.setup.get());
    for (;;) {
      RunKindOnSpark(0, *ctx.spark, setup->spark);
    }
  };
  const JobResult result = WaitDone(session.Submit(std::move(slow)), std::chrono::seconds(30));
  EXPECT_EQ(result.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(result.error.find("deadline"), std::string::npos) << result.error;
  EXPECT_EQ(service.metrics().Counter("service.jobs_deadline_exceeded"), 1);
}

TEST(ServiceTest, DeadlineCanExpireInTheQueueWithoutRunning) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  auto gate = std::make_shared<Gate>();
  JobHandle blocked = session.Submit(GateJob(gate));
  AwaitGateRunning(gate);

  JobSpec doomed = KindJob(0);
  doomed.deadline_ms = 20;
  JobHandle handle = session.Submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  OpenGate(gate);
  const JobResult result = WaitDone(handle);
  EXPECT_EQ(result.status, JobStatus::kDeadlineExceeded);
  EXPECT_NE(result.error.find("queue"), std::string::npos) << result.error;
  EXPECT_EQ(result.stats.tasks_run, 0) << "the job was never run";
  EXPECT_EQ(WaitDone(blocked).status, JobStatus::kSucceeded);
}

TEST(ServiceTest, DefaultDeadlineAppliesWhenSpecLeavesItZero) {
  ServiceConfig config = SmallService(1);
  config.default_deadline_ms = 40;
  EngineService service(config);
  Session session = service.CreateSession("alice");
  JobSpec slow;
  slow.run = [](EngineContext& ctx) -> std::string {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    auto* setup = static_cast<PairServiceSetup*>(ctx.setup.get());
    for (;;) {
      RunKindOnSpark(0, *ctx.spark, setup->spark);
    }
  };
  EXPECT_EQ(WaitDone(session.Submit(std::move(slow)), std::chrono::seconds(30)).status,
            JobStatus::kDeadlineExceeded);
}

TEST(ServiceTest, PriorityDispatchesFirstWithinATenant) {
  EngineService service(SmallService(1));
  Session session = service.CreateSession("alice");
  auto gate = std::make_shared<Gate>();
  JobHandle blocked = session.Submit(GateJob(gate));
  AwaitGateRunning(gate);

  auto order = std::make_shared<std::vector<int>>();
  auto order_mu = std::make_shared<std::mutex>();
  std::vector<JobHandle> handles;
  for (int priority : {0, 5, 1}) {
    JobSpec spec;
    spec.priority = priority;
    spec.run = [priority, order, order_mu](EngineContext&) -> std::string {
      std::lock_guard<std::mutex> lock(*order_mu);
      order->push_back(priority);
      return "";
    };
    handles.push_back(session.Submit(std::move(spec)));
  }
  OpenGate(gate);
  EXPECT_EQ(WaitDone(blocked).status, JobStatus::kSucceeded);
  for (JobHandle& handle : handles) {
    EXPECT_EQ(WaitDone(handle).status, JobStatus::kSucceeded);
  }
  EXPECT_EQ(*order, (std::vector<int>{5, 1, 0})) << "highest priority first within the tenant";
}

// ---------------------------------------------------------------------------
// Slot circuit breakers
// ---------------------------------------------------------------------------

TEST(ServiceTest, BreakerOpensRebuildsAndClosesAfterProbes) {
  ServiceConfig config = SmallService(1);
  config.breaker_failure_threshold = 2;
  config.breaker_probe_jobs = 2;
  EngineService service(config);
  Session session = service.CreateSession("alice");

  JobSpec bad;
  bad.run = [](EngineContext&) -> std::string { throw std::runtime_error("sick slot"); };
  EXPECT_EQ(WaitDone(session.Submit(bad)).status, JobStatus::kFailed);
  EXPECT_EQ(service.breaker_stats().opens, 0) << "one failure stays under the threshold";
  EXPECT_EQ(WaitDone(session.Submit(bad)).status, JobStatus::kFailed);

  EngineService::BreakerStats breaker = service.breaker_stats();
  EXPECT_EQ(breaker.opens, 1) << "the second consecutive failure crossed the threshold";
  EXPECT_EQ(breaker.rebuilds, 1);
  EXPECT_EQ(breaker.half_opens, 1);
  EXPECT_EQ(breaker.closes, 0);

  // Two probe successes close the breaker; the rebuilt slot (fresh engines,
  // re-run setup) still produces the reference bytes.
  const std::string expected = SequentialExpected()[0];
  for (int i = 0; i < 2; ++i) {
    const JobResult result = WaitDone(session.Submit(KindJob(0)));
    ASSERT_EQ(result.status, JobStatus::kSucceeded);
    EXPECT_EQ(result.output, expected);
  }
  breaker = service.breaker_stats();
  EXPECT_EQ(breaker.closes, 1);
  EXPECT_EQ(breaker.probe_failures, 0);
  EXPECT_EQ(service.metrics().Counter("service.breaker.closes"), 1);
}

TEST(ServiceTest, HalfOpenFailureReopensTheBreaker) {
  ServiceConfig config = SmallService(1);
  config.breaker_failure_threshold = 1;
  config.breaker_probe_jobs = 1;
  EngineService service(config);
  Session session = service.CreateSession("alice");

  JobSpec bad;
  bad.run = [](EngineContext&) -> std::string { throw std::runtime_error("still sick"); };
  EXPECT_EQ(WaitDone(session.Submit(bad)).status, JobStatus::kFailed);  // opens
  EXPECT_EQ(WaitDone(session.Submit(bad)).status, JobStatus::kFailed);  // probe fails, reopens
  const EngineService::BreakerStats breaker = service.breaker_stats();
  EXPECT_EQ(breaker.opens, 2);
  EXPECT_EQ(breaker.probe_failures, 1);
  EXPECT_EQ(breaker.closes, 0);
  // A clean probe still closes it.
  EXPECT_EQ(WaitDone(session.Submit(KindJob(0))).status, JobStatus::kSucceeded);
  EXPECT_EQ(service.breaker_stats().closes, 1);
}

TEST(ServiceTest, TripBreakerForcesAFullCycle) {
  ServiceConfig config = SmallService(1);
  config.breaker_probe_jobs = 2;
  config.engine.observability.trace = true;
  EngineService service(config);
  Session session = service.CreateSession("alice");

  ASSERT_TRUE(service.TripBreaker(0));
  EXPECT_FALSE(service.TripBreaker(99)) << "out-of-range slot";
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(WaitDone(session.Submit(KindJob(0))).status, JobStatus::kSucceeded);
  }
  const EngineService::BreakerStats breaker = service.breaker_stats();
  EXPECT_EQ(breaker.opens, 1);
  EXPECT_EQ(breaker.rebuilds, 1);
  EXPECT_EQ(breaker.half_opens, 1);
  EXPECT_EQ(breaker.closes, 1);

  // The transitions are visible as trace instants, in lifecycle order.
  ASSERT_NE(service.service_trace(), nullptr);
  std::vector<std::string> names;
  for (const TraceEvent& ev : service.service_trace()->events()) {
    if (ev.type == TraceEventType::kBreaker) {
      names.push_back(ev.name);
    }
  }
  EXPECT_EQ(names, (std::vector<std::string>{"breaker_open", "breaker_rebuild",
                                             "breaker_half_open", "breaker_close"}));
}

// ---------------------------------------------------------------------------
// DRR fairness under saturation
// ---------------------------------------------------------------------------

TEST(ServiceTest, DrrDispatchOrderIsFairUnderSaturation) {
  ServiceConfig config = SmallService(1);
  config.max_queue_depth = 64;
  config.max_queue_depth_per_tenant = 16;
  config.drr_quantum = 1;
  EngineService service(config);

  auto gate = std::make_shared<Gate>();
  Session warmup = service.CreateSession("warmup");
  JobHandle blocked = warmup.Submit(GateJob(gate));
  AwaitGateRunning(gate);

  // With the dispatcher parked, enqueue 4 tenants x 8 jobs; the dispatch
  // order over the static queue is pure DRR — strict round-robin at
  // quantum 1 and equal costs.
  auto order = std::make_shared<std::vector<std::string>>();
  auto order_mu = std::make_shared<std::mutex>();
  const std::vector<std::string> tenants = {"a", "b", "c", "d"};
  std::vector<JobHandle> handles;
  for (const std::string& tenant : tenants) {
    Session session = service.CreateSession(tenant);
    for (int i = 0; i < 8; ++i) {
      JobSpec spec;
      spec.run = [tenant, order, order_mu](EngineContext&) -> std::string {
        std::lock_guard<std::mutex> lock(*order_mu);
        order->push_back(tenant);
        return "";
      };
      handles.push_back(session.Submit(std::move(spec)));
    }
  }
  OpenGate(gate);
  WaitDone(blocked);
  for (JobHandle& handle : handles) {
    EXPECT_EQ(WaitDone(handle).status, JobStatus::kSucceeded);
  }

  ASSERT_EQ(order->size(), 32u);
  for (size_t i = 0; i < order->size(); ++i) {
    EXPECT_EQ((*order)[i], tenants[i % 4]) << "strict round-robin at index " << i;
  }
  // Completed-job spread at every prefix is within one round (trivially
  // within the 2x acceptance bound).
  for (const std::string& tenant : tenants) {
    EXPECT_EQ(service.TenantJobsCompleted(tenant), 8);
  }
}

// ---------------------------------------------------------------------------
// Per-tenant metrics scoping + speculation oracle
// ---------------------------------------------------------------------------

TEST(ServiceTest, MetricsAreScopedPerTenant) {
  EngineService service(SmallService(1));
  Session alice = service.CreateSession("alice");
  Session bob = service.CreateSession("bob");
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(WaitDone(alice.Submit(KindJob(0))).status, JobStatus::kSucceeded);
  }
  ASSERT_EQ(WaitDone(bob.Submit(KindJob(2))).status, JobStatus::kSucceeded);

  MetricsRegistry alice_metrics = alice.metrics();
  EXPECT_EQ(alice_metrics.Counter("jobs_succeeded"), 3);
  EXPECT_EQ(alice_metrics.Counter("jobs_completed"), 3);
  EXPECT_EQ(alice_metrics.Hist("job_exec").count(), 3);
  MetricsRegistry bob_metrics = bob.metrics();
  EXPECT_EQ(bob_metrics.Counter("jobs_succeeded"), 1);

  MetricsRegistry combined = service.metrics();
  EXPECT_EQ(combined.Counter("tenant.alice.jobs_succeeded"), 3);
  EXPECT_EQ(combined.Counter("tenant.bob.jobs_succeeded"), 1);
  EXPECT_EQ(combined.Counter("service.jobs_dispatched"), 4);
  EXPECT_GT(combined.Counter("service.plan_cache.hits"), 0) << "repeat kinds hit the cache";
  // Per-tenant task counts stay separated: alice ran 3x the kind-0 stage.
  EXPECT_EQ(combined.Counter("tenant.alice.tasks_run"),
            3 * WaitDone(alice.Submit(KindJob(0))).stats.tasks_run);
}

TEST(ServiceTest, SpeculationOracleIsPerTenantAndPerSer) {
  ServiceConfig config = SmallService(1);
  config.engine.fault.governor_abort_threshold = 0.5;
  config.engine.fault.governor_min_tasks = 4;
  EngineService service(config);
  Session alice = service.CreateSession("alice");
  Session bob = service.CreateSession("bob");

  // Alice poisons her SER: every task of the stage aborts once.
  JobSpec poison = KindJob(0);
  auto run = poison.run;
  poison.run = [run](EngineContext& ctx) -> std::string {
    ctx.spark->ForceAborts(4);
    return run(ctx);
  };
  const JobResult poisoned = WaitDone(alice.Submit(std::move(poison)));
  ASSERT_EQ(poisoned.status, JobStatus::kSucceeded);
  EXPECT_EQ(poisoned.stats.aborts, 4);

  // Alice's abort rate (1.0 >= 0.5 over >= 4 tasks) turns her SER's
  // speculation off; the job still succeeds via the direct slow path.
  const JobResult alice_after = WaitDone(alice.Submit(KindJob(0)));
  ASSERT_EQ(alice_after.status, JobStatus::kSucceeded);
  EXPECT_EQ(alice_after.stats.slow_path_direct, 4);
  EXPECT_EQ(alice_after.stats.fast_path_commits, 0);

  // Bob runs the same SER untouched — the history is keyed per tenant.
  const JobResult bob_same_ser = WaitDone(bob.Submit(KindJob(0)));
  ASSERT_EQ(bob_same_ser.status, JobStatus::kSucceeded);
  EXPECT_EQ(bob_same_ser.stats.slow_path_direct, 0);
  EXPECT_GT(bob_same_ser.stats.fast_path_commits, 0);

  // A different SER of alice's still speculates — the history is keyed
  // per signature, not per tenant alone.
  const JobResult alice_other_ser = WaitDone(alice.Submit(KindJob(1)));
  ASSERT_EQ(alice_other_ser.status, JobStatus::kSucceeded);
  EXPECT_EQ(alice_other_ser.stats.slow_path_direct, 0);
  EXPECT_GT(alice_other_ser.stats.fast_path_commits, 0);

  // Every path produced the same bytes.
  const std::string expected = SequentialExpected()[0];
  EXPECT_EQ(poisoned.output, expected);
  EXPECT_EQ(alice_after.output, expected);
  EXPECT_EQ(bob_same_ser.output, expected);
}

// ---------------------------------------------------------------------------
// The acceptance storm: 16 tenants x 64 heterogeneous jobs, concurrent
// submitters, outputs byte-identical to sequential runs, hit rate > 90%.
// ---------------------------------------------------------------------------

TEST(ServiceTest, SixteenTenantStormIsByteIdenticalWithHotCache) {
  const std::vector<std::string> expected = SequentialExpected();

  ServiceConfig config = SmallService(4);
  config.max_queue_depth = 2048;
  config.max_queue_depth_per_tenant = 64;
  EngineService service(config);

  constexpr int kTenants = 16;
  constexpr int kJobsPerTenant = 64;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      Session session = service.CreateSession("tenant" + std::to_string(t));
      std::vector<JobHandle> handles;
      std::vector<int> kinds;
      handles.reserve(kJobsPerTenant);
      for (int j = 0; j < kJobsPerTenant; ++j) {
        const int kind = (t + j) % kJobKinds;
        kinds.push_back(kind);
        handles.push_back(session.Submit(KindJob(kind)));
      }
      for (int j = 0; j < kJobsPerTenant; ++j) {
        const JobResult result = WaitDone(handles[j]);
        if (result.status != JobStatus::kSucceeded) {
          failures.fetch_add(1);
        } else if (result.output != expected[kinds[j]]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0) << "service outputs must be byte-identical to sequential runs";

  const PlanCache::Stats cache = service.plan_cache_stats();
  const double lookups = static_cast<double>(cache.hits + cache.misses);
  ASSERT_GT(lookups, 0.0);
  EXPECT_GT(static_cast<double>(cache.hits) / lookups, 0.9)
      << "hits=" << cache.hits << " misses=" << cache.misses;
  EXPECT_EQ(cache.evictions, 0) << "the storm's working set fits the default budget";

  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(service.TenantJobsCompleted("tenant" + std::to_string(t)), kJobsPerTenant);
  }
  const AdmissionController::Stats admission = service.admission_stats();
  EXPECT_EQ(admission.submitted, kTenants * kJobsPerTenant);
  EXPECT_EQ(admission.dispatched, kTenants * kJobsPerTenant);
  EXPECT_EQ(admission.rejected, 0);
}

TEST(ServiceTest, ShutdownDrainsQueuedJobs) {
  auto service = std::make_unique<EngineService>(SmallService(2));
  Session session = service->CreateSession("alice");
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(session.Submit(KindJob(i % kJobKinds)));
  }
  service->Shutdown();  // drains, then joins
  for (JobHandle& handle : handles) {
    EXPECT_EQ(WaitDone(handle).status, JobStatus::kSucceeded) << "queued jobs drain on shutdown";
  }
  JobHandle late = session.Submit(KindJob(0));
  EXPECT_EQ(late.poll(), JobStatus::kRejected);
  service.reset();
}

}  // namespace
}  // namespace gerenuk
