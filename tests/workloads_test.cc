// Every benchmark program must produce the same result (to floating-point
// reordering tolerance) in baseline and Gerenuk modes — the paper's "we also
// verified that no incorrect results were produced by our transformation".
#include <gtest/gtest.h>

#include "src/workloads/hadoop_workloads.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

EngineConfig SmallSpark(EngineMode mode) {
  EngineConfig config;
  config.execution.mode = mode;
  config.execution.heap_bytes = 64u << 20;
  config.execution.num_partitions = 3;
  return config;
}

HadoopConfig SmallHadoop(EngineMode mode) {
  HadoopConfig config;
  config.engine.execution.mode = mode;
  config.engine.execution.heap_bytes = 64u << 20;
  config.engine.execution.num_partitions = 3;
  config.num_reducers = 2;
  config.sort_buffer_bytes = 64 << 10;
  return config;
}

TEST(SparkWorkloadsTest, PageRankMatchesAcrossModes) {
  SyntheticGraph graph = MakePowerLawGraph(300, 1500, 7);
  double checksums[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkEngine engine(SmallSpark(mode));
    SparkWorkloads workloads(engine);
    WorkloadResult result = workloads.RunPageRank(graph, 3);
    checksums[static_cast<int>(mode)] = result.checksum;
    EXPECT_GT(result.records, 0);
    EXPECT_GT(result.checksum, 0.0);
  }
  EXPECT_NEAR(checksums[0], checksums[1], 1e-6 * std::abs(checksums[0]));
}

TEST(SparkWorkloadsTest, ConnectedComponentsMatchesAcrossModes) {
  SyntheticGraph graph = MakePowerLawGraph(200, 1200, 9);
  double checksums[2];
  int64_t records[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkEngine engine(SmallSpark(mode));
    SparkWorkloads workloads(engine);
    WorkloadResult result = workloads.RunConnectedComponents(graph, 4);
    checksums[static_cast<int>(mode)] = result.checksum;
    records[static_cast<int>(mode)] = result.records;
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(records[0], records[1]);
  // Labels only shrink from their vertex-id initialization, and propagation
  // must have merged something.
  EXPECT_LT(checksums[0], 200.0 * 199.0 / 2.0);
  EXPECT_GE(checksums[0], 0.0);
}

TEST(SparkWorkloadsTest, KMeansMatchesAcrossModes) {
  SyntheticPoints points = MakeClusteredPoints(400, 4, 3, 11);
  double checksums[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkEngine engine(SmallSpark(mode));
    SparkWorkloads workloads(engine);
    checksums[static_cast<int>(mode)] = workloads.RunKMeans(points, 3, 3).checksum;
  }
  EXPECT_NEAR(checksums[0], checksums[1], 1e-6 * std::abs(checksums[0]) + 1e-9);
}

TEST(SparkWorkloadsTest, LogisticRegressionMatchesAcrossModes) {
  SyntheticLabeledPoints points = MakeLabeledPoints(300, 5, 13);
  double checksums[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkEngine engine(SmallSpark(mode));
    SparkWorkloads workloads(engine);
    checksums[static_cast<int>(mode)] =
        workloads.RunLogisticRegression(points, 3, 0.5).checksum;
  }
  EXPECT_NEAR(checksums[0], checksums[1], 1e-9);
  EXPECT_NE(checksums[0], 0.0);  // the model actually learned something
}

TEST(SparkWorkloadsTest, ChiSquareMatchesAcrossModes) {
  SyntheticLabeledPoints points = MakeLabeledPoints(300, 6, 17);
  double checksums[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkEngine engine(SmallSpark(mode));
    SparkWorkloads workloads(engine);
    checksums[static_cast<int>(mode)] = workloads.RunChiSquareSelector(points).checksum;
  }
  EXPECT_NEAR(checksums[0], checksums[1], 1e-9);
  EXPECT_GT(checksums[0], 0.0);
}

TEST(SparkWorkloadsTest, GradientBoostingMatchesAcrossModes) {
  SyntheticLabeledPoints points = MakeLabeledPoints(250, 4, 19);
  double checksums[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkEngine engine(SmallSpark(mode));
    SparkWorkloads workloads(engine);
    checksums[static_cast<int>(mode)] = workloads.RunGradientBoosting(points, 3, 0.5).checksum;
  }
  EXPECT_NEAR(checksums[0], checksums[1], 1e-9);
  EXPECT_NE(checksums[0], 0.0);
}

TEST(SparkWorkloadsTest, WordCountMatchesAcrossModes) {
  std::vector<std::string> lines = MakeTextLines(150, 6, 100, 23);
  double checksums[2];
  int64_t records[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkEngine engine(SmallSpark(mode));
    SparkWorkloads workloads(engine);
    WorkloadResult result = workloads.RunWordCount(lines);
    checksums[static_cast<int>(mode)] = result.checksum;
    records[static_cast<int>(mode)] = result.records;
  }
  EXPECT_EQ(checksums[0], 150 * 6);  // total word occurrences
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(records[0], records[1]);
}

TEST(SparkWorkloadsTest, AccountGroupingAbortsAndStaysCorrect) {
  std::vector<SyntheticPost> posts = MakePosts(800, 120, 5, 29);
  double checksums[2];
  int aborts[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkEngine engine(SmallSpark(mode));
    SparkWorkloads workloads(engine);
    WorkloadResult result = workloads.RunAccountGrouping(posts, 4);
    checksums[static_cast<int>(mode)] = result.checksum;
    aborts[static_cast<int>(mode)] = engine.stats().aborts;
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(checksums[0], 800.0);  // every post grouped exactly once
  EXPECT_EQ(aborts[0], 0);         // baseline never aborts
  // Zipf activity makes heavy users exceed capacity 4: real aborts happen.
  EXPECT_GT(aborts[1], 0);
}

TEST(SparkWorkloadsTest, GerenukRunsTransformedCode) {
  SyntheticGraph graph = MakePowerLawGraph(100, 400, 31);
  SparkEngine engine(SmallSpark(EngineMode::kGerenuk));
  SparkWorkloads workloads(engine);
  workloads.RunPageRank(graph, 2);
  EXPECT_GT(engine.stats().transform.statements_transformed, 50);
  EXPECT_GT(engine.stats().fast_path_commits, 0);
  EXPECT_EQ(engine.stats().aborts, 0);
}

TEST(HadoopWorkloadsTest, AllJobsMatchAcrossModes) {
  std::vector<SyntheticPost> posts = MakePosts(500, 80, 6, 37);
  std::vector<std::string> lines = MakeTextLines(120, 8, 60, 41);
  struct Row {
    double checksum;
    int64_t records;
  };
  std::vector<Row> rows[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    HadoopEngine engine(SmallHadoop(mode));
    HadoopWorkloads workloads(engine);
    DatasetPtr post_input = workloads.MakePostInput(posts);
    DatasetPtr text_input = workloads.MakeTextInput(lines);
    for (const WorkloadResult& result :
         {workloads.RunIuf(post_input), workloads.RunUah(post_input),
          workloads.RunSpf(post_input), workloads.RunUed(post_input),
          workloads.RunCed(post_input), workloads.RunImc(text_input),
          workloads.RunTfc(text_input)}) {
      rows[static_cast<int>(mode)].push_back({result.checksum, result.records});
    }
  }
  ASSERT_EQ(rows[0].size(), 7u);
  for (size_t i = 0; i < rows[0].size(); ++i) {
    EXPECT_EQ(rows[0][i].checksum, rows[1][i].checksum) << "job " << i;
    EXPECT_EQ(rows[0][i].records, rows[1][i].records) << "job " << i;
  }
  // Sanity anchors: IUF counts all posts; IMC/TFC count all words.
  EXPECT_EQ(rows[0][0].checksum, 500.0);
  EXPECT_EQ(rows[0][5].checksum, 120.0 * 8);
  EXPECT_EQ(rows[0][6].checksum, 120.0 * 8);
}

TEST(DatagenTest, GraphShape) {
  SyntheticGraph graph = MakePowerLawGraph(1000, 5000, 43);
  EXPECT_EQ(graph.num_vertices, 1000);
  EXPECT_EQ(graph.num_edges(), 5000);
  // Skew: the most popular destination should receive far more than average.
  std::vector<int> in_degree(1000, 0);
  for (const auto& adjacency : graph.out_edges) {
    EXPECT_GE(adjacency.size(), 1u);
    for (int64_t dst : adjacency) {
      in_degree[static_cast<size_t>(dst)] += 1;
    }
  }
  int max_in = *std::max_element(in_degree.begin(), in_degree.end());
  EXPECT_GT(max_in, 50);  // vs average of 5
}

TEST(DatagenTest, PostsAreLongTailed) {
  std::vector<SyntheticPost> posts = MakePosts(2000, 200, 5, 47);
  std::vector<int> per_user(200, 0);
  for (const auto& post : posts) {
    ASSERT_LT(post.user_id, 200);
    per_user[static_cast<size_t>(post.user_id)] += 1;
  }
  int max_posts = *std::max_element(per_user.begin(), per_user.end());
  EXPECT_GT(max_posts, 40);  // heavy users exist (vs average of 10)
}

}  // namespace
}  // namespace gerenuk
