// Unit and property tests for the managed mini-runtime: klass layout,
// allocation, field/array access, write barriers, and both garbage
// collectors (mark-sweep and generational scavenge).
#include <gtest/gtest.h>

#include <vector>

#include "src/runtime/heap.h"
#include "src/runtime/klass.h"
#include "src/support/rng.h"

namespace gerenuk {
namespace {

TEST(KlassTest, FieldLayoutPacksLargestFirst) {
  KlassRegistry registry;
  const Klass* k = registry.DefineClass("Mixed", {
                                                     {"a", FieldKind::kI32, nullptr, 0},
                                                     {"b", FieldKind::kF64, nullptr, 0},
                                                     {"c", FieldKind::kI8, nullptr, 0},
                                                     {"d", FieldKind::kI32, nullptr, 0},
                                                 });
  // 8-byte field first (offset 16), then the two i32s (24, 28), then i8 (32).
  EXPECT_EQ(k->FindField("b")->offset, 16);
  EXPECT_EQ(k->FindField("a")->offset, 24);
  EXPECT_EQ(k->FindField("d")->offset, 28);
  EXPECT_EQ(k->FindField("c")->offset, 32);
  EXPECT_EQ(k->instance_size(), 40);  // 33 rounded to 8
}

TEST(KlassTest, RefOffsetsCollected) {
  KlassRegistry registry;
  const Klass* target = registry.DefineClass("Target", {});
  const Klass* k = registry.DefineClass("HasRefs", {
                                                       {"x", FieldKind::kI32, nullptr, 0},
                                                       {"r1", FieldKind::kRef, target, 0},
                                                       {"r2", FieldKind::kRef, target, 0},
                                                   });
  ASSERT_EQ(k->ref_offsets().size(), 2u);
  EXPECT_EQ(k->ref_offsets()[0], 16);
  EXPECT_EQ(k->ref_offsets()[1], 24);
}

TEST(KlassTest, EmptyClassIsHeaderOnly) {
  KlassRegistry registry;
  const Klass* k = registry.DefineClass("Empty", {});
  EXPECT_EQ(k->instance_size(), kObjectHeaderBytes);
}

TEST(KlassTest, ArrayLayout) {
  KlassRegistry registry;
  const Klass* d_array = registry.DefineArray(FieldKind::kF64);
  EXPECT_TRUE(d_array->is_array());
  EXPECT_EQ(d_array->name(), "f64[]");
  // Header (16) + length (4) + pad to 8 = elements at 24.
  EXPECT_EQ(d_array->elements_offset(), 24);
  EXPECT_EQ(d_array->ArraySize(3), 24 + 3 * 8);

  const Klass* b_array = registry.DefineArray(FieldKind::kI8);
  // Byte elements start right after the length.
  EXPECT_EQ(b_array->elements_offset(), 20);
  EXPECT_EQ(b_array->ArraySize(3), 24);  // 23 rounded up
}

TEST(KlassTest, ArrayDefinitionIsIdempotent) {
  KlassRegistry registry;
  const Klass* a = registry.DefineArray(FieldKind::kI32);
  const Klass* b = registry.DefineArray(FieldKind::kI32);
  EXPECT_EQ(a, b);
}

TEST(KlassTest, FindAndById) {
  KlassRegistry registry;
  const Klass* k = registry.DefineClass("Foo", {});
  EXPECT_EQ(registry.Find("Foo"), k);
  EXPECT_EQ(registry.Find("Bar"), nullptr);
  EXPECT_EQ(registry.ById(k->id()), k);
}

class HeapTest : public ::testing::TestWithParam<GcKind> {
 protected:
  HeapConfig Config(size_t capacity) {
    HeapConfig config;
    config.capacity_bytes = capacity;
    config.gc = GetParam();
    return config;
  }
};

TEST_P(HeapTest, AllocateAndAccessFields) {
  Heap heap(Config(1 << 20));
  const Klass* point = heap.klasses().DefineClass("Point", {
                                                               {"x", FieldKind::kF64, nullptr, 0},
                                                               {"y", FieldKind::kF64, nullptr, 0},
                                                               {"id", FieldKind::kI32, nullptr, 0},
                                                           });
  ObjRef obj = heap.AllocObject(point);
  ASSERT_NE(obj, kNullRef);
  heap.SetPrim<double>(obj, point->FindField("x")->offset, 1.5);
  heap.SetPrim<double>(obj, point->FindField("y")->offset, -2.5);
  heap.SetPrim<int32_t>(obj, point->FindField("id")->offset, 42);
  EXPECT_EQ(heap.GetPrim<double>(obj, point->FindField("x")->offset), 1.5);
  EXPECT_EQ(heap.GetPrim<double>(obj, point->FindField("y")->offset), -2.5);
  EXPECT_EQ(heap.GetPrim<int32_t>(obj, point->FindField("id")->offset), 42);
  EXPECT_EQ(heap.KlassOf(obj), point);
}

TEST_P(HeapTest, NewObjectFieldsAreZeroed) {
  Heap heap(Config(1 << 20));
  const Klass* target = heap.klasses().DefineClass("T", {});
  const Klass* k = heap.klasses().DefineClass("Z", {
                                                       {"v", FieldKind::kI64, nullptr, 0},
                                                       {"r", FieldKind::kRef, target, 0},
                                                   });
  ObjRef obj = heap.AllocObject(k);
  EXPECT_EQ(heap.GetPrim<int64_t>(obj, k->FindField("v")->offset), 0);
  EXPECT_EQ(heap.GetRef(obj, k->FindField("r")->offset), kNullRef);
}

TEST_P(HeapTest, ArrayAccessAndLength) {
  Heap heap(Config(1 << 20));
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kF64);
  ObjRef arr = heap.AllocArray(arr_k, 10);
  EXPECT_EQ(heap.ArrayLength(arr), 10);
  for (int i = 0; i < 10; ++i) {
    heap.ASet<double>(arr, i, i * 1.5);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(heap.AGet<double>(arr, i), i * 1.5);
  }
}

TEST_P(HeapTest, ZeroLengthArray) {
  Heap heap(Config(1 << 20));
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI32);
  ObjRef arr = heap.AllocArray(arr_k, 0);
  EXPECT_EQ(heap.ArrayLength(arr), 0);
}

TEST_P(HeapTest, BoundsCheckAborts) {
  Heap heap(Config(1 << 20));
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI32);
  ObjRef arr = heap.AllocArray(arr_k, 3);
  EXPECT_DEATH(heap.AGet<int32_t>(arr, 3), "out of bounds");
  EXPECT_DEATH(heap.AGet<int32_t>(arr, -1), "out of bounds");
}

TEST_P(HeapTest, GcReclaimsGarbage) {
  Heap heap(Config(1 << 20));
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  // Allocate far more garbage than the heap holds; without working GC this
  // would hit the OOM check.
  for (int i = 0; i < 10000; ++i) {
    heap.AllocArray(arr_k, 512);
  }
  EXPECT_GT(heap.stats().minor_gcs + heap.stats().major_gcs, 0);
}

TEST_P(HeapTest, GcPreservesRootedObjectGraph) {
  Heap heap(Config(1 << 20));
  const Klass* node = heap.klasses().DefineClass("Node", {
                                                             {"value", FieldKind::kI64, nullptr, 0},
                                                             {"next", FieldKind::kRef, nullptr, 0},
                                                         });
  const Klass* garbage_k = heap.klasses().DefineArray(FieldKind::kI8);

  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);

  // Build a 100-node linked list rooted at roots[0], interleaved with garbage.
  ObjRef head = heap.AllocObject(node);
  roots.push_back(head);
  heap.SetPrim<int64_t>(roots[0], node->FindField("value")->offset, 0);
  for (int i = 1; i < 100; ++i) {
    ObjRef next = heap.AllocObject(node);
    roots.push_back(next);  // temporarily root it to survive the SetRef below
    heap.SetPrim<int64_t>(next, node->FindField("value")->offset, i);
    // Find tail (the previous node) and link it.
    heap.SetRef(roots[roots.size() - 2], node->FindField("next")->offset, next);
    heap.AllocArray(garbage_k, 2048);  // garbage pressure
  }
  // Drop all roots except the head; the list must stay reachable through it.
  roots.resize(1);
  for (int i = 0; i < 2000; ++i) {
    heap.AllocArray(garbage_k, 2048);
  }
  heap.CollectNow();

  ObjRef cur = roots[0];
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(cur, kNullRef) << "list truncated at node " << i;
    EXPECT_EQ(heap.GetPrim<int64_t>(cur, node->FindField("value")->offset), i);
    cur = heap.GetRef(cur, node->FindField("next")->offset);
  }
  EXPECT_EQ(cur, kNullRef);
  heap.RemoveRootVector(&roots);
}

TEST_P(HeapTest, GcPreservesRefArrays) {
  Heap heap(Config(2 << 20));
  const Klass* box = heap.klasses().DefineClass("Box", {{"v", FieldKind::kI32, nullptr, 0}});
  const Klass* box_arr = heap.klasses().DefineArray(FieldKind::kRef, box);
  const Klass* garbage_k = heap.klasses().DefineArray(FieldKind::kI8);

  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  roots.push_back(heap.AllocArray(box_arr, 50));
  for (int i = 0; i < 50; ++i) {
    ObjRef b = heap.AllocObject(box);
    heap.SetPrim<int32_t>(b, box->FindField("v")->offset, i * 7);
    heap.ASetRef(roots[0], i, b);
  }
  for (int i = 0; i < 3000; ++i) {
    heap.AllocArray(garbage_k, 1024);
  }
  heap.CollectNow();
  for (int i = 0; i < 50; ++i) {
    ObjRef b = heap.AGetRef(roots[0], i);
    ASSERT_NE(b, kNullRef);
    EXPECT_EQ(heap.GetPrim<int32_t>(b, box->FindField("v")->offset), i * 7);
  }
  heap.RemoveRootVector(&roots);
}

TEST_P(HeapTest, RootSlotUpdatedOnMove) {
  Heap heap(Config(1 << 20));
  const Klass* box = heap.klasses().DefineClass("Box", {{"v", FieldKind::kI32, nullptr, 0}});
  const Klass* garbage_k = heap.klasses().DefineArray(FieldKind::kI8);
  ObjRef slot = heap.AllocObject(box);
  heap.SetPrim<int32_t>(slot, box->FindField("v")->offset, 99);
  heap.AddRootSlot(&slot);
  for (int i = 0; i < 5000; ++i) {
    heap.AllocArray(garbage_k, 1024);
  }
  heap.CollectNow();
  EXPECT_EQ(heap.GetPrim<int32_t>(slot, box->FindField("v")->offset), 99);
  heap.RemoveRootSlot(&slot);
}

TEST_P(HeapTest, UsedBytesAndPeakTrack) {
  Heap heap(Config(4 << 20));
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  int64_t before = heap.used_bytes();
  roots.push_back(heap.AllocArray(arr_k, 100000));
  EXPECT_GE(heap.used_bytes(), before + 100000);
  EXPECT_GE(heap.peak_used_bytes(), heap.used_bytes());
  heap.RemoveRootVector(&roots);
}

TEST_P(HeapTest, StatsCountAllocations) {
  Heap heap(Config(1 << 20));
  const Klass* box = heap.klasses().DefineClass("Box", {{"v", FieldKind::kI32, nullptr, 0}});
  heap.ResetStats();
  for (int i = 0; i < 10; ++i) {
    heap.AllocObject(box);
  }
  EXPECT_EQ(heap.stats().allocated_objects, 10);
  EXPECT_EQ(heap.stats().allocated_bytes, 10 * box->instance_size());
}

// Random object-soup stress: build random graphs, mutate references, drop
// roots, and verify checksums survive collections. Catches barrier and
// forwarding bugs that targeted tests miss.
TEST_P(HeapTest, RandomGraphStress) {
  Heap heap(Config(2 << 20));
  const Klass* node = heap.klasses().DefineClass("N", {
                                                          {"tag", FieldKind::kI64, nullptr, 0},
                                                          {"a", FieldKind::kRef, nullptr, 0},
                                                          {"b", FieldKind::kRef, nullptr, 0},
                                                      });
  int tag_off = node->FindField("tag")->offset;
  int a_off = node->FindField("a")->offset;
  int b_off = node->FindField("b")->offset;

  Rng rng(GetParam() == GcKind::kMarkSweep ? 101 : 202);
  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  std::vector<int64_t> tags;

  for (int round = 0; round < 20; ++round) {
    // Grow: add nodes referencing random existing roots.
    for (int i = 0; i < 200; ++i) {
      ObjRef obj = heap.AllocObject(node);
      roots.push_back(obj);
      int64_t tag = static_cast<int64_t>(rng.NextU64());
      tags.push_back(tag);
      heap.SetPrim<int64_t>(obj, tag_off, tag);
      if (!roots.empty()) {
        heap.SetRef(obj, a_off, roots[rng.NextBounded(roots.size())]);
        heap.SetRef(obj, b_off, roots[rng.NextBounded(roots.size())]);
      }
    }
    // Shrink: drop a random prefix... keep indexes aligned with tags.
    size_t keep = roots.size() / 2;
    roots.erase(roots.begin(), roots.begin() + (roots.size() - keep));
    tags.erase(tags.begin(), tags.begin() + (tags.size() - keep));
    heap.CollectNow();
    for (size_t i = 0; i < roots.size(); ++i) {
      ASSERT_EQ(heap.GetPrim<int64_t>(roots[i], tag_off), tags[i]) << "round " << round;
    }
  }
  heap.RemoveRootVector(&roots);
}

INSTANTIATE_TEST_SUITE_P(AllCollectors, HeapTest,
                         ::testing::Values(GcKind::kMarkSweep, GcKind::kGenerational),
                         [](const ::testing::TestParamInfo<GcKind>& info) {
                           return info.param == GcKind::kMarkSweep ? "MarkSweep" : "Generational";
                         });

TEST(GenerationalHeapTest, MinorGcsHappenBeforeMajor) {
  HeapConfig config;
  config.capacity_bytes = 1 << 20;
  config.gc = GcKind::kGenerational;
  Heap heap(config);
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  for (int i = 0; i < 2000; ++i) {
    heap.AllocArray(arr_k, 512);
  }
  EXPECT_GT(heap.stats().minor_gcs, 0);
}

TEST(GenerationalHeapTest, WriteBarrierCountsStores) {
  HeapConfig config;
  config.capacity_bytes = 1 << 20;
  config.gc = GcKind::kGenerational;
  Heap heap(config);
  const Klass* box = heap.klasses().DefineClass("Box", {{"r", FieldKind::kRef, nullptr, 0}});
  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  roots.push_back(heap.AllocObject(box));
  roots.push_back(heap.AllocObject(box));
  heap.ResetStats();
  heap.SetRef(roots[0], box->FindField("r")->offset, roots[1]);
  EXPECT_EQ(heap.stats().barrier_stores, 1);
  heap.RemoveRootVector(&roots);
}

TEST(GenerationalHeapTest, OldToYoungReferenceSurvivesMinorGc) {
  HeapConfig config;
  config.capacity_bytes = 2 << 20;
  config.gc = GcKind::kGenerational;
  config.promotion_age = 1;  // promote on first survival
  Heap heap(config);
  const Klass* box = heap.klasses().DefineClass("Box", {
                                                           {"v", FieldKind::kI32, nullptr, 0},
                                                           {"r", FieldKind::kRef, nullptr, 0},
                                                       });
  const Klass* garbage_k = heap.klasses().DefineArray(FieldKind::kI8);
  int v_off = box->FindField("v")->offset;
  int r_off = box->FindField("r")->offset;

  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  roots.push_back(heap.AllocObject(box));
  // Force the root object into the old generation.
  heap.CollectNow();
  // Young object referenced ONLY from the old object: the write barrier's
  // remembered set is the only thing keeping it alive across a minor GC.
  ObjRef young = heap.AllocObject(box);
  heap.SetPrim<int32_t>(young, v_off, 1234);
  heap.SetRef(roots[0], r_off, young);
  for (int i = 0; i < 3000; ++i) {
    heap.AllocArray(garbage_k, 512);
  }
  ObjRef child = heap.GetRef(roots[0], r_off);
  ASSERT_NE(child, kNullRef);
  EXPECT_EQ(heap.GetPrim<int32_t>(child, v_off), 1234);
  heap.RemoveRootVector(&roots);
}

TEST(GenerationalHeapTest, HugeAllocationGoesToOldGen) {
  HeapConfig config;
  config.capacity_bytes = 8 << 20;
  config.gc = GcKind::kGenerational;
  Heap heap(config);
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  int64_t minor_before = heap.stats().minor_gcs;
  roots.push_back(heap.AllocArray(arr_k, 2 << 20));  // bigger than eden/4
  EXPECT_EQ(heap.stats().minor_gcs, minor_before);
  EXPECT_EQ(heap.ArrayLength(roots[0]), 2 << 20);
  heap.RemoveRootVector(&roots);
}

TEST(GenerationalHeapTest, GcTimeIsChargedToPhase) {
  HeapConfig config;
  config.capacity_bytes = 1 << 20;
  config.gc = GcKind::kGenerational;
  Heap heap(config);
  PhaseTimes times;
  heap.set_phase_times(&times);
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  for (int i = 0; i < 5000; ++i) {
    heap.AllocArray(arr_k, 512);
  }
  EXPECT_GT(times.Get(Phase::kGc), 0);
  EXPECT_EQ(times.Get(Phase::kGc), heap.stats().gc_nanos);
}

TEST(MarkSweepHeapTest, FreeListReuse) {
  HeapConfig config;
  config.capacity_bytes = 1 << 20;
  config.gc = GcKind::kMarkSweep;
  Heap heap(config);
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  // Fill the heap with garbage, collect, then allocate again: the second
  // wave must be served from the free list without OOM.
  for (int i = 0; i < 3000; ++i) {
    heap.AllocArray(arr_k, 1024);
  }
  int64_t major_gcs = heap.stats().major_gcs;
  EXPECT_GT(major_gcs, 0);
  for (int i = 0; i < 3000; ++i) {
    heap.AllocArray(arr_k, 1024);
  }
  SUCCEED();
}

}  // namespace
}  // namespace gerenuk
