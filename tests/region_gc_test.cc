// Tests for the Yak-like region collector (GcKind::kRegion): epoch-scoped
// allocation, whole-region reclamation, and evacuation of escaping objects
// recorded by the inter-region write barrier.
#include <gtest/gtest.h>

#include <vector>

#include "src/runtime/heap.h"
#include "src/runtime/roots.h"

namespace gerenuk {
namespace {

HeapConfig RegionConfig(size_t capacity = 8 << 20) {
  HeapConfig config;
  config.capacity_bytes = capacity;
  config.gc = GcKind::kRegion;
  return config;
}

TEST(RegionGcTest, EpochAllocationsAreReclaimedWholesale) {
  Heap heap(RegionConfig());
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  int64_t before = heap.used_bytes();
  heap.EpochStart();
  for (int i = 0; i < 1000; ++i) {
    heap.AllocArray(arr_k, 1024);
  }
  EXPECT_GT(heap.used_bytes(), before + 1000 * 1024);
  heap.EpochEnd();
  EXPECT_LE(heap.used_bytes(), before + 8);  // region freed without scanning
}

TEST(RegionGcTest, EscapingObjectSurvivesEpochEnd) {
  Heap heap(RegionConfig());
  const Klass* box = heap.klasses().DefineClass("Box", {
                                                           {"v", FieldKind::kI64, nullptr, 0},
                                                           {"r", FieldKind::kRef, nullptr, 0},
                                                       });
  int v_off = box->FindField("v")->offset;
  int r_off = box->FindField("r")->offset;

  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  roots.push_back(heap.AllocObject(box));  // control object outside epochs

  heap.EpochStart();
  ObjRef escapee = heap.AllocObject(box);
  heap.SetPrim<int64_t>(escapee, v_off, 777);
  // Escape: a control object references the region object; the barrier
  // records the slot.
  heap.SetRef(roots[0], r_off, escapee);
  heap.EpochEnd();

  ObjRef survivor = heap.GetRef(roots[0], r_off);
  ASSERT_NE(survivor, kNullRef);
  EXPECT_EQ(heap.GetPrim<int64_t>(survivor, v_off), 777);
  heap.RemoveRootVector(&roots);
}

TEST(RegionGcTest, EscapeIsTransitive) {
  Heap heap(RegionConfig());
  const Klass* node = heap.klasses().DefineClass("Node", {
                                                             {"v", FieldKind::kI64, nullptr, 0},
                                                             {"next", FieldKind::kRef, nullptr, 0},
                                                         });
  int v_off = node->FindField("v")->offset;
  int next_off = node->FindField("next")->offset;

  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  roots.push_back(heap.AllocObject(node));

  heap.EpochStart();
  {
    RootScope scope(heap);
    // Chain of three region objects; only the head is stored outside.
    size_t c = scope.Push(heap.AllocObject(node));
    heap.SetPrim<int64_t>(scope.Get(c), v_off, 3);
    size_t b = scope.Push(heap.AllocObject(node));
    heap.SetPrim<int64_t>(scope.Get(b), v_off, 2);
    heap.SetRef(scope.Get(b), next_off, scope.Get(c));
    size_t a = scope.Push(heap.AllocObject(node));
    heap.SetPrim<int64_t>(scope.Get(a), v_off, 1);
    heap.SetRef(scope.Get(a), next_off, scope.Get(b));
    heap.SetRef(roots[0], next_off, scope.Get(a));
  }
  heap.EpochEnd();

  ObjRef cur = heap.GetRef(roots[0], next_off);
  for (int expected = 1; expected <= 3; ++expected) {
    ASSERT_NE(cur, kNullRef);
    EXPECT_EQ(heap.GetPrim<int64_t>(cur, v_off), expected);
    cur = heap.GetRef(cur, next_off);
  }
  EXPECT_EQ(cur, kNullRef);
  heap.RemoveRootVector(&roots);
}

TEST(RegionGcTest, RootedRegionObjectIsEvacuated) {
  Heap heap(RegionConfig());
  const Klass* box = heap.klasses().DefineClass("Box", {{"v", FieldKind::kI64, nullptr, 0}});
  int v_off = box->FindField("v")->offset;
  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  heap.EpochStart();
  roots.push_back(heap.AllocObject(box));
  heap.SetPrim<int64_t>(roots[0], v_off, 42);
  heap.EpochEnd();
  // The root was redirected to the evacuated copy.
  EXPECT_EQ(heap.GetPrim<int64_t>(roots[0], v_off), 42);
  heap.RemoveRootVector(&roots);
}

TEST(RegionGcTest, ManyEpochsAvoidCollectorPressure) {
  Heap heap(RegionConfig(4 << 20));
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  for (int epoch = 0; epoch < 50; ++epoch) {
    heap.EpochStart();
    for (int i = 0; i < 500; ++i) {
      heap.AllocArray(arr_k, 512);
    }
    heap.EpochEnd();
  }
  // Epoch frees keep the mark-sweep collector idle.
  EXPECT_EQ(heap.stats().major_gcs, 0);
  EXPECT_EQ(heap.stats().minor_gcs, 50);  // one per epoch end
}

TEST(RegionGcTest, MidEpochMarkSweepKeepsEscapeesAlive) {
  // The epoch allocates more garbage than the control space holds, forcing a
  // mark-sweep during the epoch; the remembered-set flush must preserve the
  // escaping object.
  Heap heap(RegionConfig(2 << 20));
  const Klass* box = heap.klasses().DefineClass("Box", {
                                                           {"v", FieldKind::kI64, nullptr, 0},
                                                           {"r", FieldKind::kRef, nullptr, 0},
                                                       });
  const Klass* arr_k = heap.klasses().DefineArray(FieldKind::kI8);
  int v_off = box->FindField("v")->offset;
  int r_off = box->FindField("r")->offset;
  std::vector<ObjRef> roots;
  heap.AddRootVector(&roots);
  roots.push_back(heap.AllocObject(box));

  heap.EpochStart();
  ObjRef escapee = heap.AllocObject(box);
  heap.SetPrim<int64_t>(escapee, v_off, 555);
  heap.SetRef(roots[0], r_off, escapee);
  // Control-space churn forcing mark-sweep inside the epoch.
  for (int i = 0; i < 3000; ++i) {
    heap.AllocArray(arr_k, 700);  // region overflow spills here too
  }
  heap.EpochEnd();

  ObjRef survivor = heap.GetRef(roots[0], r_off);
  ASSERT_NE(survivor, kNullRef);
  EXPECT_EQ(heap.GetPrim<int64_t>(survivor, v_off), 555);
  heap.RemoveRootVector(&roots);
}

TEST(RegionGcTest, EpochsRequireRegionKind) {
  HeapConfig config;
  config.capacity_bytes = 1 << 20;
  config.gc = GcKind::kGenerational;
  Heap heap(config);
  EXPECT_DEATH(heap.EpochStart(), "require GcKind::kRegion");
}

}  // namespace
}  // namespace gerenuk
