// Deterministic chaos campaigns against the engine service (ctest -L chaos).
//
// Every campaign derives from one seed; a failure report prints the seed, and
// `chaos_test --chaos_seed=N` replays the exact schedule. `--quick` shrinks
// the campaigns for the perf-smoke pass.
#include "src/service/chaos.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "tests/pair_service.h"

namespace gerenuk {
namespace {

uint64_t g_chaos_seed = 20260808;
bool g_quick = false;

// The Pair workload as a chaos target: recovery needs a retry budget, and
// byte quotas need per-job size estimates.
ChaosWorkload PairChaosWorkload() {
  ChaosWorkload workload;
  workload.num_kinds = kJobKinds;
  workload.service = SmallService(/*num_engines=*/2);
  // Injected single-attempt faults must recover byte-identically, so give
  // tasks a retry budget beyond the first attempt.
  workload.service.engine.fault.max_task_attempts = 3;
  workload.make_job = [](int kind) {
    JobSpec spec = KindJob(kind);
    spec.input_bytes = kKindCounts[kind] * 16;  // rough record-size estimate
    return spec;
  };
  workload.expected = SequentialExpected();
  return workload;
}

TEST(ChaosScheduleTest, SameSeedYieldsTheSameSchedule) {
  ChaosConfig config;
  config.seed = g_chaos_seed;
  config.tenants = 4;
  config.jobs_per_tenant = 16;
  const ChaosSchedule a = ChaosSchedule::Generate(config, kJobKinds);
  const ChaosSchedule b = ChaosSchedule::Generate(config, kJobKinds);
  ASSERT_EQ(a.jobs.size(), 64u);
  EXPECT_TRUE(a.jobs == b.jobs) << "schedule must be a pure function of the seed";

  config.seed = g_chaos_seed + 1;
  const ChaosSchedule c = ChaosSchedule::Generate(config, kJobKinds);
  EXPECT_FALSE(a.jobs == c.jobs) << "a different seed must perturb the schedule";
}

TEST(ChaosScheduleTest, FaultMixLandsNearTheConfiguredRates) {
  ChaosConfig config;
  config.seed = g_chaos_seed;
  config.tenants = 8;
  config.jobs_per_tenant = 250;  // schedule generation only — no jobs run
  const ChaosSchedule schedule = ChaosSchedule::Generate(config, kJobKinds);
  int64_t faults = 0, cancels = 0, deadlines = 0;
  for (const ChaosJobPlan& plan : schedule.jobs) {
    faults += plan.inject_exception ? 1 : 0;
    cancels += plan.cancel ? 1 : 0;
    deadlines += plan.deadline_ms > 0 ? 1 : 0;
  }
  const double n = static_cast<double>(schedule.jobs.size());
  EXPECT_NEAR(faults / n, config.p_task_fault, 0.05);
  EXPECT_NEAR(cancels / n, config.p_cancel, 0.05);
  EXPECT_NEAR(deadlines / n, config.p_deadline, 0.05);
}

// The fast campaign: small enough for the perf-smoke label, still covering
// every fault class.
TEST(ChaosCampaignTest, QuickCampaignHoldsAllInvariants) {
  ChaosConfig config;
  config.seed = g_chaos_seed;
  config.tenants = g_quick ? 2 : 4;
  config.jobs_per_tenant = g_quick ? 6 : 10;
  const ChaosReport report = RunChaosCampaign(config, PairChaosWorkload());
  std::printf("quick campaign (seed %llu): %s\n",
              static_cast<unsigned long long>(config.seed), report.Summary().c_str());
  EXPECT_TRUE(report.ok()) << "seed=" << config.seed << "\n" << report.Summary();
}

// The acceptance campaign from the issue: >= 8 tenants x >= 200 jobs, every
// handle terminal, kOk outputs byte-identical to the fault-free reference,
// and at least one full breaker cycle.
TEST(ChaosCampaignTest, AcceptanceCampaignEightTenantsTwoHundredJobs) {
  if (g_quick) {
    GTEST_SKIP() << "--quick runs the small campaign only";
  }
  ChaosConfig config;
  config.seed = g_chaos_seed;
  config.tenants = 8;
  config.jobs_per_tenant = 25;
  const ChaosReport report = RunChaosCampaign(config, PairChaosWorkload());
  std::printf("acceptance campaign (seed %llu): %s\n",
              static_cast<unsigned long long>(config.seed), report.Summary().c_str());
  ASSERT_EQ(report.jobs, 200);
  EXPECT_TRUE(report.ok()) << "seed=" << config.seed << "\n" << report.Summary();
  EXPECT_GE(report.breaker.closes, 1);
  EXPECT_GT(report.succeeded, 0);
}

}  // namespace
}  // namespace gerenuk

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--chaos_seed=", 13) == 0) {
      gerenuk::g_chaos_seed = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      gerenuk::g_quick = true;
    }
  }
  return RUN_ALL_TESTS();
}
