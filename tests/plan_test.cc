// Differential proof for the plan compiler (ctest -L plans): the
// direct-threaded PlanExecutor must be observationally identical to the
// tree-walking Interpreter — same checksums on every benchmark workload,
// byte-identical stage output at every worker count, and identical abort
// behavior (a compiled ABORT or forced fault lands in the same slow-path
// re-execution machinery and reproduces the same bytes).
#include <gtest/gtest.h>

#include "src/analysis/layout.h"
#include "src/workloads/hadoop_workloads.h"
#include "src/workloads/spark_workloads.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

// The three fast-path runners every differential sweeps: the tree-walking
// Interpreter, the scalar direct-threaded plan, and the vectorized plan.
// The vec runner uses a non-power-of-two batch size so most loops end in a
// partial tail strip (the shape most likely to expose a commit bug).
enum class Runner { kInterpreter, kScalarPlan, kVecPlan };
constexpr Runner kRunners[] = {Runner::kInterpreter, Runner::kScalarPlan, Runner::kVecPlan};

const char* RunnerName(Runner r) {
  switch (r) {
    case Runner::kInterpreter: return "interpreter";
    case Runner::kScalarPlan: return "scalar-plan";
    default: return "vec-plan";
  }
}

void ApplyRunner(ExecutionOptions& execution, Runner r) {
  execution.use_plan_compiler = r != Runner::kInterpreter;
  execution.vectorize = r == Runner::kVecPlan;
  if (r == Runner::kVecPlan) {
    execution.vector_batch_size = 13;  // force non-power-of-two tail batches
  }
}

EngineConfig PlanSpark(Runner runner, int workers = 1) {
  EngineConfig config;
  config.execution.mode = EngineMode::kGerenuk;
  config.execution.heap_bytes = 64u << 20;
  config.execution.num_partitions = 3;
  config.execution.num_workers = workers;
  ApplyRunner(config.execution, runner);
  return config;
}

HadoopConfig PlanHadoop(Runner runner, int workers = 1) {
  HadoopConfig config;
  config.engine.execution.mode = EngineMode::kGerenuk;
  config.engine.execution.heap_bytes = 64u << 20;
  config.engine.execution.num_partitions = 3;
  config.engine.execution.num_workers = workers;
  config.num_reducers = 2;
  config.sort_buffer_bytes = 64 << 10;
  ApplyRunner(config.engine.execution, runner);
  return config;
}

// All eight Spark benchmark programs, interpreter vs scalar plan vs
// vectorized plan, at 1/2/8 workers. Every run is kGerenuk mode with
// identical partitioning, so floating-point evaluation order is identical
// and checksums must match exactly across all nine configurations.
TEST(PlanDifferentialTest, SparkWorkloadChecksumsMatchInterpreter) {
  SyntheticGraph graph = MakePowerLawGraph(250, 1300, 7);
  SyntheticPoints points = MakeClusteredPoints(300, 4, 3, 11);
  SyntheticLabeledPoints labeled = MakeLabeledPoints(250, 5, 13);
  std::vector<std::string> lines = MakeTextLines(120, 6, 80, 23);
  std::vector<SyntheticPost> posts = MakePosts(600, 100, 5, 29);

  struct Row {
    double checksum;
    int64_t records;
  };
  std::vector<Row> reference;
  for (Runner runner : kRunners) {
    for (int workers : kWorkerCounts) {
      SparkEngine engine(PlanSpark(runner, workers));
      SparkWorkloads workloads(engine);
      std::vector<Row> rows;
      for (const WorkloadResult& result :
           {workloads.RunPageRank(graph, 3), workloads.RunConnectedComponents(graph, 4),
            workloads.RunKMeans(points, 3, 3),
            workloads.RunLogisticRegression(labeled, 3, 0.5),
            workloads.RunChiSquareSelector(labeled),
            workloads.RunGradientBoosting(labeled, 3, 0.5), workloads.RunWordCount(lines),
            workloads.RunAccountGrouping(posts, 64)}) {
        rows.push_back({result.checksum, result.records});
      }
      // The toggle must actually change the execution engine.
      if (runner == Runner::kInterpreter) {
        EXPECT_EQ(engine.stats().plans_compiled, 0);
      } else {
        EXPECT_GT(engine.stats().plans_compiled, 0);
      }
      ASSERT_EQ(rows.size(), 8u);
      if (reference.empty()) {
        reference = rows;
        continue;
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].checksum, reference[i].checksum)
            << "workload " << i << " runner=" << RunnerName(runner)
            << " workers=" << workers;
        EXPECT_EQ(rows[i].records, reference[i].records)
            << "workload " << i << " runner=" << RunnerName(runner)
            << " workers=" << workers;
      }
    }
  }
}

// All seven Hadoop jobs, interpreter vs scalar plan vs vectorized plan, at
// 1/2/8 workers.
TEST(PlanDifferentialTest, HadoopWorkloadChecksumsMatchInterpreter) {
  std::vector<SyntheticPost> posts = MakePosts(400, 70, 6, 37);
  std::vector<std::string> lines = MakeTextLines(100, 8, 50, 41);
  struct Row {
    double checksum;
    int64_t records;
  };
  std::vector<Row> reference;
  for (Runner runner : kRunners) {
    for (int workers : kWorkerCounts) {
      HadoopEngine engine(PlanHadoop(runner, workers));
      HadoopWorkloads workloads(engine);
      DatasetPtr post_input = workloads.MakePostInput(posts);
      DatasetPtr text_input = workloads.MakeTextInput(lines);
      std::vector<Row> rows;
      for (const WorkloadResult& result :
           {workloads.RunIuf(post_input), workloads.RunUah(post_input),
            workloads.RunSpf(post_input), workloads.RunUed(post_input),
            workloads.RunCed(post_input), workloads.RunImc(text_input),
            workloads.RunTfc(text_input)}) {
        rows.push_back({result.checksum, result.records});
      }
      if (runner != Runner::kInterpreter) {
        EXPECT_GT(engine.stats().plans_compiled, 0);
      }
      ASSERT_EQ(rows.size(), 7u);
      if (reference.empty()) {
        reference = rows;
        continue;
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].checksum, reference[i].checksum)
            << "job " << i << " runner=" << RunnerName(runner) << " workers=" << workers;
        EXPECT_EQ(rows[i].records, reference[i].records)
            << "job " << i << " runner=" << RunnerName(runner) << " workers=" << workers;
      }
    }
  }
}

// Narrow-stage output bytes: one reference dump (interpreter, 1 worker),
// then every (worker count, runner) combination must reproduce it.
TEST(PlanDifferentialTest, StageBytesIdenticalAcrossWorkersAndRunners) {
  std::vector<uint8_t> reference;
  for (Runner runner : kRunners) {
    for (int workers : kWorkerCounts) {
      EngineConfig config = SparkWith(workers);
      ApplyRunner(config.execution, runner);
      SparkJob job(config);
      DatasetPtr out = job.engine.RunStage(job.MakeInput(800), job.udfs,
                                           {NarrowOp::Map(job.double_value, job.pair)});
      std::vector<uint8_t> bytes = DatasetBytes(out);
      ASSERT_FALSE(bytes.empty());
      if (reference.empty()) {
        reference = bytes;
      } else {
        EXPECT_EQ(bytes, reference)
            << "runner=" << RunnerName(runner) << " workers=" << workers;
      }
    }
  }
}

// Shuffles run key-extraction plans inside the stage runner (extra_plans)
// and reuse the per-task scratch key; the reduce fold runs through its own
// plan. Bytes must still be identical everywhere.
TEST(PlanDifferentialTest, ReduceByKeyBytesIdenticalAcrossWorkersAndRunners) {
  std::vector<uint8_t> reference;
  for (Runner runner : kRunners) {
    for (int workers : kWorkerCounts) {
      EngineConfig config = SparkWith(workers);
      ApplyRunner(config.execution, runner);
      SparkJob job(config);
      DatasetPtr out = job.engine.ReduceByKey(job.MakeInput(1000), job.udfs, {},
                                              KeySpec{job.get_key, false}, job.sum_values);
      EXPECT_EQ(out->TotalRecords(), 10);
      std::vector<uint8_t> bytes = DatasetBytes(out);
      if (reference.empty()) {
        reference = bytes;
      } else {
        EXPECT_EQ(bytes, reference)
            << "runner=" << RunnerName(runner) << " workers=" << workers;
      }
      EXPECT_EQ(job.engine.stats().aborts, 0);
    }
  }
}

// Forced aborts (fault plan, mid-record): the compiled fast path must
// abandon the task at the same point, discard its buffered emits, and the
// slow-path re-execution must reproduce the clean bytes — at every worker
// count, for every runner (the vec runner's small odd batch means the abort
// lands while batch strip state is live).
TEST(PlanDifferentialTest, ForcedAbortsMatchAcrossRunners) {
  std::vector<uint8_t> clean;
  {
    SparkJob job(SparkWith(1));
    DatasetPtr out = job.engine.RunStage(job.MakeInput(600), job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    clean = DatasetBytes(out);
  }
  for (Runner runner : kRunners) {
    for (int workers : kWorkerCounts) {
      EngineConfig config = SparkWith(workers);
      ApplyRunner(config.execution, runner);
      SparkJob job(config);
      DatasetPtr in = job.MakeInput(600);
      // One abort late in a task, one mid-record (record 7 of task 2).
      job.engine.ForceAborts(1);
      job.engine.fault_plan().AbortTask(job.engine.next_task_ordinal() + 2, 7);
      DatasetPtr out = job.engine.RunStage(in, job.udfs,
                                           {NarrowOp::Map(job.double_value, job.pair)});
      EXPECT_EQ(job.engine.stats().aborts, 2) << "runner=" << RunnerName(runner);
      EXPECT_EQ(DatasetBytes(out), clean)
          << "runner=" << RunnerName(runner) << " workers=" << workers;
    }
  }
}

// Real (not fault-injected) aborts: AccountGrouping with a tiny capacity
// trips the resize violation inside compiled code. The compiled ABORT must
// fire on exactly the same tasks as the interpreter's, and the slow path
// must still produce the correct grouping.
TEST(PlanDifferentialTest, RealAbortsMatchAcrossRunners) {
  std::vector<SyntheticPost> posts = MakePosts(700, 110, 5, 29);
  double checksums[3];
  int aborts[3];
  int idx = 0;
  for (Runner runner : kRunners) {
    SparkEngine engine(PlanSpark(runner));
    SparkWorkloads workloads(engine);
    WorkloadResult result = workloads.RunAccountGrouping(posts, 4);
    checksums[idx] = result.checksum;
    aborts[idx] = engine.stats().aborts;
    ++idx;
  }
  EXPECT_EQ(checksums[0], 700.0);  // every post grouped exactly once
  EXPECT_GT(aborts[0], 0);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(checksums[i], checksums[0]) << RunnerName(kRunners[i]);
    EXPECT_EQ(aborts[i], aborts[0]) << RunnerName(kRunners[i]);
  }
}

// Satellite 1's observable: string-keyed shuffles reuse the per-task
// scratch key buffer instead of allocating per record.
TEST(PlanDifferentialTest, StringShufflesReuseScratchKeys) {
  std::vector<std::string> lines = MakeTextLines(100, 6, 60, 23);
  SparkEngine engine(PlanSpark(Runner::kVecPlan));
  SparkWorkloads workloads(engine);
  WorkloadResult result = workloads.RunWordCount(lines);
  EXPECT_EQ(result.checksum, 100.0 * 6);
  EXPECT_GT(engine.stats().key_allocs_saved, 0);
}

// ExprPool::FoldConstants agreement: on every workload schema (all Spark
// and Hadoop top-level types), any offset expression the fold pass declares
// constant must evaluate — via the unfolded reference Eval — to the folded
// value no matter what bytes the record contains.
TEST(ExprFoldTest, FoldedConstantsAgreeWithEvalOnAllWorkloadSchemas) {
  int total_folded = 0;
  auto check_pool = [&total_folded](const DataStructAnalyzer& engine_layouts) {
    ExprPool pool;
    DataStructAnalyzer analyzer(pool);
    for (const Klass* top : engine_layouts.top_types()) {
      std::string error;
      ASSERT_TRUE(analyzer.AnalyzeTopLevel(top, &error)) << error;
    }
    ASSERT_GT(pool.size(), 0u);
    pool.FoldConstants();
    for (int32_t fake_len : {0, 3, 7777}) {
      auto read = [fake_len](int64_t) { return fake_len; };
      for (int id = 0; id < static_cast<int>(pool.size()); ++id) {
        int64_t folded = 0;
        if (pool.FoldedConstant(id, &folded)) {
          EXPECT_EQ(folded, pool.Eval(id, read))
              << "expr " << id << " (" << pool.ToString(id) << ") with lengths "
              << fake_len;
          total_folded += 1;
        }
      }
    }
  };
  {
    SparkEngine engine(PlanSpark(Runner::kVecPlan));
    SparkWorkloads workloads(engine);
    check_pool(engine.layouts());
  }
  {
    HadoopEngine engine(PlanHadoop(Runner::kVecPlan));
    HadoopWorkloads workloads(engine);
    check_pool(engine.layouts());
  }
  // Fixed-size records exist in every schema, so folding must have fired.
  EXPECT_GT(total_folded, 0);
}

// Growing the pool after a fold pass must stay conservative: unfolded ids
// report false until the next pass, then fold correctly.
TEST(ExprFoldTest, FoldIsIdempotentAndConservativeForNewExprs) {
  ExprPool pool;
  int a = pool.AddConstant(12);
  pool.FoldConstants();
  int64_t v = 0;
  ASSERT_TRUE(pool.FoldedConstant(a, &v));
  EXPECT_EQ(v, 12);

  SizeExpr sym;
  sym.constant = 8;
  sym.terms.push_back({4, a});  // 8 + 4 * lengthAt(expr a)
  int b = pool.Add(sym);
  SizeExpr zero_scale;
  zero_scale.constant = 5;
  zero_scale.terms.push_back({0, b});  // value-independent despite the term
  int c = pool.Add(zero_scale);

  EXPECT_FALSE(pool.FoldedConstant(b, &v));
  EXPECT_FALSE(pool.FoldedConstant(c, &v));  // added after the pass
  pool.FoldConstants();
  pool.FoldConstants();  // idempotent
  EXPECT_FALSE(pool.FoldedConstant(b, &v));  // genuinely symbolic
  ASSERT_TRUE(pool.FoldedConstant(c, &v));
  EXPECT_EQ(v, 5);
  auto read = [](int64_t) { return 99; };
  EXPECT_EQ(pool.Eval(c, read), 5);
  EXPECT_EQ(pool.Eval(b, read), 8 + 4 * 99);
}

}  // namespace
}  // namespace gerenuk
