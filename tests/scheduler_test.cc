// Determinism tests for the parallel task scheduler: a Gerenuk stage must
// produce byte-identical output and identical abort/commit counts for every
// worker count — the scheduler changes wall-clock shape, never results.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <stdexcept>
#include <string>

#include "src/exec/task_scheduler.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

// ---------------------------------------------------------------------------
// Scheduler-level tests (no engine)
// ---------------------------------------------------------------------------

TEST(TaskSchedulerTest, RunsEveryTaskExactlyOnceAndMergesStats) {
  for (int workers : kWorkerCounts) {
    MemoryTracker tracker;
    TaskScheduler sched(workers, HeapConfig{8u << 20}, nullptr, &tracker);
    std::vector<int> slots(64, 0);
    EngineStats stats;
    sched.RunStage(
        64,
        [&](WorkerContext& ctx, int t) {
          slots[static_cast<size_t>(t)] += t * 2 + 1;  // += catches double runs
          ctx.stats().tasks_run += 1;
        },
        &stats);
    EXPECT_EQ(stats.tasks_run, 64) << "workers=" << workers;
    for (int t = 0; t < 64; ++t) {
      EXPECT_EQ(slots[static_cast<size_t>(t)], t * 2 + 1) << "task " << t;
    }
  }
}

TEST(TaskSchedulerTest, FirstErrorByTaskIndexIsRethrown) {
  for (int workers : kWorkerCounts) {
    MemoryTracker tracker;
    TaskScheduler sched(workers, HeapConfig{8u << 20}, nullptr, &tracker);
    EngineStats stats;
    try {
      sched.RunStage(
          16,
          [&](WorkerContext&, int t) {
            if (t == 3 || t == 11) {
              throw std::runtime_error("task " + std::to_string(t));
            }
          },
          &stats);
      FAIL() << "expected an exception (workers=" << workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");
    }
    // The pool survives a failed stage: every task of the next stage runs,
    // for every worker count.
    std::atomic<int> ran{0};
    sched.RunStage(4, [&](WorkerContext&, int) { ran.fetch_add(1); }, &stats);
    EXPECT_EQ(ran.load(), 4) << "workers=" << workers;
  }
}

TEST(TaskSchedulerTest, WorkerHeapsAreIsolatedMutators) {
  MemoryTracker tracker;
  TaskScheduler sched(4, HeapConfig{8u << 20}, nullptr, &tracker);
  EngineStats stats;
  // Every task allocates in its worker's heap; arrays from different tasks
  // never alias because each context owns its storage.
  sched.RunStage(
      32,
      [&](WorkerContext& ctx, int t) {
        const Klass* i64s = ctx.heap().klasses().Find("i64[]");
        ASSERT_NE(i64s, nullptr);
        ObjRef arr = ctx.heap().AllocArray(i64s, 8);
        for (int64_t i = 0; i < 8; ++i) {
          ctx.heap().ASet<int64_t>(arr, i, t * 100 + i);
        }
        for (int64_t i = 0; i < 8; ++i) {
          GERENUK_CHECK_EQ(ctx.heap().AGet<int64_t>(arr, i), t * 100 + i);
        }
      },
      &stats);
}

// ---------------------------------------------------------------------------
// Engine-level determinism across worker counts
// ---------------------------------------------------------------------------
// The PairJob workload, SparkWith/HadoopWith configs, and DatasetBytes live
// in tests/pair_job.h (shared with fault_tolerance_test.cc).

TEST(SchedulerDeterminismTest, NarrowStageBytesIdenticalAcrossWorkerCounts) {
  std::vector<uint8_t> reference;
  for (int workers : kWorkerCounts) {
    SparkJob job(SparkWith(workers));
    DatasetPtr in = job.MakeInput(600);
    DatasetPtr out = job.engine.RunStage(
        in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
    std::vector<uint8_t> bytes = DatasetBytes(out);
    EXPECT_FALSE(bytes.empty());
    EXPECT_EQ(job.engine.stats().tasks_run, 4) << "workers=" << workers;
    EXPECT_EQ(job.engine.stats().fast_path_commits, 4) << "workers=" << workers;
    EXPECT_EQ(job.engine.stats().aborts, 0) << "workers=" << workers;
    if (workers == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
    }
  }
}

TEST(SchedulerDeterminismTest, ReduceByKeyBytesIdenticalAcrossWorkerCounts) {
  std::vector<uint8_t> reference;
  int64_t reference_shuffle = 0;
  for (int workers : kWorkerCounts) {
    SparkJob job(SparkWith(workers));
    DatasetPtr in = job.MakeInput(1000);
    DatasetPtr out = job.engine.ReduceByKey(in, job.udfs, {},
                                            KeySpec{job.get_key, false}, job.sum_values);
    EXPECT_EQ(out->TotalRecords(), 10);  // keys are i % 10
    std::vector<uint8_t> bytes = DatasetBytes(out);
    if (workers == 1) {
      reference = bytes;
      reference_shuffle = job.engine.stats().shuffle_bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
      EXPECT_EQ(job.engine.stats().shuffle_bytes, reference_shuffle);
    }
    EXPECT_EQ(job.engine.stats().aborts, 0);
  }
}

TEST(SchedulerDeterminismTest, ForcedAbortsIdenticalAcrossWorkerCounts) {
  // Two planned aborts: the same two tasks re-execute on the slow path for
  // every worker count, and the slow path reproduces the fast-path bytes.
  std::vector<uint8_t> clean;
  {
    SparkJob job(SparkWith(1));
    DatasetPtr out = job.engine.RunStage(job.MakeInput(600), job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    clean = DatasetBytes(out);
  }
  for (int workers : kWorkerCounts) {
    SparkJob job(SparkWith(workers));
    DatasetPtr in = job.MakeInput(600);
    job.engine.ForceAborts(2);
    DatasetPtr out = job.engine.RunStage(
        in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
    EXPECT_EQ(job.engine.stats().aborts, 2) << "workers=" << workers;
    EXPECT_EQ(job.engine.stats().fast_path_commits, 2) << "workers=" << workers;
    EXPECT_EQ(DatasetBytes(out), clean) << "workers=" << workers;
  }
}

TEST(SchedulerDeterminismTest, FaultPlanTargetsSpecificTaskAndRecord) {
  std::vector<uint8_t> reference;
  for (int workers : kWorkerCounts) {
    SparkJob job(SparkWith(workers));
    DatasetPtr in = job.MakeInput(600);
    // Abort exactly task 2 of the next stage, at record 7.
    job.engine.fault_plan().AbortTask(job.engine.next_task_ordinal() + 2, 7);
    DatasetPtr out = job.engine.RunStage(
        in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
    EXPECT_EQ(job.engine.stats().aborts, 1) << "workers=" << workers;
    EXPECT_EQ(job.engine.stats().fast_path_commits, 3) << "workers=" << workers;
    std::vector<uint8_t> bytes = DatasetBytes(out);
    if (workers == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
    }
  }
}

TEST(SchedulerDeterminismTest, HadoopJobIdenticalAcrossWorkerCounts) {
  std::vector<uint8_t> reference;
  EngineStats reference_stats;
  for (int workers : kWorkerCounts) {
    HadoopJob job(HadoopWith(workers));
    DatasetPtr in = job.MakeInput(800);
    DatasetPtr out = job.engine.RunJob(in, job.udfs, job.explode, job.pair,
                                       KeySpec{job.get_key, false}, job.sum_values,
                                       job.sum_values);
    EXPECT_EQ(out->TotalRecords(), 20);  // keys i%10 plus their +1000 twins
    std::vector<uint8_t> bytes = DatasetBytes(out);
    const EngineStats& stats = job.engine.stats();
    if (workers == 1) {
      reference = bytes;
      reference_stats = stats;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
      EXPECT_EQ(stats.map_tasks, reference_stats.map_tasks);
      EXPECT_EQ(stats.reduce_tasks, reference_stats.reduce_tasks);
      EXPECT_EQ(stats.spills, reference_stats.spills);
      EXPECT_EQ(stats.aborts, reference_stats.aborts);
      EXPECT_EQ(stats.fast_path_commits, reference_stats.fast_path_commits);
      EXPECT_EQ(stats.shuffle_bytes, reference_stats.shuffle_bytes);
      EXPECT_EQ(stats.combine_calls, reference_stats.combine_calls);
    }
  }
}

}  // namespace
}  // namespace gerenuk
