// Coverage for modules exercised so far only through macro paths: the
// Tungsten-like row engine, the committed-bytes helpers of nativebuf, the
// builder string fast path, and the interpreter's math/string intrinsics.
#include <gtest/gtest.h>

#include "src/baseline/tungsten.h"
#include "src/exec/interpreter.h"
#include "src/ir/builder.h"
#include "src/nativebuf/record_builder.h"
#include "src/runtime/roots.h"
#include "src/serde/inline_serializer.h"

namespace gerenuk {
namespace {

// --------------------------------------------------------------------------
// Tungsten baseline
// --------------------------------------------------------------------------

TEST(StringPoolTest, InternIsStableAndCachesHashes) {
  StringPool pool;
  int64_t a = pool.Intern("gerenuk");
  int64_t b = pool.Intern("spark");
  int64_t a2 = pool.Intern("gerenuk");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Get(a), "gerenuk");
  EXPECT_EQ(pool.CachedHash(a), pool.CachedHash(a2));
  EXPECT_NE(pool.CachedHash(a), pool.CachedHash(b));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(TungstenTableTest, RowsRoundTrip) {
  MemoryTracker tracker;
  TungstenTable table({TungstenType::kI64, TungstenType::kF64}, &tracker);
  for (int i = 0; i < 100; ++i) {
    int64_t row[2] = {i, TungstenTable::PackF64(i * 0.5)};
    table.AppendRow(row);
  }
  EXPECT_EQ(table.num_rows(), 100);
  EXPECT_EQ(table.GetI64(42, 0), 42);
  EXPECT_EQ(table.GetF64(42, 1), 21.0);
  table.SetF64(42, 1, -1.0);
  EXPECT_EQ(table.GetF64(42, 1), -1.0);
  EXPECT_EQ(table.bytes_used(), 100 * 2 * 8);
  EXPECT_GE(tracker.live_bytes(), table.bytes_used());
}

TEST(TungstenTableTest, GroupBySums) {
  TungstenTable table({TungstenType::kI64, TungstenType::kF64}, nullptr);
  for (int i = 0; i < 90; ++i) {
    int64_t row[2] = {i % 3, TungstenTable::PackF64(1.5)};
    table.AppendRow(row);
  }
  TungstenTable sums = GroupBySumF64(table, 0, 1, nullptr, nullptr);
  EXPECT_EQ(sums.num_rows(), 3);
  double total = 0.0;
  for (int64_t r = 0; r < sums.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(sums.GetF64(r, 1), 45.0);
    total += sums.GetF64(r, 1);
  }
  EXPECT_DOUBLE_EQ(total, 135.0);

  TungstenTable itable({TungstenType::kI64, TungstenType::kI64}, nullptr);
  for (int i = 0; i < 10; ++i) {
    int64_t row[2] = {i % 2, 7};
    itable.AppendRow(row);
  }
  TungstenTable isums = GroupBySumI64(itable, 0, 1, nullptr, nullptr);
  EXPECT_EQ(isums.num_rows(), 2);
  EXPECT_EQ(isums.GetI64(0, 1) + isums.GetI64(1, 1), 70);
}

TEST(TungstenTest, PlanGrowthReplaysLineage) {
  // Iteration i replays i prior steps: total replays = 0+1+..+(n-1).
  int steps = 0;
  int replays = 0;
  RunIterativeWithPlanGrowth(
      5, [&](int) { steps += 1; }, [&](int) { replays += 1; });
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(replays, 10);
}

// --------------------------------------------------------------------------
// Committed-bytes helpers
// --------------------------------------------------------------------------

struct NativeFixture {
  Heap heap{HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2}};
  WellKnown wk{heap};
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
};

TEST(NativeBufferTest, PrimReadWriteWidths) {
  alignas(8) uint8_t buf[32] = {0};
  int64_t base = reinterpret_cast<int64_t>(buf);
  NativeWriteInt(base, 0, FieldKind::kI8, -5);
  NativeWriteInt(base, 2, FieldKind::kI16, -300);
  NativeWriteInt(base, 4, FieldKind::kI32, 1 << 20);
  NativeWriteInt(base, 8, FieldKind::kI64, -(1LL << 40));
  NativeWriteFloat(base, 16, FieldKind::kF32, 1.5f);
  NativeWriteFloat(base, 24, FieldKind::kF64, -2.25);
  EXPECT_EQ(NativeReadInt(base, 0, FieldKind::kI8), -5);
  EXPECT_EQ(NativeReadInt(base, 2, FieldKind::kI16), -300);
  EXPECT_EQ(NativeReadInt(base, 4, FieldKind::kI32), 1 << 20);
  EXPECT_EQ(NativeReadInt(base, 8, FieldKind::kI64), -(1LL << 40));
  EXPECT_EQ(NativeReadFloat(base, 16, FieldKind::kF32), 1.5);
  EXPECT_EQ(NativeReadFloat(base, 24, FieldKind::kF64), -2.25);
}

TEST(NativeBufferTest, VariableRecordArrayElemAddrWalksSizePrefixes) {
  // Account-like: Holder { Post[] posts } with Post { text: String } — Post
  // is variable-size, so array elements carry size prefixes and random
  // access walks them.
  NativeFixture fx;
  KlassRegistry& reg = fx.heap.klasses();
  const Klass* string_k = fx.wk.string_klass();
  const Klass* post = reg.DefineClass("Post", {{"text", FieldKind::kRef, string_k, 0}});
  const Klass* post_array = reg.DefineArray(FieldKind::kRef, post);
  const Klass* holder = reg.DefineClass("Holder", {{"posts", FieldKind::kRef, post_array, 0}});
  std::string error;
  ASSERT_TRUE(fx.layouts.AnalyzeTopLevel(holder, &error)) << error;

  RootScope scope(fx.heap);
  size_t arr = scope.Push(fx.heap.AllocArray(post_array, 3));
  const char* texts[] = {"a", "bbbb", "cc"};
  for (int i = 0; i < 3; ++i) {
    size_t s = scope.Push(fx.wk.AllocString(texts[i]));
    size_t p = scope.Push(fx.heap.AllocObject(post));
    fx.heap.SetRef(scope.Get(p), post->FindField("text")->offset, scope.Get(s));
    fx.heap.ASetRef(scope.Get(arr), i, scope.Get(p));
  }
  size_t h = scope.Push(fx.heap.AllocObject(holder));
  fx.heap.SetRef(scope.Get(h), holder->FindField("posts")->offset, scope.Get(arr));

  InlineSerializer serde(fx.heap);
  ByteBuffer record;
  serde.WriteRecord(scope.Get(h), holder, record);
  NativePartition part;
  int64_t addr = part.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));

  // Holder body starts with the posts array.
  int64_t measured = MeasureCommittedBody(fx.layouts, holder, addr);
  EXPECT_EQ(measured, static_cast<int64_t>(record.size()) - 4);
  for (int i = 0; i < 3; ++i) {
    int64_t elem = CommittedArrayElemAddr(fx.layouts, post_array, addr, i);
    // Each Post body = its String body = [len][bytes].
    int32_t len = NativeReadI32(elem);
    EXPECT_EQ(len, static_cast<int32_t>(strlen(texts[i])));
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(elem + 4), static_cast<size_t>(len)),
              texts[i]);
  }
  EXPECT_DEATH(CommittedArrayElemAddr(fx.layouts, post_array, addr, 3), "out of bounds");
}

TEST(RecordBuilderTest, TryGetStringBytesFastPath) {
  NativeFixture fx;
  std::string error;
  ASSERT_TRUE(fx.layouts.AnalyzeTopLevel(fx.wk.string_klass(), &error));
  BuilderStore builders(fx.layouts);
  int64_t chars = builders.NewArray(fx.wk.byte_array(), 3);
  builders.ArrayStore(chars, 0, FieldKind::kI8, 'a', 0);
  builders.ArrayStore(chars, 1, FieldKind::kI8, 'b', 0);
  builders.ArrayStore(chars, 2, FieldKind::kI8, 'c', 0);
  int64_t str = builders.NewRecord(fx.wk.string_klass());
  builders.AttachField(str, 0, chars);

  const uint8_t* data = nullptr;
  int64_t len = 0;
  ASSERT_TRUE(builders.TryGetStringBytes(str, &data, &len));
  EXPECT_EQ(len, 3);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(data), 3), "abc");
  // A non-string-shaped builder declines the fast path.
  EXPECT_FALSE(builders.TryGetStringBytes(chars, &data, &len));
}

// --------------------------------------------------------------------------
// Interpreter intrinsics
// --------------------------------------------------------------------------

TEST(IntrinsicsTest, MathAndStringOps) {
  NativeFixture fx;
  SerProgram program;
  const Klass* string_k = fx.wk.string_klass();
  std::string error;
  ASSERT_TRUE(fx.layouts.AnalyzeTopLevel(string_k, &error));

  Function* math = program.AddFunction("math");
  {
    FunctionBuilder b(math);
    int x = b.Param("x", IrType::F64());
    math->return_type = IrType::F64();
    int e = b.CallNative("exp", {x}, IrType::F64());
    int l = b.CallNative("log", {e}, IrType::F64());  // log(exp(x)) == x
    int s = b.CallNative("sqrt", {b.ConstF(16.0)}, IrType::F64());
    b.Return(b.BinOp(BinOpKind::kAdd, l, s));
    b.Done();
  }
  Function* cmp = program.AddFunction("cmp");
  {
    FunctionBuilder b(cmp);
    int a = b.Param("a", IrType::Ref(string_k));
    int c = b.Param("b", IrType::Ref(string_k));
    cmp->return_type = IrType::I64();
    int eq = b.CallNative("stringEquals", {a, c}, IrType::I64());
    int order = b.CallNative("stringCompare", {a, c}, IrType::I64());
    int len = b.CallNative("stringLength", {a}, IrType::I64());
    // pack: eq*1000 + (order<0)*100 + len
    int neg = b.BinOp(BinOpKind::kLt, order, b.ConstI(0));
    int packed = b.BinOp(
        BinOpKind::kAdd,
        b.BinOp(BinOpKind::kAdd, b.BinOp(BinOpKind::kMul, eq, b.ConstI(1000)),
                b.BinOp(BinOpKind::kMul, neg, b.ConstI(100))),
        len);
    b.Return(packed);
    b.Done();
  }

  Interpreter interp(program, fx.heap, fx.wk, &fx.layouts, nullptr);
  Value m = interp.CallFunction(math, {Value::F64(2.5)});
  EXPECT_NEAR(m.d, 2.5 + 4.0, 1e-12);

  RootScope scope(fx.heap);
  size_t a = scope.Push(fx.wk.AllocString("apple"));
  size_t b2 = scope.Push(fx.wk.AllocString("banana"));
  Value packed = interp.CallFunction(
      cmp, {Value::Ref(static_cast<int64_t>(scope.Get(a))),
            Value::Ref(static_cast<int64_t>(scope.Get(b2)))});
  // not equal (0), apple < banana (100), length 5.
  EXPECT_EQ(packed.i, 105);
  Value same = interp.CallFunction(cmp, {Value::Ref(static_cast<int64_t>(scope.Get(a))),
                                         Value::Ref(static_cast<int64_t>(scope.Get(a)))});
  EXPECT_EQ(same.i, 1005);
}

TEST(IntrinsicsTest, HashAgreesAcrossHeapAndNativeStrings) {
  // hashCode must produce the same value for a heap String and its native
  // inline form — shuffle partitioning depends on it.
  NativeFixture fx;
  std::string error;
  ASSERT_TRUE(fx.layouts.AnalyzeTopLevel(fx.wk.string_klass(), &error));
  SerProgram program;
  Function* hash = program.AddFunction("hash");
  {
    FunctionBuilder b(hash);
    int s = b.Param("s", IrType::Ref(fx.wk.string_klass()));
    hash->return_type = IrType::I64();
    b.Return(b.CallNative("hashCode", {s}, IrType::I64()));
    b.Done();
  }
  BuilderStore builders(fx.layouts);
  Interpreter interp(program, fx.heap, fx.wk, &fx.layouts, &builders);

  RootScope scope(fx.heap);
  size_t s = scope.Push(fx.wk.AllocString("gerenuk"));
  Value heap_hash =
      interp.CallFunction(hash, {Value::Ref(static_cast<int64_t>(scope.Get(s)))});

  InlineSerializer serde(fx.heap);
  ByteBuffer record;
  serde.WriteRecord(scope.Get(s), fx.wk.string_klass(), record);
  NativePartition part;
  int64_t addr = part.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
  Value native_hash = interp.CallFunction(hash, {Value::Addr(addr)});
  EXPECT_EQ(heap_hash.i, native_hash.i);
}

// --------------------------------------------------------------------------
// ImportFunction
// --------------------------------------------------------------------------

TEST(ImportFunctionTest, CopiesTransitiveCalleesOnce) {
  SerProgram src;
  Function* helper = src.AddFunction("helper");
  {
    FunctionBuilder b(helper);
    int x = b.Param("x", IrType::I64());
    helper->return_type = IrType::I64();
    b.Return(b.BinOp(BinOpKind::kAdd, x, b.ConstI(1)));
    b.Done();
  }
  Function* outer = src.AddFunction("outer");
  {
    FunctionBuilder b(outer);
    int x = b.Param("x", IrType::I64());
    outer->return_type = IrType::I64();
    int once = b.Call(helper, {x});
    int twice = b.Call(helper, {once});
    b.Return(twice);
    b.Done();
  }

  SerProgram dst;
  std::map<int, int> remap;
  int id = ImportFunction(dst, src, outer->id, remap);
  EXPECT_EQ(dst.functions.size(), 2u);  // helper imported exactly once
  // The imported copy runs correctly.
  HeapConfig config;
  config.capacity_bytes = 1 << 20;
  Heap heap(config);
  WellKnown wk(heap);
  Interpreter interp(dst, heap, wk, nullptr, nullptr);
  Value result = interp.CallFunction(dst.function(id), {Value::I64(5)});
  EXPECT_EQ(result.i, 7);
}

}  // namespace
}  // namespace gerenuk
