// Shared service-mode test fixtures: the heterogeneous Pair workload run on
// pooled engines. Used by service_test (lifecycle, fairness, acceptance
// storm), chaos_test (fault campaigns), and bench_service-adjacent checks,
// so the job kinds, engine configuration, and sequential reference outputs
// stay in one place.
#ifndef TESTS_PAIR_SERVICE_H_
#define TESTS_PAIR_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/service/engine_service.h"
#include "src/service/job.h"
#include "tests/pair_job.h"

namespace gerenuk {

// Per-slot setup payload: the Pair klasses + UDFs, built once per engine
// (and rebuilt by the circuit breaker after a slot rebuild).
struct PairServiceSetup {
  PairUdfs spark;
  PairUdfs hadoop;
};

inline EngineSetup PairSetupFn() {
  return [](EngineContext& ctx) -> std::shared_ptr<void> {
    auto setup = std::make_shared<PairServiceSetup>();
    BuildPairUdfs(*ctx.spark, &setup->spark);
    BuildPairUdfs(*ctx.hadoop, &setup->hadoop);
    return setup;
  };
}

inline std::string BytesString(const std::vector<uint8_t>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

// The heterogeneous job kinds of the acceptance workloads. Deterministic per
// (kind): fixed input sizes, fixed programs. Kinds 0-2 run on the slot's
// SparkEngine, kind 3 on its HadoopEngine.
constexpr int kJobKinds = 4;
inline constexpr int64_t kKindCounts[kJobKinds] = {60, 48, 80, 36};

inline std::string RunKindOnSpark(int kind, SparkEngine& engine, const PairUdfs& u) {
  const int64_t count = kKindCounts[kind];
  DatasetPtr in = MakePairInput(engine, u, count);
  switch (kind) {
    case 0:
      return BytesString(
          DatasetBytes(engine.RunStage(in, u.udfs, {NarrowOp::Map(u.double_value, u.pair)})));
    case 1:
      return BytesString(
          DatasetBytes(engine.RunStage(in, u.udfs, {NarrowOp::FlatMap(u.explode, u.pair)})));
    case 2:
      return BytesString(DatasetBytes(
          engine.ReduceByKey(in, u.udfs, {}, KeySpec{u.get_key, false}, u.sum_values)));
    default:
      return "";
  }
}

inline std::string RunKindOnHadoop(HadoopEngine& engine, const PairUdfs& u) {
  DatasetPtr in = MakePairInput(engine, u, kKindCounts[3]);
  return BytesString(DatasetBytes(engine.RunJob(in, u.udfs, u.explode, u.pair,
                                                KeySpec{u.get_key, false}, u.sum_values,
                                                u.sum_values)));
}

inline JobSpec KindJob(int kind) {
  JobSpec spec;
  spec.name = "kind" + std::to_string(kind);
  spec.run = [kind](EngineContext& ctx) -> std::string {
    auto* setup = static_cast<PairServiceSetup*>(ctx.setup.get());
    if (kind == 3) {
      return RunKindOnHadoop(*ctx.hadoop, setup->hadoop);
    }
    return RunKindOnSpark(kind, *ctx.spark, setup->spark);
  };
  return spec;
}

inline EngineConfig ServiceEngineConfig() {
  EngineConfig config;
  config.execution.mode = EngineMode::kGerenuk;
  config.execution.heap_bytes = 32u << 20;
  config.execution.num_partitions = 4;
  config.execution.num_workers = 2;
  return config;
}

inline ServiceConfig SmallService(int num_engines) {
  ServiceConfig config;
  config.engine = ServiceEngineConfig();
  config.num_engines = num_engines;
  config.setup = PairSetupFn();
  return config;
}

// Sequential reference outputs: each kind run once on standalone engines
// with the same configuration the pooled engines use.
inline std::vector<std::string> SequentialExpected() {
  std::vector<std::string> expected(kJobKinds);
  SparkEngine spark(ServiceEngineConfig());
  PairUdfs spark_udfs;
  BuildPairUdfs(spark, &spark_udfs);
  for (int kind = 0; kind < 3; ++kind) {
    expected[kind] = RunKindOnSpark(kind, spark, spark_udfs);
  }
  HadoopConfig hadoop_config;
  hadoop_config.engine = ServiceEngineConfig();
  HadoopEngine hadoop(hadoop_config);
  PairUdfs hadoop_udfs;
  BuildPairUdfs(hadoop, &hadoop_udfs);
  expected[3] = RunKindOnHadoop(hadoop, hadoop_udfs);
  return expected;
}

}  // namespace gerenuk

#endif  // TESTS_PAIR_SERVICE_H_
