// Observability-layer tests (ctest -L obs): the determinism contract of the
// merged timeline, the Chrome trace-event export shape, ring-buffer overflow
// accounting, abort -> slow-path span nesting, and the sampled plan-op
// profiler. See DESIGN.md "Observability".
#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/support/trace.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON syntax checker (recursive descent, validates only — no DOM).
// Enough to guarantee the export loads in chrome://tracing / Perfetto.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        return false;
      }
    }
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// Splits the export into per-event object lines (the writer emits one event
// per line) and asserts every one carries the required ph/ts/pid/tid fields.
void CheckEventObjectShape(const std::string& json) {
  int events_seen = 0;
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string::npos) {
      end = json.size();
    }
    std::string line = json.substr(start, end - start);
    start = end + 1;
    if (!line.empty() && line[0] == ',') {
      line.erase(0, 1);
    }
    if (line.empty() || line[0] != '{' || line.find("\"traceEvents\"") != std::string::npos) {
      continue;  // header / footer
    }
    ++events_seen;
    EXPECT_NE(line.find("\"ph\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"pid\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
  }
  EXPECT_GT(events_seen, 2);  // more than just the metadata records
}

// ---------------------------------------------------------------------------
// Shared workload: the pair job with one forced SER abort (narrow stage,
// task 1) and one injected-exception retry (shuffle stage, task 1), run with
// tracing on. The fault plan is keyed by driver task ordinals, which are
// assigned identically for every worker count.
// ---------------------------------------------------------------------------

struct TraceRun {
  std::vector<uint8_t> bytes;             // output records (determinism anchor)
  std::vector<std::string> scrubbed;      // Trace::ScrubbedLines()
  std::vector<TraceEvent> events;         // merged timeline copy
  std::string json;                       // Chrome export
  int64_t dropped = 0;
};

TraceRun RunFaultedPairJob(int workers, size_t buffer_events) {
  EngineConfig config = SparkWith(workers);
  config.observability.trace = true;
  config.observability.trace_buffer_events = buffer_events;
  config.fault.max_task_attempts = 3;
  SparkJob job(config);
  DatasetPtr in = job.MakeInput(400);

  job.engine.fault_plan().AbortTask(job.engine.next_task_ordinal() + 1);
  DatasetPtr doubled =
      job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});

  job.engine.fault_plan().InjectException(job.engine.next_task_ordinal() + 1);
  DatasetPtr out = job.engine.ReduceByKey(doubled, job.udfs, {},
                                          KeySpec{job.get_key, false}, job.sum_values);

  TraceRun run;
  run.bytes = DatasetBytes(out);
  Trace* trace = job.engine.trace();
  run.scrubbed = trace->ScrubbedLines();
  run.events = trace->events();
  run.json = TraceExporter(*trace).ChromeJson();
  run.dropped = trace->dropped_events();
  return run;
}

// ---------------------------------------------------------------------------
// Determinism contract: scrubbed event sequences are byte-identical across
// worker counts, under forced aborts and retries.
// ---------------------------------------------------------------------------

TEST(TraceDeterminismTest, ScrubbedLinesIdenticalAcrossWorkerCounts) {
  TraceRun reference = RunFaultedPairJob(1, Trace::kDefaultBufferEvents);
  ASSERT_FALSE(reference.scrubbed.empty());
  ASSERT_EQ(reference.dropped, 0);

  for (int workers : kWorkerCounts) {
    if (workers == 1) {
      continue;
    }
    TraceRun run = RunFaultedPairJob(workers, Trace::kDefaultBufferEvents);
    EXPECT_EQ(run.bytes, reference.bytes) << "workers=" << workers;
    ASSERT_EQ(run.dropped, 0) << "workers=" << workers;
    ASSERT_EQ(run.scrubbed.size(), reference.scrubbed.size()) << "workers=" << workers;
    for (size_t i = 0; i < run.scrubbed.size(); ++i) {
      ASSERT_EQ(run.scrubbed[i], reference.scrubbed[i])
          << "workers=" << workers << " line " << i;
    }
  }
}

TEST(TraceDeterminismTest, ScrubbedSequenceContainsExpectedFaultEvents) {
  TraceRun run = RunFaultedPairJob(2, Trace::kDefaultBufferEvents);
  int aborts = 0;
  int retries = 0;
  int slow_paths = 0;
  for (const std::string& line : run.scrubbed) {
    if (line.find("instant abort") == 0) {
      ++aborts;
    }
    if (line.find("instant retry") == 0) {
      ++retries;
    }
    if (line.find("span slow_path") == 0) {
      ++slow_paths;
    }
  }
  EXPECT_EQ(aborts, 1);       // the one forced SER abort
  EXPECT_EQ(retries, 1);      // the one injected-exception retry
  EXPECT_GE(slow_paths, 1);   // re-execution after the abort
}

// ---------------------------------------------------------------------------
// Export shape: the Chrome trace parses as JSON and every event object has
// the ph/ts/pid/tid structure the trace viewers require.
// ---------------------------------------------------------------------------

TEST(TraceExportTest, ChromeJsonParsesWithRequiredFields) {
  TraceRun run = RunFaultedPairJob(2, Trace::kDefaultBufferEvents);
  ASSERT_FALSE(run.json.empty());
  EXPECT_TRUE(JsonChecker(run.json).Valid());
  CheckEventObjectShape(run.json);
  // The export names threads: driver plus one lane per worker.
  EXPECT_NE(run.json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(run.json.find("\"worker-0\""), std::string::npos);
  EXPECT_NE(run.json.find("\"worker-1\""), std::string::npos);
}

TEST(TraceExportTest, TextTimelineRendersEveryMergedEvent) {
  EngineConfig config = SparkWith(2);
  config.observability.trace = true;
  SparkJob job(config);
  DatasetPtr in = job.MakeInput(100);
  DatasetPtr out =
      job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
  ASSERT_EQ(out->TotalRecords(), 100);
  Trace* trace = job.engine.trace();
  std::string text = TraceExporter(*trace).TextTimeline();
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, trace->events().size());
}

// ---------------------------------------------------------------------------
// Ring overflow: a tiny per-worker buffer drops events (counted, never
// blocking) and the export still parses — including under a forced-abort
// fault plan.
// ---------------------------------------------------------------------------

TEST(TraceOverflowTest, TinyRingDropsAndCountsUnderForcedAborts) {
  TraceRun run = RunFaultedPairJob(2, /*buffer_events=*/16);
  EXPECT_GT(run.dropped, 0);
  EXPECT_TRUE(JsonChecker(run.json).Valid());
  CheckEventObjectShape(run.json);
}

TEST(TraceOverflowTest, DroppedCounterSurfacesInEngineMetrics) {
  EngineConfig config = SparkWith(2);
  config.observability.trace = true;
  config.observability.trace_buffer_events = 16;
  SparkJob job(config);
  job.engine.ForceAborts(4);
  DatasetPtr out = job.engine.RunStage(job.MakeInput(400), job.udfs,
                                       {NarrowOp::Map(job.double_value, job.pair)});
  ASSERT_EQ(out->TotalRecords(), 400);
  MetricsRegistry metrics = job.engine.metrics();
  EXPECT_GT(metrics.Counter("trace_dropped_events"), 0);
  EXPECT_EQ(metrics.Counter("trace_dropped_events"), job.engine.trace()->dropped_events());
}

// ---------------------------------------------------------------------------
// Abort nesting: the abort instant lands inside the fast-path span, and a
// slow-path span follows on the same worker lane (same tid in the export).
// ---------------------------------------------------------------------------

TEST(TraceNestingTest, AbortInstantNestsInFastSpanThenSlowPathFollows) {
  TraceRun run = RunFaultedPairJob(2, Trace::kDefaultBufferEvents);

  const TraceEvent* abort_ev = nullptr;
  for (const TraceEvent& ev : run.events) {
    if (ev.type == TraceEventType::kAbort) {
      ASSERT_EQ(abort_ev, nullptr) << "expected exactly one abort";
      abort_ev = &ev;
    }
  }
  ASSERT_NE(abort_ev, nullptr);
  EXPECT_EQ(abort_ev->task, 1);  // the forced-abort task

  const TraceEvent* fast = nullptr;
  const TraceEvent* slow = nullptr;
  for (const TraceEvent& ev : run.events) {
    if (ev.task != abort_ev->task || ev.worker != abort_ev->worker) {
      continue;
    }
    if (ev.type == TraceEventType::kFastPath && ev.ts_ns <= abort_ev->ts_ns &&
        abort_ev->ts_ns <= ev.ts_ns + ev.dur_ns) {
      fast = &ev;
    }
    if (ev.type == TraceEventType::kSlowPath && ev.ts_ns >= abort_ev->ts_ns) {
      slow = &ev;
    }
  }
  ASSERT_NE(fast, nullptr) << "abort instant not covered by a fast-path span";
  ASSERT_NE(slow, nullptr) << "no slow-path span after the abort";
  EXPECT_EQ(fast->worker, slow->worker);  // same tid lane in the export
  EXPECT_EQ(slow->attempt, fast->attempt);
}

// ---------------------------------------------------------------------------
// Hadoop engine: same trace plumbing, same determinism contract.
// ---------------------------------------------------------------------------

TEST(TraceHadoopTest, ScrubbedLinesIdenticalAcrossWorkerCounts) {
  auto run_job = [](int workers) {
    HadoopConfig config = HadoopWith(workers);
    config.engine.observability.trace = true;
    HadoopJob job(config);
    DatasetPtr in = job.MakeInput(300);
    job.engine.fault_plan().AbortTask(job.engine.next_task_ordinal() + 1);
    DatasetPtr out = job.engine.RunJob(in, job.udfs, job.explode, job.pair,
                                       KeySpec{job.get_key, false}, job.sum_values,
                                       job.sum_values);
    std::pair<std::vector<uint8_t>, std::vector<std::string>> result;
    result.first = DatasetBytes(out);
    result.second = job.engine.trace()->ScrubbedLines();
    EXPECT_TRUE(JsonChecker(TraceExporter(*job.engine.trace()).ChromeJson()).Valid())
        << "workers=" << workers;
    return result;
  };

  auto reference = run_job(1);
  ASSERT_FALSE(reference.second.empty());
  bool saw_map_stage = false;
  bool saw_reduce_stage = false;
  for (const std::string& line : reference.second) {
    if (line.find("span map ") == 0) {
      saw_map_stage = true;
    }
    if (line.find("span reduce ") == 0) {
      saw_reduce_stage = true;
    }
  }
  EXPECT_TRUE(saw_map_stage);
  EXPECT_TRUE(saw_reduce_stage);

  for (int workers : kWorkerCounts) {
    if (workers == 1) {
      continue;
    }
    auto run = run_job(workers);
    EXPECT_EQ(run.first, reference.first) << "workers=" << workers;
    ASSERT_EQ(run.second.size(), reference.second.size()) << "workers=" << workers;
    for (size_t i = 0; i < run.second.size(); ++i) {
      ASSERT_EQ(run.second[i], reference.second[i]) << "workers=" << workers << " line " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Plan-op profiler: with a sampling stride set, dispatch counts and clock
// samples accumulate into EngineStats::plan_ops — with identical dispatch
// totals for every worker count (sampled nanos are physical, so only counted
// for presence).
// ---------------------------------------------------------------------------

TEST(TracePlanProfilerTest, StrideCollectsDispatchCountsAndSamples) {
  auto run_stage = [](int workers) {
    EngineConfig config = SparkWith(workers);
    config.observability.plan_profile_stride = 8;
    SparkJob job(config);
    DatasetPtr out = job.engine.RunStage(job.MakeInput(400), job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    EXPECT_EQ(out->TotalRecords(), 400);
    return job.engine.stats().plan_ops;
  };

  OpProfile reference = run_stage(1);
  EXPECT_GT(reference.total_dispatches(), 0);
  EXPECT_GT(reference.samples, 0);

  OpProfile wide = run_stage(8);
  EXPECT_EQ(wide.total_dispatches(), reference.total_dispatches());
  for (int i = 0; i < OpProfile::kMaxOps; ++i) {
    EXPECT_EQ(wide.dispatches[i], reference.dispatches[i]) << "opcode " << i;
  }
}

TEST(TracePlanProfilerTest, DisabledStrideLeavesProfileEmpty) {
  EngineConfig config = SparkWith(2);
  ASSERT_EQ(config.observability.plan_profile_stride, 0);  // off by default
  SparkJob job(config);
  DatasetPtr out = job.engine.RunStage(job.MakeInput(100), job.udfs,
                                       {NarrowOp::Map(job.double_value, job.pair)});
  ASSERT_EQ(out->TotalRecords(), 100);
  EXPECT_TRUE(job.engine.stats().plan_ops.empty());
}

}  // namespace
}  // namespace gerenuk
