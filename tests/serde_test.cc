// Tests for the serde substrate: well-known types, the Kryo-like heap
// serializer, the Gerenuk inline serializer, and the Figure 4 layout
// accounting (object-based vs inlined representation of LabeledPoint[3]).
#include <gtest/gtest.h>

#include <vector>

#include "src/runtime/heap.h"
#include "src/runtime/roots.h"
#include "src/serde/heap_serializer.h"
#include "src/serde/inline_serializer.h"
#include "src/serde/wellknown.h"
#include "src/support/rng.h"

namespace gerenuk {
namespace {

HeapConfig TestConfig() {
  HeapConfig config;
  config.capacity_bytes = 16 << 20;
  config.gc = GcKind::kGenerational;
  return config;
}

// Defines the paper's running example (Fig. 3/4): LabeledPoint holding a
// label and a DenseVector of doubles.
struct LabeledPointTypes {
  const Klass* double_array;
  const Klass* dense_vector;
  const Klass* labeled_point;
  const Klass* lp_array;

  explicit LabeledPointTypes(Heap& heap) {
    KlassRegistry& reg = heap.klasses();
    double_array = reg.DefineArray(FieldKind::kF64);
    dense_vector = reg.DefineClass("DenseVector", {
                                                      {"numActives", FieldKind::kI32, nullptr, 0},
                                                      {"values", FieldKind::kRef, double_array, 0},
                                                  });
    labeled_point =
        reg.DefineClass("LabeledPoint", {
                                            {"label", FieldKind::kF64, nullptr, 0},
                                            {"features", FieldKind::kRef, dense_vector, 0},
                                        });
    lp_array = reg.DefineArray(FieldKind::kRef, labeled_point);
  }
};

// Builds one LabeledPoint with `n` feature values; returns a rooted slot.
ObjRef BuildLabeledPoint(Heap& heap, const LabeledPointTypes& types, RootScope& scope,
                         double label, const std::vector<double>& values) {
  size_t arr = scope.Push(heap.AllocArray(types.double_array, values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    heap.ASet<double>(scope.Get(arr), i, values[i]);
  }
  size_t vec = scope.Push(heap.AllocObject(types.dense_vector));
  heap.SetPrim<int32_t>(scope.Get(vec), types.dense_vector->FindField("numActives")->offset,
                        static_cast<int32_t>(values.size()));
  heap.SetRef(scope.Get(vec), types.dense_vector->FindField("values")->offset, scope.Get(arr));
  size_t lp = scope.Push(heap.AllocObject(types.labeled_point));
  heap.SetPrim<double>(scope.Get(lp), types.labeled_point->FindField("label")->offset, label);
  heap.SetRef(scope.Get(lp), types.labeled_point->FindField("features")->offset, scope.Get(vec));
  return scope.Get(lp);
}

TEST(WellKnownTest, StringRoundTrip) {
  Heap heap(TestConfig());
  WellKnown wk(heap);
  RootScope scope(heap);
  size_t s = scope.Push(wk.AllocString("hello gerenuk"));
  EXPECT_EQ(wk.GetString(scope.Get(s)), "hello gerenuk");
  EXPECT_EQ(wk.StringLength(scope.Get(s)), 13);
}

TEST(WellKnownTest, EmptyString) {
  Heap heap(TestConfig());
  WellKnown wk(heap);
  RootScope scope(heap);
  size_t s = scope.Push(wk.AllocString(""));
  EXPECT_EQ(wk.GetString(scope.Get(s)), "");
}

TEST(WellKnownTest, BoxedValues) {
  Heap heap(TestConfig());
  WellKnown wk(heap);
  RootScope scope(heap);
  size_t i = scope.Push(wk.AllocBoxedInt(-7));
  size_t l = scope.Push(wk.AllocBoxedLong(1LL << 40));
  size_t d = scope.Push(wk.AllocBoxedDouble(2.5));
  EXPECT_EQ(wk.UnboxInt(scope.Get(i)), -7);
  EXPECT_EQ(wk.UnboxLong(scope.Get(l)), 1LL << 40);
  EXPECT_EQ(wk.UnboxDouble(scope.Get(d)), 2.5);
}

TEST(WellKnownTest, ConstructionIsIdempotent) {
  Heap heap(TestConfig());
  WellKnown a(heap);
  WellKnown b(heap);
  EXPECT_EQ(a.string_klass(), b.string_klass());
  EXPECT_EQ(a.boxed_int(), b.boxed_int());
}

TEST(WellKnownTest, Tuple2Definition) {
  Heap heap(TestConfig());
  WellKnown wk(heap);
  const Klass* t = wk.DefineTuple2("Tuple2<String,f64>", FieldKind::kRef, wk.string_klass(),
                                   FieldKind::kF64, nullptr);
  EXPECT_EQ(t->FindField("_1")->kind, FieldKind::kRef);
  EXPECT_EQ(t->FindField("_2")->kind, FieldKind::kF64);
  EXPECT_EQ(wk.DefineTuple2("Tuple2<String,f64>", FieldKind::kRef, wk.string_klass(),
                            FieldKind::kF64, nullptr),
            t);
}

TEST(HeapSerializerTest, LabeledPointRoundTrip) {
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  ObjRef lp = BuildLabeledPoint(heap, types, scope, 1.0, {0.5, -1.5, 2.0});
  size_t lp_slot = scope.Push(lp);

  HeapSerializer serde(heap);
  ByteBuffer buf;
  serde.Serialize(scope.Get(lp_slot), types.labeled_point, buf);

  ByteReader reader(buf.bytes());
  size_t copy = scope.Push(serde.Deserialize(types.labeled_point, reader));
  EXPECT_TRUE(reader.AtEnd());

  ObjRef c = scope.Get(copy);
  EXPECT_EQ(heap.GetPrim<double>(c, types.labeled_point->FindField("label")->offset), 1.0);
  ObjRef vec = heap.GetRef(c, types.labeled_point->FindField("features")->offset);
  ASSERT_NE(vec, kNullRef);
  EXPECT_EQ(heap.GetPrim<int32_t>(vec, types.dense_vector->FindField("numActives")->offset), 3);
  ObjRef arr = heap.GetRef(vec, types.dense_vector->FindField("values")->offset);
  ASSERT_EQ(heap.ArrayLength(arr), 3);
  EXPECT_EQ(heap.AGet<double>(arr, 0), 0.5);
  EXPECT_EQ(heap.AGet<double>(arr, 1), -1.5);
  EXPECT_EQ(heap.AGet<double>(arr, 2), 2.0);
}

TEST(HeapSerializerTest, NullRefsSurvive) {
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  size_t lp = scope.Push(heap.AllocObject(types.labeled_point));  // features == null

  HeapSerializer serde(heap);
  ByteBuffer buf;
  serde.Serialize(scope.Get(lp), types.labeled_point, buf);
  ByteReader reader(buf.bytes());
  size_t copy = scope.Push(serde.Deserialize(types.labeled_point, reader));
  EXPECT_EQ(heap.GetRef(scope.Get(copy), types.labeled_point->FindField("features")->offset),
            kNullRef);
}

TEST(HeapSerializerTest, RefArrayRoundTrip) {
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  size_t arr = scope.Push(heap.AllocArray(types.lp_array, 4));
  for (int i = 0; i < 4; ++i) {
    ObjRef lp = BuildLabeledPoint(heap, types, scope, i, {i * 1.0, i * 2.0});
    heap.ASetRef(scope.Get(arr), i, lp);
  }
  HeapSerializer serde(heap);
  ByteBuffer buf;
  serde.Serialize(scope.Get(arr), types.lp_array, buf);
  ByteReader reader(buf.bytes());
  size_t copy = scope.Push(serde.Deserialize(types.lp_array, reader));
  ASSERT_EQ(heap.ArrayLength(scope.Get(copy)), 4);
  for (int i = 0; i < 4; ++i) {
    ObjRef lp = heap.AGetRef(scope.Get(copy), i);
    EXPECT_EQ(heap.GetPrim<double>(lp, types.labeled_point->FindField("label")->offset), i);
  }
}

TEST(HeapSerializerTest, SurvivesGcDuringDeserialization) {
  // A small heap forces collections while the object graph is being built;
  // the serializer's internal rooting must keep partial graphs alive.
  HeapConfig config;
  config.capacity_bytes = 1 << 20;
  config.gc = GcKind::kGenerational;
  Heap heap(config);
  LabeledPointTypes types(heap);
  HeapSerializer serde(heap);

  ByteBuffer buf;
  {
    RootScope scope(heap);
    ObjRef lp = BuildLabeledPoint(heap, types, scope, 3.5, std::vector<double>(1000, 1.25));
    size_t slot = scope.Push(lp);
    serde.Serialize(scope.Get(slot), types.labeled_point, buf);
  }
  RootScope scope(heap);
  for (int round = 0; round < 50; ++round) {
    ByteReader reader(buf.bytes());
    size_t copy = scope.Push(serde.Deserialize(types.labeled_point, reader));
    ObjRef vec = heap.GetRef(scope.Get(copy), types.labeled_point->FindField("features")->offset);
    ObjRef values = heap.GetRef(vec, types.dense_vector->FindField("values")->offset);
    ASSERT_EQ(heap.ArrayLength(values), 1000);
    ASSERT_EQ(heap.AGet<double>(values, 999), 1.25);
    scope.Pop();  // drop the copy; it becomes garbage
  }
  EXPECT_GT(heap.stats().minor_gcs, 0);
}

TEST(HeapSerializerTest, StatsCountObjectsAndBytes) {
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  ObjRef lp = BuildLabeledPoint(heap, types, scope, 1.0, {2.0, 3.0});
  size_t slot = scope.Push(lp);
  HeapSerializer serde(heap);
  ByteBuffer buf;
  serde.Serialize(scope.Get(slot), types.labeled_point, buf);
  EXPECT_EQ(serde.stats().objects, 3);  // LabeledPoint + DenseVector + double[]
  EXPECT_EQ(serde.stats().wire_bytes, static_cast<int64_t>(buf.size()));
}

TEST(InlineSerializerTest, BodySizeMatchesPaperExample) {
  // Paper §2: an inlined LabeledPoint holds 3 ints and 3 doubles = 36 bytes
  // when the vector has 2 values (size prefix + label + numActives + length
  // + 2 doubles); an array of three takes 4 + 3*36 = 112 bytes.
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  InlineSerializer inline_serde(heap);

  size_t arr = scope.Push(heap.AllocArray(types.lp_array, 3));
  for (int i = 0; i < 3; ++i) {
    ObjRef lp = BuildLabeledPoint(heap, types, scope, i, {1.0, 2.0});
    heap.ASetRef(scope.Get(arr), i, lp);
  }
  // Body of one LabeledPoint: label(8) + numActives(4) + len(4) + 2*8 = 32;
  // the per-record size prefix brings a stored record to 36 — the paper's
  // "3 int and 3 double values, taking 36 bytes".
  ObjRef lp0 = heap.AGetRef(scope.Get(arr), 0);
  EXPECT_EQ(inline_serde.BodySize(lp0, types.labeled_point), 32);
  ByteBuffer rec;
  inline_serde.WriteRecord(lp0, types.labeled_point, rec);
  EXPECT_EQ(rec.size(), 36u);

  // Whole array as one inlined structure: LabeledPoint is variable-size, so
  // each element carries its size prefix: 4 + 3*36 = 112 bytes, exactly the
  // paper's Figure 4 arithmetic.
  EXPECT_EQ(inline_serde.BodySize(scope.Get(arr), types.lp_array), 112);
}

TEST(InlineSerializerTest, Figure4HeapVsInlineOverhead) {
  // The object-based representation of LabeledPoint[3] must cost
  // header + pointer overhead on top of the payload: the paper reports the
  // JVM overhead as roughly 2x the payload size. With our exact layout:
  //   1 ref-array (16 hdr + 4 len + pad + 3 refs) + 3 LabeledPoint
  //   (16 hdr + 8 label + 8 ref) + 3 DenseVector (16 + 4 + pad + 8 ref) +
  //   3 double[2] (16 + 4 len + pad + 16) = 10 headers, 9 refs.
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  HeapSerializer heap_serde(heap);
  InlineSerializer inline_serde(heap);

  size_t arr = scope.Push(heap.AllocArray(types.lp_array, 3));
  for (int i = 0; i < 3; ++i) {
    ObjRef lp = BuildLabeledPoint(heap, types, scope, i, {1.0, 2.0});
    heap.ASetRef(scope.Get(arr), i, lp);
  }
  int64_t heap_bytes = heap_serde.MeasureHeapBytes(scope.Get(arr), types.lp_array);
  int64_t inline_bytes = 4 + 3 * 36;  // array length + 3 records w/ size field

  // Exact layout accounting: array 48 + 3*(32 + 32 + 40) = 360 bytes.
  EXPECT_EQ(heap_bytes, 360);
  // Overhead is ~2.2x the 112-byte payload — the paper's "nearly 2x".
  double overhead_ratio =
      static_cast<double>(heap_bytes - inline_bytes) / static_cast<double>(inline_bytes);
  EXPECT_GT(overhead_ratio, 1.8);
  EXPECT_LT(overhead_ratio, 2.6);
}

TEST(InlineSerializerTest, RecordRoundTripThroughHeap) {
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  InlineSerializer inline_serde(heap);

  ObjRef lp = BuildLabeledPoint(heap, types, scope, 7.5, {1.0, 2.0, 3.0, 4.0});
  size_t slot = scope.Push(lp);
  ByteBuffer buf;
  inline_serde.WriteRecord(scope.Get(slot), types.labeled_point, buf);

  ByteReader reader(buf.bytes());
  size_t copy = scope.Push(inline_serde.ReadRecord(types.labeled_point, reader));
  EXPECT_TRUE(reader.AtEnd());
  ObjRef c = scope.Get(copy);
  EXPECT_EQ(heap.GetPrim<double>(c, types.labeled_point->FindField("label")->offset), 7.5);
  ObjRef vec = heap.GetRef(c, types.labeled_point->FindField("features")->offset);
  ObjRef values = heap.GetRef(vec, types.dense_vector->FindField("values")->offset);
  ASSERT_EQ(heap.ArrayLength(values), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(heap.AGet<double>(values, i), i + 1.0);
  }
}

TEST(InlineSerializerTest, ReserializationIsIdentity) {
  // Property: deserialize(bytes) then re-serialize must reproduce `bytes`
  // exactly (DESIGN.md invariant 1).
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  InlineSerializer inline_serde(heap);
  Rng rng(42);

  for (int round = 0; round < 20; ++round) {
    std::vector<double> values;
    size_t n = rng.NextBounded(10);
    for (size_t i = 0; i < n; ++i) {
      values.push_back(rng.NextDouble());
    }
    ObjRef lp = BuildLabeledPoint(heap, types, scope, rng.NextDouble(), values);
    size_t slot = scope.Push(lp);
    ByteBuffer original;
    inline_serde.WriteRecord(scope.Get(slot), types.labeled_point, original);

    ByteReader reader(original.bytes());
    size_t copy = scope.Push(inline_serde.ReadRecord(types.labeled_point, reader));
    ByteBuffer again;
    inline_serde.WriteRecord(scope.Get(copy), types.labeled_point, again);
    ASSERT_EQ(original.bytes(), again.bytes()) << "round " << round;
  }
}

TEST(InlineSerializerTest, NullRefIsFatal) {
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  InlineSerializer inline_serde(heap);
  size_t lp = scope.Push(heap.AllocObject(types.labeled_point));  // features == null
  ByteBuffer buf;
  EXPECT_DEATH(inline_serde.WriteRecord(scope.Get(lp), types.labeled_point, buf),
               "cannot represent null");
}

TEST(InlineSerializerTest, StringInlinesAsLengthPlusBytes) {
  Heap heap(TestConfig());
  WellKnown wk(heap);
  RootScope scope(heap);
  InlineSerializer inline_serde(heap);
  size_t s = scope.Push(wk.AllocString("abc"));
  // String body = its byte-array body = [len:4]["abc"] = 7 bytes.
  EXPECT_EQ(inline_serde.BodySize(scope.Get(s), wk.string_klass()), 7);
  ByteBuffer buf;
  inline_serde.WriteRecord(scope.Get(s), wk.string_klass(), buf);
  ASSERT_EQ(buf.size(), 11u);
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadU32(), 7u);   // body size
  EXPECT_EQ(reader.ReadI32(), 3);    // char count
  EXPECT_EQ(reader.ReadU8(), 'a');
}

TEST(InlineSerializerTest, HeapAndInlineAgreeAfterCrossRoundTrip) {
  // wire -> heap objects -> inline bytes -> heap objects -> wire must be a
  // fixed point across both serializers.
  Heap heap(TestConfig());
  LabeledPointTypes types(heap);
  RootScope scope(heap);
  HeapSerializer heap_serde(heap);
  InlineSerializer inline_serde(heap);

  ObjRef lp = BuildLabeledPoint(heap, types, scope, -2.5, {9.0, 8.0, 7.0});
  size_t slot = scope.Push(lp);
  ByteBuffer kryo1;
  heap_serde.Serialize(scope.Get(slot), types.labeled_point, kryo1);

  ByteBuffer inl;
  inline_serde.WriteRecord(scope.Get(slot), types.labeled_point, inl);
  ByteReader inline_reader(inl.bytes());
  size_t rebuilt = scope.Push(inline_serde.ReadRecord(types.labeled_point, inline_reader));

  ByteBuffer kryo2;
  heap_serde.Serialize(scope.Get(rebuilt), types.labeled_point, kryo2);
  EXPECT_EQ(kryo1.bytes(), kryo2.bytes());
}

}  // namespace
}  // namespace gerenuk
