// Integration tests for the mini-Hadoop engine: word-count style jobs with
// string keys and combiners must match across engine modes, spills must
// trigger, and the Gerenuk mode must avoid shuffle-time serialization.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/ir/builder.h"
#include "src/mapreduce/hadoop.h"

namespace gerenuk {
namespace {

// WordCount over Line{text:String} records producing WordCount{word, count}.
struct WordCountWorkload {
  HadoopEngine engine;
  const Klass* line;
  const Klass* word_count;
  const Klass* wc_array;
  SerProgram udfs;
  const Function* tokenize;   // flatMap: Line -> WordCount[] (count=1 each)
  const Function* word_key;   // key: WordCount -> String
  const Function* sum_counts; // reduce: (a, b) -> (a.word, a.count + b.count)

  explicit WordCountWorkload(EngineMode mode, HadoopConfig base = HadoopConfig{})
      : engine([&] {
          base.engine.execution.mode = mode;
          return base;
        }()) {
    KlassRegistry& reg = engine.heap().klasses();
    const Klass* string_k = engine.wk().string_klass();
    line = reg.Find("Line") != nullptr
               ? reg.Find("Line")
               : reg.DefineClass("Line", {{"text", FieldKind::kRef, string_k, 0}});
    word_count = reg.Find("WordCount") != nullptr
                     ? reg.Find("WordCount")
                     : reg.DefineClass("WordCount", {
                                                        {"word", FieldKind::kRef, string_k, 0},
                                                        {"count", FieldKind::kI64, nullptr, 0},
                                                    });
    engine.RegisterDataType(line);
    engine.RegisterDataType(word_count);
    wc_array = reg.Find("WordCount[]");
    const Klass* byte_array = engine.wk().byte_array();

    // tokenize(line): split the text on spaces into WordCount records.
    {
      Function* f = udfs.AddFunction("tokenize");
      FunctionBuilder b(f);
      int rec = b.Param("line", IrType::Ref(line));
      f->return_type = IrType::Ref(wc_array);
      int text = b.FieldLoad(rec, line, "text");
      int chars = b.FieldLoad(text, string_k, "value");
      int len = b.ArrayLength(chars);
      int space = b.ConstI(' ');

      // Pass 1: count words = spaces + 1 (inputs are single-space-separated,
      // non-empty by construction).
      int words = b.Local("words", IrType::I64());
      b.AssignTo(words, b.ConstI(1));
      b.For(len, [&](int i) {
        int c = b.ArrayLoad(chars, i, IrType::I64());
        int is_space = b.BinOp(BinOpKind::kEq, c, space);
        b.If(is_space, [&] { b.AssignTo(words, b.BinOp(BinOpKind::kAdd, words, b.ConstI(1))); });
      });

      int arr = b.NewArray(wc_array, words);
      int word_index = b.Local("word_index", IrType::I64());
      b.AssignTo(word_index, b.ConstI(0));
      int start = b.Local("start", IrType::I64());
      b.AssignTo(start, b.ConstI(0));
      int pos = b.Local("pos", IrType::I64());
      b.AssignTo(pos, b.ConstI(0));

      // Pass 2: emit a WordCount for every [start, pos) run.
      auto emit_word = [&]() {
        int word_len = b.BinOp(BinOpKind::kSub, pos, start);
        int word_chars = b.NewArray(byte_array, word_len);
        b.For(word_len, [&](int k) {
          int src = b.BinOp(BinOpKind::kAdd, start, k);
          int c = b.ArrayLoad(chars, src, IrType::I64());
          b.ArrayStore(word_chars, k, c);
        });
        int word = b.NewObject(string_k);
        b.FieldStore(word, string_k, "value", word_chars);
        int wc = b.NewObject(word_count);
        b.FieldStore(wc, word_count, "word", word);
        b.FieldStore(wc, word_count, "count", b.ConstI(1));
        b.ArrayStore(arr, word_index, wc);
        b.AssignTo(word_index, b.BinOp(BinOpKind::kAdd, word_index, b.ConstI(1)));
      };

      int loop = b.NewLabel();
      int done = b.NewLabel();
      b.PlaceLabel(loop);
      int at_end = b.BinOp(BinOpKind::kGe, pos, len);
      b.Branch(at_end, done);
      int c = b.ArrayLoad(chars, pos, IrType::I64());
      int is_space = b.BinOp(BinOpKind::kEq, c, space);
      b.If(is_space, [&] {
        emit_word();
        b.AssignTo(start, b.BinOp(BinOpKind::kAdd, pos, b.ConstI(1)));
      });
      b.AssignTo(pos, b.BinOp(BinOpKind::kAdd, pos, b.ConstI(1)));
      b.Jump(loop);
      b.PlaceLabel(done);
      emit_word();  // final word
      b.Return(arr);
      b.Done();
      tokenize = f;
    }
    {
      Function* f = udfs.AddFunction("word_key");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(word_count));
      f->return_type = IrType::Ref(string_k);
      b.Return(b.FieldLoad(rec, word_count, "word"));
      b.Done();
      word_key = f;
    }
    {
      Function* f = udfs.AddFunction("sum_counts");
      FunctionBuilder b(f);
      int a = b.Param("a", IrType::Ref(word_count));
      int c = b.Param("b", IrType::Ref(word_count));
      f->return_type = IrType::Ref(word_count);
      int out = b.NewObject(word_count);
      b.FieldStore(out, word_count, "word", b.FieldLoad(a, word_count, "word"));
      int sum = b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, word_count, "count"),
                        b.FieldLoad(c, word_count, "count"));
      b.FieldStore(out, word_count, "count", sum);
      b.Return(out);
      b.Done();
      sum_counts = f;
    }
  }

  ObjRef MakeLine(const std::string& text, RootScope& scope) {
    size_t s = scope.Push(engine.wk().AllocString(text));
    ObjRef rec = engine.heap().AllocObject(line);
    engine.heap().SetRef(rec, line->FindField("text")->offset, scope.Get(s));
    return rec;
  }

  DatasetPtr MakeInput(int64_t lines) {
    const char* vocab[] = {"big", "data", "gerenuk", "spark", "hadoop", "native", "bytes"};
    return engine.Source(line, lines, [this, &vocab](int64_t i, RootScope& scope) {
      std::string text;
      for (int w = 0; w < 5; ++w) {
        if (w > 0) {
          text += ' ';
        }
        text += vocab[(i * 5 + w * 3 + i / 7) % 7];
      }
      return MakeLine(text, scope);
    });
  }

  std::vector<std::pair<std::string, int64_t>> Extract(const DatasetPtr& ds) {
    RootScope scope(engine.heap());
    std::vector<std::pair<std::string, int64_t>> result;
    // CollectToHeap lives on SparkEngine; read records directly here.
    Heap& heap = engine.heap();
    if (engine.mode() == EngineMode::kBaseline) {
      for (const auto& part : ds->heap_parts) {
        for (ObjRef rec : part) {
          ObjRef word = heap.GetRef(rec, word_count->FindField("word")->offset);
          result.emplace_back(engine.wk().GetString(word),
                              heap.GetPrim<int64_t>(rec, word_count->FindField("count")->offset));
        }
      }
    } else {
      InlineSerializer serde(heap);
      for (const auto& part : ds->native_parts) {
        for (size_t r = 0; r < part.record_count(); ++r) {
          ByteReader reader(reinterpret_cast<const uint8_t*>(part.record_addr(r)),
                            part.record_size(r));
          size_t slot = scope.Push(serde.ReadBody(word_count, reader));
          ObjRef rec = scope.Get(slot);
          ObjRef word = heap.GetRef(rec, word_count->FindField("word")->offset);
          result.emplace_back(engine.wk().GetString(word),
                              heap.GetPrim<int64_t>(rec, word_count->FindField("count")->offset));
        }
      }
    }
    std::sort(result.begin(), result.end());
    return result;
  }
};

using Counts = std::vector<std::pair<std::string, int64_t>>;

TEST(HadoopEngineTest, WordCountMatchesAcrossModes) {
  Counts results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    WordCountWorkload w(mode);
    DatasetPtr in = w.MakeInput(200);
    DatasetPtr out = w.engine.RunJob(in, w.udfs, w.tokenize, w.word_count,
                                     KeySpec{w.word_key, true}, w.sum_counts);
    results[static_cast<int>(mode)] = w.Extract(out);
    EXPECT_EQ(out->TotalRecords(), 7);  // 7 vocabulary words
  }
  EXPECT_EQ(results[0], results[1]);
  int64_t total = 0;
  for (const auto& [word, count] : results[0]) {
    total += count;
  }
  EXPECT_EQ(total, 200 * 5);  // every emitted word counted exactly once
}

TEST(HadoopEngineTest, CombinerPreservesResults) {
  Counts without_combiner;
  Counts with_combiner;
  {
    WordCountWorkload w(EngineMode::kGerenuk);
    DatasetPtr in = w.MakeInput(150);
    DatasetPtr out = w.engine.RunJob(in, w.udfs, w.tokenize, w.word_count,
                                     KeySpec{w.word_key, true}, w.sum_counts);
    without_combiner = w.Extract(out);
  }
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    WordCountWorkload w(mode);
    DatasetPtr in = w.MakeInput(150);
    w.engine.ResetMetrics();
    DatasetPtr out = w.engine.RunJob(in, w.udfs, w.tokenize, w.word_count,
                                     KeySpec{w.word_key, true}, w.sum_counts, w.sum_counts);
    EXPECT_GT(w.engine.stats().combine_calls, 0);
    with_combiner = w.Extract(out);
    EXPECT_EQ(with_combiner, without_combiner);
  }
}

TEST(HadoopEngineTest, SmallSortBufferForcesSpills) {
  HadoopConfig config;
  config.sort_buffer_bytes = 4 << 10;
  WordCountWorkload w(EngineMode::kGerenuk, config);
  DatasetPtr in = w.MakeInput(300);
  w.engine.ResetMetrics();
  w.engine.RunJob(in, w.udfs, w.tokenize, w.word_count, KeySpec{w.word_key, true}, w.sum_counts);
  EXPECT_GT(w.engine.stats().spills, w.engine.stats().map_tasks);
}

TEST(HadoopEngineTest, GerenukAvoidsShuffleSerde) {
  WordCountWorkload g(EngineMode::kGerenuk);
  DatasetPtr gin = g.MakeInput(100);
  g.engine.ResetMetrics();
  g.engine.RunJob(gin, g.udfs, g.tokenize, g.word_count, KeySpec{g.word_key, true},
                  g.sum_counts);
  EXPECT_EQ(g.engine.stats().times.Get(Phase::kSerialize), 0);
  EXPECT_EQ(g.engine.stats().times.Get(Phase::kDeserialize), 0);
  EXPECT_EQ(g.engine.stats().aborts, 0);
  EXPECT_GT(g.engine.stats().fast_path_commits, 0);

  WordCountWorkload b(EngineMode::kBaseline);
  DatasetPtr bin = b.MakeInput(100);
  b.engine.ResetMetrics();
  b.engine.RunJob(bin, b.udfs, b.tokenize, b.word_count, KeySpec{b.word_key, true},
                  b.sum_counts);
  EXPECT_GT(b.engine.stats().times.Get(Phase::kSerialize), 0);
  EXPECT_GT(b.engine.stats().times.Get(Phase::kDeserialize), 0);
}

TEST(HadoopEngineTest, CompilerStatsAccumulate) {
  WordCountWorkload w(EngineMode::kGerenuk);
  DatasetPtr in = w.MakeInput(50);
  w.engine.RunJob(in, w.udfs, w.tokenize, w.word_count, KeySpec{w.word_key, true}, w.sum_counts);
  EXPECT_GT(w.engine.stats().transform.statements_transformed, 20);
  EXPECT_GT(w.engine.stats().transform.functions_transformed, 2);
}

}  // namespace
}  // namespace gerenuk
