// Differential proof for the vectorized plan kernels (ctest -L vec): every
// kVec* opcode path must be observationally identical to the scalar plan
// path and to the tree-walking Interpreter — exact results (bit-exact for
// floats) for every batch size, every tail shape, mid-loop bails, rejected
// row-layout loops, and aborts that land while a vectorized plan is active.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/analysis/layout.h"
#include "src/analysis/ser_analyzer.h"
#include "src/exec/plan.h"
#include "src/exec/ser_executor.h"
#include "src/ir/builder.h"
#include "src/runtime/roots.h"
#include "src/serde/inline_serializer.h"
#include "src/support/rng.h"
#include "src/transform/transformer.h"

namespace gerenuk {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: direct CallFunction differentials over builder-authored loops.
// ---------------------------------------------------------------------------

struct VecHarness {
  Heap heap{HeapConfig{32u << 20, GcKind::kGenerational, 0.55, 0.35, 2}};
  WellKnown wk{heap};
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  SerProgram prog;

  std::shared_ptr<const SerPlan> Compile(bool vectorize, int32_t batch = 256,
                                         int64_t bail_after = -1) {
    pool.FoldConstants();
    PlanOptions options;
    options.vectorize = vectorize;
    options.vector_batch_size = batch;
    options.vec_bail_after_strips = bail_after;
    return CompilePlan(prog, layouts, options);
  }
};

// The batch sizes the sweeps run: 1 (every strip is a tail), small odd
// (non-power-of-two strips), the default, and larger-than-any-trip.
constexpr int32_t kBatchSizes[] = {1, 3, 7, 64, 256};
// Trip counts around the strip boundaries, including empty and odd tails.
constexpr int64_t kTrips[] = {0, 1, 5, 63, 64, 65, 255, 256, 257, 1000};

// acc = 1; m = 1<<40; for i: t = i*3; u = t^7; acc += u; m = min(m, u).
// Exercises kVecBinOp (int arith + bitwise), two kVecScan reductions
// (kAdd and kMin), invariant-slot operands, and the induction column.
Function* BuildIntLoop(SerProgram& prog) {
  Function* f = prog.AddFunction("int_loop");
  FunctionBuilder b(f);
  int n = b.Param("n", IrType::I64());
  f->return_type = IrType::I64();
  int acc = b.Local("acc", IrType::I64());
  int m = b.Local("m", IrType::I64());
  b.AssignTo(acc, b.ConstI(1));
  b.AssignTo(m, b.ConstI(1ll << 40));
  int three = b.ConstI(3);
  int seven = b.ConstI(7);
  b.For(n, [&](int i) {
    int t = b.BinOp(BinOpKind::kMul, i, three);
    int u = b.BinOp(BinOpKind::kXor, t, seven);
    b.AssignTo(acc, b.BinOp(BinOpKind::kAdd, acc, u));
    b.AssignTo(m, b.BinOp(BinOpKind::kMin, m, u));
  });
  b.Return(b.BinOp(BinOpKind::kAdd, acc, m));
  b.Done();
  return f;
}

TEST(VecKernelTest, IntLoopMatchesScalarAndInterpreter) {
  VecHarness h;
  Function* f = BuildIntLoop(h.prog);
  std::shared_ptr<const SerPlan> scalar = h.Compile(false);
  EXPECT_EQ(scalar->vec_loops(), 0);
  EXPECT_STREQ(scalar->layout(), "row");
  Interpreter interp(h.prog, h.heap, h.wk, &h.layouts, nullptr);
  PlanExecutor scalar_exec(*scalar, h.heap, h.wk, &h.layouts, nullptr);
  for (int32_t batch : kBatchSizes) {
    std::shared_ptr<const SerPlan> vec = h.Compile(true, batch);
    ASSERT_EQ(vec->vec_loops(), 1) << "batch " << batch;
    EXPECT_STREQ(vec->layout(), "columnar");
    EXPECT_GT(vec->ops_vectorized(), 0);
    PlanExecutor vec_exec(*vec, h.heap, h.wk, &h.layouts, nullptr);
    for (int64_t n : kTrips) {
      std::vector<Value> args = {Value::I64(n)};
      int64_t want = interp.CallFunction(f, args).i;
      EXPECT_EQ(scalar_exec.CallFunction(f, args).i, want) << "n=" << n;
      EXPECT_EQ(vec_exec.CallFunction(f, args).i, want)
          << "n=" << n << " batch=" << batch;
    }
  }
}

// facc = 0.0; fm = 1e300; for i: x = i * 0.5; y = x + 0.25; facc += y;
// fm = min(fm, y). Exercises the float kernel lanes (int induction column
// promoted through a float invariant), float scans, and bit-exact carries.
Function* BuildFloatLoop(SerProgram& prog) {
  Function* f = prog.AddFunction("float_loop");
  FunctionBuilder b(f);
  int n = b.Param("n", IrType::I64());
  f->return_type = IrType::F64();
  int facc = b.Local("facc", IrType::F64());
  int fm = b.Local("fm", IrType::F64());
  b.AssignTo(facc, b.ConstF(0.0));
  b.AssignTo(fm, b.ConstF(1e300));
  int half = b.ConstF(0.5);
  int quarter = b.ConstF(0.25);
  b.For(n, [&](int i) {
    int x = b.BinOp(BinOpKind::kMul, i, half);
    int y = b.BinOp(BinOpKind::kAdd, x, quarter);
    b.AssignTo(facc, b.BinOp(BinOpKind::kAdd, facc, y));
    b.AssignTo(fm, b.BinOp(BinOpKind::kMin, fm, y));
  });
  b.Return(b.BinOp(BinOpKind::kAdd, facc, fm));
  b.Done();
  return f;
}

TEST(VecKernelTest, FloatLoopMatchesBitExact) {
  VecHarness h;
  Function* f = BuildFloatLoop(h.prog);
  std::shared_ptr<const SerPlan> scalar = h.Compile(false);
  Interpreter interp(h.prog, h.heap, h.wk, &h.layouts, nullptr);
  PlanExecutor scalar_exec(*scalar, h.heap, h.wk, &h.layouts, nullptr);
  for (int32_t batch : kBatchSizes) {
    std::shared_ptr<const SerPlan> vec = h.Compile(true, batch);
    ASSERT_EQ(vec->vec_loops(), 1) << "batch " << batch;
    PlanExecutor vec_exec(*vec, h.heap, h.wk, &h.layouts, nullptr);
    for (int64_t n : kTrips) {
      std::vector<Value> args = {Value::I64(n)};
      double want = interp.CallFunction(f, args).d;
      // Bit-exact, not approximately equal: scan order must be serial.
      EXPECT_EQ(scalar_exec.CallFunction(f, args).d, want) << "n=" << n;
      EXPECT_EQ(vec_exec.CallFunction(f, args).d, want)
          << "n=" << n << " batch=" << batch;
    }
  }
}

// for i: if (i % 3 != 0) continue-skip; acc += i*i — a continue-style
// branch, which the vectorizer lowers to kVecFilter + a compacted selection
// vector feeding the downstream binop and scan.
Function* BuildFilteredLoop(SerProgram& prog) {
  Function* f = prog.AddFunction("filtered_loop");
  FunctionBuilder b(f);
  int n = b.Param("n", IrType::I64());
  f->return_type = IrType::I64();
  int acc = b.Local("acc", IrType::I64());
  b.AssignTo(acc, b.ConstI(0));
  int three = b.ConstI(3);
  int zero = b.ConstI(0);
  b.For(n, [&](int i) {
    int rem = b.BinOp(BinOpKind::kRem, i, three);
    int keep = b.BinOp(BinOpKind::kEq, rem, zero);
    b.If(keep, [&] {
      int sq = b.BinOp(BinOpKind::kMul, i, i);
      b.AssignTo(acc, b.BinOp(BinOpKind::kAdd, acc, sq));
    });
  });
  b.Return(acc);
  b.Done();
  return f;
}

TEST(VecKernelTest, FilteredLoopMatchesWithSelectionVectors) {
  VecHarness h;
  Function* f = BuildFilteredLoop(h.prog);
  std::shared_ptr<const SerPlan> scalar = h.Compile(false);
  Interpreter interp(h.prog, h.heap, h.wk, &h.layouts, nullptr);
  PlanExecutor scalar_exec(*scalar, h.heap, h.wk, &h.layouts, nullptr);
  for (int32_t batch : kBatchSizes) {
    std::shared_ptr<const SerPlan> vec = h.Compile(true, batch);
    ASSERT_EQ(vec->vec_loops(), 1) << "batch " << batch;
    EXPECT_GT(vec->op_counts()[static_cast<size_t>(PlanOpCode::kVecFilter)], 0);
    PlanExecutor vec_exec(*vec, h.heap, h.wk, &h.layouts, nullptr);
    for (int64_t n : kTrips) {
      std::vector<Value> args = {Value::I64(n)};
      int64_t want = interp.CallFunction(f, args).i;
      EXPECT_EQ(scalar_exec.CallFunction(f, args).i, want) << "n=" << n;
      EXPECT_EQ(vec_exec.CallFunction(f, args).i, want)
          << "n=" << n << " batch=" << batch;
    }
  }
}

// The mid-loop handoff seam: vec_bail_after_strips hands the loop to the
// scalar path after N strips, from exactly the committed induction state.
// 0 = the vec block runs no strip at all; every setting must agree.
TEST(VecKernelTest, BailKnobHandsOffMidLoopToScalar) {
  VecHarness h;
  Function* f = BuildIntLoop(h.prog);
  std::shared_ptr<const SerPlan> scalar = h.Compile(false);
  PlanExecutor scalar_exec(*scalar, h.heap, h.wk, &h.layouts, nullptr);
  for (int64_t bail_after : {0ll, 1ll, 2ll, 7ll}) {
    std::shared_ptr<const SerPlan> vec = h.Compile(true, /*batch=*/16, bail_after);
    ASSERT_EQ(vec->vec_loops(), 1);
    PlanExecutor vec_exec(*vec, h.heap, h.wk, &h.layouts, nullptr);
    for (int64_t n : {0ll, 15ll, 16ll, 100ll, 1000ll}) {
      std::vector<Value> args = {Value::I64(n)};
      EXPECT_EQ(vec_exec.CallFunction(f, args).i, scalar_exec.CallFunction(f, args).i)
          << "bail_after=" << bail_after << " n=" << n;
    }
  }
}

// A pointer-chasing body (heap FieldLoad per iteration) must stay in the
// layout cost model's row bucket: the loop is rejected with a named reason,
// no vec ops are emitted, and results still match the interpreter.
TEST(VecKernelTest, RowOpLoopIsRejectedAndStaysScalar) {
  VecHarness h;
  const Klass* pair = h.heap.klasses().DefineClass(
      "Pair", {
                  {"key", FieldKind::kI64, nullptr, 0},
                  {"value", FieldKind::kF64, nullptr, 0},
              });
  Function* f = h.prog.AddFunction("row_loop");
  {
    FunctionBuilder b(f);
    int rec = b.Param("rec", IrType::Ref(pair));
    int n = b.Param("n", IrType::I64());
    f->return_type = IrType::I64();
    int acc = b.Local("acc", IrType::I64());
    b.AssignTo(acc, b.ConstI(0));
    b.For(n, [&](int i) {
      int k = b.FieldLoad(rec, pair, "key");
      b.AssignTo(acc, b.BinOp(BinOpKind::kAdd, acc, b.BinOp(BinOpKind::kMul, i, k)));
    });
    b.Return(acc);
    b.Done();
  }
  std::shared_ptr<const SerPlan> vec = h.Compile(true);
  EXPECT_EQ(vec->vec_loops(), 0);
  EXPECT_EQ(vec->vec_loops_rejected(), 1);
  EXPECT_STREQ(vec->layout(), "row");
  ASSERT_FALSE(vec->vec_reject_reasons().empty());
  EXPECT_EQ(vec->vec_reject_reasons()[0].substr(0, 7), "row-op:");

  Interpreter interp(h.prog, h.heap, h.wk, &h.layouts, nullptr);
  PlanExecutor vec_exec(*vec, h.heap, h.wk, &h.layouts, nullptr);
  RootScope scope(h.heap);
  size_t rec = scope.Push(h.heap.AllocObject(pair));
  h.heap.SetPrim<int64_t>(scope.Get(rec), pair->FindField("key")->offset, 5);
  std::vector<Value> args = {Value::Ref(static_cast<int64_t>(scope.Get(rec))),
                             Value::I64(37)};
  EXPECT_EQ(vec_exec.CallFunction(f, args).i, interp.CallFunction(f, args).i);
}

// ---------------------------------------------------------------------------
// Layer 2: the transformed-SER path — gathers from committed input arrays,
// scatters into builder arrays, and abort handling under a vectorized plan.
// ---------------------------------------------------------------------------

// exec_test's LabeledPoint pipeline, narrowed to what the vec kernels need:
// scale's array loop gathers from the committed input (kVecReadCol), computes
// per-lane, and scatters into the output builder array (kVecWriteCol).
struct VecPipeline {
  Heap heap{HeapConfig{32u << 20, GcKind::kGenerational, 0.55, 0.35, 2}};
  WellKnown wk{heap};
  const Klass* double_array;
  const Klass* dense_vector;
  const Klass* labeled_point;
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  SerProgram program;
  std::unique_ptr<SerProgram> transformed;

  VecPipeline() {
    KlassRegistry& reg = heap.klasses();
    double_array = reg.Find("f64[]");
    dense_vector = reg.DefineClass("DenseVector", {
                                                      {"numActives", FieldKind::kI32, nullptr, 0},
                                                      {"values", FieldKind::kRef, double_array, 0},
                                                  });
    labeled_point =
        reg.DefineClass("LabeledPoint", {
                                            {"label", FieldKind::kF64, nullptr, 0},
                                            {"features", FieldKind::kRef, dense_vector, 0},
                                        });
    std::string error;
    GERENUK_CHECK(layouts.AnalyzeTopLevel(labeled_point, &error)) << error;

    Function* udf = program.AddFunction("scale");
    {
      FunctionBuilder b(udf);
      int lp = b.Param("lp", IrType::Ref(labeled_point));
      udf->return_type = IrType::Ref(labeled_point);
      int label = b.FieldLoad(lp, labeled_point, "label");
      int vec = b.FieldLoad(lp, labeled_point, "features");
      int values = b.FieldLoad(vec, dense_vector, "values");
      int len = b.ArrayLength(values);
      int new_values = b.NewArray(double_array, len);
      int one = b.ConstF(1.0);
      b.For(len, [&](int i) {
        int v = b.ArrayLoad(values, i, IrType::F64());
        int v1 = b.BinOp(BinOpKind::kAdd, v, one);
        b.ArrayStore(new_values, i, v1);
      });
      int new_vec = b.NewObject(dense_vector);
      int num = b.FieldLoad(vec, dense_vector, "numActives");
      b.FieldStore(new_vec, dense_vector, "numActives", num);
      b.FieldStore(new_vec, dense_vector, "values", new_values);
      int new_lp = b.NewObject(labeled_point);
      int two = b.ConstF(2.0);
      b.FieldStore(new_lp, labeled_point, "label", b.BinOp(BinOpKind::kMul, label, two));
      b.FieldStore(new_lp, labeled_point, "features", new_vec);
      b.Return(new_lp);
      b.Done();
    }
    Function* body = program.AddFunction("task_body");
    {
      FunctionBuilder b(body);
      int rec = b.Deserialize(labeled_point);
      int out = b.Call(udf, {rec});
      b.Serialize(out);
      b.Return();
      b.Done();
    }
    program.body = body;
    SerAnalyzer analyzer(program, layouts);
    SerAnalysis analysis = analyzer.Run();
    Transformer transformer(program, analysis, layouts);
    TransformResult result = transformer.Run();
    transformed = std::move(result.transformed);
  }

  std::shared_ptr<const SerPlan> Compile(bool vectorize, int32_t batch = 256) {
    pool.FoldConstants();
    PlanOptions options;
    options.vectorize = vectorize;
    options.vector_batch_size = batch;
    return CompilePlan(*transformed, layouts, options);
  }

  // Deterministic input: `n` records with array lengths 1..50.
  NativePartition MakeInput(int n, uint64_t seed) {
    NativePartition input;
    InlineSerializer serde(heap);
    RootScope scope(heap);
    Rng rng(seed);
    for (int r = 0; r < n; ++r) {
      size_t values_len = 1 + rng.NextBounded(50);
      size_t arr = scope.Push(heap.AllocArray(double_array, values_len));
      for (size_t i = 0; i < values_len; ++i) {
        heap.ASet<double>(scope.Get(arr), static_cast<int64_t>(i), rng.NextDouble(-10, 10));
      }
      size_t vec = scope.Push(heap.AllocObject(dense_vector));
      heap.SetPrim<int32_t>(scope.Get(vec), dense_vector->FindField("numActives")->offset,
                            static_cast<int32_t>(values_len));
      heap.SetRef(scope.Get(vec), dense_vector->FindField("values")->offset, scope.Get(arr));
      size_t lp = scope.Push(heap.AllocObject(labeled_point));
      heap.SetPrim<double>(scope.Get(lp), labeled_point->FindField("label")->offset,
                           rng.NextDouble(-5, 5));
      heap.SetRef(scope.Get(lp), labeled_point->FindField("features")->offset, scope.Get(vec));
      ByteBuffer record;
      serde.WriteRecord(scope.Get(lp), labeled_point, record);
      input.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
    }
    return input;
  }

  // Runs the task with `plan` (null = interpreter fast path) and returns the
  // output partition's bytes.
  std::vector<uint8_t> Run(const NativePartition& input, const SerPlan* plan,
                           const FaultPlan* faults = nullptr, int* aborts = nullptr) {
    SerExecutor exec(heap, wk, layouts, program, *transformed);
    NativePartition output;
    InlineSerializer serde(heap);
    PhaseTimes times;
    TaskIo io;
    io.input = &input;
    io.plan = plan;
    io.faults = faults;
    io.task_ordinal = faults != nullptr ? 0 : -1;
    io.emit_native = [&output](int64_t addr, const Klass* klass, SerRunner&,
                               BuilderStore& builders) {
      builders.Render(addr, klass, output);
    };
    io.emit_heap = [this, &output, &serde](ObjRef ref, const Klass* klass, SerRunner&) {
      ByteBuffer body;
      serde.WriteRecord(ref, klass, body);
      output.AppendRecord(body.data() + 4, static_cast<uint32_t>(body.size() - 4));
    };
    io.on_abort = [&output] { output.Release(); };
    SpecOutcome outcome = exec.RunTaskIo(io, times);
    if (aborts != nullptr) {
      *aborts = outcome.aborts;
    }
    ByteBuffer wire;
    output.SerializeTo(wire);
    return wire.bytes();
  }
};

TEST(VecStageTest, ArrayLoopGatherScatterMatchesAllRunners) {
  VecPipeline p;
  std::shared_ptr<const SerPlan> scalar = p.Compile(false);
  EXPECT_EQ(scalar->vec_loops(), 0);
  NativePartition input = p.MakeInput(64, /*seed=*/17);
  std::vector<uint8_t> reference = p.Run(input, nullptr);  // interpreter
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(p.Run(input, scalar.get()), reference);
  for (int32_t batch : {1, 4, 7, 256}) {
    std::shared_ptr<const SerPlan> vec = p.Compile(true, batch);
    ASSERT_GE(vec->vec_loops(), 1) << "batch " << batch;
    EXPECT_GT(vec->op_counts()[static_cast<size_t>(PlanOpCode::kVecReadCol)], 0);
    EXPECT_GT(vec->op_counts()[static_cast<size_t>(PlanOpCode::kVecWriteCol)], 0);
    EXPECT_STREQ(vec->layout(), "columnar");
    EXPECT_EQ(p.Run(input, vec.get()), reference) << "batch " << batch;
  }
}

// A forced abort mid-partition while the vectorized plan is running: the
// fast path must discard its output (including any in-flight strip state)
// and the slow-path re-execution must reproduce the clean bytes.
TEST(VecStageTest, MidPartitionAbortUnderVecPlanReproducesCleanBytes) {
  VecPipeline p;
  NativePartition input = p.MakeInput(32, /*seed=*/23);
  std::vector<uint8_t> clean = p.Run(input, nullptr);
  for (int32_t batch : {4, 256}) {
    std::shared_ptr<const SerPlan> vec = p.Compile(true, batch);
    ASSERT_GE(vec->vec_loops(), 1);
    FaultPlan faults;
    faults.AbortTask(0, /*record=*/7);  // mid-partition, mid-batch state live
    int aborts = 0;
    EXPECT_EQ(p.Run(input, vec.get(), &faults, &aborts), clean) << "batch " << batch;
    EXPECT_GT(aborts, 0);
  }
}

}  // namespace
}  // namespace gerenuk
