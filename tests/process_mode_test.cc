// Process-executor tests: stages run in forked executor processes under the
// driver-side supervisor, and the stack's core promises survive the move —
// byte-identical output for every executor count, a SIGKILL'd (or SIGSTOP-
// wedged) executor is a recoverable event rerouted through the retry
// machinery, wire-shipped TaskErrors keep their classification, and the
// supervision counters/trace events are visible to the driver. Also the
// deterministic-jitter backoff schedule (RetryPolicy::BackoffMsFor).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/fault.h"
#include "src/support/trace.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

// ---------------------------------------------------------------------------
// Deterministic jitter (RetryPolicy::BackoffMsFor)
// ---------------------------------------------------------------------------

TEST(JitterBackoffTest, ScheduleIsReproducible) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_base_ms = 2;
  policy.backoff_jitter_ms = 7;
  policy.jitter_seed = 42;

  RetryPolicy same = policy;
  std::vector<int64_t> schedule;
  for (int64_t task = 0; task < 6; ++task) {
    // First attempts never wait.
    EXPECT_EQ(policy.BackoffMsFor(task, 1), 0);
    for (int attempt = 2; attempt <= policy.max_attempts; ++attempt) {
      int64_t delay = policy.BackoffMsFor(task, attempt);
      schedule.push_back(delay);
      // Identical policy => identical schedule, delay by delay.
      EXPECT_EQ(same.BackoffMsFor(task, attempt), delay);
      // Exponential floor plus bounded jitter.
      int64_t floor = policy.backoff_base_ms << (attempt - 2);
      EXPECT_GE(delay, floor);
      EXPECT_LE(delay, floor + policy.backoff_jitter_ms);
    }
  }
  // The jitter decorrelates: not every task may hash to the same offset.
  bool any_differ = false;
  for (size_t i = 4; i < schedule.size(); i += 4) {
    any_differ = any_differ || schedule[i] != schedule[0];
  }
  EXPECT_TRUE(any_differ) << "jitter hash degenerate: every task got the same delay";

  RetryPolicy reseeded = policy;
  reseeded.jitter_seed = 43;
  bool seed_matters = false;
  for (int64_t task = 0; task < 6 && !seed_matters; ++task) {
    for (int attempt = 2; attempt <= policy.max_attempts; ++attempt) {
      seed_matters = seed_matters ||
                     reseeded.BackoffMsFor(task, attempt) != policy.BackoffMsFor(task, attempt);
    }
  }
  EXPECT_TRUE(seed_matters);

  RetryPolicy no_jitter = policy;
  no_jitter.backoff_jitter_ms = 0;
  EXPECT_EQ(no_jitter.BackoffMsFor(3, 2), no_jitter.backoff_base_ms);
  EXPECT_EQ(no_jitter.BackoffMsFor(3, 4), no_jitter.backoff_base_ms << 2);
}

// ---------------------------------------------------------------------------
// Process-mode pipelines
// ---------------------------------------------------------------------------

EngineConfig ProcessSparkWith(int workers) {
  EngineConfig config = SparkWith(workers);
  config.execution.process_executors = true;
  config.execution.executor_heartbeat_ms = 1;  // short stages still collect heartbeats
  return config;
}

std::vector<uint8_t> RunSparkPipeline(SparkJob& job, int64_t records) {
  DatasetPtr in = job.MakeInput(records);
  job.engine.ResetMetrics();
  DatasetPtr mapped =
      job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
  DatasetPtr out = job.engine.ReduceByKey(mapped, job.udfs, {}, KeySpec{job.get_key, false},
                                          job.sum_values);
  return DatasetBytes(out);
}

TEST(ProcessModeTest, ByteIdenticalToInProcessAcrossExecutorCounts) {
  std::vector<uint8_t> reference;
  {
    SparkJob in_process(SparkWith(2));
    reference = RunSparkPipeline(in_process, 600);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(in_process.engine.stats().executors_launched, 0);
  }  // destroyed before any fork: the forking driver stays single-threaded
  for (int workers : kWorkerCounts) {
    SparkJob job(ProcessSparkWith(workers));
    EXPECT_EQ(RunSparkPipeline(job, 600), reference) << "executors=" << workers;
    EXPECT_GT(job.engine.stats().executors_launched, 0);
    EXPECT_EQ(job.engine.stats().executor_deaths, 0);
  }
}

TEST(ProcessModeTest, SigkilledExecutorIsRecovered) {
  std::vector<uint8_t> reference;
  {
    SparkJob in_process(SparkWith(2));
    reference = RunSparkPipeline(in_process, 1200);
  }
  for (int workers : kWorkerCounts) {
    EngineConfig config = ProcessSparkWith(workers);
    config.fault.max_task_attempts = 3;
    config.observability.trace = true;
    SparkJob job(config);
    // Kill the executor running the second task of the first (narrow)
    // stage, on its first attempt only: genuine SIGKILL mid-stage.
    job.engine.fault_plan().InjectExecutorKill(job.engine.next_task_ordinal() + 1, SIGKILL,
                                               /*max_attempt=*/1);
    EXPECT_EQ(RunSparkPipeline(job, 1200), reference) << "executors=" << workers;

    const EngineStats& stats = job.engine.stats();
    EXPECT_GE(stats.executor_deaths, 1) << "executors=" << workers;
    EXPECT_GE(stats.executor_relaunches, 1) << "executors=" << workers;
    EXPECT_GE(stats.retries, 1) << "executors=" << workers;
    EXPECT_GT(stats.heartbeats_received, 0) << "executors=" << workers;
    // The supervision counters surface through the unified metrics view...
    MetricsRegistry registry = job.engine.metrics();
    EXPECT_GE(registry.counters().at("executor_deaths"), 1);
    EXPECT_GE(registry.counters().at("executor_relaunches"), 1);
    EXPECT_GT(registry.counters().at("heartbeats_received"), 0);
    // ...and the recovery is visible in the exported Chrome trace.
    std::string json = TraceExporter(*job.engine.trace()).ChromeJson();
    EXPECT_NE(json.find("executor_dead"), std::string::npos);
    EXPECT_NE(json.find("executor_relaunch"), std::string::npos);
  }
}

TEST(ProcessModeTest, WedgedExecutorHitsHeartbeatTimeout) {
  std::vector<uint8_t> reference;
  {
    SparkJob in_process(SparkWith(2));
    reference = RunSparkPipeline(in_process, 400);
  }
  EngineConfig config = ProcessSparkWith(2);
  config.fault.max_task_attempts = 3;
  config.execution.executor_heartbeat_ms = 10;
  config.execution.executor_heartbeat_timeout_ms = 150;
  SparkJob job(config);
  // SIGSTOP wedges the executor without killing it: only the liveness check
  // can reclaim the task (the supervisor SIGKILLs the stopped child).
  job.engine.fault_plan().InjectExecutorKill(job.engine.next_task_ordinal(), SIGSTOP,
                                             /*max_attempt=*/1);
  EXPECT_EQ(RunSparkPipeline(job, 400), reference);
  EXPECT_GE(job.engine.stats().executor_deaths, 1);
  EXPECT_GE(job.engine.stats().executor_relaunches, 1);
}

TEST(ProcessModeTest, WireShippedTaskErrorKeepsClassification) {
  std::vector<uint8_t> reference;
  {
    SparkJob in_process(SparkWith(2));
    reference = RunSparkPipeline(in_process, 400);
  }
  {
    // Retryable: the child survives, ships TaskError{kException} over the
    // wire, and the supervisor requeues within the attempt budget.
    EngineConfig config = ProcessSparkWith(2);
    config.fault.max_task_attempts = 2;
    SparkJob job(config);
    job.engine.fault_plan().InjectException(job.engine.next_task_ordinal() + 1);
    EXPECT_EQ(RunSparkPipeline(job, 400), reference);
    EXPECT_GE(job.engine.stats().retries, 1);
    EXPECT_EQ(job.engine.stats().executor_deaths, 0);  // clean failure, no death
  }
  {
    // Non-retryable: an exhausted attempt budget fails the stage with the
    // original classification intact.
    EngineConfig config = ProcessSparkWith(2);
    config.fault.max_task_attempts = 1;
    SparkJob job(config);
    job.engine.fault_plan().InjectException(job.engine.next_task_ordinal() + 1);
    try {
      RunSparkPipeline(job, 400);
      FAIL() << "exhausted attempts must rethrow";
    } catch (const TaskError& e) {
      EXPECT_EQ(e.kind(), TaskErrorKind::kException);
    }
  }
}

TEST(ProcessModeTest, HadoopJobByteIdenticalToInProcess) {
  std::vector<uint8_t> reference;
  {
    HadoopJob in_process(HadoopWith(2));
    DatasetPtr in = in_process.MakeInput(500);
    in_process.engine.ResetMetrics();
    DatasetPtr out = in_process.engine.RunJob(in, in_process.udfs, in_process.explode,
                                              in_process.pair, KeySpec{in_process.get_key, false},
                                              in_process.sum_values, in_process.sum_values);
    reference = DatasetBytes(out);
    ASSERT_FALSE(reference.empty());
  }
  for (int workers : kWorkerCounts) {
    HadoopConfig config = HadoopWith(workers);
    config.engine.execution.process_executors = true;
    config.engine.execution.executor_heartbeat_ms = 1;
    HadoopJob job(config);
    DatasetPtr in = job.MakeInput(500);
    job.engine.ResetMetrics();
    DatasetPtr out = job.engine.RunJob(in, job.udfs, job.explode, job.pair,
                                       KeySpec{job.get_key, false}, job.sum_values,
                                       job.sum_values);
    EXPECT_EQ(DatasetBytes(out), reference) << "executors=" << workers;
    EXPECT_GT(job.engine.stats().executors_launched, 0);
  }
}

TEST(ProcessModeTest, IntegritySealFailureNamesStagePartitionAttempt) {
  // Satellite: a corrupt-input TaskError must carry (stage, partition,
  // attempt) in its detail string, in any execution mode.
  EngineConfig config = SparkWith(2);
  SparkJob job(config);
  DatasetPtr in = job.MakeInput(200);
  job.engine.fault_plan().InjectCorruption(job.engine.next_task_ordinal() + 2);
  try {
    job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
    FAIL() << "corrupted input must fail the stage";
  } catch (const TaskError& e) {
    EXPECT_EQ(e.kind(), TaskErrorKind::kCorruptInput);
    EXPECT_NE(e.detail().find("stage narrow"), std::string::npos) << e.detail();
    EXPECT_NE(e.detail().find("partition 2"), std::string::npos) << e.detail();
    EXPECT_NE(e.detail().find("attempt 1"), std::string::npos) << e.detail();
  }
}

}  // namespace
}  // namespace gerenuk
