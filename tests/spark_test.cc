// Integration tests for the mini-Spark engine: every operator must produce
// semantically identical results in kBaseline (heap objects + Kryo shuffles)
// and kGerenuk (native buffers + transformed SERs) modes, including under
// forced aborts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/dataflow/spark.h"
#include "src/ir/builder.h"

namespace gerenuk {
namespace {

// A test workload over Pair{key:i64, value:f64} records.
struct PairWorkload {
  SparkEngine engine;
  const Klass* pair;
  const Klass* pair_array;
  SerProgram udfs;
  const Function* double_value;   // map: value *= 2
  const Function* positive_only;  // filter: value > 0
  const Function* explode;        // flatMap: -> [ (key, v), (key+1000, v) ]
  const Function* get_key;        // key extractor
  const Function* sum_values;     // reduce: (a, b) -> (a.key, a.v + b.v)
  const Function* add_broadcast;  // map with broadcast: value += bc.value

  explicit PairWorkload(EngineMode mode, size_t heap_bytes = 48u << 20)
      : engine(EngineConfig{{mode, heap_bytes, GcKind::kGenerational, 3}}) {
    KlassRegistry& reg = engine.heap().klasses();
    pair = reg.DefineClass("Pair", {
                                       {"key", FieldKind::kI64, nullptr, 0},
                                       {"value", FieldKind::kF64, nullptr, 0},
                                   });
    engine.RegisterDataType(pair);
    pair_array = reg.Find("Pair[]");

    {
      Function* f = udfs.AddFunction("double_value");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(pair));
      f->return_type = IrType::Ref(pair);
      int k = b.FieldLoad(rec, pair, "key");
      int v = b.FieldLoad(rec, pair, "value");
      int out = b.NewObject(pair);
      b.FieldStore(out, pair, "key", k);
      int two = b.ConstF(2.0);
      b.FieldStore(out, pair, "value", b.BinOp(BinOpKind::kMul, v, two));
      b.Return(out);
      b.Done();
      double_value = f;
    }
    {
      Function* f = udfs.AddFunction("positive_only");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(pair));
      f->return_type = IrType::I64();
      int v = b.FieldLoad(rec, pair, "value");
      int zero = b.ConstF(0.0);
      b.Return(b.BinOp(BinOpKind::kGt, v, zero));
      b.Done();
      positive_only = f;
    }
    {
      Function* f = udfs.AddFunction("explode");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(pair));
      f->return_type = IrType::Ref(pair_array);
      int k = b.FieldLoad(rec, pair, "key");
      int v = b.FieldLoad(rec, pair, "value");
      int two = b.ConstI(2);
      int arr = b.NewArray(pair_array, two);
      int first = b.NewObject(pair);
      b.FieldStore(first, pair, "key", k);
      b.FieldStore(first, pair, "value", v);
      b.ArrayStore(arr, b.ConstI(0), first);
      int second = b.NewObject(pair);
      int offset = b.ConstI(1000);
      b.FieldStore(second, pair, "key", b.BinOp(BinOpKind::kAdd, k, offset));
      b.FieldStore(second, pair, "value", v);
      b.ArrayStore(arr, b.ConstI(1), second);
      b.Return(arr);
      b.Done();
      explode = f;
    }
    {
      Function* f = udfs.AddFunction("get_key");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(pair));
      f->return_type = IrType::I64();
      b.Return(b.FieldLoad(rec, pair, "key"));
      b.Done();
      get_key = f;
    }
    {
      Function* f = udfs.AddFunction("sum_values");
      FunctionBuilder b(f);
      int a = b.Param("a", IrType::Ref(pair));
      int c = b.Param("b", IrType::Ref(pair));
      f->return_type = IrType::Ref(pair);
      int out = b.NewObject(pair);
      b.FieldStore(out, pair, "key", b.FieldLoad(a, pair, "key"));
      int sum = b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, pair, "value"),
                        b.FieldLoad(c, pair, "value"));
      b.FieldStore(out, pair, "value", sum);
      b.Return(out);
      b.Done();
      sum_values = f;
    }
    {
      Function* f = udfs.AddFunction("add_broadcast");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(pair));
      int bc = b.Param("bc", IrType::Ref(pair));
      f->return_type = IrType::Ref(pair);
      int out = b.NewObject(pair);
      b.FieldStore(out, pair, "key", b.FieldLoad(rec, pair, "key"));
      int sum = b.BinOp(BinOpKind::kAdd, b.FieldLoad(rec, pair, "value"),
                        b.FieldLoad(bc, pair, "value"));
      b.FieldStore(out, pair, "value", sum);
      b.Return(out);
      b.Done();
      add_broadcast = f;
    }
  }

  ObjRef MakePair(int64_t key, double value, RootScope& scope) {
    ObjRef rec = engine.heap().AllocObject(pair);
    engine.heap().SetPrim<int64_t>(rec, pair->FindField("key")->offset, key);
    engine.heap().SetPrim<double>(rec, pair->FindField("value")->offset, value);
    return rec;
  }

  DatasetPtr MakeInput(int64_t count) {
    return engine.Source(pair, count, [this](int64_t i, RootScope& scope) {
      return MakePair(i % 10, (i % 7) - 3.0, scope);
    });
  }

  // Materializes a dataset as sorted (key, value) pairs for comparison.
  std::vector<std::pair<int64_t, double>> Extract(const DatasetPtr& ds) {
    RootScope scope(engine.heap());
    std::vector<size_t> slots = engine.CollectToHeap(ds, scope);
    std::vector<std::pair<int64_t, double>> result;
    for (size_t slot : slots) {
      ObjRef rec = scope.Get(slot);
      result.emplace_back(engine.heap().GetPrim<int64_t>(rec, pair->FindField("key")->offset),
                          engine.heap().GetPrim<double>(rec, pair->FindField("value")->offset));
    }
    std::sort(result.begin(), result.end());
    return result;
  }
};

using Pairs = std::vector<std::pair<int64_t, double>>;

TEST(SparkEngineTest, MapStageMatchesAcrossModes) {
  Pairs results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    PairWorkload w(mode);
    DatasetPtr in = w.MakeInput(500);
    DatasetPtr out = w.engine.RunStage(in, w.udfs, {NarrowOp::Map(w.double_value, w.pair)});
    results[static_cast<int>(mode)] = w.Extract(out);
    EXPECT_EQ(out->TotalRecords(), 500);
  }
  EXPECT_EQ(results[0], results[1]);
  ASSERT_FALSE(results[0].empty());
  EXPECT_EQ(results[0][0].second, results[0][0].second);  // well-formed
}

TEST(SparkEngineTest, FilterStageMatchesAcrossModes) {
  Pairs results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    PairWorkload w(mode);
    DatasetPtr in = w.MakeInput(500);
    DatasetPtr out = w.engine.RunStage(in, w.udfs, {NarrowOp::Filter(w.positive_only)});
    results[static_cast<int>(mode)] = w.Extract(out);
    EXPECT_LT(out->TotalRecords(), 500);
    EXPECT_GT(out->TotalRecords(), 0);
  }
  EXPECT_EQ(results[0], results[1]);
  for (const auto& [k, v] : results[0]) {
    EXPECT_GT(v, 0.0);
  }
}

TEST(SparkEngineTest, MapThenFilterFusedStage) {
  Pairs results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    PairWorkload w(mode);
    DatasetPtr in = w.MakeInput(400);
    DatasetPtr out = w.engine.RunStage(
        in, w.udfs,
        {NarrowOp::Map(w.double_value, w.pair), NarrowOp::Filter(w.positive_only)});
    results[static_cast<int>(mode)] = w.Extract(out);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(SparkEngineTest, FlatMapStageMatchesAcrossModes) {
  Pairs results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    PairWorkload w(mode);
    DatasetPtr in = w.MakeInput(200);
    DatasetPtr out = w.engine.RunStage(in, w.udfs, {NarrowOp::FlatMap(w.explode, w.pair)});
    EXPECT_EQ(out->TotalRecords(), 400);
    results[static_cast<int>(mode)] = w.Extract(out);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(SparkEngineTest, ReduceByKeyMatchesAcrossModes) {
  Pairs results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    PairWorkload w(mode);
    DatasetPtr in = w.MakeInput(1000);
    DatasetPtr out =
        w.engine.ReduceByKey(in, w.udfs, {}, KeySpec{w.get_key, false}, w.sum_values);
    EXPECT_EQ(out->TotalRecords(), 10);  // keys are i % 10
    results[static_cast<int>(mode)] = w.Extract(out);
  }
  EXPECT_EQ(results[0], results[1]);
  // Independent reference: sum per key computed directly.
  std::map<int64_t, double> expected;
  for (int64_t i = 0; i < 1000; ++i) {
    expected[i % 10] += (i % 7) - 3.0;
  }
  for (const auto& [k, v] : results[0]) {
    EXPECT_NEAR(v, expected[k], 1e-9) << "key " << k;
  }
}

TEST(SparkEngineTest, ReduceByKeyWithPreOps) {
  Pairs results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    PairWorkload w(mode);
    DatasetPtr in = w.MakeInput(600);
    DatasetPtr out = w.engine.ReduceByKey(in, w.udfs,
                                          {NarrowOp::Map(w.double_value, w.pair),
                                           NarrowOp::Filter(w.positive_only)},
                                          KeySpec{w.get_key, false}, w.sum_values);
    results[static_cast<int>(mode)] = w.Extract(out);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(SparkEngineTest, BroadcastVariable) {
  Pairs results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    PairWorkload w(mode);
    DatasetPtr in = w.MakeInput(300);
    RootScope scope(w.engine.heap());
    size_t bc_slot = scope.Push(w.MakePair(0, 100.0, scope));
    BroadcastVar bc = w.engine.MakeBroadcast(scope.Get(bc_slot), w.pair);
    DatasetPtr out = w.engine.RunStage(in, w.udfs, {NarrowOp::Map(w.add_broadcast, w.pair)}, &bc);
    results[static_cast<int>(mode)] = w.Extract(out);
  }
  EXPECT_EQ(results[0], results[1]);
  for (const auto& [k, v] : results[0]) {
    EXPECT_GE(v, 95.0);  // original values were >= -3
  }
}

TEST(SparkEngineTest, JoinByKeyMatchesAcrossModes) {
  Pairs results[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    PairWorkload w(mode);
    // Left: one record per key 0..9; right: 300 records keyed i%10.
    DatasetPtr left = w.engine.Source(w.pair, 10, [&w](int64_t i, RootScope& scope) {
      return w.MakePair(i, i * 10.0, scope);
    });
    DatasetPtr right = w.MakeInput(300);
    DatasetPtr out = w.engine.JoinByKey(left, KeySpec{w.get_key, false}, right,
                                        KeySpec{w.get_key, false}, w.udfs, w.sum_values, w.pair);
    EXPECT_EQ(out->TotalRecords(), 300);
    results[static_cast<int>(mode)] = w.Extract(out);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(SparkEngineTest, GerenukFastPathCommitsAndBaselineSerializes) {
  PairWorkload gw(EngineMode::kGerenuk);
  DatasetPtr gin = gw.MakeInput(500);
  gw.engine.ResetMetrics();
  gw.engine.ReduceByKey(gin, gw.udfs, {}, KeySpec{gw.get_key, false}, gw.sum_values);
  EXPECT_GT(gw.engine.stats().fast_path_commits, 0);
  EXPECT_EQ(gw.engine.stats().aborts, 0);
  EXPECT_EQ(gw.engine.stats().times.Get(Phase::kSerialize), 0);
  EXPECT_EQ(gw.engine.stats().times.Get(Phase::kDeserialize), 0);
  EXPECT_GT(gw.engine.stats().transform.statements_transformed, 0);

  PairWorkload bw(EngineMode::kBaseline);
  DatasetPtr bin = bw.MakeInput(500);
  bw.engine.ResetMetrics();
  bw.engine.ReduceByKey(bin, bw.udfs, {}, KeySpec{bw.get_key, false}, bw.sum_values);
  EXPECT_GT(bw.engine.stats().times.Get(Phase::kSerialize), 0);
  EXPECT_GT(bw.engine.stats().times.Get(Phase::kDeserialize), 0);
}

TEST(SparkEngineTest, ForcedAbortsStillProduceCorrectResults) {
  Pairs expected;
  {
    PairWorkload w(EngineMode::kGerenuk);
    DatasetPtr in = w.MakeInput(400);
    DatasetPtr out =
        w.engine.ReduceByKey(in, w.udfs, {}, KeySpec{w.get_key, false}, w.sum_values);
    expected = w.Extract(out);
  }
  PairWorkload w(EngineMode::kGerenuk);
  DatasetPtr in = w.MakeInput(400);
  w.engine.ResetMetrics();
  w.engine.ForceAborts(2);  // two map tasks abort halfway
  DatasetPtr out = w.engine.ReduceByKey(in, w.udfs, {}, KeySpec{w.get_key, false}, w.sum_values);
  EXPECT_EQ(w.engine.stats().aborts, 2);
  EXPECT_EQ(w.Extract(out), expected);
}

TEST(SparkEngineTest, PeakMemoryTracked) {
  PairWorkload w(EngineMode::kGerenuk);
  DatasetPtr in = w.MakeInput(2000);
  w.engine.ResetMetrics();
  w.engine.RunStage(in, w.udfs, {NarrowOp::Map(w.double_value, w.pair)});
  EXPECT_GT(w.engine.peak_memory_bytes(), 0);
}

}  // namespace
}  // namespace gerenuk
