// Shared engine-level test fixture: the Pair{key:i64, value:f64} workload,
// usable with either engine, plus the worker counts and byte-dump helper the
// determinism tests sweep over. Used by scheduler_test.cc (scheduler
// determinism) and fault_tolerance_test.cc (fault recovery determinism).
#ifndef TESTS_PAIR_JOB_H_
#define TESTS_PAIR_JOB_H_

#include <cstdint>
#include <vector>

#include "src/dataflow/spark.h"
#include "src/ir/builder.h"
#include "src/mapreduce/hadoop.h"

namespace gerenuk {

constexpr int kWorkerCounts[] = {1, 2, 8};

// The Pair workload's klasses + SER programs, separable from engine
// ownership so a service-mode EngineSetup can build them on pooled engines
// it does not own (see tests/service_test.cc).
struct PairUdfs {
  const Klass* pair = nullptr;
  const Klass* pair_array = nullptr;
  SerProgram udfs;
  const Function* double_value = nullptr;  // map: value *= 2
  const Function* explode = nullptr;       // flatMap: -> [ (key, v), (key+1000, v) ]
  const Function* get_key = nullptr;       // key extractor
  const Function* sum_values = nullptr;    // reduce: (a, b) -> (a.key, a.v + b.v)
};

// Defines the Pair klass on `engine` and builds the four UDFs into `out`.
// Call at most once per engine (klass names are unique per registry).
template <typename Engine>
inline void BuildPairUdfs(Engine& engine, PairUdfs* out) {
  KlassRegistry& reg = engine.heap().klasses();
  const Klass* pair = reg.DefineClass("Pair", {
                                                  {"key", FieldKind::kI64, nullptr, 0},
                                                  {"value", FieldKind::kF64, nullptr, 0},
                                              });
  engine.RegisterDataType(pair);
  out->pair = pair;
  out->pair_array = reg.Find("Pair[]");
  const Klass* pair_array = out->pair_array;
  SerProgram& udfs = out->udfs;
  {
      Function* f = udfs.AddFunction("double_value");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(pair));
      f->return_type = IrType::Ref(pair);
      int k = b.FieldLoad(rec, pair, "key");
      int v = b.FieldLoad(rec, pair, "value");
      int result = b.NewObject(pair);
      b.FieldStore(result, pair, "key", k);
      int two = b.ConstF(2.0);
      b.FieldStore(result, pair, "value", b.BinOp(BinOpKind::kMul, v, two));
      b.Return(result);
      b.Done();
      out->double_value = f;
    }
    {
      Function* f = udfs.AddFunction("explode");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(pair));
      f->return_type = IrType::Ref(pair_array);
      int k = b.FieldLoad(rec, pair, "key");
      int v = b.FieldLoad(rec, pair, "value");
      int two = b.ConstI(2);
      int arr = b.NewArray(pair_array, two);
      int first = b.NewObject(pair);
      b.FieldStore(first, pair, "key", k);
      b.FieldStore(first, pair, "value", v);
      b.ArrayStore(arr, b.ConstI(0), first);
      int second = b.NewObject(pair);
      int offset = b.ConstI(1000);
      b.FieldStore(second, pair, "key", b.BinOp(BinOpKind::kAdd, k, offset));
      b.FieldStore(second, pair, "value", v);
      b.ArrayStore(arr, b.ConstI(1), second);
      b.Return(arr);
      b.Done();
      out->explode = f;
    }
    {
      Function* f = udfs.AddFunction("get_key");
      FunctionBuilder b(f);
      int rec = b.Param("rec", IrType::Ref(pair));
      f->return_type = IrType::I64();
      b.Return(b.FieldLoad(rec, pair, "key"));
      b.Done();
      out->get_key = f;
    }
    {
      Function* f = udfs.AddFunction("sum_values");
      FunctionBuilder b(f);
      int a = b.Param("a", IrType::Ref(pair));
      int c = b.Param("b", IrType::Ref(pair));
      f->return_type = IrType::Ref(pair);
      int result = b.NewObject(pair);
      b.FieldStore(result, pair, "key", b.FieldLoad(a, pair, "key"));
      int sum = b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, pair, "value"),
                        b.FieldLoad(c, pair, "value"));
      b.FieldStore(result, pair, "value", sum);
      b.Return(result);
      b.Done();
      out->sum_values = f;
    }
}

// Deterministic Pair input: key = i % 10, value = (i % 7) - 3.0.
template <typename Engine>
inline DatasetPtr MakePairInput(Engine& engine, const PairUdfs& udfs, int64_t count) {
  const Klass* k = udfs.pair;
  Heap* h = &engine.heap();
  return engine.Source(k, count, [h, k](int64_t i, RootScope&) {
    ObjRef rec = h->AllocObject(k);
    h->SetPrim<int64_t>(rec, k->FindField("key")->offset, i % 10);
    h->SetPrim<double>(rec, k->FindField("value")->offset, (i % 7) - 3.0);
    return rec;
  });
}

// The shared Pair{key:i64, value:f64} workload, usable with either engine.
template <typename Engine, typename Config>
struct PairJob : PairUdfs {
  Engine engine;

  explicit PairJob(const Config& config) : engine(config) { BuildPairUdfs(engine, this); }

  DatasetPtr MakeInput(int64_t count) { return MakePairInput(engine, *this, count); }
};

using SparkJob = PairJob<SparkEngine, EngineConfig>;
using HadoopJob = PairJob<HadoopEngine, HadoopConfig>;

inline EngineConfig SparkWith(int workers) {
  EngineConfig config;
  config.execution.mode = EngineMode::kGerenuk;
  config.execution.heap_bytes = 24u << 20;
  config.execution.num_partitions = 4;
  config.execution.num_workers = workers;
  return config;
}

inline HadoopConfig HadoopWith(int workers) {
  HadoopConfig config;
  config.engine.execution.mode = EngineMode::kGerenuk;
  config.engine.execution.heap_bytes = 24u << 20;
  config.engine.execution.num_partitions = 4;
  config.engine.execution.num_workers = workers;
  config.num_reducers = 3;
  config.sort_buffer_bytes = 1u << 14;  // force several spills per map task
  return config;
}

// Concatenated record bytes of a Gerenuk dataset, partition by partition.
inline std::vector<uint8_t> DatasetBytes(const DatasetPtr& ds) {
  std::vector<uint8_t> bytes;
  for (const NativePartition& part : ds->native_parts) {
    for (size_t r = 0; r < part.record_count(); ++r) {
      const uint8_t* p = reinterpret_cast<const uint8_t*>(part.record_addr(r));
      bytes.insert(bytes.end(), p, p + part.record_size(r));
    }
  }
  return bytes;
}

}  // namespace gerenuk

#endif  // TESTS_PAIR_JOB_H_
