// Signature-keyed SerPlan cache: canonical program signatures (what must
// match for a hit, what must differ for a miss), engine-level hit behavior
// with byte-identical outputs, and LRU eviction under a byte budget.
#include "src/exec/plan_cache.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/dataflow/spark.h"
#include "src/support/fnv.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

// ---------------------------------------------------------------------------
// Canonical program signatures
// ---------------------------------------------------------------------------

TEST(ProgramSignatureTest, StableAcrossEngines) {
  // Two independent engines with identical klass schemas and programs must
  // produce the same signature — that is what makes repeat submissions from
  // different sessions hit the cache of whichever pooled engine they land on.
  SparkJob a(SparkWith(1));
  SparkJob b(SparkWith(1));
  ProgramSignature sig_a =
      ComputeProgramSignature(EngineMode::kGerenuk, a.engine.layouts(), a.udfs, {a.pair});
  ProgramSignature sig_b =
      ComputeProgramSignature(EngineMode::kGerenuk, b.engine.layouts(), b.udfs, {b.pair});
  ASSERT_TRUE(sig_a.valid());
  EXPECT_EQ(sig_a.text, sig_b.text);
  EXPECT_EQ(sig_a.hash, sig_b.hash);
}

TEST(ProgramSignatureTest, EngineModeChangesSignature) {
  SparkJob job(SparkWith(1));
  ProgramSignature gerenuk = ComputeProgramSignature(EngineMode::kGerenuk, job.engine.layouts(),
                                                     job.udfs, {job.pair});
  ProgramSignature baseline = ComputeProgramSignature(EngineMode::kBaseline, job.engine.layouts(),
                                                      job.udfs, {job.pair});
  EXPECT_NE(gerenuk.text, baseline.text);
  EXPECT_NE(gerenuk.hash, baseline.hash);
}

TEST(ProgramSignatureTest, KlassLayoutChangesSignature) {
  // Same program text, same klass name, different field layout: the schema
  // line in the signature must force a miss (a cached plan bakes in offsets).
  EngineConfig config = SparkWith(1);
  SparkEngine a(config);
  SparkEngine b(config);
  auto define = [](SparkEngine& engine, FieldKind value_kind) {
    return engine.heap().klasses().DefineClass(
        "Pair", {{"key", FieldKind::kI64, nullptr, 0}, {"value", value_kind, nullptr, 0}});
  };
  const Klass* pair_a = define(a, FieldKind::kF64);
  const Klass* pair_b = define(b, FieldKind::kI64);
  a.RegisterDataType(pair_a);
  b.RegisterDataType(pair_b);
  auto build_get_key = [](SerProgram* program, const Klass* pair) {
    Function* f = program->AddFunction("get_key");
    FunctionBuilder builder(f);
    int rec = builder.Param("rec", IrType::Ref(pair));
    f->return_type = IrType::I64();
    builder.Return(builder.FieldLoad(rec, pair, "key"));
    builder.Done();
  };
  SerProgram prog_a;
  SerProgram prog_b;
  build_get_key(&prog_a, pair_a);
  build_get_key(&prog_b, pair_b);
  ProgramSignature sig_a =
      ComputeProgramSignature(EngineMode::kGerenuk, a.layouts(), prog_a, {pair_a});
  ProgramSignature sig_b =
      ComputeProgramSignature(EngineMode::kGerenuk, b.layouts(), prog_b, {pair_b});
  EXPECT_NE(sig_a.text, sig_b.text);
  EXPECT_NE(sig_a.hash, sig_b.hash);
}

TEST(ProgramSignatureTest, BroadcastShapeChangesSignature) {
  SparkJob job(SparkWith(1));
  ProgramSignature without = ComputeProgramSignature(EngineMode::kGerenuk, job.engine.layouts(),
                                                     job.udfs, {job.pair});
  ProgramSignature with_broadcast = ComputeProgramSignature(
      EngineMode::kGerenuk, job.engine.layouts(), job.udfs, {job.pair, job.pair});
  EXPECT_NE(without.text, with_broadcast.text);
  EXPECT_NE(without.hash, with_broadcast.hash);
}

TEST(ProgramSignatureTest, VecConfigChangesSignature) {
  // Plans compiled under different vectorization configs are different
  // machine code (vec opcodes, batch geometry, bail knob): each VecSignature
  // field must change the canonical text so cache hits never cross configs.
  SparkJob job(SparkWith(1));
  auto sig = [&](const VecSignature& vec) {
    return ComputeProgramSignature(EngineMode::kGerenuk, job.engine.layouts(), job.udfs,
                                   {job.pair}, vec);
  };
  ProgramSignature def = sig(VecSignature());
  // The defaulted parameter must mean exactly the default VecSignature.
  ProgramSignature implicit =
      ComputeProgramSignature(EngineMode::kGerenuk, job.engine.layouts(), job.udfs, {job.pair});
  EXPECT_EQ(def.text, implicit.text);
  EXPECT_EQ(def.hash, implicit.hash);
  EXPECT_NE(def.text.find("vec=on"), std::string::npos);

  VecSignature off;
  off.vectorize = false;
  VecSignature batch;
  batch.vector_batch_size = 64;
  VecSignature bail;
  bail.vec_bail_after_strips = 2;
  for (const VecSignature& other : {off, batch, bail}) {
    ProgramSignature s = sig(other);
    EXPECT_NE(s.text, def.text);
    EXPECT_NE(s.hash, def.hash);
  }
  EXPECT_NE(sig(off).text.find("vec=off"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine-level cache behavior
// ---------------------------------------------------------------------------

// Two engines sharing one service-mode cache, identical program, different
// vec configs: the second submission must miss and insert its own entry —
// a vec plan handed to a vectorize-off engine (or vice versa) would silently
// change the executed opcode stream.
TEST(PlanCacheEngineTest, VecConfigNeverSharesCacheEntries) {
  PlanCache cache;
  std::vector<uint8_t> reference;
  for (bool vectorize : {true, false}) {
    EngineConfig config = SparkWith(1);
    config.execution.vectorize = vectorize;
    SparkJob job(config);
    job.engine.set_plan_cache(&cache);
    DatasetPtr out = job.engine.RunStage(job.MakeInput(300), job.udfs,
                                         {NarrowOp::Map(job.double_value, job.pair)});
    std::vector<uint8_t> bytes = DatasetBytes(out);
    ASSERT_FALSE(bytes.empty());
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference);  // different plans, same output bytes
    }
  }
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().insertions, 2);
}

TEST(PlanCacheEngineTest, RepeatStageHitsWithByteIdenticalOutput) {
  SparkJob job(SparkWith(2));
  PlanCache cache;
  job.engine.set_plan_cache(&cache);

  DatasetPtr in = job.MakeInput(400);
  DatasetPtr first =
      job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().insertions, 1);
  EXPECT_EQ(job.engine.stats().plans_compiled, 1);
  EXPECT_EQ(job.engine.stats().plan_cache_hits, 0);

  DatasetPtr second =
      job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(job.engine.stats().plans_compiled, 1) << "cache hit must skip CompilePlan";
  EXPECT_EQ(job.engine.stats().plan_cache_hits, 1);
  EXPECT_EQ(DatasetBytes(first), DatasetBytes(second));

  // Reference run on a cache-less engine: the cached fast path must be
  // byte-identical to a from-scratch compile.
  SparkJob fresh(SparkWith(2));
  DatasetPtr reference = fresh.engine.RunStage(fresh.MakeInput(400), fresh.udfs,
                                               {NarrowOp::Map(fresh.double_value, fresh.pair)});
  EXPECT_EQ(DatasetBytes(second), DatasetBytes(reference));
}

TEST(PlanCacheEngineTest, DifferentOpsMiss) {
  SparkJob job(SparkWith(1));
  PlanCache cache;
  job.engine.set_plan_cache(&cache);
  DatasetPtr in = job.MakeInput(100);
  job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
  job.engine.RunStage(in, job.udfs, {NarrowOp::FlatMap(job.explode, job.pair)});
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(PlanCacheEngineTest, ReduceByKeyReusesEveryCompiledProgram) {
  SparkJob job(SparkWith(2));
  PlanCache cache;
  job.engine.set_plan_cache(&cache);
  DatasetPtr in = job.MakeInput(300);
  DatasetPtr first = job.engine.ReduceByKey(in, job.udfs, {}, KeySpec{job.get_key, false},
                                            job.sum_values);
  const PlanCache::Stats after_first = cache.stats();
  EXPECT_EQ(after_first.hits, 0);
  EXPECT_GT(after_first.misses, 0);
  DatasetPtr second = job.engine.ReduceByKey(in, job.udfs, {}, KeySpec{job.get_key, false},
                                             job.sum_values);
  const PlanCache::Stats after_second = cache.stats();
  EXPECT_EQ(after_second.misses, after_first.misses) << "repeat job must not recompile";
  EXPECT_EQ(after_second.hits, after_first.misses) << "every compiled program must hit";
  EXPECT_EQ(DatasetBytes(first), DatasetBytes(second));
}

TEST(PlanCacheEngineTest, UnusedWhenPlanCompilerOff) {
  EngineConfig config = SparkWith(1);
  config.execution.use_plan_compiler = false;
  SparkJob job(config);
  PlanCache cache;
  job.engine.set_plan_cache(&cache);
  job.engine.RunStage(job.MakeInput(100), job.udfs,
                      {NarrowOp::Map(job.double_value, job.pair)});
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.stats().entries, 0);
}

// ---------------------------------------------------------------------------
// LRU + byte budget (cache in isolation, synthetic entries)
// ---------------------------------------------------------------------------

PlanCache::Entry SyntheticEntry() {
  PlanCache::Entry entry;
  entry.transformed = std::make_shared<SerProgram>();
  return entry;
}

ProgramSignature Sig(const std::string& text) {
  return ProgramSignature{Fnv1aDigest(text.data(), text.size()), text};
}

TEST(PlanCacheLruTest, EvictsLeastRecentlyUsedUnderBudget) {
  const size_t per_entry = PlanCache::EstimateBytes("a", SyntheticEntry().transformed.get(),
                                                    nullptr);
  PlanCache cache(2 * per_entry + per_entry / 2);  // room for two entries
  cache.Insert(Sig("a"), SyntheticEntry());
  cache.Insert(Sig("b"), SyntheticEntry());
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 0);

  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup(Sig("a"), nullptr));
  cache.Insert(Sig("c"), SyntheticEntry());
  EXPECT_EQ(cache.stats().entries, 2);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.Lookup(Sig("a"), nullptr));
  EXPECT_FALSE(cache.Lookup(Sig("b"), nullptr));
  EXPECT_TRUE(cache.Lookup(Sig("c"), nullptr));
}

TEST(PlanCacheLruTest, OversizedEntryStaysUntilDisplaced) {
  PlanCache cache(1);  // smaller than any entry
  cache.Insert(Sig("big"), SyntheticEntry());
  EXPECT_EQ(cache.stats().entries, 1) << "the sole entry is never evicted by its own insert";
  EXPECT_TRUE(cache.Lookup(Sig("big"), nullptr));
  cache.Insert(Sig("bigger"), SyntheticEntry());
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_FALSE(cache.Lookup(Sig("big"), nullptr));
  EXPECT_TRUE(cache.Lookup(Sig("bigger"), nullptr));
}

TEST(PlanCacheLruTest, ReplaceAndClear) {
  PlanCache cache;
  cache.Insert(Sig("a"), SyntheticEntry());
  cache.Insert(Sig("a"), SyntheticEntry());
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.stats().insertions, 2);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes, 0);
  EXPECT_FALSE(cache.Lookup(Sig("a"), nullptr));
}

// Regression pin: replacing a key's entry must account only the new entry's
// bytes — the old footprint is subtracted, not leaked. A leak here would
// inflate stats().bytes on every replacement until the budget evicted live
// entries that actually fit.
TEST(PlanCacheLruTest, ReplacementAccountsOnlyTheNewEntryBytes) {
  PlanCache cache;
  PlanCache::Entry small = SyntheticEntry();
  PlanCache::Entry large = SyntheticEntry();
  large.plan = std::make_shared<SerPlan>();  // same key, bigger footprint
  const int64_t small_bytes = static_cast<int64_t>(
      PlanCache::EstimateBytes("a", small.transformed.get(), nullptr));
  const int64_t large_bytes = static_cast<int64_t>(
      PlanCache::EstimateBytes("a", large.transformed.get(), large.plan.get()));
  ASSERT_GT(large_bytes, small_bytes);

  cache.Insert(Sig("a"), std::move(small));
  EXPECT_EQ(cache.stats().bytes, small_bytes);
  cache.Insert(Sig("a"), std::move(large));
  EXPECT_EQ(cache.stats().bytes, large_bytes) << "old entry's bytes must not linger";
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.stats().insertions, 2);
  EXPECT_EQ(cache.stats().evictions, 0) << "a replacement is not an eviction";

  // And shrinking back down must not go negative or stick high.
  cache.Insert(Sig("a"), SyntheticEntry());
  EXPECT_EQ(cache.stats().bytes, small_bytes);
}

}  // namespace
}  // namespace gerenuk
