// End-to-end tests of the speculative execution engine: the transformed fast
// path over native buffers must produce byte-identical output to the
// original slow path over heap objects (DESIGN.md invariant 3); aborts must
// discard fast-path work, leave the input intact, and re-execute the slow
// path (invariant 4).
#include <gtest/gtest.h>

#include <vector>

#include "src/analysis/layout.h"
#include "src/analysis/ser_analyzer.h"
#include "src/exec/ser_executor.h"
#include "src/ir/builder.h"
#include "src/nativebuf/record_builder.h"
#include "src/runtime/roots.h"
#include "src/serde/inline_serializer.h"
#include "src/support/rng.h"
#include "src/transform/transformer.h"

namespace gerenuk {
namespace {

HeapConfig TestHeap() {
  HeapConfig config;
  config.capacity_bytes = 32 << 20;
  config.gc = GcKind::kGenerational;
  return config;
}

// The LabeledPoint pipeline shared by most tests.
struct Pipeline {
  Heap heap{TestHeap()};
  WellKnown wk{heap};
  const Klass* double_array;
  const Klass* dense_vector;
  const Klass* labeled_point;
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  SerProgram program;
  std::unique_ptr<SerProgram> transformed;

  Pipeline() {
    KlassRegistry& reg = heap.klasses();
    double_array = reg.Find("f64[]");
    dense_vector = reg.DefineClass("DenseVector", {
                                                      {"numActives", FieldKind::kI32, nullptr, 0},
                                                      {"values", FieldKind::kRef, double_array, 0},
                                                  });
    labeled_point =
        reg.DefineClass("LabeledPoint", {
                                            {"label", FieldKind::kF64, nullptr, 0},
                                            {"features", FieldKind::kRef, dense_vector, 0},
                                        });
    std::string error;
    GERENUK_CHECK(layouts.AnalyzeTopLevel(labeled_point, &error)) << error;
  }

  // scale: out.label = in.label * 2; out.values[i] = in.values[i] + 1.
  void BuildScaleProgram() {
    Function* udf = program.AddFunction("scale");
    {
      FunctionBuilder b(udf);
      int lp = b.Param("lp", IrType::Ref(labeled_point));
      udf->return_type = IrType::Ref(labeled_point);
      int label = b.FieldLoad(lp, labeled_point, "label");
      int vec = b.FieldLoad(lp, labeled_point, "features");
      int values = b.FieldLoad(vec, dense_vector, "values");
      int len = b.ArrayLength(values);
      int new_values = b.NewArray(double_array, len);
      int one = b.ConstF(1.0);
      b.For(len, [&](int i) {
        int v = b.ArrayLoad(values, i, IrType::F64());
        int v1 = b.BinOp(BinOpKind::kAdd, v, one);
        b.ArrayStore(new_values, i, v1);
      });
      int new_vec = b.NewObject(dense_vector);
      int num = b.FieldLoad(vec, dense_vector, "numActives");
      b.FieldStore(new_vec, dense_vector, "numActives", num);
      b.FieldStore(new_vec, dense_vector, "values", new_values);
      int new_lp = b.NewObject(labeled_point);
      int two = b.ConstF(2.0);
      int doubled = b.BinOp(BinOpKind::kMul, label, two);
      b.FieldStore(new_lp, labeled_point, "label", doubled);
      b.FieldStore(new_lp, labeled_point, "features", new_vec);
      b.Return(new_lp);
      b.Done();
    }
    Function* body = program.AddFunction("task_body");
    {
      FunctionBuilder b(body);
      int rec = b.Deserialize(labeled_point);
      int out = b.Call(udf, {rec});
      b.Serialize(out);
      b.Return();
      b.Done();
    }
    program.body = body;
    Compile();
  }

  // filter: emit the record unchanged iff label > threshold (pass-through).
  void BuildFilterProgram(double threshold) {
    Function* body = program.AddFunction("task_body");
    FunctionBuilder b(body);
    int rec = b.Deserialize(labeled_point);
    int label = b.FieldLoad(rec, labeled_point, "label");
    int thresh = b.ConstF(threshold);
    int keep = b.BinOp(BinOpKind::kGt, label, thresh);
    b.If(keep, [&] { b.Serialize(rec); });
    b.Return();
    b.Done();
    program.body = body;
    Compile();
  }

  void Compile() {
    SerAnalyzer analyzer(program, layouts);
    SerAnalysis analysis = analyzer.Run();
    Transformer transformer(program, analysis, layouts);
    TransformResult result = transformer.Run();
    transformed = std::move(result.transformed);
  }

  // Builds a native input partition of `n` random LabeledPoints.
  NativePartition MakeInput(int n, uint64_t seed) {
    NativePartition input;
    InlineSerializer serde(heap);
    RootScope scope(heap);
    Rng rng(seed);
    for (int r = 0; r < n; ++r) {
      size_t values_len = 1 + rng.NextBounded(8);
      size_t arr = scope.Push(heap.AllocArray(double_array, values_len));
      for (size_t i = 0; i < values_len; ++i) {
        heap.ASet<double>(scope.Get(arr), static_cast<int64_t>(i), rng.NextDouble(-10, 10));
      }
      size_t vec = scope.Push(heap.AllocObject(dense_vector));
      heap.SetPrim<int32_t>(scope.Get(vec), dense_vector->FindField("numActives")->offset,
                            static_cast<int32_t>(values_len));
      heap.SetRef(scope.Get(vec), dense_vector->FindField("values")->offset, scope.Get(arr));
      size_t lp = scope.Push(heap.AllocObject(labeled_point));
      heap.SetPrim<double>(scope.Get(lp), labeled_point->FindField("label")->offset,
                           rng.NextDouble(-5, 5));
      heap.SetRef(scope.Get(lp), labeled_point->FindField("features")->offset, scope.Get(vec));

      ByteBuffer record;
      serde.WriteRecord(scope.Get(lp), labeled_point, record);
      input.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
    }
    return input;
  }
};

std::vector<uint8_t> PartitionBytes(const NativePartition& p) {
  ByteBuffer buf;
  p.SerializeTo(buf);
  return buf.bytes();
}

TEST(NativePartitionTest, AppendAndIterate) {
  NativePartition p;
  uint8_t rec1[] = {1, 2, 3, 4};
  uint8_t rec2[] = {5, 6};
  int64_t a1 = p.AppendRecord(rec1, 4);
  int64_t a2 = p.AppendRecord(rec2, 2);
  EXPECT_EQ(p.record_count(), 2u);
  EXPECT_EQ(p.record_addr(0), a1);
  EXPECT_EQ(p.record_addr(1), a2);
  EXPECT_EQ(p.record_size(0), 4u);
  EXPECT_EQ(p.record_size(1), 2u);
  EXPECT_EQ(*reinterpret_cast<const uint8_t*>(a1), 1);
  EXPECT_EQ(*reinterpret_cast<const uint8_t*>(a2 + 1), 6);
}

TEST(NativePartitionTest, WireRoundTrip) {
  NativePartition p;
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> rec(static_cast<size_t>(i % 17 + 1), static_cast<uint8_t>(i));
    p.AppendRecord(rec.data(), static_cast<uint32_t>(rec.size()));
  }
  ByteBuffer wire;
  p.SerializeTo(wire);
  ByteReader reader(wire.bytes());
  NativePartition q = NativePartition::Parse(reader);
  EXPECT_EQ(q.record_count(), 100u);
  EXPECT_EQ(PartitionBytes(p), PartitionBytes(q));
}

TEST(NativePartitionTest, AddressesStableAcrossGrowth) {
  NativePartition p;
  uint8_t byte = 42;
  int64_t first = p.AppendRecord(&byte, 1);
  for (int i = 0; i < 10000; ++i) {
    std::vector<uint8_t> rec(257, static_cast<uint8_t>(i));
    p.AppendRecord(rec.data(), static_cast<uint32_t>(rec.size()));
  }
  EXPECT_EQ(*reinterpret_cast<const uint8_t*>(first), 42);
}

TEST(NativePartitionTest, TrackerSeesAllocationAndRelease) {
  MemoryTracker tracker;
  {
    NativePartition p(&tracker);
    uint8_t rec[16] = {0};
    p.AppendRecord(rec, 16);
    EXPECT_GT(tracker.live_bytes(), 0);
  }
  EXPECT_EQ(tracker.live_bytes(), 0);
  EXPECT_GT(tracker.peak_bytes(), 0);
}

TEST(RecordBuilderTest, BuildAndRenderMatchesInlineSerializer) {
  Pipeline p;
  BuilderStore builders(p.layouts);

  // Build natively: new double[3]{1,2,3}; new DenseVector{3, arr};
  // new LabeledPoint{0.5, vec} — attached out of declaration order on
  // purpose (the deferred-placement machinery must not care).
  int64_t arr = builders.NewArray(p.double_array, 3);
  builders.ArrayStore(arr, 0, FieldKind::kF64, 0, 1.0);
  builders.ArrayStore(arr, 1, FieldKind::kF64, 0, 2.0);
  builders.ArrayStore(arr, 2, FieldKind::kF64, 0, 3.0);
  int64_t lp = builders.NewRecord(p.labeled_point);
  builders.WriteField(lp, 0, FieldKind::kF64, 0, 0.5);  // label is field 0
  int64_t vec = builders.NewRecord(p.dense_vector);
  builders.AttachField(lp, 1, vec);  // features: attach before filling
  builders.AttachField(vec, 1, arr);  // values
  builders.WriteField(vec, 0, FieldKind::kI32, 3, 0);  // numActives

  NativePartition out;
  builders.Render(lp, p.labeled_point, out);

  // Reference bytes from the heap-side inline serializer.
  RootScope scope(p.heap);
  size_t harr = scope.Push(p.heap.AllocArray(p.double_array, 3));
  for (int i = 0; i < 3; ++i) {
    p.heap.ASet<double>(scope.Get(harr), i, i + 1.0);
  }
  size_t hvec = scope.Push(p.heap.AllocObject(p.dense_vector));
  p.heap.SetPrim<int32_t>(scope.Get(hvec), p.dense_vector->FindField("numActives")->offset, 3);
  p.heap.SetRef(scope.Get(hvec), p.dense_vector->FindField("values")->offset, scope.Get(harr));
  size_t hlp = scope.Push(p.heap.AllocObject(p.labeled_point));
  p.heap.SetPrim<double>(scope.Get(hlp), p.labeled_point->FindField("label")->offset, 0.5);
  p.heap.SetRef(scope.Get(hlp), p.labeled_point->FindField("features")->offset, scope.Get(hvec));
  InlineSerializer serde(p.heap);
  ByteBuffer expected;
  serde.WriteRecord(scope.Get(hlp), p.labeled_point, expected);

  ASSERT_EQ(out.record_count(), 1u);
  ASSERT_EQ(out.record_size(0), expected.size() - 4);
  EXPECT_EQ(std::memcmp(reinterpret_cast<const void*>(out.record_addr(0)), expected.data() + 4,
                        out.record_size(0)),
            0);
}

TEST(RecordBuilderTest, PassThroughCopiesCommittedBytes) {
  Pipeline p;
  NativePartition input = p.MakeInput(3, 7);
  BuilderStore builders(p.layouts);
  NativePartition out;
  for (size_t i = 0; i < input.record_count(); ++i) {
    builders.Render(input.record_addr(i), p.labeled_point, out);
  }
  EXPECT_EQ(PartitionBytes(input), PartitionBytes(out));
}

TEST(RecordBuilderTest, UnattachedFieldAtRenderIsFatal) {
  Pipeline p;
  BuilderStore builders(p.layouts);
  int64_t lp = builders.NewRecord(p.labeled_point);
  NativePartition out;
  EXPECT_DEATH(builders.Render(lp, p.labeled_point, out), "unattached");
}

TEST(ResolveOffsetTest, SymbolicOffsetAgainstRealRecord) {
  Pipeline p;
  NativePartition input = p.MakeInput(1, 99);
  int64_t addr = input.record_addr(0);
  const ClassLayout* layout = p.layouts.LayoutOf(p.labeled_point);
  // LabeledPoint body: label @0 (8 bytes), features @8 (DenseVector:
  // numActives @8, values @12). The size expression must equal the record's
  // stored size.
  int64_t size = ResolveOffset(p.pool, layout->size_expr, addr);
  EXPECT_EQ(size, input.record_size(0));
}

TEST(SerExecutorTest, FastAndSlowPathsProduceIdenticalBytes) {
  Pipeline fast_p;
  fast_p.BuildScaleProgram();
  NativePartition input = fast_p.MakeInput(200, 1234);

  NativePartition fast_out;
  PhaseTimes fast_times;
  SerExecutor fast_exec(fast_p.heap, fast_p.wk, fast_p.layouts, fast_p.program,
                        *fast_p.transformed);
  SpecOutcome outcome = fast_exec.RunTask(input, &fast_out, fast_times);
  EXPECT_TRUE(outcome.committed_fast_path);
  EXPECT_EQ(outcome.records_processed, 200);

  NativePartition slow_out;
  PhaseTimes slow_times;
  fast_exec.RunSlowPath(input, &slow_out, slow_times);

  EXPECT_EQ(PartitionBytes(fast_out), PartitionBytes(slow_out));
  EXPECT_EQ(fast_out.record_count(), 200u);
  // The slow path pays deserialization and serialization; the fast path
  // does not.
  EXPECT_EQ(fast_times.Get(Phase::kDeserialize), 0);
  EXPECT_EQ(fast_times.Get(Phase::kSerialize), 0);
  EXPECT_GT(slow_times.Get(Phase::kDeserialize), 0);
  EXPECT_GT(slow_times.Get(Phase::kSerialize), 0);
}

TEST(SerExecutorTest, FilterPassThroughEquivalence) {
  Pipeline p;
  p.BuildFilterProgram(0.0);
  NativePartition input = p.MakeInput(300, 555);

  NativePartition fast_out;
  NativePartition slow_out;
  PhaseTimes times;
  SerExecutor exec(p.heap, p.wk, p.layouts, p.program, *p.transformed);
  SpecOutcome outcome = exec.RunTask(input, &fast_out, times);
  EXPECT_TRUE(outcome.committed_fast_path);
  exec.RunSlowPath(input, &slow_out, times);

  EXPECT_EQ(PartitionBytes(fast_out), PartitionBytes(slow_out));
  EXPECT_LT(fast_out.record_count(), input.record_count());  // some filtered
  EXPECT_GT(fast_out.record_count(), 0u);
}

TEST(SerExecutorTest, ForcedAbortFallsBackAndOutputMatches) {
  Pipeline p;
  p.BuildScaleProgram();
  NativePartition input = p.MakeInput(100, 42);
  std::vector<uint8_t> input_before = PartitionBytes(input);

  SerExecutor exec(p.heap, p.wk, p.layouts, p.program, *p.transformed);
  FaultPlan faults;
  faults.AbortTask(0, 50);
  bool launched = false;
  exec.set_launch_hook([&launched] { launched = true; });

  NativePartition out;
  PhaseTimes times;
  SpecOutcome outcome = exec.RunTask(input, &out, times, &faults, 0);
  EXPECT_FALSE(outcome.committed_fast_path);
  EXPECT_EQ(outcome.aborts, 1);
  EXPECT_EQ(outcome.abort_reason, AbortReason::kForced);
  EXPECT_EQ(outcome.records_wasted, 50);
  EXPECT_TRUE(launched);

  // Input buffers are pristine (re-execution safety).
  EXPECT_EQ(PartitionBytes(input), input_before);

  // The output equals a pure slow-path run.
  NativePartition reference;
  PhaseTimes ref_times;
  exec.RunSlowPath(input, &reference, ref_times);
  EXPECT_EQ(PartitionBytes(out), PartitionBytes(reference));
}

TEST(SerExecutorTest, StaticAbortFenceTriggersReexecution) {
  // A program whose UDF mutates the input record's vector (the §4.4 resize
  // pattern): the transformer fences it; the fast path must abort on the
  // first record and the slow path must still produce correct output.
  Pipeline p;
  Function* udf = p.program.AddFunction("mutate");
  {
    FunctionBuilder b(udf);
    int lp = b.Param("lp", IrType::Ref(p.labeled_point));
    udf->return_type = IrType::Ref(p.labeled_point);
    int vec = b.FieldLoad(lp, p.labeled_point, "features");
    int n = b.ConstI(4);
    int bigger = b.NewArray(p.double_array, n);
    b.FieldStore(vec, p.dense_vector, "values", bigger);  // violation
    b.Return(lp);
    b.Done();
  }
  Function* body = p.program.AddFunction("task_body");
  {
    FunctionBuilder b(body);
    int rec = b.Deserialize(p.labeled_point);
    int out = b.Call(udf, {rec});
    b.Serialize(out);
    b.Return();
    b.Done();
  }
  p.program.body = body;
  p.Compile();

  NativePartition input = p.MakeInput(20, 7);
  SerExecutor exec(p.heap, p.wk, p.layouts, p.program, *p.transformed);
  NativePartition out;
  PhaseTimes times;
  SpecOutcome outcome = exec.RunTask(input, &out, times);
  EXPECT_FALSE(outcome.committed_fast_path);
  EXPECT_EQ(outcome.abort_reason, AbortReason::kDisruptNativeSpace);
  EXPECT_EQ(out.record_count(), 20u);  // slow path completed the task
}

TEST(SerExecutorTest, FastPathAllocatesNoDataObjectsOnHeap) {
  Pipeline p;
  p.BuildScaleProgram();
  NativePartition input = p.MakeInput(500, 321);
  p.heap.ResetStats();

  SerExecutor exec(p.heap, p.wk, p.layouts, p.program, *p.transformed);
  NativePartition out;
  PhaseTimes times;
  exec.RunTask(input, &out, times);
  // The transformed path creates zero managed objects for data records.
  EXPECT_EQ(p.heap.stats().allocated_objects, 0);
}

TEST(SerExecutorTest, SlowPathAllocatesManyObjects) {
  Pipeline p;
  p.BuildScaleProgram();
  NativePartition input = p.MakeInput(500, 321);
  p.heap.ResetStats();

  SerExecutor exec(p.heap, p.wk, p.layouts, p.program, *p.transformed);
  NativePartition out;
  PhaseTimes times;
  exec.RunSlowPath(input, &out, times);
  // Each record deserializes into >= 3 objects and builds >= 3 more.
  EXPECT_GE(p.heap.stats().allocated_objects, 500 * 6);
}

// Property: equivalence over many random inputs and record shapes.
TEST(SerExecutorTest, EquivalenceProperty) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Pipeline p;
    p.BuildScaleProgram();
    NativePartition input = p.MakeInput(50, seed * 1000);
    SerExecutor exec(p.heap, p.wk, p.layouts, p.program, *p.transformed);
    NativePartition fast_out;
    NativePartition slow_out;
    PhaseTimes times;
    SpecOutcome outcome = exec.RunTask(input, &fast_out, times);
    ASSERT_TRUE(outcome.committed_fast_path);
    exec.RunSlowPath(input, &slow_out, times);
    ASSERT_EQ(PartitionBytes(fast_out), PartitionBytes(slow_out)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gerenuk
