// The paper's IMC Hadoop program: word count with a map-side combiner over
// Wikipedia-like text, run on the mini-Hadoop engine in both modes. Shows
// the sort/spill/combine pipeline and how the Gerenuk mode keeps every
// record in inlined native bytes through the whole map -> shuffle -> reduce
// flow.
//
//   ./build/examples/hadoop_inmap_combiner [lines]
#include <cstdio>
#include <cstdlib>

#include "src/core/gerenuk.h"
#include "src/workloads/hadoop_workloads.h"

using namespace gerenuk;

int main(int argc, char** argv) {
  int64_t lines = argc > 1 ? std::atoll(argv[1]) : 3000;
  std::vector<std::string> text = MakeTextLines(lines, 10, 500, /*seed=*/77);

  double totals[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    HadoopConfig config;
    config.engine.execution.mode = mode;
    config.engine.execution.heap_bytes = 48u << 20;
    config.engine.execution.num_partitions = 4;
    config.num_reducers = 2;
    config.sort_buffer_bytes = 256 << 10;
    HadoopEngine engine(config);
    HadoopWorkloads workloads(engine);
    DatasetPtr input = workloads.MakeTextInput(text);

    WorkloadResult result = workloads.RunImc(input);
    totals[static_cast<int>(mode)] = result.checksum;
    const EngineStats& stats = engine.stats();
    std::printf("%s: %lld distinct terms, %0.f occurrences | map-tasks=%d spills=%d "
                "combine-calls=%lld shuffle=%s | total=%.1fms (ser=%.1f deser=%.1f)\n",
                mode == EngineMode::kBaseline ? "baseline" : "gerenuk ",
                static_cast<long long>(result.records), result.checksum, stats.map_tasks,
                stats.spills, static_cast<long long>(stats.combine_calls),
                FormatBytes(stats.shuffle_bytes).c_str(), stats.times.TotalMillis(),
                stats.times.Millis(Phase::kSerialize), stats.times.Millis(Phase::kDeserialize));
  }
  if (totals[0] != totals[1]) {
    std::printf("ERROR: modes disagree!\n");
    return 1;
  }
  std::printf("both modes counted every word exactly once.\n");
  return 0;
}
