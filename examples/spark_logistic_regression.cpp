// Logistic regression on the mini-Spark engine — the paper's flagship
// example of a workload Tungsten cannot help (LabeledPoint/DenseVector are
// nested user types) but Gerenuk can. Trains in both engine modes, checks
// the learned weights agree, and prints the per-phase breakdown.
//
//   ./build/examples/spark_logistic_regression [points] [iterations]
#include <cstdio>
#include <cstdlib>

#include "src/core/gerenuk.h"
#include "src/workloads/spark_workloads.h"

using namespace gerenuk;

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 8000;
  int iterations = argc > 2 ? std::atoi(argv[2]) : 5;
  SyntheticLabeledPoints data = MakeLabeledPoints(n, 10, /*seed=*/2024);

  double weights[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    EngineConfig config;
    config.execution.mode = mode;
    config.execution.heap_bytes = 64u << 20;
    config.execution.num_partitions = 4;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);

    WorkloadResult result = workloads.RunLogisticRegression(data, iterations, 0.5);
    weights[static_cast<int>(mode)] = result.checksum;
    const PhaseTimes& t = engine.stats().times;
    std::printf("%s: weight-sum=%.6f  total=%.1fms  (compute=%.1f gc=%.1f ser=%.1f "
                "deser=%.1f)  peak-mem=%s\n",
                mode == EngineMode::kBaseline ? "baseline" : "gerenuk ", result.checksum,
                t.TotalMillis(), t.Millis(Phase::kCompute), t.Millis(Phase::kGc),
                t.Millis(Phase::kSerialize), t.Millis(Phase::kDeserialize),
                FormatBytes(engine.peak_memory_bytes()).c_str());
  }
  if (weights[0] != weights[1]) {
    std::printf("ERROR: modes disagree!\n");
    return 1;
  }
  std::printf("transformed and original executions learned identical models.\n");
  return 0;
}
