// Speculation failing gracefully: the §4.4 StackOverflow-analytics pattern.
//
// Accounts are grouped by user; merging two accounts occasionally overflows
// the vector capacity and takes the "resize" branch, whose mutation of a
// deserialized record is the paper's second violation condition. The
// transformer fenced that branch with an ABORT at compile time; at run time
// the affected SERs abort, the executor discards their buffers, and the
// original object-based code re-executes on the same (still pristine) input
// — producing exactly the results the baseline produces, at a modest cost.
//
//   ./build/examples/abort_and_retry [posts] [initial_capacity]
#include <cstdio>
#include <cstdlib>

#include "src/core/gerenuk.h"
#include "src/workloads/spark_workloads.h"

using namespace gerenuk;

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  int64_t capacity = argc > 2 ? std::atoll(argv[2]) : 4;
  std::vector<SyntheticPost> posts = MakePosts(n, n / 10, 8, /*seed=*/31337);

  double checksums[2];
  double totals[2];
  int aborts = 0;
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    EngineConfig config;
    config.execution.mode = mode;
    config.execution.heap_bytes = 64u << 20;
    config.execution.num_partitions = 4;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);
    WorkloadResult result = workloads.RunAccountGrouping(posts, capacity);
    checksums[static_cast<int>(mode)] = result.checksum;
    totals[static_cast<int>(mode)] = engine.stats().times.TotalMillis();
    if (mode == EngineMode::kGerenuk) {
      aborts = engine.stats().aborts;
      std::printf("gerenuk : abort fences inserted=%d, SER aborts triggered=%d\n",
                  engine.stats().transform.aborts_inserted, aborts);
    }
  }
  std::printf("results identical: %s (posts grouped: %.0f)\n",
              checksums[0] == checksums[1] ? "yes" : "NO", checksums[0]);
  std::printf("slowdown from speculation failures: %.1f%% (paper: ~7%%)\n",
              (totals[1] / totals[0] - 1.0) * 100.0);
  return aborts > 0 && checksums[0] == checksums[1] ? 0 : 1;
}
