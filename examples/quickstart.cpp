// Quickstart: the whole Gerenuk pipeline on a ten-line program.
//
// Part 1 — owning an engine: we declare a user data type (Measurement),
// author a map UDF in the IR (celsius -> fahrenheit), and run it over a
// dataset twice: once on the unmodified baseline engine (heap objects, Kryo
// shuffles) and once on the Gerenuk-transformed engine (inlined native
// bytes, speculative execution). Both runs must agree; the Gerenuk run
// reports zero serialization and zero data-object allocation.
//
// Part 2 — sharing engines: the same job submitted through the multi-tenant
// EngineService (Session -> Submit -> JobHandle). The first submission
// compiles; repeats hit the signature-keyed plan cache.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/gerenuk.h"

using namespace gerenuk;

namespace {

// The Measurement klass + UDF, shared by both parts. `DefineOn` runs once
// per engine (klass names are unique per registry).
struct MeasurementJob {
  const Klass* measurement = nullptr;
  SerProgram udfs;
  const Function* to_fahrenheit = nullptr;

  template <typename Engine>
  void DefineOn(Engine& engine) {
    measurement = engine.heap().klasses().DefineClass(
        "Measurement", {
                           {"sensor", FieldKind::kI64, nullptr, 0},
                           {"celsius", FieldKind::kF64, nullptr, 0},
                       });
    engine.RegisterDataType(measurement);
    Function* f = udfs.AddFunction("to_fahrenheit");
    FunctionBuilder b(f);
    int rec = b.Param("m", IrType::Ref(measurement));
    f->return_type = IrType::Ref(measurement);
    int out = b.NewObject(measurement);
    b.FieldStore(out, measurement, "sensor", b.FieldLoad(rec, measurement, "sensor"));
    int scaled = b.BinOp(BinOpKind::kMul, b.FieldLoad(rec, measurement, "celsius"),
                         b.ConstF(9.0 / 5.0));
    b.FieldStore(out, measurement, "celsius", b.BinOp(BinOpKind::kAdd, scaled, b.ConstF(32.0)));
    b.Return(out);
    b.Done();
    to_fahrenheit = f;
  }

  template <typename Engine>
  DatasetPtr MakeInput(Engine& engine, int64_t records) const {
    const Klass* k = measurement;
    Heap* h = &engine.heap();
    return engine.Source(k, records, [h, k](int64_t i, RootScope&) {
      ObjRef rec = h->AllocObject(k);
      h->SetPrim<int64_t>(rec, k->FindField("sensor")->offset, i % 16);
      h->SetPrim<double>(rec, k->FindField("celsius")->offset, 20.0 + (i % 7));
      return rec;
    });
  }
};

void ServiceQuickstart();

}  // namespace

int main() {
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    EngineConfig config;
    config.execution.mode = mode;
    config.execution.heap_bytes = 32u << 20;
    config.execution.num_partitions = 2;
    SparkEngine engine(config);

    // 1. Declare the data type and register it (the paper's §3.1
    //    annotation), and author the UDF in the IR (what Java/Scala source
    //    is to the real Gerenuk): out = new Measurement(sensor,
    //    celsius * 9/5 + 32).
    MeasurementJob job;
    job.DefineOn(engine);

    // 2. Build a source dataset and run the stage.
    DatasetPtr input = job.MakeInput(engine, 10000);
    engine.ResetMetrics();
    DatasetPtr output =
        engine.RunStage(input, job.udfs, {NarrowOp::Map(job.to_fahrenheit, job.measurement)});

    // 3. Inspect results and runtime behavior.
    RootScope scope(engine.heap());
    std::vector<size_t> slots = engine.CollectToHeap(output, scope);
    double first = engine.heap().GetPrim<double>(
        scope.Get(slots[0]), job.measurement->FindField("celsius")->offset);
    const EngineStats& stats = engine.stats();
    std::printf("%s: %zu records, first=%.1fF, compute=%.1fms ser=%.1fms deser=%.1fms, "
                "stmts transformed=%d, aborts=%d\n",
                mode == EngineMode::kBaseline ? "baseline" : "gerenuk ", slots.size(), first,
                stats.times.Millis(Phase::kCompute), stats.times.Millis(Phase::kSerialize),
                stats.times.Millis(Phase::kDeserialize), stats.transform.statements_transformed,
                stats.aborts);
  }

  ServiceQuickstart();
  return 0;
}

namespace {

// Part 2: the same job through the multi-tenant service. Instead of owning
// an engine, a client opens a Session against a shared EngineService and
// submits JobSpecs; the body runs on whichever pooled engine slot the
// dispatcher picks, and repeat submissions of the same program hit the
// signature-keyed plan cache instead of recompiling.
void ServiceQuickstart() {
  ServiceConfig config;
  config.engine.execution.mode = EngineMode::kGerenuk;
  config.engine.execution.heap_bytes = 32u << 20;
  config.engine.execution.num_partitions = 2;
  // One slot so both rounds land on the same engine and the repeat is a
  // guaranteed plan-cache hit (caches are per-slot; see DESIGN.md §11).
  config.num_engines = 1;
  // Runs once per engine slot: every job on the slot shares these klasses
  // and programs, which is what keeps the plan cache hot.
  config.setup = [](EngineContext& ctx) -> std::shared_ptr<void> {
    auto job = std::make_shared<MeasurementJob>();
    job->DefineOn(*ctx.spark);
    return job;
  };
  EngineService service(config);

  Session session = service.CreateSession("quickstart");
  JobSpec spec;
  spec.name = "to_fahrenheit";
  spec.run = [](EngineContext& ctx) -> std::string {
    auto* job = static_cast<MeasurementJob*>(ctx.setup.get());
    DatasetPtr input = job->MakeInput(*ctx.spark, 10000);
    DatasetPtr output = ctx.spark->RunStage(
        input, job->udfs, {NarrowOp::Map(job->to_fahrenheit, job->measurement)});
    return std::to_string(output->TotalRecords());  // a job returns its output bytes
  };

  for (int round = 0; round < 2; ++round) {
    JobResult result = session.Submit(spec).wait();
    if (result.status != JobStatus::kSucceeded) {
      std::printf("service job failed: %s\n", result.error.c_str());
      return;
    }
    std::printf("service round %d: %s records, plans compiled=%d cache hits=%d "
                "(wait %.2fms, exec %.2fms)\n",
                round, result.output.c_str(), result.stats.plans_compiled,
                result.stats.plan_cache_hits, result.queue_wait_ns / 1e6,
                result.exec_ns / 1e6);
  }
  PlanCache::Stats cache = service.plan_cache_stats();
  std::printf("service plan cache: %lld hits / %lld misses\n",
              static_cast<long long>(cache.hits), static_cast<long long>(cache.misses));
}

}  // namespace
