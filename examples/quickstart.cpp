// Quickstart: the whole Gerenuk pipeline on a ten-line program.
//
// We declare a user data type (Measurement), author a map UDF in the IR
// (celsius -> fahrenheit), and run it over a dataset twice: once on the
// unmodified baseline engine (heap objects, Kryo shuffles) and once on the
// Gerenuk-transformed engine (inlined native bytes, speculative execution).
// Both runs must agree; the Gerenuk run reports zero serialization and zero
// data-object allocation.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/gerenuk.h"

using namespace gerenuk;

int main() {
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    SparkConfig config;
    config.mode = mode;
    config.heap_bytes = 32u << 20;
    config.num_partitions = 2;
    SparkEngine engine(config);

    // 1. Declare the data type and register it (the paper's §3.1 annotation).
    const Klass* measurement = engine.heap().klasses().DefineClass(
        "Measurement", {
                           {"sensor", FieldKind::kI64, nullptr, 0},
                           {"celsius", FieldKind::kF64, nullptr, 0},
                       });
    engine.RegisterDataType(measurement);

    // 2. Author the UDF in the IR (what Java/Scala source is to the real
    //    Gerenuk): out = new Measurement(sensor, celsius * 9/5 + 32).
    SerProgram udfs;
    Function* to_fahrenheit = udfs.AddFunction("to_fahrenheit");
    {
      FunctionBuilder b(to_fahrenheit);
      int rec = b.Param("m", IrType::Ref(measurement));
      to_fahrenheit->return_type = IrType::Ref(measurement);
      int out = b.NewObject(measurement);
      b.FieldStore(out, measurement, "sensor", b.FieldLoad(rec, measurement, "sensor"));
      int scaled = b.BinOp(BinOpKind::kMul, b.FieldLoad(rec, measurement, "celsius"),
                           b.ConstF(9.0 / 5.0));
      b.FieldStore(out, measurement, "celsius",
                   b.BinOp(BinOpKind::kAdd, scaled, b.ConstF(32.0)));
      b.Return(out);
      b.Done();
    }

    // 3. Build a source dataset and run the stage.
    DatasetPtr input = engine.Source(measurement, 10000, [&](int64_t i, RootScope&) {
      ObjRef rec = engine.heap().AllocObject(measurement);
      engine.heap().SetPrim<int64_t>(rec, measurement->FindField("sensor")->offset, i % 16);
      engine.heap().SetPrim<double>(rec, measurement->FindField("celsius")->offset,
                                    20.0 + (i % 7));
      return rec;
    });
    engine.ResetMetrics();
    DatasetPtr output =
        engine.RunStage(input, udfs, {NarrowOp::Map(to_fahrenheit, measurement)});

    // 4. Inspect results and runtime behavior.
    RootScope scope(engine.heap());
    std::vector<size_t> slots = engine.CollectToHeap(output, scope);
    double first = engine.heap().GetPrim<double>(scope.Get(slots[0]),
                                                 measurement->FindField("celsius")->offset);
    const EngineStats& stats = engine.stats();
    std::printf("%s: %zu records, first=%.1fF, compute=%.1fms ser=%.1fms deser=%.1fms, "
                "stmts transformed=%d, aborts=%d\n",
                mode == EngineMode::kBaseline ? "baseline" : "gerenuk ", slots.size(), first,
                stats.times.Millis(Phase::kCompute), stats.times.Millis(Phase::kSerialize),
                stats.times.Millis(Phase::kDeserialize), stats.transform.statements_transformed,
                stats.aborts);
  }
  return 0;
}
