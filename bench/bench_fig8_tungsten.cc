// Figure 8: comparison with Spark Tungsten/DataFrame (§4.3), with both
// systems on the same execution substrate (the engine's transformed native
// path), differing only in what Tungsten actually differs in:
//
//   (a) PageRank — DataFrames cannot cache iterative state the way RDDs do,
//       so the query plan grows with every iteration (SPARK-13346): iteration i
//       re-executes the whole lineage. We drive the engine exactly that way.
//       The paper's DataFrame PageRank never converged; with iterations
//       fixed at 10, Gerenuk was ~2.2x faster.
//   (b) WordCount — Tungsten's UTF8String keeps a cached hash in the row, so
//       shuffling hashes an i64 instead of re-reading word bytes on every
//       key extraction. Expressed in the IR as a tokenize that emits
//       (word, hash, count) and shuffles on the hash. The paper: Tungsten
//       ~20% faster than Gerenuk on WordCount, strings being the reason.
#include "bench/bench_common.h"
#include "src/ir/builder.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

PhaseTimes RunPr(EngineMode mode, const SyntheticGraph& graph, int iterations, bool plan_growth,
                 double* checksum) {
  EngineConfig config;
  config.execution.mode = mode;
  config.execution.heap_bytes = 48u << 20;
  config.execution.num_partitions = 4;
  SparkEngine engine(config);
  SparkWorkloads workloads(engine);
  PhaseTimes total;
  if (!plan_growth) {
    *checksum = workloads.RunPageRank(graph, iterations).checksum;
    return engine.stats().times;
  }
  // DataFrame semantics: "iteration i" re-derives the plan and re-executes
  // the lineage from the source — i prior steps replayed, then the new one.
  for (int i = 1; i <= iterations; ++i) {
    WorkloadResult result = workloads.RunPageRank(graph, i);
    total += engine.stats().times;
    *checksum = result.checksum;
  }
  return total;
}

// WordCount with Tungsten's cached string hash, on the same engine.
WorkloadResult RunTungstenWordCount(SparkEngine& engine, const std::vector<std::string>& lines,
                                    PhaseTimes* times) {
  KlassRegistry& reg = engine.heap().klasses();
  const Klass* string_k = engine.wk().string_klass();
  const Klass* byte_array = engine.wk().byte_array();
  const Klass* line = reg.Find("Line");
  const Klass* hashed = reg.DefineClass("HashedWordCount",
                                        {
                                            {"word", FieldKind::kRef, string_k, 0},
                                            {"hash", FieldKind::kI64, nullptr, 0},
                                            {"count", FieldKind::kI64, nullptr, 0},
                                        });
  engine.RegisterDataType(hashed);
  const Klass* hashed_array = reg.Find("HashedWordCount[]");

  SerProgram udfs;
  const Function* tokenize;
  {
    // Same split loop as the general WordCount, but the hash is computed
    // once here and carried in the record (UTF8String's cached hash).
    Function* f = udfs.AddFunction("t_tokenize");
    FunctionBuilder b(f);
    int rec = b.Param("line", IrType::Ref(line));
    f->return_type = IrType::Ref(hashed_array);
    int text = b.FieldLoad(rec, line, "text");
    int chars = b.FieldLoad(text, string_k, "value");
    int len = b.ArrayLength(chars);
    int space = b.ConstI(' ');
    int words = b.Local("words", IrType::I64());
    b.AssignTo(words, b.ConstI(1));
    b.For(len, [&](int i) {
      int c = b.ArrayLoad(chars, i, IrType::I64());
      b.If(b.BinOp(BinOpKind::kEq, c, space), [&] {
        b.AssignTo(words, b.BinOp(BinOpKind::kAdd, words, b.ConstI(1)));
      });
    });
    int arr = b.NewArray(hashed_array, words);
    int word_index = b.Local("word_index", IrType::I64());
    int start = b.Local("start", IrType::I64());
    int pos = b.Local("pos", IrType::I64());
    b.AssignTo(word_index, b.ConstI(0));
    b.AssignTo(start, b.ConstI(0));
    b.AssignTo(pos, b.ConstI(0));
    auto emit_word = [&]() {
      int word_len = b.BinOp(BinOpKind::kSub, pos, start);
      int word_chars = b.NewArray(byte_array, word_len);
      b.For(word_len, [&](int k) {
        int src = b.BinOp(BinOpKind::kAdd, start, k);
        b.ArrayStore(word_chars, k, b.ArrayLoad(chars, src, IrType::I64()));
      });
      int word = b.NewObject(string_k);
      b.FieldStore(word, string_k, "value", word_chars);
      int wc = b.NewObject(hashed);
      b.FieldStore(wc, hashed, "word", word);
      b.FieldStore(wc, hashed, "hash", b.CallNative("stringHash", {word}, IrType::I64()));
      b.FieldStore(wc, hashed, "count", b.ConstI(1));
      b.ArrayStore(arr, word_index, wc);
      b.AssignTo(word_index, b.BinOp(BinOpKind::kAdd, word_index, b.ConstI(1)));
    };
    int loop = b.NewLabel();
    int done = b.NewLabel();
    b.PlaceLabel(loop);
    b.Branch(b.BinOp(BinOpKind::kGe, pos, len), done);
    int c = b.ArrayLoad(chars, pos, IrType::I64());
    b.If(b.BinOp(BinOpKind::kEq, c, space), [&] {
      emit_word();
      b.AssignTo(start, b.BinOp(BinOpKind::kAdd, pos, b.ConstI(1)));
    });
    b.AssignTo(pos, b.BinOp(BinOpKind::kAdd, pos, b.ConstI(1)));
    b.Jump(loop);
    b.PlaceLabel(done);
    emit_word();
    b.Return(arr);
    b.Done();
    tokenize = f;
  }
  const Function* hash_key;
  {
    Function* f = udfs.AddFunction("t_key");
    FunctionBuilder b(f);
    int rec = b.Param("wc", IrType::Ref(hashed));
    f->return_type = IrType::I64();
    b.Return(b.FieldLoad(rec, hashed, "hash"));  // the cached hash, no bytes
    b.Done();
    hash_key = f;
  }
  const Function* sum;
  {
    Function* f = udfs.AddFunction("t_sum");
    FunctionBuilder b(f);
    int a = b.Param("a", IrType::Ref(hashed));
    int c = b.Param("b", IrType::Ref(hashed));
    f->return_type = IrType::Ref(hashed);
    int out = b.NewObject(hashed);
    b.FieldStore(out, hashed, "word", b.FieldLoad(a, hashed, "word"));
    b.FieldStore(out, hashed, "hash", b.FieldLoad(a, hashed, "hash"));
    b.FieldStore(out, hashed, "count",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(a, hashed, "count"),
                         b.FieldLoad(c, hashed, "count")));
    b.Return(out);
    b.Done();
    sum = f;
  }

  Heap& heap = engine.heap();
  DatasetPtr input = engine.Source(
      line, static_cast<int64_t>(lines.size()), [&](int64_t i, RootScope& scope) {
        size_t s = scope.Push(engine.wk().AllocString(lines[static_cast<size_t>(i)]));
        ObjRef rec = heap.AllocObject(line);
        heap.SetRef(rec, line->FindField("text")->offset, scope.Get(s));
        return rec;
      });
  engine.ResetMetrics();
  DatasetPtr counts = engine.ReduceByKey(input, udfs, {NarrowOp::FlatMap(tokenize, hashed)},
                                         KeySpec{hash_key, false}, sum);
  *times = engine.stats().times;
  WorkloadResult result;
  result.name = "WC-Tungsten";
  RootScope scope(heap);
  for (size_t slot : engine.CollectToHeap(counts, scope)) {
    result.checksum += static_cast<double>(
        heap.GetPrim<int64_t>(scope.Get(slot), hashed->FindField("count")->offset));
    result.records += 1;
  }
  return result;
}

void Run() {
  bench::PrintHeader("Figure 8(a): PageRank — baseline vs Tungsten vs Gerenuk (10 iters)");
  SyntheticGraph graph = MakePowerLawGraph(2000, 10000, 99);
  double base_sum;
  double ger_sum;
  double tung_sum;
  PhaseTimes base_times = RunPr(EngineMode::kBaseline, graph, 10, false, &base_sum);
  PhaseTimes ger_times = RunPr(EngineMode::kGerenuk, graph, 10, false, &ger_sum);
  // Tungsten: same native-path execution, but the DataFrame plan growth
  // replays the lineage every iteration.
  PhaseTimes tung_times = RunPr(EngineMode::kGerenuk, graph, 10, true, &tung_sum);
  bench::PrintPhaseRow("PR baseline (RDD)", base_times);
  bench::PrintPhaseRow("PR Tungsten (DataFrame)", tung_times);
  bench::PrintPhaseRow("PR Gerenuk", ger_times);
  bench::PrintSpeedup("Gerenuk vs Tungsten", tung_times.TotalMillis(), ger_times.TotalMillis());
  std::printf("(paper: Gerenuk ~2.2x faster than Tungsten on PR; plan growth is the cause)\n");
  GERENUK_CHECK(std::abs(base_sum - ger_sum) < 1e-6 * base_sum);
  GERENUK_CHECK(std::abs(base_sum - tung_sum) < 1e-6 * base_sum);

  bench::PrintHeader("Figure 8(b): WordCount — baseline vs Tungsten vs Gerenuk");
  std::vector<std::string> lines = MakeTextLines(4000, 10, 800, 101);
  PhaseTimes wc_base;
  PhaseTimes wc_ger;
  PhaseTimes wc_tung;
  double counts[3];
  {
    EngineConfig config;
    config.execution.mode = EngineMode::kBaseline;
    config.execution.heap_bytes = 48u << 20;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);
    counts[0] = workloads.RunWordCount(lines).checksum;
    wc_base = engine.stats().times;
  }
  {
    EngineConfig config;
    config.execution.mode = EngineMode::kGerenuk;
    config.execution.heap_bytes = 48u << 20;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);
    counts[1] = workloads.RunWordCount(lines).checksum;
    wc_ger = engine.stats().times;
  }
  {
    EngineConfig config;
    config.execution.mode = EngineMode::kGerenuk;
    config.execution.heap_bytes = 48u << 20;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);  // defines Line
    counts[2] = RunTungstenWordCount(engine, lines, &wc_tung).checksum;
  }
  bench::PrintPhaseRow("WC baseline (RDD)", wc_base);
  bench::PrintPhaseRow("WC Tungsten (DataFrame)", wc_tung);
  bench::PrintPhaseRow("WC Gerenuk", wc_ger);
  std::printf("Tungsten vs Gerenuk on WC: %.2fx in Tungsten's favor "
              "(paper: ~1.2x — cached string hashes)\n",
              wc_ger.TotalMillis() / wc_tung.TotalMillis());
  GERENUK_CHECK_EQ(counts[0], counts[1]);
  GERENUK_CHECK_EQ(counts[0], counts[2]);
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
