// Shuffle-service and process-executor harness. Prints human-readable rows
// and writes BENCH_shuffle.json so future PRs can track the trajectory:
//
//   1. Spill throughput — driver-side Add of sealed blocks through the
//      serialize/compress/seal/append pipeline, compressed vs stored,
//      against the zero-copy resident path.
//   2. Fetch latency — OpenBucket (credit + read + verify + decompress +
//      parse) per bucket, resident vs spilled.
//   3. Recovery time — a process-mode WordCount with one executor SIGKILLed
//      mid-stage vs the unkilled run: the cost of a real executor death
//      under supervision (heartbeats, relaunch, task reroute).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/shuffle/shuffle_service.h"
#include "src/support/logging.h"
#include "src/workloads/datagen.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kProducers = 8;
constexpr int kBuckets = 4;
constexpr int kRecordsPerBlock = 512;

// Word-like (Zipf text) record bodies: compressible the way shuffled text
// records are, not the way zero-filled buffers are.
NativePartition MakeBlock(const std::vector<std::string>& lines, int producer, int bucket) {
  NativePartition part;
  for (int r = 0; r < kRecordsPerBlock; ++r) {
    const std::string& line =
        lines[static_cast<size_t>((producer * 131 + bucket * 17 + r)) % lines.size()];
    part.AppendRecord(reinterpret_cast<const uint8_t*>(line.data()),
                      static_cast<uint32_t>(line.size()));
  }
  part.Seal();
  return part;
}

struct SpillRun {
  double add_ms = 0;
  double fetch_ms_per_bucket = 0;
  int64_t raw_bytes = 0;
  int64_t stored_bytes = 0;
  int64_t fetches = 0;
};

SpillRun RunShuffle(const std::vector<std::string>& lines, int64_t spill_threshold,
                    bool compress) {
  ShuffleConfig config;
  config.spill_threshold_bytes = spill_threshold;
  config.compress = compress;
  ShuffleRun run(kProducers, kBuckets, config);
  EngineStats stats;
  SpillRun result;

  double t0 = NowMs();
  for (int p = 0; p < kProducers; ++p) {
    for (int b = 0; b < kBuckets; ++b) {
      run.Add(p, b, MakeBlock(lines, p, b), &stats);
    }
  }
  result.add_ms = NowMs() - t0;
  result.raw_bytes = stats.spill_bytes_raw;
  result.stored_bytes = stats.spill_bytes_stored;

  constexpr int kFetchIters = 8;
  t0 = NowMs();
  int64_t drained = 0;
  for (int iter = 0; iter < kFetchIters; ++iter) {
    for (int b = 0; b < kBuckets; ++b) {
      run.ForEachRecordInBucket(b, &stats, nullptr,
                                [&drained](int64_t, uint32_t size) { drained += size; });
    }
  }
  result.fetch_ms_per_bucket = (NowMs() - t0) / (kFetchIters * kBuckets);
  result.fetches = stats.shuffle_fetches;
  GERENUK_CHECK(drained > 0);
  return result;
}

void SpillExperiments(bench::JsonWriter& json) {
  bench::PrintHeader("Shuffle spill throughput & fetch latency");
  std::vector<std::string> lines = MakeTextLines(2000, 12, 600, 77);

  struct Case {
    const char* name;
    int64_t threshold;
    bool compress;
  };
  const Case cases[] = {
      {"resident", 0, true},
      {"spill_stored", 1, false},
      {"spill_compressed", 1, true},
  };

  json.BeginArray("spill");
  for (const Case& c : cases) {
    SpillRun r = RunShuffle(lines, c.threshold, c.compress);
    double raw_mb = static_cast<double>(r.raw_bytes) / (1 << 20);
    double spill_mbps = r.add_ms > 0 ? raw_mb / (r.add_ms / 1000.0) : 0;
    std::printf("  %-18s add %7.2f ms (%7.1f MB/s spilled)  fetch %6.3f ms/bucket", c.name,
                r.add_ms, spill_mbps, r.fetch_ms_per_bucket);
    if (r.raw_bytes > 0) {
      std::printf("  stored/raw %.2f", static_cast<double>(r.stored_bytes) / r.raw_bytes);
    }
    std::printf("\n");
    json.BeginObject();
    json.Field("name", c.name);
    json.Field("add_ms", r.add_ms);
    json.Field("spill_throughput_mb_per_s", spill_mbps);
    json.Field("fetch_ms_per_bucket", r.fetch_ms_per_bucket);
    json.Field("spill_bytes_raw", r.raw_bytes);
    json.Field("spill_bytes_stored", r.stored_bytes);
    json.Field("fetches", r.fetches);
    json.End();
  }
  json.End();
}

struct RecoveryRun {
  double wall_ms = 0;
  double checksum = 0;
  int64_t executor_deaths = 0;
  int64_t executor_relaunches = 0;
  int64_t heartbeats = 0;
};

RecoveryRun RunWordCountProcessMode(const std::vector<std::string>& lines, bool kill) {
  EngineConfig config;
  config.execution.mode = EngineMode::kGerenuk;
  config.execution.heap_bytes = 48u << 20;
  config.execution.num_workers = 4;
  config.execution.process_executors = true;
  config.execution.executor_heartbeat_ms = 5;
  config.fault.max_task_attempts = 3;
  SparkEngine engine(config);
  SparkWorkloads workloads(engine);
  if (kill) {
    engine.fault_plan().InjectExecutorKill(engine.next_task_ordinal() + 1, /*signal=*/9,
                                           /*max_attempt=*/1);
  }
  RecoveryRun r;
  double t0 = NowMs();
  r.checksum = workloads.RunWordCount(lines).checksum;
  r.wall_ms = NowMs() - t0;
  r.executor_deaths = engine.stats().executor_deaths;
  r.executor_relaunches = engine.stats().executor_relaunches;
  r.heartbeats = engine.stats().heartbeats_received;
  return r;
}

void RecoveryExperiment(bench::JsonWriter& json) {
  bench::PrintHeader("Executor-kill recovery (process mode, WordCount)");
  std::vector<std::string> lines = MakeTextLines(3000, 10, 700, 101);

  RecoveryRun clean = RunWordCountProcessMode(lines, /*kill=*/false);
  RecoveryRun killed = RunWordCountProcessMode(lines, /*kill=*/true);
  GERENUK_CHECK(clean.checksum == killed.checksum)
      << "recovered run diverged: " << clean.checksum << " vs " << killed.checksum;
  GERENUK_CHECK(killed.executor_deaths >= 1);
  GERENUK_CHECK(killed.executor_relaunches >= 1);

  double overhead = killed.wall_ms - clean.wall_ms;
  std::printf("  unkilled  %8.2f ms  (%lld heartbeats)\n", clean.wall_ms,
              static_cast<long long>(clean.heartbeats));
  std::printf("  SIGKILLed %8.2f ms  (%lld deaths, %lld relaunches)\n", killed.wall_ms,
              static_cast<long long>(killed.executor_deaths),
              static_cast<long long>(killed.executor_relaunches));
  std::printf("  recovery overhead %.2f ms\n", overhead);

  json.BeginObject("recovery");
  json.Field("clean_ms", clean.wall_ms);
  json.Field("killed_ms", killed.wall_ms);
  json.Field("recovery_overhead_ms", overhead);
  json.Field("executor_deaths", killed.executor_deaths);
  json.Field("executor_relaunches", killed.executor_relaunches);
  json.Field("heartbeats_received", killed.heartbeats);
  json.End();
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::bench::JsonWriter json("BENCH_shuffle.json");
  json.BeginObject();
  gerenuk::SpillExperiments(json);
  gerenuk::RecoveryExperiment(json);
  json.End();
  return 0;
}
