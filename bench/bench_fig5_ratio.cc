// Figure 5: the ratio between the total bytes of data objects (heap form)
// and the size of their actual payload (inlined form), for the shuffle-record
// populations of PageRank (PR), ConnectedComponents (CC), and
// TriangleCounting (TC) over four synthetic power-law graphs standing in for
// LiveJournal, Orkut, UK-2005, and Twitter-2010. This reproduces the paper's
// Kryo instrumentation: bytes occupied by objects before serialization vs
// bytes after inlining, aggregated over every record shuffled.
#include "bench/bench_common.h"
#include "src/runtime/roots.h"
#include "src/serde/heap_serializer.h"
#include "src/serde/inline_serializer.h"
#include "src/serde/wellknown.h"
#include "src/workloads/datagen.h"

namespace gerenuk {
namespace {

struct Ratio {
  int64_t heap_bytes = 0;
  int64_t inline_bytes = 0;
  double Value() const {
    return static_cast<double>(heap_bytes) / static_cast<double>(inline_bytes);
  }
};

// Builds every record one program shuffles over one graph and measures both
// representations.
Ratio MeasureProgram(const std::string& program, const SyntheticGraph& graph) {
  // Spark shuffles these graph programs as *generic tuples*, so type erasure
  // boxes every Long and Double — the billions of java.lang.Long/Double
  // objects the paper blames for the 3.5x ratio. The measured records model
  // exactly that: Tuple2<Long, Double> for rank/label messages,
  // Tuple2<Long, Tuple2<Double, long[]>> for join states, and
  // Tuple2<Long, Long> for TC's edge pairs.
  HeapConfig config;
  config.capacity_bytes = 64 << 20;
  Heap heap(config);
  WellKnown wk(heap);
  KlassRegistry& reg = heap.klasses();
  const Klass* i64_array = reg.DefineArray(FieldKind::kI64);
  const Klass* boxed_long = wk.boxed_long();
  const Klass* boxed_double = wk.boxed_double();
  const Klass* rank =
      reg.DefineClass("Tuple2<Long,Double>", {
                                                 {"_1", FieldKind::kRef, boxed_long, 0},
                                                 {"_2", FieldKind::kRef, boxed_double, 0},
                                             });
  const Klass* payload =
      reg.DefineClass("Tuple2<Double,long[]>", {
                                                   {"_1", FieldKind::kRef, boxed_double, 0},
                                                   {"_2", FieldKind::kRef, i64_array, 0},
                                               });
  const Klass* state =
      reg.DefineClass("Tuple2<Long,Tuple2>", {
                                                 {"_1", FieldKind::kRef, boxed_long, 0},
                                                 {"_2", FieldKind::kRef, payload, 0},
                                             });
  const Klass* edge =
      reg.DefineClass("Tuple2<Long,Long>", {
                                               {"_1", FieldKind::kRef, boxed_long, 0},
                                               {"_2", FieldKind::kRef, boxed_long, 0},
                                           });
  HeapSerializer heap_serde(heap);
  InlineSerializer inline_serde(heap);
  Ratio ratio;
  RootScope scope(heap);

  auto attach = [&](size_t obj, const Klass* klass, const char* field, size_t child) {
    heap.SetRef(scope.Get(obj), klass->FindField(field)->offset, scope.Get(child));
  };
  auto measure = [&](size_t slot, const Klass* klass, size_t pushed) {
    ratio.heap_bytes += heap_serde.MeasureHeapBytes(scope.Get(slot), klass);
    ratio.inline_bytes += 4 + inline_serde.BodySize(scope.Get(slot), klass);
    for (size_t i = 0; i < pushed; ++i) {
      scope.Pop();
    }
  };
  auto measure_rank = [&](int64_t id, double value) {
    size_t k = scope.Push(wk.AllocBoxedLong(id));
    size_t v = scope.Push(wk.AllocBoxedDouble(value));
    size_t rec = scope.Push(heap.AllocObject(rank));
    attach(rec, rank, "_1", k);
    attach(rec, rank, "_2", v);
    measure(rec, rank, 3);
  };
  auto measure_state = [&](int64_t v) {
    const auto& neighbors = graph.out_edges[static_cast<size_t>(v)];
    size_t arr = scope.Push(heap.AllocArray(i64_array, neighbors.size()));
    for (size_t i = 0; i < neighbors.size(); ++i) {
      heap.ASet<int64_t>(scope.Get(arr), static_cast<int64_t>(i), neighbors[i]);
    }
    size_t boxed_rank = scope.Push(wk.AllocBoxedDouble(1.0));
    size_t inner = scope.Push(heap.AllocObject(payload));
    attach(inner, payload, "_1", boxed_rank);
    attach(inner, payload, "_2", arr);
    size_t key = scope.Push(wk.AllocBoxedLong(v));
    size_t rec = scope.Push(heap.AllocObject(state));
    attach(rec, state, "_1", key);
    attach(rec, state, "_2", inner);
    measure(rec, state, 5);
  };
  auto measure_edge = [&](int64_t src, int64_t dst) {
    size_t a = scope.Push(wk.AllocBoxedLong(src));
    size_t b = scope.Push(wk.AllocBoxedLong(dst));
    size_t rec = scope.Push(heap.AllocObject(edge));
    attach(rec, edge, "_1", a);
    attach(rec, edge, "_2", b);
    measure(rec, edge, 3);
  };

  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    const auto& neighbors = graph.out_edges[static_cast<size_t>(v)];
    if (program == "PR") {
      // One VertexState per vertex per iteration + one contribution per edge.
      measure_state(v);
      for (int64_t dst : neighbors) {
        measure_rank(dst, 0.5);
      }
    } else if (program == "CC") {
      // Label propagation: state + one (neighbor, label) message per edge.
      measure_state(v);
      for (int64_t dst : neighbors) {
        measure_rank(dst, static_cast<double>(v));
      }
    } else {  // TC: edge records shuffled for wedge counting.
      for (int64_t dst : neighbors) {
        measure_edge(v, dst);
        measure_edge(dst, v);
      }
    }
    if (heap.used_bytes() > static_cast<int64_t>(48) << 20) {
      heap.CollectNow();
    }
  }
  return ratio;
}

void Run() {
  bench::PrintHeader("Figure 5: object bytes / inlined payload bytes per program+graph");
  struct GraphSpec {
    const char* name;
    int64_t vertices;
    int64_t edges;
  };
  // Scaled stand-ins for the paper's four graphs (same skew, laptop sizes).
  const GraphSpec graphs[] = {
      {"LiveJournal*", 4000, 25000},
      {"Orkut*", 3000, 40000},
      {"UK-2005*", 6000, 50000},
      {"Twitter-2010*", 5000, 70000},
  };
  double total_heap = 0.0;
  double total_inline = 0.0;
  for (const char* program : {"PR", "CC", "TC"}) {
    for (const GraphSpec& spec : graphs) {
      SyntheticGraph graph = MakePowerLawGraph(spec.vertices, spec.edges,
                                               static_cast<uint64_t>(spec.vertices));
      Ratio ratio = MeasureProgram(program, graph);
      std::printf("%-3s %-14s heap=%9.2f MB  inlined=%8.2f MB  ratio=%.2fx\n", program,
                  spec.name, static_cast<double>(ratio.heap_bytes) / 1e6,
                  static_cast<double>(ratio.inline_bytes) / 1e6, ratio.Value());
      total_heap += static_cast<double>(ratio.heap_bytes);
      total_inline += static_cast<double>(ratio.inline_bytes);
    }
  }
  std::printf("overall ratio: %.2fx (paper: 3.5x overall, i.e. 2.5x extra space)\n",
              total_heap / total_inline);
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
