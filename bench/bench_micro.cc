// Micro-benchmarks (google-benchmark) for the mechanisms behind the
// macro results — the ablation evidence for DESIGN.md's design choices:
//   * Kryo-style serialization round trip vs the native byte copy that
//     replaces it at shuffle boundaries,
//   * constant vs symbolic (resolveOffset) native field reads,
//   * record construction via heap objects vs record builders,
//   * region (whole-buffer) release vs GC'd reclamation of task data,
//   * fast-path dispatch: tree-walking interpreter vs direct-threaded plan.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/exec/plan.h"
#include "src/ir/builder.h"
#include "src/nativebuf/record_builder.h"
#include "src/runtime/roots.h"
#include "src/serde/heap_serializer.h"
#include "src/serde/inline_serializer.h"
#include "src/support/trace.h"

namespace gerenuk {
namespace {

struct Fixture {
  Heap heap;
  KlassRegistry* reg;
  const Klass* f64_array;
  const Klass* dense_vector;
  const Klass* labeled_point;
  ExprPool pool;
  DataStructAnalyzer layouts{pool};

  Fixture() : heap(HeapConfig{64u << 20, GcKind::kGenerational, 0.55, 0.35, 2}) {
    reg = &heap.klasses();
    f64_array = reg->DefineArray(FieldKind::kF64);
    dense_vector = reg->DefineClass("DenseVector",
                                    {
                                        {"numActives", FieldKind::kI32, nullptr, 0},
                                        {"values", FieldKind::kRef, f64_array, 0},
                                    });
    labeled_point = reg->DefineClass("LabeledPoint",
                                     {
                                         {"label", FieldKind::kF64, nullptr, 0},
                                         {"features", FieldKind::kRef, dense_vector, 0},
                                     });
    std::string error;
    GERENUK_CHECK(layouts.AnalyzeTopLevel(labeled_point, &error)) << error;
  }

  // Builds one LabeledPoint with `dim` features and returns its rooted slot.
  size_t BuildPoint(RootScope& scope, int dim) {
    size_t arr = scope.Push(heap.AllocArray(f64_array, dim));
    for (int d = 0; d < dim; ++d) {
      heap.ASet<double>(scope.Get(arr), d, d * 0.5);
    }
    size_t vec = scope.Push(heap.AllocObject(dense_vector));
    heap.SetPrim<int32_t>(scope.Get(vec), dense_vector->FindField("numActives")->offset, dim);
    heap.SetRef(scope.Get(vec), dense_vector->FindField("values")->offset, scope.Get(arr));
    size_t lp = scope.Push(heap.AllocObject(labeled_point));
    heap.SetPrim<double>(scope.Get(lp), labeled_point->FindField("label")->offset, 1.0);
    heap.SetRef(scope.Get(lp), labeled_point->FindField("features")->offset, scope.Get(vec));
    return lp;
  }
};

void BM_KryoRoundTrip(benchmark::State& state) {
  Fixture fx;
  RootScope scope(fx.heap);
  size_t lp = fx.BuildPoint(scope, static_cast<int>(state.range(0)));
  HeapSerializer serde(fx.heap);
  for (auto _ : state) {
    ByteBuffer wire;
    serde.Serialize(scope.Get(lp), fx.labeled_point, wire);
    ByteReader reader(wire.bytes());
    RootScope inner(fx.heap);
    inner.Push(serde.Deserialize(fx.labeled_point, reader));
    benchmark::DoNotOptimize(wire.size());
  }
}
BENCHMARK(BM_KryoRoundTrip)->Arg(10)->Arg(100);

void BM_NativeShuffleCopy(benchmark::State& state) {
  // What Gerenuk does at the same boundary: a byte copy of the inlined record.
  Fixture fx;
  RootScope scope(fx.heap);
  size_t lp = fx.BuildPoint(scope, static_cast<int>(state.range(0)));
  InlineSerializer serde(fx.heap);
  ByteBuffer record;
  serde.WriteRecord(scope.Get(lp), fx.labeled_point, record);
  NativePartition input;
  int64_t addr =
      input.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
  int64_t size = record.size() - 4;
  NativePartition out;
  for (auto _ : state) {
    out.AppendRecord(reinterpret_cast<const uint8_t*>(addr), static_cast<uint32_t>(size));
    benchmark::DoNotOptimize(out.record_count());
    if (out.bytes_used() > (64 << 20)) {
      out.Release();
    }
  }
}
BENCHMARK(BM_NativeShuffleCopy)->Arg(10)->Arg(100);

void BM_ReadNativeConstantOffset(benchmark::State& state) {
  Fixture fx;
  RootScope scope(fx.heap);
  size_t lp = fx.BuildPoint(scope, 10);
  InlineSerializer serde(fx.heap);
  ByteBuffer record;
  serde.WriteRecord(scope.Get(lp), fx.labeled_point, record);
  NativePartition input;
  int64_t addr =
      input.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NativeReadFloat(addr, 0, FieldKind::kF64));  // label @ 0
  }
}
BENCHMARK(BM_ReadNativeConstantOffset);

void BM_ReadNativeSymbolicOffset(benchmark::State& state) {
  // Reads through resolveOffset: the size expression of the whole record.
  Fixture fx;
  RootScope scope(fx.heap);
  size_t lp = fx.BuildPoint(scope, 10);
  InlineSerializer serde(fx.heap);
  ByteBuffer record;
  serde.WriteRecord(scope.Get(lp), fx.labeled_point, record);
  NativePartition input;
  int64_t addr =
      input.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
  int size_expr = fx.layouts.LayoutOf(fx.labeled_point)->size_expr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ResolveOffset(fx.pool, size_expr, addr));
  }
}
BENCHMARK(BM_ReadNativeSymbolicOffset);

void BM_HeapRecordConstruction(benchmark::State& state) {
  Fixture fx;
  for (auto _ : state) {
    RootScope scope(fx.heap);
    fx.BuildPoint(scope, static_cast<int>(state.range(0)));
  }
}
BENCHMARK(BM_HeapRecordConstruction)->Arg(10)->Arg(100);

void BM_BuilderRecordConstruction(benchmark::State& state) {
  Fixture fx;
  BuilderStore builders(fx.layouts);
  NativePartition out;
  int dim = static_cast<int>(state.range(0));
  for (auto _ : state) {
    int64_t arr = builders.NewArray(fx.f64_array, dim);
    for (int d = 0; d < dim; ++d) {
      builders.ArrayStore(arr, d, FieldKind::kF64, 0, d * 0.5);
    }
    int64_t vec = builders.NewRecord(fx.dense_vector);
    builders.WriteField(vec, 0, FieldKind::kI32, dim, 0);
    builders.AttachField(vec, 1, arr);
    int64_t lp = builders.NewRecord(fx.labeled_point);
    builders.WriteField(lp, 0, FieldKind::kF64, 0, 1.0);
    builders.AttachField(lp, 1, vec);
    builders.Render(lp, fx.labeled_point, out);
    builders.Clear();
    if (out.bytes_used() > (32 << 20)) {
      out.Release();
    }
  }
}
BENCHMARK(BM_BuilderRecordConstruction)->Arg(10)->Arg(100);

// The per-record UDF shape for the dispatch pair below: a 64-iteration
// integer loop, so the measured difference is dispatch + operand access,
// not native-data machinery.
Function* BuildSpinFunction(SerProgram& prog) {
  Function* spin = prog.AddFunction("spin");
  FunctionBuilder b(spin);
  int n = b.Param("n", IrType::I64());
  spin->return_type = IrType::I64();
  int acc = b.Local("acc", IrType::I64());
  b.AssignTo(acc, b.ConstI(1));
  int three = b.ConstI(3);
  int seven = b.ConstI(7);
  b.For(n, [&](int i) {
    int t = b.BinOp(BinOpKind::kMul, i, three);
    int u = b.BinOp(BinOpKind::kXor, t, seven);
    b.AssignTo(acc, b.BinOp(BinOpKind::kAdd, acc, u));
  });
  b.Return(acc);
  b.Done();
  return spin;
}

void BM_InterpreterDispatch(benchmark::State& state) {
  SerProgram prog;
  Function* spin = BuildSpinFunction(prog);
  Heap heap(HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2});
  WellKnown wk{heap};
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  Interpreter interp(prog, heap, wk, &layouts, nullptr);
  const std::vector<Value> args = {Value::I64(64)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.CallFunction(spin, args).i);
  }
  state.SetItemsProcessed(state.iterations());  // one call = one record
}
BENCHMARK(BM_InterpreterDispatch);

void BM_PlanDispatch(benchmark::State& state) {
  SerProgram prog;
  Function* spin = BuildSpinFunction(prog);
  Heap heap(HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2});
  WellKnown wk{heap};
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  pool.FoldConstants();
  std::shared_ptr<const SerPlan> plan = CompilePlan(prog, layouts);
  PlanExecutor exec(*plan, heap, wk, &layouts, nullptr);
  const std::vector<Value> args = {Value::I64(64)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.CallFunction(spin, args).i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanDispatch);

// BM_PlanDispatch with the sampled op profiler on: the arg is the sampling
// stride. Compare against BM_PlanDispatch for the tracing-on surcharge; the
// tracing-off path runs a separate unprofiled instantiation (see
// PlanExecutor::EnableProfiling), so BM_PlanDispatch itself is the off cost.
void BM_PlanDispatchProfiled(benchmark::State& state) {
  SerProgram prog;
  Function* spin = BuildSpinFunction(prog);
  Heap heap(HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2});
  WellKnown wk{heap};
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  pool.FoldConstants();
  std::shared_ptr<const SerPlan> plan = CompilePlan(prog, layouts);
  PlanExecutor exec(*plan, heap, wk, &layouts, nullptr);
  OpProfile profile;
  exec.EnableProfiling(&profile, /*stride=*/state.range(0));
  const std::vector<Value> args = {Value::I64(64)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.CallFunction(spin, args).i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanDispatchProfiled)->Arg(64)->Arg(1024);

// Tracing on/off pair for one span emission: off is a null sink (the single
// predictable branch every instrumentation site pays when tracing is
// disabled), on is a store into the worker's event buffer. The buffer is
// recycled outside the timed region before it overflows, so the on number
// measures the store path, not drop-and-count.
void BM_TraceSpanEmit(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  constexpr size_t kCapacity = size_t{1} << 16;
  std::unique_ptr<Trace> trace;
  TraceSink* sink = nullptr;
  auto recycle = [&] {
    trace = std::make_unique<Trace>(1, kCapacity);
    sink = on ? trace->worker(0) : nullptr;
  };
  recycle();
  size_t emitted = 0;
  for (auto _ : state) {
    if (on && ++emitted >= kCapacity) {
      state.PauseTiming();
      recycle();
      emitted = 0;
      state.ResumeTiming();
    }
    TraceSpan span(sink, TraceEventType::kFastPath, "fast_path");
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanEmit)->Arg(0)->Arg(1);

void BM_RegionWholesaleRelease(benchmark::State& state) {
  // Task-scoped region: one Release() regardless of record count.
  for (auto _ : state) {
    NativePartition region;
    uint8_t payload[64] = {0};
    for (int i = 0; i < 1000; ++i) {
      region.AppendRecord(payload, sizeof(payload));
    }
    region.Release();
  }
}
BENCHMARK(BM_RegionWholesaleRelease);

void BM_GcReclaimTaskData(benchmark::State& state) {
  // The same churn through the managed heap: the collector must trace and
  // copy survivors to reclaim anything.
  Fixture fx;
  for (auto _ : state) {
    RootScope scope(fx.heap);
    for (int i = 0; i < 1000; ++i) {
      fx.BuildPoint(scope, 4);
    }
  }
}
BENCHMARK(BM_GcReclaimTaskData);

}  // namespace
}  // namespace gerenuk

BENCHMARK_MAIN();
