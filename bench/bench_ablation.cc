// Ablations for the design choices DESIGN.md calls out:
//
//   1. Abort-rate sweep — the paper's applicability claim: "if data objects
//      are not immutable, the transformed program would always abort,
//      resulting in large performance penalties." We vary the fraction of
//      account-merge groups that hit the resize violation (by shrinking the
//      initial vector capacity) and plot Gerenuk/baseline: speculation pays
//      at low abort rates and inverts as the rate grows.
//   2. Fused-stage depth — how much of Gerenuk's win comes from never
//      re-materializing between narrow operators: a map chain of depth k as
//      one fused SER, in both modes.
//   3. Heap-size sensitivity — Fig. 6's "the performance of the original
//      Spark is much more sensitive to the heap size": the same job under a
//      shrinking heap, both modes.
#include "bench/bench_common.h"
#include "src/ir/builder.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

void AbortRateSweep() {
  // An abort re-executes its whole SER (here: a reduce task), so the cost
  // scale is "fraction of tasks containing at least one violating record".
  // We concentrate the overflowing accounts on `heavy` user ids: only the
  // reduce tasks whose buckets contain a heavy user abort. heavy=0 is pure
  // speculation success; as heavy grows, every task eventually re-executes —
  // the paper's "if data objects are not immutable, the transformed program
  // would always abort" limit.
  bench::PrintHeader("Ablation 1: fraction of aborting tasks vs speculation payoff");
  const int64_t kUsers = 800;
  const int64_t kPostsPerLight = 8;   // fits capacity 16, never resizes
  const int64_t kPostsPerHeavy = 40;  // overflows capacity 16, always resizes
  double clean_ms = 0.0;
  bool first = true;
  for (int64_t heavy : {0, 0, 1, 2, 4, 8, 16}) {  // first 0 is a warmup
    std::vector<SyntheticPost> posts;
    for (int64_t user = 0; user < kUsers; ++user) {
      int64_t count = user < heavy ? kPostsPerHeavy : kPostsPerLight;
      for (int64_t i = 0; i < count; ++i) {
        SyntheticPost post;
        post.user_id = user;
        post.text = "post body #" + std::to_string(i);
        posts.push_back(std::move(post));
      }
    }
    double total = 0.0;
    int aborted_tasks = 0;
    {
      EngineConfig config;
      config.execution.mode = EngineMode::kGerenuk;
      config.execution.heap_bytes = 64u << 20;
      config.execution.num_partitions = 8;
      SparkEngine engine(config);
      SparkWorkloads workloads(engine);
      workloads.RunAccountGrouping(posts, /*initial_capacity=*/16);
      total = engine.stats().times.TotalMillis();
      aborted_tasks = engine.stats().aborts;
    }
    if (first) {
      first = false;
      continue;  // warmup discarded
    }
    if (heavy == 0) {
      clean_ms = total;
    }
    std::printf("heavy-users=%2lld  aborted-tasks=%2d/8  time=%6.1fms  "
                "vs clean speculation: %+5.1f%%\n",
                static_cast<long long>(heavy), aborted_tasks, total,
                (total / clean_ms - 1.0) * 100.0);
  }
  std::printf("(every re-executed task adds its deserialization + recomputation on top of\n"
              " the wasted speculative work — at 8/8 the penalty is the paper's worst case)\n");
}

void FusedStageDepth() {
  bench::PrintHeader("Ablation 2: fused narrow-chain depth (map^k in one SER)");
  for (int depth : {1, 4, 8}) {
    double totals[2];
    for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
      EngineConfig config;
      config.execution.mode = mode;
      config.execution.heap_bytes = 48u << 20;
      config.execution.num_partitions = 4;
      SparkEngine engine(config);
      const Klass* pair = engine.heap().klasses().DefineClass(
          "Pair", {
                      {"key", FieldKind::kI64, nullptr, 0},
                      {"value", FieldKind::kF64, nullptr, 0},
                  });
      engine.RegisterDataType(pair);
      SerProgram udfs;
      Function* bump = udfs.AddFunction("bump");
      {
        FunctionBuilder b(bump);
        int rec = b.Param("rec", IrType::Ref(pair));
        bump->return_type = IrType::Ref(pair);
        int out = b.NewObject(pair);
        b.FieldStore(out, pair, "key", b.FieldLoad(rec, pair, "key"));
        b.FieldStore(out, pair, "value",
                     b.BinOp(BinOpKind::kAdd, b.FieldLoad(rec, pair, "value"), b.ConstF(1.0)));
        b.Return(out);
        b.Done();
      }
      DatasetPtr input = engine.Source(pair, 50000, [&](int64_t i, RootScope&) {
        ObjRef rec = engine.heap().AllocObject(pair);
        engine.heap().SetPrim<int64_t>(rec, pair->FindField("key")->offset, i);
        engine.heap().SetPrim<double>(rec, pair->FindField("value")->offset, 0.0);
        return rec;
      });
      std::vector<NarrowOp> ops(static_cast<size_t>(depth), NarrowOp::Map(bump, pair));
      engine.ResetMetrics();
      engine.RunStage(input, udfs, ops);
      totals[static_cast<int>(mode)] = engine.stats().times.TotalMillis();
    }
    std::printf("depth=%d  baseline=%7.1fms  gerenuk=%7.1fms  ratio=%.2f\n", depth, totals[0],
                totals[1], totals[1] / totals[0]);
  }
}

void HeapSensitivity() {
  bench::PrintHeader("Ablation 3: heap-size sensitivity (PageRank, shrinking heap)");
  SyntheticGraph graph = MakePowerLawGraph(4000, 20000, 77);
  for (size_t heap_mb : {64, 32, 20, 14}) {
    double totals[2];
    double gc[2];
    for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
      EngineConfig config;
      config.execution.mode = mode;
      config.execution.heap_bytes = heap_mb << 20;
      config.execution.num_partitions = 4;
      SparkEngine engine(config);
      SparkWorkloads workloads(engine);
      workloads.RunPageRank(graph, 8);
      totals[static_cast<int>(mode)] = engine.stats().times.TotalMillis();
      gc[static_cast<int>(mode)] = engine.stats().times.Millis(Phase::kGc);
    }
    std::printf("heap=%2zuMB  baseline=%7.1fms (gc=%5.1f)  gerenuk=%7.1fms (gc=%5.1f)  "
                "speedup=%.2fx\n",
                heap_mb, totals[0], gc[0], totals[1], gc[1], totals[0] / totals[1]);
  }
  std::printf("(the baseline degrades as the heap shrinks; Gerenuk's working set lives in\n"
              " native buffers and barely notices — the paper's Fig. 6 heap observation)\n");
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::AbortRateSweep();
  gerenuk::FusedStageDepth();
  gerenuk::HeapSensitivity();
  return 0;
}
