// Shared helpers for the benchmark harnesses: each bench binary regenerates
// one table or figure of the paper (see DESIGN.md's per-experiment index)
// and prints the corresponding rows.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/support/metrics.h"

namespace gerenuk {
namespace bench {

inline void PrintHeader(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

// Minimal streaming JSON emitter for machine-readable bench results
// (BENCH_*.json) so future PRs can diff a perf trajectory instead of
// re-reading prose. Usage mirrors the document structure:
//
//   JsonWriter j("BENCH_plans.json");
//   j.BeginObject();
//   j.Field("records_per_sec", 1.2e6);
//   j.BeginArray("op_mix");
//     j.BeginObject(); j.Field("op", "kBinOp"); j.Field("count", 42); j.End();
//   j.End();
//   j.End();
//
// Keys and string values are escaped only for quote/backslash/control
// characters — all this repo emits.
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path) : file_(std::fopen(path.c_str(), "w")) {}
  ~JsonWriter() {
    if (file_ != nullptr) {
      std::fprintf(file_, "\n");
      std::fclose(file_);
    }
  }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  void BeginObject(const char* key = nullptr) { Open(key, '{', '}'); }
  void BeginArray(const char* key = nullptr) { Open(key, '[', ']'); }
  void End() {
    char closer = stack_.back();
    stack_.pop_back();
    std::fprintf(file_, "%c", closer);
    first_ = false;
  }

  void Field(const char* key, double v) {
    Prefix(key);
    std::fprintf(file_, "%.6g", v);
  }
  void Field(const char* key, int64_t v) {
    Prefix(key);
    std::fprintf(file_, "%lld", static_cast<long long>(v));
  }
  void Field(const char* key, int v) { Field(key, static_cast<int64_t>(v)); }
  void Field(const char* key, const char* v) {
    Prefix(key);
    WriteString(v);
  }
  void Field(const char* key, const std::string& v) { Field(key, v.c_str()); }

 private:
  void Open(const char* key, char opener, char closer) {
    Prefix(key);
    std::fprintf(file_, "%c", opener);
    stack_.push_back(closer);
    first_ = true;
  }
  void Prefix(const char* key) {
    if (!first_) {
      std::fprintf(file_, ",");
    }
    first_ = false;
    if (key != nullptr) {
      WriteString(key);
      std::fprintf(file_, ":");
    }
  }
  void WriteString(const char* s) {
    std::fprintf(file_, "\"");
    for (; *s != '\0'; ++s) {
      unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        std::fprintf(file_, "\\%c", c);
      } else if (c < 0x20) {
        std::fprintf(file_, "\\u%04x", c);
      } else {
        std::fprintf(file_, "%c", c);
      }
    }
    std::fprintf(file_, "\"");
  }

  std::FILE* file_;
  std::vector<char> stack_;
  bool first_ = true;
};

// One stacked-bar row of Figure 6: per-phase milliseconds.
inline void PrintPhaseRow(const std::string& label, const PhaseTimes& times) {
  std::printf("%-26s total=%8.1fms  compute=%8.1f  gc=%7.1f  ser=%7.1f  deser=%7.1f\n",
              label.c_str(), times.TotalMillis(), times.Millis(Phase::kCompute),
              times.Millis(Phase::kGc), times.Millis(Phase::kSerialize),
              times.Millis(Phase::kDeserialize));
}

inline void PrintSpeedup(const char* label, double baseline_ms, double gerenuk_ms) {
  std::printf("%-26s speedup = %.2fx (baseline %.1fms / gerenuk %.1fms)\n", label,
              baseline_ms / gerenuk_ms, baseline_ms, gerenuk_ms);
}

}  // namespace bench
}  // namespace gerenuk

#endif  // BENCH_BENCH_COMMON_H_
