// Shared helpers for the benchmark harnesses: each bench binary regenerates
// one table or figure of the paper (see DESIGN.md's per-experiment index)
// and prints the corresponding rows.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/support/metrics.h"

namespace gerenuk {
namespace bench {

inline void PrintHeader(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

// One stacked-bar row of Figure 6: per-phase milliseconds.
inline void PrintPhaseRow(const std::string& label, const PhaseTimes& times) {
  std::printf("%-26s total=%8.1fms  compute=%8.1f  gc=%7.1f  ser=%7.1f  deser=%7.1f\n",
              label.c_str(), times.TotalMillis(), times.Millis(Phase::kCompute),
              times.Millis(Phase::kGc), times.Millis(Phase::kSerialize),
              times.Millis(Phase::kDeserialize));
}

inline void PrintSpeedup(const char* label, double baseline_ms, double gerenuk_ms) {
  std::printf("%-26s speedup = %.2fx (baseline %.1fms / gerenuk %.1fms)\n", label,
              baseline_ms / gerenuk_ms, baseline_ms, gerenuk_ms);
}

}  // namespace bench
}  // namespace gerenuk

#endif  // BENCH_BENCH_COMMON_H_
