// Figure 7: peak memory consumption (managed heap + native buffers,
// the simulator's analogue of the paper's process-level pmap sampling) for
// the Spark and Hadoop workloads in both engine modes.
#include <cmath>

#include "bench/bench_common.h"
#include "src/workloads/hadoop_workloads.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

void Run() {
  bench::PrintHeader("Figure 7(a): Spark peak memory, baseline vs Gerenuk");
  double geo_spark = 1.0;
  int spark_samples = 0;
  for (const char* name : {"PR", "KM", "LR", "CS", "GB"}) {
    int64_t peaks[2];
    for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
      EngineConfig config;
      config.execution.mode = mode;
      config.execution.heap_bytes = 48u << 20;
      config.execution.num_partitions = 4;
      SparkEngine engine(config);
      SparkWorkloads workloads(engine);
      std::string program(name);
      if (program == "PR") {
        workloads.RunPageRank(MakePowerLawGraph(3000, 15000, 11), 5);
      } else if (program == "KM") {
        workloads.RunKMeans(MakeClusteredPoints(5000, 10, 5, 22), 5, 4);
      } else if (program == "LR") {
        workloads.RunLogisticRegression(MakeLabeledPoints(5000, 10, 33), 4, 0.5);
      } else if (program == "CS") {
        workloads.RunChiSquareSelector(MakeLabeledPoints(15000, 12, 44));
      } else {
        workloads.RunGradientBoosting(MakeLabeledPoints(3000, 8, 55), 4, 0.3);
      }
      peaks[static_cast<int>(mode)] = engine.peak_memory_bytes();
    }
    std::printf("%-3s baseline=%10s  Gerenuk=%10s  ratio=%.2f\n", name,
                FormatBytes(peaks[0]).c_str(), FormatBytes(peaks[1]).c_str(),
                static_cast<double>(peaks[1]) / static_cast<double>(peaks[0]));
    geo_spark *= static_cast<double>(peaks[1]) / static_cast<double>(peaks[0]);
    spark_samples += 1;
  }
  std::printf("Spark geo-mean memory ratio: %.2f (paper: 0.82, up to 0.62)\n",
              std::pow(geo_spark, 1.0 / spark_samples));

  bench::PrintHeader("Figure 7(b): Hadoop peak memory, baseline vs Gerenuk");
  std::vector<SyntheticPost> posts = MakePosts(20000, 2000, 16, 71);
  std::vector<std::string> lines = MakeTextLines(2500, 10, 500, 72);
  double geo_hadoop = 1.0;
  int hadoop_samples = 0;
  for (const char* job : {"IUF", "UAH", "SPF", "UED", "CED", "IMC", "TFC"}) {
    int64_t peaks[2];
    for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
      HadoopConfig config;
      config.engine.execution.mode = mode;
      config.engine.execution.heap_bytes = 48u << 20;
      HadoopEngine engine(config);
      HadoopWorkloads workloads(engine);
      DatasetPtr post_input = workloads.MakePostInput(posts);
      DatasetPtr text_input = workloads.MakeTextInput(lines);
      std::string name(job);
      if (name == "IUF") {
        workloads.RunIuf(post_input);
      } else if (name == "UAH") {
        workloads.RunUah(post_input);
      } else if (name == "SPF") {
        workloads.RunSpf(post_input);
      } else if (name == "UED") {
        workloads.RunUed(post_input);
      } else if (name == "CED") {
        workloads.RunCed(post_input);
      } else if (name == "IMC") {
        workloads.RunImc(text_input);
      } else {
        workloads.RunTfc(text_input);
      }
      // Peak over the whole run including the input dataset resident in the
      // engine-mode representation.
      peaks[static_cast<int>(mode)] = engine.peak_memory_bytes();
    }
    std::printf("%-3s baseline=%10s  Gerenuk=%10s  ratio=%.2f\n", job,
                FormatBytes(peaks[0]).c_str(), FormatBytes(peaks[1]).c_str(),
                static_cast<double>(peaks[1]) / static_cast<double>(peaks[0]));
    geo_hadoop *= static_cast<double>(peaks[1]) / static_cast<double>(peaks[0]);
    hadoop_samples += 1;
  }
  std::printf("Hadoop geo-mean memory ratio: %.2f (paper: 0.69, up to 0.58)\n",
              std::pow(geo_hadoop, 1.0 / hadoop_samples));
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
