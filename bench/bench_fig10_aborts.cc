// Figure 10: the cost of SER aborts and re-executions.
//   (a) The StackOverflow Analytics application (§4.4): accounts whose
//       Vector overflows its capacity hit the resize violation — those
//       reduce groups abort and re-execute, making the Gerenuk version
//       slightly *slower* than the baseline (paper: 7%).
//   (b) PageRank with forced aborts, 0 to 20 re-executions: total time grows
//       ~9-14% per re-execution, ser/deser reappear, and peak memory rises.
#include "bench/bench_common.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

void Run() {
  bench::PrintHeader("Figure 10(a): StackOverflow Analytics — real resize aborts");
  std::vector<SyntheticPost> posts = MakePosts(30000, 3000, 8, 151);
  PhaseTimes times[2];
  int aborts[2] = {0, 0};
  double checksums[2];
  for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
    EngineConfig config;
    config.execution.mode = mode;
    config.execution.heap_bytes = 64u << 20;
    config.execution.num_partitions = 4;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);
    WorkloadResult result = workloads.RunAccountGrouping(posts, 4);
    times[static_cast<int>(mode)] = engine.stats().times;
    aborts[static_cast<int>(mode)] = engine.stats().aborts;
    checksums[static_cast<int>(mode)] = result.checksum;
  }
  GERENUK_CHECK_EQ(checksums[0], checksums[1]);
  bench::PrintPhaseRow("baseline", times[0]);
  bench::PrintPhaseRow("Gerenuk (with aborts)", times[1]);
  std::printf("aborted SER groups: %d; Gerenuk/baseline = %.2f "
              "(paper: 1.07 — aborts make Gerenuk slower here)\n",
              aborts[1], times[1].TotalMillis() / times[0].TotalMillis());

  bench::PrintHeader("Figure 10(b): PageRank with 0-20 forced aborts");
  SyntheticGraph graph = MakePowerLawGraph(2500, 12000, 161);
  PhaseTimes baseline;
  {
    EngineConfig config;
    config.execution.mode = EngineMode::kBaseline;
    config.execution.heap_bytes = 48u << 20;
    config.execution.num_partitions = 4;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);
    workloads.RunPageRank(graph, 10);
    baseline = engine.stats().times;
  }
  bench::PrintPhaseRow("vanilla Spark", baseline);
  {
    // Warmup: the first engine run in a process pays one-time costs (page
    // faults, allocator growth) that would otherwise pollute the 0-abort
    // reference point.
    EngineConfig config;
    config.execution.mode = EngineMode::kGerenuk;
    config.execution.heap_bytes = 48u << 20;
    config.execution.num_partitions = 2;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);
    workloads.RunPageRank(graph, 10);
  }
  double zero_aborts_ms = 0.0;
  for (int forced : {0, 1, 2, 5, 10, 15, 20}) {
    EngineConfig config;
    config.execution.mode = EngineMode::kGerenuk;
    config.execution.heap_bytes = 48u << 20;
    config.execution.num_partitions = 2;  // fewer, larger tasks: each abort wastes more
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);
    engine.ForceAborts(forced);
    workloads.RunPageRank(graph, 10);
    char label[64];
    std::snprintf(label, sizeof(label), "Gerenuk, %d re-execs", forced);
    bench::PrintPhaseRow(label, engine.stats().times);
    std::printf("    aborts=%d  peak=%s\n", engine.stats().aborts,
                FormatBytes(engine.peak_memory_bytes()).c_str());
    if (forced == 0) {
      zero_aborts_ms = engine.stats().times.TotalMillis();
    } else {
      double per_reexec =
          (engine.stats().times.TotalMillis() - zero_aborts_ms) / forced / zero_aborts_ms;
      std::printf("    overhead per re-execution vs clean Gerenuk run: %.1f%% "
                  "(paper: ~14%%)\n",
                  per_reexec * 100.0);
    }
  }
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
