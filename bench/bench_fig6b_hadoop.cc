// Figure 6(b) + Tables 2 & 3 (Hadoop rows): the seven Hadoop programs under
// the unmodified engine vs the Gerenuk-transformed engine, with per-phase
// breakdowns. The paper's observation that Hadoop gains less than Spark —
// its map-output buffers already hold serialized bytes, so there is less
// serialization to eliminate — carries over.
#include <cmath>

#include "bench/bench_common.h"
#include "src/workloads/hadoop_workloads.h"

namespace gerenuk {
namespace {

void Run() {
  bench::PrintHeader("Table 2: Hadoop programs");
  std::printf("IUF  StackOverflow*  Inactive Users Filtering\n");
  std::printf("UAH  StackOverflow*  Active User Activity Histogram\n");
  std::printf("SPF  StackOverflow*  Spam Posts Filtering\n");
  std::printf("UED  StackOverflow*  User Engagement Distribution\n");
  std::printf("CED  StackOverflow*  Community Expert Detection\n");
  std::printf("IMC  Wikipedia*      In-Map Combiner (word count w/ combiner)\n");
  std::printf("TFC  Wikipedia*      Term Frequency Calculation\n");
  std::printf("(* synthetic stand-ins for the full data dumps)\n");

  bench::PrintHeader("Figure 6(b): Hadoop runtime breakdown, baseline vs Gerenuk");
  std::vector<SyntheticPost> posts = MakePosts(30000, 2500, 16, 71);
  std::vector<std::string> lines = MakeTextLines(4000, 10, 500, 72);

  const char* jobs[] = {"IUF", "UAH", "SPF", "UED", "CED", "IMC", "TFC"};
  double geo_speedup = 1.0;
  double geo_app = 1.0;
  int samples = 0;
  PhaseTimes totals[2];
  for (const char* job : jobs) {
    PhaseTimes times[2];
    double checksums[2];
    for (EngineMode mode : {EngineMode::kBaseline, EngineMode::kGerenuk}) {
      HadoopConfig config;
      config.engine.execution.mode = mode;
      config.engine.execution.heap_bytes = 48u << 20;
      config.engine.execution.num_partitions = 4;
      config.num_reducers = 2;
      config.sort_buffer_bytes = 512 << 10;
      HadoopEngine engine(config);
      HadoopWorkloads workloads(engine);
      DatasetPtr post_input = workloads.MakePostInput(posts);
      DatasetPtr text_input = workloads.MakeTextInput(lines);
      WorkloadResult result;
      std::string name(job);
      if (name == "IUF") {
        result = workloads.RunIuf(post_input);
      } else if (name == "UAH") {
        result = workloads.RunUah(post_input);
      } else if (name == "SPF") {
        result = workloads.RunSpf(post_input);
      } else if (name == "UED") {
        result = workloads.RunUed(post_input);
      } else if (name == "CED") {
        result = workloads.RunCed(post_input);
      } else if (name == "IMC") {
        result = workloads.RunImc(text_input);
      } else {
        result = workloads.RunTfc(text_input);
      }
      times[static_cast<int>(mode)] = engine.stats().times;
      checksums[static_cast<int>(mode)] = result.checksum;
    }
    GERENUK_CHECK_EQ(checksums[0], checksums[1]) << job;
    bench::PrintPhaseRow(std::string(job) + " baseline", times[0]);
    bench::PrintPhaseRow(std::string(job) + " Gerenuk", times[1]);
    bench::PrintSpeedup(job, times[0].TotalMillis(), times[1].TotalMillis());
    geo_speedup *= times[0].TotalMillis() / times[1].TotalMillis();
    geo_app *= (times[1].Millis(Phase::kCompute) + 0.001) /
               (times[0].Millis(Phase::kCompute) + 0.001);
    totals[0] += times[0];
    totals[1] += times[1];
    samples += 1;
  }
  bench::PrintHeader("Table 3 (Hadoop row): Gerenuk normalized to baseline, geo-mean");
  std::printf("Overall: %.2f   App(non-GC): %.2f\n",
              1.0 / std::pow(geo_speedup, 1.0 / samples), std::pow(geo_app, 1.0 / samples));
  std::printf("(paper: Overall 0.72, App 0.74 — lower is better)\n");
  bench::PrintPhaseRow("all jobs, baseline", totals[0]);
  bench::PrintPhaseRow("all jobs, Gerenuk", totals[1]);
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
