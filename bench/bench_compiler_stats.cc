// §4.1/§4.2 compiler statistics: how much of the system+user code Gerenuk's
// static analysis selects and transforms per workload, and how many abort
// fences (statically detected potential violations) are inserted — the
// analogue of the paper's "55 classes transformed, 126 violation points,
// none triggered at run time".
#include "bench/bench_common.h"
#include "src/workloads/hadoop_workloads.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

void PrintStats(const char* name, const TransformStats& t, int aborts_triggered) {
  std::printf("%-8s funcs=%3d  stmts=%4d  fences=%3d "
              "[escape=%d native-space=%d native-call=%d metainfo=%d]  triggered=%d\n",
              name, t.functions_transformed, t.statements_transformed, t.aborts_inserted,
              t.violations_by_reason[0], t.violations_by_reason[1], t.violations_by_reason[2],
              t.violations_by_reason[3], aborts_triggered);
}

void Run() {
  bench::PrintHeader("Compiler statistics per workload (Gerenuk mode)");
  TransformStats grand_total;
  int total_funcs = 0;
  auto accumulate = [&grand_total, &total_funcs](const TransformStats& t) {
    grand_total.statements_transformed += t.statements_transformed;
    grand_total.aborts_inserted += t.aborts_inserted;
    total_funcs += t.functions_transformed;
  };

  // Spark workloads.
  for (const char* name : {"PR", "KM", "LR", "CS", "GB", "WC", "SO-App"}) {
    EngineConfig config;
    config.execution.mode = EngineMode::kGerenuk;
    config.execution.heap_bytes = 64u << 20;
    SparkEngine engine(config);
    SparkWorkloads workloads(engine);
    std::string program(name);
    if (program == "PR") {
      workloads.RunPageRank(MakePowerLawGraph(300, 1500, 1), 2);
    } else if (program == "KM") {
      workloads.RunKMeans(MakeClusteredPoints(300, 4, 3, 2), 3, 2);
    } else if (program == "LR") {
      workloads.RunLogisticRegression(MakeLabeledPoints(300, 5, 3), 2, 0.5);
    } else if (program == "CS") {
      workloads.RunChiSquareSelector(MakeLabeledPoints(300, 5, 4));
    } else if (program == "GB") {
      workloads.RunGradientBoosting(MakeLabeledPoints(300, 4, 5), 2, 0.3);
    } else if (program == "WC") {
      workloads.RunWordCount(MakeTextLines(100, 6, 50, 6));
    } else {
      workloads.RunAccountGrouping(MakePosts(500, 80, 4, 7), 4);
    }
    PrintStats(name, engine.stats().transform, engine.stats().aborts);
    accumulate(engine.stats().transform);
  }

  // Hadoop workloads (each in a fresh engine so per-job stats are visible).
  for (const char* job : {"IUF", "UAH", "SPF", "UED", "CED", "IMC", "TFC"}) {
    HadoopConfig config;
    config.engine.execution.mode = EngineMode::kGerenuk;
    config.engine.execution.heap_bytes = 64u << 20;
    HadoopEngine engine(config);
    HadoopWorkloads workloads(engine);
    DatasetPtr posts = workloads.MakePostInput(MakePosts(400, 60, 4, 8));
    DatasetPtr text = workloads.MakeTextInput(MakeTextLines(80, 6, 40, 9));
    std::string name(job);
    if (name == "IUF") {
      workloads.RunIuf(posts);
    } else if (name == "UAH") {
      workloads.RunUah(posts);
    } else if (name == "SPF") {
      workloads.RunSpf(posts);
    } else if (name == "UED") {
      workloads.RunUed(posts);
    } else if (name == "CED") {
      workloads.RunCed(posts);
    } else if (name == "IMC") {
      workloads.RunImc(text);
    } else {
      workloads.RunTfc(text);
    }
    PrintStats(job, engine.stats().transform, engine.stats().aborts);
    accumulate(engine.stats().transform);
  }

  std::printf("\nTotals: %d functions transformed, %d statements rewritten, "
              "%d abort fences inserted\n",
              total_funcs, grand_total.statements_transformed, grand_total.aborts_inserted);
  std::printf("(paper: 55 Spark classes + 22 Hadoop classes transformed; >126 violation "
              "points, none triggered except the SO-App's resize)\n");
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
