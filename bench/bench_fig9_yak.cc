// Figure 9: the Hadoop IMC program under three memory managers —
// Parallel-Scavenge (our generational collector), Yak (the region collector
// with per-task epochs), and Gerenuk (transformed, native buffers) — across
// two heap configurations. The paper's ordering: Gerenuk < Yak < PS in GC
// time, and Gerenuk fastest end-to-end because it also removes the
// computation and ser/deser costs Yak cannot touch.
#include "bench/bench_common.h"
#include "src/workloads/hadoop_workloads.h"

namespace gerenuk {
namespace {

struct Row {
  PhaseTimes times;
  HeapStats heap;
  int64_t barrier_stores = 0;
};

Row RunImc(const char* system, size_t heap_bytes, const std::vector<std::string>& lines) {
  HadoopConfig config;
  config.engine.execution.heap_bytes = heap_bytes;
  config.engine.execution.num_partitions = 4;
  config.num_reducers = 2;
  config.sort_buffer_bytes = 256 << 10;
  std::string name(system);
  if (name == "PS") {
    config.engine.execution.mode = EngineMode::kBaseline;
    config.engine.execution.gc = GcKind::kGenerational;
  } else if (name == "Yak") {
    config.engine.execution.mode = EngineMode::kBaseline;
    config.engine.execution.gc = GcKind::kRegion;
    config.yak_epochs = true;
  } else {
    config.engine.execution.mode = EngineMode::kGerenuk;
    config.engine.execution.gc = GcKind::kGenerational;
  }
  HadoopEngine engine(config);
  HadoopWorkloads workloads(engine);
  DatasetPtr input = workloads.MakeTextInput(lines);
  engine.heap().ResetStats();
  workloads.RunImc(input);
  Row row;
  row.times = engine.stats().times;
  row.heap = engine.heap().stats();
  row.barrier_stores = engine.heap().stats().barrier_stores;
  return row;
}

void Run() {
  bench::PrintHeader("Figure 9: Hadoop IMC under Parallel-Scavenge vs Yak vs Gerenuk");
  std::vector<std::string> lines = MakeTextLines(5000, 10, 600, 123);
  const size_t heaps[] = {20u << 20, 32u << 20};
  const char* heap_names[] = {"tight (20MB)", "roomy (32MB)"};
  for (int h = 0; h < 2; ++h) {
    std::printf("-- heap config: %s --\n", heap_names[h]);
    Row rows[3];
    const char* systems[] = {"PS", "Yak", "Gerenuk"};
    for (int s = 0; s < 3; ++s) {
      rows[s] = RunImc(systems[s], heaps[h], lines);
      bench::PrintPhaseRow(systems[s], rows[s].times);
      std::printf("    gc-pauses: minor=%lld major=%lld  barrier-stores=%lld\n",
                  static_cast<long long>(rows[s].heap.minor_gcs),
                  static_cast<long long>(rows[s].heap.major_gcs),
                  static_cast<long long>(rows[s].barrier_stores));
    }
    double ps_gc = rows[0].times.Millis(Phase::kGc) + 0.001;
    double yak_gc = rows[1].times.Millis(Phase::kGc) + 0.001;
    double ger_gc = rows[2].times.Millis(Phase::kGc) + 0.001;
    std::printf("GC time:    Gerenuk vs PS  %.1fx lower;  Gerenuk vs Yak %.1fx lower "
                "(paper: 13.7x, 1.2x)\n",
                ps_gc / ger_gc, yak_gc / ger_gc);
    std::printf("end-to-end: Gerenuk %.2fx vs PS, %.2fx vs Yak (paper: 2.4x, 1.8x)\n",
                rows[0].times.TotalMillis() / rows[2].times.TotalMillis(),
                rows[1].times.TotalMillis() / rows[2].times.TotalMillis());
  }
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
