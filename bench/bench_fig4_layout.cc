// Figure 4 / §2 analytical motivation: heap vs inlined representation of an
// array of three LabeledPoint objects. Prints the byte accounting; the
// inlined payload matches the paper's 112 bytes exactly, and the overhead
// ratio matches its "nearly 2x" observation (our header count differs by the
// explicit DenseVector wrapper — see EXPERIMENTS.md).
#include "bench/bench_common.h"
#include "src/runtime/roots.h"
#include "src/serde/heap_serializer.h"
#include "src/serde/inline_serializer.h"

namespace gerenuk {
namespace {

void Run() {
  bench::PrintHeader("Figure 4: object-based vs inlined layout of LabeledPoint[3]");
  HeapConfig config;
  config.capacity_bytes = 8 << 20;
  Heap heap(config);
  KlassRegistry& reg = heap.klasses();
  const Klass* f64_array = reg.DefineArray(FieldKind::kF64);
  const Klass* dense_vector =
      reg.DefineClass("DenseVector", {
                                         {"numActives", FieldKind::kI32, nullptr, 0},
                                         {"values", FieldKind::kRef, f64_array, 0},
                                     });
  const Klass* labeled_point =
      reg.DefineClass("LabeledPoint", {
                                          {"label", FieldKind::kF64, nullptr, 0},
                                          {"features", FieldKind::kRef, dense_vector, 0},
                                      });
  const Klass* lp_array = reg.DefineArray(FieldKind::kRef, labeled_point);

  RootScope scope(heap);
  size_t arr = scope.Push(heap.AllocArray(lp_array, 3));
  for (int i = 0; i < 3; ++i) {
    size_t values = scope.Push(heap.AllocArray(f64_array, 2));
    heap.ASet<double>(scope.Get(values), 0, 1.0);
    heap.ASet<double>(scope.Get(values), 1, 2.0);
    size_t vec = scope.Push(heap.AllocObject(dense_vector));
    heap.SetPrim<int32_t>(scope.Get(vec), dense_vector->FindField("numActives")->offset, 2);
    heap.SetRef(scope.Get(vec), dense_vector->FindField("values")->offset, scope.Get(values));
    size_t lp = scope.Push(heap.AllocObject(labeled_point));
    heap.SetPrim<double>(scope.Get(lp), labeled_point->FindField("label")->offset, i);
    heap.SetRef(scope.Get(lp), labeled_point->FindField("features")->offset, scope.Get(vec));
    heap.ASetRef(scope.Get(arr), i, scope.Get(lp));
  }

  HeapSerializer heap_serde(heap);
  InlineSerializer inline_serde(heap);
  int64_t heap_bytes = heap_serde.MeasureHeapBytes(scope.Get(arr), lp_array);
  int64_t inline_bytes = inline_serde.BodySize(scope.Get(arr), lp_array);
  std::printf("object-based representation : %5lld bytes "
              "(16-byte headers + 8-byte refs + padding)\n",
              static_cast<long long>(heap_bytes));
  std::printf("inlined native representation: %5lld bytes (paper: 4 + 3*36 = 112)\n",
              static_cast<long long>(inline_bytes));
  std::printf("space overhead               : %5lld bytes = %.2fx the payload "
              "(paper: \"nearly 2x\")\n",
              static_cast<long long>(heap_bytes - inline_bytes),
              static_cast<double>(heap_bytes - inline_bytes) /
                  static_cast<double>(inline_bytes));
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
