// Figure 6(a) + Tables 1 & 3 (Spark rows): end-to-end runtime of the five
// Spark programs under the unmodified engine vs the Gerenuk-transformed
// engine, across three executor heap sizes, with the per-phase breakdown
// (computation / GC / serialization / deserialization) of the stacked bars.
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

struct ProgramSpec {
  const char* name;
  const char* dataset;
  const char* data_type;
};

struct RunRow {
  PhaseTimes times;
  int64_t peak_bytes = 0;
  double checksum = 0.0;
};

RunRow RunOne(const char* name, EngineMode mode, size_t heap_bytes, int num_workers = 1,
              double* wall_ms = nullptr) {
  SparkConfig config;
  config.mode = mode;
  config.heap_bytes = heap_bytes;
  config.num_partitions = 4;
  config.num_workers = num_workers;
  SparkEngine engine(config);
  SparkWorkloads workloads(engine);

  WorkloadResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  std::string program(name);
  if (program == "PR") {
    result = workloads.RunPageRank(MakePowerLawGraph(4000, 20000, 11), 8);
  } else if (program == "KM") {
    result = workloads.RunKMeans(MakeClusteredPoints(6000, 10, 5, 22), 5, 5);
  } else if (program == "LR") {
    result = workloads.RunLogisticRegression(MakeLabeledPoints(6000, 10, 33), 5, 0.5);
  } else if (program == "CS") {
    result = workloads.RunChiSquareSelector(MakeLabeledPoints(20000, 12, 44));
  } else {
    result = workloads.RunGradientBoosting(MakeLabeledPoints(4000, 8, 55), 5, 0.3);
  }
  if (wall_ms != nullptr) {
    *wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                         wall_start)
                   .count();
  }
  RunRow row;
  row.times = engine.stats().times;
  row.peak_bytes = engine.peak_memory_bytes();
  row.checksum = result.checksum;
  return row;
}

void Run() {
  bench::PrintHeader("Table 1: Spark programs");
  const ProgramSpec programs[] = {
      {"PR", "synthetic power-law graph (4k vertices / 20k edges)", "VertexLinks, Rank"},
      {"KM", "synthetic 6k points, 10 features", "Point (DenseVector)"},
      {"LR", "synthetic 6k points, 10 features", "LabeledPoint, DenseVector"},
      {"CS", "synthetic 20k points, 12 features", "LabeledPoint, SparseVector"},
      {"GB", "synthetic 4k points, 8 features", "LabeledPoint, DenseVector"},
  };
  for (const ProgramSpec& spec : programs) {
    std::printf("%-3s %-52s %s\n", spec.name, spec.dataset, spec.data_type);
  }

  bench::PrintHeader("Figure 6(a): Spark runtime breakdown, baseline vs Gerenuk");
  // Three per-executor heap sizes (the paper's 10/15/20 GB, scaled to the
  // simulator's working sets).
  const size_t heaps[] = {24u << 20, 36u << 20, 48u << 20};
  const char* heap_names[] = {"small", "medium", "large"};
  double geo_speedup = 1.0;
  double geo_gc = 1.0;
  int gc_samples = 0;
  double geo_app = 1.0;
  int samples = 0;
  for (int h = 0; h < 3; ++h) {
    std::printf("-- heap: %s (%zu MB) --\n", heap_names[h], heaps[h] >> 20);
    for (const ProgramSpec& spec : programs) {
      RunRow baseline = RunOne(spec.name, EngineMode::kBaseline, heaps[h]);
      RunRow gerenuk = RunOne(spec.name, EngineMode::kGerenuk, heaps[h]);
      GERENUK_CHECK(std::abs(baseline.checksum - gerenuk.checksum) <=
                    1e-6 * (std::abs(baseline.checksum) + 1.0))
          << spec.name << ": transformed result diverged";
      bench::PrintPhaseRow(std::string(spec.name) + " baseline", baseline.times);
      bench::PrintPhaseRow(std::string(spec.name) + " Gerenuk", gerenuk.times);
      bench::PrintSpeedup(spec.name, baseline.times.TotalMillis(),
                          gerenuk.times.TotalMillis());
      geo_speedup *= baseline.times.TotalMillis() / gerenuk.times.TotalMillis();
      geo_app *= (gerenuk.times.Millis(Phase::kCompute) + 0.001) /
                 (baseline.times.Millis(Phase::kCompute) + 0.001);
      if (baseline.times.Get(Phase::kGc) > 0) {
        geo_gc *= (gerenuk.times.Millis(Phase::kGc) + 0.001) /
                  (baseline.times.Millis(Phase::kGc) + 0.001);
        gc_samples += 1;
      }
      samples += 1;
    }
  }
  bench::PrintHeader("Parallel scaling: Gerenuk wall clock vs num_workers");
  // Not a paper figure: this validates the task scheduler. Per-partition
  // tasks of every stage fan out to a worker pool; output bytes must be
  // identical at every worker count, so only the wall clock may move.
  {
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("host cores: %u%s\n", cores,
                cores <= 1 ? "  (single-core host: expect ~1.0x — scaling "
                             "needs real cores, the pool only adds overhead here)"
                           : "");
    const size_t heap = 36u << 20;
    double wall1 = 0.0;
    RunRow serial = RunOne("KM", EngineMode::kGerenuk, heap, 1, &wall1);
    std::printf("%-26s wall = %8.1fms  (reference)\n", "KM workers=1", wall1);
    for (int workers : {2, 4}) {
      double wall = 0.0;
      RunRow row = RunOne("KM", EngineMode::kGerenuk, heap, workers, &wall);
      GERENUK_CHECK(row.checksum == serial.checksum)
          << "KM workers=" << workers << ": result diverged from workers=1";
      std::printf("%-26s wall = %8.1fms  speedup = %.2fx  (checksum identical)\n",
                  ("KM workers=" + std::to_string(workers)).c_str(), wall, wall1 / wall);
    }
  }

  bench::PrintHeader("Table 3 (Spark row): Gerenuk normalized to baseline, geo-mean");
  std::printf("Overall: %.2f   App(non-GC): %.2f   GC: %.2f\n",
              1.0 / std::pow(geo_speedup, 1.0 / samples),
              std::pow(geo_app, 1.0 / samples),
              gc_samples > 0 ? std::pow(geo_gc, 1.0 / gc_samples) : 1.0);
  std::printf("(paper: Overall 0.51, App 0.50, GC 0.63 — lower is better)\n");
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
