// Figure 6(a) + Tables 1 & 3 (Spark rows): end-to-end runtime of the five
// Spark programs under the unmodified engine vs the Gerenuk-transformed
// engine, across three executor heap sizes, with the per-phase breakdown
// (computation / GC / serialization / deserialization) of the stacked bars.
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/ir/builder.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

struct ProgramSpec {
  const char* name;
  const char* dataset;
  const char* data_type;
};

struct RunRow {
  PhaseTimes times;
  int64_t peak_bytes = 0;
  double checksum = 0.0;
};

RunRow RunOne(const char* name, EngineMode mode, size_t heap_bytes, int num_workers = 1,
              double* wall_ms = nullptr) {
  EngineConfig config;
  config.execution.mode = mode;
  config.execution.heap_bytes = heap_bytes;
  config.execution.num_partitions = 4;
  config.execution.num_workers = num_workers;
  SparkEngine engine(config);
  SparkWorkloads workloads(engine);

  WorkloadResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  std::string program(name);
  if (program == "PR") {
    result = workloads.RunPageRank(MakePowerLawGraph(4000, 20000, 11), 8);
  } else if (program == "KM") {
    result = workloads.RunKMeans(MakeClusteredPoints(6000, 10, 5, 22), 5, 5);
  } else if (program == "LR") {
    result = workloads.RunLogisticRegression(MakeLabeledPoints(6000, 10, 33), 5, 0.5);
  } else if (program == "CS") {
    result = workloads.RunChiSquareSelector(MakeLabeledPoints(20000, 12, 44));
  } else {
    result = workloads.RunGradientBoosting(MakeLabeledPoints(4000, 8, 55), 5, 0.3);
  }
  if (wall_ms != nullptr) {
    *wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                         wall_start)
                   .count();
  }
  RunRow row;
  row.times = engine.stats().times;
  row.peak_bytes = engine.peak_memory_bytes();
  row.checksum = result.checksum;
  return row;
}

// Minimal map-only job for the abort-rate sweep: Pair{key:i64, value:f64}
// records through a value-doubling map stage.
struct AbortSweepJob {
  SparkEngine engine;
  const Klass* pair;
  SerProgram udfs;
  const Function* double_value;

  explicit AbortSweepJob(const EngineConfig& config) : engine(config) {
    KlassRegistry& reg = engine.heap().klasses();
    pair = reg.DefineClass("Pair", {
                                       {"key", FieldKind::kI64, nullptr, 0},
                                       {"value", FieldKind::kF64, nullptr, 0},
                                   });
    engine.RegisterDataType(pair);
    Function* f = udfs.AddFunction("double_value");
    FunctionBuilder b(f);
    int rec = b.Param("rec", IrType::Ref(pair));
    f->return_type = IrType::Ref(pair);
    int out = b.NewObject(pair);
    b.FieldStore(out, pair, "key", b.FieldLoad(rec, pair, "key"));
    b.FieldStore(out, pair, "value",
                 b.BinOp(BinOpKind::kMul, b.FieldLoad(rec, pair, "value"), b.ConstF(2.0)));
    b.Return(out);
    b.Done();
    double_value = f;
  }

  DatasetPtr MakeInput(int64_t count) {
    const Klass* k = pair;
    Heap* h = &engine.heap();
    return engine.Source(pair, count, [h, k](int64_t i, RootScope&) {
      ObjRef rec = h->AllocObject(k);
      h->SetPrim<int64_t>(rec, k->FindField("key")->offset, i % 100);
      h->SetPrim<double>(rec, k->FindField("value")->offset, (i % 13) - 6.0);
      return rec;
    });
  }
};

EngineConfig AbortSweepConfig(int parts, double governor_threshold) {
  EngineConfig config;
  config.execution.mode = EngineMode::kGerenuk;
  config.execution.heap_bytes = 48u << 20;
  config.execution.num_partitions = parts;
  config.execution.num_workers = 1;
  config.fault.governor_abort_threshold = governor_threshold;
  config.fault.governor_min_tasks = parts;
  return config;
}

// Wall clock of `reps` map stages with `aborts` of `parts` tasks forced to
// abort late in each stage (the paper's worst case: nearly all speculative
// work is wasted before the abort).
double SweepStagesMs(AbortSweepJob& job, const DatasetPtr& in, int reps, int aborts) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < reps; ++s) {
    if (aborts > 0) {
      job.engine.ForceAborts(aborts);
    }
    job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
  }
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

void RunAbortRateSweep() {
  bench::PrintHeader("Abort-rate sweep: speculation vs governor-degraded slow path");
  const int parts = 8;
  const int reps = 4;
  const int64_t records = 160000;

  // Degraded reference: one all-abort warmup stage flips the governor, then
  // every timed stage routes directly to the slow path. Its cost does not
  // depend on the abort rate — no speculative work is ever attempted.
  double degraded_ms = 0.0;
  {
    AbortSweepJob job(AbortSweepConfig(parts, 0.5));
    DatasetPtr in = job.MakeInput(records);
    job.engine.ForceAborts(parts);
    job.engine.RunStage(in, job.udfs, {NarrowOp::Map(job.double_value, job.pair)});
    GERENUK_CHECK(job.engine.stats().governor_flips == 1) << "governor did not flip";
    degraded_ms = SweepStagesMs(job, in, reps, 0);
    GERENUK_CHECK(job.engine.stats().slow_path_direct == parts * reps);
  }
  std::printf("degraded (direct slow path) = %8.1fms per %d stages, any abort rate\n",
              degraded_ms, reps);

  int crossover_pct = -1;
  for (int pct : {0, 25, 50, 75, 100}) {
    const int aborts = parts * pct / 100;
    AbortSweepJob job(AbortSweepConfig(parts, -1.0));  // governor off: always speculate
    DatasetPtr in = job.MakeInput(records);
    const double spec_ms = SweepStagesMs(job, in, reps, aborts);
    GERENUK_CHECK(job.engine.stats().aborts == aborts * reps);
    std::printf("abort rate %3d%%: speculate = %8.1fms   degraded = %8.1fms   -> %s\n", pct,
                spec_ms, degraded_ms,
                spec_ms > degraded_ms ? "degraded wins" : "speculate wins");
    if (crossover_pct < 0 && spec_ms > degraded_ms) {
      crossover_pct = pct;
    }
  }
  if (crossover_pct >= 0) {
    std::printf("crossover: speculation stops paying off at ~%d%% forced aborts — a\n"
                "governor_abort_threshold at or below this rate is worth enabling\n",
                crossover_pct);
  } else {
    std::printf("crossover: not reached — speculation won at every swept abort rate\n");
  }
}

void Run() {
  bench::PrintHeader("Table 1: Spark programs");
  const ProgramSpec programs[] = {
      {"PR", "synthetic power-law graph (4k vertices / 20k edges)", "VertexLinks, Rank"},
      {"KM", "synthetic 6k points, 10 features", "Point (DenseVector)"},
      {"LR", "synthetic 6k points, 10 features", "LabeledPoint, DenseVector"},
      {"CS", "synthetic 20k points, 12 features", "LabeledPoint, SparseVector"},
      {"GB", "synthetic 4k points, 8 features", "LabeledPoint, DenseVector"},
  };
  for (const ProgramSpec& spec : programs) {
    std::printf("%-3s %-52s %s\n", spec.name, spec.dataset, spec.data_type);
  }

  bench::PrintHeader("Figure 6(a): Spark runtime breakdown, baseline vs Gerenuk");
  // Three per-executor heap sizes (the paper's 10/15/20 GB, scaled to the
  // simulator's working sets).
  const size_t heaps[] = {24u << 20, 36u << 20, 48u << 20};
  const char* heap_names[] = {"small", "medium", "large"};
  double geo_speedup = 1.0;
  double geo_gc = 1.0;
  int gc_samples = 0;
  double geo_app = 1.0;
  int samples = 0;
  for (int h = 0; h < 3; ++h) {
    std::printf("-- heap: %s (%zu MB) --\n", heap_names[h], heaps[h] >> 20);
    for (const ProgramSpec& spec : programs) {
      RunRow baseline = RunOne(spec.name, EngineMode::kBaseline, heaps[h]);
      RunRow gerenuk = RunOne(spec.name, EngineMode::kGerenuk, heaps[h]);
      GERENUK_CHECK(std::abs(baseline.checksum - gerenuk.checksum) <=
                    1e-6 * (std::abs(baseline.checksum) + 1.0))
          << spec.name << ": transformed result diverged";
      bench::PrintPhaseRow(std::string(spec.name) + " baseline", baseline.times);
      bench::PrintPhaseRow(std::string(spec.name) + " Gerenuk", gerenuk.times);
      bench::PrintSpeedup(spec.name, baseline.times.TotalMillis(),
                          gerenuk.times.TotalMillis());
      geo_speedup *= baseline.times.TotalMillis() / gerenuk.times.TotalMillis();
      geo_app *= (gerenuk.times.Millis(Phase::kCompute) + 0.001) /
                 (baseline.times.Millis(Phase::kCompute) + 0.001);
      if (baseline.times.Get(Phase::kGc) > 0) {
        geo_gc *= (gerenuk.times.Millis(Phase::kGc) + 0.001) /
                  (baseline.times.Millis(Phase::kGc) + 0.001);
        gc_samples += 1;
      }
      samples += 1;
    }
  }
  bench::PrintHeader("Parallel scaling: Gerenuk wall clock vs num_workers");
  // Not a paper figure: this validates the task scheduler. Per-partition
  // tasks of every stage fan out to a worker pool; output bytes must be
  // identical at every worker count, so only the wall clock may move.
  {
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("host cores: %u%s\n", cores,
                cores <= 1 ? "  (single-core host: expect ~1.0x — scaling "
                             "needs real cores, the pool only adds overhead here)"
                           : "");
    const size_t heap = 36u << 20;
    double wall1 = 0.0;
    RunRow serial = RunOne("KM", EngineMode::kGerenuk, heap, 1, &wall1);
    std::printf("%-26s wall = %8.1fms  (reference)\n", "KM workers=1", wall1);
    for (int workers : {2, 4}) {
      double wall = 0.0;
      RunRow row = RunOne("KM", EngineMode::kGerenuk, heap, workers, &wall);
      GERENUK_CHECK(row.checksum == serial.checksum)
          << "KM workers=" << workers << ": result diverged from workers=1";
      std::printf("%-26s wall = %8.1fms  speedup = %.2fx  (checksum identical)\n",
                  ("KM workers=" + std::to_string(workers)).c_str(), wall, wall1 / wall);
    }
  }

  RunAbortRateSweep();

  bench::PrintHeader("Table 3 (Spark row): Gerenuk normalized to baseline, geo-mean");
  std::printf("Overall: %.2f   App(non-GC): %.2f   GC: %.2f\n",
              1.0 / std::pow(geo_speedup, 1.0 / samples),
              std::pow(geo_app, 1.0 / samples),
              gc_samples > 0 ? std::pow(geo_gc, 1.0 / gc_samples) : 1.0);
  std::printf("(paper: Overall 0.51, App 0.50, GC 0.63 — lower is better)\n");
}

}  // namespace
}  // namespace gerenuk

int main() {
  gerenuk::Run();
  return 0;
}
