// Multi-tenant service-mode harness. Prints human-readable rows and writes
// BENCH_service.json so future PRs can track the service trajectory:
//
//   1. Submit latency — the same job cold (first submission compiles its
//      plans) vs cache-hot (repeat submissions hit the signature-keyed
//      PlanCache and skip CompilePlan). The acceptance bar is hot < cold.
//   2. Throughput scaling — jobs/sec with 1, 4, and 16 concurrent tenants
//      against a fixed engine pool.
//   3. Fairness — under saturation, the per-tenant completed-job spread in
//      the first half of the run (DRR should keep max/min within 2x).
//   4. Resilience — cancel latency (cancel() on a running job to terminal
//      status) and breaker recovery time (TripBreaker to the close after
//      rebuild + probes).
//
// Run with --quick for the perf-smoke pass (smaller job counts, same shape).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/service/engine_service.h"
#include "tests/pair_job.h"

namespace gerenuk {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Per-slot setup payload: the Pair klasses + UDFs, built once per engine so
// repeat submissions share klass identity and keep the plan cache hot.
struct PairServiceSetup {
  PairUdfs spark;
  PairUdfs hadoop;
};

ServiceConfig BenchService(int num_engines) {
  ServiceConfig config;
  config.engine.execution.mode = EngineMode::kGerenuk;
  config.engine.execution.heap_bytes = 32u << 20;
  config.engine.execution.num_partitions = 4;
  config.engine.execution.num_workers = 2;
  config.num_engines = num_engines;
  config.max_queue_depth = 4096;
  config.max_queue_depth_per_tenant = 1024;
  config.setup = [](EngineContext& ctx) -> std::shared_ptr<void> {
    auto setup = std::make_shared<PairServiceSetup>();
    BuildPairUdfs(*ctx.spark, &setup->spark);
    BuildPairUdfs(*ctx.hadoop, &setup->hadoop);
    return setup;
  };
  return config;
}

// The benchmark job: a map stage over `records` Pair records. Returns the
// output bytes so the service path is end-to-end comparable to a direct run.
JobSpec MapJob(int64_t records) {
  JobSpec spec;
  spec.name = "map" + std::to_string(records);
  spec.run = [records](EngineContext& ctx) -> std::string {
    auto* setup = static_cast<PairServiceSetup*>(ctx.setup.get());
    const PairUdfs& u = setup->spark;
    DatasetPtr in = MakePairInput(*ctx.spark, u, records);
    DatasetPtr out = ctx.spark->RunStage(in, u.udfs, {NarrowOp::Map(u.double_value, u.pair)});
    std::vector<uint8_t> bytes = DatasetBytes(out);
    return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  };
  return spec;
}

// A heavier mixed job for the throughput/fairness sections.
JobSpec MixedJob(int kind, int64_t records) {
  JobSpec spec;
  spec.name = "mixed" + std::to_string(kind);
  spec.run = [kind, records](EngineContext& ctx) -> std::string {
    auto* setup = static_cast<PairServiceSetup*>(ctx.setup.get());
    const PairUdfs& u = setup->spark;
    DatasetPtr in = MakePairInput(*ctx.spark, u, records);
    DatasetPtr out;
    switch (kind % 3) {
      case 0:
        out = ctx.spark->RunStage(in, u.udfs, {NarrowOp::Map(u.double_value, u.pair)});
        break;
      case 1:
        out = ctx.spark->RunStage(in, u.udfs, {NarrowOp::FlatMap(u.explode, u.pair)});
        break;
      default:
        out = ctx.spark->ReduceByKey(in, u.udfs, {}, KeySpec{u.get_key, false}, u.sum_values);
        break;
    }
    std::vector<uint8_t> bytes = DatasetBytes(out);
    return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  };
  return spec;
}

void SubmitLatency(bench::JsonWriter& json, int hot_rounds) {
  bench::PrintHeader("Service 1: submit latency, cold compile vs plan-cache hit");
  EngineService service(BenchService(1));
  Session session = service.CreateSession("latency");

  Clock::time_point start = Clock::now();
  JobResult cold = session.Submit(MapJob(2000)).wait();
  double cold_ms = MsSince(start);
  GERENUK_CHECK(cold.status == JobStatus::kSucceeded) << cold.error;
  GERENUK_CHECK_EQ(cold.stats.plan_cache_hits, 0);
  GERENUK_CHECK_GT(cold.stats.plans_compiled, 0);

  double hot_ms = 1e30;  // best-of filters scheduler noise out of the ratio
  for (int i = 0; i < hot_rounds; ++i) {
    start = Clock::now();
    JobResult hot = session.Submit(MapJob(2000)).wait();
    hot_ms = std::min(hot_ms, MsSince(start));
    GERENUK_CHECK(hot.status == JobStatus::kSucceeded) << hot.error;
    GERENUK_CHECK_EQ(hot.stats.plans_compiled, 0) << "repeat submission must not recompile";
    GERENUK_CHECK_GT(hot.stats.plan_cache_hits, 0);
    GERENUK_CHECK(hot.output == cold.output) << "cache hit must be byte-identical";
  }
  PlanCache::Stats cache = service.plan_cache_stats();
  double hit_rate = static_cast<double>(cache.hits) /
                    static_cast<double>(cache.hits + cache.misses);
  std::printf("cold submit:       %8.2fms (compiles %lld plans)\n", cold_ms,
              static_cast<long long>(cold.stats.plans_compiled));
  std::printf("cache-hit submit:  %8.2fms (best of %d)\n", hot_ms, hot_rounds);
  std::printf("cold/hot = %.2fx  cache hit rate = %.1f%%\n", cold_ms / hot_ms,
              hit_rate * 100.0);

  json.BeginObject("submit_latency");
  json.Field("cold_ms", cold_ms);
  json.Field("cache_hit_ms", hot_ms);
  json.Field("cold_vs_hot", cold_ms / hot_ms);
  json.Field("plan_cache_hit_rate", hit_rate);
  json.Field("cache_hit_regression", hot_ms < cold_ms ? 0 : 1);
  json.End();
}

// One tenant thread: submit `jobs` mixed jobs, wait for each, record
// completion instants into `completions` (tenant index + ms offset).
struct Completion {
  int tenant;
  double ms;
};

double RunTenants(EngineService& service, int tenants, int jobs_per_tenant, int64_t records,
                  std::vector<Completion>* completions) {
  std::mutex mu;
  Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(tenants);
  for (int t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t] {
      Session session = service.CreateSession("tenant" + std::to_string(t));
      for (int j = 0; j < jobs_per_tenant; ++j) {
        JobResult result = session.Submit(MixedJob(j, records)).wait();
        GERENUK_CHECK(result.status == JobStatus::kSucceeded) << result.error;
        if (completions != nullptr) {
          std::lock_guard<std::mutex> lock(mu);
          completions->push_back({t, MsSince(start)});
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  return MsSince(start);
}

void ThroughputScaling(bench::JsonWriter& json, int num_engines, int jobs_per_tenant) {
  bench::PrintHeader("Service 2: jobs/sec vs concurrent tenants (fixed engine pool)");
  json.BeginArray("throughput");
  for (int tenants : {1, 4, 16}) {
    EngineService service(BenchService(num_engines));
    // Warm the caches so scaling measures dispatch, not first-compile.
    RunTenants(service, 1, 3, 400, nullptr);
    double elapsed_ms = RunTenants(service, tenants, jobs_per_tenant, 400, nullptr);
    int total_jobs = tenants * jobs_per_tenant;
    double jobs_per_sec = total_jobs / (elapsed_ms / 1000.0);
    PlanCache::Stats cache = service.plan_cache_stats();
    double hit_rate = static_cast<double>(cache.hits) /
                      static_cast<double>(cache.hits + cache.misses);
    std::printf("%2d tenants x %2d jobs on %d engines: %7.1f jobs/s  (%.0fms, hit rate %.1f%%)\n",
                tenants, jobs_per_tenant, num_engines, jobs_per_sec, elapsed_ms,
                hit_rate * 100.0);
    json.BeginObject();
    json.Field("tenants", tenants);
    json.Field("jobs", total_jobs);
    json.Field("engines", num_engines);
    json.Field("jobs_per_sec", jobs_per_sec);
    json.Field("plan_cache_hit_rate", hit_rate);
    json.End();
  }
  json.End();
}

void Fairness(bench::JsonWriter& json, int tenants, int jobs_per_tenant) {
  bench::PrintHeader("Service 3: DRR fairness under saturation");
  // One engine slot and many tenants: the queue stays saturated, so the
  // completion order is the dispatch order DRR chose.
  EngineService service(BenchService(1));
  RunTenants(service, 1, 3, 400, nullptr);  // warm the plan cache
  std::vector<Completion> completions;
  RunTenants(service, tenants, jobs_per_tenant, 400, &completions);

  // Per-tenant completed-job counts within the first half of the run: a fair
  // scheduler serves every saturated tenant at the same rate, so the spread
  // (max/min) stays near 1. The acceptance bar is < 2x.
  std::sort(completions.begin(), completions.end(),
            [](const Completion& a, const Completion& b) { return a.ms < b.ms; });
  size_t half = completions.size() / 2;
  std::vector<int64_t> counts(tenants, 0);
  for (size_t i = 0; i < half; ++i) {
    counts[completions[i].tenant] += 1;
  }
  int64_t min_count = *std::min_element(counts.begin(), counts.end());
  int64_t max_count = *std::max_element(counts.begin(), counts.end());
  double ratio = min_count > 0 ? static_cast<double>(max_count) / min_count : 1e30;
  std::printf("%d tenants x %d jobs, first %zu completions: per-tenant min=%lld max=%lld\n",
              tenants, jobs_per_tenant, half, static_cast<long long>(min_count),
              static_cast<long long>(max_count));
  std::printf("fairness ratio (max/min) = %.2fx (acceptance bar: < 2x)\n", ratio);

  json.BeginObject("fairness");
  json.Field("tenants", tenants);
  json.Field("jobs_per_tenant", jobs_per_tenant);
  json.Field("first_half_min", min_count);
  json.Field("first_half_max", max_count);
  json.Field("fairness_ratio", ratio);
  json.Field("fairness_regression", ratio < 2.0 ? 0 : 1);
  json.End();
}

void Resilience(bench::JsonWriter& json, int rounds) {
  bench::PrintHeader("Service 4: cancel latency and breaker recovery time");
  EngineService service(BenchService(1));
  Session session = service.CreateSession("resilience");
  RunTenants(service, 1, 3, 400, nullptr);  // warm the plan cache

  // Cancel latency: a long-running body (many stages) is cancelled mid-run;
  // measured from cancel() to the handle turning terminal — the cooperative
  // unwind reaching the next task-attempt boundary plus handle resolution.
  std::vector<double> cancel_ms;
  for (int i = 0; i < rounds; ++i) {
    auto started = std::make_shared<std::atomic<bool>>(false);
    JobSpec endless;
    endless.name = "endless";
    endless.run = [started](EngineContext& ctx) -> std::string {
      auto* setup = static_cast<PairServiceSetup*>(ctx.setup.get());
      const PairUdfs& u = setup->spark;
      for (;;) {
        DatasetPtr in = MakePairInput(*ctx.spark, u, 400);
        ctx.spark->RunStage(in, u.udfs, {NarrowOp::Map(u.double_value, u.pair)});
        started->store(true);
      }
    };
    JobHandle handle = session.Submit(std::move(endless));
    while (!started->load()) {
      std::this_thread::yield();
    }
    Clock::time_point start = Clock::now();
    handle.cancel();
    JobResult result = handle.wait();
    cancel_ms.push_back(MsSince(start));
    GERENUK_CHECK(result.status == JobStatus::kCancelled) << result.error;
  }
  std::sort(cancel_ms.begin(), cancel_ms.end());
  const double cancel_median = cancel_ms[cancel_ms.size() / 2];

  // Breaker recovery: TripBreaker, then feed probe jobs; measured from the
  // trip to the breaker closing — engine teardown, rebuild (including the
  // per-slot setup), and the probe successes.
  const auto baseline_closes = service.breaker_stats().closes;
  std::vector<double> recovery_ms;
  for (int i = 0; i < rounds; ++i) {
    Clock::time_point start = Clock::now();
    GERENUK_CHECK(service.TripBreaker(0));
    while (service.breaker_stats().closes <= baseline_closes + i) {
      JobResult probe = session.Submit(MapJob(400)).wait();
      GERENUK_CHECK(probe.status == JobStatus::kSucceeded) << probe.error;
    }
    recovery_ms.push_back(MsSince(start));
  }
  std::sort(recovery_ms.begin(), recovery_ms.end());
  const double recovery_median = recovery_ms[recovery_ms.size() / 2];

  std::printf("cancel latency:    %8.2fms median of %d (cancel -> terminal)\n", cancel_median,
              rounds);
  std::printf("breaker recovery:  %8.2fms median of %d (trip -> rebuilt + probes -> close)\n",
              recovery_median, rounds);

  json.BeginObject("resilience");
  json.Field("cancel_latency_ms", cancel_median);
  json.Field("breaker_recovery_ms", recovery_median);
  json.Field("rounds", static_cast<int64_t>(rounds));
  json.End();
}

}  // namespace
}  // namespace gerenuk

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  gerenuk::bench::JsonWriter json("BENCH_service.json");
  GERENUK_CHECK(json.ok()) << "cannot open BENCH_service.json for writing";
  json.BeginObject();
  gerenuk::SubmitLatency(json, quick ? 5 : 20);
  gerenuk::ThroughputScaling(json, /*num_engines=*/quick ? 2 : 4,
                             /*jobs_per_tenant=*/quick ? 4 : 12);
  gerenuk::Fairness(json, /*tenants=*/quick ? 4 : 8, /*jobs_per_tenant=*/quick ? 6 : 12);
  gerenuk::Resilience(json, /*rounds=*/quick ? 3 : 9);
  json.End();
  std::printf("\nwrote BENCH_service.json\n");
  return 0;
}
