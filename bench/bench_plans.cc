// Plan-compiler performance harness. Prints human-readable rows and writes
// BENCH_plans.json (op mix, records/sec, interpreter-vs-plan ratios) so
// future PRs can track the perf trajectory machine-readably.
//
//   1. Dispatch — the same arithmetic-loop UDF through the tree-walking
//      Interpreter and the direct-threaded PlanExecutor; pure dispatch cost,
//      no native data. The acceptance bar is >= 2x records/sec.
//   2. Stage throughput — a full map stage over Pair records with
//      use_plan_compiler off/on (what an engine user actually sees).
//   3. Tiny-record grouping — EXPERIMENTS.md's "limit worth naming":
//      computation-free grouping over tiny records, baseline vs Gerenuk
//      interpreter vs Gerenuk plans. The plan path is the fix.
//   4. Op mix of a representative compiled stage (fusion + folding rates).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "src/dataflow/stage_compiler.h"
#include "src/exec/plan.h"
#include "src/ir/builder.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The dispatch workload: one "record" = one call of a 64-iteration integer
// loop (~390 interpreted statements), the shape of a per-record UDF body.
Function* BuildSpin(SerProgram& prog) {
  Function* spin = prog.AddFunction("spin");
  FunctionBuilder b(spin);
  int n = b.Param("n", IrType::I64());
  spin->return_type = IrType::I64();
  int acc = b.Local("acc", IrType::I64());
  b.AssignTo(acc, b.ConstI(1));
  int three = b.ConstI(3);
  int seven = b.ConstI(7);
  b.For(n, [&](int i) {
    int t = b.BinOp(BinOpKind::kMul, i, three);
    int u = b.BinOp(BinOpKind::kXor, t, seven);
    b.AssignTo(acc, b.BinOp(BinOpKind::kAdd, acc, u));
  });
  b.Return(acc);
  b.Done();
  return spin;
}

// The prior run's dispatch rates, read from BENCH_plans.json in the working
// directory before JsonWriter truncates it; 0 when absent. The file's first
// occurrence of each key belongs to the dispatch section. Older files
// predate the vectorizer and carry only "plan_records_per_sec" (then the
// scalar rate); current files report the vectorized rate under that key and
// the scalar rate under "scalar_plan_records_per_sec", so the scalar
// baseline falls back to the legacy key when the new one is missing.
struct PriorRates {
  double plan = 0.0;    // primary dispatch rate (vectorized in new files)
  double scalar = 0.0;  // scalar plan dispatch rate
};

PriorRates ReadPriorPlanRps() {
  PriorRates prior;
  std::FILE* f = std::fopen("BENCH_plans.json", "r");
  if (f == nullptr) {
    return prior;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  auto find = [&](const char* key) {
    size_t pos = text.find(key);
    if (pos == std::string::npos) {
      return 0.0;
    }
    return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
  };
  prior.plan = find("\"plan_records_per_sec\":");
  prior.scalar = find("\"scalar_plan_records_per_sec\":");
  if (prior.scalar == 0.0) {
    prior.scalar = prior.plan;  // legacy single-rate file: scalar dispatch
  }
  return prior;
}

// Returns the number of regression guards that fired (0 = healthy).
int DispatchExperiment(bench::JsonWriter& json, const PriorRates& prior) {
  bench::PrintHeader("Plans 1: fast-path dispatch, interpreter vs compiled plan");
  SerProgram prog;
  Function* spin = BuildSpin(prog);
  Heap heap(HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2});
  WellKnown wk{heap};
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  const std::vector<Value> args = {Value::I64(64)};
  constexpr int kCalls = 200000;

  // Alternate interpreter/plan rounds and keep each side's best: on a shared
  // single-core host, best-of filters scheduler interference out of the ratio.
  constexpr int kRounds = 5;
  int64_t sum = 0;
  double interp_rps = 0.0;
  double scalar_rps = 0.0;
  double vec_rps = 0.0;
  pool.FoldConstants();
  PlanOptions scalar_options;
  scalar_options.vectorize = false;
  std::shared_ptr<const SerPlan> scalar_plan = CompilePlan(prog, layouts, scalar_options);
  std::shared_ptr<const SerPlan> vec_plan = CompilePlan(prog, layouts);
  GERENUK_CHECK_EQ(scalar_plan->vec_loops(), 0);
  GERENUK_CHECK_GT(vec_plan->vec_loops(), 0);  // spin must vectorize
  Interpreter interp(prog, heap, wk, &layouts, nullptr);
  PlanExecutor scalar_exec(*scalar_plan, heap, wk, &layouts, nullptr);
  PlanExecutor vec_exec(*vec_plan, heap, wk, &layouts, nullptr);
  for (int i = 0; i < kCalls / 10; ++i) {  // warmup all three paths
    sum += interp.CallFunction(spin, args).i;
    sum += scalar_exec.CallFunction(spin, args).i;
    sum += vec_exec.CallFunction(spin, args).i;
  }
  GERENUK_CHECK_EQ(scalar_exec.CallFunction(spin, args).i,
                   vec_exec.CallFunction(spin, args).i);
  for (int round = 0; round < kRounds; ++round) {
    // Re-warm after each executor switch: alternating rounds retrain the
    // indirect-branch predictor, which otherwise taxes whichever side just
    // took over (the direct-threaded plan loop most of all).
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += interp.CallFunction(spin, args).i;
    }
    double start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += interp.CallFunction(spin, args).i;
    }
    interp_rps = std::max(interp_rps, kCalls / ((NowMs() - start) / 1000.0));
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += scalar_exec.CallFunction(spin, args).i;
    }
    start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += scalar_exec.CallFunction(spin, args).i;
    }
    scalar_rps = std::max(scalar_rps, kCalls / ((NowMs() - start) / 1000.0));
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += vec_exec.CallFunction(spin, args).i;
    }
    start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += vec_exec.CallFunction(spin, args).i;
    }
    vec_rps = std::max(vec_rps, kCalls / ((NowMs() - start) / 1000.0));
  }
  // The vectorized plan with the sampled op profiler on (stride 64): the
  // dispatch loop switches to its profiled instantiation, so this is the
  // whole tracing-on surcharge for pure dispatch. Vec handlers charge their
  // opcode once per lane, so the profile stays per-element.
  PlanExecutor profiled(*vec_plan, heap, wk, &layouts, nullptr);
  OpProfile profile;
  profiled.EnableProfiling(&profile, /*stride=*/64);
  double profiled_rps = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += profiled.CallFunction(spin, args).i;
    }
    double start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += profiled.CallFunction(spin, args).i;
    }
    profiled_rps = std::max(profiled_rps, kCalls / ((NowMs() - start) / 1000.0));
  }
  GERENUK_CHECK_NE(sum, 0);  // keep the loops observable
  GERENUK_CHECK_GT(profile.samples, 0);
  double ratio = vec_rps / interp_rps;
  std::printf("spin plan: ops=%lld fused=%lld copies elided=%lld vec loops=%lld "
              "ops vectorized=%lld layout=%s\n",
              static_cast<long long>(vec_plan->ops_total()),
              static_cast<long long>(vec_plan->ops_fused()),
              static_cast<long long>(vec_plan->ops_copies_elided()),
              static_cast<long long>(vec_plan->vec_loops()),
              static_cast<long long>(vec_plan->ops_vectorized()), vec_plan->layout());
  for (size_t k = 0; k < static_cast<size_t>(PlanOpCode::kCount); ++k) {
    if (vec_plan->op_counts()[k] > 0) {
      std::printf("  %-24s %6lld\n", PlanOpName(static_cast<PlanOpCode>(k)),
                  static_cast<long long>(vec_plan->op_counts()[k]));
    }
  }
  std::printf("interpreter: %10.0f records/s\n", interp_rps);
  std::printf("scalar plan: %10.0f records/s\n", scalar_rps);
  std::printf("vec plan:    %10.0f records/s (%.2fx scalar)\n", vec_rps,
              vec_rps / scalar_rps);
  std::printf("vec+profiler: %9.0f records/s (stride 64, %.1f%% surcharge)\n", profiled_rps,
              (vec_rps - profiled_rps) / vec_rps * 100.0);
  std::printf("plan/interpreter = %.2fx (acceptance bar: >= 2x)\n", ratio);

  int regressions = 0;

  // Tracing-off overhead guard: the unprofiled scalar dispatch loop must
  // stay within 5% of the prior run's scalar rate (the profiler is a
  // separate template instantiation precisely so the off path carries no
  // new instructions, and the vectorizer must not tax scalar dispatch).
  double tracing_off_overhead_pct = 0.0;
  int tracing_off_regression = 0;
  if (prior.scalar > 0.0) {
    tracing_off_overhead_pct = (prior.scalar - scalar_rps) / prior.scalar * 100.0;
    std::printf("tracing-off scalar dispatch vs prior BENCH_plans.json: %+.1f%% (budget: 5%%)\n",
                tracing_off_overhead_pct);
    if (tracing_off_overhead_pct > 5.0) {
      tracing_off_regression = 1;
      regressions += 1;
      std::fprintf(stderr,
                   "REGRESSION: tracing-off scalar plan dispatch is %.1f%% slower than the "
                   "prior run (%.0f vs %.0f records/s; budget 5%%)\n",
                   tracing_off_overhead_pct, scalar_rps, prior.scalar);
    }
  } else {
    std::printf("tracing-off overhead guard: no prior BENCH_plans.json, skipping\n");
  }

  // Vectorized-path guard: the vec dispatch loop must never fall more than
  // 5% below the prior run's *scalar* plan rate — the floor a broken
  // vectorizer (bailing every strip, or pessimizing the loop) would breach.
  double vec_vs_prior_scalar_pct = 0.0;
  int vec_regression = 0;
  if (prior.scalar > 0.0) {
    vec_vs_prior_scalar_pct = (vec_rps - prior.scalar) / prior.scalar * 100.0;
    std::printf("vec dispatch vs prior scalar rate: %+.1f%% (floor: -5%%)\n",
                vec_vs_prior_scalar_pct);
    if (vec_vs_prior_scalar_pct < -5.0) {
      vec_regression = 1;
      regressions += 1;
      std::fprintf(stderr,
                   "REGRESSION: vectorized plan dispatch is %.1f%% below the prior run's "
                   "scalar rate (%.0f vs %.0f records/s; floor -5%%)\n",
                   -vec_vs_prior_scalar_pct, vec_rps, prior.scalar);
    }
  } else {
    std::printf("vec regression guard: no prior BENCH_plans.json, skipping\n");
  }

  json.BeginObject("dispatch");
  json.Field("interpreter_records_per_sec", interp_rps);
  json.Field("plan_records_per_sec", vec_rps);  // primary rate: the default path
  json.Field("scalar_plan_records_per_sec", scalar_rps);
  json.Field("profiled_records_per_sec", profiled_rps);
  json.Field("profiler_overhead_pct", (vec_rps - profiled_rps) / vec_rps * 100.0);
  json.Field("plan_vs_interpreter", ratio);
  json.Field("vec_vs_scalar", vec_rps / scalar_rps);
  json.Field("vec_loops", vec_plan->vec_loops());
  json.Field("ops_vectorized", vec_plan->ops_vectorized());
  json.Field("layout", vec_plan->layout());
  json.Field("tracing_off_overhead_pct", tracing_off_overhead_pct);
  json.Field("tracing_off_regression", tracing_off_regression);
  json.Field("vec_vs_prior_scalar_pct", vec_vs_prior_scalar_pct);
  json.Field("vec_regression", vec_regression);
  json.End();
  return regressions;
}

void StageThroughput(bench::JsonWriter& json) {
  bench::PrintHeader("Plans 2: full map-stage throughput, use_plan_compiler off/on");
  constexpr int64_t kRecords = 120000;
  double rps[2] = {0.0, 0.0};
  for (bool use_plans : {false, true}) {
    EngineConfig config;
    config.execution.mode = EngineMode::kGerenuk;
    config.execution.heap_bytes = 64u << 20;
    config.execution.num_partitions = 4;
    config.execution.use_plan_compiler = use_plans;
    SparkEngine engine(config);
    const Klass* pair = engine.heap().klasses().DefineClass(
        "Pair", {
                    {"key", FieldKind::kI64, nullptr, 0},
                    {"value", FieldKind::kF64, nullptr, 0},
                });
    engine.RegisterDataType(pair);
    SerProgram udfs;
    Function* bump = udfs.AddFunction("bump");
    {
      FunctionBuilder b(bump);
      int rec = b.Param("rec", IrType::Ref(pair));
      bump->return_type = IrType::Ref(pair);
      int out = b.NewObject(pair);
      b.FieldStore(out, pair, "key", b.FieldLoad(rec, pair, "key"));
      b.FieldStore(out, pair, "value",
                   b.BinOp(BinOpKind::kMul, b.FieldLoad(rec, pair, "value"), b.ConstF(2.0)));
      b.Return(out);
      b.Done();
    }
    DatasetPtr input = engine.Source(pair, kRecords, [&](int64_t i, RootScope&) {
      ObjRef rec = engine.heap().AllocObject(pair);
      engine.heap().SetPrim<int64_t>(rec, pair->FindField("key")->offset, i % 97);
      engine.heap().SetPrim<double>(rec, pair->FindField("value")->offset, i * 0.5);
      return rec;
    });
    engine.RunStage(input, udfs, {NarrowOp::Map(bump, pair)});  // warmup
    engine.ResetMetrics();
    double start = NowMs();
    engine.RunStage(input, udfs, {NarrowOp::Map(bump, pair)});
    double elapsed_s = (NowMs() - start) / 1000.0;
    rps[use_plans ? 1 : 0] = kRecords / elapsed_s;
    std::printf("%-12s %10.0f records/s  (%.1fms for %lld records)\n",
                use_plans ? "plan:" : "interpreter:", rps[use_plans ? 1 : 0],
                elapsed_s * 1000.0, static_cast<long long>(kRecords));
  }
  std::printf("plan/interpreter = %.2fx end-to-end\n", rps[1] / rps[0]);

  json.BeginObject("map_stage");
  json.Field("records", static_cast<int64_t>(kRecords));
  json.Field("interpreter_records_per_sec", rps[0]);
  json.Field("plan_records_per_sec", rps[1]);
  json.Field("plan_vs_interpreter", rps[1] / rps[0]);
  json.End();
}

void TinyRecordGrouping(bench::JsonWriter& json) {
  bench::PrintHeader(
      "Plans 3: tiny-record computation-free grouping (EXPERIMENTS.md's limit)");
  // Ablation 1's clean setting: 800 users x 8 tiny posts, capacity 16 so no
  // resize violations fire; pure grouping, no computation to amortize.
  std::vector<SyntheticPost> posts;
  for (int64_t user = 0; user < 800; ++user) {
    for (int64_t i = 0; i < 8; ++i) {
      SyntheticPost post;
      post.user_id = user;
      post.text = "post body #" + std::to_string(i);
      posts.push_back(std::move(post));
    }
  }
  struct Cell {
    const char* label;
    EngineMode mode;
    bool plans;
    double ms;
  };
  Cell cells[] = {
      {"baseline", EngineMode::kBaseline, false, 0.0},
      {"gerenuk-interpreter", EngineMode::kGerenuk, false, 0.0},
      {"gerenuk-plan", EngineMode::kGerenuk, true, 0.0},
  };
  for (Cell& cell : cells) {
    double best = 0.0;
    for (int round = 0; round < 3; ++round) {  // round 0 is a warmup
      EngineConfig config;
      config.execution.mode = cell.mode;
      config.execution.heap_bytes = 64u << 20;
      config.execution.num_partitions = 8;
      config.execution.use_plan_compiler = cell.plans;
      SparkEngine engine(config);
      SparkWorkloads workloads(engine);
      workloads.RunAccountGrouping(posts, /*initial_capacity=*/16);
      double total = engine.stats().times.TotalMillis();
      if (round > 0 && (best == 0.0 || total < best)) {
        best = total;
      }
    }
    cell.ms = best;
    std::printf("%-22s %7.1fms\n", cell.label, cell.ms);
  }
  double interp_ratio = cells[1].ms / cells[0].ms;
  double plan_ratio = cells[2].ms / cells[0].ms;
  std::printf("gerenuk/baseline: interpreter %.2fx -> plan %.2fx (1.0 = parity; "
              "lower is better)\n",
              interp_ratio, plan_ratio);

  json.BeginObject("tiny_record_grouping");
  json.Field("baseline_ms", cells[0].ms);
  json.Field("gerenuk_interpreter_ms", cells[1].ms);
  json.Field("gerenuk_plan_ms", cells[2].ms);
  json.Field("interpreter_vs_baseline", interp_ratio);
  json.Field("plan_vs_baseline", plan_ratio);
  json.End();
}

void OpMix(bench::JsonWriter& json) {
  bench::PrintHeader("Plans 4: op mix of a compiled map stage");
  Heap heap(HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2});
  KlassRegistry& reg = heap.klasses();
  const Klass* pair = reg.DefineClass("Pair", {
                                                  {"key", FieldKind::kI64, nullptr, 0},
                                                  {"value", FieldKind::kF64, nullptr, 0},
                                              });
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  std::string error;
  GERENUK_CHECK(layouts.AnalyzeTopLevel(pair, &error)) << error;
  SerProgram udfs;
  Function* bump = udfs.AddFunction("bump");
  {
    FunctionBuilder b(bump);
    int rec = b.Param("rec", IrType::Ref(pair));
    bump->return_type = IrType::Ref(pair);
    int out = b.NewObject(pair);
    b.FieldStore(out, pair, "key", b.FieldLoad(rec, pair, "key"));
    b.FieldStore(out, pair, "value",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(rec, pair, "value"), b.ConstF(1.0)));
    b.Return(out);
    b.Done();
  }
  TransformStats tstats;
  StagePrograms stage = CompileNarrowStage(EngineMode::kGerenuk, layouts, pair, udfs,
                                           {NarrowOp::Map(bump, pair)}, false, nullptr,
                                           &tstats, reg);
  pool.FoldConstants();
  std::shared_ptr<const SerPlan> plan = CompilePlan(*stage.transformed, layouts);
  double run_len_avg =
      plan->run_count() > 0
          ? static_cast<double>(plan->run_len_sum()) / static_cast<double>(plan->run_count())
          : 0.0;
  std::printf("ops=%lld fused=%lld copies elided=%lld offsets folded=%lld symbolic=%lld\n",
              static_cast<long long>(plan->ops_total()),
              static_cast<long long>(plan->ops_fused()),
              static_cast<long long>(plan->ops_copies_elided()),
              static_cast<long long>(plan->offsets_folded()),
              static_cast<long long>(plan->offsets_symbolic()));
  std::printf("fused runs=%lld (avg len %.1f, max %lld)  vec loops=%lld rejected=%lld "
              "ops vectorized=%lld layout=%s\n",
              static_cast<long long>(plan->run_count()), run_len_avg,
              static_cast<long long>(plan->run_len_max()),
              static_cast<long long>(plan->vec_loops()),
              static_cast<long long>(plan->vec_loops_rejected()),
              static_cast<long long>(plan->ops_vectorized()), plan->layout());
  for (const std::string& why : plan->vec_reject_reasons()) {
    std::printf("  vec reject: %s\n", why.c_str());
  }

  json.BeginObject("op_mix");
  json.Field("ops_total", plan->ops_total());
  json.Field("ops_fused", plan->ops_fused());
  json.Field("ops_copies_elided", plan->ops_copies_elided());
  json.Field("offsets_folded", plan->offsets_folded());
  json.Field("offsets_symbolic", plan->offsets_symbolic());
  json.Field("fused_run_count", plan->run_count());
  json.Field("fused_run_len_avg", run_len_avg);
  json.Field("fused_run_len_max", plan->run_len_max());
  json.Field("vec_loops", plan->vec_loops());
  json.Field("vec_loops_rejected", plan->vec_loops_rejected());
  json.Field("ops_vectorized", plan->ops_vectorized());
  json.Field("layout", plan->layout());
  json.BeginArray("vec_reject_reasons");
  for (const std::string& why : plan->vec_reject_reasons()) {
    json.BeginObject();
    json.Field("reason", why);
    json.End();
  }
  json.End();
  json.BeginArray("ops");
  for (size_t i = 0; i < static_cast<size_t>(PlanOpCode::kCount); ++i) {
    if (plan->op_counts()[i] == 0) {
      continue;
    }
    PlanOpCode code = static_cast<PlanOpCode>(i);
    std::printf("  %-22s %4lld\n", PlanOpName(code),
                static_cast<long long>(plan->op_counts()[i]));
    json.BeginObject();
    json.Field("op", PlanOpName(code));
    json.Field("count", plan->op_counts()[i]);
    json.End();
  }
  json.End();
  json.End();
}

// Plans 5: the layout cost model's other bucket. A loop whose body chases a
// heap pointer (FieldLoad) every iteration must stay row-layout: the
// vectorizer rejects it, the plan is op-for-op what the scalar compiler
// emits, and turning `vectorize` on must cost nothing. This is the
// acceptance bar "row-layout ablation no worse than the scalar plan path".
int RowLayoutAblation(bench::JsonWriter& json) {
  bench::PrintHeader("Plans 5: row-layout ablation (pointer-chasing loop, vec on vs off)");
  Heap heap(HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2});
  WellKnown wk{heap};
  const Klass* pair = heap.klasses().DefineClass(
      "Pair", {
                  {"key", FieldKind::kI64, nullptr, 0},
                  {"value", FieldKind::kF64, nullptr, 0},
              });
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  SerProgram prog;
  Function* row_spin = prog.AddFunction("row_spin");
  {
    FunctionBuilder b(row_spin);
    int rec = b.Param("rec", IrType::Ref(pair));
    int n = b.Param("n", IrType::I64());
    row_spin->return_type = IrType::I64();
    int acc = b.Local("acc", IrType::I64());
    b.AssignTo(acc, b.ConstI(1));
    b.For(n, [&](int i) {
      int k = b.FieldLoad(rec, pair, "key");  // the pointer-chasing op
      int t = b.BinOp(BinOpKind::kMul, i, k);
      b.AssignTo(acc, b.BinOp(BinOpKind::kAdd, acc, t));
    });
    b.Return(acc);
    b.Done();
  }
  pool.FoldConstants();
  PlanOptions scalar_options;
  scalar_options.vectorize = false;
  std::shared_ptr<const SerPlan> scalar_plan = CompilePlan(prog, layouts, scalar_options);
  std::shared_ptr<const SerPlan> vec_plan = CompilePlan(prog, layouts);
  // The cost model must keep this loop in the row bucket in both configs.
  GERENUK_CHECK_EQ(vec_plan->vec_loops(), 0);
  GERENUK_CHECK_GT(vec_plan->vec_loops_rejected(), 0);
  GERENUK_CHECK_EQ(vec_plan->ops_total(), scalar_plan->ops_total());
  const char* reject =
      vec_plan->vec_reject_reasons().empty() ? "" : vec_plan->vec_reject_reasons()[0].c_str();
  std::printf("row_spin: layout=%s vec loops rejected=%lld (%s)\n", vec_plan->layout(),
              static_cast<long long>(vec_plan->vec_loops_rejected()), reject);

  RootScope scope(heap);
  size_t rec_slot = scope.Push(heap.AllocObject(pair));
  heap.SetPrim<int64_t>(scope.Get(rec_slot), pair->FindField("key")->offset, 3);
  const std::vector<Value> args = {Value::Ref(static_cast<int64_t>(scope.Get(rec_slot))),
                                   Value::I64(64)};
  constexpr int kCalls = 100000;
  constexpr int kRounds = 5;
  int64_t sum = 0;
  double off_rps = 0.0;
  double on_rps = 0.0;
  PlanExecutor off_exec(*scalar_plan, heap, wk, &layouts, nullptr);
  PlanExecutor on_exec(*vec_plan, heap, wk, &layouts, nullptr);
  for (int i = 0; i < kCalls / 10; ++i) {  // warmup
    sum += off_exec.CallFunction(row_spin, args).i;
    sum += on_exec.CallFunction(row_spin, args).i;
  }
  GERENUK_CHECK_EQ(off_exec.CallFunction(row_spin, args).i,
                   on_exec.CallFunction(row_spin, args).i);
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += off_exec.CallFunction(row_spin, args).i;
    }
    double start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += off_exec.CallFunction(row_spin, args).i;
    }
    off_rps = std::max(off_rps, kCalls / ((NowMs() - start) / 1000.0));
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += on_exec.CallFunction(row_spin, args).i;
    }
    start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += on_exec.CallFunction(row_spin, args).i;
    }
    on_rps = std::max(on_rps, kCalls / ((NowMs() - start) / 1000.0));
  }
  GERENUK_CHECK_NE(sum, 0);
  double overhead_pct = (off_rps - on_rps) / off_rps * 100.0;
  std::printf("vectorize off: %10.0f records/s\n", off_rps);
  std::printf("vectorize on:  %10.0f records/s (%+.1f%% vs off; budget: 5%%)\n", on_rps,
              -overhead_pct);
  int row_regression = 0;
  if (overhead_pct > 5.0) {
    row_regression = 1;
    std::fprintf(stderr,
                 "REGRESSION: row-layout plan with vectorize on is %.1f%% slower than with "
                 "vectorize off (%.0f vs %.0f records/s; budget 5%%)\n",
                 overhead_pct, on_rps, off_rps);
  }

  json.BeginObject("row_layout_ablation");
  json.Field("layout", vec_plan->layout());
  json.Field("vec_loops_rejected", vec_plan->vec_loops_rejected());
  json.Field("reject_reason", reject);
  json.Field("vectorize_off_records_per_sec", off_rps);
  json.Field("vectorize_on_records_per_sec", on_rps);
  json.Field("vectorize_on_overhead_pct", overhead_pct);
  json.Field("row_layout_regression", row_regression);
  json.End();
  return row_regression;
}

}  // namespace
}  // namespace gerenuk

int main() {
  // Read the prior rates before JsonWriter truncates the file.
  gerenuk::PriorRates prior = gerenuk::ReadPriorPlanRps();
  gerenuk::bench::JsonWriter json("BENCH_plans.json");
  GERENUK_CHECK(json.ok()) << "cannot open BENCH_plans.json for writing";
  json.BeginObject();
  int regressions = gerenuk::DispatchExperiment(json, prior);
  gerenuk::StageThroughput(json);
  gerenuk::TinyRecordGrouping(json);
  gerenuk::OpMix(json);
  regressions += gerenuk::RowLayoutAblation(json);
  json.End();
  std::printf("\nwrote BENCH_plans.json\n");
  if (regressions > 0) {
    std::fprintf(stderr, "%d perf regression guard(s) fired\n", regressions);
    return 1;
  }
  return 0;
}
