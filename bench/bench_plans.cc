// Plan-compiler performance harness. Prints human-readable rows and writes
// BENCH_plans.json (op mix, records/sec, interpreter-vs-plan ratios) so
// future PRs can track the perf trajectory machine-readably.
//
//   1. Dispatch — the same arithmetic-loop UDF through the tree-walking
//      Interpreter and the direct-threaded PlanExecutor; pure dispatch cost,
//      no native data. The acceptance bar is >= 2x records/sec.
//   2. Stage throughput — a full map stage over Pair records with
//      use_plan_compiler off/on (what an engine user actually sees).
//   3. Tiny-record grouping — EXPERIMENTS.md's "limit worth naming":
//      computation-free grouping over tiny records, baseline vs Gerenuk
//      interpreter vs Gerenuk plans. The plan path is the fix.
//   4. Op mix of a representative compiled stage (fusion + folding rates).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "src/dataflow/stage_compiler.h"
#include "src/exec/plan.h"
#include "src/ir/builder.h"
#include "src/workloads/spark_workloads.h"

namespace gerenuk {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The dispatch workload: one "record" = one call of a 64-iteration integer
// loop (~390 interpreted statements), the shape of a per-record UDF body.
Function* BuildSpin(SerProgram& prog) {
  Function* spin = prog.AddFunction("spin");
  FunctionBuilder b(spin);
  int n = b.Param("n", IrType::I64());
  spin->return_type = IrType::I64();
  int acc = b.Local("acc", IrType::I64());
  b.AssignTo(acc, b.ConstI(1));
  int three = b.ConstI(3);
  int seven = b.ConstI(7);
  b.For(n, [&](int i) {
    int t = b.BinOp(BinOpKind::kMul, i, three);
    int u = b.BinOp(BinOpKind::kXor, t, seven);
    b.AssignTo(acc, b.BinOp(BinOpKind::kAdd, acc, u));
  });
  b.Return(acc);
  b.Done();
  return spin;
}

// The prior run's tracing-off dispatch rate, read from BENCH_plans.json in
// the working directory before JsonWriter truncates it; 0 when absent. The
// file's first "plan_records_per_sec" belongs to the dispatch section.
double ReadPriorPlanRps() {
  std::FILE* f = std::fopen("BENCH_plans.json", "r");
  if (f == nullptr) {
    return 0.0;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  const char* key = "\"plan_records_per_sec\":";
  size_t pos = text.find(key);
  if (pos == std::string::npos) {
    return 0.0;
  }
  return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
}

void DispatchExperiment(bench::JsonWriter& json, double prior_plan_rps) {
  bench::PrintHeader("Plans 1: fast-path dispatch, interpreter vs compiled plan");
  SerProgram prog;
  Function* spin = BuildSpin(prog);
  Heap heap(HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2});
  WellKnown wk{heap};
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  const std::vector<Value> args = {Value::I64(64)};
  constexpr int kCalls = 200000;

  // Alternate interpreter/plan rounds and keep each side's best: on a shared
  // single-core host, best-of filters scheduler interference out of the ratio.
  constexpr int kRounds = 5;
  int64_t sum = 0;
  double interp_rps = 0.0;
  double plan_rps = 0.0;
  pool.FoldConstants();
  std::shared_ptr<const SerPlan> plan = CompilePlan(prog, layouts);
  Interpreter interp(prog, heap, wk, &layouts, nullptr);
  PlanExecutor exec(*plan, heap, wk, &layouts, nullptr);
  for (int i = 0; i < kCalls / 10; ++i) {  // warmup both paths
    sum += interp.CallFunction(spin, args).i;
    sum += exec.CallFunction(spin, args).i;
  }
  for (int round = 0; round < kRounds; ++round) {
    // Re-warm after each executor switch: alternating rounds retrain the
    // indirect-branch predictor, which otherwise taxes whichever side just
    // took over (the direct-threaded plan loop most of all).
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += interp.CallFunction(spin, args).i;
    }
    double start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += interp.CallFunction(spin, args).i;
    }
    interp_rps = std::max(interp_rps, kCalls / ((NowMs() - start) / 1000.0));
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += exec.CallFunction(spin, args).i;
    }
    start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += exec.CallFunction(spin, args).i;
    }
    plan_rps = std::max(plan_rps, kCalls / ((NowMs() - start) / 1000.0));
  }
  // The same plan with the sampled op profiler on (stride 64): the dispatch
  // loop switches to its profiled instantiation, so this is the whole
  // tracing-on surcharge for pure dispatch.
  PlanExecutor profiled(*plan, heap, wk, &layouts, nullptr);
  OpProfile profile;
  profiled.EnableProfiling(&profile, /*stride=*/64);
  double profiled_rps = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kCalls / 20; ++i) {
      sum += profiled.CallFunction(spin, args).i;
    }
    double start = NowMs();
    for (int i = 0; i < kCalls; ++i) {
      sum += profiled.CallFunction(spin, args).i;
    }
    profiled_rps = std::max(profiled_rps, kCalls / ((NowMs() - start) / 1000.0));
  }
  GERENUK_CHECK_NE(sum, 0);  // keep the loops observable
  GERENUK_CHECK_GT(profile.samples, 0);
  double ratio = plan_rps / interp_rps;
  std::printf("spin plan: ops=%lld fused=%lld copies elided=%lld\n",
              static_cast<long long>(plan->ops_total()),
              static_cast<long long>(plan->ops_fused()),
              static_cast<long long>(plan->ops_copies_elided()));
  for (size_t k = 0; k < static_cast<size_t>(PlanOpCode::kCount); ++k) {
    if (plan->op_counts()[k] > 0) {
      std::printf("  %-24s %6lld\n", PlanOpName(static_cast<PlanOpCode>(k)),
                  static_cast<long long>(plan->op_counts()[k]));
    }
  }
  std::printf("interpreter: %10.0f records/s\n", interp_rps);
  std::printf("plan:        %10.0f records/s\n", plan_rps);
  std::printf("plan+profiler: %8.0f records/s (stride 64, %.1f%% surcharge)\n", profiled_rps,
              (plan_rps - profiled_rps) / plan_rps * 100.0);
  std::printf("plan/interpreter = %.2fx (acceptance bar: >= 2x)\n", ratio);

  // Tracing-off overhead guard: the unprofiled dispatch loop must stay
  // within 5% of the prior run's rate (the profiler is a separate template
  // instantiation precisely so the off path carries no new instructions).
  double tracing_off_overhead_pct = 0.0;
  int tracing_off_regression = 0;
  if (prior_plan_rps > 0.0) {
    tracing_off_overhead_pct = (prior_plan_rps - plan_rps) / prior_plan_rps * 100.0;
    std::printf("tracing-off dispatch vs prior BENCH_plans.json: %+.1f%% (budget: 5%%)\n",
                tracing_off_overhead_pct);
    if (tracing_off_overhead_pct > 5.0) {
      tracing_off_regression = 1;
      std::fprintf(stderr,
                   "REGRESSION: tracing-off plan dispatch is %.1f%% slower than the prior "
                   "run (%.0f vs %.0f records/s; budget 5%%)\n",
                   tracing_off_overhead_pct, plan_rps, prior_plan_rps);
    }
  } else {
    std::printf("tracing-off overhead guard: no prior BENCH_plans.json, skipping\n");
  }

  json.BeginObject("dispatch");
  json.Field("interpreter_records_per_sec", interp_rps);
  json.Field("plan_records_per_sec", plan_rps);
  json.Field("profiled_records_per_sec", profiled_rps);
  json.Field("profiler_overhead_pct", (plan_rps - profiled_rps) / plan_rps * 100.0);
  json.Field("plan_vs_interpreter", ratio);
  json.Field("tracing_off_overhead_pct", tracing_off_overhead_pct);
  json.Field("tracing_off_regression", tracing_off_regression);
  json.End();
}

void StageThroughput(bench::JsonWriter& json) {
  bench::PrintHeader("Plans 2: full map-stage throughput, use_plan_compiler off/on");
  constexpr int64_t kRecords = 120000;
  double rps[2];
  for (bool use_plans : {false, true}) {
    EngineConfig config;
    config.execution.mode = EngineMode::kGerenuk;
    config.execution.heap_bytes = 64u << 20;
    config.execution.num_partitions = 4;
    config.execution.use_plan_compiler = use_plans;
    SparkEngine engine(config);
    const Klass* pair = engine.heap().klasses().DefineClass(
        "Pair", {
                    {"key", FieldKind::kI64, nullptr, 0},
                    {"value", FieldKind::kF64, nullptr, 0},
                });
    engine.RegisterDataType(pair);
    SerProgram udfs;
    Function* bump = udfs.AddFunction("bump");
    {
      FunctionBuilder b(bump);
      int rec = b.Param("rec", IrType::Ref(pair));
      bump->return_type = IrType::Ref(pair);
      int out = b.NewObject(pair);
      b.FieldStore(out, pair, "key", b.FieldLoad(rec, pair, "key"));
      b.FieldStore(out, pair, "value",
                   b.BinOp(BinOpKind::kMul, b.FieldLoad(rec, pair, "value"), b.ConstF(2.0)));
      b.Return(out);
      b.Done();
    }
    DatasetPtr input = engine.Source(pair, kRecords, [&](int64_t i, RootScope&) {
      ObjRef rec = engine.heap().AllocObject(pair);
      engine.heap().SetPrim<int64_t>(rec, pair->FindField("key")->offset, i % 97);
      engine.heap().SetPrim<double>(rec, pair->FindField("value")->offset, i * 0.5);
      return rec;
    });
    engine.RunStage(input, udfs, {NarrowOp::Map(bump, pair)});  // warmup
    engine.ResetMetrics();
    double start = NowMs();
    engine.RunStage(input, udfs, {NarrowOp::Map(bump, pair)});
    double elapsed_s = (NowMs() - start) / 1000.0;
    rps[use_plans ? 1 : 0] = kRecords / elapsed_s;
    std::printf("%-12s %10.0f records/s  (%.1fms for %lld records)\n",
                use_plans ? "plan:" : "interpreter:", rps[use_plans ? 1 : 0],
                elapsed_s * 1000.0, static_cast<long long>(kRecords));
  }
  std::printf("plan/interpreter = %.2fx end-to-end\n", rps[1] / rps[0]);

  json.BeginObject("map_stage");
  json.Field("records", static_cast<int64_t>(kRecords));
  json.Field("interpreter_records_per_sec", rps[0]);
  json.Field("plan_records_per_sec", rps[1]);
  json.Field("plan_vs_interpreter", rps[1] / rps[0]);
  json.End();
}

void TinyRecordGrouping(bench::JsonWriter& json) {
  bench::PrintHeader(
      "Plans 3: tiny-record computation-free grouping (EXPERIMENTS.md's limit)");
  // Ablation 1's clean setting: 800 users x 8 tiny posts, capacity 16 so no
  // resize violations fire; pure grouping, no computation to amortize.
  std::vector<SyntheticPost> posts;
  for (int64_t user = 0; user < 800; ++user) {
    for (int64_t i = 0; i < 8; ++i) {
      SyntheticPost post;
      post.user_id = user;
      post.text = "post body #" + std::to_string(i);
      posts.push_back(std::move(post));
    }
  }
  struct Cell {
    const char* label;
    EngineMode mode;
    bool plans;
    double ms;
  };
  Cell cells[] = {
      {"baseline", EngineMode::kBaseline, false, 0.0},
      {"gerenuk-interpreter", EngineMode::kGerenuk, false, 0.0},
      {"gerenuk-plan", EngineMode::kGerenuk, true, 0.0},
  };
  for (Cell& cell : cells) {
    double best = 0.0;
    for (int round = 0; round < 3; ++round) {  // round 0 is a warmup
      EngineConfig config;
      config.execution.mode = cell.mode;
      config.execution.heap_bytes = 64u << 20;
      config.execution.num_partitions = 8;
      config.execution.use_plan_compiler = cell.plans;
      SparkEngine engine(config);
      SparkWorkloads workloads(engine);
      workloads.RunAccountGrouping(posts, /*initial_capacity=*/16);
      double total = engine.stats().times.TotalMillis();
      if (round > 0 && (best == 0.0 || total < best)) {
        best = total;
      }
    }
    cell.ms = best;
    std::printf("%-22s %7.1fms\n", cell.label, cell.ms);
  }
  double interp_ratio = cells[1].ms / cells[0].ms;
  double plan_ratio = cells[2].ms / cells[0].ms;
  std::printf("gerenuk/baseline: interpreter %.2fx -> plan %.2fx (1.0 = parity; "
              "lower is better)\n",
              interp_ratio, plan_ratio);

  json.BeginObject("tiny_record_grouping");
  json.Field("baseline_ms", cells[0].ms);
  json.Field("gerenuk_interpreter_ms", cells[1].ms);
  json.Field("gerenuk_plan_ms", cells[2].ms);
  json.Field("interpreter_vs_baseline", interp_ratio);
  json.Field("plan_vs_baseline", plan_ratio);
  json.End();
}

void OpMix(bench::JsonWriter& json) {
  bench::PrintHeader("Plans 4: op mix of a compiled map stage");
  Heap heap(HeapConfig{16u << 20, GcKind::kGenerational, 0.55, 0.35, 2});
  KlassRegistry& reg = heap.klasses();
  const Klass* pair = reg.DefineClass("Pair", {
                                                  {"key", FieldKind::kI64, nullptr, 0},
                                                  {"value", FieldKind::kF64, nullptr, 0},
                                              });
  ExprPool pool;
  DataStructAnalyzer layouts{pool};
  std::string error;
  GERENUK_CHECK(layouts.AnalyzeTopLevel(pair, &error)) << error;
  SerProgram udfs;
  Function* bump = udfs.AddFunction("bump");
  {
    FunctionBuilder b(bump);
    int rec = b.Param("rec", IrType::Ref(pair));
    bump->return_type = IrType::Ref(pair);
    int out = b.NewObject(pair);
    b.FieldStore(out, pair, "key", b.FieldLoad(rec, pair, "key"));
    b.FieldStore(out, pair, "value",
                 b.BinOp(BinOpKind::kAdd, b.FieldLoad(rec, pair, "value"), b.ConstF(1.0)));
    b.Return(out);
    b.Done();
  }
  TransformStats tstats;
  StagePrograms stage = CompileNarrowStage(EngineMode::kGerenuk, layouts, pair, udfs,
                                           {NarrowOp::Map(bump, pair)}, false, nullptr,
                                           &tstats, reg);
  pool.FoldConstants();
  std::shared_ptr<const SerPlan> plan = CompilePlan(*stage.transformed, layouts);
  std::printf("ops=%lld fused=%lld copies elided=%lld offsets folded=%lld symbolic=%lld\n",
              static_cast<long long>(plan->ops_total()),
              static_cast<long long>(plan->ops_fused()),
              static_cast<long long>(plan->ops_copies_elided()),
              static_cast<long long>(plan->offsets_folded()),
              static_cast<long long>(plan->offsets_symbolic()));

  json.BeginObject("op_mix");
  json.Field("ops_total", plan->ops_total());
  json.Field("ops_fused", plan->ops_fused());
  json.Field("ops_copies_elided", plan->ops_copies_elided());
  json.Field("offsets_folded", plan->offsets_folded());
  json.Field("offsets_symbolic", plan->offsets_symbolic());
  json.BeginArray("ops");
  for (size_t i = 0; i < static_cast<size_t>(PlanOpCode::kCount); ++i) {
    if (plan->op_counts()[i] == 0) {
      continue;
    }
    PlanOpCode code = static_cast<PlanOpCode>(i);
    std::printf("  %-22s %4lld\n", PlanOpName(code),
                static_cast<long long>(plan->op_counts()[i]));
    json.BeginObject();
    json.Field("op", PlanOpName(code));
    json.Field("count", plan->op_counts()[i]);
    json.End();
  }
  json.End();
  json.End();
}

}  // namespace
}  // namespace gerenuk

int main() {
  double prior_plan_rps = gerenuk::ReadPriorPlanRps();  // before JsonWriter truncates it
  gerenuk::bench::JsonWriter json("BENCH_plans.json");
  GERENUK_CHECK(json.ok()) << "cannot open BENCH_plans.json for writing";
  json.BeginObject();
  gerenuk::DispatchExperiment(json, prior_plan_rps);
  gerenuk::StageThroughput(json);
  gerenuk::TinyRecordGrouping(json);
  gerenuk::OpMix(json);
  json.End();
  std::printf("\nwrote BENCH_plans.json\n");
  return 0;
}
