// Growable byte buffer with primitive read/write helpers and varint codecs.
//
// Serialized wire formats in this repo (the Kryo-like serializer, shuffle
// channels, IFile segments) are built exclusively on ByteBuffer / ByteReader
// so that byte layouts are identical regardless of the producer.
#ifndef SRC_SUPPORT_BYTES_H_
#define SRC_SUPPORT_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/logging.h"

namespace gerenuk {

// Append-only byte sink. Primitives are stored little-endian (host order on
// all supported platforms); varints use LEB128 with zig-zag for signed types.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t reserve) { data_.reserve(reserve); }

  void Clear() { data_.clear(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }

  void WriteU8(uint8_t v) { data_.push_back(v); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteU16(uint16_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteF32(float v) { AppendRaw(&v, sizeof(v)); }
  void WriteF64(double v) { AppendRaw(&v, sizeof(v)); }

  // Unsigned LEB128.
  void WriteVarU32(uint32_t v) {
    while (v >= 0x80) {
      WriteU8(static_cast<uint8_t>(v | 0x80));
      v >>= 7;
    }
    WriteU8(static_cast<uint8_t>(v));
  }
  void WriteVarU64(uint64_t v) {
    while (v >= 0x80) {
      WriteU8(static_cast<uint8_t>(v | 0x80));
      v >>= 7;
    }
    WriteU8(static_cast<uint8_t>(v));
  }
  // Zig-zag signed varints.
  void WriteVarI32(int32_t v) {
    WriteVarU32((static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31));
  }
  void WriteVarI64(int64_t v) {
    WriteVarU64((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  void WriteBytes(const void* src, size_t n) { AppendRaw(src, n); }
  void WriteString(std::string_view s) {
    WriteVarU32(static_cast<uint32_t>(s.size()));
    AppendRaw(s.data(), s.size());
  }

  // In-place patch of a previously written 32-bit slot (used for length
  // back-patching when a record's size is known only after its body).
  void PatchU32(size_t pos, uint32_t v) {
    GERENUK_CHECK_LE(pos + sizeof(v), data_.size());
    std::memcpy(data_.data() + pos, &v, sizeof(v));
  }

  std::vector<uint8_t> TakeBytes() { return std::move(data_); }
  const std::vector<uint8_t>& bytes() const { return data_; }

 private:
  void AppendRaw(const void* src, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(src);
    data_.insert(data_.end(), p, p + n);
  }

  std::vector<uint8_t> data_;
};

// Sequential reader over a borrowed byte span. All Read* methods bounds-check.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes) : data_(bytes.data()), size_(bytes.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  void Seek(size_t pos) {
    GERENUK_CHECK_LE(pos, size_);
    pos_ = pos;
  }

  uint8_t ReadU8() {
    GERENUK_CHECK_LT(pos_, size_);
    return data_[pos_++];
  }
  bool ReadBool() { return ReadU8() != 0; }

  uint16_t ReadU16() { return ReadRaw<uint16_t>(); }
  uint32_t ReadU32() { return ReadRaw<uint32_t>(); }
  uint64_t ReadU64() { return ReadRaw<uint64_t>(); }
  int32_t ReadI32() { return ReadRaw<int32_t>(); }
  int64_t ReadI64() { return ReadRaw<int64_t>(); }
  float ReadF32() { return ReadRaw<float>(); }
  double ReadF64() { return ReadRaw<double>(); }

  uint32_t ReadVarU32() {
    uint32_t result = 0;
    int shift = 0;
    while (true) {
      uint8_t byte = ReadU8();
      result |= static_cast<uint32_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return result;
      }
      shift += 7;
      GERENUK_CHECK_LE(shift, 28);
    }
  }
  uint64_t ReadVarU64() {
    uint64_t result = 0;
    int shift = 0;
    while (true) {
      uint8_t byte = ReadU8();
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return result;
      }
      shift += 7;
      GERENUK_CHECK_LE(shift, 63);
    }
  }
  int32_t ReadVarI32() {
    uint32_t u = ReadVarU32();
    return static_cast<int32_t>((u >> 1) ^ (~(u & 1) + 1));
  }
  int64_t ReadVarI64() {
    uint64_t u = ReadVarU64();
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  void ReadBytes(void* dst, size_t n) {
    GERENUK_CHECK_LE(pos_ + n, size_);
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }
  std::string ReadString() {
    uint32_t n = ReadVarU32();
    GERENUK_CHECK_LE(pos_ + n, size_);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  template <typename T>
  T ReadRaw() {
    GERENUK_CHECK_LE(pos_ + sizeof(T), size_);
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace gerenuk

#endif  // SRC_SUPPORT_BYTES_H_
