#include "src/support/logging.h"

namespace gerenuk {

void FatalError(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[gerenuk fatal] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace gerenuk
