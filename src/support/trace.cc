#include "src/support/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace gerenuk {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kStage:
      return "stage";
    case TraceEventType::kTask:
      return "task";
    case TraceEventType::kFastPath:
      return "fast_path";
    case TraceEventType::kSlowPath:
      return "slow_path";
    case TraceEventType::kSerialize:
      return "serialize";
    case TraceEventType::kDeserialize:
      return "deserialize";
    case TraceEventType::kGcPause:
      return "gc_pause";
    case TraceEventType::kAbort:
      return "abort";
    case TraceEventType::kRetry:
      return "retry";
    case TraceEventType::kStragglerRelaunch:
      return "straggler_relaunch";
    case TraceEventType::kQuarantine:
      return "quarantine";
    case TraceEventType::kShuffleBytes:
      return "shuffle_bytes";
    case TraceEventType::kExecutorDead:
      return "executor_dead";
    case TraceEventType::kExecutorRelaunch:
      return "executor_relaunch";
    case TraceEventType::kHeartbeat:
      return "heartbeats";
    case TraceEventType::kSpillBytes:
      return "spill_bytes";
    case TraceEventType::kFetchBytes:
      return "fetch_bytes";
    case TraceEventType::kAdmissionReject:
      return "admission_reject";
    case TraceEventType::kJobCancel:
      return "job_cancel";
    case TraceEventType::kBreaker:
      return "breaker";
  }
  return "?";
}

int64_t TraceSink::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - owner_->epoch_)
      .count();
}

void TraceSink::Push(const TraceEvent& ev) {
  if (direct_) {
    owner_->AppendDirect(ev);
    return;
  }
  if (buf_.size() >= capacity_) {
    dropped_ += 1;  // drop-and-count: never reallocate on the hot path
    return;
  }
  buf_.push_back(ev);
}

Trace::Trace(int num_workers, size_t buffer_capacity)
    : epoch_(std::chrono::steady_clock::now()) {
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back(new TraceSink(this, w, buffer_capacity, /*direct=*/false));
  }
  driver_.reset(new TraceSink(this, -1, 0, /*direct=*/true));
}

void Trace::AppendDirect(const TraceEvent& ev) {
  Absorb(ev);
  merged_.push_back(ev);
}

void Trace::Absorb(const TraceEvent& ev) {
  switch (ev.type) {
    case TraceEventType::kTask:
      metrics_.Hist("task_duration_ns", MetricUnit::kNanos).Record(ev.dur_ns);
      break;
    case TraceEventType::kGcPause:
      metrics_.Hist("gc_pause_ns", MetricUnit::kNanos).Record(ev.dur_ns);
      break;
    case TraceEventType::kAbort:
      pending_aborts_.emplace_back(ev.task, ev.ts_ns);
      break;
    case TraceEventType::kSlowPath: {
      auto it = std::find_if(pending_aborts_.begin(), pending_aborts_.end(),
                             [&](const auto& p) { return p.first == ev.task; });
      if (it != pending_aborts_.end()) {
        metrics_.Hist("abort_to_slowpath_commit_ns", MetricUnit::kNanos)
            .Record(ev.ts_ns + ev.dur_ns - it->second);
        pending_aborts_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

void Trace::FlushWorkersAtBarrier() {
  std::vector<TraceEvent> batch;
  for (auto& sink : workers_) {
    batch.insert(batch.end(), sink->buf_.begin(), sink->buf_.end());
    sink->buf_.clear();
    dropped_total_ += sink->dropped_;
    sink->dropped_ = 0;
  }
  // Task placement varies with the worker count; the (task, attempt) order
  // does not. Attempts of one task never overlap and each runs wholly on one
  // worker, so a stable sort by (task, attempt) — which preserves the
  // single-worker emission order within an attempt — yields the same logical
  // sequence for any pool size.
  std::stable_sort(batch.begin(), batch.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.task != b.task) {
      return a.task < b.task;
    }
    return a.attempt < b.attempt;
  });
  for (const TraceEvent& ev : batch) {
    Absorb(ev);
  }
  merged_.insert(merged_.end(), batch.begin(), batch.end());
  metrics_.Counter("trace_dropped_events") = dropped_events();
}

void Trace::ResetMerged() {
  merged_.clear();
  metrics_ = MetricsRegistry();
  pending_aborts_.clear();
  metrics_.Counter("trace_dropped_events") = dropped_events();
}

int64_t Trace::dropped_events() const {
  int64_t total = dropped_total_;
  for (const auto& sink : workers_) {
    total += sink->dropped_;
  }
  return total;
}

std::vector<std::string> Trace::ScrubbedLines() const {
  std::vector<std::string> lines;
  lines.reserve(merged_.size());
  char buf[160];
  for (const TraceEvent& ev : merged_) {
    if (ev.type == TraceEventType::kGcPause) {
      continue;  // physical per-heap event: placement-dependent by nature
    }
    const char* kind = ev.kind == TraceEventKind::kSpan      ? "span"
                       : ev.kind == TraceEventKind::kInstant ? "instant"
                                                             : "counter";
    std::snprintf(buf, sizeof(buf), "%s %s task=%" PRId64 " attempt=%d arg=%" PRId64,
                  kind, ev.name, ev.task, ev.attempt, ev.arg);
    lines.emplace_back(buf);
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

// tid 0 = driver, tid w+1 = worker w.
int TidFor(const TraceEvent& ev) { return ev.worker + 1; }

void WriteEventCommon(std::ostream& os, const TraceEvent& ev) {
  char buf[128];
  // Chrome's ts/dur are microseconds; keep nanosecond precision as decimals.
  std::snprintf(buf, sizeof(buf), "\"ts\":%.3f,\"pid\":1,\"tid\":%d",
                static_cast<double>(ev.ts_ns) / 1000.0, TidFor(ev));
  os << "{\"name\":\"" << ev.name << "\",\"cat\":\"" << TraceEventTypeName(ev.type)
     << "\"," << buf;
}

void WriteArgs(std::ostream& os, const TraceEvent& ev) {
  os << "\"args\":{\"task\":" << ev.task << ",\"attempt\":" << ev.attempt
     << ",\"arg\":" << ev.arg << "}}";
}

}  // namespace

void TraceExporter::WriteChromeJson(std::ostream& os) const {
  // Metadata events carry ts:0 so every event object has the same
  // ph/ts/pid/tid shape (simplifies downstream consumers and our tests).
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"gerenuk-engine\"}}";
  os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"driver\"}}";
  for (int w = 0; w < trace_.num_workers(); ++w) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":" << (w + 1)
       << ",\"args\":{\"name\":\"worker-" << w << "\"}}";
  }
  for (const TraceEvent& ev : trace_.events()) {
    os << ",\n";
    WriteEventCommon(os, ev);
    switch (ev.kind) {
      case TraceEventKind::kSpan: {
        char buf[48];
        std::snprintf(buf, sizeof(buf), ",\"ph\":\"X\",\"dur\":%.3f,",
                      static_cast<double>(ev.dur_ns) / 1000.0);
        os << buf;
        WriteArgs(os, ev);
        break;
      }
      case TraceEventKind::kInstant:
        os << ",\"ph\":\"i\",\"s\":\"t\",";
        WriteArgs(os, ev);
        break;
      case TraceEventKind::kCounter:
        os << ",\"ph\":\"C\",\"args\":{\"" << ev.name << "\":" << ev.arg << "}}";
        break;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string TraceExporter::ChromeJson() const {
  std::ostringstream os;
  WriteChromeJson(os);
  return os.str();
}

void TraceExporter::WriteTextTimeline(std::ostream& os) const {
  char buf[200];
  for (const TraceEvent& ev : trace_.events()) {
    const char* who = ev.worker < 0 ? "drv" : "wrk";
    int id = ev.worker < 0 ? 0 : ev.worker;
    if (ev.kind == TraceEventKind::kSpan) {
      std::snprintf(buf, sizeof(buf),
                    "[%12.3f us +%11.3f us] %s%-2d task=%-4" PRId64 " a%d  %-18s arg=%" PRId64
                    "\n",
                    static_cast<double>(ev.ts_ns) / 1000.0,
                    static_cast<double>(ev.dur_ns) / 1000.0, who, id, ev.task, ev.attempt,
                    ev.name, ev.arg);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "[%12.3f us               ] %s%-2d task=%-4" PRId64 " a%d  %-18s arg=%" PRId64
                    "\n",
                    static_cast<double>(ev.ts_ns) / 1000.0, who, id, ev.task, ev.attempt,
                    ev.name, ev.arg);
    }
    os << buf;
  }
}

std::string TraceExporter::TextTimeline() const {
  std::ostringstream os;
  WriteTextTimeline(os);
  return os.str();
}

}  // namespace gerenuk
