// Execution-time accounting shared by the engines, the managed runtime, and
// the benchmark harnesses.
//
// Every task execution is broken into the same four phases the paper's
// Figure 6 reports: computation, GC, serialization, and deserialization.
// PhaseTimes accumulates wall-clock nanoseconds per phase; MemoryTracker
// records live/peak byte counts the way the paper's pmap sampling does
// (process-level peak = managed heap + native buffers).
#ifndef SRC_SUPPORT_METRICS_H_
#define SRC_SUPPORT_METRICS_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace gerenuk {

// Monotonic stopwatch. Start/Stop may be called repeatedly; ElapsedNanos
// accumulates across runs. Stop() without a matching Start() is a
// programming error: it would charge the interval since the epoch (or since
// some long-finished run) as measured time. Debug builds assert; release
// builds drop the unmatched Stop so the accumulated time stays truthful.
class Stopwatch {
 public:
  void Start() {
    started_ = true;
    start_ = Clock::now();
  }
  void Stop() {
    assert(started_ && "Stopwatch::Stop() without a prior Start()");
    if (!started_) {
      return;
    }
    started_ = false;
    accumulated_ += std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
                        .count();
  }
  int64_t ElapsedNanos() const { return accumulated_; }
  double ElapsedMillis() const { return static_cast<double>(accumulated_) / 1e6; }
  void Reset() {
    accumulated_ = 0;
    started_ = false;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  int64_t accumulated_ = 0;
  bool started_ = false;
};

// The four runtime components of Figure 6: computation (blue), GC (red),
// serialization (purple), deserialization (orange).
enum class Phase : uint8_t { kCompute = 0, kGc = 1, kSerialize = 2, kDeserialize = 3 };

inline const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kCompute:
      return "compute";
    case Phase::kGc:
      return "gc";
    case Phase::kSerialize:
      return "ser";
    case Phase::kDeserialize:
      return "deser";
  }
  return "?";
}

struct PhaseTimes {
  int64_t nanos[4] = {0, 0, 0, 0};

  void Add(Phase phase, int64_t ns) { nanos[static_cast<int>(phase)] += ns; }
  int64_t Get(Phase phase) const { return nanos[static_cast<int>(phase)]; }
  int64_t TotalNanos() const { return nanos[0] + nanos[1] + nanos[2] + nanos[3]; }
  double TotalMillis() const { return static_cast<double>(TotalNanos()) / 1e6; }
  double Millis(Phase phase) const { return static_cast<double>(Get(phase)) / 1e6; }

  PhaseTimes& operator+=(const PhaseTimes& other) {
    for (int i = 0; i < 4; ++i) {
      nanos[i] += other.nanos[i];
    }
    return *this;
  }
};

// RAII phase timer: attributes the enclosed scope's wall time to one phase.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimes& times, Phase phase) : times_(times), phase_(phase) {
    watch_.Start();
  }
  ~ScopedPhase() {
    watch_.Stop();
    times_.Add(phase_, watch_.ElapsedNanos());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimes& times_;
  Phase phase_;
  Stopwatch watch_;
};

// Charges elapsed wall time minus everything separately attributed within
// the scope (GC pauses, serialization, deserialization) to kCompute, so the
// four phases partition a task's wall time the way Figure 6's stacked bars
// do.
class ComputePhaseScope {
 public:
  explicit ComputePhaseScope(PhaseTimes& times) : times_(times) {
    other_before_ = OtherPhases();
    watch_.Start();
  }
  ~ComputePhaseScope() {
    watch_.Stop();
    times_.Add(Phase::kCompute, watch_.ElapsedNanos() - (OtherPhases() - other_before_));
  }
  ComputePhaseScope(const ComputePhaseScope&) = delete;
  ComputePhaseScope& operator=(const ComputePhaseScope&) = delete;

 private:
  int64_t OtherPhases() const {
    return times_.Get(Phase::kGc) + times_.Get(Phase::kSerialize) +
           times_.Get(Phase::kDeserialize);
  }

  PhaseTimes& times_;
  int64_t other_before_ = 0;
  Stopwatch watch_;
};

// Live/peak memory accounting. The managed heap and the native buffer
// manager both report into one tracker per engine run, mirroring the paper's
// process-level pmap measurement. Thread-safe: every worker heap and every
// task-local native partition of a parallel stage reports into the same
// engine-level tracker.
class MemoryTracker {
 public:
  void Allocated(int64_t bytes) {
    int64_t now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  void Freed(int64_t bytes) { live_.fetch_sub(bytes, std::memory_order_relaxed); }

  int64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  void Reset() {
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }
  // Restarts peak measurement from the current live footprint (used to
  // exclude input generation from a benchmark's peak).
  void ResetPeak() { peak_.store(live_bytes(), std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> peak_{0};
};

// How a metric value renders in human-readable output.
enum class MetricUnit : uint8_t { kCount = 0, kNanos = 1, kBytes = 2 };

// Formats `value` per `unit` ("1234", "1.23 ms", "1.50 GB"). Negative values
// render with a leading sign in every unit.
std::string FormatMetricValue(int64_t value, MetricUnit unit);

// Log2-bucketed latency/size histogram. Mergeable: worker-local histograms
// add into the engine's copy at stage barriers exactly like counters do.
// Negative samples land in the underflow bucket (bucket 0) but still update
// min/max/sum, so a bogus negative interval is visible instead of silently
// folded into the distribution. The running sum saturates at the int64
// limits rather than overflowing, so mean() degrades to a clamp instead of
// UB when fed extreme samples.
class Histogram {
 public:
  explicit Histogram(MetricUnit unit = MetricUnit::kNanos) : unit_(unit) {}

  void Record(int64_t value) {
    count_ += 1;
    sum_ = SaturatingAdd(sum_, value);
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
    counts_[BucketFor(value)] += 1;
  }

  Histogram& operator+=(const Histogram& o) {
    count_ += o.count_;
    sum_ = SaturatingAdd(sum_, o.sum_);
    if (o.count_ > 0) {
      if (o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
    for (int i = 0; i < kBuckets; ++i) {
      counts_[i] += o.counts_[i];
    }
    return *this;
  }

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return count_ > 0 ? max_ : 0; }
  int64_t mean() const { return count_ > 0 ? sum_ / count_ : 0; }
  MetricUnit unit() const { return unit_; }
  void set_unit(MetricUnit unit) { unit_ = unit; }

  // Upper bound of the bucket holding the p-th percentile sample (p in
  // [0, 1]). Approximate by construction: log2 buckets.
  int64_t PercentileApprox(double p) const;

  // One-line pretty-printed summary ("count=12 min=1.02 us p50<=2.05 us ...").
  std::string Render() const;

 private:
  static int64_t SaturatingAdd(int64_t a, int64_t b) {
    int64_t out;
    if (__builtin_add_overflow(a, b, &out)) {
      return b > 0 ? INT64_MAX : INT64_MIN;
    }
    return out;
  }

  // Bucket b >= 1 holds values in [2^(b-1), 2^b - 1]; bucket 0 holds
  // values <= 0 (underflow).
  static int BucketFor(int64_t value) {
    if (value <= 0) {
      return 0;
    }
    int b = 0;
    uint64_t v = static_cast<uint64_t>(value);
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  static int64_t BucketUpperBound(int bucket);

  static constexpr int kBuckets = 65;  // underflow + one per bit of int64
  int64_t counts_[kBuckets] = {};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = INT64_MAX;
  int64_t max_ = INT64_MIN;
  MetricUnit unit_ = MetricUnit::kNanos;
};

// Named counters + histograms with merge-by-name semantics: a counter or
// histogram that exists on only one side still survives a merge, unlike a
// hand-written field-by-field operator+= where a forgotten line silently
// drops a metric. Engines surface one registry combining EngineStats,
// trace-derived histograms, and plan-op profiles.
class MetricsRegistry {
 public:
  // Returns the named counter, creating it at zero. The reference stays
  // valid for the registry's lifetime (std::map nodes are stable).
  int64_t& Counter(const std::string& name) { return counters_[name]; }
  // Returns the named histogram, creating it empty with `unit`.
  Histogram& Hist(const std::string& name, MetricUnit unit = MetricUnit::kNanos);

  // Adds every counter and histogram of `other` into this registry. Names
  // missing on either side are kept, never dropped.
  void Merge(const MetricsRegistry& other);

  // Merge, with every incoming name prefixed ("tenant.alice." + name). The
  // service uses this to fold per-tenant registries into one namespaced
  // snapshot without the tenants colliding.
  void MergeWithPrefix(const std::string& prefix, const MetricsRegistry& other);

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return hists_; }

  // Deterministically ordered (by name) multi-line rendering.
  std::string Render() const;

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> hists_;
};

// Per-opcode dispatch counts and sampled cycles from a plan executor's
// profiled dispatch loop (src/exec/plan.cc). Kept generic here — slot i is
// opcode i; the executor guarantees its opcode count fits kMaxOps — so the
// scheduler can merge profiles through EngineStats like any other counter.
struct OpProfile {
  static constexpr int kMaxOps = 64;
  int64_t dispatches[kMaxOps] = {};    // exact per-opcode dispatch counts
  int64_t sampled_nanos[kMaxOps] = {};  // clock time attributed at sample points
  int64_t samples = 0;

  int64_t total_dispatches() const {
    int64_t total = 0;
    for (int64_t d : dispatches) {
      total += d;
    }
    return total;
  }
  bool empty() const { return samples == 0 && total_dispatches() == 0; }

  OpProfile& operator+=(const OpProfile& o) {
    for (int i = 0; i < kMaxOps; ++i) {
      dispatches[i] += o.dispatches[i];
      sampled_nanos[i] += o.sampled_nanos[i];
    }
    samples += o.samples;
    return *this;
  }

  // Top-N table sorted by dispatch count; `op_name` maps slot -> mnemonic.
  std::string Render(const char* (*op_name)(int), int top_n = 10) const;
};

namespace internal {

// Counts the fields of an aggregate at compile time: probe how many
// convert-to-anything placeholders brace-initialization accepts. Used to pin
// EngineStats' field count so a newly added field cannot ship without a
// merge/export entry (see GERENUK_ENGINE_COUNTER_FIELDS below).
struct AnyField {
  template <typename T>
  operator T() const;
};

template <typename T, typename... Fields>
constexpr size_t CountAggregateFields() {
  if constexpr (requires { T{Fields{}..., AnyField{}}; }) {
    return CountAggregateFields<T, Fields..., AnyField>();
  } else {
    return sizeof...(Fields);
  }
}

}  // namespace internal

// Statistics of the speculative transformer (Algorithm 1), accumulated per
// compiled stage/function on the driver.
struct TransformStats {
  int statements_transformed = 0;
  int aborts_inserted = 0;
  int functions_transformed = 0;  // functions containing >= 1 transformed stmt
  int violations_by_reason[5] = {0, 0, 0, 0, 0};

  TransformStats& operator+=(const TransformStats& o) {
    statements_transformed += o.statements_transformed;
    aborts_inserted += o.aborts_inserted;
    functions_transformed += o.functions_transformed;
    for (int i = 0; i < 5; ++i) {
      violations_by_reason[i] += o.violations_by_reason[i];
    }
    return *this;
  }
};

// Every scalar counter of EngineStats, in declaration order. operator+= and
// ExportTo both expand this list, and the static_assert below EngineStats
// pins the struct's field count — adding a field without listing it here (or
// bumping the composite count) fails the build instead of silently dropping
// the counter from stage-barrier merges.
#define GERENUK_ENGINE_COUNTER_FIELDS(X)                                      \
  X(tasks_run)                                                                \
  X(map_tasks)                                                                \
  X(reduce_tasks)                                                             \
  X(spills)                                                                   \
  X(fast_path_commits)                                                        \
  X(aborts)                                                                   \
  X(stages_compiled)                                                          \
  X(shuffle_bytes)                                                            \
  X(combine_calls)                                                            \
  X(retries)                                                                  \
  X(straggler_relaunches)                                                     \
  X(quarantined_tasks)                                                        \
  X(quarantined_records)                                                      \
  X(governor_flips)                                                           \
  X(slow_path_direct)                                                         \
  X(plans_compiled)                                                           \
  X(plan_cache_hits)                                                          \
  X(key_allocs_saved)                                                         \
  X(executors_launched)                                                       \
  X(executor_deaths)                                                          \
  X(executor_relaunches)                                                      \
  X(heartbeats_received)                                                      \
  X(spill_blocks)                                                             \
  X(spill_merges)                                                             \
  X(shuffle_fetches)                                                          \
  X(fetch_backpressure_waits)                                                 \
  X(spill_bytes_raw)                                                          \
  X(spill_bytes_stored)

// Unified per-engine statistics, shared by the mini-Spark and mini-Hadoop
// engines. Workers accumulate into a private EngineStats during a stage;
// the scheduler merges them into the engine's copy (in worker order) at the
// stage barrier, so counts are deterministic for any worker count.
struct EngineStats {
  PhaseTimes times;
  int tasks_run = 0;
  int map_tasks = 0;     // mini-Hadoop only
  int reduce_tasks = 0;  // mini-Hadoop only
  int spills = 0;        // mini-Hadoop only
  int fast_path_commits = 0;
  int aborts = 0;
  int stages_compiled = 0;
  int64_t shuffle_bytes = 0;
  int64_t combine_calls = 0;
  // Fault tolerance (see DESIGN.md "Fault model & recovery"). All are sums
  // of per-task events, deterministic for any worker count.
  int retries = 0;               // failed attempts that were requeued
  int straggler_relaunches = 0;  // deadline cancellations relaunched elsewhere
  int quarantined_tasks = 0;     // poisoned partitions skipped (kSkip policy)
  int64_t quarantined_records = 0;
  int governor_flips = 0;        // speculation-governor off switches (driver)
  int slow_path_direct = 0;      // tasks routed straight to the slow path
  // Plan compiler (see DESIGN.md "Plan compiler"). plans_compiled counts
  // driver-side SerPlan lowerings; key_allocs_saved counts shuffle-key
  // extractions that reused the per-task scratch string without a fresh
  // heap allocation.
  int plans_compiled = 0;
  // Stage/function compilations whose transformed program + SerPlan came out
  // of a signature-keyed PlanCache (service mode), skipping both the
  // transform and CompilePlan.
  int plan_cache_hits = 0;
  int64_t key_allocs_saved = 0;
  // Process executors & shuffle service (see DESIGN.md "Process model &
  // shuffle service"). Launch/death/relaunch and the spill counters are
  // driver-side and deterministic; heartbeats_received and
  // fetch_backpressure_waits depend on wall-clock timing and are excluded
  // from determinism assertions (tests check > 0, never equality).
  int executors_launched = 0;        // forked executor processes (incl. relaunches)
  int executor_deaths = 0;           // EOF/exit/heartbeat-timeout classified losses
  int executor_relaunches = 0;       // fresh processes forked to replace dead ones
  int64_t heartbeats_received = 0;   // liveness pings seen by the supervisor
  int64_t spill_blocks = 0;          // shuffle blocks written to spill files
  int64_t spill_merges = 0;          // bucket reads that merged >= 2 spilled runs
  int64_t shuffle_fetches = 0;       // spilled blocks fetched on demand
  int64_t fetch_backpressure_waits = 0;  // fetches that blocked on credit
  int64_t spill_bytes_raw = 0;       // pre-compression spilled bytes
  int64_t spill_bytes_stored = 0;    // on-disk (post-compression) spilled bytes
  TransformStats transform;  // accumulated compiler statistics (driver-side)
  // Sampled plan-op profiler output (EngineConfig::plan_profile_stride > 0):
  // per-opcode dispatch counts and sampled time, merged at stage barriers.
  OpProfile plan_ops;

  EngineStats& operator+=(const EngineStats& o) {
    times += o.times;
    transform += o.transform;
    plan_ops += o.plan_ops;
#define GERENUK_ADD_FIELD(f) f += o.f;
    GERENUK_ENGINE_COUNTER_FIELDS(GERENUK_ADD_FIELD)
#undef GERENUK_ADD_FIELD
    return *this;
  }

  // Publishes every counter (by field name), the four phase times
  // ("phase_<name>_ns"), and the plan-op dispatch total into `registry`.
  void ExportTo(MetricsRegistry* registry) const;
};

namespace internal {
#define GERENUK_COUNT_FIELD(f) +1
inline constexpr size_t kEngineStatsCounterFields =
    0 GERENUK_ENGINE_COUNTER_FIELDS(GERENUK_COUNT_FIELD);
#undef GERENUK_COUNT_FIELD
// times, transform, plan_ops.
inline constexpr size_t kEngineStatsCompositeFields = 3;
static_assert(
    CountAggregateFields<EngineStats>() ==
        kEngineStatsCounterFields + kEngineStatsCompositeFields,
    "EngineStats gained a field that GERENUK_ENGINE_COUNTER_FIELDS does not "
    "list: add it to the X-macro (scalar counters) or bump "
    "kEngineStatsCompositeFields and extend operator+= (composites), so the "
    "stage-barrier merge cannot silently drop it");
}  // namespace internal

class ByteBuffer;
class ByteReader;

// Wire round-trip for EngineStats, used by the process-executor protocol to
// ship per-task stats from a forked executor back to the driver. Covers every
// X-macro scalar counter, the four phase times, and the plan-op profile.
// TransformStats is driver-only (compilation never happens in an executor) and
// is deliberately not shipped. Parse validates the blob size up front and
// returns false (leaving `out` untouched) on a short or mis-sized blob.
void SerializeEngineStats(const EngineStats& stats, ByteBuffer* out);
bool ParseEngineStats(ByteReader* in, EngineStats* out);

// Human-readable byte count ("1.5 GB") for bench output. Negative inputs
// render with a leading sign; units extend through EB so any int64 stays in
// range.
std::string FormatBytes(int64_t bytes);

// Human-readable duration ("1.23 ms") for bench and histogram output.
std::string FormatNanos(int64_t nanos);

}  // namespace gerenuk

#endif  // SRC_SUPPORT_METRICS_H_
