// Execution-time accounting shared by the engines, the managed runtime, and
// the benchmark harnesses.
//
// Every task execution is broken into the same four phases the paper's
// Figure 6 reports: computation, GC, serialization, and deserialization.
// PhaseTimes accumulates wall-clock nanoseconds per phase; MemoryTracker
// records live/peak byte counts the way the paper's pmap sampling does
// (process-level peak = managed heap + native buffers).
#ifndef SRC_SUPPORT_METRICS_H_
#define SRC_SUPPORT_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace gerenuk {

// Monotonic stopwatch. Start/Stop may be called repeatedly; ElapsedNanos
// accumulates across runs.
class Stopwatch {
 public:
  void Start() { start_ = Clock::now(); }
  void Stop() {
    accumulated_ += std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
                        .count();
  }
  int64_t ElapsedNanos() const { return accumulated_; }
  double ElapsedMillis() const { return static_cast<double>(accumulated_) / 1e6; }
  void Reset() { accumulated_ = 0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  int64_t accumulated_ = 0;
};

// The four runtime components of Figure 6: computation (blue), GC (red),
// serialization (purple), deserialization (orange).
enum class Phase : uint8_t { kCompute = 0, kGc = 1, kSerialize = 2, kDeserialize = 3 };

inline const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kCompute:
      return "compute";
    case Phase::kGc:
      return "gc";
    case Phase::kSerialize:
      return "ser";
    case Phase::kDeserialize:
      return "deser";
  }
  return "?";
}

struct PhaseTimes {
  int64_t nanos[4] = {0, 0, 0, 0};

  void Add(Phase phase, int64_t ns) { nanos[static_cast<int>(phase)] += ns; }
  int64_t Get(Phase phase) const { return nanos[static_cast<int>(phase)]; }
  int64_t TotalNanos() const { return nanos[0] + nanos[1] + nanos[2] + nanos[3]; }
  double TotalMillis() const { return static_cast<double>(TotalNanos()) / 1e6; }
  double Millis(Phase phase) const { return static_cast<double>(Get(phase)) / 1e6; }

  PhaseTimes& operator+=(const PhaseTimes& other) {
    for (int i = 0; i < 4; ++i) {
      nanos[i] += other.nanos[i];
    }
    return *this;
  }
};

// RAII phase timer: attributes the enclosed scope's wall time to one phase.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimes& times, Phase phase) : times_(times), phase_(phase) {
    watch_.Start();
  }
  ~ScopedPhase() {
    watch_.Stop();
    times_.Add(phase_, watch_.ElapsedNanos());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimes& times_;
  Phase phase_;
  Stopwatch watch_;
};

// Charges elapsed wall time minus everything separately attributed within
// the scope (GC pauses, serialization, deserialization) to kCompute, so the
// four phases partition a task's wall time the way Figure 6's stacked bars
// do.
class ComputePhaseScope {
 public:
  explicit ComputePhaseScope(PhaseTimes& times) : times_(times) {
    other_before_ = OtherPhases();
    watch_.Start();
  }
  ~ComputePhaseScope() {
    watch_.Stop();
    times_.Add(Phase::kCompute, watch_.ElapsedNanos() - (OtherPhases() - other_before_));
  }
  ComputePhaseScope(const ComputePhaseScope&) = delete;
  ComputePhaseScope& operator=(const ComputePhaseScope&) = delete;

 private:
  int64_t OtherPhases() const {
    return times_.Get(Phase::kGc) + times_.Get(Phase::kSerialize) +
           times_.Get(Phase::kDeserialize);
  }

  PhaseTimes& times_;
  int64_t other_before_ = 0;
  Stopwatch watch_;
};

// Live/peak memory accounting. The managed heap and the native buffer
// manager both report into one tracker per engine run, mirroring the paper's
// process-level pmap measurement. Thread-safe: every worker heap and every
// task-local native partition of a parallel stage reports into the same
// engine-level tracker.
class MemoryTracker {
 public:
  void Allocated(int64_t bytes) {
    int64_t now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  void Freed(int64_t bytes) { live_.fetch_sub(bytes, std::memory_order_relaxed); }

  int64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  void Reset() {
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }
  // Restarts peak measurement from the current live footprint (used to
  // exclude input generation from a benchmark's peak).
  void ResetPeak() { peak_.store(live_bytes(), std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> peak_{0};
};

// Statistics of the speculative transformer (Algorithm 1), accumulated per
// compiled stage/function on the driver.
struct TransformStats {
  int statements_transformed = 0;
  int aborts_inserted = 0;
  int functions_transformed = 0;  // functions containing >= 1 transformed stmt
  int violations_by_reason[5] = {0, 0, 0, 0, 0};

  TransformStats& operator+=(const TransformStats& o) {
    statements_transformed += o.statements_transformed;
    aborts_inserted += o.aborts_inserted;
    functions_transformed += o.functions_transformed;
    for (int i = 0; i < 5; ++i) {
      violations_by_reason[i] += o.violations_by_reason[i];
    }
    return *this;
  }
};

// Unified per-engine statistics, shared by the mini-Spark and mini-Hadoop
// engines. Workers accumulate into a private EngineStats during a stage;
// the scheduler merges them into the engine's copy (in worker order) at the
// stage barrier, so counts are deterministic for any worker count.
struct EngineStats {
  PhaseTimes times;
  int tasks_run = 0;
  int map_tasks = 0;     // mini-Hadoop only
  int reduce_tasks = 0;  // mini-Hadoop only
  int spills = 0;        // mini-Hadoop only
  int fast_path_commits = 0;
  int aborts = 0;
  int stages_compiled = 0;
  int64_t shuffle_bytes = 0;
  int64_t combine_calls = 0;
  // Fault tolerance (see DESIGN.md "Fault model & recovery"). All are sums
  // of per-task events, deterministic for any worker count.
  int retries = 0;               // failed attempts that were requeued
  int straggler_relaunches = 0;  // deadline cancellations relaunched elsewhere
  int quarantined_tasks = 0;     // poisoned partitions skipped (kSkip policy)
  int64_t quarantined_records = 0;
  int governor_flips = 0;        // speculation-governor off switches (driver)
  int slow_path_direct = 0;      // tasks routed straight to the slow path
  // Plan compiler (see DESIGN.md "Plan compiler"). plans_compiled counts
  // driver-side SerPlan lowerings; key_allocs_saved counts shuffle-key
  // extractions that reused the per-task scratch string without a fresh
  // heap allocation.
  int plans_compiled = 0;
  int64_t key_allocs_saved = 0;
  TransformStats transform;  // accumulated compiler statistics (driver-side)

  EngineStats& operator+=(const EngineStats& o) {
    times += o.times;
    tasks_run += o.tasks_run;
    map_tasks += o.map_tasks;
    reduce_tasks += o.reduce_tasks;
    spills += o.spills;
    fast_path_commits += o.fast_path_commits;
    aborts += o.aborts;
    stages_compiled += o.stages_compiled;
    shuffle_bytes += o.shuffle_bytes;
    combine_calls += o.combine_calls;
    retries += o.retries;
    straggler_relaunches += o.straggler_relaunches;
    quarantined_tasks += o.quarantined_tasks;
    quarantined_records += o.quarantined_records;
    governor_flips += o.governor_flips;
    slow_path_direct += o.slow_path_direct;
    plans_compiled += o.plans_compiled;
    key_allocs_saved += o.key_allocs_saved;
    transform += o.transform;
    return *this;
  }
};

// Human-readable byte count ("1.5 GB") for bench output.
std::string FormatBytes(int64_t bytes);

}  // namespace gerenuk

#endif  // SRC_SUPPORT_METRICS_H_
