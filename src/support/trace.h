// End-to-end tracing: the per-task event timeline behind the paper's
// evaluation story (when a task aborted, how long its slow-path
// re-execution took, where GC pauses landed).
//
// Design (see DESIGN.md "Observability"):
//   * One TraceSink per worker — a thread-confined, fixed-capacity event
//     buffer. Emitting is a bounds check and a struct store; on overflow
//     events are dropped and counted, never reallocated (no allocation or
//     locking on the task's hot path). The driver owns a direct sink that
//     appends straight to the merged timeline (driver code only runs
//     between stages, so there is no concurrent writer).
//   * Stage-barrier merge — the scheduler drains every worker sink at each
//     stage barrier (the barrier's mutex provides the happens-before edge)
//     and stable-sorts the drained events by (task, attempt). Task-to-worker
//     placement varies with the worker count, but the logical event sequence
//     per (task, attempt) does not, so the merged timeline is identical for
//     1/2/8 workers once timestamps and worker ids are scrubbed
//     (ScrubbedLines). GC pauses are physical per-heap events — which heap
//     fills up when depends on placement — so they are excluded from the
//     scrubbed sequence (but kept in exports).
//   * Off by default — engines allocate a Trace only when
//     EngineConfig::trace is set; everything else holds a TraceSink* that is
//     null when tracing is off, so the disabled cost is one predictable
//     branch per would-be event.
//
// TraceExporter renders the merged timeline as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing; pid = engine, tid = worker) or
// as a compact text timeline.
#ifndef SRC_SUPPORT_TRACE_H_
#define SRC_SUPPORT_TRACE_H_

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/support/metrics.h"

namespace gerenuk {

enum class TraceEventType : uint8_t {
  kStage = 0,          // span: one scheduler stage (driver)
  kTask,               // span: one task attempt, body included
  kFastPath,           // span: speculative SER execution over native bytes
  kSlowPath,           // span: re-execution after an abort (or direct routing)
  kSerialize,          // span: one record serialized
  kDeserialize,        // span: one record deserialized
  kGcPause,            // span: one collection pause (physical; unscrubbed)
  kAbort,              // instant: SER abort fired (arg = AbortReason)
  kRetry,              // instant: failed attempt requeued (arg = next attempt)
  kStragglerRelaunch,  // instant: deadline relaunch on another worker
  kQuarantine,         // instant: poisoned input skipped (arg = records lost)
  kShuffleBytes,       // counter: bytes this task wrote to shuffle (arg)
  kExecutorDead,       // instant: executor process lost (arg = slot)
  kExecutorRelaunch,   // instant: fresh executor forked for a slot (arg = slot)
  kHeartbeat,          // counter: heartbeats received during a stage (arg)
  kSpillBytes,         // counter: stored bytes a shuffle block spilled (arg)
  kFetchBytes,         // counter: raw bytes fetched from a spilled block (arg)
  kAdmissionReject,    // instant: service refused a job at Submit (arg = job id)
  kJobCancel,          // instant: job cancelled / deadline-expired (arg = job id)
  kBreaker,            // instant: slot breaker transition (arg = slot)
};

const char* TraceEventTypeName(TraceEventType type);

enum class TraceEventKind : uint8_t { kSpan = 0, kInstant, kCounter };

// Fixed-size POD event. `name` must point at a string with static storage
// duration — sinks store the pointer, never the characters.
struct TraceEvent {
  TraceEventType type = TraceEventType::kTask;
  TraceEventKind kind = TraceEventKind::kInstant;
  int32_t worker = -1;   // sink's worker id; -1 = driver
  int32_t attempt = 0;   // 1-based attempt of the enclosing task; 0 = none
  int64_t task = -1;     // stage-local task index; -1 = outside any task
  int64_t ts_ns = 0;     // start (spans) or occurrence time, Trace-epoch rel.
  int64_t dur_ns = 0;    // spans only
  int64_t arg = 0;       // type-specific payload (reason, bytes, ...)
  const char* name = "";
};

class Trace;

// A single-producer event buffer. Worker sinks buffer until the stage
// barrier; the driver sink forwards to the merged timeline immediately.
class TraceSink {
 public:
  // Nanoseconds since the owning Trace's epoch.
  int64_t Now() const;

  // Tags subsequently emitted events with (task, attempt); the scheduler
  // brackets every task attempt with BeginTask/EndTask so nested events
  // (fast/slow path, ser/deser, GC, aborts) inherit the attribution.
  void BeginTask(int64_t task, int attempt) {
    cur_task_ = task;
    cur_attempt_ = attempt;
  }
  void EndTask() {
    cur_task_ = -1;
    cur_attempt_ = 0;
  }

  void Span(TraceEventType type, const char* name, int64_t start_ns, int64_t arg = 0) {
    TraceEvent ev = Tagged(type, TraceEventKind::kSpan, name, arg);
    ev.ts_ns = start_ns;
    ev.dur_ns = Now() - start_ns;
    Push(ev);
  }
  void Instant(TraceEventType type, const char* name, int64_t arg = 0) {
    TraceEvent ev = Tagged(type, TraceEventKind::kInstant, name, arg);
    ev.ts_ns = Now();
    Push(ev);
  }
  // Instant attributed to an explicit (task, attempt) rather than the
  // current tag — the scheduler's failure-handling events fire after
  // EndTask.
  void InstantFor(int64_t task, int attempt, TraceEventType type, const char* name,
                  int64_t arg = 0) {
    TraceEvent ev = Tagged(type, TraceEventKind::kInstant, name, arg);
    ev.task = task;
    ev.attempt = attempt;
    ev.ts_ns = Now();
    Push(ev);
  }
  void Counter(TraceEventType type, const char* name, int64_t value) {
    TraceEvent ev = Tagged(type, TraceEventKind::kCounter, name, value);
    ev.ts_ns = Now();
    Push(ev);
  }

  int64_t dropped_events() const { return dropped_; }

 private:
  friend class Trace;
  TraceSink(Trace* owner, int32_t worker, size_t capacity, bool direct)
      : owner_(owner), worker_(worker), capacity_(direct ? 0 : capacity), direct_(direct) {
    if (!direct_) {
      buf_.reserve(capacity_);
    }
  }

  TraceEvent Tagged(TraceEventType type, TraceEventKind kind, const char* name,
                    int64_t arg) const {
    TraceEvent ev;
    ev.type = type;
    ev.kind = kind;
    ev.worker = worker_;
    ev.task = cur_task_;
    ev.attempt = cur_attempt_;
    ev.arg = arg;
    ev.name = name;
    return ev;
  }
  void Push(const TraceEvent& ev);

  Trace* owner_;
  int32_t worker_;
  size_t capacity_;
  bool direct_;
  std::vector<TraceEvent> buf_;
  int64_t dropped_ = 0;
  int64_t cur_task_ = -1;
  int cur_attempt_ = 0;
};

// RAII complete-span helper: captures the start time at construction and
// emits one span event at scope exit (including exception unwinds). A null
// sink makes both ends a single branch — the tracing-off path.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, TraceEventType type, const char* name, int64_t arg = 0)
      : sink_(sink), type_(type), name_(name), arg_(arg) {
    if (sink_ != nullptr) {
      start_ns_ = sink_->Now();
    }
  }
  ~TraceSpan() {
    if (sink_ != nullptr) {
      sink_->Span(type_, name_, start_ns_, arg_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_arg(int64_t arg) { arg_ = arg; }

 private:
  TraceSink* sink_;
  TraceEventType type_;
  const char* name_;
  int64_t arg_;
  int64_t start_ns_ = 0;
};

// The engine-level trace: owns one buffered sink per worker plus the
// driver's direct sink, the merged timeline, and the latency histograms
// derived from it (task duration, abort-to-slow-path-commit, GC pause).
class Trace {
 public:
  static constexpr size_t kDefaultBufferEvents = size_t{1} << 16;

  explicit Trace(int num_workers, size_t buffer_capacity = kDefaultBufferEvents);

  TraceSink* worker(int w) { return workers_[static_cast<size_t>(w)].get(); }
  TraceSink* driver() { return driver_.get(); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Drains every worker sink (in worker order), stable-sorts the drained
  // batch by (task, attempt), and appends it to the merged timeline. Must
  // only run while workers are quiescent — the scheduler calls it from the
  // stage barrier, whose lock provides the required happens-before edge.
  void FlushWorkersAtBarrier();

  // The merged timeline, in barrier-merge order.
  const std::vector<TraceEvent>& events() const { return merged_; }
  // Events dropped to ring-buffer overflow across all sinks so far.
  int64_t dropped_events() const;

  // Derived histograms: "task_duration_ns", "abort_to_slowpath_commit_ns",
  // "gc_pause_ns" — plus the "trace_dropped_events" counter.
  const MetricsRegistry& metrics() const { return metrics_; }

  // The determinism contract: one line per logical event — type, name,
  // (task, attempt), kind, arg — excluding timestamps, worker ids, and
  // physical events (GC pauses). Identical for any worker count.
  std::vector<std::string> ScrubbedLines() const;

  // Drops the merged timeline and its derived histograms so the next job's
  // events start a fresh scope (service mode: per-job trace export). Must
  // run while workers are quiescent, like FlushWorkersAtBarrier; sinks and
  // their cumulative drop counts are untouched.
  void ResetMerged();

 private:
  friend class TraceSink;
  void AppendDirect(const TraceEvent& ev);  // driver-sink path
  void Absorb(const TraceEvent& ev);        // histogram derivation

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<TraceSink>> workers_;
  std::unique_ptr<TraceSink> driver_;
  std::vector<TraceEvent> merged_;
  int64_t dropped_total_ = 0;  // from sinks already drained
  MetricsRegistry metrics_;
  // Pending abort timestamps keyed by task, for abort -> slow-path-commit
  // latency. Events of one (task, attempt) arrive in emission order, so the
  // abort instant precedes its slow-path span.
  std::vector<std::pair<int64_t, int64_t>> pending_aborts_;
};

// Renders a Trace's merged timeline.
class TraceExporter {
 public:
  explicit TraceExporter(const Trace& trace) : trace_(trace) {}

  // Chrome trace-event JSON (JSON Object Format): complete spans (ph "X"),
  // instants (ph "i"), counters (ph "C"), with pid 1 = the engine and
  // tid 0 = driver / tid w+1 = worker w, named via metadata events.
  void WriteChromeJson(std::ostream& os) const;
  std::string ChromeJson() const;

  // Compact fixed-width text timeline, one event per line.
  void WriteTextTimeline(std::ostream& os) const;
  std::string TextTimeline() const;

 private:
  const Trace& trace_;
};

}  // namespace gerenuk

#endif  // SRC_SUPPORT_TRACE_H_
