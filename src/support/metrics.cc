#include "src/support/metrics.h"

#include <algorithm>
#include <cstdio>
#include <type_traits>
#include <vector>

#include "src/support/bytes.h"

namespace gerenuk {

std::string FormatBytes(int64_t bytes) {
  // Negate through uint64_t so INT64_MIN is representable.
  const bool negative = bytes < 0;
  const uint64_t magnitude =
      negative ? 0u - static_cast<uint64_t>(bytes) : static_cast<uint64_t>(bytes);
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB", "EB"};
  double value = static_cast<double>(magnitude);
  int unit = 0;
  while (value >= 1024.0 && unit < 6) {
    value /= 1024.0;
    ++unit;
  }
  char buf[40];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%s%llu B", negative ? "-" : "",
                  static_cast<unsigned long long>(magnitude));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2f %s", negative ? "-" : "", value, units[unit]);
  }
  return buf;
}

std::string FormatNanos(int64_t nanos) {
  const bool negative = nanos < 0;
  const uint64_t magnitude =
      negative ? 0u - static_cast<uint64_t>(nanos) : static_cast<uint64_t>(nanos);
  const char* units[] = {"ns", "us", "ms", "s"};
  double value = static_cast<double>(magnitude);
  int unit = 0;
  while (value >= 1000.0 && unit < 3) {
    value /= 1000.0;
    ++unit;
  }
  char buf[40];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%s%llu ns", negative ? "-" : "",
                  static_cast<unsigned long long>(magnitude));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2f %s", negative ? "-" : "", value, units[unit]);
  }
  return buf;
}

std::string FormatMetricValue(int64_t value, MetricUnit unit) {
  switch (unit) {
    case MetricUnit::kNanos:
      return FormatNanos(value);
    case MetricUnit::kBytes:
      return FormatBytes(value);
    case MetricUnit::kCount:
      break;
  }
  return std::to_string(value);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) {
    return 0;
  }
  if (bucket >= 64) {
    return INT64_MAX;
  }
  // Compute in uint64: 1 << 63 would shift into the sign bit.
  return static_cast<int64_t>((uint64_t{1} << bucket) - 1);
}

int64_t Histogram::PercentileApprox(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile sample, 1-based; walk buckets until reached.
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(count_ - 1)) + 1;
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // The true sample is within the bucket; clamp to observed extremes so
      // the approximation never reports an impossible value.
      return std::min(std::max(BucketUpperBound(b), min()), max());
    }
  }
  return max();
}

std::string Histogram::Render() const {
  if (count_ == 0) {
    return "count=0";
  }
  std::string out = "count=" + std::to_string(count_);
  out += " min=" + FormatMetricValue(min(), unit_);
  out += " p50<=" + FormatMetricValue(PercentileApprox(0.5), unit_);
  out += " p90<=" + FormatMetricValue(PercentileApprox(0.9), unit_);
  out += " p99<=" + FormatMetricValue(PercentileApprox(0.99), unit_);
  out += " max=" + FormatMetricValue(max(), unit_);
  out += " mean=" + FormatMetricValue(mean(), unit_);
  return out;
}

Histogram& MetricsRegistry::Hist(const std::string& name, MetricUnit unit) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram(unit)).first;
  }
  return it->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, hist] : other.hists_) {
    Hist(name, hist.unit()) += hist;
  }
}

void MetricsRegistry::MergeWithPrefix(const std::string& prefix,
                                      const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[prefix + name] += value;
  }
  for (const auto& [name, hist] : other.hists_) {
    Hist(prefix + name, hist.unit()) += hist;
  }
}

std::string MetricsRegistry::Render() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : hists_) {
    out += name + ": " + hist.Render() + "\n";
  }
  return out;
}

std::string OpProfile::Render(const char* (*op_name)(int), int top_n) const {
  std::vector<int> order;
  for (int i = 0; i < kMaxOps; ++i) {
    if (dispatches[i] > 0) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(),
            [this](int a, int b) { return dispatches[a] > dispatches[b]; });
  if (static_cast<int>(order.size()) > top_n) {
    order.resize(static_cast<size_t>(top_n));
  }
  std::string out;
  char line[128];
  for (int i : order) {
    std::snprintf(line, sizeof(line), "  %-24s %12lld  %s\n", op_name(i),
                  static_cast<long long>(dispatches[i]),
                  FormatNanos(sampled_nanos[i]).c_str());
    out += line;
  }
  return out;
}

namespace {
// Fixed-size blob: every scalar counter, the four phase times, and the plan-op
// profile, each as one i64. A size change here is a protocol change; Parse
// rejects blobs whose remaining byte count is too small for this layout.
constexpr size_t kEngineStatsWireFields = internal::kEngineStatsCounterFields +
                                          4 +  // PhaseTimes nanos
                                          2 * OpProfile::kMaxOps +  // dispatches + sampled
                                          1;                        // samples
constexpr size_t kEngineStatsWireBytes = kEngineStatsWireFields * 8;
}  // namespace

void SerializeEngineStats(const EngineStats& stats, ByteBuffer* out) {
#define GERENUK_WIRE_FIELD(f) out->WriteI64(static_cast<int64_t>(stats.f));
  GERENUK_ENGINE_COUNTER_FIELDS(GERENUK_WIRE_FIELD)
#undef GERENUK_WIRE_FIELD
  for (int i = 0; i < 4; ++i) {
    out->WriteI64(stats.times.nanos[i]);
  }
  for (int i = 0; i < OpProfile::kMaxOps; ++i) {
    out->WriteI64(stats.plan_ops.dispatches[i]);
  }
  for (int i = 0; i < OpProfile::kMaxOps; ++i) {
    out->WriteI64(stats.plan_ops.sampled_nanos[i]);
  }
  out->WriteI64(stats.plan_ops.samples);
}

bool ParseEngineStats(ByteReader* in, EngineStats* out) {
  if (in->remaining() < kEngineStatsWireBytes) {
    return false;
  }
#define GERENUK_WIRE_FIELD(f) \
  out->f = static_cast<std::remove_reference_t<decltype(out->f)>>(in->ReadI64());
  GERENUK_ENGINE_COUNTER_FIELDS(GERENUK_WIRE_FIELD)
#undef GERENUK_WIRE_FIELD
  for (int i = 0; i < 4; ++i) {
    out->times.nanos[i] = in->ReadI64();
  }
  for (int i = 0; i < OpProfile::kMaxOps; ++i) {
    out->plan_ops.dispatches[i] = in->ReadI64();
  }
  for (int i = 0; i < OpProfile::kMaxOps; ++i) {
    out->plan_ops.sampled_nanos[i] = in->ReadI64();
  }
  out->plan_ops.samples = in->ReadI64();
  return true;
}

void EngineStats::ExportTo(MetricsRegistry* registry) const {
#define GERENUK_EXPORT_FIELD(f) registry->Counter(#f) += static_cast<int64_t>(f);
  GERENUK_ENGINE_COUNTER_FIELDS(GERENUK_EXPORT_FIELD)
#undef GERENUK_EXPORT_FIELD
  for (Phase phase : {Phase::kCompute, Phase::kGc, Phase::kSerialize, Phase::kDeserialize}) {
    registry->Counter(std::string("phase_") + PhaseName(phase) + "_ns") += times.Get(phase);
  }
  registry->Counter("plan_op_dispatches") += plan_ops.total_dispatches();
  registry->Counter("plan_op_samples") += plan_ops.samples;
}

}  // namespace gerenuk
