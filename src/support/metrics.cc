#include "src/support/metrics.h"

#include <cstdio>

namespace gerenuk {

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace gerenuk
