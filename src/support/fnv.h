// FNV-1a hashing, shared by every integrity seal in the repo: the
// NativePartition commit checksum, the shuffle service's per-spill-block
// seals, and the wire-format trailer. One implementation so a seal computed
// by any producer verifies against any consumer.
#ifndef SRC_SUPPORT_FNV_H_
#define SRC_SUPPORT_FNV_H_

#include <cstddef>
#include <cstdint>

namespace gerenuk {

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

// Incremental FNV-1a: Update as many times as the data arrives in pieces;
// digest() at any point. Byte-order independent (byte-at-a-time).
class Fnv1a {
 public:
  void Update(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    uint64_t h = h_;
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
    h_ = h;
  }
  uint64_t digest() const { return h_; }
  void Reset() { h_ = kFnvOffsetBasis; }

 private:
  uint64_t h_ = kFnvOffsetBasis;
};

// One-shot convenience for contiguous buffers.
inline uint64_t Fnv1aDigest(const void* data, size_t n) {
  Fnv1a h;
  h.Update(data, n);
  return h.digest();
}

}  // namespace gerenuk

#endif  // SRC_SUPPORT_FNV_H_
