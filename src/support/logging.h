// Minimal assertion and logging utilities shared by every Gerenuk module.
//
// GERENUK_CHECK is always on (release included): the simulator's correctness
// properties (offset consistency, region safety) are cheap to verify and a
// silent corruption would invalidate every benchmark built on top.
#ifndef SRC_SUPPORT_LOGGING_H_
#define SRC_SUPPORT_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gerenuk {

// Terminates the process with a formatted message; used by GERENUK_CHECK.
[[noreturn]] void FatalError(const char* file, int line, const std::string& message);

namespace internal {

// Stream-style message collector so call sites can write
//   GERENUK_CHECK(ok) << "context " << value;
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) : file_(file), line_(line) {
    stream_ << "CHECK failed: " << expr << " ";
  }
  [[noreturn]] ~CheckFailStream() { FatalError(file_, line_, stream_.str()); }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GERENUK_CHECK(expr)                                             \
  if (expr) {                                                           \
  } else /* NOLINT */                                                   \
    ::gerenuk::internal::CheckFailStream(__FILE__, __LINE__, #expr)

#define GERENUK_CHECK_EQ(a, b) GERENUK_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define GERENUK_CHECK_NE(a, b) GERENUK_CHECK((a) != (b))
#define GERENUK_CHECK_LT(a, b) GERENUK_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define GERENUK_CHECK_LE(a, b) GERENUK_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define GERENUK_CHECK_GE(a, b) GERENUK_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define GERENUK_CHECK_GT(a, b) GERENUK_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace gerenuk

#endif  // SRC_SUPPORT_LOGGING_H_
