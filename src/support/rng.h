// Deterministic random number generation and the distribution samplers used
// by the synthetic data generators (power-law graphs, Zipfian text, Gaussian
// clusters). Benchmarks must be reproducible run-to-run, so everything is
// seeded explicitly and no global state exists.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/support/logging.h"

namespace gerenuk {

// xoshiro256** — fast, high-quality, and the same on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, per the xoshiro reference recommendation.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) {
    GERENUK_CHECK_GT(bound, 0u);
    return NextU64() % bound;
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Standard normal via Box–Muller (cached pair).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) {
      u1 = NextDouble();
    }
    double u2 = NextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    cached_ = r * std::sin(2.0 * M_PI * u2);
    has_cached_ = true;
    return r * std::cos(2.0 * M_PI * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

// Zipf-distributed integers in [0, n). Uses the classic rejection-inversion
// method (Hörmann) so setup is O(1) and sampling is O(1) regardless of n —
// important because the text generator draws hundreds of millions of words.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent) : n_(n), s_(exponent) {
    GERENUK_CHECK_GT(n, 0u);
    GERENUK_CHECK_GT(exponent, 0.0);
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n) + 0.5);
    dummy_ = 2.0 - HInv(H(2.5) - HIntegerPow(2.0));
  }

  uint64_t Sample(Rng& rng) const {
    while (true) {
      double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
      double x = HInv(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) {
        k = 1;
      } else if (k > n_) {
        k = n_;
      }
      double kd = static_cast<double>(k);
      if (kd - x <= dummy_ || u >= H(kd + 0.5) - HIntegerPow(kd)) {
        return k - 1;  // 0-based rank
      }
    }
  }

 private:
  // H(x) = integral of x^-s; closed forms for s == 1 and s != 1.
  double H(double x) const {
    if (s_ == 1.0) {
      return std::log(x);
    }
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
  }
  double HInv(double x) const {
    if (s_ == 1.0) {
      return std::exp(x);
    }
    return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
  }
  double HIntegerPow(double k) const { return std::pow(k, -s_); }

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double dummy_;
};

}  // namespace gerenuk

#endif  // SRC_SUPPORT_RNG_H_
