#include "src/dataflow/engine_config.h"

#include <sstream>

namespace gerenuk {

std::string EngineConfig::Validate() const {
  std::ostringstream err;
  auto fail = [&err](const std::string& msg) -> std::string {
    err << msg;
    return err.str();
  };

  // Execution.
  if (execution.num_partitions < 1)
    return fail("execution.num_partitions must be >= 1 (got " +
                std::to_string(execution.num_partitions) + ")");
  if (execution.num_workers < 1)
    return fail("execution.num_workers must be >= 1 (got " +
                std::to_string(execution.num_workers) + ")");
  if (execution.heap_bytes == 0)
    return fail("execution.heap_bytes must be non-zero");
  if (execution.vector_batch_size < 1 || execution.vector_batch_size > (1 << 20))
    return fail("execution.vector_batch_size must be in [1, 1048576] (got " +
                std::to_string(execution.vector_batch_size) + ")");
  if (execution.vec_bail_after_strips < -1)
    return fail("execution.vec_bail_after_strips must be >= -1 (got " +
                std::to_string(execution.vec_bail_after_strips) + ")");
  if (execution.executor_heartbeat_ms < 1)
    return fail("execution.executor_heartbeat_ms must be >= 1 (got " +
                std::to_string(execution.executor_heartbeat_ms) + ")");
  if (execution.executor_heartbeat_timeout_ms < execution.executor_heartbeat_ms)
    return fail("execution.executor_heartbeat_timeout_ms (" +
                std::to_string(execution.executor_heartbeat_timeout_ms) +
                ") must be >= executor_heartbeat_ms (" +
                std::to_string(execution.executor_heartbeat_ms) +
                "): the supervisor would declare every live executor dead");
  if (execution.max_executor_relaunches < 0)
    return fail("execution.max_executor_relaunches must be >= 0 (got " +
                std::to_string(execution.max_executor_relaunches) + ")");
  if (execution.process_executors && execution.max_executor_relaunches == 0 &&
      fault.max_task_attempts > 1)
    return fail(
        "execution.process_executors with max_executor_relaunches == 0 "
        "contradicts fault.max_task_attempts > 1: a retried task needs a "
        "fresh executor slot to land on");

  // Fault tolerance.
  if (fault.max_task_attempts < 1)
    return fail("fault.max_task_attempts must be >= 1 (got " +
                std::to_string(fault.max_task_attempts) + ")");
  if (fault.retry_backoff_ms < 0)
    return fail("fault.retry_backoff_ms must be >= 0 (got " +
                std::to_string(fault.retry_backoff_ms) + ")");
  if (fault.retry_backoff_jitter_ms < 0)
    return fail("fault.retry_backoff_jitter_ms must be >= 0 (got " +
                std::to_string(fault.retry_backoff_jitter_ms) + ")");
  if (fault.task_deadline_ms < 0)
    return fail("fault.task_deadline_ms must be >= 0 (got " +
                std::to_string(fault.task_deadline_ms) + ")");
  if (fault.governor_abort_threshold > 1.0)
    return fail("fault.governor_abort_threshold must be <= 1.0 (got " +
                std::to_string(fault.governor_abort_threshold) +
                "): an abort rate never exceeds 1, so the governor would "
                "never engage");
  if (fault.governor_abort_threshold > 0.0 && fault.governor_min_tasks < 1)
    return fail("fault.governor_min_tasks must be >= 1 when the governor is "
                "enabled (got " +
                std::to_string(fault.governor_min_tasks) + ")");

  // Shuffle.
  if (shuffle.shuffle_spill_threshold_bytes < 0)
    return fail("shuffle.shuffle_spill_threshold_bytes must be >= 0 (got " +
                std::to_string(shuffle.shuffle_spill_threshold_bytes) + ")");
  if (shuffle.shuffle_fetch_budget_bytes <= 0)
    return fail("shuffle.shuffle_fetch_budget_bytes must be > 0 (got " +
                std::to_string(shuffle.shuffle_fetch_budget_bytes) +
                "): a zero fetch budget deadlocks every spilled fetch");
  if (shuffle.shuffle_spill_threshold_bytes > 0 &&
      !shuffle.shuffle_spill_dir.empty() &&
      shuffle.shuffle_spill_dir.find('\0') != std::string::npos)
    return fail("shuffle.shuffle_spill_dir contains an embedded NUL");

  // Observability.
  if (observability.trace && observability.trace_buffer_events == 0)
    return fail("observability.trace_buffer_events must be non-zero when "
                "observability.trace is on");

  return std::string();
}

}  // namespace gerenuk
