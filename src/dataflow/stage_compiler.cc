#include "src/dataflow/stage_compiler.h"

#include <map>
#include <sstream>

#include "src/analysis/ser_analyzer.h"
#include "src/ir/builder.h"
#include "src/support/fnv.h"

namespace gerenuk {

ProgramSignature ComputeProgramSignature(EngineMode mode, const DataStructAnalyzer& layouts,
                                         const SerProgram& original,
                                         const std::vector<const Klass*>& klasses,
                                         const VecSignature& vec) {
  std::ostringstream text;
  text << "mode=" << (mode == EngineMode::kGerenuk ? "gerenuk" : "baseline") << '\n';
  // The vec config is part of the plan's identity: the same SER lowers to a
  // different opcode stream (and layout choice) under a different config.
  if (vec.vectorize) {
    text << "vec=on batch=" << vec.vector_batch_size
         << " bail=" << vec.vec_bail_after_strips << '\n';
  } else {
    text << "vec=off\n";
  }
  for (const Klass* klass : klasses) {
    if (klass == nullptr) {
      continue;
    }
    // The full analyzed layout (field kinds, offset expressions) when
    // available, so the same-named klass with a different shape — a fresh
    // engine, a re-registered schema — can never alias a cache entry.
    text << "klass " << klass->name() << ":\n";
    if (layouts.IsTopLevel(klass)) {
      text << layouts.SchemaToString(klass);
    }
  }
  text << PrintProgram(original);

  ProgramSignature sig;
  sig.text = text.str();
  sig.hash = Fnv1aDigest(sig.text.data(), sig.text.size());
  return sig;
}

std::unique_ptr<SerProgram> CompileSerProgram(const SerProgram& original,
                                              const DataStructAnalyzer& layouts,
                                              TransformStats* stats) {
  SerAnalyzer analyzer(original, layouts);
  SerAnalysis analysis = analyzer.Run();
  Transformer transformer(original, analysis, layouts);
  TransformResult result = transformer.Run();
  if (stats != nullptr) {
    stats->statements_transformed += result.stats.statements_transformed;
    stats->aborts_inserted += result.stats.aborts_inserted;
    stats->functions_transformed += result.stats.functions_transformed;
    for (int i = 0; i < 5; ++i) {
      stats->violations_by_reason[i] += result.stats.violations_by_reason[i];
    }
  }
  return std::move(result.transformed);
}

StagePrograms CompileNarrowStage(EngineMode mode, const DataStructAnalyzer& layouts,
                                 const Klass* in_klass, const SerProgram& udfs,
                                 const std::vector<NarrowOp>& ops, bool has_broadcast,
                                 const Klass* broadcast_klass, TransformStats* stats,
                                 KlassRegistry& registry, PlanCache* cache,
                                 const VecSignature& vec) {
  StagePrograms stage;
  stage.original = std::make_unique<SerProgram>();
  stage.in_klass = in_klass;
  stage.out_klass = in_klass;

  std::map<int, int> remap;
  std::vector<const Function*> imported;
  imported.reserve(ops.size());
  for (const NarrowOp& op : ops) {
    int id = ImportFunction(*stage.original, udfs, op.fn->id, remap);
    imported.push_back(stage.original->function(id));
  }

  Function* body = stage.original->AddFunction("stage_body");
  FunctionBuilder b(body);
  int bc_param = -1;
  if (has_broadcast) {
    bc_param = b.Param("broadcast", IrType::Ref(broadcast_klass));
  }
  int end = b.NewLabel();
  int rec = b.Deserialize(in_klass);
  int cur = rec;
  for (size_t i = 0; i < ops.size(); ++i) {
    const NarrowOp& op = ops[i];
    std::vector<int> args = {cur};
    if (imported[i]->num_params == 2) {
      GERENUK_CHECK(has_broadcast) << "UDF " << imported[i]->name
                                   << " expects a broadcast argument";
      args.push_back(bc_param);
    }
    switch (op.kind) {
      case NarrowOp::kMap:
        cur = b.Call(imported[i], args);
        stage.out_klass = op.out_klass;
        break;
      case NarrowOp::kFilter: {
        int keep = b.Call(imported[i], args);
        int drop = b.UnOp(UnOpKind::kNot, keep);
        b.Branch(drop, end);
        break;
      }
      case NarrowOp::kFlatMap: {
        GERENUK_CHECK_EQ(i, ops.size() - 1) << "flatMap must be the last op of a stage";
        int arr = b.Call(imported[i], args);
        int len = b.ArrayLength(arr);
        b.For(len, [&](int idx) {
          int elem = b.ArrayLoad(arr, idx, IrType::Ref(op.out_klass));
          b.Serialize(elem);
        });
        stage.out_klass = op.out_klass;
        b.Jump(end);
        break;
      }
    }
  }
  if (ops.empty() || ops.back().kind != NarrowOp::kFlatMap) {
    b.Serialize(cur);
  }
  b.PlaceLabel(end);
  b.Return();
  b.Done();
  stage.original->body = body;

  stage.signature = ComputeProgramSignature(
      mode, layouts, *stage.original,
      {stage.in_klass, stage.out_klass, has_broadcast ? broadcast_klass : nullptr}, vec);
  if (mode == EngineMode::kGerenuk) {
    PlanCache::Entry hit;
    if (cache != nullptr && cache->Lookup(stage.signature, &hit)) {
      stage.transformed = hit.transformed;
      stage.plan = hit.plan;
      stage.cache_hit = true;
    } else {
      stage.transformed = CompileSerProgram(*stage.original, layouts, stats);
    }
  }
  return stage;
}

CompiledFunction CompileSingleFunction(EngineMode mode, const DataStructAnalyzer& layouts,
                                       const SerProgram& udfs, const Function* fn,
                                       TransformStats* stats, PlanCache* cache,
                                       const VecSignature& vec) {
  CompiledFunction compiled;
  compiled.original = std::make_unique<SerProgram>();
  std::map<int, int> remap;
  int id = ImportFunction(*compiled.original, udfs, fn->id, remap);
  // Key/reduce/combine functions are evaluated inside other interpreters'
  // contexts, so they must be self-contained (call no helpers).
  GERENUK_CHECK_EQ(compiled.original->functions.size(), 1u)
      << fn->name << " must not call helper functions";
  compiled.orig_fn = compiled.original->function(id);
  compiled.signature = ComputeProgramSignature(mode, layouts, *compiled.original, {}, vec);
  if (mode == EngineMode::kGerenuk) {
    PlanCache::Entry hit;
    if (cache != nullptr && cache->Lookup(compiled.signature, &hit)) {
      compiled.transformed = hit.transformed;
      compiled.plan = hit.plan;
      compiled.fast_fn = hit.fast_fn;
      compiled.cache_hit = true;
    } else {
      std::unique_ptr<SerProgram> transformed =
          CompileSerProgram(*compiled.original, layouts, stats);
      compiled.fast_fn = transformed->function(id);
      compiled.transformed = std::move(transformed);
    }
  }
  return compiled;
}

}  // namespace gerenuk
