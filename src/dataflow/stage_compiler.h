// Shared SER construction for the engines: given a chain of narrow operators
// (the user's UDFs) this builds the stage body — deserialization point,
// fused operator calls, serialization point — and runs the Gerenuk compiler
// over it. Both the mini-Spark and mini-Hadoop engines generate their tasks
// through this, mirroring how the real Gerenuk transforms system + user code
// together.
#ifndef SRC_DATAFLOW_STAGE_COMPILER_H_
#define SRC_DATAFLOW_STAGE_COMPILER_H_

#include <memory>
#include <vector>

#include "src/analysis/layout.h"
#include "src/ir/ir.h"
#include "src/transform/transformer.h"

namespace gerenuk {

class SerPlan;  // src/exec/plan.h — compiled form of a transformed program

enum class EngineMode : uint8_t { kBaseline, kGerenuk };

struct NarrowOp {
  enum Kind : uint8_t { kMap, kFlatMap, kFilter } kind = kMap;
  const Function* fn = nullptr;   // kMap: T->U; kFlatMap: T->U[]; kFilter: T->bool
  const Klass* out_klass = nullptr;  // record class produced (kMap/kFlatMap)

  static NarrowOp Map(const Function* fn, const Klass* out_klass) {
    return {kMap, fn, out_klass};
  }
  static NarrowOp FlatMap(const Function* fn, const Klass* out_klass) {
    return {kFlatMap, fn, out_klass};
  }
  static NarrowOp Filter(const Function* fn) { return {kFilter, fn, nullptr}; }
};

struct StagePrograms {
  std::unique_ptr<SerProgram> original;
  std::unique_ptr<SerProgram> transformed;  // kGerenuk only
  // Flat direct-threaded plan over `transformed` (kGerenuk with
  // EngineConfig::use_plan_compiler; null otherwise). Immutable after
  // compile; shared read-only across workers.
  std::shared_ptr<const SerPlan> plan;
  const Klass* in_klass = nullptr;
  const Klass* out_klass = nullptr;
};

struct CompiledFunction {
  std::unique_ptr<SerProgram> original;
  std::unique_ptr<SerProgram> transformed;
  std::shared_ptr<const SerPlan> plan;  // over `transformed`, may be null
  const Function* orig_fn = nullptr;
  const Function* fast_fn = nullptr;  // kGerenuk only
};

// Runs SER analysis + Algorithm 1 over `original`, accumulating compiler
// statistics into `*stats` when non-null.
std::unique_ptr<SerProgram> CompileSerProgram(const SerProgram& original,
                                              const DataStructAnalyzer& layouts,
                                              TransformStats* stats);

// Builds and (in kGerenuk mode) compiles a fused narrow stage.
StagePrograms CompileNarrowStage(EngineMode mode, const DataStructAnalyzer& layouts,
                                 const Klass* in_klass, const SerProgram& udfs,
                                 const std::vector<NarrowOp>& ops, bool has_broadcast,
                                 const Klass* broadcast_klass, TransformStats* stats,
                                 KlassRegistry& registry);

// Imports and compiles one self-contained function (key/reduce/combine).
CompiledFunction CompileSingleFunction(EngineMode mode, const DataStructAnalyzer& layouts,
                                       const SerProgram& udfs, const Function* fn,
                                       TransformStats* stats);

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_STAGE_COMPILER_H_
