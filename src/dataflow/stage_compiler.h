// Shared SER construction for the engines: given a chain of narrow operators
// (the user's UDFs) this builds the stage body — deserialization point,
// fused operator calls, serialization point — and runs the Gerenuk compiler
// over it. Both the mini-Spark and mini-Hadoop engines generate their tasks
// through this, mirroring how the real Gerenuk transforms system + user code
// together.
#ifndef SRC_DATAFLOW_STAGE_COMPILER_H_
#define SRC_DATAFLOW_STAGE_COMPILER_H_

#include <memory>
#include <vector>

#include "src/analysis/layout.h"
#include "src/exec/plan_cache.h"  // ProgramSignature, PlanCache
#include "src/ir/ir.h"
#include "src/transform/transformer.h"

namespace gerenuk {

class SerPlan;  // src/exec/plan.h — compiled form of a transformed program

enum class EngineMode : uint8_t { kBaseline, kGerenuk };

// Vectorization configuration that participates in the SER's canonical
// signature. Plans compiled under different vec configs differ (batch
// opcodes, strip size, bail knob), so a cache hit must never cross them —
// a scalar-compiled SerPlan served to a vectorized engine (or vice versa)
// would silently execute with the wrong kernels. Mirrors the
// EngineConfig::execution fields of the same names; defaults match theirs
// so signature-only call sites (tests) stay aligned with a default engine.
struct VecSignature {
  bool vectorize = true;
  int32_t vector_batch_size = 256;
  int64_t vec_bail_after_strips = -1;
};

// Canonical signature of a SER: engine mode, vectorization config, the
// layouts of every klass the program touches (in order), and the printed
// original program. Two jobs with the same signature compile to
// byte-identical plans inside one engine, which is what makes the PlanCache
// sound. Null klasses are skipped, so call sites pass `{in, out, broadcast}`
// unconditionally.
ProgramSignature ComputeProgramSignature(EngineMode mode, const DataStructAnalyzer& layouts,
                                         const SerProgram& original,
                                         const std::vector<const Klass*>& klasses,
                                         const VecSignature& vec = VecSignature());

struct NarrowOp {
  enum Kind : uint8_t { kMap, kFlatMap, kFilter } kind = kMap;
  const Function* fn = nullptr;   // kMap: T->U; kFlatMap: T->U[]; kFilter: T->bool
  const Klass* out_klass = nullptr;  // record class produced (kMap/kFlatMap)

  static NarrowOp Map(const Function* fn, const Klass* out_klass) {
    return {kMap, fn, out_klass};
  }
  static NarrowOp FlatMap(const Function* fn, const Klass* out_klass) {
    return {kFlatMap, fn, out_klass};
  }
  static NarrowOp Filter(const Function* fn) { return {kFilter, fn, nullptr}; }
};

struct StagePrograms {
  std::unique_ptr<SerProgram> original;
  // kGerenuk only. Shared (not unique) because a PlanCache entry and every
  // live stage compiled from it co-own the same transformed program — the
  // SerPlan's function table is keyed by this exact program's Function
  // pointers, so the pair must travel together.
  std::shared_ptr<const SerProgram> transformed;
  // Flat direct-threaded plan over `transformed` (kGerenuk with
  // EngineConfig::use_plan_compiler; null otherwise). Immutable after
  // compile; shared read-only across workers.
  std::shared_ptr<const SerPlan> plan;
  const Klass* in_klass = nullptr;
  const Klass* out_klass = nullptr;
  // Canonical identity of this stage's SER (computed in both modes; the
  // hash keys per-tenant abort-rate histories, the text keys the PlanCache).
  ProgramSignature signature;
  // True when `transformed`/`plan` came out of a PlanCache — the transform
  // and CompilePlan were both skipped.
  bool cache_hit = false;
};

struct CompiledFunction {
  std::unique_ptr<SerProgram> original;
  std::shared_ptr<const SerProgram> transformed;  // see StagePrograms note
  std::shared_ptr<const SerPlan> plan;  // over `transformed`, may be null
  const Function* orig_fn = nullptr;
  const Function* fast_fn = nullptr;  // kGerenuk only
  ProgramSignature signature;
  bool cache_hit = false;
};

// Runs SER analysis + Algorithm 1 over `original`, accumulating compiler
// statistics into `*stats` when non-null.
std::unique_ptr<SerProgram> CompileSerProgram(const SerProgram& original,
                                              const DataStructAnalyzer& layouts,
                                              TransformStats* stats);

// Builds and (in kGerenuk mode) compiles a fused narrow stage. With a
// `cache`, a signature hit fills `transformed`/`plan`/`cache_hit` and skips
// the transform entirely; the caller inserts on miss after compiling the
// plan (the pool-fold + CompilePlan step lives in the engines).
StagePrograms CompileNarrowStage(EngineMode mode, const DataStructAnalyzer& layouts,
                                 const Klass* in_klass, const SerProgram& udfs,
                                 const std::vector<NarrowOp>& ops, bool has_broadcast,
                                 const Klass* broadcast_klass, TransformStats* stats,
                                 KlassRegistry& registry, PlanCache* cache = nullptr,
                                 const VecSignature& vec = VecSignature());

// Imports and compiles one self-contained function (key/reduce/combine).
// Same cache contract as CompileNarrowStage.
CompiledFunction CompileSingleFunction(EngineMode mode, const DataStructAnalyzer& layouts,
                                       const SerProgram& udfs, const Function* fn,
                                       TransformStats* stats, PlanCache* cache = nullptr,
                                       const VecSignature& vec = VecSignature());

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_STAGE_COMPILER_H_
