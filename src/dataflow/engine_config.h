// The shared engine configuration: both the mini-Spark and mini-Hadoop
// engines are configured through these knobs, so the task scheduler, the
// managed heap, and the partitioning are wired identically in both systems.
#ifndef SRC_DATAFLOW_ENGINE_CONFIG_H_
#define SRC_DATAFLOW_ENGINE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/dataflow/stage_compiler.h"  // EngineMode
#include "src/exec/fault.h"               // RetryPolicy, QuarantinePolicy
#include "src/runtime/heap.h"             // GcKind

namespace gerenuk {

struct EngineConfig {
  EngineMode mode = EngineMode::kBaseline;
  size_t heap_bytes = 64u << 20;
  GcKind gc = GcKind::kGenerational;
  // Partitions per dataset; also the number of tasks per stage (Hadoop: the
  // number of map tasks / input splits).
  int num_partitions = 4;
  // Size of the worker pool Gerenuk-mode stages fan out to. Each worker owns
  // an isolated executor context (its own mini-heap, sharing the engine's
  // class registry). Baseline stages always run serially on the engine heap
  // (it is single-mutator), whatever this is set to. Output bytes and
  // abort/commit counts are identical for every worker count.
  int num_workers = 1;

  // --- Fault tolerance (see DESIGN.md "Fault model & recovery") ---
  // Scheduler retry budget per task. 1 = the seed's fail-fast behavior.
  int max_task_attempts = 1;
  // Deterministic backoff before attempt n: retry_backoff_ms << (n - 2).
  int64_t retry_backoff_ms = 0;
  // Per-attempt deadline (cooperative); 0 disables straggler detection.
  int64_t task_deadline_ms = 0;
  // Lower transformed SERs to flat direct-threaded plans (SerPlan) and run
  // the fast path through the PlanExecutor with batched record channels.
  // Off: the tree-walking Interpreter runs the fast path (the reference
  // implementation — also the abort/slow-path fallback either way). Output
  // bytes are identical in both settings; see tests/plan_test.cc.
  bool use_plan_compiler = true;
  // What happens to a task whose input fails its integrity checksum.
  QuarantinePolicy quarantine = QuarantinePolicy::kFailFast;

  // --- Observability (see DESIGN.md "Observability") ---
  // Record a per-task event timeline: stage/task/fast-path/slow-path spans,
  // abort + retry/relaunch/quarantine instants, GC pauses, ser/deser spans,
  // shuffle-byte counters. Off by default: no Trace is allocated and every
  // instrumentation site reduces to one null-pointer test. Export with
  // TraceExporter (Chrome trace-event JSON or a text timeline).
  bool trace = false;
  // Per-worker event ring capacity; overflowing events are dropped and
  // counted (Trace::dropped_events), never blocked on.
  size_t trace_buffer_events = 1u << 16;
  // Sampled plan-op profiler: every dispatch counts its opcode, every
  // `stride`-th dispatch takes a clock read. <= 0 disables (the dispatch
  // loop then runs the unprofiled instantiation — zero overhead). Results
  // land in EngineStats::plan_ops.
  int64_t plan_profile_stride = 0;

  // --- Adaptive speculation governor ---
  // Once the cumulative abort rate over speculative tasks reaches this
  // threshold (with at least governor_min_tasks observed), remaining stages
  // run the slow path directly. <= 0 disables the governor.
  double governor_abort_threshold = -1.0;
  int governor_min_tasks = 4;

  RetryPolicy retry_policy() const {
    RetryPolicy policy;
    policy.max_attempts = max_task_attempts;
    policy.backoff_base_ms = retry_backoff_ms;
    policy.task_deadline_ms = task_deadline_ms;
    policy.quarantine = quarantine;
    return policy;
  }
};

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_ENGINE_CONFIG_H_
