// The shared engine configuration: both the mini-Spark and mini-Hadoop
// engines are configured through these knobs, so the task scheduler, the
// managed heap, and the partitioning are wired identically in both systems.
#ifndef SRC_DATAFLOW_ENGINE_CONFIG_H_
#define SRC_DATAFLOW_ENGINE_CONFIG_H_

#include <cstddef>

#include "src/dataflow/stage_compiler.h"  // EngineMode
#include "src/runtime/heap.h"             // GcKind

namespace gerenuk {

struct EngineConfig {
  EngineMode mode = EngineMode::kBaseline;
  size_t heap_bytes = 64u << 20;
  GcKind gc = GcKind::kGenerational;
  // Partitions per dataset; also the number of tasks per stage (Hadoop: the
  // number of map tasks / input splits).
  int num_partitions = 4;
  // Size of the worker pool Gerenuk-mode stages fan out to. Each worker owns
  // an isolated executor context (its own mini-heap, sharing the engine's
  // class registry). Baseline stages always run serially on the engine heap
  // (it is single-mutator), whatever this is set to. Output bytes and
  // abort/commit counts are identical for every worker count.
  int num_workers = 1;
};

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_ENGINE_CONFIG_H_
