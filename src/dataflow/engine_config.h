// The shared engine configuration: both the mini-Spark and mini-Hadoop
// engines are configured through these knobs, so the task scheduler, the
// managed heap, and the partitioning are wired identically in both systems.
//
// Knobs are grouped by concern: `execution` (mode, heap, parallelism,
// process model), `fault` (retries, deadlines, governor), `shuffle` (spill
// + fetch backpressure), `observability` (trace + plan profiler). A whole
// config is checked in one place — EngineConfig::Validate() — and both
// engine constructors refuse an invalid one with the descriptive error it
// returns.
#ifndef SRC_DATAFLOW_ENGINE_CONFIG_H_
#define SRC_DATAFLOW_ENGINE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "src/dataflow/stage_compiler.h"  // EngineMode
#include "src/exec/fault.h"               // RetryPolicy, QuarantinePolicy
#include "src/runtime/heap.h"             // GcKind

namespace gerenuk {

// Service-mode hook generalizing the SpeculationGovernor from per-engine to
// per-tenant-per-SER: `should_speculate(sig)` is consulted (in addition to
// the engine's own governor) before each speculative stage, keyed by the
// stage's ProgramSignature hash; `observe(sig, tasks, aborts)` is fed at
// the stage barrier. Both driver-side, never from workers. Installed via
// SparkEngine/HadoopEngine::set_speculation_oracle.
struct SpeculationOracle {
  std::function<bool(uint64_t signature_hash)> should_speculate;
  std::function<void(uint64_t signature_hash, int tasks, int aborts)> observe;
};

// --- Execution: mode, heap, parallelism, process model ---
struct ExecutionOptions {
  EngineMode mode = EngineMode::kBaseline;
  size_t heap_bytes = 64u << 20;
  GcKind gc = GcKind::kGenerational;
  // Partitions per dataset; also the number of tasks per stage (Hadoop: the
  // number of map tasks / input splits).
  int num_partitions = 4;
  // Size of the worker pool Gerenuk-mode stages fan out to. Each worker owns
  // an isolated executor context (its own mini-heap, sharing the engine's
  // class registry). Baseline stages always run serially on the engine heap
  // (it is single-mutator), whatever this is set to. Output bytes and
  // abort/commit counts are identical for every worker count.
  int num_workers = 1;
  // Lower transformed SERs to flat direct-threaded plans (SerPlan) and run
  // the fast path through the PlanExecutor with batched record channels.
  // Off: the tree-walking Interpreter runs the fast path (the reference
  // implementation — also the abort/slow-path fallback either way). Output
  // bytes are identical in both settings; see tests/plan_test.cc.
  bool use_plan_compiler = true;
  // Lower counted loops inside compiled plans to columnar batch kernels
  // (kVec* opcodes, see DESIGN.md §13). The layout cost model still falls
  // back to row execution per SER when the loop body is pointer-chasing;
  // a vec strip that hits a runtime hazard replays through the scalar path,
  // so output bytes are identical in all settings and at any worker count.
  bool vectorize = true;
  // Lanes per vectorized strip (column length). Power of two not required.
  int32_t vector_batch_size = 256;
  // Test-only: vectorized loops hand control to the scalar path after this
  // many strips (-1 = never) — exercises the mid-loop bail/replay seam.
  int64_t vec_bail_after_strips = -1;

  // --- Process-mode execution (see DESIGN.md "Process model & shuffle") ---
  // Run Gerenuk-mode stages in forked executor processes supervised by the
  // driver: sealed partition bytes cross a real process boundary, executor
  // death (SIGKILL) is a recoverable TaskError{kExecutorLost}, and wedged
  // executors are reaped by heartbeat timeout. Output bytes stay identical
  // to in-process mode for every executor count. Baseline mode and stages
  // without a wire codec run in-process regardless.
  bool process_executors = false;
  // Child heartbeat period / supervisor liveness timeout (ms).
  int64_t executor_heartbeat_ms = 25;
  int64_t executor_heartbeat_timeout_ms = 1000;
  // Fresh processes allowed per executor slot after the initial launch.
  int max_executor_relaunches = 3;
};

// --- Fault tolerance (see DESIGN.md "Fault model & recovery") ---
struct FaultToleranceOptions {
  // Scheduler retry budget per task. 1 = the seed's fail-fast behavior.
  int max_task_attempts = 1;
  // Deterministic backoff before attempt n: retry_backoff_ms << (n - 2).
  int64_t retry_backoff_ms = 0;
  // Per-attempt deadline (cooperative); 0 disables straggler detection.
  int64_t task_deadline_ms = 0;
  // Deterministic jitter added to the exponential backoff term: a seeded
  // hash of (task, attempt) in [0, retry_backoff_jitter_ms]. Reproducible —
  // the same seed gives the same schedule on every run and worker count.
  int64_t retry_backoff_jitter_ms = 0;
  uint64_t retry_jitter_seed = 0;
  // What happens to a task whose input fails its integrity checksum.
  QuarantinePolicy quarantine = QuarantinePolicy::kFailFast;

  // --- Adaptive speculation governor ---
  // Once the cumulative abort rate over speculative tasks reaches this
  // threshold (with at least governor_min_tasks observed), remaining stages
  // run the slow path directly. <= 0 disables the governor.
  double governor_abort_threshold = -1.0;
  int governor_min_tasks = 4;
};

// --- Shuffle service (Spark-side reduce/join exchange) ---
struct ShuffleOptions {
  // Spill threshold: once resident shuffle bytes would exceed this, newly
  // added partitions are sealed, compressed, and spilled to disk; reducers
  // fetch them on demand. 0 = never spill (all-resident, the default).
  int64_t shuffle_spill_threshold_bytes = 0;
  // Compress spilled blocks (LZ-style; stored verbatim when incompressible).
  bool shuffle_compress = true;
  // Bounded-credit backpressure: total bytes of spilled blocks allowed
  // in flight to consumers at once. A slow consumer blocks further fetches
  // instead of ballooning producer-side memory.
  int64_t shuffle_fetch_budget_bytes = 16ll << 20;
  // Directory for spill files ("" = $TMPDIR or /tmp). Files are unlinked at
  // creation, so they vanish with the process no matter how it dies.
  std::string shuffle_spill_dir;
};

// --- Observability (see DESIGN.md "Observability") ---
struct ObservabilityOptions {
  // Record a per-task event timeline: stage/task/fast-path/slow-path spans,
  // abort + retry/relaunch/quarantine instants, GC pauses, ser/deser spans,
  // shuffle-byte counters. Off by default: no Trace is allocated and every
  // instrumentation site reduces to one null-pointer test. Export with
  // TraceExporter (Chrome trace-event JSON or a text timeline).
  bool trace = false;
  // Per-worker event ring capacity; overflowing events are dropped and
  // counted (Trace::dropped_events), never blocked on.
  size_t trace_buffer_events = 1u << 16;
  // Sampled plan-op profiler: every dispatch counts its opcode, every
  // `stride`-th dispatch takes a clock read. <= 0 disables (the dispatch
  // loop then runs the unprofiled instantiation — zero overhead). Results
  // land in EngineStats::plan_ops.
  int64_t plan_profile_stride = 0;
};

// The slice of ExecutionOptions that participates in a SER's canonical
// signature (see ComputeProgramSignature): plans compiled under different
// vec configs must never share a PlanCache entry.
inline VecSignature VecSignatureOf(const ExecutionOptions& execution) {
  VecSignature vec;
  vec.vectorize = execution.vectorize;
  vec.vector_batch_size = execution.vector_batch_size;
  vec.vec_bail_after_strips = execution.vec_bail_after_strips;
  return vec;
}

struct EngineConfig {
  ExecutionOptions execution;
  FaultToleranceOptions fault;
  ShuffleOptions shuffle;
  ObservabilityOptions observability;

  RetryPolicy retry_policy() const {
    RetryPolicy policy;
    policy.max_attempts = fault.max_task_attempts;
    policy.backoff_base_ms = fault.retry_backoff_ms;
    policy.backoff_jitter_ms = fault.retry_backoff_jitter_ms;
    policy.jitter_seed = fault.retry_jitter_seed;
    policy.task_deadline_ms = fault.task_deadline_ms;
    policy.quarantine = fault.quarantine;
    return policy;
  }

  // Checks the whole config for contradictions and out-of-range knobs.
  // Returns "" when valid, otherwise a descriptive one-line error naming
  // the offending field(s). Both engine constructors call this and refuse
  // an invalid config.
  std::string Validate() const;
};

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_ENGINE_CONFIG_H_
