// The shared engine configuration: both the mini-Spark and mini-Hadoop
// engines are configured through these knobs, so the task scheduler, the
// managed heap, and the partitioning are wired identically in both systems.
#ifndef SRC_DATAFLOW_ENGINE_CONFIG_H_
#define SRC_DATAFLOW_ENGINE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/dataflow/stage_compiler.h"  // EngineMode
#include "src/exec/fault.h"               // RetryPolicy, QuarantinePolicy
#include "src/runtime/heap.h"             // GcKind

namespace gerenuk {

struct EngineConfig {
  EngineMode mode = EngineMode::kBaseline;
  size_t heap_bytes = 64u << 20;
  GcKind gc = GcKind::kGenerational;
  // Partitions per dataset; also the number of tasks per stage (Hadoop: the
  // number of map tasks / input splits).
  int num_partitions = 4;
  // Size of the worker pool Gerenuk-mode stages fan out to. Each worker owns
  // an isolated executor context (its own mini-heap, sharing the engine's
  // class registry). Baseline stages always run serially on the engine heap
  // (it is single-mutator), whatever this is set to. Output bytes and
  // abort/commit counts are identical for every worker count.
  int num_workers = 1;

  // --- Fault tolerance (see DESIGN.md "Fault model & recovery") ---
  // Scheduler retry budget per task. 1 = the seed's fail-fast behavior.
  int max_task_attempts = 1;
  // Deterministic backoff before attempt n: retry_backoff_ms << (n - 2).
  int64_t retry_backoff_ms = 0;
  // Per-attempt deadline (cooperative); 0 disables straggler detection.
  int64_t task_deadline_ms = 0;
  // Deterministic jitter added to the exponential backoff term: a seeded
  // hash of (task, attempt) in [0, retry_backoff_jitter_ms]. Reproducible —
  // the same seed gives the same schedule on every run and worker count.
  int64_t retry_backoff_jitter_ms = 0;
  uint64_t retry_jitter_seed = 0;

  // --- Process-mode execution (see DESIGN.md "Process model & shuffle") ---
  // Run Gerenuk-mode stages in forked executor processes supervised by the
  // driver: sealed partition bytes cross a real process boundary, executor
  // death (SIGKILL) is a recoverable TaskError{kExecutorLost}, and wedged
  // executors are reaped by heartbeat timeout. Output bytes stay identical
  // to in-process mode for every executor count. Baseline mode and stages
  // without a wire codec run in-process regardless.
  bool process_executors = false;
  // Child heartbeat period / supervisor liveness timeout (ms).
  int64_t executor_heartbeat_ms = 25;
  int64_t executor_heartbeat_timeout_ms = 1000;
  // Fresh processes allowed per executor slot after the initial launch.
  int max_executor_relaunches = 3;

  // --- Shuffle service (Spark-side reduce/join exchange) ---
  // Spill threshold: once resident shuffle bytes would exceed this, newly
  // added partitions are sealed, compressed, and spilled to disk; reducers
  // fetch them on demand. 0 = never spill (all-resident, the default).
  int64_t shuffle_spill_threshold_bytes = 0;
  // Compress spilled blocks (LZ-style; stored verbatim when incompressible).
  bool shuffle_compress = true;
  // Bounded-credit backpressure: total bytes of spilled blocks allowed
  // in flight to consumers at once. A slow consumer blocks further fetches
  // instead of ballooning producer-side memory.
  int64_t shuffle_fetch_budget_bytes = 16ll << 20;
  // Directory for spill files ("" = $TMPDIR or /tmp). Files are unlinked at
  // creation, so they vanish with the process no matter how it dies.
  std::string shuffle_spill_dir;
  // Lower transformed SERs to flat direct-threaded plans (SerPlan) and run
  // the fast path through the PlanExecutor with batched record channels.
  // Off: the tree-walking Interpreter runs the fast path (the reference
  // implementation — also the abort/slow-path fallback either way). Output
  // bytes are identical in both settings; see tests/plan_test.cc.
  bool use_plan_compiler = true;
  // What happens to a task whose input fails its integrity checksum.
  QuarantinePolicy quarantine = QuarantinePolicy::kFailFast;

  // --- Observability (see DESIGN.md "Observability") ---
  // Record a per-task event timeline: stage/task/fast-path/slow-path spans,
  // abort + retry/relaunch/quarantine instants, GC pauses, ser/deser spans,
  // shuffle-byte counters. Off by default: no Trace is allocated and every
  // instrumentation site reduces to one null-pointer test. Export with
  // TraceExporter (Chrome trace-event JSON or a text timeline).
  bool trace = false;
  // Per-worker event ring capacity; overflowing events are dropped and
  // counted (Trace::dropped_events), never blocked on.
  size_t trace_buffer_events = 1u << 16;
  // Sampled plan-op profiler: every dispatch counts its opcode, every
  // `stride`-th dispatch takes a clock read. <= 0 disables (the dispatch
  // loop then runs the unprofiled instantiation — zero overhead). Results
  // land in EngineStats::plan_ops.
  int64_t plan_profile_stride = 0;

  // --- Adaptive speculation governor ---
  // Once the cumulative abort rate over speculative tasks reaches this
  // threshold (with at least governor_min_tasks observed), remaining stages
  // run the slow path directly. <= 0 disables the governor.
  double governor_abort_threshold = -1.0;
  int governor_min_tasks = 4;

  RetryPolicy retry_policy() const {
    RetryPolicy policy;
    policy.max_attempts = max_task_attempts;
    policy.backoff_base_ms = retry_backoff_ms;
    policy.backoff_jitter_ms = retry_backoff_jitter_ms;
    policy.jitter_seed = retry_jitter_seed;
    policy.task_deadline_ms = task_deadline_ms;
    policy.quarantine = quarantine;
    return policy;
  }
};

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_ENGINE_CONFIG_H_
