// A miniature Spark: the data-parallel substrate the Gerenuk evaluation
// transforms. It provides partitioned datasets, fused narrow stages
// (map/flatMap/filter), hash-partitioned shuffles with reduceByKey and
// joins, broadcast variables, and per-phase time/memory accounting.
//
// Two engine modes mirror the paper's comparison:
//   * kBaseline — the unmodified system: records live as managed-heap
//     objects; every shuffle serializes with the Kryo-like HeapSerializer on
//     the map side and deserializes on the reduce side; the GC pays for all
//     data objects.
//   * kGerenuk  — the transformed system: records live as inlined native
//     bytes; every stage's SER is compiled (SER analyzer + Algorithm 1) and
//     speculatively executed over the buffers; shuffles are byte copies in
//     the same format; input regions are freed wholesale after each task.
//
// Tasks run sequentially on the calling thread (the managed heap is
// single-mutator); the relative per-phase costs — what Figure 6 plots — are
// unaffected by this, since both modes execute the same schedule.
#ifndef SRC_DATAFLOW_SPARK_H_
#define SRC_DATAFLOW_SPARK_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dataflow/dataset.h"
#include "src/exec/ser_executor.h"
#include "src/serde/heap_serializer.h"

namespace gerenuk {

struct SparkConfig {
  EngineMode mode = EngineMode::kBaseline;
  size_t heap_bytes = 64u << 20;
  GcKind gc = GcKind::kGenerational;
  int num_partitions = 4;
};

// A driver-built value shipped to every task (e.g. KMeans' current centers).
struct BroadcastVar {
  const Klass* klass = nullptr;
  ObjRef heap = kNullRef;          // kBaseline representation
  NativePartition native;          // kGerenuk representation (single record)
};

struct EngineStats {
  PhaseTimes times;
  int tasks_run = 0;
  int fast_path_commits = 0;
  int aborts = 0;
  int64_t shuffle_bytes = 0;
  TransformStats transform;  // accumulated compiler statistics
  int stages_compiled = 0;
};

class SparkEngine {
 public:
  explicit SparkEngine(const SparkConfig& config);
  ~SparkEngine();

  Heap& heap() { return *heap_; }
  WellKnown& wk() { return *wk_; }
  EngineMode mode() const { return config_.mode; }
  int num_partitions() const { return config_.num_partitions; }

  // §3.1 annotation: top-level data types must be registered before any
  // stage touching them is compiled.
  void RegisterDataType(const Klass* klass);
  const DataStructAnalyzer& layouts() const { return layouts_; }

  // Builds a source dataset. `make` returns a rooted heap object per index
  // (the engine roots it during conversion); records are stored per the
  // engine mode. Call ResetMetrics() afterwards to exclude generation cost.
  DatasetPtr Source(const Klass* klass, int64_t count,
                    const std::function<ObjRef(int64_t, RootScope&)>& make);

  BroadcastVar MakeBroadcast(ObjRef obj, const Klass* klass);

  // A fused narrow stage (no shuffle).
  DatasetPtr RunStage(const DatasetPtr& input, const SerProgram& udfs,
                      const std::vector<NarrowOp>& ops, const BroadcastVar* broadcast = nullptr);

  // Narrow pre-ops, shuffle by key, then pairwise reduction per key.
  DatasetPtr ReduceByKey(const DatasetPtr& input, const SerProgram& udfs,
                         const std::vector<NarrowOp>& pre_ops, const KeySpec& key,
                         const Function* reduce_fn, const BroadcastVar* broadcast = nullptr);

  // Inner hash join: shuffle both sides by key, combine matching pairs.
  DatasetPtr JoinByKey(const DatasetPtr& left, const KeySpec& left_key, const DatasetPtr& right,
                       const KeySpec& right_key, const SerProgram& udfs,
                       const Function* combine_fn, const Klass* out_klass);

  // Driver-side materialization as heap objects (rooted in `scope`).
  std::vector<size_t> CollectToHeap(const DatasetPtr& dataset, RootScope& scope);
  int64_t Count(const DatasetPtr& dataset) const { return dataset->TotalRecords(); }

  const EngineStats& stats() const { return stats_; }
  int64_t peak_memory_bytes() const { return memory_.peak_bytes(); }
  void ResetMetrics();

  // Fig. 10(b) hook: the next `n` Gerenuk tasks abort halfway through.
  void ForceAborts(int n) { forced_aborts_remaining_ = n; }

 private:
  using CompiledStage = StagePrograms;
  using CompiledFn = CompiledFunction;

  // Builds the stage body: deserialize -> narrow chain -> serialize.
  CompiledStage CompileStage(const Klass* in_klass, const SerProgram& udfs,
                             const std::vector<NarrowOp>& ops, bool has_broadcast,
                             const Klass* broadcast_klass);
  CompiledFn CompileFn(const SerProgram& udfs, const Function* fn);

  using ShuffleKeyValue = ShuffleKey;
  using ShuffleKeyHash = ShuffleKey::Hash;

  // Mode-specific stage executors.
  DatasetPtr RunNarrowBaseline(const DatasetPtr& input, const CompiledStage& stage,
                               const BroadcastVar* broadcast);
  DatasetPtr RunNarrowGerenuk(const DatasetPtr& input, const CompiledStage& stage,
                              const BroadcastVar* broadcast);
  // Shuffle write: per-map-task, per-bucket outputs — the analogue of map
  // output files, so an aborted task discards only its own contribution.
  // Outer index: map task; inner index: reduce bucket.
  void ShuffleBaseline(const DatasetPtr& input, const CompiledStage& stage, const KeySpec& key,
                       const CompiledFn& key_fn, const BroadcastVar* broadcast,
                       std::vector<std::vector<ByteBuffer>>* buckets,
                       std::vector<std::vector<int64_t>>* bucket_counts);
  void ShuffleGerenuk(const DatasetPtr& input, const CompiledStage& stage, const KeySpec& key,
                      const CompiledFn& key_fn, const BroadcastVar* broadcast,
                      std::vector<std::vector<NativePartition>>* buckets);

  int64_t NextForcedAbortIndex(int64_t records);

  SparkConfig config_;
  std::unique_ptr<Heap> heap_;
  std::unique_ptr<WellKnown> wk_;
  ExprPool pool_;
  DataStructAnalyzer layouts_{pool_};
  HeapSerializer kryo_;
  InlineSerializer inline_serde_;
  MemoryTracker memory_;
  EngineStats stats_;
  int forced_aborts_remaining_ = 0;
};

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_SPARK_H_
