// A miniature Spark: the data-parallel substrate the Gerenuk evaluation
// transforms. It provides partitioned datasets, fused narrow stages
// (map/flatMap/filter), hash-partitioned shuffles with reduceByKey and
// joins, broadcast variables, and per-phase time/memory accounting.
//
// Two engine modes mirror the paper's comparison:
//   * kBaseline — the unmodified system: records live as managed-heap
//     objects; every shuffle serializes with the Kryo-like HeapSerializer on
//     the map side and deserializes on the reduce side; the GC pays for all
//     data objects.
//   * kGerenuk  — the transformed system: records live as inlined native
//     bytes; every stage's SER is compiled (SER analyzer + Algorithm 1) and
//     speculatively executed over the buffers; shuffles are byte copies in
//     the same format; input regions are freed wholesale after each task.
//
// Gerenuk-mode stages fan their per-partition tasks out to a TaskScheduler
// worker pool (each worker owns an isolated executor context); baseline
// stages run serially on the engine heap, which is single-mutator. Output
// bytes and abort/commit counts are identical for every worker count — see
// the threading model in src/exec/task_scheduler.h.
#ifndef SRC_DATAFLOW_SPARK_H_
#define SRC_DATAFLOW_SPARK_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dataflow/dataset.h"
#include "src/dataflow/engine_config.h"
#include "src/exec/plan_cache.h"
#include "src/exec/ser_executor.h"
#include "src/exec/task_scheduler.h"
#include "src/serde/heap_serializer.h"
#include "src/shuffle/shuffle_service.h"

namespace gerenuk {

// Deprecated migration shim: the mini-Spark takes the shared EngineConfig
// directly; out-of-tree callers spelling `SparkConfig` get one clean
// deprecation warning and a rename.
using SparkConfig [[deprecated("SparkConfig is EngineConfig; use EngineConfig")]] = EngineConfig;

// A driver-built value shipped to every task (e.g. KMeans' current centers).
struct BroadcastVar {
  const Klass* klass = nullptr;
  ObjRef heap = kNullRef;          // kBaseline representation
  NativePartition native;          // kGerenuk representation (single record)
};

class SparkEngine {
 public:
  explicit SparkEngine(const EngineConfig& config);
  ~SparkEngine();

  Heap& heap() { return *heap_; }
  WellKnown& wk() { return *wk_; }
  EngineMode mode() const { return config_.execution.mode; }
  int num_partitions() const { return config_.execution.num_partitions; }
  int num_workers() const { return scheduler_->num_workers(); }

  // §3.1 annotation: top-level data types must be registered before any
  // stage touching them is compiled.
  void RegisterDataType(const Klass* klass);
  const DataStructAnalyzer& layouts() const { return layouts_; }

  // Builds a source dataset. `make` returns a rooted heap object per index
  // (the engine roots it during conversion); records are stored per the
  // engine mode. Call ResetMetrics() afterwards to exclude generation cost.
  DatasetPtr Source(const Klass* klass, int64_t count,
                    const std::function<ObjRef(int64_t, RootScope&)>& make);

  BroadcastVar MakeBroadcast(ObjRef obj, const Klass* klass);

  // A fused narrow stage (no shuffle).
  DatasetPtr RunStage(const DatasetPtr& input, const SerProgram& udfs,
                      const std::vector<NarrowOp>& ops, const BroadcastVar* broadcast = nullptr);

  // Narrow pre-ops, shuffle by key, then pairwise reduction per key.
  DatasetPtr ReduceByKey(const DatasetPtr& input, const SerProgram& udfs,
                         const std::vector<NarrowOp>& pre_ops, const KeySpec& key,
                         const Function* reduce_fn, const BroadcastVar* broadcast = nullptr);

  // Inner hash join: shuffle both sides by key, combine matching pairs.
  DatasetPtr JoinByKey(const DatasetPtr& left, const KeySpec& left_key, const DatasetPtr& right,
                       const KeySpec& right_key, const SerProgram& udfs,
                       const Function* combine_fn, const Klass* out_klass);

  // Driver-side materialization as heap objects (rooted in `scope`).
  std::vector<size_t> CollectToHeap(const DatasetPtr& dataset, RootScope& scope);
  int64_t Count(const DatasetPtr& dataset) const { return dataset->TotalRecords(); }

  const EngineStats& stats() const { return stats_; }
  int64_t peak_memory_bytes() const { return memory_.peak_bytes(); }
  void ResetMetrics();

  // The engine's event timeline (null when config.trace is off). Complete —
  // merged and histogram-fed — after any stage barrier; export it with
  // TraceExporter.
  Trace* trace() { return trace_.get(); }

  // Unified metrics snapshot: every EngineStats counter (completeness pinned
  // by the field-count static_assert in metrics.h), per-phase times, plan-op
  // profile totals, and — when tracing — the trace's derived histograms
  // (task duration, GC pause, abort-to-slow-path-commit) and drop counter.
  MetricsRegistry metrics() const;

  // Fig. 10(b) hook: plans forced aborts for the next `n` submitted Gerenuk
  // tasks (late in each task, so nearly all speculative work is wasted).
  void ForceAborts(int n) {
    for (int i = 0; i < n; ++i) {
      fault_plan_.AbortTask(task_seq_ + i);
    }
  }
  // Direct fault-plan access for targeting specific (task, record) pairs;
  // ordinals are assigned in submission order starting at next_task_ordinal().
  FaultPlan& fault_plan() { return fault_plan_; }
  int64_t next_task_ordinal() const { return task_seq_; }

  // Driver-side speculation governor (consulted at stage submission, fed at
  // stage barriers; see src/exec/fault.h). Flip counts and direct-slow-path
  // task counts surface through stats().
  const SpeculationGovernor& governor() const { return governor_; }

  // Service-mode hooks. Both must be installed while the engine is idle
  // (between jobs): the compiler and the stage barriers read them without
  // synchronization.
  void set_plan_cache(PlanCache* cache) { plan_cache_ = cache; }
  PlanCache* plan_cache() const { return plan_cache_; }
  void set_speculation_oracle(SpeculationOracle oracle) { oracle_ = std::move(oracle); }
  // Job-level cooperative cancellation (see TaskScheduler::set_cancel_check):
  // probed at every task-attempt boundary of every stage this engine runs.
  void set_cancel_check(CancelCheck check) { scheduler_->set_cancel_check(std::move(check)); }

 private:
  using CompiledStage = StagePrograms;
  using CompiledFn = CompiledFunction;

  // The plan-compiler knobs derived from EngineConfig::execution; must agree
  // with VecSignatureOf so the cache key always matches the compiled plan.
  PlanOptions plan_options() const {
    PlanOptions options;
    options.vectorize = config_.execution.vectorize;
    options.vector_batch_size = config_.execution.vector_batch_size;
    options.vec_bail_after_strips = config_.execution.vec_bail_after_strips;
    return options;
  }

  // Builds the stage body: deserialize -> narrow chain -> serialize.
  CompiledStage CompileStage(const Klass* in_klass, const SerProgram& udfs,
                             const std::vector<NarrowOp>& ops, bool has_broadcast,
                             const Klass* broadcast_klass);
  CompiledFn CompileFn(const SerProgram& udfs, const Function* fn);

  using ShuffleKeyValue = ShuffleKey;
  using ShuffleKeyHash = ShuffleKey::Hash;

  // Mode-specific stage executors.
  DatasetPtr RunNarrowBaseline(const DatasetPtr& input, const CompiledStage& stage,
                               const BroadcastVar* broadcast);
  DatasetPtr RunNarrowGerenuk(const DatasetPtr& input, const CompiledStage& stage,
                              const BroadcastVar* broadcast);
  // Shuffle write: per-map-task, per-bucket outputs — the analogue of map
  // output files, so an aborted task discards only its own contribution.
  // Outer index: map task; inner index: reduce bucket.
  void ShuffleBaseline(const DatasetPtr& input, const CompiledStage& stage, const KeySpec& key,
                       const CompiledFn& key_fn, const BroadcastVar* broadcast,
                       std::vector<std::vector<ByteBuffer>>* buckets,
                       std::vector<std::vector<int64_t>>* bucket_counts);
  void ShuffleGerenuk(const DatasetPtr& input, const CompiledStage& stage, const KeySpec& key,
                      const CompiledFn& key_fn, const BroadcastVar* broadcast,
                      std::vector<std::vector<NativePartition>>* buckets);

  // Reserves `n` driver-assigned task ordinals (for the fault plan) and
  // returns the first. Every stage claims its ordinals before submission, in
  // both modes, so a plan means the same tasks for any worker count.
  int64_t ClaimTaskOrdinals(int n) {
    int64_t base = task_seq_;
    task_seq_ += n;
    return base;
  }
  const FaultPlan* ActiveFaults() const { return fault_plan_.empty() ? nullptr : &fault_plan_; }
  // Shuffle-service knobs for this engine's reduce/join exchanges.
  ShuffleConfig shuffle_config() {
    ShuffleConfig sc;
    sc.spill_threshold_bytes = config_.shuffle.shuffle_spill_threshold_bytes;
    sc.compress = config_.shuffle.shuffle_compress;
    sc.fetch_budget_bytes = config_.shuffle.shuffle_fetch_budget_bytes;
    sc.spill_dir = config_.shuffle.shuffle_spill_dir;
    sc.tracker = &memory_;
    return sc;
  }
  // Driver-side sink for stage spans (null when tracing is off).
  TraceSink* DriverSink() const { return trace_ != nullptr ? trace_->driver() : nullptr; }
  // Shared TaskIo tracing/profiling wiring for every Gerenuk-mode stage.
  void BindObservability(TaskIo* io, WorkerContext& ctx) const {
    io->trace = ctx.trace_sink();
    if (config_.observability.plan_profile_stride > 0) {
      io->plan_profile = &ctx.stats().plan_ops;
      io->plan_profile_stride = config_.observability.plan_profile_stride;
    }
  }

  EngineConfig config_;
  std::unique_ptr<Heap> heap_;
  std::unique_ptr<WellKnown> wk_;
  ExprPool pool_;
  DataStructAnalyzer layouts_{pool_};
  HeapSerializer kryo_;
  InlineSerializer inline_serde_;
  MemoryTracker memory_;
  std::unique_ptr<TaskScheduler> scheduler_;
  std::unique_ptr<Trace> trace_;  // allocated only when config.trace
  EngineStats stats_;
  FaultPlan fault_plan_;
  SpeculationGovernor governor_;
  SpeculationOracle oracle_;
  PlanCache* plan_cache_ = nullptr;  // not owned; null outside service mode
  int64_t task_seq_ = 0;

  // Stage-submission speculation decision: the engine governor AND the
  // per-tenant-per-SER oracle (when installed) both have veto power.
  bool ShouldSpeculateFor(uint64_t signature_hash) const {
    if (!governor_.ShouldSpeculate()) {
      return false;
    }
    if (oracle_.should_speculate != nullptr && !oracle_.should_speculate(signature_hash)) {
      return false;
    }
    return true;
  }

  // Barrier-side governor feed: counts one completed speculative stage and
  // records a flip in stats_. Driver-only, so decisions never depend on the
  // in-flight schedule.
  void ObserveSpeculation(uint64_t signature_hash, int tasks, int aborts_delta) {
    if (governor_.Observe(tasks, aborts_delta)) {
      stats_.governor_flips += 1;
    }
    if (oracle_.observe != nullptr) {
      oracle_.observe(signature_hash, tasks, aborts_delta);
    }
  }
};

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_SPARK_H_
