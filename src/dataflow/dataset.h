// Mode-dependent partitioned collections shared by the engines.
//
// kBaseline keeps records as managed-heap objects (each partition vector is
// a GC root, like an RDD cached in deserialized form); kGerenuk keeps them
// as native inline partitions (the Gerenuk buffer format).
#ifndef SRC_DATAFLOW_DATASET_H_
#define SRC_DATAFLOW_DATASET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/dataflow/stage_compiler.h"
#include "src/exec/interpreter.h"
#include "src/nativebuf/native_buffer.h"
#include "src/runtime/roots.h"
#include "src/serde/inline_serializer.h"

namespace gerenuk {

class Dataset {
 public:
  Dataset(Heap& heap, const Klass* klass, int num_partitions, MemoryTracker* tracker);
  ~Dataset();
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  const Klass* klass;
  std::vector<std::vector<ObjRef>> heap_parts;   // kBaseline (GC-rooted)
  std::vector<NativePartition> native_parts;     // kGerenuk
  int64_t TotalRecords() const;
  int64_t TotalBytes() const;  // native only

 private:
  Heap& heap_;
};

using DatasetPtr = std::shared_ptr<Dataset>;

// Builds a source dataset: `make` returns a heap object per index (rooted in
// the passed scope during conversion); the record is stored per `mode`.
DatasetPtr MakeSourceDataset(Heap& heap, InlineSerializer& serde, MemoryTracker* tracker,
                             EngineMode mode, const Klass* klass, int num_partitions,
                             int64_t count,
                             const std::function<ObjRef(int64_t, RootScope&)>& make);

// Key extraction for shuffles: an IR function T -> i64, or T -> String when
// is_string is set.
struct KeySpec {
  const Function* fn = nullptr;
  bool is_string = false;
};

struct ShuffleKey {
  bool is_string = false;
  int64_t i = 0;
  std::string s;

  bool operator==(const ShuffleKey& o) const {
    return is_string == o.is_string && i == o.i && s == o.s;
  }
  bool operator<(const ShuffleKey& o) const { return is_string ? s < o.s : i < o.i; }

  struct Hash {
    size_t operator()(const ShuffleKey& k) const {
      return k.is_string
                 ? std::hash<std::string>()(k.s)
                 : std::hash<uint64_t>()(static_cast<uint64_t>(k.i) * 0x9e3779b97f4a7c15ULL);
    }
  };
};

// Evaluates `key_fn` on `record` inside `runner` (which must be able to
// execute the function: matching path, self-contained body).
ShuffleKey EvalShuffleKey(SerRunner& runner, const Function* key_fn, Value record,
                          bool is_string);

// Scratch-reusing variant: overwrites `*key` in place instead of building a
// fresh ShuffleKey. Returns true when the reuse avoided a string-buffer
// allocation (the scratch capacity already covered the key's bytes) — the
// engines count these into EngineStats::key_allocs_saved. Integer keys
// involve no allocation and return false.
bool EvalShuffleKeyInto(SerRunner& runner, const Function* key_fn, Value record,
                        bool is_string, ShuffleKey* key);

}  // namespace gerenuk

#endif  // SRC_DATAFLOW_DATASET_H_
