#include "src/dataflow/spark.h"

#include "src/analysis/ser_analyzer.h"
#include "src/ir/builder.h"
#include "src/runtime/roots.h"
#include "src/shuffle/shuffle_service.h"
#include "src/transform/transformer.h"

namespace gerenuk {

namespace {

// Process-mode wire codec for a stage whose task `t` commits one sealed
// partition into `(*parts)[t]`. Encode ships the partition's shuffle-wire
// bytes (seal included); decode lands them in the driver's slot. Parse
// failures are reclassified as the fail-closed TaskError{kCorruptInput}.
StageCodec PartitionVectorCodec(std::vector<NativePartition>* parts, MemoryTracker* memory) {
  StageCodec codec;
  codec.encode = [parts](int task, ByteBuffer* out) {
    (*parts)[static_cast<size_t>(task)].SerializeTo(*out);
  };
  codec.decode = [parts, memory](int task, ByteReader* in) {
    try {
      (*parts)[static_cast<size_t>(task)] = NativePartition::Parse(*in, memory);
    } catch (const WireFormatError& e) {
      throw TaskError(TaskErrorKind::kCorruptInput, task, 1, 0,
                      std::string("executor result failed wire parse: ") + e.what());
    }
  };
  return codec;
}

// Same, for shuffle-map stages: task `t` commits one sealed partition per
// reduce bucket into `(*buckets)[t]`, concatenated on the wire in bucket
// order (each partition's trailer delimits it).
StageCodec BucketRowCodec(std::vector<std::vector<NativePartition>>* buckets,
                          MemoryTracker* memory) {
  StageCodec codec;
  codec.encode = [buckets](int task, ByteBuffer* out) {
    for (NativePartition& bucket : (*buckets)[static_cast<size_t>(task)]) {
      bucket.SerializeTo(*out);
    }
  };
  codec.decode = [buckets, memory](int task, ByteReader* in) {
    std::vector<NativePartition>& row = (*buckets)[static_cast<size_t>(task)];
    try {
      for (size_t b = 0; b < row.size(); ++b) {
        row[b] = NativePartition::Parse(*in, memory);
      }
    } catch (const WireFormatError& e) {
      throw TaskError(TaskErrorKind::kCorruptInput, task, 1, 0,
                      std::string("executor shuffle output failed wire parse: ") + e.what());
    }
  };
  return codec;
}

// Task-local lazy broadcast materialization for the slow path: the broadcast
// lives as native bytes (shareable across workers) and as an object in the
// *engine* heap — which a worker-heap interpreter must not touch. The first
// slow-path record deserializes the bytes into the executing worker's heap
// and roots the result for the rest of the task; every record then re-reads
// the root slot, since a worker-heap GC may have moved the object.
class TaskBroadcast {
 public:
  TaskBroadcast(WorkerContext& ctx, const BroadcastVar* bc) : ctx_(ctx), bc_(bc) {}
  ~TaskBroadcast() {
    if (rooted_) {
      ctx_.heap().RemoveRootSlot(&ref_);
    }
  }
  TaskBroadcast(const TaskBroadcast&) = delete;
  TaskBroadcast& operator=(const TaskBroadcast&) = delete;

  void Bind(TaskIo* io) {
    if (bc_ == nullptr) {
      return;
    }
    io->fast_args.push_back(Value::Addr(bc_->native.record_addr(0)));
    io->slow_args.push_back(Value::None());  // placeholder; filled per record
    io->refresh_slow_args = [this](std::vector<Value>& args) {
      if (!rooted_) {
        ScopedPhase phase(ctx_.stats().times, Phase::kDeserialize);
        ByteReader reader(reinterpret_cast<const uint8_t*>(bc_->native.record_addr(0)),
                          bc_->native.record_size(0));
        ref_ = ctx_.serde().ReadBody(bc_->klass, reader);
        ctx_.heap().AddRootSlot(&ref_);
        rooted_ = true;
      }
      args[0] = Value::Ref(static_cast<int64_t>(ref_));
    };
  }

 private:
  WorkerContext& ctx_;
  const BroadcastVar* bc_;
  ObjRef ref_ = kNullRef;
  bool rooted_ = false;
};

// One validation gate for the whole config, crossed before any member that
// consumes a knob (the heap, the scheduler) is built.
static const EngineConfig& ValidatedEngineConfig(const EngineConfig& config) {
  const std::string error = config.Validate();
  GERENUK_CHECK(error.empty()) << "invalid EngineConfig: " << error;
  return config;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

SparkEngine::SparkEngine(const EngineConfig& config)
    : config_(ValidatedEngineConfig(config)),
      heap_(std::make_unique<Heap>(HeapConfig{config.execution.heap_bytes, config.execution.gc, 0.55, 0.35, 2})),
      wk_(std::make_unique<WellKnown>(*heap_)),
      kryo_(*heap_),
      inline_serde_(*heap_),
      governor_(config.fault.governor_abort_threshold, config.fault.governor_min_tasks) {
  heap_->set_memory_tracker(&memory_);
  // Worker heaps share the engine's class registry, so Klass pointers in the
  // driver-compiled programs are valid in every executor context. The engine
  // WellKnown is built first (above), so the worker contexts find its
  // classes already defined.
  // Process executors only make sense for Gerenuk-mode stages (baseline
  // stages mutate the shared engine heap and always run serially in the
  // driver).
  const bool process_mode =
      config.execution.process_executors && config.execution.mode == EngineMode::kGerenuk;
  scheduler_ = std::make_unique<TaskScheduler>(
      config.execution.num_workers, HeapConfig{config.execution.heap_bytes, config.execution.gc, 0.55, 0.35, 2},
      &heap_->klasses(), &memory_, process_mode);
  scheduler_->set_retry_policy(config.retry_policy());
  ExecutorSupervisorConfig supervision;
  supervision.heartbeat_ms = config.execution.executor_heartbeat_ms;
  supervision.heartbeat_timeout_ms = config.execution.executor_heartbeat_timeout_ms;
  supervision.max_executor_relaunches = config.execution.max_executor_relaunches;
  scheduler_->set_supervisor_config(supervision);
  if (config.observability.trace) {
    trace_ = std::make_unique<Trace>(scheduler_->num_workers(), config.observability.trace_buffer_events);
    scheduler_->set_trace(trace_.get());
    // Driver-side GC (the engine heap: sources, baseline stages, collect)
    // reports into the driver's direct sink.
    heap_->set_trace_sink(trace_->driver());
  }
}

SparkEngine::~SparkEngine() = default;

void SparkEngine::RegisterDataType(const Klass* klass) {
  std::string error;
  GERENUK_CHECK(layouts_.AnalyzeTopLevel(klass, &error)) << error;
  if (!klass->is_array()) {
    // The collection type T[] (§3.1's third annotation) joins the hierarchy
    // so flatMap results are recognized as data collections.
    const Klass* array = heap_->klasses().DefineArray(FieldKind::kRef, klass);
    GERENUK_CHECK(layouts_.AnalyzeTopLevel(array, &error)) << error;
  }
}

DatasetPtr SparkEngine::Source(const Klass* klass, int64_t count,
                               const std::function<ObjRef(int64_t, RootScope&)>& make) {
  DatasetPtr ds = MakeSourceDataset(*heap_, inline_serde_, &memory_, config_.execution.mode, klass,
                                    config_.execution.num_partitions, count, make);
  // Committed data carries an integrity seal from the moment it exists;
  // consumers verify it at stage input (DESIGN.md "Fault model & recovery").
  for (NativePartition& part : ds->native_parts) {
    part.Seal();
  }
  return ds;
}

BroadcastVar SparkEngine::MakeBroadcast(ObjRef obj, const Klass* klass) {
  BroadcastVar bc;
  bc.klass = klass;
  bc.heap = obj;  // the caller keeps `obj` rooted while the broadcast lives
  ByteBuffer record;
  inline_serde_.WriteRecord(obj, klass, record);
  bc.native = NativePartition(&memory_);
  bc.native.AppendRecord(record.data() + 4, static_cast<uint32_t>(record.size() - 4));
  return bc;
}

void SparkEngine::ResetMetrics() {
  stats_ = EngineStats{};
  memory_.ResetPeak();
  heap_->ResetStats();
}

MetricsRegistry SparkEngine::metrics() const {
  MetricsRegistry registry;
  stats_.ExportTo(&registry);
  if (trace_ != nullptr) {
    registry.Merge(trace_->metrics());
  }
  return registry;
}

// ---------------------------------------------------------------------------
// Stage compilation
// ---------------------------------------------------------------------------

SparkEngine::CompiledStage SparkEngine::CompileStage(const Klass* in_klass,
                                                     const SerProgram& udfs,
                                                     const std::vector<NarrowOp>& ops,
                                                     bool has_broadcast,
                                                     const Klass* broadcast_klass) {
  // The cache is only consulted when the plan compiler is on: an entry
  // always carries (transformed, plan) as a unit, so a mixed-configuration
  // engine never receives a plan it was told not to use.
  PlanCache* cache = config_.execution.use_plan_compiler ? plan_cache_ : nullptr;
  CompiledStage stage = CompileNarrowStage(config_.execution.mode, layouts_, in_klass, udfs,
                                           ops, has_broadcast, broadcast_klass,
                                           &stats_.transform, heap_->klasses(), cache,
                                           VecSignatureOf(config_.execution));
  if (config_.execution.mode == EngineMode::kGerenuk) {
    stats_.stages_compiled += 1;
    if (stage.cache_hit) {
      stats_.plan_cache_hits += 1;
    } else if (config_.execution.use_plan_compiler && stage.transformed != nullptr) {
      // The transformer may have grown the offset-expression pool; re-fold
      // before lowering so every now-constant expression becomes an immediate.
      pool_.FoldConstants();
      stage.plan = CompilePlan(*stage.transformed, layouts_, plan_options());
      stats_.plans_compiled += 1;
      if (cache != nullptr) {
        cache->Insert(stage.signature, {stage.transformed, stage.plan, nullptr, 0});
      }
    }
  }
  return stage;
}

SparkEngine::CompiledFn SparkEngine::CompileFn(const SerProgram& udfs, const Function* fn) {
  PlanCache* cache = config_.execution.use_plan_compiler ? plan_cache_ : nullptr;
  CompiledFn compiled = CompileSingleFunction(config_.execution.mode, layouts_, udfs, fn,
                                              &stats_.transform, cache,
                                              VecSignatureOf(config_.execution));
  if (compiled.cache_hit) {
    stats_.plan_cache_hits += 1;
  } else if (config_.execution.mode == EngineMode::kGerenuk &&
             config_.execution.use_plan_compiler && compiled.transformed != nullptr) {
    pool_.FoldConstants();
    compiled.plan = CompilePlan(*compiled.transformed, layouts_, plan_options());
    stats_.plans_compiled += 1;
    if (cache != nullptr) {
      cache->Insert(compiled.signature,
                    {compiled.transformed, compiled.plan, compiled.fast_fn, 0});
    }
  }
  return compiled;
}

// ---------------------------------------------------------------------------
// Narrow stages
// ---------------------------------------------------------------------------

DatasetPtr SparkEngine::RunStage(const DatasetPtr& input, const SerProgram& udfs,
                                 const std::vector<NarrowOp>& ops,
                                 const BroadcastVar* broadcast) {
  CompiledStage stage = CompileStage(input->klass, udfs, ops, broadcast != nullptr,
                                     broadcast != nullptr ? broadcast->klass : nullptr);
  return config_.execution.mode == EngineMode::kBaseline ? RunNarrowBaseline(input, stage, broadcast)
                                               : RunNarrowGerenuk(input, stage, broadcast);
}

DatasetPtr SparkEngine::RunNarrowBaseline(const DatasetPtr& input, const CompiledStage& stage,
                                          const BroadcastVar* broadcast) {
  int parts = config_.execution.num_partitions;
  auto out = std::make_shared<Dataset>(*heap_, stage.out_klass, parts, &memory_);
  ClaimTaskOrdinals(parts);
  std::vector<Value> args;
  if (broadcast != nullptr) {
    args.push_back(Value::Ref(static_cast<int64_t>(broadcast->heap)));
  }
  TraceSpan stage_span(DriverSink(), TraceEventType::kStage, "narrow");
  scheduler_->RunStageSerial(
      parts,
      [&](WorkerContext& ctx, int p) {
        ctx.stats().tasks_run += 1;
        heap_->set_phase_times(&ctx.stats().times);
        Interpreter interp(*stage.original, *heap_, *wk_, &layouts_, nullptr);
        size_t cursor = 0;
        const std::vector<ObjRef>& in_part = input->heap_parts[static_cast<size_t>(p)];
        std::vector<ObjRef>& out_part = out->heap_parts[static_cast<size_t>(p)];
        RecordChannel channel;
        channel.next_heap_record = [&in_part, &cursor]() { return in_part[cursor]; };
        channel.emit_heap_record = [&out_part](ObjRef ref, const Klass*) {
          out_part.push_back(ref);
        };
        interp.set_channel(&channel);
        {
          ComputePhaseScope compute(ctx.stats().times);
          for (cursor = 0; cursor < in_part.size(); ++cursor) {
            interp.CallFunction(stage.original->body, args);
          }
        }
        heap_->set_phase_times(nullptr);
      },
      &stats_);
  return out;
}

DatasetPtr SparkEngine::RunNarrowGerenuk(const DatasetPtr& input, const CompiledStage& stage,
                                         const BroadcastVar* broadcast) {
  int parts = config_.execution.num_partitions;
  auto out = std::make_shared<Dataset>(*heap_, stage.out_klass, parts, &memory_);
  const int64_t base = ClaimTaskOrdinals(parts);
  const FaultPlan* faults = ActiveFaults();
  const bool speculate = ShouldSpeculateFor(stage.signature.hash);
  const int aborts_before = stats_.aborts;
  const StageCodec codec = PartitionVectorCodec(&out->native_parts, &memory_);
  TraceSpan stage_span(DriverSink(), TraceEventType::kStage, "narrow");
  scheduler_->RunStage(
      parts,
      [&](WorkerContext& ctx, int p) {
        ctx.stats().tasks_run += 1;
        SerExecutor exec(ctx.heap(), ctx.wk(), layouts_, *stage.original, *stage.transformed);
        NativePartition& out_part = out->native_parts[static_cast<size_t>(p)];
        TaskIo io;
        io.input = &input->native_parts[static_cast<size_t>(p)];
        io.stage_label = "narrow";
        io.partition = p;
        io.task_ordinal = base + p;
        io.faults = faults;
        io.attempt = ctx.attempt();
        io.cancelled = [&ctx] { return ctx.cancelled(); };
        BindObservability(&io, ctx);
        TaskBroadcast bc(ctx, broadcast);
        bc.Bind(&io);
        io.plan = stage.plan.get();
        io.emit_native = [&out_part](int64_t addr, const Klass* klass, SerRunner&,
                                     BuilderStore& builders) {
          builders.Render(addr, klass, out_part);
        };
        io.emit_heap = [&ctx, &out_part](ObjRef ref, const Klass* klass, SerRunner&) {
          TraceSpan ser_span(ctx.trace_sink(), TraceEventType::kSerialize, "serialize");
          ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
          ByteBuffer body;
          ctx.serde().WriteRecord(ref, klass, body);
          out_part.AppendRecord(body.data() + 4, static_cast<uint32_t>(body.size() - 4));
        };
        io.on_abort = [&out_part] { out_part.Release(); };
        if (speculate) {
          SpecOutcome outcome = exec.RunTaskIo(io, ctx.stats().times);
          if (!outcome.committed_fast_path) {
            ctx.stats().aborts += outcome.aborts;
          } else {
            ctx.stats().fast_path_commits += 1;
          }
        } else {
          exec.RunDirectSlowPath(io, ctx.stats().times);
          ctx.stats().slow_path_direct += 1;
        }
        out_part.Seal();
      },
      &stats_, &codec);
  if (speculate) {
    ObserveSpeculation(stage.signature.hash, parts, stats_.aborts - aborts_before);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shuffles
// ---------------------------------------------------------------------------

void SparkEngine::ShuffleBaseline(const DatasetPtr& input, const CompiledStage& stage,
                                  const KeySpec& key, const CompiledFn& key_fn,
                                  const BroadcastVar* broadcast,
                                  std::vector<std::vector<ByteBuffer>>* buckets,
                                  std::vector<std::vector<int64_t>>* bucket_counts) {
  int parts = config_.execution.num_partitions;
  buckets->clear();
  bucket_counts->clear();
  for (int p = 0; p < parts; ++p) {
    buckets->emplace_back(static_cast<size_t>(parts));
    bucket_counts->emplace_back(static_cast<size_t>(parts), 0);
  }
  ClaimTaskOrdinals(parts);
  std::vector<Value> args;
  if (broadcast != nullptr) {
    args.push_back(Value::Ref(static_cast<int64_t>(broadcast->heap)));
  }
  ShuffleKeyHash hasher;
  TraceSpan stage_span(DriverSink(), TraceEventType::kStage, "shuffle");
  scheduler_->RunStageSerial(
      parts,
      [&](WorkerContext& ctx, int p) {
        ctx.stats().tasks_run += 1;
        int64_t shuffle_before = ctx.stats().shuffle_bytes;
        heap_->set_phase_times(&ctx.stats().times);
        std::vector<ByteBuffer>& task_buckets = (*buckets)[static_cast<size_t>(p)];
        std::vector<int64_t>& task_counts = (*bucket_counts)[static_cast<size_t>(p)];
        Interpreter interp(*stage.original, *heap_, *wk_, &layouts_, nullptr);
        Interpreter key_interp(*key_fn.original, *heap_, *wk_, &layouts_, nullptr);
        size_t cursor = 0;
        const std::vector<ObjRef>& in_part = input->heap_parts[static_cast<size_t>(p)];
        RecordChannel channel;
        channel.next_heap_record = [&in_part, &cursor]() { return in_part[cursor]; };
        channel.emit_heap_record = [this, &ctx, &key_interp, &key_fn, &key, &task_buckets,
                                    &task_counts, &hasher](ObjRef ref, const Klass* klass) {
          ShuffleKeyValue k = EvalShuffleKey(key_interp, key_fn.orig_fn,
                                             Value::Ref(static_cast<int64_t>(ref)), key.is_string);
          size_t b = hasher(k) % task_buckets.size();
          ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
          size_t before = task_buckets[b].size();
          kryo_.Serialize(ref, klass, task_buckets[b]);
          ctx.stats().shuffle_bytes += static_cast<int64_t>(task_buckets[b].size() - before);
          task_counts[b] += 1;
        };
        interp.set_channel(&channel);
        {
          ComputePhaseScope compute(ctx.stats().times);
          for (cursor = 0; cursor < in_part.size(); ++cursor) {
            interp.CallFunction(stage.original->body, args);
          }
        }
        heap_->set_phase_times(nullptr);
        if (ctx.trace_sink() != nullptr) {
          ctx.trace_sink()->Counter(TraceEventType::kShuffleBytes, "shuffle_bytes",
                                    ctx.stats().shuffle_bytes - shuffle_before);
        }
      },
      &stats_);
}

void SparkEngine::ShuffleGerenuk(const DatasetPtr& input, const CompiledStage& stage,
                                 const KeySpec& key, const CompiledFn& key_fn,
                                 const BroadcastVar* broadcast,
                                 std::vector<std::vector<NativePartition>>* buckets) {
  int parts = config_.execution.num_partitions;
  // Per-map-task, per-bucket outputs — the analogue of map output files, so
  // an aborted task discards only its own contribution. All slots are
  // constructed here, before the fan-out, so tasks never mutate the vectors.
  buckets->clear();
  for (int p = 0; p < parts; ++p) {
    std::vector<NativePartition>& task_buckets = buckets->emplace_back();
    task_buckets.reserve(static_cast<size_t>(parts));
    for (int i = 0; i < parts; ++i) {
      task_buckets.emplace_back(&memory_);
    }
  }
  const int64_t base = ClaimTaskOrdinals(parts);
  const FaultPlan* faults = ActiveFaults();
  const bool speculate = ShouldSpeculateFor(stage.signature.hash);
  const int aborts_before = stats_.aborts;
  ShuffleKeyHash hasher;
  const StageCodec codec = BucketRowCodec(buckets, &memory_);
  TraceSpan stage_span(DriverSink(), TraceEventType::kStage, "shuffle");
  scheduler_->RunStage(
      parts,
      [&](WorkerContext& ctx, int p) {
        ctx.stats().tasks_run += 1;
        int64_t shuffle_before = ctx.stats().shuffle_bytes;
        std::vector<NativePartition>& task_buckets = (*buckets)[static_cast<size_t>(p)];
        SerExecutor exec(ctx.heap(), ctx.wk(), layouts_, *stage.original, *stage.transformed);
        TaskIo io;
        io.input = &input->native_parts[static_cast<size_t>(p)];
        io.stage_label = "shuffle";
        io.partition = p;
        io.task_ordinal = base + p;
        io.faults = faults;
        io.attempt = ctx.attempt();
        io.cancelled = [&ctx] { return ctx.cancelled(); };
        BindObservability(&io, ctx);
        TaskBroadcast bc(ctx, broadcast);
        bc.Bind(&io);
        io.plan = stage.plan.get();
        if (key_fn.plan != nullptr) {
          io.extra_plans.push_back(key_fn.plan.get());
        }
        // Per-task scratch key: the string buffer survives across records,
        // so steady-state extractions allocate nothing.
        auto scratch = std::make_shared<ShuffleKeyValue>();
        io.emit_native = [&ctx, &key_fn, &key, &task_buckets, &hasher, scratch](
                             int64_t addr, const Klass* klass, SerRunner& runner,
                             BuilderStore& builders) {
          // Key extraction runs the transformed key function directly over
          // the emitted record (committed bytes or builder).
          if (EvalShuffleKeyInto(runner, key_fn.fast_fn, Value::Addr(addr), key.is_string,
                                 scratch.get())) {
            ctx.stats().key_allocs_saved += 1;
          }
          size_t b = hasher(*scratch) % task_buckets.size();
          int64_t before = task_buckets[b].bytes_used();
          builders.Render(addr, klass, task_buckets[b]);
          ctx.stats().shuffle_bytes += task_buckets[b].bytes_used() - before;
        };
        io.emit_heap = [&ctx, &key_fn, &key, &task_buckets, &hasher, scratch](
                           ObjRef ref, const Klass* klass, SerRunner& runner) {
          if (EvalShuffleKeyInto(runner, key_fn.orig_fn, Value::Ref(static_cast<int64_t>(ref)),
                                 key.is_string, scratch.get())) {
            ctx.stats().key_allocs_saved += 1;
          }
          const ShuffleKeyValue& k = *scratch;
          size_t b = hasher(k) % task_buckets.size();
          TraceSpan ser_span(ctx.trace_sink(), TraceEventType::kSerialize, "serialize");
          ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
          ByteBuffer body;
          ctx.serde().WriteRecord(ref, klass, body);
          task_buckets[b].AppendRecord(body.data() + 4, static_cast<uint32_t>(body.size() - 4));
          ctx.stats().shuffle_bytes += static_cast<int64_t>(body.size());
        };
        io.on_abort = [&task_buckets] {
          for (NativePartition& bucket : task_buckets) {
            bucket.Release();
          }
        };
        if (speculate) {
          SpecOutcome outcome = exec.RunTaskIo(io, ctx.stats().times);
          if (!outcome.committed_fast_path) {
            ctx.stats().aborts += outcome.aborts;
          } else {
            ctx.stats().fast_path_commits += 1;
          }
        } else {
          exec.RunDirectSlowPath(io, ctx.stats().times);
          ctx.stats().slow_path_direct += 1;
        }
        for (NativePartition& bucket : task_buckets) {
          bucket.Seal();
        }
        if (ctx.trace_sink() != nullptr) {
          ctx.trace_sink()->Counter(TraceEventType::kShuffleBytes, "shuffle_bytes",
                                    ctx.stats().shuffle_bytes - shuffle_before);
        }
      },
      &stats_, &codec);
  if (speculate) {
    ObserveSpeculation(stage.signature.hash, parts, stats_.aborts - aborts_before);
  }
}

// ---------------------------------------------------------------------------
// ReduceByKey
// ---------------------------------------------------------------------------

DatasetPtr SparkEngine::ReduceByKey(const DatasetPtr& input, const SerProgram& udfs,
                                    const std::vector<NarrowOp>& pre_ops, const KeySpec& key,
                                    const Function* reduce_fn, const BroadcastVar* broadcast) {
  CompiledStage stage = CompileStage(input->klass, udfs, pre_ops, broadcast != nullptr,
                                     broadcast != nullptr ? broadcast->klass : nullptr);
  CompiledFn key_c = CompileFn(udfs, key.fn);
  CompiledFn reduce_c = CompileFn(udfs, reduce_fn);
  const Klass* rec_klass = stage.out_klass;
  auto out = std::make_shared<Dataset>(*heap_, rec_klass, config_.execution.num_partitions, &memory_);

  if (config_.execution.mode == EngineMode::kBaseline) {
    std::vector<std::vector<ByteBuffer>> buckets;
    std::vector<std::vector<int64_t>> counts;
    ShuffleBaseline(input, stage, key, key_c, broadcast, &buckets, &counts);

    ClaimTaskOrdinals(config_.execution.num_partitions);
    TraceSpan stage_span(DriverSink(), TraceEventType::kStage, "reduce");
    scheduler_->RunStageSerial(
        config_.execution.num_partitions,
        [&](WorkerContext& ctx, int p) {
          ctx.stats().tasks_run += 1;
          heap_->set_phase_times(&ctx.stats().times);
          Interpreter reduce_interp(*reduce_c.original, *heap_, *wk_, &layouts_, nullptr);
          Interpreter key_interp(*key_c.original, *heap_, *wk_, &layouts_, nullptr);
          ComputePhaseScope compute(ctx.stats().times);
          // Aggregation map: key -> index into the (GC-rooted) value vector.
          std::unordered_map<ShuffleKeyValue, size_t, ShuffleKeyHash> agg;
          std::vector<ObjRef> values;
          heap_->AddRootVector(&values);
          for (size_t task = 0; task < buckets.size(); ++task) {
            ByteReader reader(buckets[task][static_cast<size_t>(p)].bytes());
            for (int64_t r = 0; r < counts[task][static_cast<size_t>(p)]; ++r) {
              ObjRef rec;
              {
                ScopedPhase phase(ctx.stats().times, Phase::kDeserialize);
                rec = kryo_.Deserialize(rec_klass, reader);
              }
              RootScope scope(*heap_);
              size_t rec_slot = scope.Push(rec);
              ShuffleKeyValue k = EvalShuffleKey(
                  key_interp, key_c.orig_fn, Value::Ref(static_cast<int64_t>(rec)), key.is_string);
              auto it = agg.find(k);
              if (it == agg.end()) {
                agg.emplace(std::move(k), values.size());
                values.push_back(scope.Get(rec_slot));
              } else {
                Value merged = reduce_interp.CallFunction(
                    reduce_c.orig_fn, {Value::Ref(static_cast<int64_t>(values[it->second])),
                                       Value::Ref(static_cast<int64_t>(scope.Get(rec_slot)))});
                values[it->second] = static_cast<ObjRef>(merged.i);
              }
            }
          }
          out->heap_parts[static_cast<size_t>(p)] = values;
          heap_->RemoveRootVector(&values);
          heap_->set_phase_times(nullptr);
        },
        &stats_);
    return out;
  }

  // Gerenuk mode.
  std::vector<std::vector<NativePartition>> buckets;
  ShuffleGerenuk(input, stage, key, key_c, broadcast, &buckets);

  // Hand the map outputs to the shuffle service at the barrier, in
  // task-major order (the determinism contract for spill decisions).
  // Resident unless the spill threshold says otherwise; reduce tasks fetch
  // spilled blocks on demand under the credit gate. The run is built before
  // the reduce stage submits, so process-mode executor children inherit the
  // resident blocks and the spill-file descriptor through fork.
  ShuffleRun shuffle(config_.execution.num_partitions, config_.execution.num_partitions, shuffle_config());
  for (int t = 0; t < config_.execution.num_partitions; ++t) {
    for (int b = 0; b < config_.execution.num_partitions; ++b) {
      shuffle.Add(t, b, std::move(buckets[static_cast<size_t>(t)][static_cast<size_t>(b)]),
                  &stats_, DriverSink());
    }
  }

  ClaimTaskOrdinals(config_.execution.num_partitions);
  const bool speculate = ShouldSpeculateFor(reduce_c.signature.hash);
  const int aborts_before = stats_.aborts;
  const StageCodec codec = PartitionVectorCodec(&out->native_parts, &memory_);
  TraceSpan stage_span(DriverSink(), TraceEventType::kStage, "reduce");
  scheduler_->RunStage(
      config_.execution.num_partitions,
      [&](WorkerContext& ctx, int p) {
        ctx.stats().tasks_run += 1;
        ctx.heap().set_phase_times(&ctx.stats().times);
        NativePartition& out_part = out->native_parts[static_cast<size_t>(p)];
        auto for_each_record = [&shuffle, &ctx, p](const std::function<void(int64_t, uint32_t)>& fn) {
          shuffle.ForEachRecordInBucket(p, &ctx.stats(), ctx.trace_sink(), fn);
        };
        TraceSink* sink = ctx.trace_sink();
        bool fast_ok = speculate;
        const int64_t fast_start = (speculate && sink != nullptr) ? sink->Now() : 0;
        if (speculate) try {
          BuilderStore builders(layouts_);
          std::unique_ptr<SerRunner> reduce_runner = MakeFastRunner(
              reduce_c.plan.get(), *reduce_c.transformed, ctx.heap(), ctx.wk(), &layouts_,
              &builders, {key_c.plan.get()});
          SerRunner& reduce_interp = *reduce_runner;
          ComputePhaseScope compute(ctx.stats().times);
          struct Entry {
            int64_t addr;
            int64_t size;
          };
          std::unordered_map<ShuffleKeyValue, Entry, ShuffleKeyHash> agg;
          // Reduction results are rendered into a scratch region, compacted
          // when garbage (superseded intermediates) dominates — region-based
          // management in miniature.
          NativePartition scratch(&memory_);
          int64_t live_bytes = 0;
          ShuffleKeyValue scratch_key;
          for_each_record([&](int64_t addr, uint32_t size) {
            if (EvalShuffleKeyInto(reduce_interp, key_c.fast_fn, Value::Addr(addr),
                                   key.is_string, &scratch_key)) {
              ctx.stats().key_allocs_saved += 1;
            }
            auto it = agg.find(scratch_key);
            if (it == agg.end()) {
              agg.emplace(scratch_key, Entry{addr, static_cast<int64_t>(size)});
              live_bytes += size;
            } else {
              Value merged = reduce_interp.CallFunction(
                  reduce_c.fast_fn, {Value::Addr(it->second.addr), Value::Addr(addr)});
              ByteBuffer body;
              builders.RenderBody(merged.i, rec_klass, body);
              builders.Clear();
              live_bytes -= it->second.size;
              it->second.addr =
                  scratch.AppendRecord(body.data(), static_cast<uint32_t>(body.size()));
              it->second.size = static_cast<int64_t>(body.size());
              live_bytes += it->second.size;
              if (scratch.bytes_used() > (8 << 20) && scratch.bytes_used() > 2 * live_bytes) {
                NativePartition compacted(&memory_);
                for (auto& [kk, entry] : agg) {
                  entry.addr =
                      compacted.AppendRecord(reinterpret_cast<const uint8_t*>(entry.addr),
                                             static_cast<uint32_t>(entry.size));
                }
                scratch = std::move(compacted);
              }
            }
          });
          for (const auto& [kk, entry] : agg) {
            out_part.AppendRecord(reinterpret_cast<const uint8_t*>(entry.addr),
                                  static_cast<uint32_t>(entry.size));
          }
          ctx.stats().fast_path_commits += 1;
          if (sink != nullptr) {
            sink->Span(TraceEventType::kFastPath, "fast_path", fast_start);
          }
        } catch (const SerAbort& abort) {
          // Instant first, span second: the abort timestamp nests inside the
          // fast-path span, matching the SerExecutor emission order.
          if (sink != nullptr) {
            sink->Instant(TraceEventType::kAbort, "abort",
                          static_cast<int64_t>(abort.reason));
            sink->Span(TraceEventType::kFastPath, "fast_path", fast_start);
          }
          fast_ok = false;
        }
        if (!fast_ok) {
          // Reduce-side abort (or governor-degraded routing): run this
          // bucket on the slow path inside the same worker — sibling reduce
          // tasks keep running.
          TraceSpan slow_span(sink, TraceEventType::kSlowPath, "slow_path",
                              speculate ? 0 : 1);
          if (speculate) {
            ctx.stats().aborts += 1;
            out_part.Release();
          } else {
            ctx.stats().slow_path_direct += 1;
          }
          Interpreter reduce_interp(*reduce_c.original, ctx.heap(), ctx.wk(), &layouts_, nullptr);
          Interpreter key_interp(*key_c.original, ctx.heap(), ctx.wk(), &layouts_, nullptr);
          ComputePhaseScope compute(ctx.stats().times);
          std::unordered_map<ShuffleKeyValue, size_t, ShuffleKeyHash> agg;
          std::vector<ObjRef> values;
          ctx.heap().AddRootVector(&values);
          for_each_record([&](int64_t addr, uint32_t size) {
            ObjRef rec;
            {
              ScopedPhase phase(ctx.stats().times, Phase::kDeserialize);
              ByteReader reader(reinterpret_cast<const uint8_t*>(addr), size);
              rec = ctx.serde().ReadBody(rec_klass, reader);
            }
            RootScope scope(ctx.heap());
            size_t rec_slot = scope.Push(rec);
            ShuffleKeyValue k = EvalShuffleKey(key_interp, key_c.orig_fn,
                                               Value::Ref(static_cast<int64_t>(rec)),
                                               key.is_string);
            auto it = agg.find(k);
            if (it == agg.end()) {
              agg.emplace(std::move(k), values.size());
              values.push_back(scope.Get(rec_slot));
            } else {
              Value merged = reduce_interp.CallFunction(
                  reduce_c.orig_fn, {Value::Ref(static_cast<int64_t>(values[it->second])),
                                     Value::Ref(static_cast<int64_t>(scope.Get(rec_slot)))});
              values[it->second] = static_cast<ObjRef>(merged.i);
            }
          });
          for (ObjRef ref : values) {
            ScopedPhase phase(ctx.stats().times, Phase::kSerialize);
            ByteBuffer body;
            ctx.serde().WriteRecord(ref, rec_klass, body);
            out_part.AppendRecord(body.data() + 4, static_cast<uint32_t>(body.size() - 4));
          }
          ctx.heap().RemoveRootVector(&values);
        }
        out_part.Seal();
        ctx.heap().set_phase_times(nullptr);
      },
      &stats_, &codec);
  if (speculate) {
    ObserveSpeculation(reduce_c.signature.hash, config_.execution.num_partitions,
                       stats_.aborts - aborts_before);
  }
  return out;
}

// ---------------------------------------------------------------------------
// JoinByKey
// ---------------------------------------------------------------------------

DatasetPtr SparkEngine::JoinByKey(const DatasetPtr& left, const KeySpec& left_key,
                                  const DatasetPtr& right, const KeySpec& right_key,
                                  const SerProgram& udfs, const Function* combine_fn,
                                  const Klass* out_klass) {
  CompiledStage left_stage = CompileStage(left->klass, udfs, {}, false, nullptr);
  CompiledStage right_stage = CompileStage(right->klass, udfs, {}, false, nullptr);
  CompiledFn lkey = CompileFn(udfs, left_key.fn);
  CompiledFn rkey = CompileFn(udfs, right_key.fn);
  CompiledFn combine = CompileFn(udfs, combine_fn);
  auto out = std::make_shared<Dataset>(*heap_, out_klass, config_.execution.num_partitions, &memory_);

  if (config_.execution.mode == EngineMode::kBaseline) {
    std::vector<std::vector<ByteBuffer>> lb;
    std::vector<std::vector<ByteBuffer>> rb;
    std::vector<std::vector<int64_t>> lc;
    std::vector<std::vector<int64_t>> rc;
    ShuffleBaseline(left, left_stage, left_key, lkey, nullptr, &lb, &lc);
    ShuffleBaseline(right, right_stage, right_key, rkey, nullptr, &rb, &rc);

    ClaimTaskOrdinals(config_.execution.num_partitions);
    TraceSpan stage_span(DriverSink(), TraceEventType::kStage, "join");
    scheduler_->RunStageSerial(
        config_.execution.num_partitions,
        [&](WorkerContext& ctx, int p) {
          ctx.stats().tasks_run += 1;
          heap_->set_phase_times(&ctx.stats().times);
          Interpreter key_interp_l(*lkey.original, *heap_, *wk_, &layouts_, nullptr);
          Interpreter key_interp_r(*rkey.original, *heap_, *wk_, &layouts_, nullptr);
          Interpreter combine_interp(*combine.original, *heap_, *wk_, &layouts_, nullptr);
          ComputePhaseScope compute(ctx.stats().times);
          std::unordered_map<ShuffleKeyValue, std::vector<size_t>, ShuffleKeyHash> table;
          std::vector<ObjRef> lvalues;
          heap_->AddRootVector(&lvalues);
          for (size_t task = 0; task < lb.size(); ++task) {
            ByteReader lreader(lb[task][static_cast<size_t>(p)].bytes());
            for (int64_t r = 0; r < lc[task][static_cast<size_t>(p)]; ++r) {
              ObjRef rec;
              {
                ScopedPhase phase(ctx.stats().times, Phase::kDeserialize);
                rec = kryo_.Deserialize(left->klass, lreader);
              }
              lvalues.push_back(rec);
              ShuffleKeyValue k =
                  EvalShuffleKey(key_interp_l, lkey.orig_fn,
                                 Value::Ref(static_cast<int64_t>(rec)), left_key.is_string);
              table[k].push_back(lvalues.size() - 1);
            }
          }
          std::vector<ObjRef>& out_part = out->heap_parts[static_cast<size_t>(p)];
          for (size_t task = 0; task < rb.size(); ++task) {
            ByteReader rreader(rb[task][static_cast<size_t>(p)].bytes());
            for (int64_t r = 0; r < rc[task][static_cast<size_t>(p)]; ++r) {
              ObjRef rec;
              {
                ScopedPhase phase(ctx.stats().times, Phase::kDeserialize);
                rec = kryo_.Deserialize(right->klass, rreader);
              }
              RootScope scope(*heap_);
              size_t rec_slot = scope.Push(rec);
              ShuffleKeyValue k =
                  EvalShuffleKey(key_interp_r, rkey.orig_fn,
                                 Value::Ref(static_cast<int64_t>(rec)), right_key.is_string);
              auto it = table.find(k);
              if (it == table.end()) {
                continue;
              }
              for (size_t li : it->second) {
                Value combined = combine_interp.CallFunction(
                    combine.orig_fn, {Value::Ref(static_cast<int64_t>(lvalues[li])),
                                      Value::Ref(static_cast<int64_t>(scope.Get(rec_slot)))});
                out_part.push_back(static_cast<ObjRef>(combined.i));
              }
            }
          }
          heap_->RemoveRootVector(&lvalues);
          heap_->set_phase_times(nullptr);
        },
        &stats_);
    return out;
  }

  // Gerenuk mode.
  std::vector<std::vector<NativePartition>> lb;
  std::vector<std::vector<NativePartition>> rb;
  ShuffleGerenuk(left, left_stage, left_key, lkey, nullptr, &lb);
  ShuffleGerenuk(right, right_stage, right_key, rkey, nullptr, &rb);

  // Both sides go through the shuffle service. The build (left) side is
  // held open for the whole probe — its record addresses back the hash
  // table — which is exactly the hold-and-wait shape the credit gate's
  // grace timeout exists for.
  ShuffleRun lrun(config_.execution.num_partitions, config_.execution.num_partitions, shuffle_config());
  ShuffleRun rrun(config_.execution.num_partitions, config_.execution.num_partitions, shuffle_config());
  for (int t = 0; t < config_.execution.num_partitions; ++t) {
    for (int b = 0; b < config_.execution.num_partitions; ++b) {
      lrun.Add(t, b, std::move(lb[static_cast<size_t>(t)][static_cast<size_t>(b)]), &stats_,
               DriverSink());
      rrun.Add(t, b, std::move(rb[static_cast<size_t>(t)][static_cast<size_t>(b)]), &stats_,
               DriverSink());
    }
  }

  ClaimTaskOrdinals(config_.execution.num_partitions);
  const StageCodec codec = PartitionVectorCodec(&out->native_parts, &memory_);
  TraceSpan stage_span(DriverSink(), TraceEventType::kStage, "join");
  scheduler_->RunStage(
      config_.execution.num_partitions,
      [&](WorkerContext& ctx, int p) {
        ctx.stats().tasks_run += 1;
        NativePartition& out_part = out->native_parts[static_cast<size_t>(p)];
        TraceSpan fast_span(ctx.trace_sink(), TraceEventType::kFastPath, "fast_path");
        BuilderStore builders(layouts_);
        std::unique_ptr<SerRunner> runner =
            MakeFastRunner(combine.plan.get(), *combine.transformed, ctx.heap(), ctx.wk(),
                           &layouts_, &builders, {lkey.plan.get(), rkey.plan.get()});
        SerRunner& interp = *runner;
        ComputePhaseScope compute(ctx.stats().times);
        std::unordered_map<ShuffleKeyValue, std::vector<int64_t>, ShuffleKeyHash> table;
        ShuffleKeyValue scratch_key;
        BucketReader build_side = lrun.OpenBucket(p, &ctx.stats(), ctx.trace_sink());
        build_side.ForEachRecord([&](int64_t addr, uint32_t /*size*/) {
          if (EvalShuffleKeyInto(interp, lkey.fast_fn, Value::Addr(addr), left_key.is_string,
                                 &scratch_key)) {
            ctx.stats().key_allocs_saved += 1;
          }
          table[scratch_key].push_back(addr);
        });
        rrun.ForEachRecordInBucket(
            p, &ctx.stats(), ctx.trace_sink(), [&](int64_t addr, uint32_t /*size*/) {
              if (EvalShuffleKeyInto(interp, rkey.fast_fn, Value::Addr(addr),
                                     right_key.is_string, &scratch_key)) {
                ctx.stats().key_allocs_saved += 1;
              }
              auto it = table.find(scratch_key);
              if (it == table.end()) {
                return;
              }
              for (int64_t laddr : it->second) {
                Value combined = interp.CallFunction(combine.fast_fn,
                                                     {Value::Addr(laddr), Value::Addr(addr)});
                builders.Render(combined.i, out_klass, out_part);
                builders.Clear();
              }
            });
        ctx.stats().fast_path_commits += 1;
        out_part.Seal();
      },
      &stats_, &codec);
  return out;
}

// ---------------------------------------------------------------------------
// Driver-side materialization
// ---------------------------------------------------------------------------

std::vector<size_t> SparkEngine::CollectToHeap(const DatasetPtr& dataset, RootScope& scope) {
  std::vector<size_t> slots;
  if (config_.execution.mode == EngineMode::kBaseline) {
    for (const auto& part : dataset->heap_parts) {
      for (ObjRef ref : part) {
        slots.push_back(scope.Push(ref));
      }
    }
    return slots;
  }
  for (const auto& part : dataset->native_parts) {
    for (size_t r = 0; r < part.record_count(); ++r) {
      ByteReader reader(reinterpret_cast<const uint8_t*>(part.record_addr(r)),
                        part.record_size(r));
      slots.push_back(scope.Push(inline_serde_.ReadBody(dataset->klass, reader)));
    }
  }
  return slots;
}

}  // namespace gerenuk
