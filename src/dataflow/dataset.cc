#include "src/dataflow/dataset.h"

namespace gerenuk {

Dataset::Dataset(Heap& heap, const Klass* klass_in, int num_partitions, MemoryTracker* tracker)
    : klass(klass_in), heap_(heap) {
  heap_parts.resize(static_cast<size_t>(num_partitions));
  for (auto& part : heap_parts) {
    heap_.AddRootVector(&part);
  }
  native_parts.reserve(static_cast<size_t>(num_partitions));
  for (int i = 0; i < num_partitions; ++i) {
    native_parts.emplace_back(tracker);
  }
}

Dataset::~Dataset() {
  for (auto& part : heap_parts) {
    heap_.RemoveRootVector(&part);
  }
}

int64_t Dataset::TotalRecords() const {
  int64_t total = 0;
  for (const auto& part : heap_parts) {
    total += static_cast<int64_t>(part.size());
  }
  for (const auto& part : native_parts) {
    total += static_cast<int64_t>(part.record_count());
  }
  return total;
}

int64_t Dataset::TotalBytes() const {
  int64_t total = 0;
  for (const auto& part : native_parts) {
    total += part.bytes_used();
  }
  return total;
}

DatasetPtr MakeSourceDataset(Heap& heap, InlineSerializer& serde, MemoryTracker* tracker,
                             EngineMode mode, const Klass* klass, int num_partitions,
                             int64_t count,
                             const std::function<ObjRef(int64_t, RootScope&)>& make) {
  auto dataset = std::make_shared<Dataset>(heap, klass, num_partitions, tracker);
  for (int64_t i = 0; i < count; ++i) {
    RootScope scope(heap);
    size_t slot = scope.Push(make(i, scope));
    int p = static_cast<int>(i % num_partitions);
    if (mode == EngineMode::kBaseline) {
      dataset->heap_parts[static_cast<size_t>(p)].push_back(scope.Get(slot));
    } else {
      ByteBuffer record;
      serde.WriteRecord(scope.Get(slot), klass, record);
      dataset->native_parts[static_cast<size_t>(p)].AppendRecord(
          record.data() + 4, static_cast<uint32_t>(record.size() - 4));
    }
  }
  return dataset;
}

ShuffleKey EvalShuffleKey(SerRunner& runner, const Function* key_fn, Value record,
                          bool is_string) {
  ShuffleKey key;
  EvalShuffleKeyInto(runner, key_fn, record, is_string, &key);
  return key;
}

bool EvalShuffleKeyInto(SerRunner& runner, const Function* key_fn, Value record,
                        bool is_string, ShuffleKey* key) {
  key->is_string = is_string;
  Value v = runner.CallFunction(key_fn, {record});
  if (is_string) {
    size_t capacity_before = key->s.capacity();
    runner.ReadStringBytes(v, &key->s);
    return key->s.capacity() == capacity_before;
  }
  key->s.clear();
  key->i = v.tag == ValueTag::kF64 ? static_cast<int64_t>(v.d) : v.i;
  return false;
}

}  // namespace gerenuk
