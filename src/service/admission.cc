#include "src/service/admission.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace gerenuk {

namespace {

// Clamp for the byte-correction EWMA: one pathological job (an exploding
// join, an empty output) must not swing the tenant's future charges by more
// than an order of magnitude in either direction.
constexpr double kMinCorrection = 0.25;
constexpr double kMaxCorrection = 8.0;
constexpr double kCorrectionAlpha = 0.2;

}  // namespace

int64_t AdmissionController::ChargeForLocked(const TenantQueue& queue, const JobSpec& spec) const {
  if (spec.input_bytes <= 0) {
    return 0;  // unknown size: bypasses byte accounting entirely
  }
  const double charge = static_cast<double>(spec.input_bytes) * queue.byte_correction;
  return std::max<int64_t>(1, static_cast<int64_t>(charge));
}

AdmitResult AdmissionController::Submit(QueuedJob job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      stats_.rejected += 1;
      stats_.rejected_shutdown += 1;
      return AdmitResult::kRejectedShutdown;
    }
    if (depth_ >= max_depth_) {
      stats_.rejected += 1;
      stats_.rejected_global_depth += 1;
      return AdmitResult::kRejectedGlobalDepth;
    }
    TenantQueue& queue = tenants_[job.tenant];
    if (static_cast<int>(queue.jobs.size()) >= max_depth_per_tenant_) {
      stats_.rejected += 1;
      stats_.rejected_tenant_depth += 1;
      return AdmitResult::kRejectedTenantDepth;
    }
    const int64_t charge = ChargeForLocked(queue, job.spec);
    if (charge > 0) {
      const bool over_global =
          max_inflight_bytes_ >= 0 && stats_.inflight_bytes + charge > max_inflight_bytes_;
      const bool over_tenant = max_inflight_bytes_per_tenant_ >= 0 &&
                               queue.inflight_bytes + charge > max_inflight_bytes_per_tenant_;
      if (over_global || over_tenant) {
        stats_.rejected += 1;
        stats_.rejected_bytes += 1;
        return AdmitResult::kRejectedBytes;
      }
    }
    job.byte_charge = charge;
    queue.inflight_bytes += charge;
    stats_.inflight_bytes += charge;
    if (queue.jobs.empty()) {
      ring_.push_back(job.tenant);
    }
    // Priority insert within this tenant only: before the first strictly
    // lower-priority job, so equal priorities stay FIFO.
    auto pos = std::find_if(queue.jobs.begin(), queue.jobs.end(), [&job](const QueuedJob& other) {
      return other.spec.priority < job.spec.priority;
    });
    queue.jobs.insert(pos, std::move(job));
    depth_ += 1;
    stats_.submitted += 1;
  }
  cv_.notify_one();
  return AdmitResult::kAdmitted;
}

bool AdmissionController::Next(QueuedJob* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return depth_ > 0 || shutdown_; });
  if (depth_ == 0) {
    return false;  // shut down and drained
  }
  // DRR scan. Terminates: every full rotation of the ring adds `quantum_`
  // to each resident tenant's deficit, so some head job's cost is
  // eventually covered.
  for (;;) {
    const std::string tenant = ring_.front();
    TenantQueue& queue = tenants_[tenant];
    if (!queue.granted) {
      queue.deficit += quantum_;
      queue.granted = true;
    }
    if (queue.deficit < queue.jobs.front().spec.cost) {
      // Deficit exhausted for this visit: rotate, banking the remainder.
      queue.granted = false;
      ring_.pop_front();
      ring_.push_back(tenant);
      continue;
    }
    *out = std::move(queue.jobs.front());
    queue.jobs.pop_front();
    queue.deficit -= out->spec.cost;
    depth_ -= 1;
    stats_.dispatched += 1;
    if (queue.jobs.empty()) {
      queue.deficit = 0;  // an idle tenant must not bank credit
      queue.granted = false;
      ring_.pop_front();
    }
    return true;
  }
}

bool AdmissionController::Cancel(const internal::JobState* state, QueuedJob* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto tenant_it = tenants_.find(state->tenant);
  if (tenant_it == tenants_.end()) {
    return false;
  }
  TenantQueue& queue = tenant_it->second;
  auto job_it = std::find_if(queue.jobs.begin(), queue.jobs.end(),
                             [state](const QueuedJob& job) { return job.state.get() == state; });
  if (job_it == queue.jobs.end()) {
    return false;  // already dispatched (or never admitted): cooperative path
  }
  queue.inflight_bytes -= job_it->byte_charge;
  stats_.inflight_bytes -= job_it->byte_charge;
  *out = std::move(*job_it);
  queue.jobs.erase(job_it);
  depth_ -= 1;
  stats_.cancelled_queued += 1;
  if (queue.jobs.empty()) {
    queue.deficit = 0;
    queue.granted = false;
    auto ring_it = std::find(ring_.begin(), ring_.end(), state->tenant);
    if (ring_it != ring_.end()) {
      ring_.erase(ring_it);
    }
  }
  return true;
}

void AdmissionController::Release(const std::string& tenant, int64_t byte_charge) {
  if (byte_charge <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) {
    it->second.inflight_bytes -= byte_charge;
  }
  stats_.inflight_bytes -= byte_charge;
}

void AdmissionController::ObserveCompletion(const std::string& tenant, int64_t input_bytes,
                                            int64_t output_bytes) {
  if (input_bytes <= 0) {
    return;  // no estimate was charged, so there is nothing to correct
  }
  const double sample =
      static_cast<double>(input_bytes + std::max<int64_t>(0, output_bytes)) /
      static_cast<double>(input_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  TenantQueue& queue = tenants_[tenant];
  queue.byte_correction =
      queue.byte_correction * (1.0 - kCorrectionAlpha) + kCorrectionAlpha * sample;
  queue.byte_correction = std::min(kMaxCorrection, std::max(kMinCorrection, queue.byte_correction));
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int AdmissionController::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

// Defined here (not in job.h) because a synchronous queued-job cancel must
// reach into the admission controller, and job.h only forward-declares it.
bool JobHandle::cancel() {
  if (state_ == nullptr) {
    return false;
  }
  // Set the cooperative flag first: if the job is dispatched between our
  // queue removal attempt and now, the dispatcher or scheduler still sees it.
  state_->cancel_requested.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (internal::IsTerminal(state_->result.status)) {
      return false;
    }
  }
  std::shared_ptr<AdmissionController> admission = state_->admission.lock();
  if (admission == nullptr) {
    return true;  // service gone; the flag alone is the best we can do
  }
  QueuedJob job;
  if (admission->Cancel(state_.get(), &job)) {
    // Removed before dispatch: resolve the handle right here, synchronously.
    const int64_t queue_wait_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             job.enqueued)
            .count();
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!internal::IsTerminal(state_->result.status)) {
      state_->result.status = JobStatus::kCancelled;
      state_->result.error = "cancelled before dispatch";
      state_->result.queue_wait_ns = queue_wait_ns;
      state_->cv.notify_all();
    }
  }
  return true;
}

}  // namespace gerenuk
