#include "src/service/admission.h"

#include <utility>

namespace gerenuk {

bool AdmissionController::Submit(QueuedJob job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || depth_ >= max_depth_) {
      stats_.rejected += 1;
      return false;
    }
    TenantQueue& queue = tenants_[job.tenant];
    if (static_cast<int>(queue.jobs.size()) >= max_depth_per_tenant_) {
      stats_.rejected += 1;
      return false;
    }
    if (queue.jobs.empty()) {
      ring_.push_back(job.tenant);
    }
    queue.jobs.push_back(std::move(job));
    depth_ += 1;
    stats_.submitted += 1;
  }
  cv_.notify_one();
  return true;
}

bool AdmissionController::Next(QueuedJob* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return depth_ > 0 || shutdown_; });
  if (depth_ == 0) {
    return false;  // shut down and drained
  }
  // DRR scan. Terminates: every full rotation of the ring adds `quantum_`
  // to each resident tenant's deficit, so some head job's cost is
  // eventually covered.
  for (;;) {
    const std::string tenant = ring_.front();
    TenantQueue& queue = tenants_[tenant];
    if (!queue.granted) {
      queue.deficit += quantum_;
      queue.granted = true;
    }
    if (queue.deficit < queue.jobs.front().spec.cost) {
      // Deficit exhausted for this visit: rotate, banking the remainder.
      queue.granted = false;
      ring_.pop_front();
      ring_.push_back(tenant);
      continue;
    }
    *out = std::move(queue.jobs.front());
    queue.jobs.pop_front();
    queue.deficit -= out->spec.cost;
    depth_ -= 1;
    stats_.dispatched += 1;
    if (queue.jobs.empty()) {
      queue.deficit = 0;  // an idle tenant must not bank credit
      queue.granted = false;
      ring_.pop_front();
    }
    return true;
  }
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int AdmissionController::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

}  // namespace gerenuk
