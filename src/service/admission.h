// Admission control for the multi-tenant engine service: bounded queue
// depth (global and per tenant) with deficit-round-robin (DRR) fair-share
// dispatch across tenants.
//
// Submit never blocks: a job that would exceed either depth bound is
// rejected synchronously (the caller resolves its handle to kRejected).
// Next blocks dispatcher threads until a job is dispatchable; after
// Shutdown it drains the backlog and then returns false.
//
// DRR (Shreedhar & Varghese): tenants with pending jobs sit in a round-robin
// ring; a tenant at the head earns `quantum` deficit per visit and dispatches
// jobs while its deficit covers the head job's cost. Costs are abstract
// units (JobSpec::cost); with equal costs and a saturated queue every tenant
// completes within one quantum of its neighbors — the fairness-spread bound
// the service tests assert.
#ifndef SRC_SERVICE_ADMISSION_H_
#define SRC_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "src/service/job.h"

namespace gerenuk {

class AdmissionController {
 public:
  struct Stats {
    int64_t submitted = 0;   // accepted into the queue
    int64_t rejected = 0;    // refused at Submit (depth bound or shutdown)
    int64_t dispatched = 0;  // handed to a dispatcher via Next
  };

  AdmissionController(int max_queue_depth, int max_queue_depth_per_tenant, int64_t drr_quantum)
      : max_depth_(max_queue_depth),
        max_depth_per_tenant_(max_queue_depth_per_tenant),
        quantum_(drr_quantum) {}

  // Enqueues the job unless the global or per-tenant depth bound is hit or
  // the controller is shut down; returns false (job dropped) in those cases.
  bool Submit(QueuedJob job);

  // Blocks until a job is dispatchable and moves it into `*out`. Returns
  // false only when shut down AND drained — dispatcher threads exit on it.
  bool Next(QueuedJob* out);

  // Stops accepting new jobs; queued jobs still drain through Next.
  void Shutdown();

  Stats stats() const;
  int depth() const;

 private:
  struct TenantQueue {
    std::deque<QueuedJob> jobs;
    int64_t deficit = 0;  // earned DRR credit, reset when the queue empties
    // Whether the quantum for the current head-of-ring visit has been
    // granted. Without this a tenant parked at the head would earn a fresh
    // quantum on every Next() call and starve the ring behind it.
    bool granted = false;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const int max_depth_;
  const int max_depth_per_tenant_;
  const int64_t quantum_;
  // Tenant in ring_ <=> its queue is non-empty. Ring order is round-robin:
  // a tenant whose deficit cannot cover its head job rotates to the back.
  std::map<std::string, TenantQueue> tenants_;
  std::deque<std::string> ring_;
  int depth_ = 0;
  bool shutdown_ = false;
  Stats stats_;
};

}  // namespace gerenuk

#endif  // SRC_SERVICE_ADMISSION_H_
