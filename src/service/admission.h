// Admission control for the multi-tenant engine service: bounded queue
// depth (global and per tenant), in-flight byte quotas, and deficit-round-
// robin (DRR) fair-share dispatch across tenants.
//
// Submit never blocks: a job that would exceed a depth bound or byte budget
// is rejected synchronously with a typed AdmitResult (the caller resolves
// its handle to kRejected, naming the bound that fired). Next blocks
// dispatcher threads until a job is dispatchable; after Shutdown it drains
// the backlog and then returns false.
//
// DRR (Shreedhar & Varghese): tenants with pending jobs sit in a round-robin
// ring; a tenant at the head earns `quantum` deficit per visit and dispatches
// jobs while its deficit covers the head job's cost. Costs are abstract
// units (JobSpec::cost); with equal costs and a saturated queue every tenant
// completes within one quantum of its neighbors — the fairness-spread bound
// the service tests assert. Within ONE tenant's queue, higher JobSpec
// priority dispatches first (FIFO among equals); priority never crosses
// tenant boundaries, so it cannot defeat DRR fairness.
//
// Byte quotas: a job with input_bytes > 0 is charged
// input_bytes × tenant-correction at Submit, where the correction is an EWMA
// of observed (input + output) / input for that tenant's completed jobs
// (initially 1.0). The charge stays held until the service releases it at
// the job's terminal state, bounding the total bytes the service has
// admitted-but-not-finished, globally and per tenant.
#ifndef SRC_SERVICE_ADMISSION_H_
#define SRC_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "src/service/job.h"

namespace gerenuk {

// Why Submit admitted or refused a job. Every rejection reason has its own
// metrics counter and trace instant so capacity incidents are attributable.
enum class AdmitResult : uint8_t {
  kAdmitted,
  kRejectedTenantDepth,
  kRejectedGlobalDepth,
  kRejectedBytes,
  kRejectedShutdown,
};

inline const char* AdmitResultName(AdmitResult result) {
  switch (result) {
    case AdmitResult::kAdmitted:
      return "admitted";
    case AdmitResult::kRejectedTenantDepth:
      return "rejected_tenant_depth";
    case AdmitResult::kRejectedGlobalDepth:
      return "rejected_global_depth";
    case AdmitResult::kRejectedBytes:
      return "rejected_bytes";
    case AdmitResult::kRejectedShutdown:
      return "rejected_shutdown";
  }
  return "?";
}

class AdmissionController {
 public:
  struct Stats {
    int64_t submitted = 0;   // accepted into the queue
    int64_t rejected = 0;    // refused at Submit, any reason (sum of the below)
    int64_t dispatched = 0;  // handed to a dispatcher via Next
    int64_t rejected_tenant_depth = 0;
    int64_t rejected_global_depth = 0;
    int64_t rejected_bytes = 0;
    int64_t rejected_shutdown = 0;
    int64_t cancelled_queued = 0;  // removed by Cancel before dispatch
    int64_t inflight_bytes = 0;    // currently-held byte charges (point-in-time)
  };

  // Byte budgets of -1 disable byte-quota admission (the historical 3-arg
  // signature keeps compiling); 0 is a configuration error the service
  // rejects in Validate, not here.
  AdmissionController(int max_queue_depth, int max_queue_depth_per_tenant, int64_t drr_quantum,
                      int64_t max_inflight_bytes = -1, int64_t max_inflight_bytes_per_tenant = -1)
      : max_depth_(max_queue_depth),
        max_depth_per_tenant_(max_queue_depth_per_tenant),
        quantum_(drr_quantum),
        max_inflight_bytes_(max_inflight_bytes),
        max_inflight_bytes_per_tenant_(max_inflight_bytes_per_tenant) {}

  // Enqueues the job unless a depth bound or byte budget is hit or the
  // controller is shut down; the job is dropped on any non-kAdmitted result.
  // On admission the computed byte charge is recorded in the queued job and
  // held until Release.
  AdmitResult Submit(QueuedJob job);

  // Blocks until a job is dispatchable and moves it into `*out`. Returns
  // false only when shut down AND drained — dispatcher threads exit on it.
  bool Next(QueuedJob* out);

  // Synchronous cancel of a still-queued job: removes the job whose handle
  // state is `state` from its tenant queue, releases its byte charge, and
  // moves it into `*out`. Returns false if the job is not queued here (it
  // was already dispatched, cancelled, or never admitted) — the caller then
  // relies on the cooperative cancel flag instead.
  bool Cancel(const internal::JobState* state, QueuedJob* out);

  // Returns a dispatched job's byte charge to the budgets. Call exactly once
  // per dispatched job, at its terminal state (any status). No-op for
  // charge == 0.
  void Release(const std::string& tenant, int64_t byte_charge);

  // Feeds the tenant's byte-correction EWMA with one completed job's
  // observed sizes. Call for kSucceeded jobs only — failed bodies report
  // truncated outputs that would bias the estimate low.
  void ObserveCompletion(const std::string& tenant, int64_t input_bytes, int64_t output_bytes);

  // Stops accepting new jobs; queued jobs still drain through Next.
  void Shutdown();

  Stats stats() const;
  int depth() const;

 private:
  struct TenantQueue {
    std::deque<QueuedJob> jobs;
    int64_t deficit = 0;  // earned DRR credit, reset when the queue empties
    // Whether the quantum for the current head-of-ring visit has been
    // granted. Without this a tenant parked at the head would earn a fresh
    // quantum on every Next() call and starve the ring behind it.
    bool granted = false;
    // Byte-quota state (persists while the queue is empty: the correction
    // is a property of the tenant's workload, not of its backlog).
    int64_t inflight_bytes = 0;
    double byte_correction = 1.0;  // EWMA of observed (input+output)/input
  };

  int64_t ChargeForLocked(const TenantQueue& queue, const JobSpec& spec) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const int max_depth_;
  const int max_depth_per_tenant_;
  const int64_t quantum_;
  const int64_t max_inflight_bytes_;             // -1 = unlimited
  const int64_t max_inflight_bytes_per_tenant_;  // -1 = unlimited
  // Tenant in ring_ <=> its queue is non-empty. Ring order is round-robin:
  // a tenant whose deficit cannot cover its head job rotates to the back.
  std::map<std::string, TenantQueue> tenants_;
  std::deque<std::string> ring_;
  int depth_ = 0;
  bool shutdown_ = false;
  Stats stats_;
};

}  // namespace gerenuk

#endif  // SRC_SERVICE_ADMISSION_H_
