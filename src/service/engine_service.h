// Multi-tenant service mode: one EngineService owns a pool of engines and
// accepts jobs from many concurrent clients.
//
//   EngineService service(config);
//   Session alice = service.CreateSession("alice");
//   JobHandle h = alice.Submit({"wordcount", /*cost=*/1, body});
//   const JobResult& r = h.wait();   // r.output, r.stats, ...
//
// Architecture (see DESIGN.md "Service mode & plan cache"):
//   * Every engine slot pairs a SparkEngine and a HadoopEngine with their
//     own signature-keyed PlanCaches (cached artifacts hold engine-local
//     pointers, so caches never cross engines) and one dispatcher thread.
//   * Submissions flow through the AdmissionController: bounded global and
//     per-tenant queue depth, DRR fair-share dispatch across tenants.
//   * Per-job scoping: the dispatcher resets the slot's engine metrics (and
//     merged trace, when tracing) before each body runs, so JobResult.stats
//     is this job's delta; the deltas also accumulate into the tenant's
//     MetricsRegistry, surfaced namespaced ("tenant.<id>.*") by metrics().
//   * Speculation is governed per tenant per SER: the service keeps an
//     abort-rate history keyed by (tenant, signature hash) and installs a
//     SpeculationOracle on the slot's engines before each job. The pooled
//     engines run with their own engine-wide governor disabled — otherwise
//     one tenant's hostile inputs would flip speculation off for everyone.
#ifndef SRC_SERVICE_ENGINE_SERVICE_H_
#define SRC_SERVICE_ENGINE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/dataflow/spark.h"
#include "src/exec/plan_cache.h"
#include "src/mapreduce/hadoop.h"
#include "src/service/admission.h"
#include "src/service/job.h"

namespace gerenuk {

// Runs once per engine slot, before its dispatcher starts: register data
// types, build SER programs, and return a payload handed to every job that
// runs on the slot (EngineContext::setup).
using EngineSetup = std::function<std::shared_ptr<void>(EngineContext&)>;

struct ServiceConfig {
  // Template for every pooled engine. The service forces the engine-wide
  // speculation governor off on the pooled copies; `fault.governor_*` here
  // configures the per-tenant-per-SER oracle instead.
  EngineConfig engine;
  // Mini-Hadoop knobs of the pooled HadoopEngines (their `.engine` is the
  // template above).
  int hadoop_num_reducers = 2;
  size_t hadoop_sort_buffer_bytes = 1u << 20;
  // Pool size: engine slots, one dispatcher thread each.
  int num_engines = 2;
  // Admission bounds + DRR quantum (see admission.h).
  int max_queue_depth = 256;
  int max_queue_depth_per_tenant = 64;
  int64_t drr_quantum = 4;
  // Per-cache byte budget; each slot owns two caches (Spark + Hadoop).
  size_t plan_cache_budget_bytes = 64u << 20;
  // Optional per-slot setup (klasses + SER programs built once per engine).
  EngineSetup setup;

  // Returns "" when valid, otherwise a descriptive one-line error.
  std::string Validate() const;
};

class Session;

class EngineService {
 public:
  // Validates `config` (GERENUK_CHECK on error), builds the pool, runs
  // `config.setup` on every slot, and starts the dispatchers.
  explicit EngineService(const ServiceConfig& config);
  ~EngineService();  // Shutdown() + join

  EngineService(const EngineService&) = delete;
  EngineService& operator=(const EngineService&) = delete;

  // Sessions are lightweight per-tenant handles; any number may share a
  // tenant id. The service must outlive every session.
  Session CreateSession(const std::string& tenant);

  // Thread-safe; callable from any number of client threads. Returns a
  // handle already resolved to kRejected when admission refuses the job.
  JobHandle Submit(const std::string& tenant, JobSpec spec);

  // Stops admission, drains the queue, joins the dispatchers. Idempotent;
  // also run by the destructor.
  void Shutdown();

  // Admission counters + pool-wide plan-cache stats + every tenant's
  // registry namespaced under "tenant.<id>.".
  MetricsRegistry metrics() const;

  // Aggregated over every slot's two caches.
  PlanCache::Stats plan_cache_stats() const;
  AdmissionController::Stats admission_stats() const;

  // Snapshot of one tenant's scoped registry (empty if never seen).
  MetricsRegistry TenantMetrics(const std::string& tenant) const;
  int64_t TenantJobsCompleted(const std::string& tenant) const;

  int num_engines() const { return static_cast<int>(slots_.size()); }

 private:
  struct EngineSlot {
    explicit EngineSlot(size_t cache_budget_bytes)
        : spark_cache(cache_budget_bytes), hadoop_cache(cache_budget_bytes) {}
    PlanCache spark_cache;
    PlanCache hadoop_cache;
    std::unique_ptr<SparkEngine> spark;
    std::unique_ptr<HadoopEngine> hadoop;
    EngineContext ctx;
    std::thread dispatcher;
  };

  struct TenantState {
    MetricsRegistry registry;
    int64_t jobs_completed = 0;
    // signature hash -> (speculative tasks, aborts): the per-tenant-per-SER
    // generalization of SpeculationGovernor's engine-wide counters.
    std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> speculation;
  };

  void DispatchLoop(EngineSlot* slot);
  void RunOne(EngineSlot* slot, QueuedJob* job);
  void InstallOracle(EngineSlot* slot, const std::string& tenant);
  bool TenantShouldSpeculate(const std::string& tenant, uint64_t signature_hash) const;
  void TenantObserve(const std::string& tenant, uint64_t signature_hash, int tasks, int aborts);

  const ServiceConfig config_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<EngineSlot>> slots_;
  std::atomic<uint64_t> next_job_id_{1};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex tenants_mu_;
  std::map<std::string, TenantState> tenants_;
};

// Per-tenant handle: tags every Submit with the tenant id and scopes
// metrics reads to it. Copyable.
class Session {
 public:
  Session() = default;

  const std::string& tenant() const { return tenant_; }
  JobHandle Submit(JobSpec spec) { return service_->Submit(tenant_, std::move(spec)); }
  MetricsRegistry metrics() const { return service_->TenantMetrics(tenant_); }
  int64_t jobs_completed() const { return service_->TenantJobsCompleted(tenant_); }

 private:
  friend class EngineService;
  Session(EngineService* service, std::string tenant)
      : service_(service), tenant_(std::move(tenant)) {}

  EngineService* service_ = nullptr;
  std::string tenant_;
};

inline Session EngineService::CreateSession(const std::string& tenant) {
  return Session(this, tenant);
}

}  // namespace gerenuk

#endif  // SRC_SERVICE_ENGINE_SERVICE_H_
