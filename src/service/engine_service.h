// Multi-tenant service mode: one EngineService owns a pool of engines and
// accepts jobs from many concurrent clients.
//
//   EngineService service(config);
//   Session alice = service.CreateSession("alice");
//   JobHandle h = alice.Submit({"wordcount", /*cost=*/1, body});
//   const JobResult& r = h.wait();   // r.output, r.stats, ...
//
// Architecture (see DESIGN.md "Service mode & plan cache" and "Service
// resilience"):
//   * Every engine slot pairs a SparkEngine and a HadoopEngine with their
//     own signature-keyed PlanCaches (cached artifacts hold engine-local
//     pointers, so caches never cross engines) and one dispatcher thread.
//   * Submissions flow through the AdmissionController: bounded global and
//     per-tenant queue depth, in-flight byte quotas, DRR fair-share dispatch
//     across tenants, priority order within a tenant.
//   * Jobs carry optional deadlines and can be cancelled: expiry and
//     JobHandle::cancel() set a cooperative flag the scheduler probes at
//     every task-attempt boundary, so a running job unwinds at the next
//     boundary with its partial stats; a still-queued job resolves
//     synchronously without ever running.
//   * Per-slot circuit breaker: a decayed failure score per slot; past the
//     threshold the breaker opens — the slot's engines are torn down and
//     rebuilt (caches cleared, setup re-run) — then half-opens, closing
//     again after `breaker_probe_jobs` consecutive successes.
//   * Per-job scoping: the dispatcher resets the slot's engine metrics (and
//     merged trace, when tracing) before each body runs, so JobResult.stats
//     is this job's delta; the deltas also accumulate into the tenant's
//     MetricsRegistry, surfaced namespaced ("tenant.<id>.*") by metrics().
//   * Speculation is governed per tenant per SER: the service keeps an
//     abort-rate history keyed by (tenant, signature hash) and installs a
//     SpeculationOracle on the slot's engines before each job. The pooled
//     engines run with their own engine-wide governor disabled — otherwise
//     one tenant's hostile inputs would flip speculation off for everyone.
#ifndef SRC_SERVICE_ENGINE_SERVICE_H_
#define SRC_SERVICE_ENGINE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/dataflow/spark.h"
#include "src/exec/plan_cache.h"
#include "src/mapreduce/hadoop.h"
#include "src/service/admission.h"
#include "src/service/job.h"
#include "src/support/trace.h"

namespace gerenuk {

// Runs once per engine slot, before its dispatcher starts: register data
// types, build SER programs, and return a payload handed to every job that
// runs on the slot (EngineContext::setup). Also re-run after a circuit
// breaker rebuilds a slot's engines, so it must be safe to call again on a
// fresh engine pair.
using EngineSetup = std::function<std::shared_ptr<void>(EngineContext&)>;

struct ServiceConfig {
  // Template for every pooled engine. The service forces the engine-wide
  // speculation governor off on the pooled copies; `fault.governor_*` here
  // configures the per-tenant-per-SER oracle instead.
  EngineConfig engine;
  // Mini-Hadoop knobs of the pooled HadoopEngines (their `.engine` is the
  // template above).
  int hadoop_num_reducers = 2;
  size_t hadoop_sort_buffer_bytes = 1u << 20;
  // Pool size: engine slots, one dispatcher thread each.
  int num_engines = 2;
  // Admission bounds + DRR quantum (see admission.h).
  int max_queue_depth = 256;
  int max_queue_depth_per_tenant = 64;
  int64_t drr_quantum = 4;
  // In-flight byte budgets for byte-quota admission; -1 disables. 0 is
  // invalid (it would reject every sized job — name the budget instead).
  int64_t max_inflight_bytes = -1;
  int64_t max_inflight_bytes_per_tenant = -1;
  // Deadline applied to jobs whose spec leaves deadline_ms == 0; 0 = none.
  int64_t default_deadline_ms = 0;
  // Circuit breaker: a slot's decayed failure score reaching the threshold
  // opens its breaker (rebuild); after `breaker_open_ms` the breaker
  // half-opens, and `breaker_probe_jobs` consecutive successes close it.
  int breaker_failure_threshold = 5;
  int breaker_probe_jobs = 2;
  int64_t breaker_open_ms = 0;
  // Per-cache byte budget; each slot owns two caches (Spark + Hadoop).
  size_t plan_cache_budget_bytes = 64u << 20;
  // Optional per-slot setup (klasses + SER programs built once per engine).
  EngineSetup setup;

  // Returns "" when valid, otherwise a descriptive one-line error.
  std::string Validate() const;
};

class Session;

class EngineService {
 public:
  // Slot circuit-breaker lifecycle counters, summed over all slots.
  struct BreakerStats {
    int64_t opens = 0;            // closed/half-open -> open transitions
    int64_t rebuilds = 0;         // engine teardown+rebuild cycles (== opens)
    int64_t half_opens = 0;       // open -> half-open transitions
    int64_t closes = 0;           // half-open -> closed (probe successes)
    int64_t probe_failures = 0;   // half-open jobs that failed (re-opens)
  };

  // Validates `config` (GERENUK_CHECK on error), builds the pool, runs
  // `config.setup` on every slot, and starts the dispatchers.
  explicit EngineService(const ServiceConfig& config);
  ~EngineService();  // Shutdown() + join

  EngineService(const EngineService&) = delete;
  EngineService& operator=(const EngineService&) = delete;

  // Sessions are lightweight per-tenant handles; any number may share a
  // tenant id. The service must outlive every session.
  Session CreateSession(const std::string& tenant);

  // Thread-safe; callable from any number of client threads. Returns a
  // handle already resolved to kRejected when the spec is invalid or
  // admission refuses the job (the error names the bound that fired).
  JobHandle Submit(const std::string& tenant, JobSpec spec);

  // Stops admission, drains the queue, joins the dispatchers. Idempotent;
  // also run by the destructor.
  void Shutdown();

  // Chaos / operations hook: marks slot `slot` as lost. Its dispatcher
  // opens the breaker (teardown + rebuild) before running its next job, as
  // if the failure threshold had been crossed. Returns false for an
  // out-of-range slot. Thread-safe.
  bool TripBreaker(int slot);

  // Admission counters + pool-wide plan-cache stats + breaker/cancel
  // counters + every tenant's registry namespaced under "tenant.<id>.".
  MetricsRegistry metrics() const;

  // Aggregated over every slot's two caches.
  PlanCache::Stats plan_cache_stats() const;
  AdmissionController::Stats admission_stats() const;
  BreakerStats breaker_stats() const;

  // Snapshot of one tenant's scoped registry (empty if never seen).
  MetricsRegistry TenantMetrics(const std::string& tenant) const;
  int64_t TenantJobsCompleted(const std::string& tenant) const;

  int num_engines() const { return static_cast<int>(slots_.size()); }

  // The service-level event timeline (admission rejects, cancels, breaker
  // transitions); null when config.engine.observability.trace is off.
  Trace* service_trace() { return service_trace_.get(); }

 private:
  enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  // Decayed failure pressure for one slot. Dispatcher-thread-only: each
  // slot's score is read and written exclusively by its own dispatcher.
  // A success halves the score (so sporadic failures age out); a failure
  // adds one plus the job's executor-death incidents (a crashing executor
  // is stronger evidence of a sick slot than a clean body exception).
  struct SlotHealth {
    double score = 0.0;
    void OnSuccess() { score *= 0.5; }
    void OnFailure(int64_t incidents) { score += 1.0 + static_cast<double>(incidents); }
    void Reset() { score = 0.0; }
  };

  struct EngineSlot {
    explicit EngineSlot(size_t cache_budget_bytes)
        : spark_cache(cache_budget_bytes), hadoop_cache(cache_budget_bytes) {}
    PlanCache spark_cache;
    PlanCache hadoop_cache;
    std::unique_ptr<SparkEngine> spark;
    std::unique_ptr<HadoopEngine> hadoop;
    EngineContext ctx;
    std::thread dispatcher;
    // Breaker state. `state` is atomic only so metrics snapshots from other
    // threads are race-free; all writes happen on the slot's dispatcher.
    SlotHealth health;
    std::atomic<BreakerState> state{BreakerState::kClosed};
    int probe_successes = 0;  // dispatcher-only, valid while half-open
    std::atomic<bool> kill_requested{false};  // TripBreaker -> dispatcher
  };

  struct TenantState {
    MetricsRegistry registry;
    int64_t jobs_completed = 0;
    // signature hash -> (speculative tasks, aborts): the per-tenant-per-SER
    // generalization of SpeculationGovernor's engine-wide counters.
    std::unordered_map<uint64_t, std::pair<int64_t, int64_t>> speculation;
  };

  void DispatchLoop(EngineSlot* slot);
  void RunOne(EngineSlot* slot, QueuedJob* job);
  void InstallOracle(EngineSlot* slot, const std::string& tenant);
  bool TenantShouldSpeculate(const std::string& tenant, uint64_t signature_hash) const;
  void TenantObserve(const std::string& tenant, uint64_t signature_hash, int tasks, int aborts);
  // Wires (or re-wires, after a rebuild) fresh engines into `slot`.
  void BuildSlotEngines(EngineSlot* slot, int index);
  // Breaker transitions; dispatcher-thread-only for the given slot.
  void OpenBreaker(EngineSlot* slot);
  void ObserveJobOutcome(EngineSlot* slot, JobStatus status, int64_t executor_deaths);
  // Resolves a job's handle without running it (queue-side cancel/deadline).
  void ResolveUnrun(QueuedJob* job, JobStatus status, const char* error);
  // Appends one instant to the service trace (no-op when tracing is off).
  // Unlike engine traces, service events race across client threads and
  // dispatchers, so the driver sink is guarded by a mutex here.
  void ServiceInstant(TraceEventType type, const char* name, int64_t arg);

  const ServiceConfig config_;
  // Engine templates for pool construction and breaker rebuilds.
  EngineConfig pooled_config_;
  HadoopConfig pooled_hadoop_config_;
  // Shared (not a plain member) so JobHandle::cancel can reach it through a
  // weak_ptr after the handle outlives the service.
  std::shared_ptr<AdmissionController> admission_;
  std::vector<std::unique_ptr<EngineSlot>> slots_;
  std::atomic<uint64_t> next_job_id_{1};
  std::atomic<bool> shut_down_{false};

  std::atomic<int64_t> jobs_cancelled_{0};
  std::atomic<int64_t> jobs_deadline_exceeded_{0};
  std::atomic<int64_t> breaker_opens_{0};
  std::atomic<int64_t> breaker_rebuilds_{0};
  std::atomic<int64_t> breaker_half_opens_{0};
  std::atomic<int64_t> breaker_closes_{0};
  std::atomic<int64_t> breaker_probe_failures_{0};

  std::unique_ptr<Trace> service_trace_;  // null when tracing is off
  std::mutex service_trace_mu_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, TenantState> tenants_;
};

// Per-tenant handle: tags every Submit with the tenant id and scopes
// metrics reads to it. Copyable.
class Session {
 public:
  Session() = default;

  const std::string& tenant() const { return tenant_; }
  JobHandle Submit(JobSpec spec) { return service_->Submit(tenant_, std::move(spec)); }
  MetricsRegistry metrics() const { return service_->TenantMetrics(tenant_); }
  int64_t jobs_completed() const { return service_->TenantJobsCompleted(tenant_); }

 private:
  friend class EngineService;
  Session(EngineService* service, std::string tenant)
      : service_(service), tenant_(std::move(tenant)) {}

  EngineService* service_ = nullptr;
  std::string tenant_;
};

inline Session EngineService::CreateSession(const std::string& tenant) {
  return Session(this, tenant);
}

}  // namespace gerenuk

#endif  // SRC_SERVICE_ENGINE_SERVICE_H_
