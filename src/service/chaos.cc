#include "src/service/chaos.h"

#include <chrono>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "src/support/rng.h"

namespace gerenuk {

ChaosSchedule ChaosSchedule::Generate(const ChaosConfig& config, int num_kinds) {
  GERENUK_CHECK_GT(num_kinds, 0);
  Rng rng(config.seed);
  ChaosSchedule schedule;
  schedule.jobs.reserve(static_cast<size_t>(config.tenants) *
                        static_cast<size_t>(config.jobs_per_tenant));
  // Tenants interleave round-robin in submission order, so every DRR round
  // sees a full cross-section of the fault mix.
  for (int j = 0; j < config.jobs_per_tenant; ++j) {
    for (int t = 0; t < config.tenants; ++t) {
      ChaosJobPlan plan;
      plan.tenant = t;
      plan.kind = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_kinds)));
      plan.priority = static_cast<int>(rng.NextBounded(3));
      // One roll covers both exception classes so their rates match the
      // configured mix exactly (unrecoverable is a sub-band of task_fault).
      const double fault_roll = rng.NextDouble();
      if (fault_roll < config.p_unrecoverable) {
        plan.inject_exception = true;
        plan.unrecoverable = true;
      } else if (fault_roll < config.p_task_fault) {
        plan.inject_exception = true;
      }
      if (rng.NextDouble() < config.p_force_aborts) {
        plan.force_aborts = 1 + static_cast<int>(rng.NextBounded(4));
      }
      if (rng.NextDouble() < config.p_cancel) {
        plan.cancel = true;
        plan.cancel_delay_us =
            config.cancel_delay_us_max > 0
                ? static_cast<int64_t>(rng.NextBounded(
                      static_cast<uint64_t>(config.cancel_delay_us_max)))
                : 0;
      }
      if (rng.NextDouble() < config.p_deadline) {
        plan.deadline_ms =
            1 + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(config.deadline_ms_max)));
      }
      if (rng.NextDouble() < config.p_stall) {
        plan.stall_ms =
            1 + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(config.stall_ms_max)));
      }
      if (rng.NextDouble() < config.p_slot_kill) {
        plan.kill_slot = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(config.num_engines)));
      }
      schedule.jobs.push_back(plan);
    }
  }
  return schedule;
}

namespace {

// Wraps a workload body with the plan's faults. Fault plans are engine
// state, so they are installed at body entry (on the slot the dispatcher
// chose) and cleared on every exit path — a stale plan keyed on a past
// ordinal must never leak into the next job on the slot.
JobSpec ComposeFaults(JobSpec spec, const ChaosJobPlan& plan) {
  spec.priority = plan.priority;
  spec.deadline_ms = plan.deadline_ms;
  auto base_run = std::move(spec.run);
  spec.run = [base_run, plan](EngineContext& ctx) -> std::string {
    if (plan.stall_ms > 0) {
      // Dispatcher stall: the slot is busy doing nothing, queue pressure
      // builds, deadlines race. Plain sleep — cancellation is checked at
      // task boundaries, not here, matching an uncooperative body prefix.
      std::this_thread::sleep_for(std::chrono::milliseconds(plan.stall_ms));
    }
    ctx.spark->fault_plan().Clear();
    ctx.hadoop->fault_plan().Clear();
    if (plan.force_aborts > 0) {
      ctx.spark->ForceAborts(plan.force_aborts);
    }
    if (plan.inject_exception) {
      // The kind decides which engine runs; injecting on both is harmless —
      // the unused plan is cleared below before it could match a future
      // task ordinal.
      const int max_attempt = plan.unrecoverable ? -1 : 1;
      ctx.spark->fault_plan().InjectException(ctx.spark->next_task_ordinal(), max_attempt);
      ctx.hadoop->fault_plan().InjectException(ctx.hadoop->next_task_ordinal(), max_attempt);
    }
    try {
      std::string out = base_run(ctx);
      ctx.spark->fault_plan().Clear();
      ctx.hadoop->fault_plan().Clear();
      return out;
    } catch (...) {
      ctx.spark->fault_plan().Clear();
      ctx.hadoop->fault_plan().Clear();
      throw;
    }
  };
  return spec;
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::ostringstream os;
  os << jobs << " jobs: " << succeeded << " ok, " << failed << " failed, " << cancelled
     << " cancelled, " << deadline_exceeded << " deadline, " << rejected << " rejected, " << hangs
     << " hangs, " << output_mismatches << " mismatches; breaker opens=" << breaker.opens
     << " half_opens=" << breaker.half_opens << " closes=" << breaker.closes
     << " probe_failures=" << breaker.probe_failures
     << "; admission cancelled_queued=" << admission.cancelled_queued
     << " inflight_bytes=" << admission.inflight_bytes;
  for (const std::string& violation : violations) {
    os << "\n  VIOLATION: " << violation;
  }
  return os.str();
}

ChaosReport RunChaosCampaign(const ChaosConfig& config, const ChaosWorkload& workload) {
  GERENUK_CHECK(workload.make_job != nullptr);
  const ChaosSchedule schedule = ChaosSchedule::Generate(config, workload.num_kinds);

  ServiceConfig service_config = workload.service;
  service_config.num_engines = config.num_engines;
  service_config.max_queue_depth = config.max_queue_depth;
  service_config.max_queue_depth_per_tenant = config.max_queue_depth_per_tenant;
  service_config.breaker_failure_threshold = config.breaker_failure_threshold;
  service_config.breaker_probe_jobs = config.breaker_probe_jobs;
  service_config.max_inflight_bytes = config.max_inflight_bytes;
  service_config.max_inflight_bytes_per_tenant = config.max_inflight_bytes_per_tenant;

  auto service = std::make_unique<EngineService>(service_config);
  std::vector<Session> sessions;
  sessions.reserve(static_cast<size_t>(config.tenants));
  for (int t = 0; t < config.tenants; ++t) {
    sessions.push_back(service->CreateSession("chaos" + std::to_string(t)));
  }

  // Submit the whole schedule; cancel storms run as concurrent client
  // threads (one per planned cancel — they sleep microseconds, so even a
  // large campaign stays cheap).
  std::vector<JobHandle> handles;
  handles.reserve(schedule.jobs.size());
  std::vector<std::thread> cancellers;
  for (const ChaosJobPlan& plan : schedule.jobs) {
    if (plan.kill_slot >= 0) {
      service->TripBreaker(plan.kill_slot);
    }
    JobHandle handle =
        sessions[static_cast<size_t>(plan.tenant)].Submit(ComposeFaults(workload.make_job(plan.kind), plan));
    if (plan.cancel) {
      const int64_t delay_us = plan.cancel_delay_us;
      JobHandle copy = handle;
      cancellers.emplace_back([copy, delay_us]() mutable {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        copy.cancel();
      });
    }
    handles.push_back(std::move(handle));
  }
  for (std::thread& canceller : cancellers) {
    canceller.join();
  }

  ChaosReport report;
  report.jobs = static_cast<int64_t>(handles.size());
  const auto watchdog_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(config.watchdog_ms);
  for (size_t i = 0; i < handles.size(); ++i) {
    const auto now = std::chrono::steady_clock::now();
    const auto remaining = watchdog_deadline > now
                               ? std::chrono::duration_cast<std::chrono::milliseconds>(
                                     watchdog_deadline - now)
                               : std::chrono::milliseconds(0);
    std::optional<JobResult> result = handles[i].wait_for(remaining);
    if (!result.has_value()) {
      report.hangs += 1;
      continue;
    }
    switch (result->status) {
      case JobStatus::kSucceeded: {
        report.succeeded += 1;
        const int kind = schedule.jobs[i].kind;
        if (kind < static_cast<int>(workload.expected.size()) &&
            !workload.expected[static_cast<size_t>(kind)].empty() &&
            result->output != workload.expected[static_cast<size_t>(kind)]) {
          report.output_mismatches += 1;
        }
        break;
      }
      case JobStatus::kFailed:
        report.failed += 1;
        break;
      case JobStatus::kCancelled:
        report.cancelled += 1;
        break;
      case JobStatus::kDeadlineExceeded:
        report.deadline_exceeded += 1;
        break;
      case JobStatus::kRejected:
        report.rejected += 1;
        break;
      default:
        report.hangs += 1;  // non-terminal from wait_for would be a bug
        break;
    }
  }

  if (report.hangs > 0) {
    // A hung job wedges a dispatcher; Shutdown (and the destructor) would
    // join forever. Leak the service — the campaign is failing anyway.
    report.admission = service->admission_stats();
    report.breaker = service->breaker_stats();
    service.release();
    report.violations.push_back(std::to_string(report.hangs) +
                                " job(s) never reached a terminal status under the watchdog");
    return report;
  }

  // Guarantee at least one full breaker cycle: trip slot 0, then feed clean
  // probe jobs until one closes (bounded — probes land round-robin-ish, so
  // a couple of rounds of probe_jobs suffice).
  if (config.force_breaker_cycle && service->breaker_stats().closes == 0) {
    service->TripBreaker(0);
    Session probe_session = service->CreateSession("chaos-probe");
    const int max_probes = config.num_engines * (config.breaker_probe_jobs + 1) * 4;
    for (int i = 0; i < max_probes && service->breaker_stats().closes == 0; ++i) {
      JobHandle probe = probe_session.Submit(workload.make_job(0));
      std::optional<JobResult> result = probe.wait_for(std::chrono::milliseconds(30000));
      if (!result.has_value()) {
        report.hangs += 1;
        report.admission = service->admission_stats();
        report.breaker = service->breaker_stats();
        service.release();
        report.violations.push_back("breaker probe job hung");
        return report;
      }
    }
  }

  service->Shutdown();
  report.admission = service->admission_stats();
  report.breaker = service->breaker_stats();

  if (report.output_mismatches > 0) {
    report.violations.push_back(std::to_string(report.output_mismatches) +
                                " succeeded job(s) diverged from the fault-free reference output");
  }
  const int64_t terminal = report.succeeded + report.failed + report.cancelled +
                           report.deadline_exceeded + report.rejected;
  if (terminal != report.jobs) {
    report.violations.push_back("terminal statuses (" + std::to_string(terminal) +
                                ") do not cover all " + std::to_string(report.jobs) + " jobs");
  }
  if (report.admission.submitted !=
      report.admission.dispatched + report.admission.cancelled_queued) {
    report.violations.push_back(
        "admission imbalance after drain: submitted=" + std::to_string(report.admission.submitted) +
        " != dispatched=" + std::to_string(report.admission.dispatched) +
        " + cancelled_queued=" + std::to_string(report.admission.cancelled_queued));
  }
  if (report.admission.inflight_bytes != 0) {
    report.violations.push_back("unreleased byte charges: inflight_bytes=" +
                                std::to_string(report.admission.inflight_bytes));
  }
  if (report.breaker.opens != report.breaker.rebuilds) {
    report.violations.push_back("breaker opens (" + std::to_string(report.breaker.opens) +
                                ") != rebuilds (" + std::to_string(report.breaker.rebuilds) + ")");
  }
  if (config.force_breaker_cycle && report.breaker.closes < 1) {
    report.violations.push_back("no breaker open -> half-open -> close cycle completed");
  }
  return report;
}

}  // namespace gerenuk
