// Job-level types of the multi-tenant engine service: what a client submits
// (JobSpec), what a job body sees (EngineContext), what comes back
// (JobResult via JobHandle), and the queued form the admission controller
// schedules (QueuedJob).
//
// A job body is a plain function over one pooled engine slot. It returns the
// job's canonical output bytes as a string — the service never interprets
// them, it only stores them in the result — so "byte-identical to a
// sequential run" is checkable by the caller with a string compare. A body
// that throws fails the job with the exception's message; it never takes the
// service down.
#ifndef SRC_SERVICE_JOB_H_
#define SRC_SERVICE_JOB_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "src/support/metrics.h"

namespace gerenuk {

class SparkEngine;
class HadoopEngine;
class AdmissionController;

// Terminal states are kSucceeded / kFailed / kRejected / kCancelled /
// kDeadlineExceeded. kRejected is decided synchronously at Submit (admission
// queue or byte budget full, invalid spec, or service shut down). kCancelled
// and kDeadlineExceeded resolve either synchronously (the job was still
// queued) or cooperatively at the next task-attempt boundary (the job was
// running), in which case the result carries the partial EngineStats delta.
enum class JobStatus : uint8_t {
  kQueued,
  kRunning,
  kSucceeded,
  kFailed,
  kRejected,
  kCancelled,
  kDeadlineExceeded,
};

inline const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kSucceeded:
      return "succeeded";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kRejected:
      return "rejected";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

// One pooled engine slot as a job body sees it. Both engines share the
// slot's dispatcher thread, so a body may use either (or both) without
// synchronizing. `setup` is the slot's ServiceConfig::setup payload —
// klasses and SER programs built once per engine, shared by every job that
// runs on the slot (registering the same data types per job would redefine
// them and defeat the signature-keyed plan cache).
struct EngineContext {
  SparkEngine* spark = nullptr;
  HadoopEngine* hadoop = nullptr;
  std::shared_ptr<void> setup;
  int slot = 0;
};

struct JobSpec {
  std::string name;  // metrics/trace label; not part of scheduling identity
  // DRR cost in abstract units (>= 1): a tenant submitting cost-4 jobs gets
  // one dispatched for every four cost-1 jobs of its neighbors.
  int64_t cost = 1;
  // Wall-clock budget from Submit to completion. 0 inherits the service's
  // default_deadline_ms (0 there too = no deadline); negative is rejected at
  // Submit. Expiry is checked when the job is dequeued and cooperatively at
  // every task-attempt boundary while it runs; a body that finishes despite
  // an expired deadline still succeeds (the work is done — keep it).
  int64_t deadline_ms = 0;
  // Within this tenant's queue only: higher priority dispatches first, FIFO
  // among equals. Cross-tenant fairness is still DRR — priority never lets
  // one tenant starve another.
  int priority = 0;
  // Estimated input bytes, used for byte-quota admission (corrected by the
  // tenant's observed output/input ratio). 0 = unknown: the job bypasses
  // byte accounting entirely.
  int64_t input_bytes = 0;
  // The job body; returns the job's canonical output bytes.
  std::function<std::string(EngineContext&)> run;
};

// Everything a terminal job reports. `stats` is the per-job EngineStats
// delta: the dispatcher resets the slot's metrics before the body runs and
// snapshots them (both engines, summed) after it returns — including for
// kCancelled / kDeadlineExceeded bodies, whose partial progress is visible.
struct JobResult {
  JobStatus status = JobStatus::kQueued;
  std::string output;
  std::string error;  // kFailed: exception message; kRejected: admission reason
  EngineStats stats;
  int64_t queue_wait_ns = 0;
  int64_t exec_ns = 0;
};

namespace internal {

// Shared between the client's JobHandle, the service's dispatcher, and the
// admission controller (synchronous cancel of still-queued jobs).
struct JobState {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t id = 0;
  JobResult result;

  // Cooperative cancel flag: set by JobHandle::cancel(), read by the per-job
  // CancelCheck the dispatcher installs on both engines. Lock-free so task
  // workers can probe it at attempt boundaries without touching `mu`.
  std::atomic<bool> cancel_requested{false};
  // Absolute deadline as steady_clock nanoseconds-since-epoch (0 = none),
  // fixed at Submit before the handle is published, so reads are race-free.
  int64_t deadline_steady_ns = 0;

  // Back-pointers for JobHandle::cancel(): which tenant queue to search, and
  // the controller that owns it. Weak so a handle outliving the service
  // degrades to a no-op cancel instead of a dangling pointer.
  std::string tenant;
  std::weak_ptr<AdmissionController> admission;
};

inline bool IsTerminal(JobStatus status) {
  return status == JobStatus::kSucceeded || status == JobStatus::kFailed ||
         status == JobStatus::kRejected || status == JobStatus::kCancelled ||
         status == JobStatus::kDeadlineExceeded;
}

}  // namespace internal

// Client-side handle to one submitted job. Copyable; all copies observe the
// same job. poll() never blocks; wait() blocks until a terminal status and
// returns the result by value, so it stays valid after the handle (even a
// temporary `Submit(...).wait()` chain) is gone.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const { return state_ != nullptr ? state_->id : 0; }

  JobStatus poll() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->result.status;
  }

  JobResult wait() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return internal::IsTerminal(state_->result.status); });
    return state_->result;
  }

  // Bounded wait: the result if the job reached a terminal status within
  // `timeout`, std::nullopt otherwise. The job keeps running either way.
  std::optional<JobResult> wait_for(std::chrono::milliseconds timeout) const {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (!state_->cv.wait_for(lock, timeout,
                             [this] { return internal::IsTerminal(state_->result.status); })) {
      return std::nullopt;
    }
    return state_->result;
  }

  // Requests cancellation. A still-queued job resolves to kCancelled
  // synchronously (removed from the admission queue, never runs); a running
  // job observes the flag at its next task-attempt boundary and unwinds with
  // partial stats. Returns true if this call initiated a cancel that can
  // still take effect, false if the job was already terminal (or the handle
  // is invalid / the service is gone). Defined in admission.cc — it needs
  // the controller to dequeue synchronously.
  bool cancel();

 private:
  friend class EngineService;
  explicit JobHandle(std::shared_ptr<internal::JobState> state) : state_(std::move(state)) {}

  std::shared_ptr<internal::JobState> state_;
};

// A job in the admission queue: the spec plus the handle state to resolve,
// the enqueue instant (queue-wait accounting), and the byte charge the
// admission controller debited (released when the job reaches a terminal
// state, or at synchronous cancel).
struct QueuedJob {
  std::string tenant;
  JobSpec spec;
  std::shared_ptr<internal::JobState> state;
  std::chrono::steady_clock::time_point enqueued{};
  int64_t byte_charge = 0;
};

}  // namespace gerenuk

#endif  // SRC_SERVICE_JOB_H_
