// Job-level types of the multi-tenant engine service: what a client submits
// (JobSpec), what a job body sees (EngineContext), what comes back
// (JobResult via JobHandle), and the queued form the admission controller
// schedules (QueuedJob).
//
// A job body is a plain function over one pooled engine slot. It returns the
// job's canonical output bytes as a string — the service never interprets
// them, it only stores them in the result — so "byte-identical to a
// sequential run" is checkable by the caller with a string compare. A body
// that throws fails the job with the exception's message; it never takes the
// service down.
#ifndef SRC_SERVICE_JOB_H_
#define SRC_SERVICE_JOB_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/support/metrics.h"

namespace gerenuk {

class SparkEngine;
class HadoopEngine;

// Terminal states are kSucceeded / kFailed / kRejected; kRejected is decided
// synchronously at Submit (admission queue full or service shut down).
enum class JobStatus : uint8_t { kQueued, kRunning, kSucceeded, kFailed, kRejected };

inline const char* JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kSucceeded:
      return "succeeded";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kRejected:
      return "rejected";
  }
  return "?";
}

// One pooled engine slot as a job body sees it. Both engines share the
// slot's dispatcher thread, so a body may use either (or both) without
// synchronizing. `setup` is the slot's ServiceConfig::setup payload —
// klasses and SER programs built once per engine, shared by every job that
// runs on the slot (registering the same data types per job would redefine
// them and defeat the signature-keyed plan cache).
struct EngineContext {
  SparkEngine* spark = nullptr;
  HadoopEngine* hadoop = nullptr;
  std::shared_ptr<void> setup;
  int slot = 0;
};

struct JobSpec {
  std::string name;  // metrics/trace label; not part of scheduling identity
  // DRR cost in abstract units (>= 1): a tenant submitting cost-4 jobs gets
  // one dispatched for every four cost-1 jobs of its neighbors.
  int64_t cost = 1;
  // The job body; returns the job's canonical output bytes.
  std::function<std::string(EngineContext&)> run;
};

// Everything a terminal job reports. `stats` is the per-job EngineStats
// delta: the dispatcher resets the slot's metrics before the body runs and
// snapshots them (both engines, summed) after it returns.
struct JobResult {
  JobStatus status = JobStatus::kQueued;
  std::string output;
  std::string error;  // kFailed: exception message; kRejected: admission reason
  EngineStats stats;
  int64_t queue_wait_ns = 0;
  int64_t exec_ns = 0;
};

namespace internal {

// Shared between the client's JobHandle and the service's dispatcher.
struct JobState {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t id = 0;
  JobResult result;
};

inline bool IsTerminal(JobStatus status) {
  return status == JobStatus::kSucceeded || status == JobStatus::kFailed ||
         status == JobStatus::kRejected;
}

}  // namespace internal

// Client-side handle to one submitted job. Copyable; all copies observe the
// same job. poll() never blocks; wait() blocks until a terminal status and
// returns the result by value, so it stays valid after the handle (even a
// temporary `Submit(...).wait()` chain) is gone.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const { return state_ != nullptr ? state_->id : 0; }

  JobStatus poll() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->result.status;
  }

  JobResult wait() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return internal::IsTerminal(state_->result.status); });
    return state_->result;
  }

 private:
  friend class EngineService;
  explicit JobHandle(std::shared_ptr<internal::JobState> state) : state_(std::move(state)) {}

  std::shared_ptr<internal::JobState> state_;
};

// A job in the admission queue: the spec plus the handle state to resolve
// and the enqueue instant (queue-wait accounting).
struct QueuedJob {
  std::string tenant;
  JobSpec spec;
  std::shared_ptr<internal::JobState> state;
  std::chrono::steady_clock::time_point enqueued{};
};

}  // namespace gerenuk

#endif  // SRC_SERVICE_JOB_H_
