// Deterministic chaos campaigns against the engine service: a seeded
// schedule of jobs and faults — injected task failures, forced SER aborts,
// cancel storms, deadline races, dispatcher stalls, slot kills — driven
// through a real EngineService, with the invariants the service must hold
// under all of it checked at the end:
//
//   * no hangs — every JobHandle reaches a terminal status under a global
//     watchdog budget;
//   * correctness under recovery — every kSucceeded output is byte-identical
//     to the workload's fault-free sequential reference;
//   * conservation — admission counters balance (submitted == dispatched +
//     cancelled-in-queue once drained) and every byte charge is released;
//   * breaker sanity — opens == rebuilds, and (when requested) at least one
//     full open -> half-open -> close cycle happened.
//
// Everything random comes from one seeded Rng (support/rng.h), so a failing
// campaign replays exactly from its seed (tests/chaos_test --chaos_seed=N).
// The schedule is deterministic; the interleaving is not — which is the
// point: the invariants above must hold for every interleaving.
#ifndef SRC_SERVICE_CHAOS_H_
#define SRC_SERVICE_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/service/engine_service.h"
#include "src/service/job.h"

namespace gerenuk {

// Campaign shape + fault mix. Probabilities are per job and independent, so
// one job can stack several faults (an aborting body under a tight deadline
// that also gets cancelled — exactly the races worth probing).
struct ChaosConfig {
  uint64_t seed = 1;
  int tenants = 8;
  int jobs_per_tenant = 25;
  int num_engines = 2;

  // Fault mix.
  double p_task_fault = 0.30;     // injected task exception, first attempt only
  double p_unrecoverable = 0.06;  // exception on every attempt -> job fails
  double p_force_aborts = 0.20;   // forced SER aborts (speculation recovery path)
  double p_cancel = 0.12;         // client cancels after a random delay
  double p_deadline = 0.12;       // tight per-job deadline (races dispatch/run)
  double p_stall = 0.06;          // sleep at body entry (parks the dispatcher)
  double p_slot_kill = 0.015;     // TripBreaker on a random slot before submit
  int64_t stall_ms_max = 20;
  int64_t cancel_delay_us_max = 4000;
  int64_t deadline_ms_max = 30;

  // Service knobs the campaign overrides on the workload's config.
  int max_queue_depth = 4096;
  int max_queue_depth_per_tenant = 512;
  int breaker_failure_threshold = 3;
  int breaker_probe_jobs = 2;
  int64_t max_inflight_bytes = -1;
  int64_t max_inflight_bytes_per_tenant = -1;

  // Global no-hang budget for waiting out the whole campaign.
  int64_t watchdog_ms = 300000;
  // When the random mix never completed a breaker cycle, deterministically
  // trip slot 0 and feed probe jobs until one closes (acceptance requires
  // at least one full cycle per campaign).
  bool force_breaker_cycle = true;
};

// One job's planned faults, fixed before the campaign starts.
struct ChaosJobPlan {
  int tenant = 0;
  int kind = 0;
  int priority = 0;
  int64_t deadline_ms = 0;  // 0 = none
  bool cancel = false;
  int64_t cancel_delay_us = 0;
  int64_t stall_ms = 0;
  int force_aborts = 0;
  bool inject_exception = false;
  bool unrecoverable = false;
  int kill_slot = -1;  // >= 0: TripBreaker(kill_slot) right before this submit
};

inline bool operator==(const ChaosJobPlan& a, const ChaosJobPlan& b) {
  return a.tenant == b.tenant && a.kind == b.kind && a.priority == b.priority &&
         a.deadline_ms == b.deadline_ms && a.cancel == b.cancel &&
         a.cancel_delay_us == b.cancel_delay_us && a.stall_ms == b.stall_ms &&
         a.force_aborts == b.force_aborts && a.inject_exception == b.inject_exception &&
         a.unrecoverable == b.unrecoverable && a.kill_slot == b.kill_slot;
}

// The full campaign schedule, in submission order (tenants interleaved
// round-robin). Pure function of (config, num_kinds): same seed, same plans.
struct ChaosSchedule {
  std::vector<ChaosJobPlan> jobs;
  static ChaosSchedule Generate(const ChaosConfig& config, int num_kinds);
};

// What the campaign runs: a kind-indexed job factory over a service config
// (engine template + per-slot setup), plus the fault-free reference output
// per kind for the byte-identical check.
struct ChaosWorkload {
  int num_kinds = 0;
  ServiceConfig service;  // engine/hadoop/setup template; campaign overrides bounds
  std::function<JobSpec(int kind)> make_job;
  std::vector<std::string> expected;  // reference output per kind ("" = skip check)
};

struct ChaosReport {
  int64_t jobs = 0;
  int64_t succeeded = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t deadline_exceeded = 0;
  int64_t rejected = 0;
  int64_t hangs = 0;
  int64_t output_mismatches = 0;
  AdmissionController::Stats admission;
  EngineService::BreakerStats breaker;
  // Human-readable invariant violations; empty <=> the campaign passed.
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// Runs one campaign end to end and checks the invariants. On a detected
// hang the EngineService is intentionally leaked (its destructor would
// block on the hung job) — acceptable in a test process about to fail.
ChaosReport RunChaosCampaign(const ChaosConfig& config, const ChaosWorkload& workload);

}  // namespace gerenuk

#endif  // SRC_SERVICE_CHAOS_H_
