#include "src/service/engine_service.h"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "src/support/logging.h"

namespace gerenuk {

namespace {

int64_t NanosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
}

const ServiceConfig& ValidatedServiceConfig(const ServiceConfig& config) {
  const std::string error = config.Validate();
  GERENUK_CHECK(error.empty()) << "invalid ServiceConfig: " << error;
  return config;
}

}  // namespace

std::string ServiceConfig::Validate() const {
  if (num_engines < 1) {
    return "num_engines must be >= 1 (got " + std::to_string(num_engines) + ")";
  }
  if (max_queue_depth < 1) {
    return "max_queue_depth must be >= 1 (got " + std::to_string(max_queue_depth) + ")";
  }
  if (max_queue_depth_per_tenant < 1 || max_queue_depth_per_tenant > max_queue_depth) {
    return "max_queue_depth_per_tenant must be in [1, max_queue_depth] (got " +
           std::to_string(max_queue_depth_per_tenant) + " with max_queue_depth " +
           std::to_string(max_queue_depth) + ")";
  }
  if (drr_quantum < 1) {
    return "drr_quantum must be >= 1 (got " + std::to_string(drr_quantum) + ")";
  }
  if (plan_cache_budget_bytes == 0) {
    return "plan_cache_budget_bytes must be non-zero: every insert would thrash";
  }
  if (engine.execution.process_executors) {
    return "process_executors is incompatible with service mode: dispatcher "
           "threads cannot fork executor processes safely";
  }
  if (hadoop_num_reducers < 1) {
    return "hadoop_num_reducers must be >= 1 (got " + std::to_string(hadoop_num_reducers) + ")";
  }
  if (hadoop_sort_buffer_bytes == 0) {
    return "hadoop_sort_buffer_bytes must be non-zero: every emit would spill";
  }
  return engine.Validate();
}

EngineService::EngineService(const ServiceConfig& config)
    : config_(ValidatedServiceConfig(config)),
      admission_(config_.max_queue_depth, config_.max_queue_depth_per_tenant,
                 config_.drr_quantum) {
  // The pooled engines run with the engine-wide governor disabled; the
  // per-tenant oracle (fed from config_.engine.fault.governor_*) replaces it.
  EngineConfig pooled = config_.engine;
  pooled.fault.governor_abort_threshold = -1.0;
  HadoopConfig pooled_hadoop;
  pooled_hadoop.engine = pooled;
  pooled_hadoop.num_reducers = config_.hadoop_num_reducers;
  pooled_hadoop.sort_buffer_bytes = config_.hadoop_sort_buffer_bytes;

  slots_.reserve(static_cast<size_t>(config_.num_engines));
  for (int i = 0; i < config_.num_engines; ++i) {
    auto slot = std::make_unique<EngineSlot>(config_.plan_cache_budget_bytes);
    slot->spark = std::make_unique<SparkEngine>(pooled);
    slot->hadoop = std::make_unique<HadoopEngine>(pooled_hadoop);
    slot->spark->set_plan_cache(&slot->spark_cache);
    slot->hadoop->set_plan_cache(&slot->hadoop_cache);
    slot->ctx.spark = slot->spark.get();
    slot->ctx.hadoop = slot->hadoop.get();
    slot->ctx.slot = i;
    if (config_.setup != nullptr) {
      // Setup runs on this thread before the dispatcher exists; the thread
      // start below publishes its effects to the dispatcher.
      slot->ctx.setup = config_.setup(slot->ctx);
    }
    slots_.push_back(std::move(slot));
  }
  for (auto& slot : slots_) {
    slot->dispatcher = std::thread(&EngineService::DispatchLoop, this, slot.get());
  }
}

EngineService::~EngineService() { Shutdown(); }

void EngineService::Shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  admission_.Shutdown();
  for (auto& slot : slots_) {
    if (slot->dispatcher.joinable()) {
      slot->dispatcher.join();
    }
  }
}

JobHandle EngineService::Submit(const std::string& tenant, JobSpec spec) {
  auto state = std::make_shared<internal::JobState>();
  state->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  QueuedJob job;
  job.tenant = tenant;
  job.spec = std::move(spec);
  job.state = state;
  job.enqueued = std::chrono::steady_clock::now();
  if (!admission_.Submit(std::move(job))) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result.status = JobStatus::kRejected;
      state->result.error = "admission refused: queue depth bound hit or service shut down";
    }
    state->cv.notify_all();
  }
  return JobHandle(std::move(state));
}

void EngineService::DispatchLoop(EngineSlot* slot) {
  QueuedJob job;
  while (admission_.Next(&job)) {
    RunOne(slot, &job);
    job = QueuedJob();  // drop the body + handle reference before blocking
  }
}

void EngineService::RunOne(EngineSlot* slot, QueuedJob* job) {
  const auto started = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(job->state->mu);
    job->state->result.status = JobStatus::kRunning;
  }
  job->state->cv.notify_all();

  // Per-job scoping: metrics (and the merged trace, when tracing) restart
  // from zero so the snapshot after the body is this job's delta.
  slot->spark->ResetMetrics();
  slot->hadoop->ResetMetrics();
  if (slot->spark->trace() != nullptr) {
    slot->spark->trace()->ResetMerged();
  }
  if (slot->hadoop->trace() != nullptr) {
    slot->hadoop->trace()->ResetMerged();
  }
  InstallOracle(slot, job->tenant);

  std::string output;
  std::string error;
  bool ok = true;
  if (job->spec.run == nullptr) {
    ok = false;
    error = "job has no body";
  } else {
    try {
      output = job->spec.run(slot->ctx);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    } catch (...) {
      ok = false;
      error = "job body threw a non-exception value";
    }
  }
  const auto finished = std::chrono::steady_clock::now();

  EngineStats stats = slot->spark->stats();
  stats += slot->hadoop->stats();
  const int64_t queue_wait_ns = NanosBetween(job->enqueued, started);
  const int64_t exec_ns = NanosBetween(started, finished);

  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    TenantState& tenant = tenants_[job->tenant];
    tenant.jobs_completed += 1;
    stats.ExportTo(&tenant.registry);
    tenant.registry.Counter(ok ? "jobs_succeeded" : "jobs_failed") += 1;
    tenant.registry.Hist("job_queue_wait", MetricUnit::kNanos).Record(queue_wait_ns);
    tenant.registry.Hist("job_exec", MetricUnit::kNanos).Record(exec_ns);
  }

  {
    std::lock_guard<std::mutex> lock(job->state->mu);
    JobResult& result = job->state->result;
    result.status = ok ? JobStatus::kSucceeded : JobStatus::kFailed;
    result.output = std::move(output);
    result.error = std::move(error);
    result.stats = stats;
    result.queue_wait_ns = queue_wait_ns;
    result.exec_ns = exec_ns;
  }
  job->state->cv.notify_all();
}

void EngineService::InstallOracle(EngineSlot* slot, const std::string& tenant) {
  SpeculationOracle oracle;
  oracle.should_speculate = [this, tenant](uint64_t signature_hash) {
    return TenantShouldSpeculate(tenant, signature_hash);
  };
  oracle.observe = [this, tenant](uint64_t signature_hash, int tasks, int aborts) {
    TenantObserve(tenant, signature_hash, tasks, aborts);
  };
  slot->spark->set_speculation_oracle(oracle);
  slot->hadoop->set_speculation_oracle(std::move(oracle));
}

bool EngineService::TenantShouldSpeculate(const std::string& tenant,
                                          uint64_t signature_hash) const {
  const double threshold = config_.engine.fault.governor_abort_threshold;
  if (threshold <= 0.0) {
    return true;  // oracle disabled; history still accumulates
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto tenant_it = tenants_.find(tenant);
  if (tenant_it == tenants_.end()) {
    return true;
  }
  auto history_it = tenant_it->second.speculation.find(signature_hash);
  if (history_it == tenant_it->second.speculation.end()) {
    return true;
  }
  const auto [tasks, aborts] = history_it->second;
  if (tasks < config_.engine.fault.governor_min_tasks) {
    return true;
  }
  return static_cast<double>(aborts) < threshold * static_cast<double>(tasks);
}

void EngineService::TenantObserve(const std::string& tenant, uint64_t signature_hash,
                                  int tasks, int aborts) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto& entry = tenants_[tenant].speculation[signature_hash];
  entry.first += tasks;
  entry.second += aborts;
}

MetricsRegistry EngineService::metrics() const {
  MetricsRegistry out;
  const AdmissionController::Stats admission = admission_.stats();
  out.Counter("service.jobs_submitted") = admission.submitted;
  out.Counter("service.jobs_rejected") = admission.rejected;
  out.Counter("service.jobs_dispatched") = admission.dispatched;
  const PlanCache::Stats cache = plan_cache_stats();
  out.Counter("service.plan_cache.hits") = cache.hits;
  out.Counter("service.plan_cache.misses") = cache.misses;
  out.Counter("service.plan_cache.evictions") = cache.evictions;
  out.Counter("service.plan_cache.insertions") = cache.insertions;
  out.Counter("service.plan_cache.bytes") = cache.bytes;
  out.Counter("service.plan_cache.entries") = cache.entries;
  std::lock_guard<std::mutex> lock(tenants_mu_);
  for (const auto& [name, tenant] : tenants_) {
    const std::string prefix = "tenant." + name + ".";
    out.Counter(prefix + "jobs_completed") = tenant.jobs_completed;
    out.MergeWithPrefix(prefix, tenant.registry);
  }
  return out;
}

PlanCache::Stats EngineService::plan_cache_stats() const {
  PlanCache::Stats total;
  for (const auto& slot : slots_) {
    for (const PlanCache* cache : {&slot->spark_cache, &slot->hadoop_cache}) {
      const PlanCache::Stats s = cache->stats();
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.insertions += s.insertions;
      total.bytes += s.bytes;
      total.entries += s.entries;
    }
  }
  return total;
}

AdmissionController::Stats EngineService::admission_stats() const { return admission_.stats(); }

MetricsRegistry EngineService::TenantMetrics(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return MetricsRegistry();
  }
  MetricsRegistry out = it->second.registry;
  out.Counter("jobs_completed") = it->second.jobs_completed;
  return out;
}

int64_t EngineService::TenantJobsCompleted(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.jobs_completed : 0;
}

}  // namespace gerenuk
