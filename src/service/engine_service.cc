#include "src/service/engine_service.h"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "src/support/logging.h"

namespace gerenuk {

namespace {

int64_t NanosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
}

// Steady-clock nanoseconds since its (arbitrary) epoch: the representation
// JobState::deadline_steady_ns uses, comparable across threads.
int64_t NowSteadyNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const ServiceConfig& ValidatedServiceConfig(const ServiceConfig& config) {
  const std::string error = config.Validate();
  GERENUK_CHECK(error.empty()) << "invalid ServiceConfig: " << error;
  return config;
}

std::string RejectionMessage(AdmitResult result) {
  switch (result) {
    case AdmitResult::kRejectedGlobalDepth:
      return "admission refused: global queue depth bound hit (max_queue_depth)";
    case AdmitResult::kRejectedTenantDepth:
      return "admission refused: per-tenant queue depth bound hit (max_queue_depth_per_tenant)";
    case AdmitResult::kRejectedBytes:
      return "admission refused: in-flight byte budget exhausted (max_inflight_bytes)";
    case AdmitResult::kRejectedShutdown:
      return "admission refused: service shut down";
    case AdmitResult::kAdmitted:
      break;
  }
  return "admission refused";
}

}  // namespace

std::string ServiceConfig::Validate() const {
  if (num_engines < 1) {
    return "num_engines must be >= 1 (got " + std::to_string(num_engines) + ")";
  }
  if (max_queue_depth < 1) {
    return "max_queue_depth must be >= 1 (got " + std::to_string(max_queue_depth) + ")";
  }
  if (max_queue_depth_per_tenant < 1 || max_queue_depth_per_tenant > max_queue_depth) {
    return "max_queue_depth_per_tenant must be in [1, max_queue_depth] (got " +
           std::to_string(max_queue_depth_per_tenant) + " with max_queue_depth " +
           std::to_string(max_queue_depth) + ")";
  }
  if (drr_quantum < 1) {
    return "drr_quantum must be >= 1 (got " + std::to_string(drr_quantum) + ")";
  }
  if (max_inflight_bytes == 0 || max_inflight_bytes < -1) {
    return "max_inflight_bytes must be > 0, or -1 to disable byte-quota admission (got " +
           std::to_string(max_inflight_bytes) + "); a zero budget would reject every sized job";
  }
  if (max_inflight_bytes_per_tenant == 0 || max_inflight_bytes_per_tenant < -1) {
    return "max_inflight_bytes_per_tenant must be > 0, or -1 to disable (got " +
           std::to_string(max_inflight_bytes_per_tenant) +
           "); a zero budget would reject every sized job";
  }
  if (max_inflight_bytes > 0 && max_inflight_bytes_per_tenant > max_inflight_bytes) {
    return "max_inflight_bytes_per_tenant must be <= max_inflight_bytes (got " +
           std::to_string(max_inflight_bytes_per_tenant) + " with max_inflight_bytes " +
           std::to_string(max_inflight_bytes) + ")";
  }
  if (default_deadline_ms < 0) {
    return "default_deadline_ms must be >= 0, where 0 means no deadline (got " +
           std::to_string(default_deadline_ms) + ")";
  }
  if (breaker_failure_threshold < 1) {
    return "breaker_failure_threshold must be >= 1 (got " +
           std::to_string(breaker_failure_threshold) + ")";
  }
  if (breaker_probe_jobs < 1) {
    return "breaker_probe_jobs must be >= 1 (got " + std::to_string(breaker_probe_jobs) + ")";
  }
  if (breaker_open_ms < 0) {
    return "breaker_open_ms must be >= 0 (got " + std::to_string(breaker_open_ms) + ")";
  }
  if (plan_cache_budget_bytes == 0) {
    return "plan_cache_budget_bytes must be non-zero: every insert would thrash";
  }
  if (engine.execution.process_executors) {
    return "process_executors is incompatible with service mode: dispatcher "
           "threads cannot fork executor processes safely";
  }
  if (hadoop_num_reducers < 1) {
    return "hadoop_num_reducers must be >= 1 (got " + std::to_string(hadoop_num_reducers) + ")";
  }
  if (hadoop_sort_buffer_bytes == 0) {
    return "hadoop_sort_buffer_bytes must be non-zero: every emit would spill";
  }
  return engine.Validate();
}

EngineService::EngineService(const ServiceConfig& config) : config_(ValidatedServiceConfig(config)) {
  // The pooled engines run with the engine-wide governor disabled; the
  // per-tenant oracle (fed from config_.engine.fault.governor_*) replaces it.
  pooled_config_ = config_.engine;
  pooled_config_.fault.governor_abort_threshold = -1.0;
  pooled_hadoop_config_.engine = pooled_config_;
  pooled_hadoop_config_.num_reducers = config_.hadoop_num_reducers;
  pooled_hadoop_config_.sort_buffer_bytes = config_.hadoop_sort_buffer_bytes;

  admission_ = std::make_shared<AdmissionController>(
      config_.max_queue_depth, config_.max_queue_depth_per_tenant, config_.drr_quantum,
      config_.max_inflight_bytes, config_.max_inflight_bytes_per_tenant);
  if (config_.engine.observability.trace) {
    service_trace_ =
        std::make_unique<Trace>(/*num_workers=*/0, config_.engine.observability.trace_buffer_events);
  }

  slots_.reserve(static_cast<size_t>(config_.num_engines));
  for (int i = 0; i < config_.num_engines; ++i) {
    auto slot = std::make_unique<EngineSlot>(config_.plan_cache_budget_bytes);
    // Setup runs on this thread before the dispatcher exists; the thread
    // start below publishes its effects to the dispatcher.
    BuildSlotEngines(slot.get(), i);
    slots_.push_back(std::move(slot));
  }
  for (auto& slot : slots_) {
    slot->dispatcher = std::thread(&EngineService::DispatchLoop, this, slot.get());
  }
}

EngineService::~EngineService() { Shutdown(); }

void EngineService::Shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  admission_->Shutdown();
  for (auto& slot : slots_) {
    if (slot->dispatcher.joinable()) {
      slot->dispatcher.join();
    }
  }
}

void EngineService::BuildSlotEngines(EngineSlot* slot, int index) {
  // Cached artifacts hold pointers into the engines they were compiled on —
  // clear the caches before the old engines go away, never after.
  slot->spark_cache.Clear();
  slot->hadoop_cache.Clear();
  slot->spark.reset();
  slot->hadoop.reset();
  slot->spark = std::make_unique<SparkEngine>(pooled_config_);
  slot->hadoop = std::make_unique<HadoopEngine>(pooled_hadoop_config_);
  slot->spark->set_plan_cache(&slot->spark_cache);
  slot->hadoop->set_plan_cache(&slot->hadoop_cache);
  slot->ctx.spark = slot->spark.get();
  slot->ctx.hadoop = slot->hadoop.get();
  slot->ctx.slot = index;
  slot->ctx.setup.reset();
  if (config_.setup != nullptr) {
    slot->ctx.setup = config_.setup(slot->ctx);
  }
}

bool EngineService::TripBreaker(int slot) {
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) {
    return false;
  }
  slots_[static_cast<size_t>(slot)]->kill_requested.store(true, std::memory_order_release);
  return true;
}

JobHandle EngineService::Submit(const std::string& tenant, JobSpec spec) {
  auto state = std::make_shared<internal::JobState>();
  state->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  state->tenant = tenant;
  state->admission = admission_;
  const int64_t id = static_cast<int64_t>(state->id);

  if (spec.deadline_ms < 0) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result.status = JobStatus::kRejected;
      state->result.error = "invalid JobSpec: deadline_ms must be >= 0, where 0 means the "
                            "service default (got " +
                            std::to_string(spec.deadline_ms) + ")";
    }
    ServiceInstant(TraceEventType::kAdmissionReject, "rejected_invalid_spec", id);
    return JobHandle(std::move(state));
  }
  const int64_t deadline_ms = spec.deadline_ms > 0 ? spec.deadline_ms : config_.default_deadline_ms;
  if (deadline_ms > 0) {
    state->deadline_steady_ns = NowSteadyNs() + deadline_ms * 1000000;
  }

  QueuedJob job;
  job.tenant = tenant;
  job.spec = std::move(spec);
  job.state = state;
  job.enqueued = std::chrono::steady_clock::now();
  const AdmitResult admit = admission_->Submit(std::move(job));
  if (admit != AdmitResult::kAdmitted) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result.status = JobStatus::kRejected;
      state->result.error = RejectionMessage(admit);
    }
    state->cv.notify_all();
    ServiceInstant(TraceEventType::kAdmissionReject, AdmitResultName(admit), id);
  }
  return JobHandle(std::move(state));
}

void EngineService::DispatchLoop(EngineSlot* slot) {
  QueuedJob job;
  while (admission_->Next(&job)) {
    if (slot->kill_requested.exchange(false, std::memory_order_acq_rel)) {
      // Simulated slot loss (TripBreaker): open as if the failure threshold
      // had been crossed. The popped job then runs on the rebuilt engines.
      OpenBreaker(slot);
    }
    RunOne(slot, &job);
    job = QueuedJob();  // drop the body + handle reference before blocking
  }
}

void EngineService::ResolveUnrun(QueuedJob* job, JobStatus status, const char* error) {
  const int64_t queue_wait_ns = NanosBetween(job->enqueued, std::chrono::steady_clock::now());
  admission_->Release(job->tenant, job->byte_charge);
  const bool deadline = status == JobStatus::kDeadlineExceeded;
  (deadline ? jobs_deadline_exceeded_ : jobs_cancelled_).fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants_[job->tenant].registry.Counter(deadline ? "jobs_deadline_exceeded" : "jobs_cancelled") +=
        1;
  }
  ServiceInstant(TraceEventType::kJobCancel,
                 deadline ? "job_deadline_exceeded" : "job_cancelled",
                 static_cast<int64_t>(job->state->id));
  {
    std::lock_guard<std::mutex> lock(job->state->mu);
    JobResult& result = job->state->result;
    if (internal::IsTerminal(result.status)) {
      return;  // a concurrent JobHandle::cancel resolved it first
    }
    result.status = status;
    result.error = error;
    result.queue_wait_ns = queue_wait_ns;
  }
  job->state->cv.notify_all();
}

void EngineService::RunOne(EngineSlot* slot, QueuedJob* job) {
  internal::JobState* state = job->state.get();
  // Queue-side terminal checks: a job whose cancel or deadline fired while
  // it waited never touches an engine (its stats stay zero).
  if (state->cancel_requested.load(std::memory_order_acquire)) {
    ResolveUnrun(job, JobStatus::kCancelled, "cancelled before the body started");
    return;
  }
  if (state->deadline_steady_ns > 0 && NowSteadyNs() >= state->deadline_steady_ns) {
    ResolveUnrun(job, JobStatus::kDeadlineExceeded, "deadline expired in the admission queue");
    return;
  }

  const auto started = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result.status = JobStatus::kRunning;
  }
  state->cv.notify_all();

  // Per-job scoping: metrics (and the merged trace, when tracing) restart
  // from zero so the snapshot after the body is this job's delta.
  slot->spark->ResetMetrics();
  slot->hadoop->ResetMetrics();
  if (slot->spark->trace() != nullptr) {
    slot->spark->trace()->ResetMerged();
  }
  if (slot->hadoop->trace() != nullptr) {
    slot->hadoop->trace()->ResetMerged();
  }
  InstallOracle(slot, job->tenant);

  // Cooperative cancellation: both engines probe this at every task-attempt
  // boundary while the body runs. The raw JobState pointer is safe — the
  // check is detached below before `job` releases its state reference.
  const int64_t deadline_ns = state->deadline_steady_ns;
  CancelCheck check = [state, deadline_ns]() {
    if (state->cancel_requested.load(std::memory_order_acquire)) {
      return CancelCause::kUserCancel;
    }
    if (deadline_ns > 0 && NowSteadyNs() >= deadline_ns) {
      return CancelCause::kDeadline;
    }
    return CancelCause::kNone;
  };
  slot->spark->set_cancel_check(check);
  slot->hadoop->set_cancel_check(check);

  std::string output;
  std::string error;
  JobStatus status = JobStatus::kSucceeded;
  if (job->spec.run == nullptr) {
    status = JobStatus::kFailed;
    error = "job has no body";
  } else {
    try {
      output = job->spec.run(slot->ctx);
      // A body that finishes despite a set cancel flag still succeeds: the
      // work is done, throwing it away would help no one.
    } catch (const JobCancelled& e) {
      status = e.cause() == CancelCause::kDeadline ? JobStatus::kDeadlineExceeded
                                                   : JobStatus::kCancelled;
      error = e.what();
    } catch (const std::exception& e) {
      status = JobStatus::kFailed;
      error = e.what();
    } catch (...) {
      status = JobStatus::kFailed;
      error = "job body threw a non-exception value";
    }
  }
  slot->spark->set_cancel_check(nullptr);
  slot->hadoop->set_cancel_check(nullptr);
  const auto finished = std::chrono::steady_clock::now();

  EngineStats stats = slot->spark->stats();
  stats += slot->hadoop->stats();
  const int64_t queue_wait_ns = NanosBetween(job->enqueued, started);
  const int64_t exec_ns = NanosBetween(started, finished);
  const int64_t output_bytes = static_cast<int64_t>(output.size());

  admission_->Release(job->tenant, job->byte_charge);
  if (status == JobStatus::kSucceeded) {
    admission_->ObserveCompletion(job->tenant, job->spec.input_bytes, output_bytes);
  } else if (status == JobStatus::kCancelled) {
    jobs_cancelled_.fetch_add(1, std::memory_order_relaxed);
    ServiceInstant(TraceEventType::kJobCancel, "job_cancelled", static_cast<int64_t>(state->id));
  } else if (status == JobStatus::kDeadlineExceeded) {
    jobs_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    ServiceInstant(TraceEventType::kJobCancel, "job_deadline_exceeded",
                   static_cast<int64_t>(state->id));
  }

  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    TenantState& tenant = tenants_[job->tenant];
    tenant.jobs_completed += 1;
    stats.ExportTo(&tenant.registry);
    const char* outcome = status == JobStatus::kSucceeded          ? "jobs_succeeded"
                          : status == JobStatus::kFailed           ? "jobs_failed"
                          : status == JobStatus::kCancelled        ? "jobs_cancelled"
                                                                   : "jobs_deadline_exceeded";
    tenant.registry.Counter(outcome) += 1;
    tenant.registry.Hist("job_queue_wait", MetricUnit::kNanos).Record(queue_wait_ns);
    tenant.registry.Hist("job_exec", MetricUnit::kNanos).Record(exec_ns);
  }

  // Breaker bookkeeping before the handle resolves: once a waiter observes
  // the terminal status, breaker_stats() already reflects this job. A
  // threshold-crossing failure pays for its slot rebuild here — rare, and
  // the job it delays is the one that broke the slot.
  ObserveJobOutcome(slot, status, stats.executor_deaths);

  {
    std::lock_guard<std::mutex> lock(state->mu);
    JobResult& result = state->result;
    result.status = status;
    result.output = std::move(output);
    result.error = std::move(error);
    result.stats = stats;
    result.queue_wait_ns = queue_wait_ns;
    result.exec_ns = exec_ns;
  }
  state->cv.notify_all();
}

void EngineService::OpenBreaker(EngineSlot* slot) {
  const int64_t slot_index = slot->ctx.slot;
  slot->state.store(BreakerState::kOpen, std::memory_order_relaxed);
  breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  ServiceInstant(TraceEventType::kBreaker, "breaker_open", slot_index);
  // Drain is implicit: each slot runs one job at a time on its own
  // dispatcher, so by the time the breaker opens there is no in-flight work
  // on the slot, and nothing dispatches to it while its dispatcher is here.
  BuildSlotEngines(slot, static_cast<int>(slot_index));
  breaker_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  ServiceInstant(TraceEventType::kBreaker, "breaker_rebuild", slot_index);
  if (config_.breaker_open_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.breaker_open_ms));
  }
  slot->probe_successes = 0;
  slot->state.store(BreakerState::kHalfOpen, std::memory_order_relaxed);
  breaker_half_opens_.fetch_add(1, std::memory_order_relaxed);
  ServiceInstant(TraceEventType::kBreaker, "breaker_half_open", slot_index);
}

void EngineService::ObserveJobOutcome(EngineSlot* slot, JobStatus status,
                                      int64_t executor_deaths) {
  const BreakerState state = slot->state.load(std::memory_order_relaxed);
  if (status == JobStatus::kSucceeded) {
    if (state == BreakerState::kHalfOpen) {
      slot->probe_successes += 1;
      if (slot->probe_successes >= config_.breaker_probe_jobs) {
        slot->health.Reset();
        slot->state.store(BreakerState::kClosed, std::memory_order_relaxed);
        breaker_closes_.fetch_add(1, std::memory_order_relaxed);
        ServiceInstant(TraceEventType::kBreaker, "breaker_close", slot->ctx.slot);
      }
    } else {
      slot->health.OnSuccess();
    }
    return;
  }
  if (status != JobStatus::kFailed) {
    return;  // cancelled / deadline-exceeded jobs say nothing about slot health
  }
  slot->health.OnFailure(executor_deaths);
  if (state == BreakerState::kHalfOpen) {
    breaker_probe_failures_.fetch_add(1, std::memory_order_relaxed);
    ServiceInstant(TraceEventType::kBreaker, "breaker_probe_failure", slot->ctx.slot);
    OpenBreaker(slot);
    return;
  }
  if (state == BreakerState::kClosed &&
      slot->health.score >= static_cast<double>(config_.breaker_failure_threshold)) {
    OpenBreaker(slot);
  }
}

void EngineService::ServiceInstant(TraceEventType type, const char* name, int64_t arg) {
  if (service_trace_ == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(service_trace_mu_);
  service_trace_->driver()->Instant(type, name, arg);
}

void EngineService::InstallOracle(EngineSlot* slot, const std::string& tenant) {
  SpeculationOracle oracle;
  oracle.should_speculate = [this, tenant](uint64_t signature_hash) {
    return TenantShouldSpeculate(tenant, signature_hash);
  };
  oracle.observe = [this, tenant](uint64_t signature_hash, int tasks, int aborts) {
    TenantObserve(tenant, signature_hash, tasks, aborts);
  };
  slot->spark->set_speculation_oracle(oracle);
  slot->hadoop->set_speculation_oracle(std::move(oracle));
}

bool EngineService::TenantShouldSpeculate(const std::string& tenant,
                                          uint64_t signature_hash) const {
  const double threshold = config_.engine.fault.governor_abort_threshold;
  if (threshold <= 0.0) {
    return true;  // oracle disabled; history still accumulates
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto tenant_it = tenants_.find(tenant);
  if (tenant_it == tenants_.end()) {
    return true;
  }
  auto history_it = tenant_it->second.speculation.find(signature_hash);
  if (history_it == tenant_it->second.speculation.end()) {
    return true;
  }
  const auto [tasks, aborts] = history_it->second;
  if (tasks < config_.engine.fault.governor_min_tasks) {
    return true;
  }
  return static_cast<double>(aborts) < threshold * static_cast<double>(tasks);
}

void EngineService::TenantObserve(const std::string& tenant, uint64_t signature_hash,
                                  int tasks, int aborts) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto& entry = tenants_[tenant].speculation[signature_hash];
  entry.first += tasks;
  entry.second += aborts;
}

MetricsRegistry EngineService::metrics() const {
  MetricsRegistry out;
  const AdmissionController::Stats admission = admission_->stats();
  out.Counter("service.jobs_submitted") = admission.submitted;
  out.Counter("service.jobs_rejected") = admission.rejected;
  out.Counter("service.jobs_dispatched") = admission.dispatched;
  out.Counter("service.rejected_tenant_depth") = admission.rejected_tenant_depth;
  out.Counter("service.rejected_global_depth") = admission.rejected_global_depth;
  out.Counter("service.rejected_bytes") = admission.rejected_bytes;
  out.Counter("service.rejected_shutdown") = admission.rejected_shutdown;
  out.Counter("service.jobs_cancelled_queued") = admission.cancelled_queued;
  out.Counter("service.inflight_bytes") = admission.inflight_bytes;
  out.Counter("service.jobs_cancelled") = jobs_cancelled_.load(std::memory_order_relaxed);
  out.Counter("service.jobs_deadline_exceeded") =
      jobs_deadline_exceeded_.load(std::memory_order_relaxed);
  const BreakerStats breaker = breaker_stats();
  out.Counter("service.breaker.opens") = breaker.opens;
  out.Counter("service.breaker.rebuilds") = breaker.rebuilds;
  out.Counter("service.breaker.half_opens") = breaker.half_opens;
  out.Counter("service.breaker.closes") = breaker.closes;
  out.Counter("service.breaker.probe_failures") = breaker.probe_failures;
  const PlanCache::Stats cache = plan_cache_stats();
  out.Counter("service.plan_cache.hits") = cache.hits;
  out.Counter("service.plan_cache.misses") = cache.misses;
  out.Counter("service.plan_cache.evictions") = cache.evictions;
  out.Counter("service.plan_cache.insertions") = cache.insertions;
  out.Counter("service.plan_cache.bytes") = cache.bytes;
  out.Counter("service.plan_cache.entries") = cache.entries;
  std::lock_guard<std::mutex> lock(tenants_mu_);
  for (const auto& [name, tenant] : tenants_) {
    const std::string prefix = "tenant." + name + ".";
    out.Counter(prefix + "jobs_completed") = tenant.jobs_completed;
    out.MergeWithPrefix(prefix, tenant.registry);
  }
  return out;
}

PlanCache::Stats EngineService::plan_cache_stats() const {
  PlanCache::Stats total;
  for (const auto& slot : slots_) {
    for (const PlanCache* cache : {&slot->spark_cache, &slot->hadoop_cache}) {
      const PlanCache::Stats s = cache->stats();
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.insertions += s.insertions;
      total.bytes += s.bytes;
      total.entries += s.entries;
    }
  }
  return total;
}

AdmissionController::Stats EngineService::admission_stats() const { return admission_->stats(); }

EngineService::BreakerStats EngineService::breaker_stats() const {
  BreakerStats out;
  out.opens = breaker_opens_.load(std::memory_order_relaxed);
  out.rebuilds = breaker_rebuilds_.load(std::memory_order_relaxed);
  out.half_opens = breaker_half_opens_.load(std::memory_order_relaxed);
  out.closes = breaker_closes_.load(std::memory_order_relaxed);
  out.probe_failures = breaker_probe_failures_.load(std::memory_order_relaxed);
  return out;
}

MetricsRegistry EngineService::TenantMetrics(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return MetricsRegistry();
  }
  MetricsRegistry out = it->second.registry;
  out.Counter("jobs_completed") = it->second.jobs_completed;
  return out;
}

int64_t EngineService::TenantJobsCompleted(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.jobs_completed : 0;
}

}  // namespace gerenuk
