// The statement IR the Gerenuk compiler operates on.
//
// The paper's compiler transforms Java bytecode through Soot's three-address
// Jimple IR; this is our equivalent. A SerProgram holds a set of functions
// (the user's UDFs plus the system-level record pipeline) whose statements
// cover both worlds:
//   * the original, object-based operations (field loads/stores, allocation,
//     deserialize/serialize, calls, monitors) executed by the heap
//     interpreter — the paper's "slow path"; and
//   * the transformed, native-byte operations (readNative/writeNative,
//     appendToBuffer, getAddress, gWriteObject, abort) emitted by Algorithm 1
//     and executed by the native interpreter — the "fast path".
// One statement enum covers both so the transformer is a plain
// statement-to-statement rewrite, exactly like Algorithm 1's REPLACE/EMIT.
#ifndef SRC_IR_IR_H_
#define SRC_IR_IR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/klass.h"

namespace gerenuk {

// ---------------------------------------------------------------------------
// Values and types
// ---------------------------------------------------------------------------

enum class ValueTag : uint8_t { kNone, kI64, kF64, kRef, kAddr };

// A runtime value in either interpreter. kRef carries a managed-heap ObjRef
// (GC-visible); kAddr carries a native record address or builder id — the
// paper's rewrite of reference variables into long-typed addresses. The two
// must stay distinct so the collector traces only real heap references.
struct Value {
  ValueTag tag = ValueTag::kNone;
  int64_t i = 0;
  double d = 0.0;

  static Value None() { return Value{}; }
  static Value I64(int64_t v) { return Value{ValueTag::kI64, v, 0.0}; }
  static Value F64(double v) { return Value{ValueTag::kF64, 0, v}; }
  static Value Ref(int64_t v) { return Value{ValueTag::kRef, v, 0.0}; }
  static Value Addr(int64_t v) { return Value{ValueTag::kAddr, v, 0.0}; }
  static Value Bool(bool v) { return I64(v ? 1 : 0); }

  bool AsBool() const { return i != 0; }
};

// Static type of an IR variable. Reference types carry the declared Klass.
struct IrType {
  enum Kind : uint8_t { kVoid, kI64, kF64, kRef } kind = kVoid;
  const Klass* klass = nullptr;

  static IrType Void() { return {kVoid, nullptr}; }
  static IrType I64() { return {kI64, nullptr}; }
  static IrType F64() { return {kF64, nullptr}; }
  static IrType Ref(const Klass* k) { return {kRef, k}; }
  bool IsRef() const { return kind == kRef; }
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class Op : uint8_t {
  // --- original (object-based) operations ---
  kConst,         // dst = imm
  kAssign,        // dst = a                     (Algorithm 1 cases 2 & 3)
  kBinOp,         // dst = a <binop> b
  kUnOp,          // dst = <unop> a
  kDeserialize,   // dst = readObject()          (case 1 source)
  kSerialize,     // writeObject(a)              (case 8 sink)
  kFieldLoad,     // dst = a.field               (case 5)
  kFieldStore,    // a.field = b                 (case 4)
  kArrayLoad,     // dst = a[b]
  kArrayStore,    // a[b] = c
  kArrayLength,   // dst = a.length
  kNewObject,     // dst = new klass             (case 6)
  kNewArray,      // dst = new klass[a]          (case 6)
  kCall,          // dst = func(args)            (case 9)
  kCallNative,    // dst = native_name(args)     (violation 3 unless intrinsic)
  kMonitorEnter,  // synchronize(a) {            (violation 4)
  kMonitorExit,   // }
  kBranch,        // if (a) goto label
  kJump,          // goto label
  kLabel,         // label:
  kReturn,        // return a (or void)

  // --- transformed (native-byte) operations ---
  kGetAddress,          // dst = getAddress()                (case 1 rewrite)
  kGWriteObject,        // gWriteObject(a)                   (case 8 rewrite)
  kReadNative,          // dst = readNative(a, expr, kind)   (case 5 rewrite)
  kWriteNative,         // writeNative(a, expr, kind, b)     (case 4 rewrite)
  kAddrOfField,         // dst = a + resolveOffset(expr)     (ref-field load)
  kNativeArrayLength,   // dst = lengthOf(a)   [a points at len-prefixed data]
  kNativeArrayLoad,     // dst = a.data[b], element kind attached
  kNativeArrayStore,    // a.data[b] = c
  kAppendRecord,        // dst = appendToBuffer(klass)       (case 6 rewrite)
  kAppendArray,         // dst = appendToBuffer(klass, a)    (array allocation)
  kAttachField,         // a.field := sub-record b           (construction write)
  kAttachElement,       // a[b] := sub-record c              (construction write)
  kNativeArrayElemAddr, // dst = address of record element a[b]
  kAbort,               // abort the SER                     (case 7)
};

const char* OpName(Op op);

enum class BinOpKind : uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr, kXor, kShl, kShr,
  kMin, kMax,
};

enum class UnOpKind : uint8_t { kNeg, kNot, kI2F, kF2I };

// Why an abort was inserted — the paper's four violation conditions plus the
// forced-abort hook used by the Fig. 10(b) experiment.
enum class AbortReason : uint8_t {
  kLoadAndEscape,         // violation 1
  kDisruptNativeSpace,    // violation 2
  kInvokeNativeMethod,    // violation 3
  kUseObjectMetainfo,     // violation 4
  kForced,                // experiment hook
};

const char* AbortReasonName(AbortReason reason);

// One three-address statement. Operand meaning depends on `op` (see the Op
// comments); unused fields stay at their defaults.
struct Statement {
  Op op = Op::kConst;
  int dst = -1;           // destination variable
  int a = -1;             // operand variables
  int b = -1;
  int c = -1;
  const Klass* klass = nullptr;  // class for field/alloc ops
  int field_index = -1;          // index into klass->fields()
  FieldKind elem_kind = FieldKind::kI32;  // element/field kind for native ops
  int expr_id = -1;              // offset expression (transformed ops)
  bool expr_is_const = false;    // fast path: offset is a compile-time constant
  int64_t expr_const_offset = 0; // valid when expr_is_const (Algorithm 1's
                                 // "offset is statically known" case)
  BinOpKind binop = BinOpKind::kAdd;
  UnOpKind unop = UnOpKind::kNeg;
  Value imm;                     // kConst payload
  int label = -1;                // kBranch/kJump target, kLabel id
  int func = -1;                 // kCall callee function id
  std::vector<int> args;         // kCall / kCallNative arguments
  std::string native_name;       // kCallNative symbol
  AbortReason abort_reason = AbortReason::kLoadAndEscape;
};

// ---------------------------------------------------------------------------
// Functions and programs
// ---------------------------------------------------------------------------

struct VarInfo {
  std::string name;
  IrType type;
};

struct Function {
  int id = -1;
  std::string name;
  int num_params = 0;           // params are variables [0, num_params)
  IrType return_type = IrType::Void();
  std::vector<VarInfo> vars;
  std::vector<Statement> body;
  // label id -> statement index, rebuilt by ResolveLabels().
  std::vector<int> label_index;

  void ResolveLabels();
};

// A speculative-execution-region program: the statements between one
// deserialization point and one serialization point, factored into functions
// (the task body plus the UDFs it calls).
struct SerProgram {
  std::vector<std::unique_ptr<Function>> functions;
  Function* body = nullptr;  // entry executed once per input record

  Function* AddFunction(const std::string& name);
  Function* FindFunction(const std::string& name) const;
  const Function* function(int id) const { return functions[id].get(); }
  Function* function(int id) { return functions[id].get(); }
};

// Copies function `func_id` of `src` — and, transitively, every function it
// calls — into `dst`, remapping call targets. Engines use this to assemble a
// per-stage SerProgram out of workload-defined UDFs. Returns the id of the
// imported function in `dst`; repeated imports reuse `remap` entries.
int ImportFunction(SerProgram& dst, const SerProgram& src, int func_id,
                   std::map<int, int>& remap);

// Human-readable listing (one statement per line) for docs and debugging.
std::string PrintFunction(const Function& func);
std::string PrintProgram(const SerProgram& program);

}  // namespace gerenuk

#endif  // SRC_IR_IR_H_
