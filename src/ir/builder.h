// Fluent construction API for SerProgram functions.
//
// Workload "user programs" (the Spark/Hadoop UDFs of §4) are authored with
// this builder, playing the role Java/Scala source plays for the real
// Gerenuk: the builder output is the *original* object-based program, which
// the SER analyzer and transformer then rewrite for native execution.
#ifndef SRC_IR_BUILDER_H_
#define SRC_IR_BUILDER_H_

#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace gerenuk {

class FunctionBuilder {
 public:
  explicit FunctionBuilder(Function* func) : func_(func) {}

  // Declares a parameter (must precede any Local declarations).
  int Param(const std::string& name, IrType type);
  // Declares a local variable.
  int Local(const std::string& name, IrType type);

  int ConstI(int64_t v);
  int ConstF(double v);

  int Assign(int src);
  void AssignTo(int dst, int src);
  int BinOp(BinOpKind kind, int a, int b);
  int UnOp(UnOpKind kind, int a);

  // v = readObject() — the deserialization point (SER source).
  int Deserialize(const Klass* klass);
  // writeObject(v) — the serialization point (SER sink).
  void Serialize(int src);

  int FieldLoad(int obj, const Klass* klass, const std::string& field);
  void FieldStore(int obj, const Klass* klass, const std::string& field, int src);
  int ArrayLoad(int array, int index, IrType elem_type);
  void ArrayStore(int array, int index, int src);
  int ArrayLength(int array);
  int NewObject(const Klass* klass);
  int NewArray(const Klass* klass, int length);

  int Call(const Function* callee, std::vector<int> args);
  int CallNative(const std::string& name, std::vector<int> args, IrType ret);
  void MonitorEnter(int obj);
  void MonitorExit(int obj);

  int NewLabel();
  void PlaceLabel(int label);
  void Branch(int cond, int label);
  void Jump(int label);
  void Return(int src = -1);

  // Convenience: counted loop `for (i = 0; i < bound; ++i) body(i)`.
  template <typename Body>
  void For(int bound, Body&& body) {
    int i = Local("i", IrType::I64());
    AssignTo(i, ConstI(0));
    int head = NewLabel();
    int exit = NewLabel();
    PlaceLabel(head);
    int done = BinOp(BinOpKind::kGe, i, bound);
    Branch(done, exit);
    body(i);
    AssignTo(i, BinOp(BinOpKind::kAdd, i, ConstI(1)));
    Jump(head);
    PlaceLabel(exit);
  }

  // Convenience: `if (cond) then_body()`.
  template <typename Then>
  void If(int cond, Then&& then_body) {
    int skip = NewLabel();
    int not_cond = UnOp(UnOpKind::kNot, cond);
    Branch(not_cond, skip);
    then_body();
    PlaceLabel(skip);
  }

  // Finalizes the function (resolves labels). Call exactly once.
  void Done() { func_->ResolveLabels(); }

  Function* function() { return func_; }

 private:
  int Emit(Statement s);
  int NewVar(const std::string& name, IrType type);

  Function* func_;
  int next_label_ = 0;
};

}  // namespace gerenuk

#endif  // SRC_IR_BUILDER_H_
