#include "src/ir/builder.h"

#include "src/support/logging.h"

namespace gerenuk {

int FunctionBuilder::NewVar(const std::string& name, IrType type) {
  func_->vars.push_back({name, type});
  return static_cast<int>(func_->vars.size()) - 1;
}

int FunctionBuilder::Emit(Statement s) {
  func_->body.push_back(std::move(s));
  return static_cast<int>(func_->body.size()) - 1;
}

int FunctionBuilder::Param(const std::string& name, IrType type) {
  GERENUK_CHECK_EQ(func_->num_params, static_cast<int>(func_->vars.size()))
      << "params must be declared before locals";
  func_->num_params += 1;
  return NewVar(name, type);
}

int FunctionBuilder::Local(const std::string& name, IrType type) { return NewVar(name, type); }

int FunctionBuilder::ConstI(int64_t v) {
  int dst = NewVar("", IrType::I64());
  Statement s;
  s.op = Op::kConst;
  s.dst = dst;
  s.imm = Value::I64(v);
  Emit(std::move(s));
  return dst;
}

int FunctionBuilder::ConstF(double v) {
  int dst = NewVar("", IrType::F64());
  Statement s;
  s.op = Op::kConst;
  s.dst = dst;
  s.imm = Value::F64(v);
  Emit(std::move(s));
  return dst;
}

int FunctionBuilder::Assign(int src) {
  int dst = NewVar("", func_->vars[src].type);
  AssignTo(dst, src);
  return dst;
}

void FunctionBuilder::AssignTo(int dst, int src) {
  Statement s;
  s.op = Op::kAssign;
  s.dst = dst;
  s.a = src;
  Emit(std::move(s));
}

int FunctionBuilder::BinOp(BinOpKind kind, int a, int b) {
  bool is_float = func_->vars[a].type.kind == IrType::kF64 ||
                  func_->vars[b].type.kind == IrType::kF64;
  bool is_compare = kind == BinOpKind::kLt || kind == BinOpKind::kLe || kind == BinOpKind::kGt ||
                    kind == BinOpKind::kGe || kind == BinOpKind::kEq || kind == BinOpKind::kNe;
  int dst = NewVar("", is_compare || !is_float ? IrType::I64() : IrType::F64());
  Statement s;
  s.op = Op::kBinOp;
  s.binop = kind;
  s.dst = dst;
  s.a = a;
  s.b = b;
  Emit(std::move(s));
  return dst;
}

int FunctionBuilder::UnOp(UnOpKind kind, int a) {
  IrType type = func_->vars[a].type;
  if (kind == UnOpKind::kI2F) {
    type = IrType::F64();
  } else if (kind == UnOpKind::kF2I || kind == UnOpKind::kNot) {
    type = IrType::I64();
  }
  int dst = NewVar("", type);
  Statement s;
  s.op = Op::kUnOp;
  s.unop = kind;
  s.dst = dst;
  s.a = a;
  Emit(std::move(s));
  return dst;
}

int FunctionBuilder::Deserialize(const Klass* klass) {
  int dst = NewVar("", IrType::Ref(klass));
  Statement s;
  s.op = Op::kDeserialize;
  s.dst = dst;
  s.klass = klass;
  Emit(std::move(s));
  return dst;
}

void FunctionBuilder::Serialize(int src) {
  Statement s;
  s.op = Op::kSerialize;
  s.a = src;
  s.klass = func_->vars[src].type.klass;
  Emit(std::move(s));
}

int FunctionBuilder::FieldLoad(int obj, const Klass* klass, const std::string& field) {
  const FieldInfo* info = klass->FindField(field);
  GERENUK_CHECK(info != nullptr) << klass->name() << " has no field " << field;
  IrType type;
  switch (info->kind) {
    case FieldKind::kRef:
      type = IrType::Ref(info->target);
      break;
    case FieldKind::kF32:
    case FieldKind::kF64:
      type = IrType::F64();
      break;
    default:
      type = IrType::I64();
      break;
  }
  int dst = NewVar("", type);
  Statement s;
  s.op = Op::kFieldLoad;
  s.dst = dst;
  s.a = obj;
  s.klass = klass;
  s.field_index = static_cast<int>(info - klass->fields().data());
  s.elem_kind = info->kind;
  Emit(std::move(s));
  return dst;
}

void FunctionBuilder::FieldStore(int obj, const Klass* klass, const std::string& field, int src) {
  const FieldInfo* info = klass->FindField(field);
  GERENUK_CHECK(info != nullptr) << klass->name() << " has no field " << field;
  Statement s;
  s.op = Op::kFieldStore;
  s.a = obj;
  s.b = src;
  s.klass = klass;
  s.field_index = static_cast<int>(info - klass->fields().data());
  s.elem_kind = info->kind;
  Emit(std::move(s));
}

int FunctionBuilder::ArrayLoad(int array, int index, IrType elem_type) {
  int dst = NewVar("", elem_type);
  Statement s;
  s.op = Op::kArrayLoad;
  s.dst = dst;
  s.a = array;
  s.b = index;
  s.klass = func_->vars[array].type.klass;
  GERENUK_CHECK(s.klass != nullptr && s.klass->is_array());
  s.elem_kind = s.klass->element_kind();
  Emit(std::move(s));
  return dst;
}

void FunctionBuilder::ArrayStore(int array, int index, int src) {
  Statement s;
  s.op = Op::kArrayStore;
  s.a = array;
  s.b = index;
  s.c = src;
  s.klass = func_->vars[array].type.klass;
  GERENUK_CHECK(s.klass != nullptr && s.klass->is_array());
  s.elem_kind = s.klass->element_kind();
  Emit(std::move(s));
}

int FunctionBuilder::ArrayLength(int array) {
  int dst = NewVar("", IrType::I64());
  Statement s;
  s.op = Op::kArrayLength;
  s.dst = dst;
  s.a = array;
  s.klass = func_->vars[array].type.klass;
  Emit(std::move(s));
  return dst;
}

int FunctionBuilder::NewObject(const Klass* klass) {
  int dst = NewVar("", IrType::Ref(klass));
  Statement s;
  s.op = Op::kNewObject;
  s.dst = dst;
  s.klass = klass;
  Emit(std::move(s));
  return dst;
}

int FunctionBuilder::NewArray(const Klass* klass, int length) {
  GERENUK_CHECK(klass->is_array());
  int dst = NewVar("", IrType::Ref(klass));
  Statement s;
  s.op = Op::kNewArray;
  s.dst = dst;
  s.a = length;
  s.klass = klass;
  Emit(std::move(s));
  return dst;
}

int FunctionBuilder::Call(const Function* callee, std::vector<int> args) {
  GERENUK_CHECK_EQ(static_cast<int>(args.size()), callee->num_params);
  int dst = -1;
  if (callee->return_type.kind != IrType::kVoid) {
    dst = NewVar("", callee->return_type);
  }
  Statement s;
  s.op = Op::kCall;
  s.dst = dst;
  s.func = callee->id;
  s.args = std::move(args);
  Emit(std::move(s));
  return dst;
}

int FunctionBuilder::CallNative(const std::string& name, std::vector<int> args, IrType ret) {
  int dst = -1;
  if (ret.kind != IrType::kVoid) {
    dst = NewVar("", ret);
  }
  Statement s;
  s.op = Op::kCallNative;
  s.dst = dst;
  s.native_name = name;
  s.args = std::move(args);
  Emit(std::move(s));
  return dst;
}

void FunctionBuilder::MonitorEnter(int obj) {
  Statement s;
  s.op = Op::kMonitorEnter;
  s.a = obj;
  Emit(std::move(s));
}

void FunctionBuilder::MonitorExit(int obj) {
  Statement s;
  s.op = Op::kMonitorExit;
  s.a = obj;
  Emit(std::move(s));
}

int FunctionBuilder::NewLabel() { return next_label_++; }

void FunctionBuilder::PlaceLabel(int label) {
  Statement s;
  s.op = Op::kLabel;
  s.label = label;
  Emit(std::move(s));
}

void FunctionBuilder::Branch(int cond, int label) {
  Statement s;
  s.op = Op::kBranch;
  s.a = cond;
  s.label = label;
  Emit(std::move(s));
}

void FunctionBuilder::Jump(int label) {
  Statement s;
  s.op = Op::kJump;
  s.label = label;
  Emit(std::move(s));
}

void FunctionBuilder::Return(int src) {
  Statement s;
  s.op = Op::kReturn;
  s.a = src;
  Emit(std::move(s));
}

}  // namespace gerenuk
