#include "src/ir/ir.h"

#include <sstream>

namespace gerenuk {

const char* OpName(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kAssign: return "assign";
    case Op::kBinOp: return "binop";
    case Op::kUnOp: return "unop";
    case Op::kDeserialize: return "deserialize";
    case Op::kSerialize: return "serialize";
    case Op::kFieldLoad: return "fieldload";
    case Op::kFieldStore: return "fieldstore";
    case Op::kArrayLoad: return "arrayload";
    case Op::kArrayStore: return "arraystore";
    case Op::kArrayLength: return "arraylength";
    case Op::kNewObject: return "new";
    case Op::kNewArray: return "newarray";
    case Op::kCall: return "call";
    case Op::kCallNative: return "callnative";
    case Op::kMonitorEnter: return "monitorenter";
    case Op::kMonitorExit: return "monitorexit";
    case Op::kBranch: return "branch";
    case Op::kJump: return "jump";
    case Op::kLabel: return "label";
    case Op::kReturn: return "return";
    case Op::kGetAddress: return "getAddress";
    case Op::kGWriteObject: return "gWriteObject";
    case Op::kReadNative: return "readNative";
    case Op::kWriteNative: return "writeNative";
    case Op::kAddrOfField: return "addrOfField";
    case Op::kNativeArrayLength: return "nativeArrayLength";
    case Op::kNativeArrayLoad: return "nativeArrayLoad";
    case Op::kNativeArrayStore: return "nativeArrayStore";
    case Op::kAppendRecord: return "appendRecord";
    case Op::kAppendArray: return "appendArray";
    case Op::kAttachField: return "attachField";
    case Op::kAttachElement: return "attachElement";
    case Op::kNativeArrayElemAddr: return "nativeArrayElemAddr";
    case Op::kAbort: return "abort";
  }
  return "?";
}

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kLoadAndEscape: return "load-and-escape";
    case AbortReason::kDisruptNativeSpace: return "disrupt-the-native-space";
    case AbortReason::kInvokeNativeMethod: return "invoke-native-method";
    case AbortReason::kUseObjectMetainfo: return "use-object-metainfo";
    case AbortReason::kForced: return "forced";
  }
  return "?";
}

void Function::ResolveLabels() {
  label_index.clear();
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i].op == Op::kLabel) {
      int label = body[i].label;
      if (label >= static_cast<int>(label_index.size())) {
        label_index.resize(label + 1, -1);
      }
      label_index[label] = static_cast<int>(i);
    }
  }
}

Function* SerProgram::AddFunction(const std::string& name) {
  auto func = std::make_unique<Function>();
  func->id = static_cast<int>(functions.size());
  func->name = name;
  functions.push_back(std::move(func));
  return functions.back().get();
}

Function* SerProgram::FindFunction(const std::string& name) const {
  for (const auto& func : functions) {
    if (func->name == name) {
      return func.get();
    }
  }
  return nullptr;
}

int ImportFunction(SerProgram& dst, const SerProgram& src, int func_id,
                   std::map<int, int>& remap) {
  auto it = remap.find(func_id);
  if (it != remap.end()) {
    return it->second;
  }
  const Function& original = *src.functions[func_id];
  Function* copy = dst.AddFunction(original.name);
  remap[func_id] = copy->id;  // pre-insert to terminate on recursion
  copy->num_params = original.num_params;
  copy->return_type = original.return_type;
  copy->vars = original.vars;
  copy->body = original.body;
  for (Statement& s : copy->body) {
    if (s.op == Op::kCall) {
      s.func = ImportFunction(dst, src, s.func, remap);
    }
  }
  copy->ResolveLabels();
  return remap[func_id];
}

namespace {

std::string VarName(const Function& func, int var) {
  if (var < 0) {
    return "_";
  }
  std::ostringstream out;
  out << "v" << var;
  if (var < static_cast<int>(func.vars.size()) && !func.vars[var].name.empty()) {
    out << ":" << func.vars[var].name;
  }
  return out.str();
}

const char* BinOpName(BinOpKind kind) {
  switch (kind) {
    case BinOpKind::kAdd: return "+";
    case BinOpKind::kSub: return "-";
    case BinOpKind::kMul: return "*";
    case BinOpKind::kDiv: return "/";
    case BinOpKind::kRem: return "%";
    case BinOpKind::kLt: return "<";
    case BinOpKind::kLe: return "<=";
    case BinOpKind::kGt: return ">";
    case BinOpKind::kGe: return ">=";
    case BinOpKind::kEq: return "==";
    case BinOpKind::kNe: return "!=";
    case BinOpKind::kAnd: return "&";
    case BinOpKind::kOr: return "|";
    case BinOpKind::kXor: return "^";
    case BinOpKind::kShl: return "<<";
    case BinOpKind::kShr: return ">>";
    case BinOpKind::kMin: return "min";
    case BinOpKind::kMax: return "max";
  }
  return "?";
}

}  // namespace

std::string PrintFunction(const Function& func) {
  std::ostringstream out;
  out << "func " << func.name << "(";
  for (int i = 0; i < func.num_params; ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << VarName(func, i);
  }
  out << ") {\n";
  for (size_t i = 0; i < func.body.size(); ++i) {
    const Statement& s = func.body[i];
    out << "  [" << i << "] ";
    switch (s.op) {
      case Op::kConst:
        out << VarName(func, s.dst) << " = "
            << (s.imm.tag == ValueTag::kF64 ? std::to_string(s.imm.d) : std::to_string(s.imm.i));
        break;
      case Op::kAssign:
        out << VarName(func, s.dst) << " = " << VarName(func, s.a);
        break;
      case Op::kBinOp:
        out << VarName(func, s.dst) << " = " << VarName(func, s.a) << " " << BinOpName(s.binop)
            << " " << VarName(func, s.b);
        break;
      case Op::kUnOp:
        out << VarName(func, s.dst) << " = unop " << VarName(func, s.a);
        break;
      case Op::kDeserialize:
        out << VarName(func, s.dst) << " = readObject()";
        break;
      case Op::kSerialize:
        out << "writeObject(" << VarName(func, s.a) << ")";
        break;
      case Op::kFieldLoad:
        out << VarName(func, s.dst) << " = " << VarName(func, s.a) << "."
            << s.klass->field(s.field_index).name;
        break;
      case Op::kFieldStore:
        out << VarName(func, s.a) << "." << s.klass->field(s.field_index).name << " = "
            << VarName(func, s.b);
        break;
      case Op::kArrayLoad:
        out << VarName(func, s.dst) << " = " << VarName(func, s.a) << "[" << VarName(func, s.b)
            << "]";
        break;
      case Op::kArrayStore:
        out << VarName(func, s.a) << "[" << VarName(func, s.b) << "] = " << VarName(func, s.c);
        break;
      case Op::kArrayLength:
        out << VarName(func, s.dst) << " = " << VarName(func, s.a) << ".length";
        break;
      case Op::kNewObject:
        out << VarName(func, s.dst) << " = new " << s.klass->name();
        break;
      case Op::kNewArray:
        out << VarName(func, s.dst) << " = new " << s.klass->name() << "[" << VarName(func, s.a)
            << "]";
        break;
      case Op::kCall: {
        out << VarName(func, s.dst) << " = call#" << s.func << "(";
        for (size_t j = 0; j < s.args.size(); ++j) {
          out << (j > 0 ? ", " : "") << VarName(func, s.args[j]);
        }
        out << ")";
        break;
      }
      case Op::kCallNative: {
        out << VarName(func, s.dst) << " = native " << s.native_name << "(";
        for (size_t j = 0; j < s.args.size(); ++j) {
          out << (j > 0 ? ", " : "") << VarName(func, s.args[j]);
        }
        out << ")";
        break;
      }
      case Op::kMonitorEnter:
        out << "monitorenter " << VarName(func, s.a);
        break;
      case Op::kMonitorExit:
        out << "monitorexit " << VarName(func, s.a);
        break;
      case Op::kBranch:
        out << "if " << VarName(func, s.a) << " goto L" << s.label;
        break;
      case Op::kJump:
        out << "goto L" << s.label;
        break;
      case Op::kLabel:
        out << "L" << s.label << ":";
        break;
      case Op::kReturn:
        out << "return" << (s.a >= 0 ? " " + VarName(func, s.a) : "");
        break;
      case Op::kGetAddress:
        out << VarName(func, s.dst) << " = getAddress()";
        break;
      case Op::kGWriteObject:
        out << "gWriteObject(" << VarName(func, s.a) << ")";
        break;
      case Op::kReadNative:
        out << VarName(func, s.dst) << " = readNative(" << VarName(func, s.a) << ", expr#"
            << s.expr_id << ", " << FieldKindName(s.elem_kind) << ")";
        break;
      case Op::kWriteNative:
        out << "writeNative(" << VarName(func, s.a) << ", expr#" << s.expr_id << ", "
            << FieldKindName(s.elem_kind) << ", " << VarName(func, s.b) << ")";
        break;
      case Op::kAddrOfField:
        out << VarName(func, s.dst) << " = " << VarName(func, s.a) << " + resolveOffset(expr#"
            << s.expr_id << ")";
        break;
      case Op::kNativeArrayLength:
        out << VarName(func, s.dst) << " = nativeLength(" << VarName(func, s.a) << ")";
        break;
      case Op::kNativeArrayLoad:
        out << VarName(func, s.dst) << " = nativeLoad(" << VarName(func, s.a) << "["
            << VarName(func, s.b) << "], " << FieldKindName(s.elem_kind) << ")";
        break;
      case Op::kNativeArrayStore:
        out << "nativeStore(" << VarName(func, s.a) << "[" << VarName(func, s.b) << "], "
            << FieldKindName(s.elem_kind) << ", " << VarName(func, s.c) << ")";
        break;
      case Op::kAppendRecord:
        out << VarName(func, s.dst) << " = appendToBuffer(" << s.klass->name() << ")";
        break;
      case Op::kAppendArray:
        out << VarName(func, s.dst) << " = appendToBuffer(" << s.klass->name() << "["
            << VarName(func, s.a) << "])";
        break;
      case Op::kAttachField:
        out << "attach " << VarName(func, s.a) << "." << s.klass->field(s.field_index).name
            << " := " << VarName(func, s.b);
        break;
      case Op::kAttachElement:
        out << "attach " << VarName(func, s.a) << "[" << VarName(func, s.b)
            << "] := " << VarName(func, s.c);
        break;
      case Op::kNativeArrayElemAddr:
        out << VarName(func, s.dst) << " = elemAddr(" << VarName(func, s.a) << "["
            << VarName(func, s.b) << "])";
        break;
      case Op::kAbort:
        out << "ABORT(" << AbortReasonName(s.abort_reason) << ")";
        break;
    }
    out << "\n";
  }
  out << "}\n";
  return out.str();
}

std::string PrintProgram(const SerProgram& program) {
  std::string out;
  for (const auto& func : program.functions) {
    out += PrintFunction(*func);
    out += "\n";
  }
  return out;
}

}  // namespace gerenuk
