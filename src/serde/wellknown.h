// Well-known managed types shared by workloads and engines: String (byte
// payload, as Hadoop's Text stores UTF-8), boxed primitives, and Tuple2
// instantiations. The paper's workloads create billions of these small
// objects — they are the main source of header/pointer overhead Figure 5
// measures.
#ifndef SRC_SERDE_WELLKNOWN_H_
#define SRC_SERDE_WELLKNOWN_H_

#include <string>
#include <string_view>

#include "src/runtime/heap.h"
#include "src/runtime/klass.h"

namespace gerenuk {

// Registers the common types in a heap's registry and caches the Klass
// pointers. Construct one per Heap.
class WellKnown {
 public:
  explicit WellKnown(Heap& heap);

  const Klass* string_klass() const { return string_; }
  const Klass* byte_array() const { return byte_array_; }
  const Klass* int_array() const { return int_array_; }
  const Klass* long_array() const { return long_array_; }
  const Klass* double_array() const { return double_array_; }
  const Klass* boxed_int() const { return boxed_int_; }
  const Klass* boxed_long() const { return boxed_long_; }
  const Klass* boxed_double() const { return boxed_double_; }

  // String helpers. AllocString may GC; the caller's other refs must be
  // rooted.
  ObjRef AllocString(std::string_view text) const;
  std::string GetString(ObjRef str) const;
  int32_t StringLength(ObjRef str) const;

  ObjRef AllocBoxedInt(int32_t v) const;
  ObjRef AllocBoxedLong(int64_t v) const;
  ObjRef AllocBoxedDouble(double v) const;
  int32_t UnboxInt(ObjRef box) const;
  int64_t UnboxLong(ObjRef box) const;
  double UnboxDouble(ObjRef box) const;

  // Defines (or finds) a Tuple2 instantiation. Field kinds may be kRef with
  // the given klass, or primitives (pass nullptr klass).
  const Klass* DefineTuple2(const std::string& name, FieldKind first_kind,
                            const Klass* first_klass, FieldKind second_kind,
                            const Klass* second_klass) const;

 private:
  Heap& heap_;
  const Klass* byte_array_;
  const Klass* int_array_;
  const Klass* long_array_;
  const Klass* double_array_;
  const Klass* string_;
  const Klass* boxed_int_;
  const Klass* boxed_long_;
  const Klass* boxed_double_;
};

}  // namespace gerenuk

#endif  // SRC_SERDE_WELLKNOWN_H_
