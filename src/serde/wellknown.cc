#include "src/serde/wellknown.h"

#include "src/runtime/roots.h"

namespace gerenuk {

WellKnown::WellKnown(Heap& heap) : heap_(heap) {
  KlassRegistry& reg = heap.klasses();
  byte_array_ = reg.DefineArray(FieldKind::kI8);
  int_array_ = reg.DefineArray(FieldKind::kI32);
  long_array_ = reg.DefineArray(FieldKind::kI64);
  double_array_ = reg.DefineArray(FieldKind::kF64);
  auto define_once = [&reg](const std::string& name,
                            std::vector<FieldInfo> fields) -> const Klass* {
    if (const Klass* existing = reg.Find(name)) {
      return existing;
    }
    return reg.DefineClass(name, std::move(fields));
  };
  // Strings carry a byte payload, as Hadoop Text / compact JVM strings do.
  string_ = define_once("String", {{"value", FieldKind::kRef, byte_array_, 0}});
  boxed_int_ = define_once("Integer", {{"value", FieldKind::kI32, nullptr, 0}});
  boxed_long_ = define_once("Long", {{"value", FieldKind::kI64, nullptr, 0}});
  boxed_double_ = define_once("Double", {{"value", FieldKind::kF64, nullptr, 0}});
}

ObjRef WellKnown::AllocString(std::string_view text) const {
  RootScope scope(heap_);
  size_t arr_slot = scope.Push(heap_.AllocArray(byte_array_, static_cast<int64_t>(text.size())));
  ObjRef arr = scope.Get(arr_slot);
  for (size_t i = 0; i < text.size(); ++i) {
    heap_.ASet<int8_t>(arr, static_cast<int64_t>(i), static_cast<int8_t>(text[i]));
  }
  ObjRef str = heap_.AllocObject(string_);
  heap_.SetRef(str, string_->FindField("value")->offset, scope.Get(arr_slot));
  return str;
}

std::string WellKnown::GetString(ObjRef str) const {
  ObjRef arr = heap_.GetRef(str, string_->FindField("value")->offset);
  GERENUK_CHECK_NE(arr, kNullRef);
  int64_t len = heap_.ArrayLength(arr);
  std::string out(static_cast<size_t>(len), '\0');
  for (int64_t i = 0; i < len; ++i) {
    out[static_cast<size_t>(i)] = static_cast<char>(heap_.AGet<int8_t>(arr, i));
  }
  return out;
}

int32_t WellKnown::StringLength(ObjRef str) const {
  ObjRef arr = heap_.GetRef(str, string_->FindField("value")->offset);
  GERENUK_CHECK_NE(arr, kNullRef);
  return static_cast<int32_t>(heap_.ArrayLength(arr));
}

ObjRef WellKnown::AllocBoxedInt(int32_t v) const {
  ObjRef box = heap_.AllocObject(boxed_int_);
  heap_.SetPrim<int32_t>(box, boxed_int_->FindField("value")->offset, v);
  return box;
}

ObjRef WellKnown::AllocBoxedLong(int64_t v) const {
  ObjRef box = heap_.AllocObject(boxed_long_);
  heap_.SetPrim<int64_t>(box, boxed_long_->FindField("value")->offset, v);
  return box;
}

ObjRef WellKnown::AllocBoxedDouble(double v) const {
  ObjRef box = heap_.AllocObject(boxed_double_);
  heap_.SetPrim<double>(box, boxed_double_->FindField("value")->offset, v);
  return box;
}

int32_t WellKnown::UnboxInt(ObjRef box) const {
  return heap_.GetPrim<int32_t>(box, boxed_int_->FindField("value")->offset);
}

int64_t WellKnown::UnboxLong(ObjRef box) const {
  return heap_.GetPrim<int64_t>(box, boxed_long_->FindField("value")->offset);
}

double WellKnown::UnboxDouble(ObjRef box) const {
  return heap_.GetPrim<double>(box, boxed_double_->FindField("value")->offset);
}

const Klass* WellKnown::DefineTuple2(const std::string& name, FieldKind first_kind,
                                     const Klass* first_klass, FieldKind second_kind,
                                     const Klass* second_klass) const {
  if (const Klass* existing = heap_.klasses().Find(name)) {
    return existing;
  }
  return heap_.klasses().DefineClass(name, {
                                               {"_1", first_kind, first_klass, 0},
                                               {"_2", second_kind, second_klass, 0},
                                           });
}

}  // namespace gerenuk
