#include "src/serde/inline_serializer.h"

#include "src/runtime/roots.h"

namespace gerenuk {

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

int64_t InlineSerializer::BodySize(ObjRef root, const Klass* klass) {
  GERENUK_CHECK(root != kNullRef) << "inline format cannot represent null (" << klass->name()
                                  << ")";
  if (klass->is_array()) {
    int64_t len = heap_.ArrayLength(root);
    if (klass->element_kind() != FieldKind::kRef) {
      return 4 + len * klass->element_size();
    }
    // Record elements of variable-size classes carry a per-element size
    // prefix (the paper's "special field storing the size of the entire data
    // structure"), which is what makes skipping over records possible.
    bool fixed = KlassHasFixedInlineSize(klass->element_klass());
    int64_t total = 4;
    for (int64_t i = 0; i < len; ++i) {
      total += (fixed ? 0 : 4) + BodySize(heap_.AGetRef(root, i), klass->element_klass());
    }
    return total;
  }
  int64_t total = 0;
  for (const FieldInfo& field : klass->fields()) {
    if (field.kind != FieldKind::kRef) {
      total += FieldKindSize(field.kind);
    } else {
      total += BodySize(heap_.GetRef(root, field.offset), field.target);
    }
  }
  return total;
}

void InlineSerializer::WriteRecord(ObjRef root, const Klass* klass, ByteBuffer& out) {
  size_t size_pos = out.size();
  out.WriteU32(0);
  size_t body_start = out.size();
  WriteBody(root, klass, out, 0);
  out.PatchU32(size_pos, static_cast<uint32_t>(out.size() - body_start));
}

void InlineSerializer::WriteBody(ObjRef obj, const Klass* klass, ByteBuffer& out, int depth) {
  GERENUK_CHECK_LT(depth, kMaxDepth);
  GERENUK_CHECK(obj != kNullRef) << "inline format cannot represent null (" << klass->name()
                                 << ")";
  if (klass->is_array()) {
    int64_t len = heap_.ArrayLength(obj);
    out.WriteI32(static_cast<int32_t>(len));
    switch (klass->element_kind()) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteU8(static_cast<uint8_t>(heap_.AGet<int8_t>(obj, i)));
        }
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteU16(static_cast<uint16_t>(heap_.AGet<int16_t>(obj, i)));
        }
        break;
      case FieldKind::kI32:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteI32(heap_.AGet<int32_t>(obj, i));
        }
        break;
      case FieldKind::kF32:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteF32(heap_.AGet<float>(obj, i));
        }
        break;
      case FieldKind::kI64:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteI64(heap_.AGet<int64_t>(obj, i));
        }
        break;
      case FieldKind::kF64:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteF64(heap_.AGet<double>(obj, i));
        }
        break;
      case FieldKind::kRef: {
        bool fixed = KlassHasFixedInlineSize(klass->element_klass());
        for (int64_t i = 0; i < len; ++i) {
          if (fixed) {
            WriteBody(heap_.AGetRef(obj, i), klass->element_klass(), out, depth + 1);
          } else {
            size_t size_pos = out.size();
            out.WriteU32(0);
            size_t body_start = out.size();
            WriteBody(heap_.AGetRef(obj, i), klass->element_klass(), out, depth + 1);
            out.PatchU32(size_pos, static_cast<uint32_t>(out.size() - body_start));
          }
        }
        break;
      }
    }
    return;
  }
  for (const FieldInfo& field : klass->fields()) {
    switch (field.kind) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        out.WriteU8(static_cast<uint8_t>(heap_.GetPrim<int8_t>(obj, field.offset)));
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        out.WriteU16(static_cast<uint16_t>(heap_.GetPrim<int16_t>(obj, field.offset)));
        break;
      case FieldKind::kI32:
        out.WriteI32(heap_.GetPrim<int32_t>(obj, field.offset));
        break;
      case FieldKind::kF32:
        out.WriteF32(heap_.GetPrim<float>(obj, field.offset));
        break;
      case FieldKind::kI64:
        out.WriteI64(heap_.GetPrim<int64_t>(obj, field.offset));
        break;
      case FieldKind::kF64:
        out.WriteF64(heap_.GetPrim<double>(obj, field.offset));
        break;
      case FieldKind::kRef:
        WriteBody(heap_.GetRef(obj, field.offset), field.target, out, depth + 1);
        break;
    }
  }
}

ObjRef InlineSerializer::ReadRecord(const Klass* klass, ByteReader& in) {
  uint32_t body_size = in.ReadU32();
  size_t body_start = in.position();
  ObjRef result = ReadBody(klass, in);
  GERENUK_CHECK_EQ(in.position() - body_start, body_size);
  return result;
}

ObjRef InlineSerializer::ReadBody(const Klass* klass, ByteReader& in) {
  RootScope scope(heap_);
  if (klass->is_array()) {
    int64_t len = in.ReadI32();
    size_t arr_slot = scope.Push(heap_.AllocArray(klass, len));
    switch (klass->element_kind()) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<int8_t>(scope.Get(arr_slot), i, static_cast<int8_t>(in.ReadU8()));
        }
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<int16_t>(scope.Get(arr_slot), i, static_cast<int16_t>(in.ReadU16()));
        }
        break;
      case FieldKind::kI32:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<int32_t>(scope.Get(arr_slot), i, in.ReadI32());
        }
        break;
      case FieldKind::kF32:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<float>(scope.Get(arr_slot), i, in.ReadF32());
        }
        break;
      case FieldKind::kI64:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<int64_t>(scope.Get(arr_slot), i, in.ReadI64());
        }
        break;
      case FieldKind::kF64:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<double>(scope.Get(arr_slot), i, in.ReadF64());
        }
        break;
      case FieldKind::kRef: {
        bool fixed = KlassHasFixedInlineSize(klass->element_klass());
        for (int64_t i = 0; i < len; ++i) {
          if (!fixed) {
            in.ReadU32();  // per-element size prefix (used only for skipping)
          }
          ObjRef elem = ReadBody(klass->element_klass(), in);
          heap_.ASetRef(scope.Get(arr_slot), i, elem);
        }
        break;
      }
    }
    return scope.Get(arr_slot);
  }
  size_t obj_slot = scope.Push(heap_.AllocObject(klass));
  for (const FieldInfo& field : klass->fields()) {
    switch (field.kind) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        heap_.SetPrim<int8_t>(scope.Get(obj_slot), field.offset, static_cast<int8_t>(in.ReadU8()));
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        heap_.SetPrim<int16_t>(scope.Get(obj_slot), field.offset,
                               static_cast<int16_t>(in.ReadU16()));
        break;
      case FieldKind::kI32:
        heap_.SetPrim<int32_t>(scope.Get(obj_slot), field.offset, in.ReadI32());
        break;
      case FieldKind::kF32:
        heap_.SetPrim<float>(scope.Get(obj_slot), field.offset, in.ReadF32());
        break;
      case FieldKind::kI64:
        heap_.SetPrim<int64_t>(scope.Get(obj_slot), field.offset, in.ReadI64());
        break;
      case FieldKind::kF64:
        heap_.SetPrim<double>(scope.Get(obj_slot), field.offset, in.ReadF64());
        break;
      case FieldKind::kRef: {
        ObjRef child = ReadBody(field.target, in);
        heap_.SetRef(scope.Get(obj_slot), field.offset, child);
        break;
      }
    }
  }
  return scope.Get(obj_slot);
}

}  // namespace gerenuk
