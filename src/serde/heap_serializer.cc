#include "src/serde/heap_serializer.h"

#include "src/runtime/roots.h"

namespace gerenuk {

namespace {
// Data structures in dataflow programs are shallow trees (the paper reports
// 3-4 levels at most); a generous depth bound turns accidental cycles into a
// crisp failure instead of a stack overflow.
constexpr int kMaxDepth = 64;
}  // namespace

void HeapSerializer::Serialize(ObjRef root, const Klass* klass, ByteBuffer& out) {
  size_t before = out.size();
  SerializeValue(root, klass, out, 0);
  stats_.wire_bytes += static_cast<int64_t>(out.size() - before);
}

void HeapSerializer::SerializeValue(ObjRef obj, const Klass* klass, ByteBuffer& out, int depth) {
  GERENUK_CHECK_LT(depth, kMaxDepth);
  if (obj == kNullRef) {
    out.WriteU8(0);
    return;
  }
  out.WriteU8(1);
  stats_.objects += 1;
  if (klass->is_array()) {
    int64_t len = heap_.ArrayLength(obj);
    out.WriteVarU32(static_cast<uint32_t>(len));
    switch (klass->element_kind()) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteU8(static_cast<uint8_t>(heap_.AGet<int8_t>(obj, i)));
        }
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteU16(static_cast<uint16_t>(heap_.AGet<int16_t>(obj, i)));
        }
        break;
      case FieldKind::kI32:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteVarI32(heap_.AGet<int32_t>(obj, i));
        }
        break;
      case FieldKind::kF32:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteF32(heap_.AGet<float>(obj, i));
        }
        break;
      case FieldKind::kI64:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteVarI64(heap_.AGet<int64_t>(obj, i));
        }
        break;
      case FieldKind::kF64:
        for (int64_t i = 0; i < len; ++i) {
          out.WriteF64(heap_.AGet<double>(obj, i));
        }
        break;
      case FieldKind::kRef:
        for (int64_t i = 0; i < len; ++i) {
          SerializeValue(heap_.AGetRef(obj, i), klass->element_klass(), out, depth + 1);
        }
        break;
    }
    return;
  }
  for (const FieldInfo& field : klass->fields()) {
    switch (field.kind) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        out.WriteU8(static_cast<uint8_t>(heap_.GetPrim<int8_t>(obj, field.offset)));
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        out.WriteU16(static_cast<uint16_t>(heap_.GetPrim<int16_t>(obj, field.offset)));
        break;
      case FieldKind::kI32:
        out.WriteVarI32(heap_.GetPrim<int32_t>(obj, field.offset));
        break;
      case FieldKind::kF32:
        out.WriteF32(heap_.GetPrim<float>(obj, field.offset));
        break;
      case FieldKind::kI64:
        out.WriteVarI64(heap_.GetPrim<int64_t>(obj, field.offset));
        break;
      case FieldKind::kF64:
        out.WriteF64(heap_.GetPrim<double>(obj, field.offset));
        break;
      case FieldKind::kRef:
        SerializeValue(heap_.GetRef(obj, field.offset), field.target, out, depth + 1);
        break;
    }
  }
}

ObjRef HeapSerializer::Deserialize(const Klass* klass, ByteReader& in) {
  return DeserializeValue(klass, in, 0);
}

ObjRef HeapSerializer::DeserializeValue(const Klass* klass, ByteReader& in, int depth) {
  GERENUK_CHECK_LT(depth, kMaxDepth);
  if (in.ReadU8() == 0) {
    return kNullRef;
  }
  RootScope scope(heap_);
  if (klass->is_array()) {
    int64_t len = in.ReadVarU32();
    size_t arr_slot = scope.Push(heap_.AllocArray(klass, len));
    switch (klass->element_kind()) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<int8_t>(scope.Get(arr_slot), i, static_cast<int8_t>(in.ReadU8()));
        }
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<int16_t>(scope.Get(arr_slot), i, static_cast<int16_t>(in.ReadU16()));
        }
        break;
      case FieldKind::kI32:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<int32_t>(scope.Get(arr_slot), i, in.ReadVarI32());
        }
        break;
      case FieldKind::kF32:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<float>(scope.Get(arr_slot), i, in.ReadF32());
        }
        break;
      case FieldKind::kI64:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<int64_t>(scope.Get(arr_slot), i, in.ReadVarI64());
        }
        break;
      case FieldKind::kF64:
        for (int64_t i = 0; i < len; ++i) {
          heap_.ASet<double>(scope.Get(arr_slot), i, in.ReadF64());
        }
        break;
      case FieldKind::kRef:
        for (int64_t i = 0; i < len; ++i) {
          ObjRef elem = DeserializeValue(klass->element_klass(), in, depth + 1);
          heap_.ASetRef(scope.Get(arr_slot), i, elem);
        }
        break;
    }
    return scope.Get(arr_slot);
  }
  size_t obj_slot = scope.Push(heap_.AllocObject(klass));
  for (const FieldInfo& field : klass->fields()) {
    switch (field.kind) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        heap_.SetPrim<int8_t>(scope.Get(obj_slot), field.offset, static_cast<int8_t>(in.ReadU8()));
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        heap_.SetPrim<int16_t>(scope.Get(obj_slot), field.offset,
                               static_cast<int16_t>(in.ReadU16()));
        break;
      case FieldKind::kI32:
        heap_.SetPrim<int32_t>(scope.Get(obj_slot), field.offset, in.ReadVarI32());
        break;
      case FieldKind::kF32:
        heap_.SetPrim<float>(scope.Get(obj_slot), field.offset, in.ReadF32());
        break;
      case FieldKind::kI64:
        heap_.SetPrim<int64_t>(scope.Get(obj_slot), field.offset, in.ReadVarI64());
        break;
      case FieldKind::kF64:
        heap_.SetPrim<double>(scope.Get(obj_slot), field.offset, in.ReadF64());
        break;
      case FieldKind::kRef: {
        ObjRef child = DeserializeValue(field.target, in, depth + 1);
        heap_.SetRef(scope.Get(obj_slot), field.offset, child);
        break;
      }
    }
  }
  return scope.Get(obj_slot);
}

int64_t HeapSerializer::MeasureHeapBytes(ObjRef root, const Klass* klass) {
  if (root == kNullRef) {
    return 0;
  }
  int64_t total;
  if (klass->is_array()) {
    total = klass->ArraySize(heap_.ArrayLength(root));
    if (klass->element_kind() == FieldKind::kRef) {
      int64_t len = heap_.ArrayLength(root);
      for (int64_t i = 0; i < len; ++i) {
        total += MeasureHeapBytes(heap_.AGetRef(root, i), klass->element_klass());
      }
    }
    return total;
  }
  total = klass->instance_size();
  for (const FieldInfo& field : klass->fields()) {
    if (field.kind == FieldKind::kRef) {
      total += MeasureHeapBytes(heap_.GetRef(root, field.offset), field.target);
    }
  }
  return total;
}

}  // namespace gerenuk
