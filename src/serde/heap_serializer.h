// Kryo-like object-graph serializer for the managed mini-heap.
//
// This is the baseline path the paper's unmodified Spark/Hadoop use at every
// shuffle: walk the object graph rooted at a data item, write a compact wire
// form (varint ints, null markers, inline array lengths), and rebuild the
// graph object-by-object on the receiving side. Both directions are real
// work proportional to the number of objects — exactly the cost Gerenuk
// eliminates.
//
// The serializer is schema-directed: the declared Klass of the root tells it
// the type of every field, so no class names travel on the wire (our
// equivalent of Kryo's registered-class-ids fast path).
#ifndef SRC_SERDE_HEAP_SERIALIZER_H_
#define SRC_SERDE_HEAP_SERIALIZER_H_

#include <cstdint>

#include "src/runtime/heap.h"
#include "src/support/bytes.h"

namespace gerenuk {

struct SerdeStats {
  // Figure 5 instrumentation: bytes occupied by the object graph on the
  // managed heap (headers, padding, pointers included) vs the bytes of the
  // serialized form.
  int64_t heap_bytes = 0;
  int64_t wire_bytes = 0;
  int64_t objects = 0;
};

class HeapSerializer {
 public:
  explicit HeapSerializer(Heap& heap) : heap_(heap) {}

  // Serializes the data structure rooted at `root` (declared class `klass`).
  void Serialize(ObjRef root, const Klass* klass, ByteBuffer& out);

  // Rebuilds a data structure of declared class `klass` from `in`,
  // allocating on the heap. May trigger GC; the caller's refs must be
  // rooted.
  ObjRef Deserialize(const Klass* klass, ByteReader& in);

  // Heap footprint of the graph rooted at `root`: headers + fields +
  // padding, every reachable object counted once (the graphs are trees, so
  // a plain recursive sum is exact).
  int64_t MeasureHeapBytes(ObjRef root, const Klass* klass);

  const SerdeStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SerdeStats{}; }

 private:
  void SerializeValue(ObjRef obj, const Klass* klass, ByteBuffer& out, int depth);
  // Returns a rooted slot index within `scope` (see .cc); declared here as
  // returning the built ref directly, with rooting handled internally.
  ObjRef DeserializeValue(const Klass* klass, ByteReader& in, int depth);

  Heap& heap_;
  SerdeStats stats_;
};

}  // namespace gerenuk

#endif  // SRC_SERDE_HEAP_SERIALIZER_H_
