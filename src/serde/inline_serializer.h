// The Gerenuk serializer (§3.6): represents a data structure rooted at a
// top-level object as a single pointer-free byte sequence.
//
// Wire format, which the data structure analyzer's offset computation must
// match exactly (verified by property tests):
//
//   record       := [body_size : i32] [body]
//   body(C)      := concatenation of C's declared fields, in order:
//                     primitive field  -> fixed-width raw bytes
//                     ref to array     -> [length : i32] [element bodies]
//                     ref to class D   -> body(D), inlined
//   body(T[])    := [length : i32] [body(elem) ...]
//
// All headers and pointers are eliminated; every array carries its length
// inline; the top-level record carries the size of the whole structure (the
// paper's "special field"). Field offsets inside a body are either static
// constants or symbolic expressions over preceding array lengths — exactly
// what §3.3 computes. Null references cannot be represented (there is no
// slot to put a null in), so serializing a null is a hard error; the
// transformed program only reaches this serializer with fully-built records.
#ifndef SRC_SERDE_INLINE_SERIALIZER_H_
#define SRC_SERDE_INLINE_SERIALIZER_H_

#include <cstdint>

#include "src/runtime/heap.h"
#include "src/support/bytes.h"

namespace gerenuk {

class InlineSerializer {
 public:
  explicit InlineSerializer(Heap& heap) : heap_(heap) {}

  // Size in bytes of body(klass) for the structure rooted at `root`.
  int64_t BodySize(ObjRef root, const Klass* klass);

  // Writes [body_size][body] for the structure rooted at `root`.
  void WriteRecord(ObjRef root, const Klass* klass, ByteBuffer& out);

  // Reads one [body_size][body] record and materializes it as heap objects.
  // This is the slow-path deserialization used when a SER aborts. May GC.
  ObjRef ReadRecord(const Klass* klass, ByteReader& in);

  // Reads a record body (no size prefix) of the given class.
  ObjRef ReadBody(const Klass* klass, ByteReader& in);

 private:
  void WriteBody(ObjRef obj, const Klass* klass, ByteBuffer& out, int depth);

  Heap& heap_;
};

}  // namespace gerenuk

#endif  // SRC_SERDE_INLINE_SERIALIZER_H_
