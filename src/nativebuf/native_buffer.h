// Native buffers: task-scoped regions of inlined records.
//
// A NativePartition is the Gerenuk runtime's unit of data: the input a SER
// reads (bytes that arrived from the "network" or "disk") and the output it
// produces. Records are stored back-to-back as [size:u32][body]; addresses
// handed to the transformed program are raw pointers to record *bodies*, so
// readNative(addr, offset, n) is a plain memory read and the record's size
// field sits at addr - 4.
//
// Storage is chunked so record addresses stay stable while the partition
// grows, and the whole partition is freed at once when the task finishes —
// the paper's region-based memory management for data objects: "we can
// safely release the buffer as a whole at the end of the task without even
// needing to scan the items".
#ifndef SRC_NATIVEBUF_NATIVE_BUFFER_H_
#define SRC_NATIVEBUF_NATIVE_BUFFER_H_

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/analysis/layout.h"
#include "src/support/bytes.h"
#include "src/support/metrics.h"

namespace gerenuk {

// Thrown by NativePartition::Parse when the wire bytes are structurally
// malformed: truncated stream, length prefix larger than the remaining
// bytes, missing checksum trailer. Defined here (not next to TaskError)
// because nativebuf sits below exec in the layering; exec/shuffle callers
// catch it at the decode boundary and reclassify as
// TaskError(kCorruptInput) so a hostile byte stream fails closed instead
// of crashing the process on a bounds check.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what) : std::runtime_error(what) {}
};

class NativePartition {
 public:
  // `tracker`, when given, sees allocations/frees so engine-level peak
  // memory (heap + native) can be reported like the paper's pmap numbers.
  explicit NativePartition(MemoryTracker* tracker = nullptr);
  ~NativePartition();
  NativePartition(NativePartition&& other) noexcept;
  NativePartition& operator=(NativePartition&& other) noexcept;
  NativePartition(const NativePartition&) = delete;
  NativePartition& operator=(const NativePartition&) = delete;

  // Appends one record; returns the address of its body.
  int64_t AppendRecord(const uint8_t* body, uint32_t body_size);
  // Reserves an uninitialized record slot (the builder renders into it).
  uint8_t* ReserveRecord(uint32_t body_size, int64_t* body_addr);

  size_t record_count() const { return records_.size(); }
  int64_t record_addr(size_t i) const { return records_[i]; }
  uint32_t record_size(size_t i) const;
  const std::vector<int64_t>& records() const { return records_; }
  int64_t bytes_used() const { return bytes_used_; }

  // --- Integrity (see DESIGN.md "Fault model & recovery") ---
  // A partition is sealed when its producer commits it: Seal records a
  // checksum over every record's size and body. Consumers verify at the
  // stage-input boundary; a mismatch means the bytes rotted after commit —
  // an error no re-execution can repair. Appending unseals.
  void Seal();
  bool sealed() const { return sealed_; }
  uint64_t checksum() const { return checksum_; }
  // True if the partition is unsealed or its bytes still match the seal.
  bool VerifyChecksum() const;

  // Shuffle-wire form: [count:u32]([size:u32][body])*[checksum:u64]. Writing
  // and parsing are byte copies — the native format IS the wire format,
  // which is why Gerenuk pays no serialization at shuffle boundaries. The
  // trailing checksum carries the integrity seal across the wire: Parse
  // returns a sealed partition (verified lazily at stage input, not here).
  // Parse validates the structure before touching any record — a truncated
  // stream, an oversized length prefix, or a missing trailer throws
  // WireFormatError rather than tripping a fatal bounds check.
  void SerializeTo(ByteBuffer& out) const;
  static NativePartition Parse(ByteReader& in, MemoryTracker* tracker = nullptr);

  // Frees every chunk (the whole-region deallocation of §3.6).
  void Release();

 private:
  static constexpr size_t kChunkSize = 256 * 1024;
  uint8_t* Allocate(size_t n);
  uint64_t ComputeChecksum() const;

  MemoryTracker* tracker_ = nullptr;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  size_t chunk_used_ = 0;       // bytes used in the last chunk
  size_t chunk_capacity_ = 0;   // capacity of the last chunk
  int64_t bytes_used_ = 0;
  std::vector<int64_t> records_;  // body addresses
  bool sealed_ = false;
  uint64_t checksum_ = 0;
};

// ---------------------------------------------------------------------------
// Reads over committed (in-partition) record bytes
// ---------------------------------------------------------------------------

inline int32_t NativeReadI32(int64_t addr) {
  int32_t v;
  std::memcpy(&v, reinterpret_cast<const uint8_t*>(addr), sizeof(v));
  return v;
}

// Reads a field of the given kind at `addr + offset`, widened to a Value-
// compatible representation (integers sign-extended to i64, f32 to f64).
int64_t NativeReadInt(int64_t addr, int64_t offset, FieldKind kind);
double NativeReadFloat(int64_t addr, int64_t offset, FieldKind kind);
void NativeWriteInt(int64_t addr, int64_t offset, FieldKind kind, int64_t value);
void NativeWriteFloat(int64_t addr, int64_t offset, FieldKind kind, double value);

// resolveOffset (§3.6): evaluates a symbolic offset expression against the
// record at `base`, reading array lengths out of the record itself. This is
// a direct recursion over the expression tree (no callback indirection) —
// it sits on the fast path's every symbolic-offset access.
int64_t ResolveOffset(const ExprPool& pool, int expr_id, int64_t base);

// Byte size of the committed record body of class `klass` at `addr`.
// Fixed-size classes are O(1); affine classes evaluate their size
// expression; open-ended classes walk the structure.
int64_t MeasureCommittedBody(const DataStructAnalyzer& layouts, const Klass* klass, int64_t addr);

// Address of element `index` of the committed array at `addr` (layout
// [len:i32][elements]); for variable-size record elements this walks the
// per-element size prefixes and returns the element body address.
int64_t CommittedArrayElemAddr(const DataStructAnalyzer& layouts, const Klass* array_klass,
                               int64_t addr, int64_t index);

}  // namespace gerenuk

#endif  // SRC_NATIVEBUF_NATIVE_BUFFER_H_
