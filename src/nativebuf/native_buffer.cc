#include "src/nativebuf/native_buffer.h"

#include <string>

#include "src/support/fnv.h"

namespace gerenuk {

NativePartition::NativePartition(MemoryTracker* tracker) : tracker_(tracker) {}

NativePartition::~NativePartition() { Release(); }

NativePartition::NativePartition(NativePartition&& other) noexcept { *this = std::move(other); }

NativePartition& NativePartition::operator=(NativePartition&& other) noexcept {
  if (this != &other) {
    Release();
    tracker_ = other.tracker_;
    chunks_ = std::move(other.chunks_);
    chunk_used_ = other.chunk_used_;
    chunk_capacity_ = other.chunk_capacity_;
    bytes_used_ = other.bytes_used_;
    records_ = std::move(other.records_);
    sealed_ = other.sealed_;
    checksum_ = other.checksum_;
    other.chunks_.clear();
    other.chunk_used_ = 0;
    other.chunk_capacity_ = 0;
    other.bytes_used_ = 0;
    other.records_.clear();
    other.sealed_ = false;
    other.checksum_ = 0;
  }
  return *this;
}

void NativePartition::Release() {
  if (tracker_ != nullptr && bytes_used_ > 0) {
    tracker_->Freed(bytes_used_);
  }
  chunks_.clear();
  chunk_used_ = 0;
  chunk_capacity_ = 0;
  bytes_used_ = 0;
  records_.clear();
  sealed_ = false;
  checksum_ = 0;
}

uint8_t* NativePartition::Allocate(size_t n) {
  if (chunk_capacity_ - chunk_used_ < n) {
    size_t capacity = n > kChunkSize ? n : kChunkSize;
    chunks_.push_back(std::make_unique<uint8_t[]>(capacity));
    chunk_used_ = 0;
    chunk_capacity_ = capacity;
  }
  uint8_t* result = chunks_.back().get() + chunk_used_;
  chunk_used_ += n;
  bytes_used_ += static_cast<int64_t>(n);
  if (tracker_ != nullptr) {
    tracker_->Allocated(static_cast<int64_t>(n));
  }
  return result;
}

uint8_t* NativePartition::ReserveRecord(uint32_t body_size, int64_t* body_addr) {
  sealed_ = false;  // mutation invalidates the integrity seal
  uint8_t* slot = Allocate(4 + static_cast<size_t>(body_size));
  std::memcpy(slot, &body_size, sizeof(body_size));
  *body_addr = reinterpret_cast<int64_t>(slot + 4);
  records_.push_back(*body_addr);
  return slot + 4;
}

int64_t NativePartition::AppendRecord(const uint8_t* body, uint32_t body_size) {
  int64_t addr = 0;
  uint8_t* dst = ReserveRecord(body_size, &addr);
  std::memcpy(dst, body, body_size);
  return addr;
}

uint32_t NativePartition::record_size(size_t i) const {
  uint32_t size;
  std::memcpy(&size, reinterpret_cast<const uint8_t*>(records_[i]) - 4, sizeof(size));
  return size;
}

uint64_t NativePartition::ComputeChecksum() const {
  // FNV-1a over each record's size prefix and body (shared helper so the
  // shuffle service's spill-block seals use the identical hash). Linear in
  // the bytes, paid once at commit and once per stage read — noise next to
  // the interpreter's per-record cost.
  Fnv1a h;
  for (size_t i = 0; i < records_.size(); ++i) {
    uint32_t size = record_size(i);
    h.Update(&size, sizeof(size));
    h.Update(reinterpret_cast<const uint8_t*>(records_[i]), size);
  }
  return h.digest();
}

void NativePartition::Seal() {
  checksum_ = ComputeChecksum();
  sealed_ = true;
}

bool NativePartition::VerifyChecksum() const {
  return !sealed_ || ComputeChecksum() == checksum_;
}

void NativePartition::SerializeTo(ByteBuffer& out) const {
  out.WriteU32(static_cast<uint32_t>(records_.size()));
  for (size_t i = 0; i < records_.size(); ++i) {
    uint32_t size = record_size(i);
    out.WriteU32(size);
    out.WriteBytes(reinterpret_cast<const uint8_t*>(records_[i]), size);
  }
  out.WriteU64(sealed_ ? checksum_ : ComputeChecksum());
}

NativePartition NativePartition::Parse(ByteReader& in, MemoryTracker* tracker) {
  // Every length is validated against the reader's remaining bytes BEFORE the
  // corresponding read, because ByteReader treats a bounds overrun as a fatal
  // programming error (GERENUK_CHECK). Wire bytes come from the network /
  // spill files / another process, so malformed input must throw a catchable
  // WireFormatError — fail closed, never crash. The checks are conservative
  // when several partitions are concatenated in one stream: `remaining` only
  // grows with trailing content, so a well-formed prefix always passes.
  NativePartition partition(tracker);
  if (in.remaining() < 4) {
    throw WireFormatError("native partition wire bytes truncated before record count");
  }
  uint32_t count = in.ReadU32();
  // Each record needs at least a 4-byte size prefix, plus the 8-byte trailer.
  if (static_cast<uint64_t>(count) * 4 + 8 > in.remaining()) {
    throw WireFormatError("native partition record count " + std::to_string(count) +
                          " exceeds the remaining wire bytes");
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (in.remaining() < 4) {
      throw WireFormatError("native partition wire bytes truncated at record " +
                            std::to_string(i) + " size prefix");
    }
    uint32_t size = in.ReadU32();
    // The body plus this partition's 8-byte checksum trailer must still fit.
    if (static_cast<uint64_t>(size) + 8 > in.remaining()) {
      throw WireFormatError("native partition record " + std::to_string(i) +
                            " length prefix " + std::to_string(size) +
                            " overruns the remaining wire bytes");
    }
    int64_t addr = 0;
    uint8_t* dst = partition.ReserveRecord(size, &addr);
    in.ReadBytes(dst, size);
  }
  if (in.remaining() < 8) {
    throw WireFormatError("native partition wire bytes truncated before checksum trailer");
  }
  // Adopt the sender's seal; verification is deferred to the stage-input
  // boundary so a mismatch surfaces as a quarantinable TaskError, not a
  // parse crash.
  partition.checksum_ = in.ReadU64();
  partition.sealed_ = true;
  return partition;
}

// ---------------------------------------------------------------------------

int64_t NativeReadInt(int64_t addr, int64_t offset, FieldKind kind) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(addr + offset);
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: {
      int8_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case FieldKind::kI16:
    case FieldKind::kChar: {
      int16_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case FieldKind::kI32: {
      int32_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    case FieldKind::kI64:
    case FieldKind::kRef: {
      int64_t v;
      std::memcpy(&v, p, sizeof(v));
      return v;
    }
    default:
      GERENUK_CHECK(false) << "NativeReadInt on float kind";
      return 0;
  }
}

double NativeReadFloat(int64_t addr, int64_t offset, FieldKind kind) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(addr + offset);
  if (kind == FieldKind::kF32) {
    float v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  GERENUK_CHECK(kind == FieldKind::kF64);
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void NativeWriteInt(int64_t addr, int64_t offset, FieldKind kind, int64_t value) {
  uint8_t* p = reinterpret_cast<uint8_t*>(addr + offset);
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: {
      int8_t v = static_cast<int8_t>(value);
      std::memcpy(p, &v, sizeof(v));
      return;
    }
    case FieldKind::kI16:
    case FieldKind::kChar: {
      int16_t v = static_cast<int16_t>(value);
      std::memcpy(p, &v, sizeof(v));
      return;
    }
    case FieldKind::kI32: {
      int32_t v = static_cast<int32_t>(value);
      std::memcpy(p, &v, sizeof(v));
      return;
    }
    case FieldKind::kI64: {
      std::memcpy(p, &value, sizeof(value));
      return;
    }
    default:
      GERENUK_CHECK(false) << "NativeWriteInt on float kind";
  }
}

void NativeWriteFloat(int64_t addr, int64_t offset, FieldKind kind, double value) {
  uint8_t* p = reinterpret_cast<uint8_t*>(addr + offset);
  if (kind == FieldKind::kF32) {
    float v = static_cast<float>(value);
    std::memcpy(p, &v, sizeof(v));
    return;
  }
  GERENUK_CHECK(kind == FieldKind::kF64);
  std::memcpy(p, &value, sizeof(value));
}

int64_t ResolveOffset(const ExprPool& pool, int expr_id, int64_t base) {
  // Expressions proven constant by ExprPool::FoldConstants() skip the tree
  // walk entirely (most fixed-size-class offsets land here).
  int64_t folded = 0;
  if (pool.FoldedConstant(expr_id, &folded)) {
    return folded;
  }
  const SizeExpr& expr = pool.Get(expr_id);
  int64_t result = expr.constant;
  for (const SizeExpr::Term& term : expr.terms) {
    if (term.scale == 0) {
      continue;
    }
    int64_t length_offset = ResolveOffset(pool, term.length_at, base);
    result += term.scale * static_cast<int64_t>(NativeReadI32(base + length_offset));
  }
  return result;
}

int64_t MeasureCommittedBody(const DataStructAnalyzer& layouts, const Klass* klass,
                             int64_t addr) {
  if (klass->is_array()) {
    int64_t len = NativeReadI32(addr);
    if (klass->element_kind() != FieldKind::kRef) {
      return 4 + len * klass->element_size();
    }
    const Klass* elem = klass->element_klass();
    const ClassLayout* elem_layout = layouts.LayoutOf(elem);
    GERENUK_CHECK(elem_layout != nullptr);
    if (elem_layout->fixed_size) {
      return 4 + len * elem_layout->const_size;
    }
    // Variable-size elements carry [size:u32] prefixes: walk them.
    int64_t off = 4;
    for (int64_t i = 0; i < len; ++i) {
      off += 4 + NativeReadI32(addr + off);
    }
    return off;
  }
  const ClassLayout* layout = layouts.LayoutOf(klass);
  GERENUK_CHECK(layout != nullptr) << klass->name();
  if (layout->fixed_size) {
    return layout->const_size;
  }
  if (layout->size_expr >= 0) {
    return ResolveOffset(layouts.pool(), layout->size_expr, addr);
  }
  // Open-ended: the last field is a variable-record array (or open child);
  // measure every field in turn.
  int64_t off = 0;
  for (size_t i = 0; i < klass->fields().size(); ++i) {
    const FieldInfo& field = klass->field(static_cast<int>(i));
    if (field.kind != FieldKind::kRef) {
      off += FieldKindSize(field.kind);
    } else {
      off += MeasureCommittedBody(layouts, field.target, addr + off);
    }
  }
  return off;
}

int64_t CommittedArrayElemAddr(const DataStructAnalyzer& layouts, const Klass* array_klass,
                               int64_t addr, int64_t index) {
  GERENUK_CHECK(array_klass->is_array());
  GERENUK_CHECK(array_klass->element_kind() == FieldKind::kRef);
  int64_t len = NativeReadI32(addr);
  GERENUK_CHECK(index >= 0 && index < len)
      << "native array index " << index << " out of bounds [0," << len << ")";
  const Klass* elem = array_klass->element_klass();
  const ClassLayout* elem_layout = layouts.LayoutOf(elem);
  GERENUK_CHECK(elem_layout != nullptr);
  if (elem_layout->fixed_size) {
    return addr + 4 + index * elem_layout->const_size;
  }
  int64_t off = 4;
  for (int64_t i = 0; i < index; ++i) {
    off += 4 + NativeReadI32(addr + off);
  }
  return addr + off + 4;  // skip this element's size prefix
}

}  // namespace gerenuk
