// Record builders: how the transformed program constructs new data records
// without creating heap objects.
//
// The paper's appendToBuffer writes record pieces at their statically
// computed offsets, staging any write whose offset depends on a
// not-yet-known array length in a temporary buffer and flushing it when the
// array-creation event fires (§3.6 "Determining Offsets"). We implement the
// same deferred-placement semantics structurally: each allocation becomes a
// builder node keyed by the layout's field slots; writes land in the node
// immediately regardless of construction order, and byte placement happens
// once, at gWriteObject time, when every array length is known. The
// observable behavior (out-of-order construction works; committed bytes
// match the inline format exactly) is identical; the bookkeeping is simpler
// and allocation-free until render.
//
// Builder ids are negative "addresses" (-1 - id), so the interpreter can
// tell a record under construction from a committed record (a real pointer)
// by sign — the runtime analogue of the compile-time fresh/non-fresh split.
#ifndef SRC_NATIVEBUF_RECORD_BUILDER_H_
#define SRC_NATIVEBUF_RECORD_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/analysis/layout.h"
#include "src/nativebuf/native_buffer.h"

namespace gerenuk {

inline bool IsBuilderAddr(int64_t addr) { return addr < 0; }
inline int64_t BuilderIdToAddr(int64_t id) { return -1 - id; }
inline int64_t BuilderAddrToId(int64_t addr) { return -1 - addr; }

// Arena of builder nodes for one task. Released wholesale when the SER
// commits or aborts.
class BuilderStore {
 public:
  explicit BuilderStore(const DataStructAnalyzer& layouts) : layouts_(layouts) {}

  // appendToBuffer(C): a new record of class `klass`. Returns a builder addr.
  int64_t NewRecord(const Klass* klass);
  // appendToBuffer(E[length]): a new array. Returns a builder addr.
  int64_t NewArray(const Klass* array_klass, int64_t length);

  // writeNative on an under-construction record, addressed by declared
  // field index (the transformer keeps it on the statement).
  void WriteField(int64_t builder_addr, int field_index, FieldKind kind, int64_t ivalue,
                  double fvalue);
  // readNative on an under-construction record.
  void ReadField(int64_t builder_addr, int field_index, FieldKind kind, int64_t* ivalue,
                 double* fvalue) const;
  // Address (builder or committed) stored in a ref field slot.
  int64_t FieldAddr(int64_t builder_addr, int field_index) const;

  // Construction write a.f = b where b is a builder or a committed record.
  void AttachField(int64_t builder_addr, int field_index, int64_t child_addr);

  // Array operations on under-construction arrays.
  int64_t ArrayLength(int64_t builder_addr) const;
  void ArrayStore(int64_t builder_addr, int64_t index, FieldKind kind, int64_t ivalue,
                  double fvalue);
  void ArrayLoad(int64_t builder_addr, int64_t index, FieldKind kind, int64_t* ivalue,
                 double* fvalue) const;
  void AttachElement(int64_t builder_addr, int64_t index, int64_t child_addr);
  int64_t ElementAddr(int64_t builder_addr, int64_t index) const;

  const Klass* KlassOf(int64_t builder_addr) const;

  // Fast path for string intrinsics: when `builder_addr` is a record whose
  // field 0 is a primitive byte array (the String layout), returns a view of
  // the bytes without rendering. Returns false otherwise.
  bool TryGetStringBytes(int64_t builder_addr, const uint8_t** data, int64_t* len) const;

  // Bulk view for the vectorized gather/scatter kernels: succeeds only when
  // `builder_addr` is a live under-construction primitive array whose element
  // width matches `kind`, so per-lane loads/stores through the view are
  // byte-identical to ArrayLoad/ArrayStore. Any other node shape returns
  // false (the caller falls back to the scalar path, which reproduces the
  // scalar fault semantics exactly).
  bool TryGetPrimArray(int64_t builder_addr, FieldKind kind, uint8_t** data, int64_t* len);

  // gWriteObject: renders the structure rooted at `addr` (builder or
  // committed) into `out` as one [size][body] record; returns the body addr.
  int64_t Render(int64_t addr, const Klass* klass, NativePartition& out) const;

  // Renders only the body bytes (used recursively and by tests).
  void RenderBody(int64_t addr, const Klass* klass, ByteBuffer& out) const;

  size_t size() const { return active_; }
  // Recycles every node (capacity retained — builders churn once per record
  // on the hot path, so the slot vectors must not be reallocated each time).
  void Clear() { active_ = 0; }

 private:
  struct Slot {
    bool is_set = false;
    bool is_child = false;   // addr holds a child (builder or committed)
    int64_t ivalue = 0;      // prim payload or child address
    double fvalue = 0.0;
  };
  struct Node {
    const Klass* klass = nullptr;
    std::vector<Slot> slots;  // per field (class) or per ref-array element
    std::vector<uint8_t> prim;  // primitive-array payload, element-width packed
    int64_t length = 0;         // array length
  };

  Node& AcquireNode();
  const Node& NodeAt(int64_t builder_addr) const;
  Node& NodeAt(int64_t builder_addr);
  int64_t BodySize(int64_t addr, const Klass* klass) const;

  const DataStructAnalyzer& layouts_;
  std::vector<Node> nodes_;
  size_t active_ = 0;  // nodes_[0, active_) are live; the rest are recycled
  mutable ByteBuffer render_scratch_;
};

}  // namespace gerenuk

#endif  // SRC_NATIVEBUF_RECORD_BUILDER_H_
