#include "src/nativebuf/record_builder.h"

namespace gerenuk {

BuilderStore::Node& BuilderStore::AcquireNode() {
  if (active_ == nodes_.size()) {
    nodes_.emplace_back();
  }
  return nodes_[active_++];
}

int64_t BuilderStore::NewRecord(const Klass* klass) {
  GERENUK_CHECK(!klass->is_array());
  Node& node = AcquireNode();
  node.klass = klass;
  node.length = 0;
  node.slots.assign(klass->fields().size(), Slot{});
  return BuilderIdToAddr(static_cast<int64_t>(active_) - 1);
}

int64_t BuilderStore::NewArray(const Klass* array_klass, int64_t length) {
  GERENUK_CHECK(array_klass->is_array());
  GERENUK_CHECK_GE(length, 0);
  Node& node = AcquireNode();
  node.klass = array_klass;
  node.length = length;
  if (array_klass->element_kind() == FieldKind::kRef) {
    node.slots.assign(static_cast<size_t>(length), Slot{});
  } else {
    // Primitive arrays are built directly in their wire layout: stores write
    // bytes once and rendering is a single copy.
    node.slots.clear();
    node.prim.assign(static_cast<size_t>(length) * array_klass->element_size(), 0);
  }
  return BuilderIdToAddr(static_cast<int64_t>(active_) - 1);
}

const BuilderStore::Node& BuilderStore::NodeAt(int64_t builder_addr) const {
  GERENUK_CHECK(IsBuilderAddr(builder_addr));
  int64_t id = BuilderAddrToId(builder_addr);
  GERENUK_CHECK(id >= 0 && id < static_cast<int64_t>(active_));
  return nodes_[static_cast<size_t>(id)];
}

BuilderStore::Node& BuilderStore::NodeAt(int64_t builder_addr) {
  return const_cast<Node&>(static_cast<const BuilderStore*>(this)->NodeAt(builder_addr));
}

void BuilderStore::WriteField(int64_t builder_addr, int field_index, FieldKind kind,
                              int64_t ivalue, double fvalue) {
  Node& node = NodeAt(builder_addr);
  Slot& slot = node.slots[static_cast<size_t>(field_index)];
  slot.is_set = true;
  slot.is_child = false;
  slot.ivalue = ivalue;
  slot.fvalue = fvalue;
}

void BuilderStore::ReadField(int64_t builder_addr, int field_index, FieldKind kind,
                             int64_t* ivalue, double* fvalue) const {
  const Node& node = NodeAt(builder_addr);
  const Slot& slot = node.slots[static_cast<size_t>(field_index)];
  // Unset primitive fields read as zero, as freshly allocated objects do.
  *ivalue = slot.ivalue;
  *fvalue = slot.fvalue;
}

int64_t BuilderStore::FieldAddr(int64_t builder_addr, int field_index) const {
  const Node& node = NodeAt(builder_addr);
  const Slot& slot = node.slots[static_cast<size_t>(field_index)];
  GERENUK_CHECK(slot.is_set && slot.is_child)
      << "ref field " << node.klass->field(field_index).name << " of " << node.klass->name()
      << " read before attachment";
  return slot.ivalue;
}

void BuilderStore::AttachField(int64_t builder_addr, int field_index, int64_t child_addr) {
  Node& node = NodeAt(builder_addr);
  Slot& slot = node.slots[static_cast<size_t>(field_index)];
  slot.is_set = true;
  slot.is_child = true;
  slot.ivalue = child_addr;
}

int64_t BuilderStore::ArrayLength(int64_t builder_addr) const {
  const Node& node = NodeAt(builder_addr);
  GERENUK_CHECK(node.klass->is_array());
  return node.length;
}

void BuilderStore::ArrayStore(int64_t builder_addr, int64_t index, FieldKind kind, int64_t ivalue,
                              double fvalue) {
  Node& node = NodeAt(builder_addr);
  GERENUK_CHECK(index >= 0 && index < node.length)
      << "builder array index " << index << " out of bounds [0," << node.length << ")";
  int64_t base = reinterpret_cast<int64_t>(node.prim.data());
  int64_t off = index * FieldKindSize(kind);
  if (kind == FieldKind::kF32 || kind == FieldKind::kF64) {
    NativeWriteFloat(base, off, kind, fvalue);
  } else {
    NativeWriteInt(base, off, kind, ivalue);
  }
}

void BuilderStore::ArrayLoad(int64_t builder_addr, int64_t index, FieldKind kind, int64_t* ivalue,
                             double* fvalue) const {
  const Node& node = NodeAt(builder_addr);
  GERENUK_CHECK(index >= 0 && index < node.length)
      << "builder array index " << index << " out of bounds [0," << node.length << ")";
  int64_t base = reinterpret_cast<int64_t>(node.prim.data());
  int64_t off = index * FieldKindSize(kind);
  if (kind == FieldKind::kF32 || kind == FieldKind::kF64) {
    *fvalue = NativeReadFloat(base, off, kind);
  } else {
    *ivalue = NativeReadInt(base, off, kind);
  }
}

bool BuilderStore::TryGetPrimArray(int64_t builder_addr, FieldKind kind, uint8_t** data,
                                   int64_t* len) {
  if (!IsBuilderAddr(builder_addr)) {
    return false;
  }
  int64_t id = BuilderAddrToId(builder_addr);
  if (id < 0 || id >= static_cast<int64_t>(active_)) {
    return false;
  }
  Node& node = nodes_[static_cast<size_t>(id)];
  if (node.klass == nullptr || !node.klass->is_array() ||
      node.klass->element_kind() == FieldKind::kRef ||
      node.klass->element_size() != FieldKindSize(kind)) {
    return false;
  }
  *data = node.prim.data();
  *len = node.length;
  return true;
}

void BuilderStore::AttachElement(int64_t builder_addr, int64_t index, int64_t child_addr) {
  Node& node = NodeAt(builder_addr);
  GERENUK_CHECK(node.klass->is_array());
  GERENUK_CHECK(index >= 0 && index < node.length);
  Slot& slot = node.slots[static_cast<size_t>(index)];
  slot.is_set = true;
  slot.is_child = true;
  slot.ivalue = child_addr;
}

int64_t BuilderStore::ElementAddr(int64_t builder_addr, int64_t index) const {
  const Node& node = NodeAt(builder_addr);
  GERENUK_CHECK(node.klass->is_array());
  GERENUK_CHECK(index >= 0 && index < node.length);
  const Slot& slot = node.slots[static_cast<size_t>(index)];
  GERENUK_CHECK(slot.is_set && slot.is_child) << "array element read before attachment";
  return slot.ivalue;
}

const Klass* BuilderStore::KlassOf(int64_t builder_addr) const {
  return NodeAt(builder_addr).klass;
}

bool BuilderStore::TryGetStringBytes(int64_t builder_addr, const uint8_t** data,
                                     int64_t* len) const {
  const Node& node = NodeAt(builder_addr);
  if (node.klass->is_array() || node.klass->fields().size() != 1 ||
      node.klass->field(0).kind != FieldKind::kRef) {
    return false;
  }
  const Slot& slot = node.slots[0];
  if (!slot.is_set || !slot.is_child || !IsBuilderAddr(slot.ivalue)) {
    return false;
  }
  const Node& chars = NodeAt(slot.ivalue);
  if (!chars.klass->is_array() || chars.klass->element_kind() != FieldKind::kI8) {
    return false;
  }
  *data = chars.prim.data();
  *len = chars.length;
  return true;
}

int64_t BuilderStore::BodySize(int64_t addr, const Klass* klass) const {
  if (!IsBuilderAddr(addr)) {
    return MeasureCommittedBody(layouts_, klass, addr);
  }
  const Node& node = NodeAt(addr);
  GERENUK_CHECK_EQ(node.klass, klass);
  if (klass->is_array()) {
    if (klass->element_kind() != FieldKind::kRef) {
      return 4 + node.length * klass->element_size();
    }
    const Klass* elem = klass->element_klass();
    bool fixed = KlassHasFixedInlineSize(elem);
    int64_t total = 4;
    for (int64_t i = 0; i < node.length; ++i) {
      const Slot& slot = node.slots[static_cast<size_t>(i)];
      GERENUK_CHECK(slot.is_set && slot.is_child)
          << "unattached element " << i << " of " << klass->name();
      total += (fixed ? 0 : 4) + BodySize(slot.ivalue, elem);
    }
    return total;
  }
  int64_t total = 0;
  for (size_t i = 0; i < klass->fields().size(); ++i) {
    const FieldInfo& field = klass->field(static_cast<int>(i));
    if (field.kind != FieldKind::kRef) {
      total += FieldKindSize(field.kind);
      continue;
    }
    const Slot& slot = node.slots[i];
    GERENUK_CHECK(slot.is_set && slot.is_child)
        << "unattached field " << klass->name() << "." << field.name << " at serialization";
    total += BodySize(slot.ivalue, field.target);
  }
  return total;
}

void BuilderStore::RenderBody(int64_t addr, const Klass* klass, ByteBuffer& out) const {
  if (!IsBuilderAddr(addr)) {
    // Committed record: a straight byte copy (this is how pass-through
    // records move from input buffers to output buffers with no work).
    int64_t size = MeasureCommittedBody(layouts_, klass, addr);
    out.WriteBytes(reinterpret_cast<const uint8_t*>(addr), static_cast<size_t>(size));
    return;
  }
  const Node& node = NodeAt(addr);
  GERENUK_CHECK_EQ(node.klass, klass);
  if (klass->is_array()) {
    out.WriteI32(static_cast<int32_t>(node.length));
    if (klass->element_kind() != FieldKind::kRef) {
      out.WriteBytes(node.prim.data(), node.prim.size());  // already wire layout
      return;
    }
    const Klass* elem = klass->element_klass();
    bool fixed = KlassHasFixedInlineSize(elem);
    for (int64_t i = 0; i < node.length; ++i) {
      const Slot& slot = node.slots[static_cast<size_t>(i)];
      GERENUK_CHECK(slot.is_set && slot.is_child)
          << "unattached element " << i << " of " << klass->name();
      if (fixed) {
        RenderBody(slot.ivalue, elem, out);
      } else {
        size_t size_pos = out.size();
        out.WriteU32(0);
        size_t body_start = out.size();
        RenderBody(slot.ivalue, elem, out);
        out.PatchU32(size_pos, static_cast<uint32_t>(out.size() - body_start));
      }
    }
    return;
  }
  for (size_t i = 0; i < klass->fields().size(); ++i) {
    const FieldInfo& field = klass->field(static_cast<int>(i));
    const Slot& slot = node.slots[i];
    switch (field.kind) {
      case FieldKind::kBool:
      case FieldKind::kI8:
        out.WriteU8(static_cast<uint8_t>(slot.ivalue));
        break;
      case FieldKind::kI16:
      case FieldKind::kChar:
        out.WriteU16(static_cast<uint16_t>(slot.ivalue));
        break;
      case FieldKind::kI32:
        out.WriteI32(static_cast<int32_t>(slot.ivalue));
        break;
      case FieldKind::kI64:
        out.WriteI64(slot.ivalue);
        break;
      case FieldKind::kF32:
        out.WriteF32(static_cast<float>(slot.fvalue));
        break;
      case FieldKind::kF64:
        out.WriteF64(slot.fvalue);
        break;
      case FieldKind::kRef:
        GERENUK_CHECK(slot.is_set && slot.is_child)
            << "unattached field " << klass->name() << "." << field.name << " at serialization";
        RenderBody(slot.ivalue, field.target, out);
        break;
    }
  }
}

int64_t BuilderStore::Render(int64_t addr, const Klass* klass, NativePartition& out) const {
  if (!IsBuilderAddr(addr)) {
    // Pass-through: copy the committed record's bytes directly.
    int64_t size = MeasureCommittedBody(layouts_, klass, addr);
    return out.AppendRecord(reinterpret_cast<const uint8_t*>(addr), static_cast<uint32_t>(size));
  }
  render_scratch_.Clear();
  RenderBody(addr, klass, render_scratch_);
  return out.AppendRecord(render_scratch_.data(),
                          static_cast<uint32_t>(render_scratch_.size()));
}

}  // namespace gerenuk
