// Flat direct-threaded execution plans for transformed SERs.
//
// The tree-walking Interpreter pays per statement for what the plan compiler
// pays once per stage: label lookups, klass->field() indirection, SizeExpr
// resolution for offsets that are really constants, and the branchy Op
// switch over 40-byte Statement structs holding vectors and strings. A
// SerPlan lowers every function of a transformed SerProgram into a
// contiguous array of fixed-size PlanOps with
//   * branch targets resolved to op indices (kLabel/kMonitor* disappear),
//   * field offsets and kinds pre-bound into the op,
//   * constant-foldable offset expressions folded to immediates (symbolic
//     ones flattened into an iterative per-plan FlatStep run),
//   * fused superinstructions for the dominant shapes (compare+branch,
//     binop+jump loop back edges, not+branch filters, const-read+binop).
// The PlanExecutor runs plans with computed-goto dispatch (GCC/Clang; a
// plain switch elsewhere) and batches the record channel: input addresses
// are prefetched in runs and emits are buffered, amortizing the per-record
// std::function hops.
//
// Semantics are bit-for-bit those of the Interpreter — including the
// dynamic float/int binop rule, builder-vs-committed address dispatch, and
// SerAbort on committed-record writes — so the interpreter stays the
// reference implementation and the abort/slow-path machinery is untouched
// (tests/plan_test.cc holds the differential proof).
#ifndef SRC_EXEC_PLAN_H_
#define SRC_EXEC_PLAN_H_

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/exec/interpreter.h"
#include "src/support/metrics.h"

namespace gerenuk {

enum class PlanOpCode : uint8_t {
  kConst,
  kAssign,
  kBinOp,
  kUnOp,
  kDeserialize,
  kSerialize,
  kFieldLoad,
  kFieldStore,
  kArrayLoad,
  kArrayStore,
  kArrayLength,
  kNewObject,
  kNewArray,
  kCall,
  kIntrinsic,
  kBranch,
  kJump,
  kReturn,
  kReturnVoid,  // synthetic fall-off-the-end return
  kGetAddress,
  kGWriteObject,
  kReadNativeConst,  // offset folded to an immediate at compile time
  kReadNativeSym,    // genuinely symbolic offset (FlatStep run)
  kWriteNative,
  kAddrOfFieldConst,
  kAddrOfFieldSym,
  kNativeArrayLength,
  kNativeArrayLoad,
  kNativeArrayStore,
  kNativeArrayElemAddr,
  kAppendRecord,
  kAppendArray,
  kAttachField,
  kAttachElement,
  kAbort,
  // --- fused superinstructions (intermediate dsts are still written, so
  // fusion is invisible to any later reader of those slots) ---
  kBinOpBranch,   // dst = a <binop> b; if (slots[c]) goto target
  kNotBranch,     // dst = !a;          if (slots[c]) goto target
  kBinOpJump,     // dst = a <binop> b; goto target (loop back edge)
  kReadConstBin,  // dst = readNative(a, imm); dst2 = b <binop> c
  kBinOpBin,      // dst = a <binop> b; dst2 = c <binop2:imm> d — the second
                  // binop reads slots after the first one's store, so a
                  // dependent pair behaves exactly as when unfused
  kBinOpBinJump,  // kBinOpBin then goto target (a counted loop's whole tail)
  kBinOpRun,      // {kind, a, b, dst} x (args_len/4) binops from args_pool,
                  // executed in order against the slots — an arithmetic
                  // chain costs one dispatch instead of one per binop. An
                  // entry with kind < 0 is an int32 immediate: dst = I64(a).
  kBinOpRunBranch,  // kBinOpRun then: if (slots[c]) goto target
  kBinOpRunJump,    // kBinOpRun then goto target
  // A conditional branch whose fall-through was itself a jump: both edges
  // resolved in one dispatch (if (slots[cond]) goto target else target2).
  kBranchElse,         // cond is a
  kBinOpBranchElse,    // dst = a <binop> b first; cond is c
  kBinOpRunBranchElse, // the run first; cond is c
  // --- vectorized batch tier (see DESIGN.md §13) ---------------------------
  // A qualifying counted loop is strip-mined: the vec block runs strips of
  // `vector_batch_size` iterations over per-loop column vectors; the original
  // scalar loop is kept immediately after the block as both the vectorize-off
  // path and the bail target. All observable side effects of a strip (slot
  // writebacks, native-array scatters) are deferred to kVecLoopEnd, so a bail
  // mid-strip hands off to the scalar loop with pristine strip-start state —
  // aborts and faults then fire at exactly the iteration, and with exactly
  // the lane-major ordering, the interpreter would produce.
  //
  // Operand encoding shared by the vec body ops: a ref/mode pair selects a
  // column (mode 0: ref is a column id), a loop-invariant slot (mode 1: ref
  // is a slot id), or the op's immediate payload (mode 2, kVecUnOp only).
  kVecLoopBegin,  // a=induction slot, b=limit slot, c=#columns, d=done slot;
                  // dst=induction column; target=loop exit, target2=scalar
                  // loop head (bail); imm=#scan ops. Computes n=min(batch,
                  // limit-i); n<=0 writes done=true and jumps to target.
  kVecBinOp,      // dst col = <binop>(a/c ref/mode, b/d ref/mode) per lane
  kVecUnOp,       // dst col = <unop>(a/c) per lane; b==1 => plain copy or
                  // broadcast (imm_tag/imm/fimm when c==2)
  kVecScan,       // serial loop-carried reduction, bit-exact order: carried
                  // slot a, operand b/d, direction c (0: carry<op>x, 1:
                  // x<op>carry); dst col holds the running value per lane,
                  // dst2 is the scan's writeback index
  kVecReadCol,    // gather: base slot a (invariant), index b/d, element
                  // `kind`; c==1 => native array length broadcast instead
  kVecWriteCol,   // deferred scatter: base slot a, index column b, value c/d,
                  // element `kind`; args = alias-guard slots (bases this
                  // loop reads — equal address at runtime bails to scalar)
  kVecFilter,     // shrink the selection vector: cond a/c, keep lanes where
                  // AsBool(cond) == b
  kVecLoopEnd,    // commit the strip: apply pending scatters, write back
                  // columns/scan carries per args = [ncol,(slot,col)...,
                  // nscan,(slot,idx)...], advance induction slot a (col dst),
                  // jump target back to kVecLoopBegin
  kCount,
};

inline bool IsVecOp(PlanOpCode c) {
  return c >= PlanOpCode::kVecLoopBegin && c <= PlanOpCode::kVecLoopEnd;
}

const char* PlanOpName(PlanOpCode code);

// OpProfile's fixed-size arrays index by opcode; growing the ISA past the
// profile's capacity must bump OpProfile::kMaxOps, not silently truncate.
static_assert(static_cast<size_t>(PlanOpCode::kCount) <= OpProfile::kMaxOps,
              "PlanOpCode outgrew OpProfile::kMaxOps; bump it in metrics.h");

// kCallNative symbols resolved at compile time (the interpreter string-
// compares per execution). kUnknown lowers names without a runtime
// implementation; executing one is fatal, exactly like the interpreter.
enum class Intrinsic : uint8_t {
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kStringLength,
  kStringHash,
  kStringEquals,
  kStringCompare,
  kUnknown,
};

// One lowered op. Fixed size, no heap-owning members: the whole plan is a
// few contiguous arrays, and dispatch touches exactly one cache line per op.
struct PlanOp {
  PlanOpCode code = PlanOpCode::kReturnVoid;
  BinOpKind binop = BinOpKind::kAdd;
  UnOpKind unop = UnOpKind::kNeg;
  FieldKind kind = FieldKind::kI32;   // field/element kind for data ops
  bool float_kind = false;            // kind is kF32/kF64 (precomputed)
  ValueTag imm_tag = ValueTag::kNone; // kConst payload tag
  AbortReason abort_reason = AbortReason::kLoadAndEscape;
  Intrinsic intrinsic = Intrinsic::kUnknown;
  int32_t dst = -1;
  int32_t a = -1;
  int32_t b = -1;
  int32_t c = -1;
  int32_t d = -1;          // kBinOpBin second binop's rhs
  int32_t dst2 = -1;       // kReadConstBin/kBinOpBin second destination
  int32_t target = -1;     // branch/jump destination op index
  int32_t target2 = -1;    // kBranchElse et al: fall-through jump destination
  int32_t args_off = 0;    // kCall/kIntrinsic: run in PlanFunction::args_pool
  int32_t args_len = 0;
  int32_t callee = -1;     // kCall: plan-local function index
  int32_t field_index = -1;  // builder-side field ops
  int32_t flat_off = -1;   // symbolic offset: FlatStep run in the plan
  int32_t flat_len = 0;    // 0 with flat_off<0 => fall back to ResolveOffset
  int32_t expr_id = -1;    // pool id kept for the ResolveOffset fallback
  int64_t imm = 0;         // folded offset / kConst integer payload
  double fimm = 0.0;       // kConst float payload
  const Klass* klass = nullptr;
};

// A symbolic offset flattened post-order: step i's value may feed later
// steps' length reads; the run's last step is the offset. Evaluated
// iteratively into a small stack buffer — no recursion, no std::function.
// Runs longer than kMaxFlatSteps keep the recursive ResolveOffset fallback.
inline constexpr size_t kMaxFlatSteps = 16;
struct FlatStep {
  int64_t constant = 0;
  int32_t first_term = 0;  // into SerPlan::flat_terms
  int32_t num_terms = 0;
};
struct FlatTerm {
  int64_t scale = 0;
  int32_t step = 0;  // run-local index of the step locating the i32 length
};

class SerPlan;

struct PlanFunction {
  const Function* src = nullptr;
  const SerPlan* plan = nullptr;  // back-pointer (set after all lowering)
  int num_params = 0;
  int num_vars = 0;
  std::vector<PlanOp> ops;
  std::vector<int32_t> args_pool;  // call/intrinsic argument variable ids
};

// The compiled, immutable form of one transformed SerProgram. Shared
// read-only across workers (each worker owns its own PlanExecutor).
class SerPlan {
 public:
  const PlanFunction* Lookup(const Function* fn) const {
    auto it = by_fn_.find(fn);
    return it == by_fn_.end() ? nullptr : &funcs_[it->second];
  }
  const PlanFunction* entry() const { return entry_; }
  const std::vector<PlanFunction>& funcs() const { return funcs_; }
  const std::vector<FlatStep>& flat_steps() const { return flat_steps_; }
  const std::vector<FlatTerm>& flat_terms() const { return flat_terms_; }

  // Compile statistics (BENCH_plans.json's op mix).
  const int64_t* op_counts() const { return op_counts_; }
  int64_t ops_total() const { return ops_total_; }
  int64_t ops_fused() const { return ops_fused_; }
  int64_t ops_copies_elided() const { return ops_copies_elided_; }
  int64_t offsets_folded() const { return offsets_folded_; }
  int64_t offsets_symbolic() const { return offsets_symbolic_; }
  // Fused-run shape (kBinOpRun collapse): how many runs and how long.
  int64_t run_count() const { return run_count_; }
  int64_t run_len_sum() const { return run_len_sum_; }
  int64_t run_len_max() const { return run_len_max_; }

  // Vectorization outcome: counted loops strip-mined into the vec tier, the
  // scalar body ops those loops cover, loops examined but kept scalar (and
  // why), and the layout the cost model chose for this SER — "columnar"
  // when at least one loop vectorized, "row" otherwise.
  int64_t vec_loops() const { return vec_loops_; }
  int64_t vec_loops_rejected() const { return vec_loops_rejected_; }
  int64_t ops_vectorized() const { return ops_vectorized_; }
  int32_t vector_batch_size() const { return vector_batch_size_; }
  int64_t vec_bail_after_strips() const { return vec_bail_after_strips_; }
  const char* layout() const { return vec_loops_ > 0 ? "columnar" : "row"; }
  const std::vector<std::string>& vec_reject_reasons() const { return vec_reject_reasons_; }

 private:
  friend class PlanBuilder;  // the compiler (plan_compiler.cc) fills these in

  std::vector<PlanFunction> funcs_;
  std::unordered_map<const Function*, size_t> by_fn_;
  const PlanFunction* entry_ = nullptr;
  std::vector<FlatStep> flat_steps_;
  std::vector<FlatTerm> flat_terms_;
  int64_t op_counts_[static_cast<size_t>(PlanOpCode::kCount)] = {};
  int64_t ops_total_ = 0;
  int64_t ops_fused_ = 0;
  int64_t ops_copies_elided_ = 0;
  int64_t offsets_folded_ = 0;
  int64_t offsets_symbolic_ = 0;
  int64_t run_count_ = 0;
  int64_t run_len_sum_ = 0;
  int64_t run_len_max_ = 0;
  int64_t vec_loops_ = 0;
  int64_t vec_loops_rejected_ = 0;
  int64_t ops_vectorized_ = 0;
  int32_t vector_batch_size_ = 0;
  int64_t vec_bail_after_strips_ = -1;
  std::vector<std::string> vec_reject_reasons_;
};

// Compile-time knobs for the vectorization tier. The vec config is part of
// the plan's identity: engines fold it into ProgramSignature so a cache hit
// can never hand a scalar-compiled plan to a vectorized config (plan_cache.h).
struct PlanOptions {
  bool vectorize = true;        // run the loop vectorizer pass
  int32_t vector_batch_size = 256;  // lanes per strip (column vector length)
  // Test-only: force the Nth kVecLoopBegin of every loop entry to bail to
  // the scalar loop, exercising the mid-loop handoff. -1 = never.
  int64_t vec_bail_after_strips = -1;
};

// Lowers every function of `program` (a *transformed* SerProgram; labels
// must be resolved). `layouts` supplies the ExprPool for offset folding and
// flattening — run ExprPool::FoldConstants() first for best results.
std::shared_ptr<const SerPlan> CompilePlan(const SerProgram& program,
                                           const DataStructAnalyzer& layouts,
                                           const PlanOptions& options = PlanOptions());

// Direct-threaded executor over one or more SerPlans. Functions are looked
// up across every registered plan, so a stage plan and its key/reduce
// function plans execute through one runner (sharing the builder store).
class PlanExecutor : public RootProvider, public SerRunner {
 public:
  PlanExecutor(const SerPlan& plan, Heap& heap, const WellKnown& wk,
               const DataStructAnalyzer* layouts, BuilderStore* builders);
  ~PlanExecutor() override;

  // Registers an additional plan's functions (key extraction, reduce folds).
  void AddPlan(const SerPlan& plan);

  void set_channel(RecordChannel* channel) override;

  Value CallFunction(const Function* func, const std::vector<Value>& args) override;

  int64_t ReadStringBytes(Value v, std::string* out) override;

  // Plan ops dispatched since construction (the dispatch microbenchmark's
  // denominator; fused ops count once).
  int64_t statements_executed() const override { return ops_executed_; }

  // Sampled plan-op profiler. When enabled, every dispatch bumps the
  // opcode's exact count and every `stride`-th dispatch takes one clock
  // read, attributing the elapsed nanos since the previous sample to the
  // opcode observed there. The profiled and unprofiled dispatch loops are
  // separate template instantiations, so the unprofiled loop carries zero
  // extra instructions (the tracing-off overhead budget is "none", not
  // "one branch per op"). A null profile or non-positive stride disables.
  void EnableProfiling(OpProfile* profile, int64_t stride) {
    profile_ = (stride > 0) ? profile : nullptr;
    profile_stride_ = stride;
    profile_countdown_ = stride;
    profile_prev_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
  }

  // Delivers buffered emits to the channel's batch sink. Must run before
  // any builder reset; SerExecutor calls it at batch boundaries and after
  // the record loop. No-op when nothing is buffered.
  void FlushEmits();

  // RootProvider: every kRef slot of every active frame.
  void VisitRoots(const std::function<void(ObjRef*)>& visit) override;

 private:
  struct Frame {
    const PlanFunction* func = nullptr;
    std::vector<Value> slots;
  };

  // Per-loop columnar scratch. Columns are 64-byte-aligned 8-byte lanes
  // (int64 bits; doubles live in the same buffer via their bit pattern, the
  // per-column tag says which view is live). One VecState per kVecLoopBegin
  // op, lazily built and cached for the executor's lifetime — loop bodies
  // contain no calls, so a loop can never have two live strips at once.
  struct VecState {
    int32_t ncols = 0;
    int32_t cap = 0;  // vector_batch_size lanes per column
    std::vector<int64_t> storage;  // ncols+2 columns (2 operand scratch)
    std::vector<int64_t*> col;     // aligned pointers into storage
    std::vector<ValueTag> col_tag;
    std::vector<int32_t> col_last;  // last lane that wrote the col this strip
    std::vector<int32_t> sel;       // dense selection vector (lane indices)
    int32_t sel_len = 0;
    bool sel_dense = true;  // sel is the identity [0, n)
    int64_t base = 0;       // induction value at strip start
    int32_t n = 0;          // lanes in this strip
    int64_t strips_done = 0;  // for the vec_bail_after_strips test knob
    std::vector<Value> scan_carry;
    std::vector<uint8_t> scan_valid;
    struct Pending {  // deferred scatter: op + the selection it ran under
      const PlanOp* op = nullptr;
      int32_t count = 0;  // -1 = dense [0, n)
      std::vector<int32_t> lanes;
    };
    std::vector<Pending> pending;
    size_t pending_count = 0;  // live prefix of `pending` (entries reused)
  };

  static constexpr size_t kInputBatch = 256;
  static constexpr size_t kEmitBatch = 128;

  Frame* AcquireFrame(const PlanFunction* func);
  void ReleaseFrame();
  Value Invoke(const PlanFunction& func, const Value* args, size_t nargs);
  template <bool kProfiled>
  Value Execute(Frame& frame);
  Value RunIntrinsic(const PlanOp& op, const Value* slots, const int32_t* args_pool);
  void RefillInput();

  // Vectorized-tier lane kernels (plan.cc). Those returning bool report
  // "false = bail": a hazard was detected before any observable side effect,
  // and the dispatch loop jumps to the scalar loop head to replay the strip
  // lane by lane.
  VecState* VecStateFor(const PlanOp& op, int32_t cap, int32_t ncols, int32_t nscans);
  static bool VecBinOpLanes(VecState& st, const PlanOp& op, const Value* slots);
  static bool VecUnOpLanes(VecState& st, const PlanOp& op, const Value* slots);
  static bool VecScanLanes(VecState& st, const PlanOp& op, const Value* slots);
  bool VecReadColLanes(VecState& st, const PlanOp& op, const Value* slots);
  bool VecWriteColPrepare(VecState& st, const PlanOp& op, const Value* slots,
                          const int32_t* args_pool);
  static void VecFilterLanes(VecState& st, const PlanOp& op, const Value* slots);
  void VecCommitStrip(VecState& st, const PlanOp& end_op, Value* slots,
                      const int32_t* args_pool);

  // Profiler hot-path hook: exact dispatch count, then a countdown to the
  // next timing sample. Only the kProfiled=true Execute instantiation
  // references it.
  void ProfileOp(size_t code) {
    profile_->dispatches[code] += 1;
    if (--profile_countdown_ <= 0) {
      ProfileSample(code);
    }
  }
  void ProfileSample(size_t code);

  const SerPlan& primary_;
  Heap& heap_;
  const WellKnown& wk_;
  const DataStructAnalyzer* layouts_;
  BuilderStore* builders_;
  RecordChannel* channel_ = nullptr;
  std::unordered_map<const Function*, const PlanFunction*> fn_index_;
  // One-entry lookup cache: record loops call the same body repeatedly.
  const Function* last_fn_ = nullptr;
  const PlanFunction* last_pf_ = nullptr;
  std::vector<std::unique_ptr<Frame>> frame_pool_;  // [0, active) live
  size_t active_frames_ = 0;
  // Vectorized-loop scratch, keyed by the kVecLoopBegin op. `vec_cur_` is
  // the state of the strip currently executing (set by Begin, read by the
  // body ops — valid because vec bodies contain no calls).
  std::unordered_map<const PlanOp*, std::unique_ptr<VecState>> vec_states_;
  VecState* vec_cur_ = nullptr;
  int64_t ops_executed_ = 0;
  // Sampled profiler state (see EnableProfiling). Null profile = off; the
  // dispatch loop then runs the unprofiled instantiation.
  OpProfile* profile_ = nullptr;
  int64_t profile_stride_ = 0;
  int64_t profile_countdown_ = 0;
  int64_t profile_prev_ns_ = 0;
  // Batched channel state.
  int64_t input_buf_[kInputBatch];
  size_t input_pos_ = 0;
  size_t input_len_ = 0;
  std::vector<EmittedRecord> emit_buf_;
};

// Fast-path runner factory: a PlanExecutor over `plan` (plus `extra_plans`)
// when non-null, else the reference Interpreter over `program`.
std::unique_ptr<SerRunner> MakeFastRunner(const SerPlan* plan, const SerProgram& program,
                                          Heap& heap, const WellKnown& wk,
                                          const DataStructAnalyzer* layouts,
                                          BuilderStore* builders,
                                          const std::vector<const SerPlan*>& extra_plans = {});

}  // namespace gerenuk

#endif  // SRC_EXEC_PLAN_H_
