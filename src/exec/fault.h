// Fault-tolerant execution: the fault model, the error taxonomy, and the
// policies the TaskScheduler and both engines share.
//
// Gerenuk's correctness story is "speculate; when an assumption breaks,
// abort and re-execute" — but a production executor survives far more than
// the one failure the paper models. This header generalizes the original
// FaultPlan (deterministic forced SER aborts) into a FaultInjector covering
// five reproducible fault kinds, and adds the recovery-side vocabulary:
//
//   * FaultInjector — deterministic, (task ordinal, record)-keyed faults:
//     forced SER abort (the paper's Fig. 10(b) hook), a task exception at
//     entry, a simulated heap-OOM during slow-path re-execution, a
//     corrupted input record (caught by the partition checksum), and an
//     artificial delay (a straggler). Ordinals are driver-assigned in
//     submission order, so a plan injects the same faults for every worker
//     count and schedule.
//   * TaskError — the structured error a failing task attempt throws;
//     carries the fault kind, task ordinal, attempt number, and the input
//     record count (for quarantine accounting).
//   * RetryPolicy / QuarantinePolicy — how the scheduler responds: bounded
//     attempts with deterministic backoff and a fresh WorkerContext per
//     retry; per-task deadlines with straggler relaunch; fail-fast vs.
//     skip-and-record for poisoned partitions.
//   * SpeculationGovernor — a driver-side abort-rate tracker: past a
//     configured threshold the engines stop speculating and route remaining
//     tasks directly to the slow path, so a workload whose assumptions
//     break on every record degrades gracefully instead of paying
//     speculate-then-abort forever.
#ifndef SRC_EXEC_FAULT_H_
#define SRC_EXEC_FAULT_H_

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace gerenuk {

class NativePartition;

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

enum class TaskErrorKind : uint8_t {
  kException = 0,     // generic task failure (body threw)
  kOom = 1,           // heap exhaustion during slow-path re-execution
  kCorruptInput = 2,  // input partition failed its integrity checksum
  kStraggler = 3,     // attempt exceeded its deadline and was cancelled
  kExecutorLost = 4,  // executor process died / stopped heartbeating mid-task
};

const char* TaskErrorKindName(TaskErrorKind kind);

// Structured task failure. The scheduler classifies these: retryable kinds
// re-enter the queue (bounded by RetryPolicy); corrupt input is permanent —
// retrying cannot repair bytes — so it either fails the stage or is
// quarantined.
class TaskError : public std::runtime_error {
 public:
  TaskError(TaskErrorKind kind, int64_t task_ordinal, int attempt, int64_t input_records,
            const std::string& detail)
      : std::runtime_error("task " + std::to_string(task_ordinal) + " attempt " +
                           std::to_string(attempt) + " [" + TaskErrorKindName(kind) +
                           "]: " + detail),
        kind_(kind),
        task_ordinal_(task_ordinal),
        attempt_(attempt),
        input_records_(input_records),
        detail_(detail) {}

  TaskErrorKind kind() const { return kind_; }
  int64_t task_ordinal() const { return task_ordinal_; }
  int attempt() const { return attempt_; }
  int64_t input_records() const { return input_records_; }
  // The bare detail string, kept separate from what() so the executor wire
  // protocol can round-trip a TaskError without re-parsing the message.
  const std::string& detail() const { return detail_; }
  bool retryable() const { return kind_ != TaskErrorKind::kCorruptInput; }

 private:
  TaskErrorKind kind_;
  int64_t task_ordinal_;
  int attempt_;
  int64_t input_records_;
  std::string detail_;
};

// ---------------------------------------------------------------------------
// Job-level cooperative cancellation
// ---------------------------------------------------------------------------

// Why a running job should stop: a client called JobHandle::cancel(), or the
// job's deadline expired. kNone means "keep going".
enum class CancelCause : uint8_t { kNone = 0, kUserCancel = 1, kDeadline = 2 };

inline const char* CancelCauseName(CancelCause cause) {
  switch (cause) {
    case CancelCause::kNone:
      return "none";
    case CancelCause::kUserCancel:
      return "cancel";
    case CancelCause::kDeadline:
      return "deadline";
  }
  return "?";
}

// Probe installed by the service layer (TaskScheduler::set_cancel_check):
// returns the first non-kNone cause once the enclosing job should stop. Must
// be cheap and thread-safe — the scheduler polls it from every worker at
// task-attempt boundaries and between retry backoffs.
using CancelCheck = std::function<CancelCause()>;

// Thrown by the scheduler when the cancel check fires. Unlike TaskError it
// is never retryable: the stage fails fast, unwinds out of the engine and the
// job body, and the service maps the cause to kCancelled/kDeadlineExceeded.
class JobCancelled : public std::runtime_error {
 public:
  explicit JobCancelled(CancelCause cause)
      : std::runtime_error(cause == CancelCause::kDeadline
                               ? "job deadline exceeded (cooperative cancel at a task boundary)"
                               : "job cancelled (cooperative cancel at a task boundary)"),
        cause_(cause) {}

  CancelCause cause() const { return cause_; }

 private:
  CancelCause cause_;
};

// ---------------------------------------------------------------------------
// Recovery policies
// ---------------------------------------------------------------------------

// What to do with a task whose input is poisoned (checksum mismatch after
// retries are ruled out): fail the stage, or skip the partition and record
// the loss in EngineStats.
enum class QuarantinePolicy : uint8_t { kFailFast = 0, kSkip = 1 };

// Scheduler-level retry policy for parallel stages. Attempt numbers start
// at 1; a task runs at most `max_attempts` times in total.
struct RetryPolicy {
  int max_attempts = 1;  // 1 = seed behavior: any exception fails the stage
  // Deterministic backoff before attempt n: backoff_base_ms << (n - 2),
  // computed from the attempt number alone (never from wall-clock state).
  int64_t backoff_base_ms = 0;
  // Deterministic jitter added on top of the exponential term: a SplitMix64
  // hash of (jitter_seed, task, attempt) reduced to [0, backoff_jitter_ms].
  // Same seed + same task + same attempt => same delay, on every worker
  // count and every run — jitter decorrelates retries without giving up
  // schedule reproducibility. 0 disables (seed behavior).
  int64_t backoff_jitter_ms = 0;
  uint64_t jitter_seed = 0;
  // Full backoff (exponential + jitter) before running `attempt` of `task`;
  // 0 for first attempts. Pure function of its arguments and the policy.
  int64_t BackoffMsFor(int64_t task, int attempt) const;
  // Recycle the executing worker's context (fresh heap, serializer, roots)
  // before a retry, so heap damage from the failed attempt — a mid-GC
  // exception, simulated OOM — cannot leak into the next one.
  bool fresh_context_on_retry = true;
  // Per-attempt deadline; 0 disables. Cancellation is cooperative: the
  // attempt observes WorkerContext::cancelled() (the injected-delay loop
  // polls it), throws TaskError{kStraggler}, and the scheduler relaunches
  // the task on another worker. Detection is in-attempt, so relaunch counts
  // are deterministic for any worker count.
  int64_t task_deadline_ms = 0;
  QuarantinePolicy quarantine = QuarantinePolicy::kFailFast;
};

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

enum class FaultKind : uint8_t {
  kSerAbort = 0,      // forced SER abort at (task, record) — the legacy plan
  kException = 1,     // throw TaskError{kException} at task entry
  kOom = 2,           // throw TaskError{kOom} at a slow-path record
  kCorruptInput = 3,  // flip a byte of the input partition at task entry
  kDelay = 4,         // sleep at task entry (straggler), cooperatively
  kExecutorKill = 5,  // raise(signal) in a forked executor at task entry
};

// Process-mode fault routing: forked executor children set this once after
// fork so kExecutorKill faults raise a real signal (genuine process death,
// exercising the supervisor) instead of throwing. In the driver / in-process
// mode the same fault throws TaskError{kExecutorLost}, which is retryable,
// so one fault plan behaves equivalently in both modes.
void SetInForkedExecutor(bool in_executor);
bool InForkedExecutor();

// One planned fault. `max_attempt` gates re-firing across retries: a fault
// fires on attempts <= max_attempt, or on every attempt when it is < 0.
struct FaultSpec {
  FaultKind kind = FaultKind::kSerAbort;
  int64_t record = 0;      // kSerAbort / kOom: record index (or kLateInTask)
  int64_t delay_ms = 0;    // kDelay
  int max_attempt = 1;
  int signal = 0;          // kExecutorKill: signal to raise (SIGKILL, SIGSTOP)
  // kCorruptInput flips one input byte exactly once; attempts of one task
  // are serialized by the scheduler, so this needs no synchronization.
  // Mutable: the plan is shared read-only across workers otherwise.
  mutable bool applied = false;

  bool FiresOn(int attempt) const { return max_attempt < 0 || attempt <= max_attempt; }
};

// The unified deterministic fault plan (generalizing the Fig. 10(b) hook).
// All injection points key on the task's driver-assigned ordinal, so the
// same faults hit the same tasks for every worker count. The plan is
// read-only during stage execution (corruption's one-shot `applied` flag is
// confined to the serialized attempts of its own task).
class FaultInjector {
 public:
  // Sentinel record index: fault late in the task (records - 1 - records/8),
  // where nearly all speculative work is wasted — the worst case the paper's
  // forced-abort experiment probes.
  static constexpr int64_t kLateInTask = -2;

  bool empty() const { return faults_.empty(); }
  void Clear() { faults_.clear(); }

  // Legacy FaultPlan interface: a forced SER abort, firing on every attempt
  // (matching the old plan, which knew nothing of retries).
  void AbortTask(int64_t task_ordinal, int64_t record = kLateInTask) {
    Add(task_ordinal, FaultSpec{FaultKind::kSerAbort, record, 0, -1});
  }
  // Record index at which the given attempt's fast path aborts, or -1. A
  // task with no records never enters its record loop and cannot abort.
  int64_t RecordFor(int64_t task_ordinal, int64_t records, int attempt = 1) const {
    return RecordOf(FaultKind::kSerAbort, task_ordinal, records, attempt);
  }

  void InjectException(int64_t task_ordinal, int max_attempt = 1) {
    Add(task_ordinal, FaultSpec{FaultKind::kException, 0, 0, max_attempt});
  }
  void InjectSlowPathOom(int64_t task_ordinal, int64_t record = kLateInTask,
                         int max_attempt = 1) {
    Add(task_ordinal, FaultSpec{FaultKind::kOom, record, 0, max_attempt});
  }
  void InjectCorruption(int64_t task_ordinal) {
    Add(task_ordinal, FaultSpec{FaultKind::kCorruptInput, 0, 0, -1});
  }
  void InjectDelay(int64_t task_ordinal, int64_t delay_ms, int max_attempt = 1) {
    Add(task_ordinal, FaultSpec{FaultKind::kDelay, 0, delay_ms, max_attempt});
  }
  // Kill the executor running this task at task entry. In a forked executor
  // the process raises `signal` (SIGKILL = death, SIGSTOP = wedged —
  // heartbeats stop and the supervisor SIGKILLs it on timeout); in-process
  // it throws the retryable TaskError{kExecutorLost} instead. Defaults to
  // firing on attempt 1 only, so the relaunched attempt survives.
  void InjectExecutorKill(int64_t task_ordinal, int signal = 9 /* SIGKILL */,
                          int max_attempt = 1) {
    Add(task_ordinal, FaultSpec{FaultKind::kExecutorKill, 0, 0, max_attempt, signal});
  }

  // Slow-path OOM record for the given attempt, or -1 (same contract as
  // RecordFor). Polled once per slow-path run, then compared per record.
  int64_t OomRecordFor(int64_t task_ordinal, int64_t records, int attempt) const {
    return RecordOf(FaultKind::kOom, task_ordinal, records, attempt);
  }

  // Applies entry faults for one attempt, in deterministic order: first
  // executor kill (raise the signal in a forked executor, or throw
  // TaskError{kExecutorLost} in-process), then corruption (flip one input
  // byte, once), then delay (sleeps in slices, polling `cancelled`; throws
  // TaskError{kStraggler} when it returns true), then exception (throws
  // TaskError{kException}). Checksum
  // verification happens after this, at the stage-input boundary, so a
  // flipped byte is caught there rather than as undefined interpreter
  // behavior.
  void AtTaskEntry(int64_t task_ordinal, int attempt, const NativePartition* input,
                   const std::function<bool()>& cancelled) const;

 private:
  void Add(int64_t task_ordinal, FaultSpec spec) {
    faults_[task_ordinal].push_back(spec);
  }
  const FaultSpec* Find(FaultKind kind, int64_t task_ordinal, int attempt) const;
  int64_t RecordOf(FaultKind kind, int64_t task_ordinal, int64_t records, int attempt) const;

  std::unordered_map<int64_t, std::vector<FaultSpec>> faults_;
};

// The pre-generalization name; the engines' fault_plan() accessor and the
// abort experiments predate the other fault kinds.
using FaultPlan = FaultInjector;

// ---------------------------------------------------------------------------
// Adaptive speculation governor
// ---------------------------------------------------------------------------

// Driver-side abort-rate tracker. The engines consult it once per stage at
// submission and feed it the stage's (speculative tasks, aborts) at the
// barrier, so its decisions depend only on completed-stage totals — never on
// the in-flight schedule — and reproduce exactly for any worker count.
//
// Once the cumulative abort rate over speculatively executed tasks reaches
// `threshold` (with at least `min_tasks` observed), the governor flips off:
// remaining stages run the slow path directly, skipping the
// speculate-then-abort tax. With speculation off no new aborts accrue, so
// the rate freezes and the governor stays off — one deterministic flip.
class SpeculationGovernor {
 public:
  // threshold <= 0 disables the governor (always speculate).
  SpeculationGovernor(double threshold, int min_tasks)
      : threshold_(threshold), min_tasks_(min_tasks) {}

  bool enabled() const { return threshold_ > 0.0; }
  bool ShouldSpeculate() const { return !enabled() || speculating_; }
  int flips() const { return flips_; }
  int64_t tasks_observed() const { return tasks_; }
  int64_t aborts_observed() const { return aborts_; }

  // Reports one completed speculative stage. Returns true if this
  // observation flipped the governor off.
  bool Observe(int64_t tasks, int64_t aborts) {
    if (!enabled() || !speculating_ || tasks <= 0) {
      return false;
    }
    tasks_ += tasks;
    aborts_ += aborts;
    if (tasks_ >= min_tasks_ &&
        static_cast<double>(aborts_) >= threshold_ * static_cast<double>(tasks_)) {
      speculating_ = false;
      flips_ += 1;
      return true;
    }
    return false;
  }

  void Reset() {
    tasks_ = 0;
    aborts_ = 0;
    speculating_ = true;
    flips_ = 0;
  }

 private:
  double threshold_;
  int min_tasks_;
  int64_t tasks_ = 0;
  int64_t aborts_ = 0;
  bool speculating_ = true;
  int flips_ = 0;
};

}  // namespace gerenuk

#endif  // SRC_EXEC_FAULT_H_
