// The parallel task scheduler: fans a stage's per-partition tasks out to a
// persistent worker pool, the analogue of a multi-core Spark/Hadoop executor.
//
// Threading model (see DESIGN.md "Threading model"):
//   * Worker confinement — every worker owns a WorkerContext with its own
//     managed mini-heap (sharing the engine's KlassRegistry, so Klass
//     pointers agree everywhere), WellKnown cache, InlineSerializer, and an
//     EngineStats accumulator. A task runs entirely inside one context:
//     slow-path (re-execution) heap objects, GC roots, and interpreter
//     frames never cross workers.
//   * Stage barrier — RunStage blocks until every task of the stage has
//     reached a terminal state (committed, quarantined, or failed), then
//     merges each worker's EngineStats into the engine's copy in worker
//     order and clears them. Counts (tasks, aborts, commits, retries,
//     shuffle bytes) are therefore deterministic for any worker count;
//     PhaseTimes become summed-CPU-time across workers rather than wall
//     time once num_workers > 1.
//   * Shared data — task inputs (committed native partitions, merged
//     segments, compiled programs, layouts) are read-only during a stage;
//     task outputs go to per-task slots the driver pre-sizes, so no two
//     tasks write the same element. The scheduler's barrier provides the
//     happens-before edges between driver writes, worker reads, and the
//     driver's post-stage reads.
//   * Shared-mutator stages — kBaseline tasks mutate the engine's single
//     managed heap (the seed's single-mutator constraint), so baseline
//     stages are submitted through RunStageSerial: same Task signature and
//     stats merging, executed in task order on the calling thread
//     (fail-fast, like the seed).
//
// Fault tolerance (see DESIGN.md "Fault model & recovery"): tasks that
// abort re-execute on the slow path *inside the worker* (the SerExecutor
// relaunch loop), so one abort never stalls sibling tasks. Tasks that
// *throw* are governed by the stage's RetryPolicy: retryable failures
// re-enter the queue with a bounded attempt budget, deterministic backoff,
// and a fresh WorkerContext; straggler cancellations relaunch on another
// worker; corrupt input is either fatal or quarantined. Attempts of one
// task never overlap, so exactly one attempt commits into the task's
// pre-sized output slot — first (and only) committed result wins, keeping
// stage output byte-identical for any worker count.
#ifndef SRC_EXEC_TASK_SCHEDULER_H_
#define SRC_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/exec/fault.h"
#include "src/runtime/heap.h"
#include "src/serde/inline_serializer.h"
#include "src/serde/wellknown.h"
#include "src/support/bytes.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace gerenuk {

// Per-worker executor state. One mutator per heap: a context is only ever
// used by the worker thread that owns it (or by the calling thread, for
// serial stages and single-worker pools).
class WorkerContext {
 public:
  WorkerContext(int worker_id, const HeapConfig& heap_config, KlassRegistry* shared_klasses,
                MemoryTracker* tracker)
      : worker_id_(worker_id),
        heap_config_(heap_config),
        shared_klasses_(shared_klasses),
        tracker_(tracker) {
    Recycle();
  }
  WorkerContext(const WorkerContext&) = delete;
  WorkerContext& operator=(const WorkerContext&) = delete;

  int worker_id() const { return worker_id_; }
  Heap& heap() { return *heap_; }
  WellKnown& wk() { return *wk_; }
  InlineSerializer& serde() { return *serde_; }
  // Stage-local accumulator; merged into the engine's stats and cleared at
  // every stage barrier.
  EngineStats& stats() { return stats_; }

  // This worker's trace sink (null = tracing off). The sink is also attached
  // to the worker heap so GC pauses are attributed to the running task.
  TraceSink* trace_sink() const { return trace_sink_; }
  void set_trace_sink(TraceSink* sink) {
    trace_sink_ = sink;
    heap_->set_trace_sink(sink);
  }

  // Replaces the heap, WellKnown cache, and serializer with fresh instances
  // (stats survive). Used between retry attempts so damage from a failed
  // attempt — dangling roots, a heap poisoned mid-OOM — cannot leak into
  // the next one. Only the owning worker may call this, between tasks.
  void Recycle() {
    serde_.reset();
    wk_.reset();
    heap_.reset();
    heap_ = std::make_unique<Heap>(heap_config_, shared_klasses_);
    heap_->set_memory_tracker(tracker_);
    heap_->set_trace_sink(trace_sink_);
    wk_ = std::make_unique<WellKnown>(*heap_);
    serde_ = std::make_unique<InlineSerializer>(*heap_);
  }

  // --- Per-attempt state, set by the scheduler before each task attempt ---

  void BeginAttempt(int attempt, int64_t deadline_ms) {
    attempt_ = attempt;
    deadline_ms_ = deadline_ms;
    cancel_.store(false, std::memory_order_relaxed);
    attempt_start_ = std::chrono::steady_clock::now();
  }
  // Attempt number of the running task, starting at 1.
  int attempt() const { return attempt_; }
  // Cooperative cancellation probe: true once the attempt is past its
  // deadline (or was cancelled externally). Long-running task code — the
  // injected-delay loop in particular — polls this and throws
  // TaskError{kStraggler} so the scheduler can relaunch elsewhere.
  bool cancelled() const {
    if (cancel_.load(std::memory_order_relaxed)) {
      return true;
    }
    if (deadline_ms_ <= 0) {
      return false;
    }
    auto elapsed = std::chrono::steady_clock::now() - attempt_start_;
    return std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count() >=
           deadline_ms_;
  }
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

 private:
  int worker_id_;
  HeapConfig heap_config_;
  KlassRegistry* shared_klasses_;
  MemoryTracker* tracker_;
  std::unique_ptr<Heap> heap_;
  std::unique_ptr<WellKnown> wk_;
  std::unique_ptr<InlineSerializer> serde_;
  EngineStats stats_;
  TraceSink* trace_sink_ = nullptr;

  int attempt_ = 1;
  int64_t deadline_ms_ = 0;
  std::atomic<bool> cancel_{false};
  std::chrono::steady_clock::time_point attempt_start_{};
};

// Wire codec for one stage's process-mode execution: how an executor child
// serializes a finished task's output onto the reply frame, and how the
// driver lands those bytes back into the task's pre-sized output slot. A
// stage without a codec cannot cross a process boundary and runs inline on
// the driver (context 0) even when the scheduler is in process mode.
struct StageCodec {
  // Executor-side: append task `task`'s output bytes (runs after the task
  // body committed its output into this process's slot).
  std::function<void(int task, ByteBuffer* out)> encode;
  // Driver-side: parse the executor's bytes into the driver's output slot.
  // Must throw TaskError{kCorruptInput} (not WireFormatError) on damage.
  std::function<void(int task, ByteReader* in)> decode;
};

// Liveness/relaunch policy for the driver-side executor supervisor.
struct ExecutorSupervisorConfig {
  // Child heartbeat period.
  int64_t heartbeat_ms = 25;
  // No heartbeat (or task result) for this long => the executor is declared
  // wedged, SIGKILLed, and its in-flight task rerouted. 0 disables the
  // liveness check (a SIGSTOP'd child would then hang the stage).
  int64_t heartbeat_timeout_ms = 1000;
  // Per-slot budget of fresh processes after the initial launch.
  int max_executor_relaunches = 3;
};

class TaskScheduler {
 public:
  // A task: runs one partition's work inside the given worker context.
  //
  // Fault-tolerance contract: a task that throws must leave its output slot
  // released (engines route cleanup through their on_abort teardown), so a
  // retry starts from a clean slot and a quarantined task contributes no
  // partial records.
  using Task = std::function<void(WorkerContext& ctx, int task_index)>;

  // Creates `num_workers` contexts (and, when num_workers > 1, as many
  // persistent worker threads). Worker heaps use `worker_heap_config` and
  // share `shared_klasses`; allocations report into `tracker`.
  //
  // With `process_mode` set, NO worker threads are spawned (fork safety:
  // the driver must be effectively single-threaded when it forks); stages
  // that carry a StageCodec run in forked executor processes under the
  // supervisor, and codec-less stages run inline on context 0.
  TaskScheduler(int num_workers, const HeapConfig& worker_heap_config,
                KlassRegistry* shared_klasses, MemoryTracker* tracker,
                bool process_mode = false);
  ~TaskScheduler();
  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int num_workers() const { return static_cast<int>(contexts_.size()); }

  // Policy applied by every subsequent RunStage. The default (1 attempt,
  // fail-fast) reproduces the seed's behavior exactly.
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }
  const RetryPolicy& retry_policy() const { return policy_; }

  bool process_mode() const { return process_mode_; }
  void set_supervisor_config(const ExecutorSupervisorConfig& config) {
    supervisor_config_ = config;
  }
  const ExecutorSupervisorConfig& supervisor_config() const { return supervisor_config_; }

  // Job-level cooperative cancellation (service mode). The check is probed
  // at every task-attempt boundary — before an attempt starts, in slices of
  // a retry backoff sleep, and between serial-stage tasks — and a non-kNone
  // cause fails the attempt with JobCancelled (never retried), so the stage
  // unwinds promptly with whatever tasks already committed reflected in the
  // stats. Install while the scheduler is idle (between stages), like
  // set_trace: workers read it without synchronization beyond the stage
  // barrier. Pass nullptr to detach.
  void set_cancel_check(CancelCheck check) { cancel_check_ = std::move(check); }

  // Attaches a trace (or detaches with nullptr): each worker context gets
  // its per-worker sink, task attempts are bracketed with spans, scheduler
  // decisions (retry/relaunch/quarantine) become instants, and worker sinks
  // are drained into the merged timeline at every stage barrier. Call
  // before any stage runs — sink assignment is not synchronized.
  void set_trace(Trace* trace);
  Trace* trace() const { return trace_; }

  // Runs tasks [0, num_tasks) across the pool and blocks until every task
  // is terminal (the stage barrier), then merges worker stats — plus the
  // stage's retry/relaunch/quarantine counters — into *stage_stats in
  // worker order. The first task error (by task index) is rethrown.
  // With a single worker the stage runs inline on the calling thread.
  //
  // In process mode, a stage that supplies `codec` executes in forked
  // executor processes: the supervisor dispatches tasks over the wire,
  // classifies executor death into TaskError{kExecutorLost} (retryable
  // through the same RetryPolicy machinery), relaunches dead executors
  // within budget, and lands codec-decoded outputs into the driver's
  // pre-sized slots — preserving the byte-identical-output invariant.
  void RunStage(int num_tasks, const Task& task, EngineStats* stage_stats,
                const StageCodec* codec = nullptr);

  // Same submission API and stats merging, but every task runs on the
  // calling thread in task order, inside context 0 — for stages that mutate
  // a shared single-mutator heap (the kBaseline engine heap). Fail-fast:
  // retries never apply (the shared heap cannot be recycled per attempt).
  void RunStageSerial(int num_tasks, const Task& task, EngineStats* stage_stats);

 private:
  // One queued execution of a task (a retry or a straggler relaunch).
  struct Attempt {
    int task = 0;
    int attempt = 1;          // 1-based
    int banned_worker = -1;   // straggler relaunch: not on this worker
    bool fresh_context = false;
    // Process mode only: earliest steady-clock ms at which the supervisor
    // may dispatch this retry (drives backoff without sleeping the driver).
    int64_t not_before_ms = 0;
  };

  void WorkerLoop(int slot);
  void RunTasksOn(WorkerContext& ctx, int slot);
  void RunAttempt(WorkerContext& ctx, int task, int attempt, bool fresh_context);
  // Throws JobCancelled when the installed cancel check reports a cause.
  void ThrowIfJobCancelled() const;
  // Classifies a failed attempt under mu_: requeue, quarantine, or record
  // the error. `slot` is the worker the attempt ran on (banned for straggler
  // relaunches). Returns true if the stage gained new runnable work.
  bool HandleFailure(int task, int attempt, int slot, std::exception_ptr error);
  void MergeStats(EngineStats* stage_stats);
  void RethrowFirstError();

  // Process mode: the driver-side supervisor loop — fork one executor per
  // slot, dispatch over the wire, poll for results/heartbeats, classify
  // deaths, relaunch within budget.
  void RunStageProcess(int num_tasks, const Task& task, EngineStats* stage_stats,
                       const StageCodec& codec);
  // Runs inside the forked child: heartbeat thread + blocking task loop.
  // Never returns (always _exit).
  [[noreturn]] void ExecutorChildMain(int fd, int slot, const StageCodec& codec);

  std::vector<std::unique_ptr<WorkerContext>> contexts_;
  std::vector<std::thread> threads_;
  RetryPolicy policy_;
  CancelCheck cancel_check_;  // null = no job-level cancellation
  Trace* trace_ = nullptr;
  bool process_mode_ = false;
  ExecutorSupervisorConfig supervisor_config_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a stage / new retries
  std::condition_variable done_cv_;   // the driver waits for the barrier
  uint64_t stage_gen_ = 0;            // bumped per stage (guarded by mu_)
  bool shutdown_ = false;             // guarded by mu_
  const Task* current_ = nullptr;     // guarded by mu_ (stable during a stage)
  int num_tasks_ = 0;                 // guarded by mu_
  int next_fresh_ = 0;                // next first-attempt task (guarded by mu_)
  int tasks_terminal_ = 0;            // committed/quarantined/failed (guarded by mu_)
  int workers_done_ = 0;              // guarded by mu_
  std::deque<Attempt> retry_queue_;   // guarded by mu_
  // Per-stage fault-tolerance counters (guarded by mu_), merged into the
  // stage stats at the barrier. Sums of per-task events, so they are
  // deterministic for any worker count.
  int stage_retries_ = 0;
  int stage_relaunches_ = 0;
  int stage_quarantined_tasks_ = 0;
  int64_t stage_quarantined_records_ = 0;
  // Process-mode supervisor counters (driver thread only).
  int stage_executors_launched_ = 0;
  int stage_executor_deaths_ = 0;
  int stage_executor_relaunches_ = 0;
  int64_t stage_heartbeats_ = 0;
  // (task_index, exception) pairs captured during the stage; guarded by mu_.
  std::vector<std::pair<int, std::exception_ptr>> errors_;
};

}  // namespace gerenuk

#endif  // SRC_EXEC_TASK_SCHEDULER_H_
