// The parallel task scheduler: fans a stage's per-partition tasks out to a
// persistent worker pool, the analogue of a multi-core Spark/Hadoop executor.
//
// Threading model (see DESIGN.md "Threading model"):
//   * Worker confinement — every worker owns a WorkerContext with its own
//     managed mini-heap (sharing the engine's KlassRegistry, so Klass
//     pointers agree everywhere), WellKnown cache, InlineSerializer, and an
//     EngineStats accumulator. A task runs entirely inside one context:
//     slow-path (re-execution) heap objects, GC roots, and interpreter
//     frames never cross workers.
//   * Stage barrier — RunStage blocks until every task of the stage has
//     finished, then merges each worker's EngineStats into the engine's
//     copy in worker order and clears them. Counts (tasks, aborts, commits,
//     shuffle bytes) are therefore deterministic for any worker count;
//     PhaseTimes become summed-CPU-time across workers rather than wall
//     time once num_workers > 1.
//   * Shared data — task inputs (committed native partitions, merged
//     segments, compiled programs, layouts) are read-only during a stage;
//     task outputs go to per-task slots the driver pre-sizes, so no two
//     tasks write the same element. The scheduler's barrier provides the
//     happens-before edges between driver writes, worker reads, and the
//     driver's post-stage reads.
//   * Shared-mutator stages — kBaseline tasks mutate the engine's single
//     managed heap (the seed's single-mutator constraint), so baseline
//     stages are submitted through RunStageSerial: same Task signature and
//     stats merging, executed in task order on the calling thread.
//
// Tasks that abort re-execute on the slow path *inside the worker* (the
// SerExecutor relaunch loop), so one abort never stalls sibling tasks.
#ifndef SRC_EXEC_TASK_SCHEDULER_H_
#define SRC_EXEC_TASK_SCHEDULER_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/runtime/heap.h"
#include "src/serde/inline_serializer.h"
#include "src/serde/wellknown.h"
#include "src/support/metrics.h"

namespace gerenuk {

// Per-worker executor state. One mutator per heap: a context is only ever
// used by the worker thread that owns it (or by the calling thread, for
// serial stages and single-worker pools).
class WorkerContext {
 public:
  WorkerContext(int worker_id, const HeapConfig& heap_config, KlassRegistry* shared_klasses,
                MemoryTracker* tracker)
      : worker_id_(worker_id), heap_(heap_config, shared_klasses), wk_(heap_), serde_(heap_) {
    heap_.set_memory_tracker(tracker);
  }
  WorkerContext(const WorkerContext&) = delete;
  WorkerContext& operator=(const WorkerContext&) = delete;

  int worker_id() const { return worker_id_; }
  Heap& heap() { return heap_; }
  WellKnown& wk() { return wk_; }
  InlineSerializer& serde() { return serde_; }
  // Stage-local accumulator; merged into the engine's stats and cleared at
  // every stage barrier.
  EngineStats& stats() { return stats_; }

 private:
  int worker_id_;
  Heap heap_;
  WellKnown wk_;
  InlineSerializer serde_;
  EngineStats stats_;
};

class TaskScheduler {
 public:
  // A task: runs one partition's work inside the given worker context.
  using Task = std::function<void(WorkerContext& ctx, int task_index)>;

  // Creates `num_workers` contexts (and, when num_workers > 1, as many
  // persistent worker threads). Worker heaps use `worker_heap_config` and
  // share `shared_klasses`; allocations report into `tracker`.
  TaskScheduler(int num_workers, const HeapConfig& worker_heap_config,
                KlassRegistry* shared_klasses, MemoryTracker* tracker);
  ~TaskScheduler();
  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int num_workers() const { return static_cast<int>(contexts_.size()); }

  // Runs tasks [0, num_tasks) across the pool and blocks until all finish
  // (the stage barrier), then merges worker stats into *stage_stats in
  // worker order. The first task exception (by task index) is rethrown.
  // With a single worker the stage runs inline on the calling thread.
  void RunStage(int num_tasks, const Task& task, EngineStats* stage_stats);

  // Same submission API and stats merging, but every task runs on the
  // calling thread in task order, inside context 0 — for stages that mutate
  // a shared single-mutator heap (the kBaseline engine heap).
  void RunStageSerial(int num_tasks, const Task& task, EngineStats* stage_stats);

 private:
  void WorkerLoop(int slot);
  void RunTasksOn(WorkerContext& ctx);
  void MergeStats(EngineStats* stage_stats);
  void RethrowFirstError();

  std::vector<std::unique_ptr<WorkerContext>> contexts_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a stage
  std::condition_variable done_cv_;   // the driver waits for the barrier
  uint64_t stage_gen_ = 0;            // bumped per stage (guarded by mu_)
  bool shutdown_ = false;             // guarded by mu_
  const Task* current_ = nullptr;     // guarded by mu_ (stable during a stage)
  int num_tasks_ = 0;                 // guarded by mu_
  int workers_done_ = 0;              // guarded by mu_
  std::atomic<int> next_task_{0};
  // (task_index, exception) pairs captured during the stage; guarded by mu_.
  std::vector<std::pair<int, std::exception_ptr>> errors_;
};

}  // namespace gerenuk

#endif  // SRC_EXEC_TASK_SCHEDULER_H_
