#include "src/exec/ser_executor.h"

#include <algorithm>

namespace gerenuk {



bool SerExecutor::RunFastPathIo(TaskIo& io, PhaseTimes& times, SpecOutcome* outcome) {
  BuilderStore builders(layouts_);
  std::unique_ptr<SerRunner> runner =
      MakeFastRunner(io.plan, transformed_, heap_, wk_, &layouts_, &builders, io.extra_plans);
  PlanExecutor* plan_exec =
      io.plan != nullptr ? static_cast<PlanExecutor*>(runner.get()) : nullptr;
  if (plan_exec != nullptr && io.plan_profile != nullptr && io.plan_profile_stride > 0) {
    plan_exec->EnableProfiling(io.plan_profile, io.plan_profile_stride);
  }
  SerRunner& fast = *runner;

  size_t cursor = 0;
  RecordChannel channel;
  channel.next_native_record = [&io, &cursor]() {
    GERENUK_CHECK_LT(cursor, io.input->record_count());
    return io.input->record_addr(cursor);
  };
  channel.emit_native_record = [&io, &fast, &builders](int64_t addr, const Klass* klass) {
    io.emit_native(addr, klass, fast, builders);
  };
  // The plan path widens the channel: input addresses are handed out in runs
  // (one std::function hop per batch instead of per record) and emits arrive
  // as buffered runs. `batch_cursor` tracks handed-out prefetch positions;
  // the outer loop's `cursor` still drives per-record abort accounting, and
  // since the body consumes exactly one address per record the two agree.
  size_t batch_cursor = 0;
  if (plan_exec != nullptr) {
    channel.next_native_batch = [&io, &batch_cursor](int64_t* out, size_t cap) {
      size_t total = io.input->record_count();
      GERENUK_CHECK_LT(batch_cursor, total);
      size_t n = std::min(cap, total - batch_cursor);
      for (size_t i = 0; i < n; ++i) {
        out[i] = io.input->record_addr(batch_cursor + i);
      }
      batch_cursor += n;
      return n;
    };
    channel.emit_native_batch = [&io, &fast, &builders](const EmittedRecord* records,
                                                        size_t count) {
      for (size_t i = 0; i < count; ++i) {
        io.emit_native(records[i].addr, records[i].klass, fast, builders);
      }
    };
  }
  fast.set_channel(&channel);

  const int64_t forced =
      io.faults != nullptr
          ? io.faults->RecordFor(io.task_ordinal, static_cast<int64_t>(io.input->record_count()),
                                 io.attempt)
          : -1;

  heap_.set_phase_times(&times);
  TraceSpan fast_span(io.trace, TraceEventType::kFastPath, "fast_path");
  try {
    ComputePhaseScope compute(times);
    if (plan_exec != nullptr) {
      // Builders stay live across a batch so buffered emits can still render
      // them; flush-then-clear runs at batch boundaries instead of per record.
      constexpr size_t kClearInterval = 64;
      for (cursor = 0; cursor < io.input->record_count(); ++cursor) {
        if (forced >= 0 && static_cast<int64_t>(cursor) == forced) {
          throw SerAbort{AbortReason::kForced, "forced abort (fault plan)"};
        }
        plan_exec->CallFunction(transformed_.body, io.fast_args);
        outcome->records_processed += 1;
        if ((cursor + 1) % kClearInterval == 0) {
          plan_exec->FlushEmits();
          builders.Clear();
        }
      }
      plan_exec->FlushEmits();
    } else {
      for (cursor = 0; cursor < io.input->record_count(); ++cursor) {
        if (forced >= 0 && static_cast<int64_t>(cursor) == forced) {
          throw SerAbort{AbortReason::kForced, "forced abort (fault plan)"};
        }
        fast.CallFunction(transformed_.body, io.fast_args);
        // Builders are per-record scratch state; a fresh record starts clean.
        builders.Clear();
        outcome->records_processed += 1;
      }
    }
  } catch (const SerAbort& abort) {
    // Buffered emits die with the runner: the abort contract discards every
    // intermediate buffer, and io.on_abort tears down engine-side output.
    // The instant is emitted before fast_span closes, so its timestamp nests
    // inside the fast-path span in the exported timeline.
    if (io.trace != nullptr) {
      io.trace->Instant(TraceEventType::kAbort, "abort",
                        static_cast<int64_t>(abort.reason));
    }
    outcome->aborts += 1;
    outcome->abort_reason = abort.reason;
    outcome->records_wasted += static_cast<int64_t>(cursor);
    outcome->records_processed = 0;
    heap_.set_phase_times(nullptr);
    return false;
  }
  heap_.set_phase_times(nullptr);
  return true;
}

void SerExecutor::RunSlowPathIo(TaskIo& io, PhaseTimes& times) {
  InlineSerializer serde(heap_);
  Interpreter interp(original_, heap_, wk_, &layouts_, nullptr);

  const Klass* record_klass = nullptr;
  for (const Statement& s : original_.body->body) {
    if (s.op == Op::kDeserialize) {
      record_klass = s.klass;
      break;
    }
  }
  GERENUK_CHECK(record_klass != nullptr) << "slow path body has no deserialization point";

  size_t cursor = 0;
  RecordChannel channel;
  channel.next_heap_record = [this, &serde, &io, &cursor, &times, record_klass]() {
    GERENUK_CHECK_LT(cursor, io.input->record_count());
    TraceSpan deser_span(io.trace, TraceEventType::kDeserialize, "deserialize");
    ScopedPhase phase(times, Phase::kDeserialize);
    int64_t addr = io.input->record_addr(cursor);
    uint32_t size = io.input->record_size(cursor);
    ByteReader reader(reinterpret_cast<const uint8_t*>(addr), size);
    return serde.ReadBody(record_klass, reader);
  };
  channel.emit_heap_record = [&io, &interp](ObjRef ref, const Klass* klass) {
    io.emit_heap(ref, klass, interp);
  };
  interp.set_channel(&channel);

  // Planned re-execution fault: at this record index the slow path runs out
  // of heap (the paper's executor would die and be relaunched; here the
  // scheduler retries the whole task in a fresh WorkerContext).
  const int64_t oom =
      io.faults != nullptr
          ? io.faults->OomRecordFor(io.task_ordinal,
                                    static_cast<int64_t>(io.input->record_count()), io.attempt)
          : -1;

  heap_.set_phase_times(&times);
  try {
    ComputePhaseScope compute(times);
    std::vector<Value> args = io.slow_args;
    for (cursor = 0; cursor < io.input->record_count(); ++cursor) {
      if (oom >= 0 && static_cast<int64_t>(cursor) == oom) {
        throw TaskError(TaskErrorKind::kOom, io.task_ordinal, io.attempt,
                        static_cast<int64_t>(io.input->record_count()),
                        "simulated heap exhaustion during re-execution");
      }
      if (io.refresh_slow_args) {
        io.refresh_slow_args(args);
      }
      interp.CallFunction(original_.body, args);
    }
  } catch (...) {
    heap_.set_phase_times(nullptr);
    throw;
  }
  heap_.set_phase_times(nullptr);
}

void SerExecutor::EnterTask(TaskIo& io) {
  if (io.faults != nullptr && !io.faults->empty()) {
    GERENUK_CHECK(io.task_ordinal >= 0)
        << "a fault plan requires a driver-assigned task ordinal";
    io.faults->AtTaskEntry(io.task_ordinal, io.attempt, io.input, io.cancelled);
  }
  // Stage-input integrity gate: sealed partitions carry a commit-time
  // checksum; a mismatch means the bytes rotted between commit and read,
  // which no retry can repair.
  if (io.input != nullptr && io.input->sealed() && !io.input->VerifyChecksum()) {
    std::string detail = "input partition failed its integrity checksum (stage ";
    detail += (io.stage_label != nullptr && io.stage_label[0] != '\0') ? io.stage_label
                                                                       : "<unlabeled>";
    detail += ", partition " + std::to_string(io.partition) + ", attempt " +
              std::to_string(io.attempt) + ")";
    throw TaskError(TaskErrorKind::kCorruptInput, io.task_ordinal, io.attempt,
                    static_cast<int64_t>(io.input->record_count()), detail);
  }
}

void SerExecutor::RunDirectSlowPath(TaskIo& io, PhaseTimes& times) {
  EnterTask(io);
  try {
    // arg 1 = governor-routed directly, without a preceding abort.
    TraceSpan slow_span(io.trace, TraceEventType::kSlowPath, "slow_path", 1);
    RunSlowPathIo(io, times);
  } catch (...) {
    if (io.on_abort) {
      io.on_abort();
    }
    throw;
  }
}

SpecOutcome SerExecutor::RunTaskIo(TaskIo& io, PhaseTimes& times) {
  EnterTask(io);
  SpecOutcome outcome;
  if (RunFastPathIo(io, times, &outcome)) {
    return outcome;
  }
  // Abort: terminate the executor — every intermediate buffer is discarded;
  // the input buffers are untouched (the interpreter aborts before any write
  // to committed records), so the fresh executor re-runs the original task
  // on the same input.
  if (io.on_abort) {
    io.on_abort();
  }
  if (launch_hook_) {
    launch_hook_();
  }
  try {
    TraceSpan slow_span(io.trace, TraceEventType::kSlowPath, "slow_path");
    RunSlowPathIo(io, times);
  } catch (...) {
    // The re-execution itself failed (e.g. simulated OOM). Tear down its
    // partial output too, so the task honors the scheduler's contract that
    // a throwing task leaves its output slot released.
    if (io.on_abort) {
      io.on_abort();
    }
    throw;
  }
  outcome.committed_fast_path = false;
  outcome.records_processed = static_cast<int64_t>(io.input->record_count());
  return outcome;
}

SpecOutcome SerExecutor::RunTask(const NativePartition& input, NativePartition* output,
                                 PhaseTimes& times, const FaultPlan* faults,
                                 int64_t task_ordinal) {
  InlineSerializer serde(heap_);
  TaskIo io;
  io.input = &input;
  io.faults = faults;
  io.task_ordinal = task_ordinal;
  io.emit_native = [output](int64_t addr, const Klass* klass, SerRunner&,
                            BuilderStore& builders) {
    builders.Render(addr, klass, *output);
  };
  io.emit_heap = [this, output, &serde, &times](ObjRef ref, const Klass* klass, SerRunner&) {
    ScopedPhase phase(times, Phase::kSerialize);
    ByteBuffer body;
    serde.WriteRecord(ref, klass, body);
    output->AppendRecord(body.data() + 4, static_cast<uint32_t>(body.size() - 4));
  };

  io.on_abort = [output] { output->Release(); };  // discard partial output
  return RunTaskIo(io, times);
}

void SerExecutor::RunSlowPath(const NativePartition& input, NativePartition* output,
                              PhaseTimes& times) {
  InlineSerializer serde(heap_);
  TaskIo io;
  io.input = &input;
  io.emit_heap = [this, output, &serde, &times](ObjRef ref, const Klass* klass, SerRunner&) {
    ScopedPhase phase(times, Phase::kSerialize);
    ByteBuffer body;
    serde.WriteRecord(ref, klass, body);
    output->AppendRecord(body.data() + 4, static_cast<uint32_t>(body.size() - 4));
  };
  RunSlowPathIo(io, times);
}

}  // namespace gerenuk
