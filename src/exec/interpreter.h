// The unified IR interpreter executing both sides of the speculation:
//
//   * slow path  — the original program: data records are managed-heap
//     objects; Deserialize/Serialize pull/push records through the engine's
//     record channel; GC, write barriers, and bounds checks apply.
//   * fast path  — the transformed program: data records are native
//     addresses (committed input bytes or record builders); control-path
//     statements still run against the managed heap, exactly as Gerenuk's
//     transformed Spark keeps its control objects on the JVM heap.
//
// A triggered ABORT (inserted by the transformer, hit at run time) throws
// SerAbort; the SerExecutor catches it and re-executes the original program
// (§3.6 "Re-execution"). Interpreter frames register themselves as GC root
// providers so heap references held in IR variables survive collections.
#ifndef SRC_EXEC_INTERPRETER_H_
#define SRC_EXEC_INTERPRETER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/analysis/layout.h"
#include "src/ir/ir.h"
#include "src/nativebuf/native_buffer.h"
#include "src/nativebuf/record_builder.h"
#include "src/runtime/heap.h"
#include "src/serde/wellknown.h"

namespace gerenuk {

// Thrown when a transformed SER hits an abort instruction.
struct SerAbort {
  AbortReason reason;
  std::string detail;
};

// An output record handed to a batched emit sink: the structure rooted at a
// native address / builder id, plus its record class.
struct EmittedRecord {
  int64_t addr = 0;
  const Klass* klass = nullptr;
};

// Engine-provided source/sink of records for Deserialize/Serialize (slow
// path) and GetAddress/GWriteObject (fast path).
struct RecordChannel {
  // Slow path: next input record as a heap object (engine deserializes).
  std::function<ObjRef()> next_heap_record;
  // Slow path: emit an output record rooted at a heap object.
  std::function<void(ObjRef, const Klass*)> emit_heap_record;
  // Fast path: next input record's native address.
  std::function<int64_t()> next_native_record;
  // Fast path: emit the structure rooted at a native address / builder.
  std::function<void(int64_t, const Klass*)> emit_native_record;
  // Batched fast path (PlanExecutor; optional — when unset the per-record
  // closures above are used). `next_native_batch` fills up to `cap` input
  // addresses and returns how many; `emit_native_batch` receives a run of
  // emitted records in emission order. Emits are flushed before any builder
  // reset, so builder ids inside a batch are still live when the sink runs.
  std::function<size_t(int64_t* out, size_t cap)> next_native_batch;
  std::function<void(const EmittedRecord* records, size_t count)> emit_native_batch;
};

// The common surface of the two fast-path execution engines — the
// tree-walking Interpreter (reference) and the direct-threaded PlanExecutor.
// Engine emit callbacks receive a SerRunner so key-extraction UDFs run on
// whichever engine produced the record.
class SerRunner {
 public:
  virtual ~SerRunner() = default;

  virtual void set_channel(RecordChannel* channel) = 0;

  // Calls `func` with `args`; returns its return value (None for void).
  // Throws SerAbort when an abort instruction executes.
  virtual Value CallFunction(const Function* func, const std::vector<Value>& args) = 0;

  // Reads the text of a string value — a heap String (kRef), a committed
  // native [len][bytes] record (kAddr), or an under-construction string
  // builder. Engines use this to extract shuffle keys.
  virtual int64_t ReadStringBytes(Value v, std::string* out) = 0;

  // Statements (interpreter) or plan ops (executor) run since construction.
  virtual int64_t statements_executed() const = 0;
};

// FNV-1a over a byte span — the hashCode/stringHash intrinsic, shared by
// both runners so identical payloads hash identically on every path.
uint64_t HashBytes(const uint8_t* data, size_t n);

// The string-reading logic behind SerRunner::ReadStringBytes, shared by the
// Interpreter and the PlanExecutor: a heap String (kRef), a committed native
// [len][bytes] record (kAddr), or an under-construction string builder.
int64_t ReadStringValueBytes(BuilderStore* builders, const WellKnown& wk, Value v,
                             std::string* out);

class Interpreter : public RootProvider, public SerRunner {
 public:
  // `builders` may be null for slow-path-only use; `layouts` is required for
  // the fast path's offset resolution.
  Interpreter(const SerProgram& program, Heap& heap, const WellKnown& wk,
              const DataStructAnalyzer* layouts, BuilderStore* builders);
  ~Interpreter() override;

  void set_channel(RecordChannel* channel) override { channel_ = channel; }

  Value CallFunction(const Function* func, const std::vector<Value>& args) override;

  // Statements executed since construction (used by ablation benches).
  int64_t statements_executed() const override { return statements_executed_; }

  // RootProvider: exposes every kRef slot of every active frame.
  void VisitRoots(const std::function<void(ObjRef*)>& visit) override;

  int64_t ReadStringBytes(Value v, std::string* out) override;

 private:
  struct Frame {
    const Function* func = nullptr;
    std::vector<Value> slots;
  };

  // Frames are pooled: small UDFs (key extraction, reduce folds) are invoked
  // once per record, and a fresh slot vector per call would dominate them.
  Frame* AcquireFrame(const Function* func);
  void ReleaseFrame();

  Value Execute(Frame& frame);
  Value RunIntrinsic(const Statement& s, Frame& frame);

  const SerProgram& program_;
  Heap& heap_;
  const WellKnown& wk_;
  const DataStructAnalyzer* layouts_;
  BuilderStore* builders_;
  RecordChannel* channel_ = nullptr;
  std::vector<std::unique_ptr<Frame>> frame_pool_;  // [0, active) live, rest free
  size_t active_frames_ = 0;
  int64_t statements_executed_ = 0;
};

}  // namespace gerenuk

#endif  // SRC_EXEC_INTERPRETER_H_
