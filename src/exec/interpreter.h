// The unified IR interpreter executing both sides of the speculation:
//
//   * slow path  — the original program: data records are managed-heap
//     objects; Deserialize/Serialize pull/push records through the engine's
//     record channel; GC, write barriers, and bounds checks apply.
//   * fast path  — the transformed program: data records are native
//     addresses (committed input bytes or record builders); control-path
//     statements still run against the managed heap, exactly as Gerenuk's
//     transformed Spark keeps its control objects on the JVM heap.
//
// A triggered ABORT (inserted by the transformer, hit at run time) throws
// SerAbort; the SerExecutor catches it and re-executes the original program
// (§3.6 "Re-execution"). Interpreter frames register themselves as GC root
// providers so heap references held in IR variables survive collections.
#ifndef SRC_EXEC_INTERPRETER_H_
#define SRC_EXEC_INTERPRETER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/analysis/layout.h"
#include "src/ir/ir.h"
#include "src/nativebuf/native_buffer.h"
#include "src/nativebuf/record_builder.h"
#include "src/runtime/heap.h"
#include "src/serde/wellknown.h"

namespace gerenuk {

// Thrown when a transformed SER hits an abort instruction.
struct SerAbort {
  AbortReason reason;
  std::string detail;
};

// Engine-provided source/sink of records for Deserialize/Serialize (slow
// path) and GetAddress/GWriteObject (fast path).
struct RecordChannel {
  // Slow path: next input record as a heap object (engine deserializes).
  std::function<ObjRef()> next_heap_record;
  // Slow path: emit an output record rooted at a heap object.
  std::function<void(ObjRef, const Klass*)> emit_heap_record;
  // Fast path: next input record's native address.
  std::function<int64_t()> next_native_record;
  // Fast path: emit the structure rooted at a native address / builder.
  std::function<void(int64_t, const Klass*)> emit_native_record;
};

class Interpreter : public RootProvider {
 public:
  // `builders` may be null for slow-path-only use; `layouts` is required for
  // the fast path's offset resolution.
  Interpreter(const SerProgram& program, Heap& heap, const WellKnown& wk,
              const DataStructAnalyzer* layouts, BuilderStore* builders);
  ~Interpreter();

  void set_channel(RecordChannel* channel) { channel_ = channel; }

  // Calls `func` with `args`; returns its return value (None for void).
  // Throws SerAbort when an abort instruction executes.
  Value CallFunction(const Function* func, const std::vector<Value>& args);

  // Statements executed since construction (used by ablation benches).
  int64_t statements_executed() const { return statements_executed_; }

  // RootProvider: exposes every kRef slot of every active frame.
  void VisitRoots(const std::function<void(ObjRef*)>& visit) override;

  // Reads the text of a string value — a heap String (kRef), a committed
  // native [len][bytes] record (kAddr), or an under-construction string
  // builder. Engines use this to extract shuffle keys.
  int64_t ReadStringBytes(Value v, std::string* out);

 private:
  struct Frame {
    const Function* func = nullptr;
    std::vector<Value> slots;
  };

  // Frames are pooled: small UDFs (key extraction, reduce folds) are invoked
  // once per record, and a fresh slot vector per call would dominate them.
  Frame* AcquireFrame(const Function* func);
  void ReleaseFrame();

  Value Execute(Frame& frame);
  Value RunIntrinsic(const Statement& s, Frame& frame);

  const SerProgram& program_;
  Heap& heap_;
  const WellKnown& wk_;
  const DataStructAnalyzer* layouts_;
  BuilderStore* builders_;
  RecordChannel* channel_ = nullptr;
  std::vector<std::unique_ptr<Frame>> frame_pool_;  // [0, active) live, rest free
  size_t active_frames_ = 0;
  int64_t statements_executed_ = 0;
};

}  // namespace gerenuk

#endif  // SRC_EXEC_INTERPRETER_H_
