#include "src/exec/plan.h"

#include <cmath>
#include <cstring>
#include <type_traits>

// Direct-threaded dispatch needs GNU computed goto; elsewhere the same
// handler bodies compile into a switch loop via the OP/NEXT/JUMP macros.
#if defined(__GNUC__) || defined(__clang__)
#define GERENUK_COMPUTED_GOTO 1
#endif

namespace gerenuk {

namespace {

// The hot helpers must land inside each dispatch handler: an out-of-line
// EvalBin costs a call plus a 24-byte sret round trip per binop, which alone
// erases the dispatch win (GCC at -O2 declines to inline it by size).
#if defined(__GNUC__) || defined(__clang__)
#define GERENUK_FORCE_INLINE inline __attribute__((always_inline))
#else
#define GERENUK_FORCE_INLINE inline
#endif

// Exact copies of the interpreter's binop semantics, including the dynamic
// float rule (either operand kF64 promotes), the divide-by-zero checks, and
// the bitwise-on-float fatal — the differential tests depend on parity.
GERENUK_FORCE_INLINE double AsF(const Value& v) {
  return v.tag == ValueTag::kF64 ? v.d : static_cast<double>(v.i);
}

GERENUK_FORCE_INLINE Value EvalBin(BinOpKind kind, const Value& a, const Value& b) {
  bool is_float = a.tag == ValueTag::kF64 || b.tag == ValueTag::kF64;
  if (is_float) {
    double x = AsF(a);
    double y = AsF(b);
    switch (kind) {
      case BinOpKind::kAdd: return Value::F64(x + y);
      case BinOpKind::kSub: return Value::F64(x - y);
      case BinOpKind::kMul: return Value::F64(x * y);
      case BinOpKind::kDiv: return Value::F64(x / y);
      case BinOpKind::kRem: return Value::F64(std::fmod(x, y));
      case BinOpKind::kLt: return Value::Bool(x < y);
      case BinOpKind::kLe: return Value::Bool(x <= y);
      case BinOpKind::kGt: return Value::Bool(x > y);
      case BinOpKind::kGe: return Value::Bool(x >= y);
      case BinOpKind::kEq: return Value::Bool(x == y);
      case BinOpKind::kNe: return Value::Bool(x != y);
      case BinOpKind::kMin: return Value::F64(x < y ? x : y);
      case BinOpKind::kMax: return Value::F64(x > y ? x : y);
      default:
        GERENUK_CHECK(false) << "bitwise binop on floats";
    }
    return Value::None();
  }
  int64_t x = a.i;
  int64_t y = b.i;
  switch (kind) {
    case BinOpKind::kAdd: return Value::I64(x + y);
    case BinOpKind::kSub: return Value::I64(x - y);
    case BinOpKind::kMul: return Value::I64(x * y);
    case BinOpKind::kDiv:
      GERENUK_CHECK_NE(y, 0);
      return Value::I64(x / y);
    case BinOpKind::kRem:
      GERENUK_CHECK_NE(y, 0);
      return Value::I64(x % y);
    case BinOpKind::kLt: return Value::Bool(x < y);
    case BinOpKind::kLe: return Value::Bool(x <= y);
    case BinOpKind::kGt: return Value::Bool(x > y);
    case BinOpKind::kGe: return Value::Bool(x >= y);
    case BinOpKind::kEq: return Value::Bool(x == y);
    case BinOpKind::kNe: return Value::Bool(x != y);
    case BinOpKind::kAnd: return Value::I64(x & y);
    case BinOpKind::kOr: return Value::I64(x | y);
    case BinOpKind::kXor: return Value::I64(x ^ y);
    case BinOpKind::kShl: return Value::I64(x << y);
    case BinOpKind::kShr: return Value::I64(x >> y);
    case BinOpKind::kMin: return Value::I64(x < y ? x : y);
    case BinOpKind::kMax: return Value::I64(x > y ? x : y);
  }
  return Value::None();
}

inline Value LoadHeapField(Heap& heap, ObjRef obj, int64_t off, FieldKind kind) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: return Value::I64(heap.GetPrim<int8_t>(obj, off));
    case FieldKind::kI16:
    case FieldKind::kChar: return Value::I64(heap.GetPrim<int16_t>(obj, off));
    case FieldKind::kI32: return Value::I64(heap.GetPrim<int32_t>(obj, off));
    case FieldKind::kI64: return Value::I64(heap.GetPrim<int64_t>(obj, off));
    case FieldKind::kF32: return Value::F64(heap.GetPrim<float>(obj, off));
    case FieldKind::kF64: return Value::F64(heap.GetPrim<double>(obj, off));
    case FieldKind::kRef: return Value::Ref(static_cast<int64_t>(heap.GetRef(obj, off)));
  }
  return Value::None();
}

inline void StoreHeapField(Heap& heap, ObjRef obj, int64_t off, FieldKind kind,
                           const Value& v) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: heap.SetPrim<int8_t>(obj, off, static_cast<int8_t>(v.i)); break;
    case FieldKind::kI16:
    case FieldKind::kChar: heap.SetPrim<int16_t>(obj, off, static_cast<int16_t>(v.i)); break;
    case FieldKind::kI32: heap.SetPrim<int32_t>(obj, off, static_cast<int32_t>(v.i)); break;
    case FieldKind::kI64: heap.SetPrim<int64_t>(obj, off, v.i); break;
    case FieldKind::kF32: heap.SetPrim<float>(obj, off, static_cast<float>(AsF(v))); break;
    case FieldKind::kF64: heap.SetPrim<double>(obj, off, AsF(v)); break;
    case FieldKind::kRef: heap.SetRef(obj, off, static_cast<ObjRef>(v.i)); break;
  }
}

inline Value LoadHeapArray(Heap& heap, ObjRef arr, int64_t idx, FieldKind kind) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: return Value::I64(heap.AGet<int8_t>(arr, idx));
    case FieldKind::kI16:
    case FieldKind::kChar: return Value::I64(heap.AGet<int16_t>(arr, idx));
    case FieldKind::kI32: return Value::I64(heap.AGet<int32_t>(arr, idx));
    case FieldKind::kI64: return Value::I64(heap.AGet<int64_t>(arr, idx));
    case FieldKind::kF32: return Value::F64(heap.AGet<float>(arr, idx));
    case FieldKind::kF64: return Value::F64(heap.AGet<double>(arr, idx));
    case FieldKind::kRef: return Value::Ref(static_cast<int64_t>(heap.AGetRef(arr, idx)));
  }
  return Value::None();
}

inline void StoreHeapArray(Heap& heap, ObjRef arr, int64_t idx, FieldKind kind,
                           const Value& v) {
  switch (kind) {
    case FieldKind::kBool:
    case FieldKind::kI8: heap.ASet<int8_t>(arr, idx, static_cast<int8_t>(v.i)); break;
    case FieldKind::kI16:
    case FieldKind::kChar: heap.ASet<int16_t>(arr, idx, static_cast<int16_t>(v.i)); break;
    case FieldKind::kI32: heap.ASet<int32_t>(arr, idx, static_cast<int32_t>(v.i)); break;
    case FieldKind::kI64: heap.ASet<int64_t>(arr, idx, v.i); break;
    case FieldKind::kF32: heap.ASet<float>(arr, idx, static_cast<float>(AsF(v))); break;
    case FieldKind::kF64: heap.ASet<double>(arr, idx, AsF(v)); break;
    case FieldKind::kRef: heap.ASetRef(arr, idx, static_cast<ObjRef>(v.i)); break;
  }
}

}  // namespace

PlanExecutor::PlanExecutor(const SerPlan& plan, Heap& heap, const WellKnown& wk,
                           const DataStructAnalyzer* layouts, BuilderStore* builders)
    : primary_(plan), heap_(heap), wk_(wk), layouts_(layouts), builders_(builders) {
  AddPlan(plan);
  emit_buf_.reserve(kEmitBatch);
  heap_.AddRootProvider(this);
}

PlanExecutor::~PlanExecutor() { heap_.RemoveRootProvider(this); }

void PlanExecutor::AddPlan(const SerPlan& plan) {
  for (const PlanFunction& pf : plan.funcs()) {
    fn_index_[pf.src] = &pf;
  }
}

void PlanExecutor::set_channel(RecordChannel* channel) {
  channel_ = channel;
  input_pos_ = 0;
  input_len_ = 0;
  emit_buf_.clear();
}

void PlanExecutor::VisitRoots(const std::function<void(ObjRef*)>& visit) {
  for (size_t f = 0; f < active_frames_; ++f) {
    for (Value& value : frame_pool_[f]->slots) {
      if (value.tag == ValueTag::kRef && value.i != 0) {
        visit(reinterpret_cast<ObjRef*>(&value.i));
      }
    }
  }
}

PlanExecutor::Frame* PlanExecutor::AcquireFrame(const PlanFunction* func) {
  if (active_frames_ == frame_pool_.size()) {
    frame_pool_.push_back(std::make_unique<Frame>());
  }
  Frame* frame = frame_pool_[active_frames_++].get();
  frame->func = func;
  // Value() is all-zero bytes (kNone = 0), so a memset is the same clear as
  // assign() without the element-wise fill. Resize to the exact var count —
  // VisitRoots scans the whole slots vector of every active frame, so a
  // stale tail from a larger previous callee must not survive here.
  static_assert(std::is_trivially_copyable_v<Value>);
  const size_t num_vars = static_cast<size_t>(func->num_vars);
  frame->slots.resize(num_vars);
  std::memset(static_cast<void*>(frame->slots.data()), 0,
              num_vars * sizeof(Value));
  return frame;
}

void PlanExecutor::ReleaseFrame() { active_frames_ -= 1; }

Value PlanExecutor::CallFunction(const Function* func, const std::vector<Value>& args) {
  const PlanFunction* pf;
  if (func == last_fn_) {
    pf = last_pf_;
  } else {
    auto it = fn_index_.find(func);
    GERENUK_CHECK(it != fn_index_.end())
        << "function not in any registered plan: " << func->name;
    pf = it->second;
    last_fn_ = func;
    last_pf_ = pf;
  }
  GERENUK_CHECK_EQ(static_cast<int>(args.size()), pf->num_params);
  return Invoke(*pf, args.data(), args.size());
}

Value PlanExecutor::Invoke(const PlanFunction& func, const Value* args, size_t nargs) {
  Frame* frame = AcquireFrame(&func);
  for (size_t i = 0; i < nargs; ++i) {
    frame->slots[i] = args[i];
  }
  Value result;
  try {
    result = profile_ != nullptr ? Execute<true>(*frame) : Execute<false>(*frame);
  } catch (...) {
    ReleaseFrame();
    throw;
  }
  ReleaseFrame();
  return result;
}

int64_t PlanExecutor::ReadStringBytes(Value v, std::string* out) {
  return ReadStringValueBytes(builders_, wk_, v, out);
}

void PlanExecutor::RefillInput() {
  GERENUK_CHECK(channel_ != nullptr);
  if (channel_->next_native_batch) {
    input_len_ = channel_->next_native_batch(input_buf_, kInputBatch);
    input_pos_ = 0;
    GERENUK_CHECK(input_len_ > 0) << "record source exhausted";
    return;
  }
  GERENUK_CHECK(channel_->next_native_record);
  input_buf_[0] = channel_->next_native_record();
  input_pos_ = 0;
  input_len_ = 1;
}

void PlanExecutor::FlushEmits() {
  if (emit_buf_.empty()) {
    return;
  }
  GERENUK_CHECK(channel_ != nullptr && channel_->emit_native_batch);
  channel_->emit_native_batch(emit_buf_.data(), emit_buf_.size());
  emit_buf_.clear();
}

namespace {

// Evaluates a flattened symbolic offset: each step is constant + Σ scale ·
// i32 length read at (base + earlier step's value); the last step is the
// offset. Mirrors ResolveOffset without recursion or pool lookups.

inline int64_t EvalFlat(const SerPlan& plan, const PlanOp& op, int64_t base) {
  int64_t vals[kMaxFlatSteps];
  const FlatStep* steps = plan.flat_steps().data();
  const FlatTerm* terms = plan.flat_terms().data();
  for (int32_t i = 0; i < op.flat_len; ++i) {
    const FlatStep& step = steps[op.flat_off + i];
    int64_t v = step.constant;
    for (int32_t t = 0; t < step.num_terms; ++t) {
      const FlatTerm& term = terms[step.first_term + t];
      v += term.scale * static_cast<int64_t>(NativeReadI32(base + vals[term.step]));
    }
    vals[i] = v;
  }
  return vals[op.flat_len - 1];
}

}  // namespace

Value PlanExecutor::RunIntrinsic(const PlanOp& op, const Value* slots,
                                 const int32_t* args_pool) {
  auto arg = [&](int i) -> const Value& { return slots[args_pool[op.args_off + i]]; };
  auto arg_f = [&](int i) { return AsF(arg(i)); };
  switch (op.intrinsic) {
    case Intrinsic::kExp:
      return Value::F64(std::exp(arg_f(0)));
    case Intrinsic::kLog:
      return Value::F64(std::log(arg_f(0)));
    case Intrinsic::kSqrt:
      return Value::F64(std::sqrt(arg_f(0)));
    case Intrinsic::kAbs:
      return Value::F64(std::fabs(arg_f(0)));
    case Intrinsic::kStringLength: {
      std::string text;
      ReadStringBytes(arg(0), &text);
      return Value::I64(static_cast<int64_t>(text.size()));
    }
    case Intrinsic::kStringHash: {
      std::string text;
      ReadStringBytes(arg(0), &text);
      return Value::I64(static_cast<int64_t>(
          HashBytes(reinterpret_cast<const uint8_t*>(text.data()), text.size())));
    }
    case Intrinsic::kStringEquals: {
      std::string a;
      std::string b;
      ReadStringBytes(arg(0), &a);
      ReadStringBytes(arg(1), &b);
      return Value::Bool(a == b);
    }
    case Intrinsic::kStringCompare: {
      std::string a;
      std::string b;
      ReadStringBytes(arg(0), &a);
      ReadStringBytes(arg(1), &b);
      return Value::I64(a.compare(b));
    }
    case Intrinsic::kUnknown:
      break;
  }
  GERENUK_CHECK(false) << "no runtime implementation for native method";
  return Value::None();
}

template <bool kProfiled>
Value PlanExecutor::Execute(Frame& frame) {
  const PlanFunction& pf = *frame.func;
  const SerPlan& plan = *pf.plan;
  const PlanOp* const ops = pf.ops.data();
  Value* const slots = frame.slots.data();
  const int32_t* const args_pool = pf.args_pool.data();
  int64_t pc = 0;
  const PlanOp* op;

  // Op accounting stays off the dispatch path: a local counter is flushed
  // into ops_executed_ on every exit, including SerAbort unwinds.
  struct OpCount {
    int64_t n = 0;
    int64_t* sink;
    explicit OpCount(int64_t* s) : sink(s) {}
    ~OpCount() { *sink += n; }
  } opcount(&ops_executed_);

#ifdef GERENUK_COMPUTED_GOTO
  // One entry per PlanOpCode, in declaration order.
  static const void* kDispatch[] = {
      &&lbl_kConst, &&lbl_kAssign, &&lbl_kBinOp, &&lbl_kUnOp, &&lbl_kDeserialize,
      &&lbl_kSerialize, &&lbl_kFieldLoad, &&lbl_kFieldStore, &&lbl_kArrayLoad,
      &&lbl_kArrayStore, &&lbl_kArrayLength, &&lbl_kNewObject, &&lbl_kNewArray,
      &&lbl_kCall, &&lbl_kIntrinsic, &&lbl_kBranch, &&lbl_kJump, &&lbl_kReturn,
      &&lbl_kReturnVoid, &&lbl_kGetAddress, &&lbl_kGWriteObject,
      &&lbl_kReadNativeConst, &&lbl_kReadNativeSym, &&lbl_kWriteNative,
      &&lbl_kAddrOfFieldConst, &&lbl_kAddrOfFieldSym, &&lbl_kNativeArrayLength,
      &&lbl_kNativeArrayLoad, &&lbl_kNativeArrayStore, &&lbl_kNativeArrayElemAddr,
      &&lbl_kAppendRecord, &&lbl_kAppendArray, &&lbl_kAttachField,
      &&lbl_kAttachElement, &&lbl_kAbort, &&lbl_kBinOpBranch, &&lbl_kNotBranch,
      &&lbl_kBinOpJump, &&lbl_kReadConstBin, &&lbl_kBinOpBin,
      &&lbl_kBinOpBinJump, &&lbl_kBinOpRun, &&lbl_kBinOpRunBranch,
      &&lbl_kBinOpRunJump, &&lbl_kBranchElse, &&lbl_kBinOpBranchElse,
      &&lbl_kBinOpRunBranchElse,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                static_cast<size_t>(PlanOpCode::kCount));
  // The kProfiled=false instantiation compiles PROFILE_OP() to nothing, so
  // the unprofiled dispatch loop is instruction-for-instruction the plain
  // direct-threaded loop — profiling support costs zero when off.
#define PROFILE_OP()                                      \
  do {                                                    \
    if constexpr (kProfiled) {                            \
      ProfileOp(static_cast<size_t>(op->code));           \
    }                                                     \
  } while (0)
#define OP(name) lbl_##name:
#define NEXT()                                            \
  do {                                                    \
    op = &ops[++pc];                                      \
    opcount.n += 1;                                       \
    PROFILE_OP();                                         \
    goto* kDispatch[static_cast<size_t>(op->code)];       \
  } while (0)
#define JUMP(t)                                           \
  do {                                                    \
    pc = (t);                                             \
    op = &ops[pc];                                        \
    opcount.n += 1;                                       \
    PROFILE_OP();                                         \
    goto* kDispatch[static_cast<size_t>(op->code)];       \
  } while (0)
  JUMP(0);
#else
#define OP(name) case PlanOpCode::name:
#define NEXT()  \
  {             \
    ++pc;       \
    break;      \
  }
#define JUMP(t) \
  {             \
    pc = (t);   \
    break;      \
  }
  for (;;) {
    op = &ops[pc];
    opcount.n += 1;
    if constexpr (kProfiled) {
      ProfileOp(static_cast<size_t>(op->code));
    }
    switch (op->code) {
#endif

  OP(kConst) {
    slots[op->dst] = Value{op->imm_tag, op->imm, op->fimm};
    NEXT();
  }
  OP(kAssign) {
    slots[op->dst] = slots[op->a];
    NEXT();
  }
  OP(kBinOp) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    NEXT();
  }
  OP(kUnOp) {
    switch (op->unop) {
      case UnOpKind::kNeg:
        slots[op->dst] = slots[op->a].tag == ValueTag::kF64 ? Value::F64(-slots[op->a].d)
                                                            : Value::I64(-slots[op->a].i);
        break;
      case UnOpKind::kNot:
        slots[op->dst] = Value::Bool(!slots[op->a].AsBool());
        break;
      case UnOpKind::kI2F:
        slots[op->dst] = Value::F64(static_cast<double>(slots[op->a].i));
        break;
      case UnOpKind::kF2I:
        slots[op->dst] = Value::I64(static_cast<int64_t>(AsF(slots[op->a])));
        break;
    }
    NEXT();
  }
  OP(kDeserialize) {
    GERENUK_CHECK(channel_ != nullptr && channel_->next_heap_record);
    slots[op->dst] = Value::Ref(static_cast<int64_t>(channel_->next_heap_record()));
    NEXT();
  }
  OP(kSerialize) {
    GERENUK_CHECK(channel_ != nullptr && channel_->emit_heap_record);
    channel_->emit_heap_record(static_cast<ObjRef>(slots[op->a].i), op->klass);
    NEXT();
  }
  OP(kFieldLoad) {
    slots[op->dst] =
        LoadHeapField(heap_, static_cast<ObjRef>(slots[op->a].i), op->imm, op->kind);
    NEXT();
  }
  OP(kFieldStore) {
    StoreHeapField(heap_, static_cast<ObjRef>(slots[op->a].i), op->imm, op->kind,
                   slots[op->b]);
    NEXT();
  }
  OP(kArrayLoad) {
    slots[op->dst] =
        LoadHeapArray(heap_, static_cast<ObjRef>(slots[op->a].i), slots[op->b].i, op->kind);
    NEXT();
  }
  OP(kArrayStore) {
    StoreHeapArray(heap_, static_cast<ObjRef>(slots[op->a].i), slots[op->b].i, op->kind,
                   slots[op->c]);
    NEXT();
  }
  OP(kArrayLength) {
    slots[op->dst] = Value::I64(heap_.ArrayLength(static_cast<ObjRef>(slots[op->a].i)));
    NEXT();
  }
  OP(kNewObject) {
    slots[op->dst] = Value::Ref(static_cast<int64_t>(heap_.AllocObject(op->klass)));
    NEXT();
  }
  OP(kNewArray) {
    slots[op->dst] =
        Value::Ref(static_cast<int64_t>(heap_.AllocArray(op->klass, slots[op->a].i)));
    NEXT();
  }
  OP(kCall) {
    const PlanFunction& callee = plan.funcs()[static_cast<size_t>(op->callee)];
    Frame* cf = AcquireFrame(&callee);
    for (int32_t i = 0; i < op->args_len; ++i) {
      cf->slots[static_cast<size_t>(i)] = slots[args_pool[op->args_off + i]];
    }
    Value result;
    try {
      result = Execute<kProfiled>(*cf);
    } catch (...) {
      ReleaseFrame();
      throw;
    }
    ReleaseFrame();
    if (op->dst >= 0) {
      slots[op->dst] = result;
    }
    NEXT();
  }
  OP(kIntrinsic) {
    Value result = RunIntrinsic(*op, slots, args_pool);
    if (op->dst >= 0) {
      slots[op->dst] = result;
    }
    NEXT();
  }
  OP(kBranch) {
    if (slots[op->a].AsBool()) {
      JUMP(op->target);
    }
    NEXT();
  }
  OP(kJump) { JUMP(op->target); }
  OP(kReturn) { return op->a >= 0 ? slots[op->a] : Value::None(); }
  OP(kReturnVoid) { return Value::None(); }
  OP(kGetAddress) {
    if (input_pos_ == input_len_) {
      RefillInput();
    }
    slots[op->dst] = Value::Addr(input_buf_[input_pos_++]);
    NEXT();
  }
  OP(kGWriteObject) {
    GERENUK_CHECK(channel_ != nullptr);
    if (channel_->emit_native_batch) {
      emit_buf_.push_back(EmittedRecord{slots[op->a].i, op->klass});
      if (emit_buf_.size() >= kEmitBatch) {
        FlushEmits();
      }
    } else {
      GERENUK_CHECK(channel_->emit_native_record);
      channel_->emit_native_record(slots[op->a].i, op->klass);
    }
    NEXT();
  }
  OP(kReadNativeConst) {
    int64_t addr = slots[op->a].i;
    if (IsBuilderAddr(addr)) {
      int64_t iv = 0;
      double fv = 0.0;
      builders_->ReadField(addr, op->field_index, op->kind, &iv, &fv);
      slots[op->dst] = op->float_kind ? Value::F64(fv) : Value::I64(iv);
    } else {
      slots[op->dst] = op->float_kind
                           ? Value::F64(NativeReadFloat(addr, op->imm, op->kind))
                           : Value::I64(NativeReadInt(addr, op->imm, op->kind));
    }
    NEXT();
  }
  OP(kReadNativeSym) {
    int64_t addr = slots[op->a].i;
    if (IsBuilderAddr(addr)) {
      int64_t iv = 0;
      double fv = 0.0;
      builders_->ReadField(addr, op->field_index, op->kind, &iv, &fv);
      slots[op->dst] = op->float_kind ? Value::F64(fv) : Value::I64(iv);
    } else {
      int64_t off = op->flat_off >= 0 ? EvalFlat(plan, *op, addr)
                                      : ResolveOffset(layouts_->pool(), op->expr_id, addr);
      slots[op->dst] = op->float_kind ? Value::F64(NativeReadFloat(addr, off, op->kind))
                                      : Value::I64(NativeReadInt(addr, off, op->kind));
    }
    NEXT();
  }
  OP(kWriteNative) {
    int64_t addr = slots[op->a].i;
    if (!IsBuilderAddr(addr)) {
      throw SerAbort{AbortReason::kDisruptNativeSpace,
                     "writeNative on committed input record"};
    }
    if (op->float_kind) {
      builders_->WriteField(addr, op->field_index, op->kind, 0, AsF(slots[op->b]));
    } else {
      builders_->WriteField(addr, op->field_index, op->kind, slots[op->b].i, 0.0);
    }
    NEXT();
  }
  OP(kAddrOfFieldConst) {
    int64_t addr = slots[op->a].i;
    slots[op->dst] = Value::Addr(IsBuilderAddr(addr)
                                     ? builders_->FieldAddr(addr, op->field_index)
                                     : addr + op->imm);
    NEXT();
  }
  OP(kAddrOfFieldSym) {
    int64_t addr = slots[op->a].i;
    if (IsBuilderAddr(addr)) {
      slots[op->dst] = Value::Addr(builders_->FieldAddr(addr, op->field_index));
    } else {
      int64_t off = op->flat_off >= 0 ? EvalFlat(plan, *op, addr)
                                      : ResolveOffset(layouts_->pool(), op->expr_id, addr);
      slots[op->dst] = Value::Addr(addr + off);
    }
    NEXT();
  }
  OP(kNativeArrayLength) {
    int64_t addr = slots[op->a].i;
    slots[op->dst] = Value::I64(IsBuilderAddr(addr) ? builders_->ArrayLength(addr)
                                                    : NativeReadI32(addr));
    NEXT();
  }
  OP(kNativeArrayLoad) {
    int64_t addr = slots[op->a].i;
    int64_t idx = slots[op->b].i;
    if (IsBuilderAddr(addr)) {
      int64_t iv = 0;
      double fv = 0.0;
      builders_->ArrayLoad(addr, idx, op->kind, &iv, &fv);
      slots[op->dst] = op->float_kind ? Value::F64(fv) : Value::I64(iv);
    } else {
      int64_t len = NativeReadI32(addr);
      if (idx < 0 || idx >= len) {
        GERENUK_CHECK(false) << "native array index " << idx << " out of bounds [0," << len
                             << ")";
      }
      int64_t off = 4 + idx * FieldKindSize(op->kind);
      slots[op->dst] = op->float_kind ? Value::F64(NativeReadFloat(addr, off, op->kind))
                                      : Value::I64(NativeReadInt(addr, off, op->kind));
    }
    NEXT();
  }
  OP(kNativeArrayStore) {
    int64_t addr = slots[op->a].i;
    if (!IsBuilderAddr(addr)) {
      throw SerAbort{AbortReason::kDisruptNativeSpace,
                     "array store into committed input record"};
    }
    if (op->float_kind) {
      builders_->ArrayStore(addr, slots[op->b].i, op->kind, 0, AsF(slots[op->c]));
    } else {
      builders_->ArrayStore(addr, slots[op->b].i, op->kind, slots[op->c].i, 0.0);
    }
    NEXT();
  }
  OP(kNativeArrayElemAddr) {
    int64_t addr = slots[op->a].i;
    int64_t idx = slots[op->b].i;
    slots[op->dst] = Value::Addr(IsBuilderAddr(addr)
                                     ? builders_->ElementAddr(addr, idx)
                                     : CommittedArrayElemAddr(*layouts_, op->klass, addr, idx));
    NEXT();
  }
  OP(kAppendRecord) {
    slots[op->dst] = Value::Addr(builders_->NewRecord(op->klass));
    NEXT();
  }
  OP(kAppendArray) {
    slots[op->dst] = Value::Addr(builders_->NewArray(op->klass, slots[op->a].i));
    NEXT();
  }
  OP(kAttachField) {
    int64_t addr = slots[op->a].i;
    if (!IsBuilderAddr(addr)) {
      throw SerAbort{AbortReason::kDisruptNativeSpace,
                     "reference write into committed input record"};
    }
    builders_->AttachField(addr, op->field_index, slots[op->b].i);
    NEXT();
  }
  OP(kAttachElement) {
    int64_t addr = slots[op->a].i;
    if (!IsBuilderAddr(addr)) {
      throw SerAbort{AbortReason::kDisruptNativeSpace,
                     "reference element write into committed input record"};
    }
    builders_->AttachElement(addr, slots[op->b].i, slots[op->c].i);
    NEXT();
  }
  OP(kAbort) {
    throw SerAbort{op->abort_reason, "static abort fence reached in " + pf.src->name};
  }
  OP(kBinOpBranch) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    if (slots[op->c].AsBool()) {
      JUMP(op->target);
    }
    NEXT();
  }
  OP(kNotBranch) {
    slots[op->dst] = Value::Bool(!slots[op->a].AsBool());
    if (slots[op->c].AsBool()) {
      JUMP(op->target);
    }
    NEXT();
  }
  OP(kBinOpJump) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    JUMP(op->target);
  }
  OP(kReadConstBin) {
    int64_t addr = slots[op->a].i;
    if (IsBuilderAddr(addr)) {
      int64_t iv = 0;
      double fv = 0.0;
      builders_->ReadField(addr, op->field_index, op->kind, &iv, &fv);
      slots[op->dst] = op->float_kind ? Value::F64(fv) : Value::I64(iv);
    } else {
      slots[op->dst] = op->float_kind
                           ? Value::F64(NativeReadFloat(addr, op->imm, op->kind))
                           : Value::I64(NativeReadInt(addr, op->imm, op->kind));
    }
    slots[op->dst2] = EvalBin(op->binop, slots[op->b], slots[op->c]);
    NEXT();
  }
  OP(kBinOpBin) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    slots[op->dst2] = EvalBin(static_cast<BinOpKind>(op->imm), slots[op->c], slots[op->d]);
    NEXT();
  }
  OP(kBinOpBinJump) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    slots[op->dst2] = EvalBin(static_cast<BinOpKind>(op->imm), slots[op->c], slots[op->d]);
    JUMP(op->target);
  }
#define RUN_BINOPS()                                                      \
  do {                                                                    \
    const int32_t* r = &args_pool[op->args_off];                          \
    const int32_t* const rend = r + op->args_len;                         \
    for (; r != rend; r += 4) {                                           \
      if (r[0] < 0) {                                                     \
        slots[r[3]] = Value::I64(r[1]);                                   \
      } else {                                                            \
        slots[r[3]] = EvalBin(static_cast<BinOpKind>(r[0]), slots[r[1]],  \
                              slots[r[2]]);                               \
      }                                                                   \
    }                                                                     \
  } while (0)
  OP(kBinOpRun) {
    RUN_BINOPS();
    NEXT();
  }
// For the branching run variants: all entries but the last through the run
// loop, the last one peeled so the condition — nearly always the last
// entry's result — can branch on the just-computed value instead of a
// store-then-reload of the condition slot.
#define RUN_BINOPS_PEEL(vlast, rlast)                                     \
  const int32_t* r = &args_pool[op->args_off];                            \
  const int32_t* const rlast = r + op->args_len - 4;                      \
  for (; r != rlast; r += 4) {                                            \
    if (r[0] < 0) {                                                       \
      slots[r[3]] = Value::I64(r[1]);                                     \
    } else {                                                              \
      slots[r[3]] = EvalBin(static_cast<BinOpKind>(r[0]), slots[r[1]],    \
                            slots[r[2]]);                                 \
    }                                                                     \
  }                                                                       \
  const Value vlast =                                                     \
      rlast[0] < 0 ? Value::I64(rlast[1])                                 \
                   : EvalBin(static_cast<BinOpKind>(rlast[0]),            \
                             slots[rlast[1]], slots[rlast[2]]);           \
  slots[rlast[3]] = vlast
  OP(kBinOpRunBranch) {
    RUN_BINOPS_PEEL(v, rl);
    if (rl[3] == op->c ? v.AsBool() : slots[op->c].AsBool()) {
      JUMP(op->target);
    }
    NEXT();
  }
  OP(kBinOpRunJump) {
    RUN_BINOPS();
    JUMP(op->target);
  }
  OP(kBranchElse) {
    JUMP(slots[op->a].AsBool() ? op->target : op->target2);
  }
  OP(kBinOpBranchElse) {
    slots[op->dst] = EvalBin(op->binop, slots[op->a], slots[op->b]);
    JUMP(slots[op->c].AsBool() ? op->target : op->target2);
  }
  OP(kBinOpRunBranchElse) {
    RUN_BINOPS_PEEL(v, rl);
    JUMP((rl[3] == op->c ? v.AsBool() : slots[op->c].AsBool()) ? op->target
                                                               : op->target2);
  }
#undef RUN_BINOPS
#undef RUN_BINOPS_PEEL

#ifndef GERENUK_COMPUTED_GOTO
      case PlanOpCode::kCount:
        GERENUK_CHECK(false);
    }
  }
#endif
#undef OP
#undef NEXT
#undef JUMP
#ifdef PROFILE_OP
#undef PROFILE_OP
#endif
}

// Both instantiations live in this TU: Invoke selects at call time, kCall
// recursion stays within the caller's instantiation.
template Value PlanExecutor::Execute<false>(Frame& frame);
template Value PlanExecutor::Execute<true>(Frame& frame);

void PlanExecutor::ProfileSample(size_t code) {
  // One steady_clock read per `stride` dispatches: the elapsed nanos since
  // the previous sample are attributed wholesale to the opcode observed at
  // the sampling point — the standard sampling-profiler estimator (an op's
  // share of samples converges to its share of time).
  int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  profile_->sampled_nanos[code] += now - profile_prev_ns_;
  profile_->samples += 1;
  profile_prev_ns_ = now;
  profile_countdown_ = profile_stride_;
}

std::unique_ptr<SerRunner> MakeFastRunner(const SerPlan* plan, const SerProgram& program,
                                          Heap& heap, const WellKnown& wk,
                                          const DataStructAnalyzer* layouts,
                                          BuilderStore* builders,
                                          const std::vector<const SerPlan*>& extra_plans) {
  if (plan == nullptr) {
    return std::make_unique<Interpreter>(program, heap, wk, layouts, builders);
  }
  auto exec = std::make_unique<PlanExecutor>(*plan, heap, wk, layouts, builders);
  for (const SerPlan* extra : extra_plans) {
    if (extra != nullptr) {
      exec->AddPlan(*extra);
    }
  }
  return exec;
}

}  // namespace gerenuk
